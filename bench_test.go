// Benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating the artifact at reduced, shape-preserving scale) plus
// micro-benchmarks for the hot structures of the model.
//
// Regenerate everything at full scale with:  go run ./cmd/experiments
package hypertrio_test

import (
	"fmt"
	"runtime"
	"testing"

	"hypertrio"
	"hypertrio/internal/experiments"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/runner"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// benchExperiment reruns one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Seed: 42, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// One benchmark per paper artifact (DESIGN.md §4 maps IDs to the paper).

func BenchmarkTable2(b *testing.B)        { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)        { benchExperiment(b, "table3") }
func BenchmarkFigure4(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFigure5(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFigure8a(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFigure8b(b *testing.B)      { benchExperiment(b, "fig8b") }
func BenchmarkFigure9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFigure10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFigure11a(b *testing.B)     { benchExperiment(b, "fig11a") }
func BenchmarkFigure11b(b *testing.B)     { benchExperiment(b, "fig11b") }
func BenchmarkFigure11c(b *testing.B)     { benchExperiment(b, "fig11c") }
func BenchmarkFigure12a(b *testing.B)     { benchExperiment(b, "fig12a") }
func BenchmarkFigure12b(b *testing.B)     { benchExperiment(b, "fig12b") }
func BenchmarkFigure12c(b *testing.B)     { benchExperiment(b, "fig12c") }
func BenchmarkExtPartitions(b *testing.B) { benchExperiment(b, "ext-partitions") }
func BenchmarkExtWalkers(b *testing.B)    { benchExperiment(b, "ext-walkers") }
func BenchmarkExtFiveLevel(b *testing.B)  { benchExperiment(b, "ext-5level") }
func BenchmarkExtIsolation(b *testing.B)  { benchExperiment(b, "ext-isolation") }

// benchSuite regenerates every registered experiment — the workload of
// one `cmd/experiments -quick` run — with the given worker count. The
// shared trace cache is reset each iteration so serial and parallel
// variants both pay trace construction, making their wall times directly
// comparable.
func benchSuite(b *testing.B, workers int) {
	b.Helper()
	benchSuiteOpts(b, experiments.Options{Seed: 42, Quick: true, Workers: workers})
}

// benchSuiteOpts is the generic suite driver: it reruns every registered
// experiment under the given options, resetting the shared trace cache
// each iteration so all variants pay identical trace-construction cost.
func benchSuiteOpts(b *testing.B, opts experiments.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner.Shared().Reset()
		for _, e := range experiments.All {
			tbl, err := e.Run(opts)
			if err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				b.Fatalf("%s: no rows", e.ID)
			}
		}
	}
}

// BenchmarkSuiteQuick is the parallel-vs-serial suite comparison: the
// full quick experiment suite with one worker (the historical serial
// execution) versus the GOMAXPROCS worker pool. On an N-core machine the
// parallel variant's wall time should approach 1/N of the serial one
// (the sweep is embarrassingly parallel); output is identical either
// way. Run with:
//
//	go test -bench BenchmarkSuiteQuick -benchtime 1x -run '^$' .
func BenchmarkSuiteQuick(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchSuite(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { benchSuite(b, 0) })
}

// BenchmarkSuiteQuickWarmCache measures the steady-state suite with the
// shared trace cache already populated — the marginal cost of rerunning
// every experiment when no trace needs rebuilding.
func BenchmarkSuiteQuickWarmCache(b *testing.B) {
	opts := experiments.Options{Seed: 42, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All {
			if _, err := e.Run(opts); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// BenchmarkSuiteQuickObs quantifies the observability layer's overhead:
// the quick suite with the layer disabled (metric cells only — the
// always-on default every other benchmark also pays) versus the same
// suite with the time-series sampler attached to every simulation cell.
// The disabled variant must stay within noise of historical
// BenchmarkSuiteQuick/serial numbers (acceptance bound: < 5%). Run with:
//
//	go test -bench BenchmarkSuiteQuickObs -benchtime 1x -run '^$' .
func BenchmarkSuiteQuickObs(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchSuiteOpts(b, experiments.Options{Seed: 42, Quick: true, Workers: 1})
	})
	b.Run("sampled", func(b *testing.B) {
		benchSuiteOpts(b, experiments.Options{
			Seed: 42, Quick: true, Workers: 1,
			SampleEvery: 10 * sim.Microsecond,
		})
	})
}

// BenchmarkEndToEnd measures one full simulation (trace replay including
// page-table construction) for both designs at a hyper-tenant count,
// reporting achieved bandwidth as a custom metric.
func BenchmarkEndToEnd(b *testing.B) {
	for _, design := range []string{"base", "hypertrio"} {
		design := design
		b.Run(design, func(b *testing.B) {
			tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
				Benchmark:  hypertrio.Websearch,
				Tenants:    128,
				Interleave: hypertrio.RR1,
				Seed:       42,
				Scale:      0.002,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := hypertrio.BaseConfig()
			if design == "hypertrio" {
				cfg = hypertrio.HyperTRIOConfig()
			}
			b.ReportAllocs()
			b.ResetTimer()
			var last hypertrio.Result
			for i := 0; i < b.N; i++ {
				last, err = hypertrio.Run(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AchievedGbps, "modelGb/s")
			b.ReportMetric(float64(last.Packets)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}

	// Sharded variants: the same Base replay with the simulation split
	// across device and IOMMU event domains. Driver unmaps are stripped
	// from the trace so shards >= 2 run the true parallel mode (domains
	// on their own goroutines under conservative PCIe lookahead) rather
	// than lockstep; shards=1 is the classic single-engine execution of
	// the identical trace, the baseline the others are read against.
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
				Benchmark:  hypertrio.Websearch,
				Tenants:    128,
				Interleave: hypertrio.RR1,
				Seed:       42,
				Scale:      0.002,
			})
			if err != nil {
				b.Fatal(err)
			}
			tr = stripUnmaps(tr)
			cfg := hypertrio.BaseConfig()
			cfg.Shards = shards
			b.ReportAllocs()
			b.ResetTimer()
			var last hypertrio.Result
			for i := 0; i < b.N; i++ {
				last, err = hypertrio.Run(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AchievedGbps, "modelGb/s")
			b.ReportMetric(float64(last.Packets)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		})
	}
}

// stripUnmaps copies the trace with every driver unmap removed — the
// instantaneous device↔chipset coupling that forces sharded runs into
// lockstep. The packet stream is otherwise identical.
func stripUnmaps(tr *hypertrio.Trace) *hypertrio.Trace {
	cp := *tr
	cp.Packets = append([]workload.Packet(nil), tr.Packets...)
	for i := range cp.Packets {
		cp.Packets[i].UnmapIOVA, cp.Packets[i].UnmapShift = 0, 0
	}
	return &cp
}

// --- micro-benchmarks -------------------------------------------------

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Duration(i%64)*sim.Nanosecond, func(*sim.Engine, sim.Time) {})
		if i%64 == 63 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineScheduleFirePending measures the schedule+fire cycle
// against queue depth: the engine is pre-loaded with N far-future events
// (parked in high wheel levels and the overflow heap) while the measured
// loop schedules and fires near events. A comparison-based heap pays
// O(log N) per operation here; the timing wheel's cost must stay flat
// from 10^2 to 10^6 pending events.
func BenchmarkEngineScheduleFirePending(b *testing.B) {
	for _, pending := range []int{100, 10_000, 1_000_000} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			e := sim.NewEngine()
			nop := func(*sim.Engine, sim.Time) {}
			for i := 0; i < pending; i++ {
				// Spread the backlog across ~4 s of far future: many
				// distinct slots across several wheel levels plus, at the
				// 10^6 point, the beyond-horizon overflow heap.
				e.Schedule(sim.Second+sim.Duration(i)*3*sim.Microsecond, nop)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Schedule(sim.Duration(i%64)*sim.Nanosecond, nop)
				if i%64 == 63 {
					for j := 0; j < 64; j++ {
						e.Step()
					}
				}
			}
		})
	}
}

func BenchmarkNestedWalk(b *testing.B) {
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	nt, err := mem.NewNestedTable("t", 0x40000000, host)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := nt.MapIOVA(0xbbe00000, mem.HugePageShift); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nt.Walk(0xbbe00000 + uint64(i)%mem.HugePageSize); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDevTLB(b *testing.B) {
	for _, mode := range []struct {
		name  string
		index tlb.IndexMode
	}{{"by-address", tlb.ByAddress}, {"partitioned", tlb.BySID}} {
		b.Run(mode.name, func(b *testing.B) {
			c := tlb.New(tlb.Config{Name: "devtlb", Sets: 8, Ways: 8, Policy: tlb.LFU, Index: mode.index})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				key := tlb.Key{SID: uint32(i % 64), Tag: uint64(i % 8)}
				if _, ok := c.Lookup(key); !ok {
					c.Insert(tlb.Entry{Key: key, Value: uint64(i)})
				}
			}
		})
	}
}

func BenchmarkIOMMUTranslate(b *testing.B) {
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	ct := mem.NewContextTable()
	tenants := mem.NewTenantTables(16)
	var spaces []*workload.AddressSpace
	for i := 1; i <= 16; i++ {
		as, err := workload.BuildAddressSpace(workload.ProfileFor(workload.Websearch), mem.SID(i), host, ct)
		if err != nil {
			b.Fatal(err)
		}
		tenants.Set(mem.SID(i), as.Nested)
		spaces = append(spaces, as)
	}
	u := iommu.New(iommu.Config{
		ContextCache: iommu.DefaultContextCache(),
		L2PWC:        tlb.Config{Name: "l2", Sets: 32, Ways: 16, Policy: tlb.LFU},
		L3PWC:        tlb.Config{Name: "l3", Sets: 64, Ways: 16, Policy: tlb.LFU},
	}, ct, tenants)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as := spaces[i%len(spaces)]
		iova := as.DataPages[i%len(as.DataPages)]
		if _, err := u.Translate(as.SID, iova, mem.HugePageShift, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceConstruct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := trace.Construct(trace.Config{
			Benchmark: workload.Iperf3, Tenants: 64,
			Interleave: trace.RR1, Seed: int64(i), Scale: 0.002,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Packets) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := workload.NewGenerator(workload.ProfileFor(workload.Websearch), 1, 42, 1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			g = workload.NewGenerator(workload.ProfileFor(workload.Websearch), 1, int64(i), 1.0)
		}
	}
}

// BenchmarkAblation quantifies each HyperTRIO mechanism separately at a
// fixed hyper-tenant point (the DESIGN.md ablation: partitioning alone,
// +PTB, +prefetch).
func BenchmarkAblation(b *testing.B) {
	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Websearch,
		Tenants:    128,
		Interleave: hypertrio.RR1,
		Seed:       42,
		Scale:      0.002,
	})
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		cfg  func() hypertrio.Config
	}{
		{"base", hypertrio.BaseConfig},
		{"partition-only", func() hypertrio.Config {
			c := hypertrio.HyperTRIOConfig()
			c.PTBEntries = 1
			c.Prefetch = nil
			return c
		}},
		{"partition+ptb", func() hypertrio.Config {
			c := hypertrio.HyperTRIOConfig()
			c.Prefetch = nil
			return c
		}},
		{"full", hypertrio.HyperTRIOConfig},
	}
	for _, cc := range configs {
		cc := cc
		b.Run(cc.name, func(b *testing.B) {
			var last hypertrio.Result
			for i := 0; i < b.N; i++ {
				var err error
				last, err = hypertrio.Run(cc.cfg(), tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AchievedGbps, "modelGb/s")
		})
	}
}

// Example-style sanity output for go test -bench=. -v runs.
func ExampleRun() {
	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Iperf3,
		Tenants:    1,
		Interleave: hypertrio.RR1,
		Seed:       1,
		Scale:      0.02,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := hypertrio.Run(hypertrio.HyperTRIOConfig(), tr)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Utilization > 0.9)
	// Output: true
}
