package trace

import (
	"fmt"
	"math/rand"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// TenantClass is the identity of one class inside a mixed tenant
// population: a contiguous SID range sharing one workload profile and
// one arbitration weight. Classes are carried on Meta so the
// performance model can build class-correct address spaces and report
// per-class results without re-deriving the partition.
type TenantClass struct {
	Name    string
	Profile workload.Profile
	Tenants int
	// Weight is the class's arbitration weight: a weight-w tenant gets w
	// consecutive burst slots per round-robin turn (or w-proportional
	// probability under random interleave). Weight 0 means 1.
	Weight int
}

// weight returns the effective arbitration weight (zero → 1).
func (c TenantClass) weight() int {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// ClassSpec describes one class of a mixed population for construction:
// the class identity plus its budget scale. Scale multiplies the
// per-tenant Table III request budgets; a heavy-hitter class pairs a
// large Weight with a proportionally larger Scale so the edge-effect
// truncation (first exhausted tenant ends the stream) does not cut the
// run to 1/weight of its intended length.
type ClassSpec struct {
	Name    string
	Profile workload.Profile
	Tenants int
	Weight  int
	Scale   float64
}

// MixConfig drives NewMixStream / ConstructMix: a seeded, deterministic
// composition of tenant classes under one interleave discipline. SIDs
// are assigned contiguously in class order starting at 1.
type MixConfig struct {
	Classes    []ClassSpec
	Interleave Interleave
	Seed       int64
	// RNG selects the per-tenant random-source implementation, exactly as
	// in Config (CompactRNG for million-tenant streaming).
	RNG workload.RNG
}

// TotalTenants returns the population size across all classes.
func (c MixConfig) TotalTenants() int {
	n := 0
	for _, cl := range c.Classes {
		n += cl.Tenants
	}
	return n
}

func (c MixConfig) validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("trace: mix needs at least one class")
	}
	if c.Interleave.Burst <= 0 {
		return fmt.Errorf("trace: interleave burst must be positive")
	}
	for i, cl := range c.Classes {
		if cl.Tenants <= 0 {
			return fmt.Errorf("trace: mix class %d (%s): tenants must be positive, got %d", i, cl.Name, cl.Tenants)
		}
		if cl.Weight < 0 {
			return fmt.Errorf("trace: mix class %d (%s): weight must be >= 0, got %d", i, cl.Name, cl.Weight)
		}
		if cl.Scale <= 0 {
			return fmt.Errorf("trace: mix class %d (%s): scale must be positive, got %v", i, cl.Name, cl.Scale)
		}
		if err := cl.Profile.Validate(); err != nil {
			return fmt.Errorf("trace: mix class %d (%s): %w", i, cl.Name, err)
		}
	}
	return nil
}

// classes renders the construction spec as the identity carried on Meta.
func (c MixConfig) classes() []TenantClass {
	out := make([]TenantClass, len(c.Classes))
	for i, cl := range c.Classes {
		w := cl.Weight
		if w <= 0 {
			w = 1
		}
		out[i] = TenantClass{Name: cl.Name, Profile: cl.Profile, Tenants: cl.Tenants, Weight: w}
	}
	return out
}

// MixStream is the online source for a mixed tenant population. It is
// the multi-class generalization of Stream: O(tenants) memory, the same
// edge-effect truncation (the first exhausted tenant — in any class —
// ends the stream), and a weighted interleave where a weight-w tenant
// receives w consecutive base bursts per round-robin turn, or
// w-proportional draw probability under random arbitration.
type MixStream struct {
	cfg   MixConfig
	total int

	gens    []*workload.Generator
	stats   []TenantStat
	bursts  []int32 // per-tenant burst length: Interleave.Burst x class weight
	weights []int   // per-tenant arbitration weight (for random draws)
	sumW    int
	rng     *rand.Rand

	cur       int
	burstLeft int
	done      bool
}

// NewMixStream validates the mix and builds the online source.
func NewMixStream(c MixConfig) (*MixStream, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	s := &MixStream{cfg: c, total: c.TotalTenants()}
	s.init()
	return s, nil
}

func (s *MixStream) init() {
	c := s.cfg
	if s.gens == nil {
		s.gens = make([]*workload.Generator, s.total)
		s.stats = make([]TenantStat, s.total)
		s.bursts = make([]int32, s.total)
		s.weights = make([]int, s.total)
	}
	s.sumW = 0
	i := 0
	for _, cl := range c.Classes {
		w := cl.Weight
		if w <= 0 {
			w = 1
		}
		for t := 0; t < cl.Tenants; t++ {
			sid := mem.SID(i + 1)
			s.gens[i] = workload.NewGeneratorRNG(cl.Profile, sid, c.Seed, cl.Scale, c.RNG)
			s.stats[i] = TenantStat{SID: sid, Budget: s.gens[i].Total()}
			s.bursts[i] = int32(c.Interleave.Burst * w)
			s.weights[i] = w
			s.sumW += w
			i++
		}
	}
	s.rng = rand.New(rand.NewSource(c.Seed ^ 0x7261_6e64))
	s.cur, s.burstLeft, s.done = 0, 0, false
}

// Meta returns the stream's identity. Benchmark/Scale/Profile describe
// the first class (the population lead); Classes carries the full
// partition, which class-aware consumers use instead.
func (s *MixStream) Meta() Meta {
	lead := s.cfg.Classes[0]
	return Meta{
		Benchmark:  lead.Profile.Kind,
		Interleave: s.cfg.Interleave,
		Tenants:    s.total,
		Seed:       s.cfg.Seed,
		Scale:      lead.Scale,
		Profile:    lead.Profile,
		Classes:    s.cfg.classes(),
	}
}

// drawTenant picks a tenant index with probability proportional to its
// arbitration weight (uniform when all weights are 1, reproducing
// Stream's draw semantics bit-for-bit would require identical RNG
// consumption — mixes are a distinct stream identity, not a superset
// encoding of single-class streams).
func (s *MixStream) drawTenant() int {
	if s.sumW == s.total { // all weights 1
		return s.rng.Intn(s.total)
	}
	d := s.rng.Intn(s.sumW)
	for i, w := range s.weights {
		if d < w {
			return i
		}
		d -= w
	}
	return s.total - 1 // unreachable
}

// Next synthesizes the next packet of the weighted interleaved stream.
func (s *MixStream) Next() (workload.Packet, bool) {
	if s.done {
		return workload.Packet{}, false
	}
	if s.burstLeft == 0 {
		if s.cfg.Interleave.Kind == Random {
			s.cur = s.drawTenant()
			s.burstLeft = s.cfg.Interleave.Burst
		} else {
			s.burstLeft = int(s.bursts[s.cur])
		}
	}
	pkt, ok := s.gens[s.cur].Next()
	if !ok {
		s.done = true
		return workload.Packet{}, false
	}
	st := &s.stats[s.cur]
	st.Packets++
	st.Consumed += workload.RequestsPerPacket
	s.burstLeft--
	if s.burstLeft == 0 && s.cfg.Interleave.Kind == RoundRobin {
		s.cur = (s.cur + 1) % s.total
	}
	return pkt, true
}

// Reset rewinds the stream to its beginning.
func (s *MixStream) Reset() { s.init() }

// Materialized returns nil: the stream never holds the whole sequence.
func (s *MixStream) Materialized() *Trace { return nil }

// TenantStats returns the per-tenant accounting accumulated so far; the
// returned slice is the stream's live state.
func (s *MixStream) TenantStats() []TenantStat { return s.stats }

// MinBudget returns the smallest per-tenant request budget across every
// class — the edge-effect bound on stream length.
func (s *MixStream) MinBudget() int {
	if len(s.stats) == 0 {
		return 0
	}
	min := s.stats[0].Budget
	for _, st := range s.stats[1:] {
		if st.Budget < min {
			min = st.Budget
		}
	}
	return min
}

// ConstructMix materializes a mixed-population trace by draining a
// MixStream — one generation path for both modes, so streaming and
// materialized mixes agree bit-for-bit by construction (the same
// contract Construct has with Stream).
func ConstructMix(c MixConfig) (*Trace, error) {
	src, err := NewMixStream(c)
	if err != nil {
		return nil, err
	}
	meta := src.Meta()
	tr := &Trace{
		Benchmark:  meta.Benchmark,
		Interleave: meta.Interleave,
		Tenants:    meta.Tenants,
		Seed:       meta.Seed,
		Scale:      meta.Scale,
		Profile:    meta.Profile,
		Classes:    meta.Classes,
	}
	tr.Packets = make([]workload.Packet, 0, (src.MinBudget()/workload.RequestsPerPacket)*meta.Tenants)
	for {
		pkt, ok := src.Next()
		if !ok {
			break
		}
		tr.Packets = append(tr.Packets, pkt)
	}
	tr.Stats = src.TenantStats()
	return tr, nil
}
