package trace

import (
	"testing"

	"hypertrio/internal/workload"
)

// TestStreamMatchesMaterialized proves the equivalence contract: draining a
// Stream yields exactly the packet sequence and tenant stats of the
// materialized trace for the same Config, across interleavings and RNGs.
// (Construct is implemented by draining a Stream, so this is a regression
// guard against the two paths ever diverging again.)
func TestStreamMatchesMaterialized(t *testing.T) {
	cases := []Config{
		{Benchmark: workload.Iperf3, Tenants: 7, Interleave: RR1, Seed: 42, Scale: 0.001},
		{Benchmark: workload.Mediastream, Tenants: 5, Interleave: RR4, Seed: 1, Scale: 0.0005},
		{Benchmark: workload.Websearch, Tenants: 9, Interleave: RAND1, Seed: 99, Scale: 0.0005},
		{Benchmark: workload.Iperf3, Tenants: 11, Interleave: RAND1, Seed: 7, Scale: 0.001, RNG: workload.CompactRNG},
	}
	for _, c := range cases {
		tr, err := Construct(c)
		if err != nil {
			t.Fatalf("%v %v: Construct: %v", c.Benchmark, c.Interleave, err)
		}
		s, err := NewStream(c)
		if err != nil {
			t.Fatalf("%v %v: NewStream: %v", c.Benchmark, c.Interleave, err)
		}
		for i, want := range tr.Packets {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("%v %v: stream ended at packet %d, trace has %d", c.Benchmark, c.Interleave, i, len(tr.Packets))
			}
			if got != want {
				t.Fatalf("%v %v: packet %d: stream %+v != trace %+v", c.Benchmark, c.Interleave, i, got, want)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%v %v: stream longer than materialized trace (%d packets)", c.Benchmark, c.Interleave, len(tr.Packets))
		}
		stats := s.TenantStats()
		if len(stats) != len(tr.Stats) {
			t.Fatalf("%v %v: stats length %d != %d", c.Benchmark, c.Interleave, len(stats), len(tr.Stats))
		}
		for i := range stats {
			if stats[i] != tr.Stats[i] {
				t.Fatalf("%v %v: tenant %d stats: stream %+v != trace %+v", c.Benchmark, c.Interleave, i, stats[i], tr.Stats[i])
			}
		}
	}
}

// TestStreamReset proves Reset rewinds to the bit-identical sequence.
func TestStreamReset(t *testing.T) {
	c := Config{Benchmark: workload.Websearch, Tenants: 6, Interleave: RAND1, Seed: 5, Scale: 0.0005}
	s, err := NewStream(c)
	if err != nil {
		t.Fatal(err)
	}
	var first []workload.Packet
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		first = append(first, p)
	}
	if len(first) == 0 {
		t.Fatal("empty stream")
	}
	s.Reset()
	for i, want := range first {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("second pass ended at %d of %d", i, len(first))
		}
		if got != want {
			t.Fatalf("second pass packet %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("second pass longer than first")
	}
}

// TestTraceSourceRoundTrip checks the materialized adapter: full replay,
// Reset, and Materialized identity.
func TestTraceSourceRoundTrip(t *testing.T) {
	c := Config{Benchmark: workload.Iperf3, Tenants: 3, Interleave: RR1, Seed: 2, Scale: 0.001}
	tr, err := Construct(c)
	if err != nil {
		t.Fatal(err)
	}
	src := tr.Source()
	if src.Materialized() != tr {
		t.Fatal("Materialized should return the backing trace")
	}
	if got := src.Meta(); got.Tenants != tr.Tenants || got.Benchmark != tr.Benchmark || got.Seed != tr.Seed {
		t.Fatalf("Meta mismatch: %+v", got)
	}
	for pass := 0; pass < 2; pass++ {
		for i, want := range tr.Packets {
			got, ok := src.Next()
			if !ok || got != want {
				t.Fatalf("pass %d packet %d: got %+v ok=%v", pass, i, got, ok)
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatalf("pass %d: adapter overran the trace", pass)
		}
		src.Reset()
	}
}
