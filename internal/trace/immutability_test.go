package trace_test

import (
	"reflect"
	"sync"
	"testing"

	"hypertrio/internal/core"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// TestSharedTraceConcurrentRuns proves the Trace immutability contract:
// several core.Systems replay one shared *trace.Trace concurrently, and
// under `go test -race` any write to the trace (its Packets, Stats or
// embedded workload.Profile) by System.Run would be reported as a data
// race. The test also checks the trace is bit-identical to a pre-run
// snapshot and that identical configurations produce identical results,
// the properties internal/runner's shared trace cache depends on.
func TestSharedTraceConcurrentRuns(t *testing.T) {
	tr, err := trace.Construct(trace.Config{
		Benchmark:  workload.Websearch,
		Tenants:    16,
		Interleave: trace.RR1,
		Seed:       42,
		Scale:      0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	packets := append([]workload.Packet(nil), tr.Packets...)
	tenantStats := append([]trace.TenantStat(nil), tr.Stats...)
	profile := tr.Profile

	// Base, full HyperTRIO, an oracle-replacement DevTLB (which
	// precomputes the future over the trace), and a duplicate of the
	// Base config to pin determinism.
	oracle := core.BaseConfig()
	oracle.DevTLB.Policy = tlb.Oracle
	cfgs := []core.Config{core.BaseConfig(), core.HyperTRIOConfig(), oracle, core.BaseConfig()}

	results := make([]core.Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg core.Config) {
			defer wg.Done()
			sys, err := core.NewSystem(cfg, tr)
			if err != nil {
				t.Errorf("system %d: %v", i, err)
				return
			}
			results[i], err = sys.Run()
			if err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}(i, cfg)
	}
	wg.Wait()

	if !reflect.DeepEqual(results[0], results[3]) {
		t.Errorf("identical configs diverged over a shared trace:\n%+v\n%+v", results[0], results[3])
	}
	if tr.Profile != profile {
		t.Errorf("profile mutated during runs: %+v -> %+v", profile, tr.Profile)
	}
	if len(tr.Packets) != len(packets) || len(tr.Stats) != len(tenantStats) {
		t.Fatalf("trace resized during runs: %d packets, %d stats", len(tr.Packets), len(tr.Stats))
	}
	for i := range packets {
		if tr.Packets[i] != packets[i] {
			t.Fatalf("packet %d mutated during runs", i)
		}
	}
	for i := range tenantStats {
		if tr.Stats[i] != tenantStats[i] {
			t.Fatalf("tenant stat %d mutated during runs", i)
		}
	}
}
