package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// Binary trace format ("HSIO"):
//
//	magic   [4]byte  "HSIO"
//	version uint16
//	header: benchmark uint8, interleave kind uint8, burst varint,
//	        tenants varint, seed varint (zigzag), scale float64,
//	        packet count varint, tenant-stat count varint
//	tenant stats: sid, budget, consumed, packets (varints)
//	packets: sid varint, ring-delta varint, data varint, unmap varint,
//	         unmap shift uint8 (only when unmap != 0; presence flagged)
//
// The format favours compactness (varints, per-field deltas) so that
// paper-scale traces (~70M requests) remain practical on disk.

const (
	magic   = "HSIO"
	version = 1
)

// Write serializes the trace to w.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(version); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(t.Benchmark)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(t.Interleave.Kind)); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.Interleave.Burst)); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.Tenants)); err != nil {
		return err
	}
	if err := putVarint(t.Seed); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(t.Scale)); err != nil {
		return err
	}
	// Effective workload profile (drives page-table construction on
	// replay); Kind is implied by the header's benchmark byte.
	smallData := uint64(0)
	if t.Profile.SmallData {
		smallData = 1
	}
	for _, v := range []uint64{
		uint64(t.Profile.DataPages), uint64(t.Profile.Streams),
		uint64(t.Profile.BackgroundChance), uint64(t.Profile.RunLength),
		uint64(t.Profile.InitPages), uint64(t.Profile.InitTouches),
		uint64(t.Profile.JumpChance),
		uint64(t.Profile.MinRequests), uint64(t.Profile.MaxRequests),
		smallData,
	} {
		if err := putUvarint(v); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(t.Packets))); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Stats))); err != nil {
		return err
	}
	for _, s := range t.Stats {
		if err := putUvarint(uint64(s.SID)); err != nil {
			return err
		}
		if err := putUvarint(uint64(s.Budget)); err != nil {
			return err
		}
		if err := putUvarint(uint64(s.Consumed)); err != nil {
			return err
		}
		if err := putUvarint(uint64(s.Packets)); err != nil {
			return err
		}
	}
	for _, p := range t.Packets {
		if err := putUvarint(uint64(p.SID)); err != nil {
			return err
		}
		if err := putUvarint(p.Ring - workload.RingIOVA); err != nil {
			return err
		}
		if err := putUvarint(p.Data); err != nil {
			return err
		}
		if err := putUvarint(p.UnmapIOVA); err != nil {
			return err
		}
		if p.UnmapIOVA != 0 {
			if err := bw.WriteByte(p.UnmapShift); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	b, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	t.Benchmark = workload.Kind(b)
	if b, err = br.ReadByte(); err != nil {
		return nil, err
	}
	t.Interleave.Kind = InterleaveKind(b)
	burst, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t.Interleave.Burst = int(burst)
	tenants, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t.Tenants = int(tenants)
	if t.Seed, err = binary.ReadVarint(br); err != nil {
		return nil, err
	}
	var scaleBits uint64
	if err := binary.Read(br, binary.LittleEndian, &scaleBits); err != nil {
		return nil, err
	}
	t.Scale = math.Float64frombits(scaleBits)
	t.Profile.Kind = t.Benchmark
	var pf [10]uint64
	for i := range pf {
		if pf[i], err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
	}
	t.Profile.DataPages = int(pf[0])
	t.Profile.Streams = int(pf[1])
	t.Profile.BackgroundChance = uint8(pf[2])
	t.Profile.RunLength = int(pf[3])
	t.Profile.InitPages = int(pf[4])
	t.Profile.InitTouches = int(pf[5])
	t.Profile.JumpChance = uint8(pf[6])
	t.Profile.MinRequests = int(pf[7])
	t.Profile.MaxRequests = int(pf[8])
	t.Profile.SmallData = pf[9] != 0
	npkts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nstats, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 31
	if npkts > maxReasonable || nstats > maxReasonable {
		return nil, fmt.Errorf("trace: implausible counts (%d packets, %d stats)", npkts, nstats)
	}
	// Grow the slices as records actually arrive instead of trusting the
	// declared counts: a corrupt or hostile header can claim 2^31 records
	// while the body holds none, and a single up-front make() of that size
	// would allocate gigabytes before the first read error surfaces.
	const initialCap = 4096
	t.Stats = make([]TenantStat, 0, min(nstats, initialCap))
	for i := uint64(0); i < nstats; i++ {
		sid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		budget, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		consumed, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		pkts, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		t.Stats = append(t.Stats, TenantStat{SID: mem.SID(sid), Budget: int(budget), Consumed: int(consumed), Packets: int(pkts)})
	}
	t.Packets = make([]workload.Packet, 0, min(npkts, initialCap))
	for i := uint64(0); i < npkts; i++ {
		sid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		ring, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		data, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		unmap, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		ringAddr := workload.RingIOVA + ring
		p := workload.Packet{
			SID:       mem.SID(sid),
			Ring:      ringAddr,
			Data:      data,
			Mailbox:   ringAddr&^uint64(mem.PageSize-1) + mem.PageSize,
			UnmapIOVA: unmap,
		}
		if unmap != 0 {
			shift, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			p.UnmapShift = shift
		}
		t.Packets = append(t.Packets, p)
	}
	return t, nil
}
