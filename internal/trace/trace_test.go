package trace

import (
	"bytes"
	"testing"

	"hypertrio/internal/workload"
)

func mustConstruct(t *testing.T, c Config) *Trace {
	t.Helper()
	tr, err := Construct(c)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConstructValidation(t *testing.T) {
	bad := []Config{
		{Benchmark: workload.Iperf3, Tenants: 0, Interleave: RR1, Scale: 0.1},
		{Benchmark: workload.Iperf3, Tenants: 4, Interleave: Interleave{RoundRobin, 0}, Scale: 0.1},
		{Benchmark: workload.Iperf3, Tenants: 4, Interleave: RR1, Scale: 0},
		{Benchmark: workload.Iperf3, Tenants: 4, Interleave: RR1, Scale: 1.5},
	}
	for i, c := range bad {
		if _, err := Construct(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestRoundRobinInterleaving(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 4, Interleave: RR1, Seed: 1, Scale: 0.005})
	// RR1: SIDs cycle 1,2,3,4,1,2,...
	for i, p := range tr.Packets[:40] {
		want := uint16(i%4) + 1
		if uint16(p.SID) != want {
			t.Fatalf("packet %d from SID %d, want %d", i, p.SID, want)
		}
	}
}

func TestRR4BurstStructure(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 3, Interleave: RR4, Seed: 1, Scale: 0.005})
	for i := 0; i+4 <= 24; i += 4 {
		sid := tr.Packets[i].SID
		for j := 1; j < 4; j++ {
			if tr.Packets[i+j].SID != sid {
				t.Fatalf("burst broken at packet %d", i+j)
			}
		}
	}
}

func TestRandomInterleavingTouchesAllTenants(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 8, Interleave: RAND1, Seed: 3, Scale: 0.01})
	seen := map[uint16]bool{}
	for _, p := range tr.Packets {
		seen[uint16(p.SID)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("random interleave used %d tenants, want 8", len(seen))
	}
}

func TestEdgeEffectTruncation(t *testing.T) {
	// RR1 consumes all tenants at the same rate, so the trace stops when
	// the minimum-budget tenant runs out: consumed per tenant differs by
	// at most one packet.
	tr := mustConstruct(t, Config{Benchmark: workload.Mediastream, Tenants: 6, Interleave: RR1, Seed: 5, Scale: 0.02})
	minP, maxP := tr.Stats[0].Packets, tr.Stats[0].Packets
	for _, s := range tr.Stats {
		if s.Packets < minP {
			minP = s.Packets
		}
		if s.Packets > maxP {
			maxP = s.Packets
		}
		if s.Consumed > s.Budget {
			t.Fatalf("tenant %d consumed %d > budget %d", s.SID, s.Consumed, s.Budget)
		}
	}
	if maxP-minP > 1 {
		t.Fatalf("RR1 packet counts spread %d..%d, want within 1", minP, maxP)
	}
	// The minimum-budget tenant must be (nearly) exhausted.
	minBudgetPkts := tr.MinTenantBudget() / workload.RequestsPerPacket
	if maxP < minBudgetPkts-1 {
		t.Fatalf("trace stopped early: %d packets per tenant, min budget allows %d", maxP, minBudgetPkts)
	}
}

func TestTableIIITotalApproxTenantsTimesMin(t *testing.T) {
	// The paper's Table III totals equal ~tenants x min-requests under
	// RR1; verify the same identity at reduced scale.
	tr := mustConstruct(t, Config{Benchmark: workload.Websearch, Tenants: 32, Interleave: RR1, Seed: 7, Scale: 0.01})
	want := 32 * (tr.MinTenantBudget() / workload.RequestsPerPacket) * workload.RequestsPerPacket
	got := tr.Requests()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 32*workload.RequestsPerPacket {
		t.Fatalf("total %d not within one packet/tenant of %d", got, want)
	}
}

func TestConstructDeterminism(t *testing.T) {
	c := Config{Benchmark: workload.Websearch, Tenants: 5, Interleave: RAND1, Seed: 11, Scale: 0.01}
	a := mustConstruct(t, c)
	b := mustConstruct(t, c)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestFlatten(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 2, Interleave: RR1, Seed: 1, Scale: 0.005})
	reqs := tr.Flatten()
	if len(reqs) != tr.Requests() {
		t.Fatalf("flatten produced %d requests, want %d", len(reqs), tr.Requests())
	}
	for i, p := range tr.Packets {
		r := reqs[i*3 : i*3+3]
		if r[0].Type != RingPointer || r[1].Type != DataBuffer || r[2].Type != Mailbox {
			t.Fatalf("packet %d types: %v %v %v", i, r[0].Type, r[1].Type, r[2].Type)
		}
		if r[0].IOVA != p.Ring || r[1].IOVA != p.Data || r[2].IOVA != p.Mailbox {
			t.Fatalf("packet %d IOVAs mismatch", i)
		}
		for _, rr := range r {
			if rr.SID != p.SID {
				t.Fatalf("packet %d SID mismatch", i)
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Mediastream, Tenants: 7, Interleave: RR4, Seed: 13, Scale: 0.01})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != tr.Benchmark || got.Interleave != tr.Interleave ||
		got.Tenants != tr.Tenants || got.Seed != tr.Seed || got.Scale != tr.Scale {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("packet count %d, want %d", len(got.Packets), len(tr.Packets))
	}
	for i := range got.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d: %+v vs %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
	if len(got.Stats) != len(tr.Stats) {
		t.Fatalf("stats count %d, want %d", len(got.Stats), len(tr.Stats))
	}
	for i := range got.Stats {
		if got.Stats[i] != tr.Stats[i] {
			t.Fatalf("stat %d: %+v vs %+v", i, got.Stats[i], tr.Stats[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("HS"))); err == nil {
		t.Fatal("truncated magic accepted")
	}
	var buf bytes.Buffer
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 2, Interleave: RR1, Seed: 1, Scale: 0.005})
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream.
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestParseInterleave(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Interleave
	}{{"RR1", RR1}, {"rr4", RR4}, {"RAND1", RAND1}, {"RAND16", Interleave{Random, 16}}} {
		got, err := ParseInterleave(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseInterleave(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, bad := range []string{"XX1", "RR", "RR0", "RAND-1", ""} {
		if _, err := ParseInterleave(bad); err == nil {
			t.Errorf("ParseInterleave(%q) accepted", bad)
		}
	}
}

func TestInterleaveString(t *testing.T) {
	if RR1.String() != "RR1" || RR4.String() != "RR4" || RAND1.String() != "RAND1" {
		t.Fatalf("%v %v %v", RR1, RR4, RAND1)
	}
}

func TestCustomProfileOverride(t *testing.T) {
	custom := workload.ProfileFor(workload.Iperf3)
	custom.DataPages = 4
	custom.Streams = 2
	custom.MinRequests = 3000
	custom.MaxRequests = 3000
	tr, err := Construct(Config{
		Benchmark: workload.Iperf3, Tenants: 3, Interleave: RR1,
		Seed: 1, Scale: 1.0, Profile: &custom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Profile.DataPages != 4 || tr.Profile.Streams != 2 {
		t.Fatalf("trace did not carry the custom profile: %+v", tr.Profile)
	}
	// With identical budgets the trace length is exact.
	if got, want := len(tr.Packets), 3*(3000/workload.RequestsPerPacket); got != want {
		t.Fatalf("trace has %d packets, want %d", got, want)
	}
	for _, p := range tr.Packets {
		if p.Data >= workload.DataBase && p.Data < workload.InitBase {
			page := (p.Data - workload.DataBase) >> 21
			if page >= 4 {
				t.Fatalf("packet uses data page %d outside the custom 4-page ring", page)
			}
		}
	}
	// Invalid custom profiles are rejected.
	bad := custom
	bad.Streams = 99
	if _, err := Construct(Config{Benchmark: workload.Iperf3, Tenants: 1,
		Interleave: RR1, Seed: 1, Scale: 1.0, Profile: &bad}); err == nil {
		t.Fatal("invalid custom profile accepted")
	}
}

func TestBinaryPreservesProfile(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Websearch, Tenants: 3, Interleave: RR1, Seed: 2, Scale: 0.01})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile != tr.Profile {
		t.Fatalf("profile did not round-trip:\n%+v\n%+v", got.Profile, tr.Profile)
	}
}

func TestBinaryHeaderFieldCorruption(t *testing.T) {
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 2, Interleave: RR1, Seed: 1, Scale: 0.005})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the version varint (byte 4, right after the magic).
	bad := append([]byte{}, raw...)
	bad[4] = 0x7f
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncate inside the profile block.
	if _, err := Read(bytes.NewReader(raw[:20])); err == nil {
		t.Error("profile-truncated trace accepted")
	}
}

func TestTraceAccessors(t *testing.T) {
	var empty Trace
	if empty.MinTenantBudget() != 0 || empty.MaxTenantBudget() != 0 {
		t.Fatal("empty trace budgets should be zero")
	}
	if empty.Requests() != 0 {
		t.Fatal("empty trace has requests")
	}
	if got := RequestType(99).String(); got == "" {
		t.Fatal("unknown request type has empty String")
	}
	if got := InterleaveKind(9).String(); got == "" {
		t.Fatal("unknown interleave kind has empty String")
	}
}

func TestSmallDataProfileRoundTrip(t *testing.T) {
	small := workload.SmallDataVariant(workload.ProfileFor(workload.Iperf3))
	tr := mustConstruct(t, Config{Benchmark: workload.Iperf3, Tenants: 2, Interleave: RR1, Seed: 1, Scale: 0.005, Profile: &small})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Profile.SmallData {
		t.Fatal("SmallData flag lost in serialization")
	}
	if got.Profile != tr.Profile {
		t.Fatalf("profile mismatch: %+v vs %+v", got.Profile, tr.Profile)
	}
}
