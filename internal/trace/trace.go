// Package trace implements the HyperSIO Trace Constructor: it merges
// per-tenant packet streams into a single hyper-tenant trace using the
// paper's inter-tenant interleavings (round-robin or random, with a
// configurable burst length), truncates at the edge effect (generation
// stops when any tenant runs out of requests, §IV-B), computes Table III
// style statistics, and serializes traces to a compact binary format.
package trace

import (
	"fmt"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// InterleaveKind selects the inter-tenant arbitration the constructor
// models (§IV-B): RoundRobin matches a NIC's hardware queue arbiter with
// steady long-lived streams; Random models tenants issuing independent
// requests.
type InterleaveKind uint8

const (
	RoundRobin InterleaveKind = iota
	Random
)

func (k InterleaveKind) String() string {
	switch k {
	case RoundRobin:
		return "RR"
	case Random:
		return "RAND"
	}
	return fmt.Sprintf("InterleaveKind(%d)", uint8(k))
}

// Interleave is an interleaving with its burst length: RR1, RR4, RAND1
// in the paper's notation (the suffix is the number of consecutive
// packets one tenant sends before the arbiter moves on).
type Interleave struct {
	Kind  InterleaveKind
	Burst int
}

// The paper's three evaluated interleavings.
var (
	RR1   = Interleave{RoundRobin, 1}
	RR4   = Interleave{RoundRobin, 4}
	RAND1 = Interleave{Random, 1}
)

// String renders the paper's notation, e.g. "RR4".
func (iv Interleave) String() string { return fmt.Sprintf("%v%d", iv.Kind, iv.Burst) }

// ParseInterleave accepts "RR1", "rr4", "RAND1", ...
func ParseInterleave(s string) (Interleave, error) {
	var kind InterleaveKind
	var burst int
	var tail string
	switch {
	case len(s) >= 4 && (s[:4] == "RAND" || s[:4] == "rand"):
		kind, tail = Random, s[4:]
	case len(s) >= 2 && (s[:2] == "RR" || s[:2] == "rr"):
		kind, tail = RoundRobin, s[2:]
	default:
		return Interleave{}, fmt.Errorf("trace: unknown interleaving %q", s)
	}
	if _, err := fmt.Sscanf(tail, "%d", &burst); err != nil || burst <= 0 {
		return Interleave{}, fmt.Errorf("trace: bad burst in %q", s)
	}
	return Interleave{kind, burst}, nil
}

// TenantStat summarizes one tenant's contribution to a trace.
type TenantStat struct {
	SID      mem.SID
	Budget   int // requests available in the tenant's log
	Consumed int // requests actually placed in the hyper-trace
	Packets  int
}

// Trace is a constructed hyper-tenant trace plus its metadata.
//
// Immutability contract: a Trace is frozen the moment Construct (or
// binary decoding) returns. Nothing in this module writes to Packets,
// Stats or Profile afterwards — core.System treats its trace as strictly
// read-only, and Profile contains only scalar fields, so copying it by
// value shares nothing mutable. Any number of concurrent simulations may
// therefore replay one *Trace; internal/runner's trace cache relies on
// this to hand a single constructed trace to every worker goroutine
// that sweeps it (TestSharedTraceConcurrentRuns proves the contract
// under the race detector).
type Trace struct {
	Benchmark  workload.Kind
	Interleave Interleave
	Tenants    int
	Seed       int64
	Scale      float64
	// Profile is the effective per-tenant workload calibration the trace
	// was generated with; the performance model builds matching address
	// spaces from it.
	Profile workload.Profile
	// Classes, when non-empty, partitions the tenant population into
	// contiguous per-class SID ranges (mixed-population traces built by
	// ConstructMix); empty for uniform single-profile traces. Not part of
	// the binary serialization format — mixes are regenerated from their
	// scenario, never shipped as trace files.
	Classes []TenantClass

	Packets []workload.Packet
	Stats   []TenantStat
}

// Requests returns the total number of translation requests in the trace.
func (t *Trace) Requests() int {
	return len(t.Packets) * workload.RequestsPerPacket
}

// MaxTenantBudget / MinTenantBudget return Table III's per-tenant
// translation-request bounds (over the tenants' recorded logs).
func (t *Trace) MaxTenantBudget() int {
	max := 0
	for _, s := range t.Stats {
		if s.Budget > max {
			max = s.Budget
		}
	}
	return max
}

func (t *Trace) MinTenantBudget() int {
	if len(t.Stats) == 0 {
		return 0
	}
	min := t.Stats[0].Budget
	for _, s := range t.Stats[1:] {
		if s.Budget < min {
			min = s.Budget
		}
	}
	return min
}

// Config drives Construct.
type Config struct {
	Benchmark  workload.Kind
	Tenants    int
	Interleave Interleave
	Seed       int64
	// Scale shrinks the per-tenant Table III request budgets; 1.0 is
	// paper scale (tens of millions of requests at 1024 tenants).
	Scale float64
	// Profile, when non-nil, overrides the calibrated profile for
	// Benchmark — the hook for user-defined workloads (e.g. a key-value
	// store with small values, the paper's introductory motivation).
	Profile *workload.Profile
	// RNG selects the per-tenant random-source implementation.
	// workload.StdRNG (the zero value) reproduces every golden sequence;
	// workload.CompactRNG shrinks generator state ~60x for million-tenant
	// streaming and draws different (still deterministic) sequences. The
	// choice is part of a stream's identity but is not serialized: binary
	// traces are always written from StdRNG constructions.
	RNG workload.RNG
}

func (c Config) validate() error {
	if c.Tenants <= 0 {
		return fmt.Errorf("trace: tenants must be positive, got %d", c.Tenants)
	}
	if c.Interleave.Burst <= 0 {
		return fmt.Errorf("trace: interleave burst must be positive")
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("trace: scale must be in (0,1], got %v", c.Scale)
	}
	return nil
}

// Construct builds the hyper-tenant trace. Tenant SIDs are 1..Tenants.
// Generation stops the moment any tenant's generator is exhausted — the
// paper's edge-effect rule, which keeps every modeled tenant active for
// the whole trace.
func Construct(c Config) (*Trace, error) {
	// Construct is the materializing consumer of the online Stream: it
	// drains the source into a packet slice. One generation path serves
	// both modes, so a Stream and the materialized trace of the same
	// Config agree bit-for-bit by construction.
	src, err := NewStream(c)
	if err != nil {
		return nil, err
	}
	meta := src.Meta()
	tr := &Trace{
		Benchmark:  meta.Benchmark,
		Interleave: meta.Interleave,
		Tenants:    meta.Tenants,
		Seed:       meta.Seed,
		Scale:      meta.Scale,
		Profile:    meta.Profile,
	}
	// Pre-size: the shortest budget bounds the trace length.
	tr.Packets = make([]workload.Packet, 0, (src.MinBudget()/workload.RequestsPerPacket)*c.Tenants)
	for {
		pkt, ok := src.Next()
		if !ok {
			break
		}
		tr.Packets = append(tr.Packets, pkt)
	}
	tr.Stats = src.TenantStats()
	return tr, nil
}

// RequestType labels the three translations of one packet.
type RequestType uint8

const (
	RingPointer RequestType = iota
	DataBuffer
	Mailbox
)

func (t RequestType) String() string {
	switch t {
	case RingPointer:
		return "ring"
	case DataBuffer:
		return "data"
	case Mailbox:
		return "mailbox"
	}
	return fmt.Sprintf("RequestType(%d)", uint8(t))
}

// Request is one flattened translation request; Flatten expands packets
// into the per-request stream (used by oracle precomputation and by the
// trace inspector CLI).
type Request struct {
	SID  mem.SID
	IOVA uint64
	Type RequestType
}

// Flatten expands the trace's packets into individual requests in
// arrival order: ring, data, mailbox per packet.
func (t *Trace) Flatten() []Request {
	out := make([]Request, 0, t.Requests())
	for _, p := range t.Packets {
		out = append(out,
			Request{p.SID, p.Ring, RingPointer},
			Request{p.SID, p.Data, DataBuffer},
			Request{p.SID, p.Mailbox, Mailbox},
		)
	}
	return out
}
