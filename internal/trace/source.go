package trace

import "hypertrio/internal/workload"

// Meta is the identity of a hyper-tenant packet stream: everything a
// consumer needs to build matching address spaces and report the run,
// without holding the packets themselves.
type Meta struct {
	Benchmark  workload.Kind
	Interleave Interleave
	Tenants    int
	Seed       int64
	Scale      float64
	// Profile is the effective per-tenant calibration the stream is
	// generated with (overrides already applied).
	Profile workload.Profile
	// Classes, when non-empty, partitions the population into contiguous
	// per-class SID ranges (mixed-population sources): class i covers the
	// Tenants[i] SIDs following the previous classes, starting at SID 1.
	// Empty means one uniform class of Profile across all tenants.
	Classes []TenantClass
}

// Source is a pull-based iterator over a hyper-tenant packet stream — the
// abstraction that lets the performance model replay either a fully
// materialized *Trace or an online generator-backed stream (O(tenants)
// memory instead of O(requests)) through one code path.
//
// A Source is single-consumer and stateful: Next advances it. Multi-pass
// consumers call Reset to rewind to the exact beginning; sources are
// deterministic, so every pass yields the identical sequence.
type Source interface {
	// Meta returns the stream's identity.
	Meta() Meta
	// Next returns the next packet in arrival order, or ok=false when the
	// stream is exhausted (after which it keeps returning false).
	Next() (pkt workload.Packet, ok bool)
	// Reset rewinds the source to the beginning of the identical stream.
	Reset()
	// Materialized returns the fully constructed trace behind the source,
	// or nil for online sources. Consumers that genuinely need the whole
	// sequence at once (Belady-oracle precomputation, unmap lookahead
	// scans) use it and must handle nil by failing fast or degrading
	// conservatively — never by silently draining the source.
	Materialized() *Trace
}

// TraceSource adapts a materialized *Trace to the Source interface. The
// trace is shared and read-only (see the Trace immutability contract);
// the adapter holds only a cursor, so any number of adapters may replay
// one trace concurrently.
type TraceSource struct {
	tr  *Trace
	pos int
}

// Source returns a fresh pull adapter positioned at the trace's start.
func (t *Trace) Source() *TraceSource { return &TraceSource{tr: t} }

// Meta returns the trace's identity.
func (s *TraceSource) Meta() Meta {
	return Meta{
		Benchmark:  s.tr.Benchmark,
		Interleave: s.tr.Interleave,
		Tenants:    s.tr.Tenants,
		Seed:       s.tr.Seed,
		Scale:      s.tr.Scale,
		Profile:    s.tr.Profile,
		Classes:    s.tr.Classes,
	}
}

// Next returns the next packet of the trace.
func (s *TraceSource) Next() (workload.Packet, bool) {
	if s.pos >= len(s.tr.Packets) {
		return workload.Packet{}, false
	}
	p := s.tr.Packets[s.pos]
	s.pos++
	return p, true
}

// Reset rewinds to the first packet.
func (s *TraceSource) Reset() { s.pos = 0 }

// Materialized returns the backing trace.
func (s *TraceSource) Materialized() *Trace { return s.tr }
