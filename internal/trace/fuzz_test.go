package trace

import (
	"bytes"
	"testing"

	"hypertrio/internal/workload"
)

// FuzzReadBinary throws arbitrary bytes at the binary-trace decoder. The
// decoder must never panic or allocate unboundedly (a hostile header can
// declare 2^31 records), and anything it accepts must survive a
// re-encode/re-decode round trip unchanged.
func FuzzReadBinary(f *testing.F) {
	tr, err := Construct(Config{
		Benchmark: workload.Iperf3, Tenants: 2, Interleave: RR1, Seed: 7, Scale: 0.001,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-body
	f.Add(valid[:5])            // truncated mid-header
	f.Add([]byte("HSIO"))       // magic only
	f.Add([]byte("XSIO\x01"))   // bad magic
	f.Add([]byte{})
	// Declared record counts far beyond the bytes that follow.
	huge := append(append([]byte{}, valid[:20]...), 0xFF, 0xFF, 0xFF, 0xFF, 0x07)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as we got here without panicking
		}
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded trace failed: %v", err)
		}
		// Compare via a second encode: byte equality sidesteps NaN scales,
		// which a crafted header can smuggle in and DeepEqual rejects.
		var out2 bytes.Buffer
		if err := Write(&out2, again); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("accepted trace does not reach an encoding fixpoint:\n got   %+v\n again %+v", got, again)
		}
	})
}
