package trace

import (
	"math/rand"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// Stream is the online hyper-tenant source: it synthesizes the
// interleaved packet stream on the fly from per-tenant generators instead
// of materializing it. Memory is O(tenants) — the generators and one
// interleave RNG — independent of trace length, which is what makes
// 10⁶-tenant runs possible (a materialized trace at that scale would hold
// hundreds of millions of packets).
//
// Construct drains a Stream to build its *Trace, so a Stream and the
// materialized trace for the same Config yield the identical packet
// sequence by construction; the golden suite pins this bit-for-bit.
type Stream struct {
	cfg     Config
	profile workload.Profile

	gens  []*workload.Generator
	stats []TenantStat
	rng   *rand.Rand

	cur       int
	burstLeft int
	done      bool
}

// NewStream validates the config and builds the online source. The
// per-tenant generator population is allocated up front (the O(tenants)
// cost); no per-packet state ever accumulates.
func NewStream(c Config) (*Stream, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	profile := workload.ProfileFor(c.Benchmark)
	if c.Profile != nil {
		profile = *c.Profile
		if err := profile.Validate(); err != nil {
			return nil, err
		}
	}
	s := &Stream{cfg: c, profile: profile}
	s.init()
	return s, nil
}

// init (re)builds the generator population and interleave state; Reset
// reuses it to rewind to the identical stream.
func (s *Stream) init() {
	c := s.cfg
	if s.gens == nil {
		s.gens = make([]*workload.Generator, c.Tenants)
		s.stats = make([]TenantStat, c.Tenants)
	}
	for i := 0; i < c.Tenants; i++ {
		sid := mem.SID(i + 1)
		s.gens[i] = workload.NewGeneratorRNG(s.profile, sid, c.Seed, c.Scale, c.RNG)
		s.stats[i] = TenantStat{SID: sid, Budget: s.gens[i].Total()}
	}
	s.rng = rand.New(rand.NewSource(c.Seed ^ 0x7261_6e64))
	s.cur, s.burstLeft, s.done = 0, 0, false
}

// Meta returns the stream's identity.
func (s *Stream) Meta() Meta {
	return Meta{
		Benchmark:  s.cfg.Benchmark,
		Interleave: s.cfg.Interleave,
		Tenants:    s.cfg.Tenants,
		Seed:       s.cfg.Seed,
		Scale:      s.cfg.Scale,
		Profile:    s.profile,
	}
}

// Next synthesizes the next packet of the interleaved stream. The
// interleave logic mirrors Construct's loop exactly: round-robin advances
// the tenant cursor after each full burst, random draws a tenant per
// burst, and the first exhausted tenant ends the stream (the paper's
// edge-effect truncation, §IV-B).
func (s *Stream) Next() (workload.Packet, bool) {
	if s.done {
		return workload.Packet{}, false
	}
	if s.burstLeft == 0 {
		if s.cfg.Interleave.Kind == Random {
			s.cur = s.rng.Intn(s.cfg.Tenants)
		}
		s.burstLeft = s.cfg.Interleave.Burst
	}
	pkt, ok := s.gens[s.cur].Next()
	if !ok {
		s.done = true
		return workload.Packet{}, false
	}
	st := &s.stats[s.cur]
	st.Packets++
	st.Consumed += workload.RequestsPerPacket
	s.burstLeft--
	if s.burstLeft == 0 && s.cfg.Interleave.Kind == RoundRobin {
		s.cur = (s.cur + 1) % s.cfg.Tenants
	}
	return pkt, true
}

// Reset rewinds the stream to its beginning: generators and the
// interleave RNG are re-seeded, so the next pass is identical.
func (s *Stream) Reset() { s.init() }

// Materialized returns nil: the stream never holds the whole sequence.
func (s *Stream) Materialized() *Trace { return nil }

// TenantStats returns the per-tenant accounting accumulated so far
// (budgets are final from construction; Consumed/Packets grow as the
// stream is drained). The returned slice is the stream's live state.
func (s *Stream) TenantStats() []TenantStat { return s.stats }

// MinBudget returns the smallest per-tenant request budget — the bound on
// stream length imposed by the edge-effect truncation.
func (s *Stream) MinBudget() int {
	if len(s.stats) == 0 {
		return 0
	}
	min := s.stats[0].Budget
	for _, st := range s.stats[1:] {
		if st.Budget < min {
			min = st.Budget
		}
	}
	return min
}
