package trace

import (
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

func mixTwoClass() MixConfig {
	return MixConfig{
		Classes: []ClassSpec{
			{Name: "victim", Profile: workload.ProfileFor(workload.Iperf3), Tenants: 6, Weight: 1, Scale: 0.02},
			{Name: "bully", Profile: workload.ProfileFor(workload.Mediastream), Tenants: 2, Weight: 4, Scale: 0.3},
		},
		Interleave: RR1,
		Seed:       7,
	}
}

func TestMixValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*MixConfig)
	}{
		{"no classes", func(c *MixConfig) { c.Classes = nil }},
		{"zero tenants", func(c *MixConfig) { c.Classes[0].Tenants = 0 }},
		{"negative weight", func(c *MixConfig) { c.Classes[1].Weight = -1 }},
		{"zero scale", func(c *MixConfig) { c.Classes[0].Scale = 0 }},
		{"zero burst", func(c *MixConfig) { c.Interleave.Burst = 0 }},
		{"bad profile", func(c *MixConfig) { c.Classes[0].Profile.Streams = 0 }},
	}
	for _, tc := range cases {
		c := mixTwoClass()
		tc.mut(&c)
		if _, err := NewMixStream(c); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// The mix stream assigns contiguous SID ranges in class order and
// carries the partition on Meta.
func TestMixClassLayout(t *testing.T) {
	c := mixTwoClass()
	s, err := NewMixStream(c)
	if err != nil {
		t.Fatal(err)
	}
	meta := s.Meta()
	if meta.Tenants != 8 {
		t.Fatalf("tenants = %d, want 8", meta.Tenants)
	}
	if len(meta.Classes) != 2 || meta.Classes[0].Name != "victim" || meta.Classes[1].Name != "bully" {
		t.Fatalf("classes = %+v", meta.Classes)
	}
	if meta.Classes[1].Weight != 4 {
		t.Fatalf("bully weight = %d, want 4", meta.Classes[1].Weight)
	}
	if meta.Benchmark != workload.Iperf3 {
		t.Fatalf("lead benchmark = %v, want iperf3", meta.Benchmark)
	}
	stats := s.TenantStats()
	for i, st := range stats {
		if st.SID != mem.SID(i+1) {
			t.Fatalf("stats[%d].SID = %d, want %d", i, st.SID, i+1)
		}
	}
}

// A weight-w tenant receives w consecutive base bursts per round-robin
// turn, so the first full RR cycle of a two-class mix is
// victim x6 then bully x(2*4) packets.
func TestMixWeightedRoundRobin(t *testing.T) {
	c := mixTwoClass()
	s, err := NewMixStream(c)
	if err != nil {
		t.Fatal(err)
	}
	var order []mem.SID
	for i := 0; i < 6+2*4; i++ {
		pkt, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at packet %d", i)
		}
		order = append(order, pkt.SID)
	}
	want := []mem.SID{1, 2, 3, 4, 5, 6, 7, 7, 7, 7, 8, 8, 8, 8}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("cycle order = %v, want %v", order, want)
		}
	}
}

// Weighted random draws respect class weights within sampling noise:
// the weight-4 bully class (2 tenants, 8 of 14 weight) should carry
// roughly 8/14 of the packets.
func TestMixWeightedRandomShare(t *testing.T) {
	c := mixTwoClass()
	c.Interleave = RAND1
	s, err := NewMixStream(c)
	if err != nil {
		t.Fatal(err)
	}
	bully, total := 0, 0
	for {
		pkt, ok := s.Next()
		if !ok {
			break
		}
		total++
		if pkt.SID >= 7 {
			bully++
		}
	}
	if total < 1000 {
		t.Fatalf("stream too short for a share estimate: %d packets", total)
	}
	share := float64(bully) / float64(total)
	want := 8.0 / 14.0
	if share < want-0.05 || share > want+0.05 {
		t.Fatalf("bully share = %.3f, want ~%.3f", share, want)
	}
}

// ConstructMix is a drain of NewMixStream: both modes yield the
// identical packet sequence, and Reset rewinds to the same stream.
func TestMixStreamMatchesConstruct(t *testing.T) {
	c := mixTwoClass()
	for _, iv := range []Interleave{RR1, RR4, RAND1} {
		c.Interleave = iv
		tr, err := ConstructMix(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Classes) != 2 {
			t.Fatalf("%v: trace classes = %d, want 2", iv, len(tr.Classes))
		}
		s, err := NewMixStream(c)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			for i, want := range tr.Packets {
				got, ok := s.Next()
				if !ok {
					t.Fatalf("%v pass %d: stream ended at packet %d of %d", iv, pass, i, len(tr.Packets))
				}
				if got != want {
					t.Fatalf("%v pass %d: packet %d = %+v, want %+v", iv, pass, i, got, want)
				}
			}
			if _, ok := s.Next(); ok {
				t.Fatalf("%v pass %d: stream longer than materialized trace", iv, pass)
			}
			s.Reset()
		}
	}
}

// A single-class weight-1 mix draws the same uniform random interleave
// as the classic Stream (identical RNG stream), so RAND mixes reduce to
// the uniform case when no weights are present.
func TestMixUniformRandomMatchesStream(t *testing.T) {
	p := workload.ProfileFor(workload.Iperf3)
	mc := MixConfig{
		Classes:    []ClassSpec{{Name: "all", Profile: p, Tenants: 5, Weight: 1, Scale: 0.01}},
		Interleave: RAND1,
		Seed:       99,
	}
	sc := Config{Benchmark: workload.Iperf3, Tenants: 5, Interleave: RAND1, Seed: 99, Scale: 0.01}
	ms, err := NewMixStream(mc)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		a, aok := ms.Next()
		b, bok := ss.Next()
		if aok != bok {
			t.Fatalf("length mismatch at packet %d: mix ok=%v stream ok=%v", i, aok, bok)
		}
		if !aok {
			break
		}
		if a != b {
			t.Fatalf("packet %d: mix %+v != stream %+v", i, a, b)
		}
	}
}

// TraceSource passes the class partition through Meta.
func TestMixTraceSourceMeta(t *testing.T) {
	tr, err := ConstructMix(mixTwoClass())
	if err != nil {
		t.Fatal(err)
	}
	meta := tr.Source().Meta()
	if len(meta.Classes) != 2 || meta.Classes[0].Tenants != 6 {
		t.Fatalf("source meta classes = %+v", meta.Classes)
	}
}
