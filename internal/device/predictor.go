package device

import (
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
)

// SIDPredictor is the Prefetch Unit's table mapping the currently active
// Source ID to the SID predicted to be active again soon, plus the
// host-configured history-length register (§III). Learning happens on
// tenant switches, so with round-robin arbitration the table converges to
// the arbiter's successor relation regardless of burst length; with
// random interleaving its predictions are noise, which is exactly the
// degradation the paper reports for RAND1.
type SIDPredictor struct {
	successor map[mem.SID]mem.SID
	last      mem.SID
	haveLast  bool

	// burstEWMA estimates how many consecutive packets one tenant sends,
	// so the predictor can convert the history length (in requests) into
	// tenant hops.
	burstEWMA float64
	runLen    int

	historyLen int

	predictions obs.Counter
	unknowns    obs.Counter
}

// NewSIDPredictor creates a predictor with the given history-length
// register value (the paper finds 48 requests optimal, §V-D).
func NewSIDPredictor(historyLen int) *SIDPredictor {
	if historyLen <= 0 {
		historyLen = 48
	}
	return &SIDPredictor{
		successor:  make(map[mem.SID]mem.SID),
		burstEWMA:  1,
		historyLen: historyLen,
	}
}

// HistoryLen returns the configured history length.
func (p *SIDPredictor) HistoryLen() int { return p.historyLen }

// SetHistoryLen updates the register (the hypervisor reconfigures it when
// tenants are added or removed).
func (p *SIDPredictor) SetHistoryLen(n int) {
	if n > 0 {
		p.historyLen = n
	}
}

// Observe feeds one accepted packet's SID in arrival order.
func (p *SIDPredictor) Observe(sid mem.SID) {
	if !p.haveLast {
		p.last, p.haveLast, p.runLen = sid, true, 1
		return
	}
	if sid == p.last {
		p.runLen++
		return
	}
	p.successor[p.last] = sid
	const alpha = 0.125
	p.burstEWMA = (1-alpha)*p.burstEWMA + alpha*float64(p.runLen)
	p.last = sid
	p.runLen = 1
}

// requestsPerPacket mirrors workload.RequestsPerPacket without importing
// the workload package: every packet costs three translation requests.
const requestsPerPacket = 3

// Hops converts the history-length register (a look-ahead expressed in
// translation requests) into tenant switches: each switch covers one
// burst of packets, and each packet three requests.
func (p *SIDPredictor) Hops() int {
	burst := p.burstEWMA
	if burst < 1 {
		burst = 1
	}
	hops := int(float64(p.historyLen)/(requestsPerPacket*burst) + 0.5)
	if hops < 1 {
		hops = 1
	}
	return hops
}

// Predict chases the successor table Hops() steps from the current SID,
// returning the SID expected to be active about historyLen requests in
// the future. ok is false when the chain has a gap (not yet learned).
func (p *SIDPredictor) Predict(current mem.SID) (mem.SID, bool) {
	p.predictions.Inc()
	sid := current
	for i := 0; i < p.Hops(); i++ {
		next, ok := p.successor[sid]
		if !ok {
			p.unknowns.Inc()
			return 0, false
		}
		sid = next
	}
	return sid, true
}

// Forget drops a detached tenant from the successor table: entries keyed
// by the SID and entries predicting it (the PTag flush of §III applied to
// the predictor). The last-seen state is cleared too if it names the
// tenant, so the next observation starts a fresh burst.
func (p *SIDPredictor) Forget(sid mem.SID) {
	delete(p.successor, sid)
	for from, to := range p.successor {
		if to == sid {
			delete(p.successor, from)
		}
	}
	if p.haveLast && p.last == sid {
		p.haveLast = false
		p.runLen = 0
	}
}

// PredictorStats reports predictor traffic.
type PredictorStats struct {
	Predictions uint64
	Unknowns    uint64
	Entries     int
	BurstEWMA   float64
}

// Stats returns a snapshot of the counters.
func (p *SIDPredictor) Stats() PredictorStats {
	return PredictorStats{
		Predictions: p.predictions.Value(),
		Unknowns:    p.unknowns.Value(),
		Entries:     len(p.successor),
		BurstEWMA:   p.burstEWMA,
	}
}

// Register publishes the predictor's metrics into a registry under prefix.
func (p *SIDPredictor) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".predictions", &p.predictions)
	r.Counter(prefix+".unknowns", &p.unknowns)
	r.Gauge(prefix+".entries", func() float64 { return float64(len(p.successor)) })
	r.Gauge(prefix+".burst_ewma", func() float64 { return p.burstEWMA })
	r.Gauge(prefix+".history_len", func() float64 { return float64(p.historyLen) })
}
