package device

import (
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/tlb"
)

// PrefetchConfig parametrizes the Prefetch Unit (Table IV: 8-entry
// buffer, 48-access stride, 2 pages of history per tenant).
type PrefetchConfig struct {
	// BufferEntries is the Prefetch Buffer size; it is fully associative
	// and shared by all tenants, so it must stay small.
	BufferEntries int
	// HistoryLen is the SID-predictor's look-ahead, in requests.
	HistoryLen int
	// Degree is how many most-recent pages the IOVA history reader
	// fetches and translates per prefetch request.
	Degree int
	// AdaptiveHistory lets the host retune the history-length register
	// from observed prefetch latency (the paper notes the register is
	// host-configured precisely so prefetches can be issued early enough
	// to hide translation latency; adapting it keeps prefetches
	// just-in-time across tenant counts and link speeds). When false the
	// register stays at HistoryLen.
	AdaptiveHistory bool
}

// DefaultPrefetchConfig returns the paper's tuned parameters (Table IV),
// with the history-length register under host (adaptive) control.
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{BufferEntries: 8, HistoryLen: 48, Degree: 2, AdaptiveHistory: true}
}

// PrefetchUnit is the on-device prefetcher: a small fully-associative
// Prefetch Buffer holding prefetched gIOVA->hPA translations, the
// SID-predictor, and bookkeeping for in-flight prefetch requests.
type PrefetchUnit struct {
	cfg       PrefetchConfig
	buffer    *tlb.Cache
	predictor *SIDPredictor

	inflight map[mem.SID]bool

	issued     obs.Counter // prefetch requests sent to the chipset
	served     obs.Counter // demand requests answered from the buffer
	installed  obs.Counter // translations installed into the buffer
	suppressed obs.Counter // prefetches skipped (in flight or already buffered)
}

// NewPrefetchUnit builds the unit.
func NewPrefetchUnit(cfg PrefetchConfig) *PrefetchUnit {
	if cfg.BufferEntries <= 0 {
		cfg.BufferEntries = 8
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 2
	}
	return &PrefetchUnit{
		cfg: cfg,
		buffer: tlb.New(tlb.Config{
			Name: "prefetch-buffer", Sets: 1, Ways: cfg.BufferEntries, Policy: tlb.LRU,
		}),
		predictor: NewSIDPredictor(cfg.HistoryLen),
		inflight:  make(map[mem.SID]bool),
	}
}

// Config returns the unit's configuration.
func (u *PrefetchUnit) Config() PrefetchConfig { return u.cfg }

// Predictor exposes the SID-predictor (the host reconfigures its
// history-length register through it).
func (u *PrefetchUnit) Predictor() *SIDPredictor { return u.predictor }

// Lookup consults the Prefetch Buffer for a demand request; it is checked
// concurrently with the DevTLB.
func (u *PrefetchUnit) Lookup(key tlb.Key) (tlb.Entry, bool) {
	e, ok := u.buffer.Lookup(key)
	if ok {
		u.served.Inc()
	}
	return e, ok
}

// ShouldPrefetch decides, on a demand miss by current, whether to issue a
// prefetch and for which SID. It suppresses duplicates: at most one
// outstanding prefetch per predicted SID.
func (u *PrefetchUnit) ShouldPrefetch(current mem.SID) (mem.SID, bool) {
	target, ok := u.predictor.Predict(current)
	if !ok {
		return 0, false
	}
	if u.inflight[target] {
		u.suppressed.Inc()
		return 0, false
	}
	u.inflight[target] = true
	u.issued.Inc()
	return target, true
}

// historySlack is how many extra requests of look-ahead the adaptive
// register keeps beyond the observed prefetch latency, so a fill lands
// shortly before its use rather than exactly at it.
const historySlack = 2 * requestsPerPacket

// Complete installs the translations a finished prefetch brought back and
// clears the in-flight marker. latencyRequests is the observed trigger-
// to-fill latency expressed in translation requests; with AdaptiveHistory
// the host uses it to retune the history-length register just above the
// latency it must hide.
func (u *PrefetchUnit) Complete(target mem.SID, entries []tlb.Entry, latencyRequests int) {
	delete(u.inflight, target)
	for _, e := range entries {
		u.buffer.Insert(e)
		u.installed.Inc()
	}
	if u.cfg.AdaptiveHistory && latencyRequests > 0 {
		// EWMA toward the observed latency plus slack.
		old := float64(u.predictor.HistoryLen())
		want := float64(latencyRequests + historySlack)
		u.predictor.SetHistoryLen(int(0.75*old + 0.25*want))
	}
}

// Abort clears the in-flight marker without installing anything (the
// predicted tenant had no history yet).
func (u *PrefetchUnit) Abort(target mem.SID) { delete(u.inflight, target) }

// Invalidate drops a page from the buffer on driver unmap.
func (u *PrefetchUnit) Invalidate(sid mem.SID, iova uint64, pageShift uint8) {
	u.buffer.Invalidate(iommu.PageKey(sid, iova, pageShift))
}

// InvalidateSID flushes every per-tenant structure of the unit: buffered
// translations, the predictor's successor knowledge, and the in-flight
// marker (a prefetch completing after the teardown re-installs nothing
// useful; dropping the marker lets the re-attached tenant prefetch
// again). Returns how many buffer entries were dropped.
func (u *PrefetchUnit) InvalidateSID(sid mem.SID) int {
	n := u.buffer.InvalidateSID(uint32(sid))
	u.predictor.Forget(sid)
	delete(u.inflight, sid)
	return n
}

// FlushAll empties the Prefetch Buffer (broadcast invalidation). The
// predictor's learned successor relation survives — it names tenants, not
// translations.
func (u *PrefetchUnit) FlushAll() int { return u.buffer.Flush() }

// PrefetchStats reports the unit's effectiveness.
type PrefetchStats struct {
	Issued     uint64
	Served     uint64
	Installed  uint64
	Suppressed uint64
	Buffer     tlb.Stats
	Predictor  PredictorStats
}

// Stats returns a snapshot of the counters.
func (u *PrefetchUnit) Stats() PrefetchStats {
	return PrefetchStats{
		Issued:     u.issued.Value(),
		Served:     u.served.Value(),
		Installed:  u.installed.Value(),
		Suppressed: u.suppressed.Value(),
		Buffer:     u.buffer.Stats(),
		Predictor:  u.predictor.Stats(),
	}
}

// Register publishes the unit's counters, its buffer's cache traffic
// and the predictor's metrics into a registry under prefix.
func (u *PrefetchUnit) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".issued", &u.issued)
	r.Counter(prefix+".served", &u.served)
	r.Counter(prefix+".installed", &u.installed)
	r.Counter(prefix+".suppressed", &u.suppressed)
	r.Gauge(prefix+".inflight", func() float64 { return float64(len(u.inflight)) })
	u.buffer.Register(r, prefix+".buffer")
	u.predictor.Register(r, prefix+".predictor")
}
