package device

import (
	"testing"

	"hypertrio/internal/mem"
)

// FuzzPredictor drives the SID-predictor with an arbitrary interleaving
// of Observe, Predict, Forget and SetHistoryLen and asserts its standing
// invariants: no panic, Hops() >= 1, burst EWMA >= 1 (run lengths are at
// least one packet), and a just-forgotten tenant is unreachable from any
// prediction until re-observed.
func FuzzPredictor(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3, 1, 2, 3}, uint8(48))
	f.Add([]byte{0x81, 1, 0x41, 1, 0x81}, uint8(0)) // forget/predict churn, default register
	f.Add([]byte{7, 7, 7, 7, 0xC7, 7}, uint8(3))    // long burst then forget+predict

	f.Fuzz(func(t *testing.T, ops []byte, histLen uint8) {
		p := NewSIDPredictor(int(histLen))
		for _, op := range ops {
			sid := mem.SID(op&0x0F) + 1
			switch {
			case op&0x80 != 0 && op&0x40 != 0:
				p.Forget(sid)
				// A forgotten tenant has no entry and nothing predicting
				// it: no chain of any length can reach it.
				for probe := mem.SID(1); probe <= 16; probe++ {
					if got, ok := p.Predict(probe); ok && got == sid {
						t.Fatalf("Predict(%d) = %d right after Forget(%d)", probe, got, sid)
					}
				}
			case op&0x80 != 0:
				p.Forget(sid)
			case op&0x40 != 0:
				p.Predict(sid)
			case op&0x20 != 0:
				p.SetHistoryLen(int(op & 0x1F))
			default:
				p.Observe(sid)
			}
			if p.Hops() < 1 {
				t.Fatalf("Hops() = %d, want >= 1", p.Hops())
			}
			if p.HistoryLen() <= 0 {
				t.Fatalf("HistoryLen() = %d, want > 0", p.HistoryLen())
			}
			s := p.Stats()
			if s.BurstEWMA < 1 {
				t.Fatalf("burst EWMA %v dropped below 1 (run lengths are >= 1)", s.BurstEWMA)
			}
			if s.Predictions < s.Unknowns {
				t.Fatalf("stats inconsistent: %d unknowns out of %d predictions", s.Unknowns, s.Predictions)
			}
		}
	})
}
