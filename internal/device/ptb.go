// Package device models the on-device half of the HyperTRIO design: the
// DevTLB front-end configuration, the Pending Translation Buffer that
// tracks in-flight translations with out-of-order completion, and the
// Prefetch Unit (Prefetch Buffer + SID-predictor).
//
// Like internal/iommu, this package is time-free: internal/core drives
// these structures from the event kernel and charges latencies.
package device

import (
	"fmt"

	"hypertrio/internal/obs"
)

// PTB is the Pending Translation Buffer: a fixed pool of in-flight
// translation slots. A packet whose first missing translation cannot
// allocate a slot at arrival is dropped (and retried at the next arrival
// slot by the link model); translations complete out of order, each
// freeing its slot.
type PTB struct {
	capacity int
	inUse    int

	allocs   obs.Counter
	rejected obs.Counter
	peak     int
}

// NewPTB creates a buffer with the given number of slots.
func NewPTB(capacity int) *PTB {
	if capacity <= 0 {
		panic(fmt.Sprintf("device: PTB capacity must be positive, got %d", capacity))
	}
	return &PTB{capacity: capacity}
}

// Capacity returns the slot count.
func (p *PTB) Capacity() int { return p.capacity }

// InUse returns the number of occupied slots.
func (p *PTB) InUse() int { return p.inUse }

// Free returns the number of available slots.
func (p *PTB) Free() int { return p.capacity - p.inUse }

// Alloc takes one slot, reporting whether one was available.
func (p *PTB) Alloc() bool {
	if p.inUse >= p.capacity {
		p.rejected.Inc()
		return false
	}
	p.inUse++
	p.allocs.Inc()
	if p.inUse > p.peak {
		p.peak = p.inUse
	}
	return true
}

// Release frees one slot. Releasing an empty buffer panics: it means the
// model double-freed a translation.
func (p *PTB) Release() {
	if p.inUse == 0 {
		panic("device: PTB release with no slots in use")
	}
	p.inUse--
}

// PTBStats reports buffer pressure over a run.
type PTBStats struct {
	Allocs   uint64 // successful slot allocations
	Rejected uint64 // failed allocation attempts
	Peak     int    // high-water mark of occupied slots
}

// Stats returns a snapshot of the counters.
func (p *PTB) Stats() PTBStats {
	return PTBStats{Allocs: p.allocs.Value(), Rejected: p.rejected.Value(), Peak: p.peak}
}

// Register publishes the buffer's counters and occupancy into a metrics
// registry under prefix. The in_use gauge is what the time-series
// sampler reads to plot PTB occupancy over a run.
func (p *PTB) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".allocs", &p.allocs)
	r.Counter(prefix+".rejected", &p.rejected)
	r.Gauge(prefix+".in_use", func() float64 { return float64(p.inUse) })
	r.Gauge(prefix+".peak", func() float64 { return float64(p.peak) })
	r.Gauge(prefix+".capacity", func() float64 { return float64(p.capacity) })
}
