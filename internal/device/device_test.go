package device

import (
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/tlb"
)

func TestPTBAllocRelease(t *testing.T) {
	p := NewPTB(2)
	if !p.Alloc() || !p.Alloc() {
		t.Fatal("allocations within capacity failed")
	}
	if p.Alloc() {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if p.Free() != 0 || p.InUse() != 2 {
		t.Fatalf("Free=%d InUse=%d", p.Free(), p.InUse())
	}
	p.Release()
	if !p.Alloc() {
		t.Fatal("allocation after release failed")
	}
	s := p.Stats()
	if s.Allocs != 3 || s.Rejected != 1 || s.Peak != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPTBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of empty PTB did not panic")
		}
	}()
	NewPTB(1).Release()
}

func TestPTBZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewPTB(0)
}

func TestPredictorLearnsRoundRobin(t *testing.T) {
	p := NewSIDPredictor(48)
	// Two full RR1 rounds over 16 tenants teach every edge.
	for round := 0; round < 3; round++ {
		for sid := mem.SID(1); sid <= 16; sid++ {
			p.Observe(sid)
		}
	}
	// History length 48 requests = 16 packets at burst 1 -> 16 hops:
	// from SID 1 that is (1-1+16) mod 16 + 1 = 1.
	got, ok := p.Predict(1)
	if !ok {
		t.Fatal("predictor has gaps after 3 rounds")
	}
	want := mem.SID((0+16)%16 + 1)
	if got != want {
		t.Fatalf("Predict(1) = %d, want %d", got, want)
	}
}

func TestPredictorBurstAwareness(t *testing.T) {
	p := NewSIDPredictor(48)
	// RR4 over 8 tenants: bursts of 4.
	for round := 0; round < 30; round++ {
		for sid := mem.SID(1); sid <= 8; sid++ {
			for b := 0; b < 4; b++ {
				p.Observe(sid)
			}
		}
	}
	// 48 requests = 16 packets; bursts of 4 packets -> 4 tenant hops.
	if h := p.Hops(); h < 3 || h > 5 {
		t.Fatalf("Hops = %d with burst 4 and history 48, want ~4", h)
	}
	if _, ok := p.Predict(3); !ok {
		t.Fatal("prediction failed on a fully learned RR4 pattern")
	}
}

func TestPredictorUnknownChain(t *testing.T) {
	p := NewSIDPredictor(4)
	p.Observe(1)
	p.Observe(2) // only edge 1->2 known
	if _, ok := p.Predict(2); ok {
		t.Fatal("prediction from SID 2 should fail (no outgoing edge)")
	}
	s := p.Stats()
	if s.Predictions != 1 || s.Unknowns != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPredictorHistoryLenRegister(t *testing.T) {
	p := NewSIDPredictor(48)
	p.SetHistoryLen(16)
	if p.HistoryLen() != 16 {
		t.Fatal("SetHistoryLen ignored")
	}
	p.SetHistoryLen(0) // invalid: keep old
	if p.HistoryLen() != 16 {
		t.Fatal("invalid history length accepted")
	}
	if NewSIDPredictor(0).HistoryLen() != 48 {
		t.Fatal("default history length should be 48")
	}
}

func key(sid mem.SID, tag uint64) tlb.Key { return tlb.Key{SID: uint32(sid), Tag: tag} }

func TestPrefetchUnitLifecycle(t *testing.T) {
	u := NewPrefetchUnit(PrefetchConfig{BufferEntries: 4, HistoryLen: 2, Degree: 2})
	// Teach the predictor 1 -> 2 -> 3 -> 1.
	for i := 0; i < 5; i++ {
		u.Predictor().Observe(1)
		u.Predictor().Observe(2)
		u.Predictor().Observe(3)
	}
	target, ok := u.ShouldPrefetch(1)
	if !ok {
		t.Fatal("prefetch not issued on learned pattern")
	}
	// Duplicate suppressed while in flight.
	if _, ok := u.ShouldPrefetch(1); ok {
		t.Fatal("duplicate prefetch for the same target not suppressed")
	}
	entries := []tlb.Entry{
		{Key: key(target, 100), Value: 0xAAA000},
		{Key: key(target, 200), Value: 0xBBB000},
	}
	u.Complete(target, entries, 30)
	if _, ok := u.Lookup(key(target, 100)); !ok {
		t.Fatal("prefetched entry not served from buffer")
	}
	// After completion a new prefetch for the same target may issue.
	if _, ok := u.ShouldPrefetch(1); !ok {
		t.Fatal("prefetch after completion suppressed")
	}
	s := u.Stats()
	if s.Issued != 2 || s.Served != 1 || s.Installed != 2 || s.Suppressed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPrefetchUnitAbort(t *testing.T) {
	u := NewPrefetchUnit(DefaultPrefetchConfig())
	u.Predictor().Observe(1)
	u.Predictor().Observe(2)
	u.Predictor().Observe(1)
	target, ok := u.ShouldPrefetch(1)
	if !ok {
		t.Fatal("prefetch not issued")
	}
	u.Abort(target)
	if _, ok := u.ShouldPrefetch(1); !ok {
		t.Fatal("prefetch after abort suppressed")
	}
}

func TestPrefetchBufferSmallAndShared(t *testing.T) {
	u := NewPrefetchUnit(PrefetchConfig{BufferEntries: 2, HistoryLen: 48, Degree: 2})
	u.Complete(1, []tlb.Entry{{Key: key(1, 1)}, {Key: key(2, 2)}, {Key: key(3, 3)}}, 30)
	// Fully associative with 2 entries: the first insert was evicted.
	hits := 0
	for _, k := range []tlb.Key{key(1, 1), key(2, 2), key(3, 3)} {
		if _, ok := u.Lookup(k); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("buffer held %d of 3 entries, want 2 (capacity)", hits)
	}
}

func TestPrefetchInvalidate(t *testing.T) {
	u := NewPrefetchUnit(DefaultPrefetchConfig())
	iova := uint64(0xbbe00000)
	u.Complete(1, []tlb.Entry{{Key: tlb.Key{SID: 1, Tag: iova>>21 | 21<<56}, Value: 0x123}}, 30)
	u.Invalidate(1, iova, 21)
	if _, ok := u.Lookup(tlb.Key{SID: 1, Tag: iova>>21 | 21<<56}); ok {
		t.Fatal("entry survived invalidate")
	}
}

func TestDefaultPrefetchConfigMatchesTableIV(t *testing.T) {
	c := DefaultPrefetchConfig()
	if c.BufferEntries != 8 || c.HistoryLen != 48 || c.Degree != 2 {
		t.Fatalf("default prefetch config %+v does not match Table IV", c)
	}
}

func TestPredictorForget(t *testing.T) {
	p := NewSIDPredictor(3) // one hop of look-ahead
	for i := 0; i < 4; i++ {
		p.Observe(1)
		p.Observe(2)
		p.Observe(3)
	}
	if got, ok := p.Predict(1); !ok || got != 2 {
		t.Fatalf("Predict(1) = (%d, %v), want (2, true)", got, ok)
	}
	p.Forget(2)
	if _, ok := p.Predict(1); ok {
		t.Fatal("entry predicting the detached tenant survived Forget")
	}
	if _, ok := p.Predict(2); ok {
		t.Fatal("detached tenant's own entry survived Forget")
	}
	if got, ok := p.Predict(3); !ok || got != 1 {
		t.Fatalf("unrelated entry dropped by Forget: Predict(3) = (%d, %v), want (1, true)", got, ok)
	}
}

func TestPredictorForgetClearsLastSeen(t *testing.T) {
	p := NewSIDPredictor(3)
	p.Observe(7)
	p.Forget(7)
	p.Observe(8)
	p.Observe(9)
	if _, ok := p.Predict(7); ok {
		t.Fatal("learned a successor for a tenant detached mid-stream")
	}
	if got, ok := p.Predict(8); !ok || got != 9 {
		t.Fatalf("Predict(8) = (%d, %v), want (9, true)", got, ok)
	}
}

func TestPrefetchUnitTenantInvalidation(t *testing.T) {
	u := NewPrefetchUnit(PrefetchConfig{BufferEntries: 4, HistoryLen: 3, Degree: 2})
	for i := 0; i < 4; i++ {
		u.Predictor().Observe(1)
		u.Predictor().Observe(2)
	}
	u.Complete(1, []tlb.Entry{{Key: key(1, 10)}, {Key: key(1, 11)}}, 0)
	u.Complete(2, []tlb.Entry{{Key: key(2, 20)}}, 0)
	if _, ok := u.ShouldPrefetch(1); !ok {
		t.Fatal("prefetch not issued before the teardown")
	}
	// Tear tenant 2 down: buffered translations, the predictor's successor
	// knowledge and the in-flight marker all go.
	if n := u.InvalidateSID(2); n != 1 {
		t.Fatalf("InvalidateSID dropped %d buffer entries, want 1", n)
	}
	if _, ok := u.Lookup(key(2, 20)); ok {
		t.Fatal("tenant 2 entry survived its teardown")
	}
	if _, ok := u.Lookup(key(1, 10)); !ok {
		t.Fatal("tenant 1 entry dropped by tenant 2's teardown")
	}
	if _, ok := u.ShouldPrefetch(1); ok {
		t.Fatal("prediction into the detached tenant survived")
	}
}

func TestPrefetchUnitFlushAllKeepsPredictor(t *testing.T) {
	u := NewPrefetchUnit(PrefetchConfig{BufferEntries: 4, HistoryLen: 3, Degree: 2})
	for i := 0; i < 4; i++ {
		u.Predictor().Observe(1)
		u.Predictor().Observe(2)
	}
	u.Complete(1, []tlb.Entry{{Key: key(1, 10)}, {Key: key(2, 20)}}, 0)
	if n := u.FlushAll(); n != 2 {
		t.Fatalf("FlushAll dropped %d entries, want 2", n)
	}
	if _, ok := u.Lookup(key(1, 10)); ok {
		t.Fatal("entry survived the broadcast flush")
	}
	// The successor relation names tenants, not translations: it survives.
	if got, ok := u.Predictor().Predict(1); !ok || got != 2 {
		t.Fatalf("flush dropped predictor state: Predict(1) = (%d, %v), want (2, true)", got, ok)
	}
}
