package iommu

import "hypertrio/internal/mem"

// DefaultHistoryDepth is how many recently used gIOVA pages the chipset
// keeps per DID in main memory; the IOVA history reader fetches the two
// most recent on a prefetch request (§III).
const DefaultHistoryDepth = 4

// HistoryEntry is one recently translated page of a tenant.
type HistoryEntry struct {
	IOVA      uint64 // page base
	PageShift uint8
}

// History is the per-DID store of recently accessed gIOVA pages. The
// paper keeps it in main memory precisely because it scales with tenant
// count; reading it costs one DRAM access, charged by the core model.
type History struct {
	depth int
	bySID map[mem.SID][]HistoryEntry
}

// NewHistory creates a store remembering depth pages per tenant.
func NewHistory(depth int) *History {
	if depth <= 0 {
		depth = DefaultHistoryDepth
	}
	return &History{depth: depth, bySID: make(map[mem.SID][]HistoryEntry)}
}

// Record notes that sid translated iova. Consecutive accesses to the same
// page deduplicate, so the history holds the most recent *distinct* pages
// (a packet's ring/data/mailbox pages rather than three copies of one).
func (h *History) Record(sid mem.SID, iova uint64, pageShift uint8) {
	base := iova &^ (uint64(1)<<pageShift - 1)
	entries := h.bySID[sid]
	for i, e := range entries {
		if e.IOVA == base {
			// Move to front.
			copy(entries[1:i+1], entries[:i])
			entries[0] = HistoryEntry{IOVA: base, PageShift: pageShift}
			return
		}
	}
	entries = append(entries, HistoryEntry{})
	copy(entries[1:], entries)
	entries[0] = HistoryEntry{IOVA: base, PageShift: pageShift}
	if len(entries) > h.depth {
		entries = entries[:h.depth]
	}
	h.bySID[sid] = entries
}

// Recent returns up to n most recently used distinct pages for sid,
// most recent first.
func (h *History) Recent(sid mem.SID, n int) []HistoryEntry {
	entries := h.bySID[sid]
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]HistoryEntry, n)
	copy(out, entries[:n])
	return out
}

// AppendRecent appends up to n most recently used distinct pages for
// sid to dst (most recent first) and returns the extended slice. Passing
// a reused buffer as dst makes steady-state history reads
// allocation-free.
func (h *History) AppendRecent(dst []HistoryEntry, sid mem.SID, n int) []HistoryEntry {
	entries := h.bySID[sid]
	if n > len(entries) {
		n = len(entries)
	}
	return append(dst, entries[:n]...)
}

// Drop removes an unmapped page from sid's history so the prefetcher
// does not chase stale translations.
func (h *History) Drop(sid mem.SID, iova uint64, pageShift uint8) {
	base := iova &^ (uint64(1)<<pageShift - 1)
	entries := h.bySID[sid]
	for i, e := range entries {
		if e.IOVA == base {
			h.bySID[sid] = append(entries[:i], entries[i+1:]...)
			return
		}
	}
}

// DropSID forgets a tenant's whole history (tenant teardown).
func (h *History) DropSID(sid mem.SID) { delete(h.bySID, sid) }

// Tenants reports how many SIDs have history; for tests.
func (h *History) Tenants() int { return len(h.bySID) }
