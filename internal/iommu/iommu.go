// Package iommu models the chipset side of the translation path: the
// context cache, an optional chipset IOTLB, the partitionable L2/L3
// page-walk caches, and the two-dimensional page-table walker driven
// against the real page tables in internal/mem.
//
// The package is purely functional with respect to time: Translate
// reports how many physical memory accesses the translation performed
// and which structures hit; the performance model (internal/core)
// converts those counts into latency.
package iommu

import (
	"fmt"

	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/tlb"
)

// Config describes the chipset translation hardware.
type Config struct {
	// ContextCache caches SID -> context entries; a miss costs
	// mem.ContextReadAccesses memory reads.
	ContextCache tlb.Config
	// IOTLB is an optional chipset-resident gIOVA->hPA cache (used by
	// the Fig. 4 motivational study; the Base/HyperTRIO configurations
	// of Table IV rely on the on-device DevTLB instead). Sets == 0
	// disables it.
	IOTLB tlb.Config
	// L2PWC caches partial walks at 2 MB granularity: (SID, iova>>21) ->
	// host address of the guest L1 table. 4 KB mappings only.
	L2PWC tlb.Config
	// L3PWC caches partial walks at 1 GB granularity: (SID, iova>>30) ->
	// host address of the guest L2 table.
	L3PWC tlb.Config
}

// DefaultContextCache returns the context-cache geometry used by every
// experiment: 64 entries, fully associative, LRU.
func DefaultContextCache() tlb.Config {
	return tlb.Config{Name: "context-cache", Sets: 1, Ways: 64, Policy: tlb.LRU}
}

// IOMMU is the chipset translation agent for one shared device.
type IOMMU struct {
	cfg Config

	ctxTable *mem.ContextTable
	tenants  *mem.TenantTables

	cc    *tlb.Cache
	iotlb *tlb.Cache // nil when disabled
	l2pwc *tlb.Cache
	l3pwc *tlb.Cache

	history *History

	// walkBuf is the reused access scratch for one translation's nested
	// walk: Translate only needs the access count, so the record slice is
	// recycled and a warm translation performs no allocation.
	walkBuf []mem.NestedAccess

	// Counters (observability cells; Stats assembles the snapshot view).
	translations obs.Counter
	walks        obs.Counter
	memAccesses  obs.Counter
}

// New builds the IOMMU. ctxTable must contain an entry for every SID that
// will translate; tenants maps each SID to its nested page tables.
func New(cfg Config, ctxTable *mem.ContextTable, tenants *mem.TenantTables) *IOMMU {
	u := &IOMMU{
		cfg:      cfg,
		ctxTable: ctxTable,
		tenants:  tenants,
		cc:       tlb.New(cfg.ContextCache),
		l2pwc:    tlb.New(cfg.L2PWC),
		l3pwc:    tlb.New(cfg.L3PWC),
		history:  NewHistory(DefaultHistoryDepth),
	}
	if cfg.IOTLB.Sets > 0 {
		u.iotlb = tlb.New(cfg.IOTLB)
	}
	return u
}

// Config returns the chipset's configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// Result reports what one translation did.
type Result struct {
	HPA uint64

	CCHit    bool
	IOTLBHit bool
	// PWCLevel records the deepest page-walk-cache hit: 0 none,
	// 2 for the L2 (2 MB granule) cache, 3 for the L3 (1 GB granule).
	PWCLevel int
	// MemAccesses is the number of physical memory reads performed
	// (context table + page-table walk). Zero on an IOTLB hit with a
	// warm context cache.
	MemAccesses int
}

// PageKey builds the cache key for a translation at its mapping's native
// granule. The page-size class is folded into the tag's high bits so 4 KB
// and 2 MB mappings never alias.
func PageKey(sid mem.SID, iova uint64, pageShift uint8) tlb.Key {
	return tlb.Key{SID: uint32(sid), Tag: iova>>pageShift | uint64(pageShift)<<56}
}

func granuleKey(sid mem.SID, iova uint64, shift uint) tlb.Key {
	return tlb.Key{SID: uint32(sid), Tag: iova >> shift}
}

// Translate resolves one gIOVA for sid. pageShift is the native page size
// of the mapping (the device learns it from the descriptor format; the
// model carries it in the trace). recordHistory controls whether the
// access updates the per-DID IOVA history (demand accesses do, prefetch
// reads must not).
func (u *IOMMU) Translate(sid mem.SID, iova uint64, pageShift uint8, recordHistory bool) (Result, error) {
	var res Result
	u.translations.Inc()

	// Context lookup: SID -> page-table roots.
	ccKey := tlb.Key{SID: uint32(sid)}
	if _, ok := u.cc.Lookup(ccKey); ok {
		res.CCHit = true
	} else {
		if _, err := u.ctxTable.Lookup(sid); err != nil {
			return res, err
		}
		res.MemAccesses += mem.ContextReadAccesses
		u.cc.Insert(tlb.Entry{Key: ccKey})
	}

	nt := u.tenants.Get(sid)
	if nt == nil {
		return res, fmt.Errorf("iommu: no nested table for SID %d", sid)
	}

	if recordHistory {
		u.history.Record(sid, iova, pageShift)
	}

	// Chipset IOTLB (optional).
	iotlbKey := PageKey(sid, iova, pageShift)
	if u.iotlb != nil {
		if e, ok := u.iotlb.Lookup(iotlbKey); ok {
			res.IOTLBHit = true
			res.HPA = e.Value | iova&(uint64(1)<<pageShift-1)
			u.memAccesses.Add(uint64(res.MemAccesses))
			return res, nil
		}
	}

	// Page-walk caches: resume the two-dimensional walk as deep as
	// possible. The L2 granule only caches a resume point for 4 KB
	// mappings (for 2 MB pages the L2-granule object is the final
	// translation itself, which lives in the IOTLB/DevTLB).
	var walk mem.NestedResult
	var err error
	u.walks.Inc()
	switch {
	case pageShift == mem.PageShift && u.l2pwcHit(sid, iova):
		res.PWCLevel = 2
		tblHPA, terr := nt.TableHPA(iova, 1)
		if terr != nil {
			return res, terr
		}
		walk, err = nt.WalkFromInto(iova, 1, tblHPA, u.walkBuf[:0])
	case u.l3pwcHit(sid, iova):
		res.PWCLevel = 3
		tblHPA, terr := nt.TableHPA(iova, 2)
		if terr != nil {
			return res, terr
		}
		walk, err = nt.WalkFromInto(iova, 2, tblHPA, u.walkBuf[:0])
	default:
		walk, err = nt.WalkInto(iova, u.walkBuf[:0])
	}
	u.walkBuf = walk.Accesses[:0]
	if err != nil {
		return res, fmt.Errorf("iommu: walking %#x for SID %d: %w", iova, sid, err)
	}
	res.MemAccesses += len(walk.Accesses)
	res.HPA = walk.HPA
	u.memAccesses.Add(uint64(res.MemAccesses))

	// Install what the walk learned.
	pageMask := uint64(1)<<pageShift - 1
	if u.iotlb != nil {
		u.iotlb.Insert(tlb.Entry{Key: iotlbKey, Value: walk.HPA &^ pageMask, PageShift: pageShift})
	}
	if tblHPA, terr := nt.TableHPA(iova, 2); terr == nil {
		u.l3pwc.Insert(tlb.Entry{Key: granuleKey(sid, iova, mem.GiantPageShift), Value: uint64(tblHPA)})
	}
	if pageShift == mem.PageShift {
		if tblHPA, terr := nt.TableHPA(iova, 1); terr == nil {
			u.l2pwc.Insert(tlb.Entry{Key: granuleKey(sid, iova, mem.HugePageShift), Value: uint64(tblHPA)})
		}
	}
	return res, nil
}

func (u *IOMMU) l2pwcHit(sid mem.SID, iova uint64) bool {
	_, ok := u.l2pwc.Lookup(granuleKey(sid, iova, mem.HugePageShift))
	return ok
}

func (u *IOMMU) l3pwcHit(sid mem.SID, iova uint64) bool {
	_, ok := u.l3pwc.Lookup(granuleKey(sid, iova, mem.GiantPageShift))
	return ok
}

// Invalidate drops cached state for one unmapped page (driver unmap →
// IOTLB invalidation command). Page-walk-cache entries for the covering
// granules are dropped too, conservatively.
func (u *IOMMU) Invalidate(sid mem.SID, iova uint64, pageShift uint8) {
	if u.iotlb != nil {
		u.iotlb.Invalidate(PageKey(sid, iova, pageShift))
	}
	if pageShift == mem.PageShift {
		u.l2pwc.Invalidate(granuleKey(sid, iova, mem.HugePageShift))
	}
	u.history.Drop(sid, iova, pageShift)
}

// InvalidateSID drops every chipset-cached structure belonging to one
// tenant — the domain-wide invalidation a hypervisor issues at tenant
// teardown (context-cache entry, IOTLB and walk-cache entries, and the
// per-DID IOVA history). It returns how many cache entries were dropped.
func (u *IOMMU) InvalidateSID(sid mem.SID) int {
	n := u.cc.InvalidateSID(uint32(sid))
	if u.iotlb != nil {
		n += u.iotlb.InvalidateSID(uint32(sid))
	}
	n += u.l2pwc.InvalidateSID(uint32(sid))
	n += u.l3pwc.InvalidateSID(uint32(sid))
	u.history.DropSID(sid)
	return n
}

// FlushAll empties every chipset cache (a global invalidation command)
// and returns how many entries were dropped. Histories survive — they
// live in main memory, not in chipset state.
func (u *IOMMU) FlushAll() int {
	n := u.cc.Flush()
	if u.iotlb != nil {
		n += u.iotlb.Flush()
	}
	n += u.l2pwc.Flush()
	n += u.l3pwc.Flush()
	return n
}

// History returns the per-DID IOVA history store.
func (u *IOMMU) History() *History { return u.history }

// Stats bundles the IOMMU counters for reporting.
type Stats struct {
	Translations uint64
	Walks        uint64
	MemAccesses  uint64
	ContextCache tlb.Stats
	IOTLB        tlb.Stats
	L2PWC        tlb.Stats
	L3PWC        tlb.Stats
}

// Stats returns a snapshot of the counters.
func (u *IOMMU) Stats() Stats {
	s := Stats{
		Translations: u.translations.Value(),
		Walks:        u.walks.Value(),
		MemAccesses:  u.memAccesses.Value(),
		ContextCache: u.cc.Stats(),
		L2PWC:        u.l2pwc.Stats(),
		L3PWC:        u.l3pwc.Stats(),
	}
	if u.iotlb != nil {
		s.IOTLB = u.iotlb.Stats()
	}
	return s
}

// Register publishes the chipset's counters and every cache's traffic
// into a metrics registry under prefix.
func (u *IOMMU) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".translations", &u.translations)
	r.Counter(prefix+".walks", &u.walks)
	r.Counter(prefix+".mem_accesses", &u.memAccesses)
	u.cc.Register(r, prefix+".cc")
	if u.iotlb != nil {
		u.iotlb.Register(r, prefix+".iotlb")
	}
	u.l2pwc.Register(r, prefix+".l2pwc")
	u.l3pwc.Register(r, prefix+".l3pwc")
}
