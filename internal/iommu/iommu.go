// Package iommu models the chipset side of the translation path: the
// context cache, an optional chipset IOTLB, the partitionable L2/L3
// page-walk caches, and the two-dimensional page-table walker driven
// against the real page tables in internal/mem.
//
// The package is purely functional with respect to time: Translate
// reports how many physical memory accesses the translation performed
// and which structures hit; the performance model (internal/core)
// converts those counts into latency.
package iommu

import (
	"fmt"

	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/tlb"
)

// Config describes the chipset translation hardware.
type Config struct {
	// ContextCache caches SID -> context entries; a miss costs
	// mem.ContextReadAccesses memory reads.
	ContextCache tlb.Config
	// IOTLB is an optional chipset-resident gIOVA->hPA cache (used by
	// the Fig. 4 motivational study; the Base/HyperTRIO configurations
	// of Table IV rely on the on-device DevTLB instead). Sets == 0
	// disables it.
	IOTLB tlb.Config
	// L2PWC caches partial walks at 2 MB granularity: (SID, iova>>21) ->
	// host address of the guest L1 table. 4 KB mappings only.
	L2PWC tlb.Config
	// L3PWC caches partial walks at 1 GB granularity: (SID, iova>>30) ->
	// host address of the guest L2 table.
	L3PWC tlb.Config
	// MemoEntries sizes the epoch-validated walk-memoization table that
	// short-circuits repeated identical nested walks (a simulator
	// optimization, not modeled hardware — replays charge exactly the
	// accesses the real walk would have performed, so results are
	// byte-identical either way). 0 selects DefaultMemoEntries; negative
	// disables memoization; other values round up to a power of two.
	MemoEntries int
}

// DefaultContextCache returns the context-cache geometry used by every
// experiment: 64 entries, fully associative, LRU.
func DefaultContextCache() tlb.Config {
	return tlb.Config{Name: "context-cache", Sets: 1, Ways: 64, Policy: tlb.LRU}
}

// IOMMU is the chipset translation agent for one shared device.
type IOMMU struct {
	cfg Config

	ctxTable *mem.ContextTable
	tenants  *mem.TenantTables

	cc    *tlb.Cache
	iotlb *tlb.Cache // nil when disabled
	l2pwc *tlb.Cache
	l3pwc *tlb.Cache

	history *History

	// memo short-circuits repeated identical nested walks; nil when
	// disabled (Config.MemoEntries < 0). See memo.go.
	memo *walkMemo

	// walkBuf is the reused access scratch for one translation's nested
	// walk: Translate only needs the access count, so the record slice is
	// recycled and a warm translation performs no allocation.
	walkBuf []mem.NestedAccess

	// Counters (observability cells; Stats assembles the snapshot view).
	translations obs.Counter
	walks        obs.Counter
	memAccesses  obs.Counter
}

// New builds the IOMMU. ctxTable must contain an entry for every SID that
// will translate; tenants maps each SID to its nested page tables.
func New(cfg Config, ctxTable *mem.ContextTable, tenants *mem.TenantTables) *IOMMU {
	u := &IOMMU{
		cfg:      cfg,
		ctxTable: ctxTable,
		tenants:  tenants,
		cc:       tlb.New(cfg.ContextCache),
		l2pwc:    tlb.New(cfg.L2PWC),
		l3pwc:    tlb.New(cfg.L3PWC),
		history:  NewHistory(DefaultHistoryDepth),
		memo:     newWalkMemo(cfg.MemoEntries),
	}
	if cfg.IOTLB.Sets > 0 {
		u.iotlb = tlb.New(cfg.IOTLB)
	}
	return u
}

// Config returns the chipset's configuration.
func (u *IOMMU) Config() Config { return u.cfg }

// Result reports what one translation did.
type Result struct {
	HPA uint64

	CCHit    bool
	IOTLBHit bool
	// PWCLevel records the deepest page-walk-cache hit: 0 none,
	// 2 for the L2 (2 MB granule) cache, 3 for the L3 (1 GB granule).
	PWCLevel int
	// MemAccesses is the number of physical memory reads performed
	// (context table + page-table walk). Zero on an IOTLB hit with a
	// warm context cache.
	MemAccesses int
}

// PageKey builds the cache key for a translation at its mapping's native
// granule. The page-size class is folded into the tag's high bits so 4 KB
// and 2 MB mappings never alias.
func PageKey(sid mem.SID, iova uint64, pageShift uint8) tlb.Key {
	return tlb.Key{SID: uint32(sid), Tag: iova>>pageShift | uint64(pageShift)<<56}
}

func granuleKey(sid mem.SID, iova uint64, shift uint) tlb.Key {
	return tlb.Key{SID: uint32(sid), Tag: iova >> shift}
}

// Translate resolves one gIOVA for sid. pageShift is the native page size
// of the mapping (the device learns it from the descriptor format; the
// model carries it in the trace). recordHistory controls whether the
// access updates the per-DID IOVA history (demand accesses do, prefetch
// reads must not).
func (u *IOMMU) Translate(sid mem.SID, iova uint64, pageShift uint8, recordHistory bool) (Result, error) {
	var res Result
	u.translations.Inc()

	// Context lookup: SID -> page-table roots.
	ccKey := tlb.Key{SID: uint32(sid)}
	if _, ok := u.cc.Lookup(ccKey); ok {
		res.CCHit = true
	} else {
		if _, err := u.ctxTable.Lookup(sid); err != nil {
			return res, err
		}
		res.MemAccesses += mem.ContextReadAccesses
		u.cc.Insert(tlb.Entry{Key: ccKey})
	}

	nt := u.tenants.Get(sid)
	if nt == nil {
		return res, fmt.Errorf("iommu: no nested table for SID %d", sid)
	}

	if recordHistory {
		u.history.Record(sid, iova, pageShift)
	}

	// Chipset IOTLB (optional).
	iotlbKey := PageKey(sid, iova, pageShift)
	if u.iotlb != nil {
		if e, ok := u.iotlb.Lookup(iotlbKey); ok {
			res.IOTLBHit = true
			res.HPA = e.Value | iova&(uint64(1)<<pageShift-1)
			u.memAccesses.Add(uint64(res.MemAccesses))
			return res, nil
		}
	}

	// Page-walk caches: resume the two-dimensional walk as deep as
	// possible. The L2 granule only caches a resume point for 4 KB
	// mappings (for 2 MB pages the L2-granule object is the final
	// translation itself, which lives in the IOTLB/DevTLB). The PWC
	// lookups run before the memoization check because they mutate
	// replacement state — a memoized translation must touch the cache
	// model exactly as the real walk would.
	u.walks.Inc()
	startLevel := 0 // 0 = full walk
	switch {
	case pageShift == mem.PageShift && u.l2pwcHit(sid, iova):
		res.PWCLevel = 2
		startLevel = 1
	case u.l3pwcHit(sid, iova):
		res.PWCLevel = 3
		startLevel = 2
	}

	// Memoized replay: an epoch-valid entry proves the tenant's tables
	// are unchanged since the entry's walk, so the outcome — translation,
	// access count for the chosen resume depth, install addresses — is
	// replayed without touching the simulated tables.
	if ent := u.memo.lookup(sid, iova>>mem.PageShift, nt); ent != nil {
		replay := int(ent.total)
		ok := true
		switch startLevel {
		case 1:
			replay, ok = int(ent.suf1), ent.tbl1OK
		case 2:
			replay, ok = int(ent.suf2), ent.tbl2OK
		}
		if ok {
			nt.ReplayReads(replay)
			res.MemAccesses += replay
			res.HPA = ent.hpa4k | iova&(mem.PageSize-1)
			u.memAccesses.Add(uint64(res.MemAccesses))
			u.install(sid, iova, pageShift, iotlbKey, res.HPA, ent.tbl1, ent.tbl2, ent.tbl1OK, ent.tbl2OK)
			return res, nil
		}
	}

	var walk mem.NestedResult
	var err error
	switch startLevel {
	case 1:
		tblHPA, terr := nt.TableHPA(iova, 1)
		if terr != nil {
			return res, terr
		}
		walk, err = nt.WalkFromInto(iova, 1, tblHPA, u.walkBuf[:0])
	case 2:
		tblHPA, terr := nt.TableHPA(iova, 2)
		if terr != nil {
			return res, terr
		}
		walk, err = nt.WalkFromInto(iova, 2, tblHPA, u.walkBuf[:0])
	default:
		walk, err = nt.WalkInto(iova, u.walkBuf[:0])
	}
	u.walkBuf = walk.Accesses[:0]
	if err != nil {
		return res, fmt.Errorf("iommu: walking %#x for SID %d: %w", iova, sid, err)
	}
	res.MemAccesses += len(walk.Accesses)
	res.HPA = walk.HPA
	u.memAccesses.Add(uint64(res.MemAccesses))

	// Install what the walk learned. A full walk memoizes its outcome
	// and derives the L1/L2 resume addresses from its own access vector,
	// which also spares the two silent re-walks the install path would
	// otherwise perform; a partial (PWC-resumed) walk saw only a suffix,
	// so it installs the old way and leaves the memo alone.
	if startLevel == 0 && u.memo != nil {
		if ent := u.memo.fill(sid, iova, nt, walk.Accesses, walk.HPA); ent != nil {
			u.install(sid, iova, pageShift, iotlbKey, walk.HPA, ent.tbl1, ent.tbl2, ent.tbl1OK, ent.tbl2OK)
			return res, nil
		}
	}
	pageMask := uint64(1)<<pageShift - 1
	if u.iotlb != nil {
		u.iotlb.Insert(tlb.Entry{Key: iotlbKey, Value: walk.HPA &^ pageMask, PageShift: pageShift})
	}
	if tblHPA, terr := nt.TableHPA(iova, 2); terr == nil {
		u.l3pwc.Insert(tlb.Entry{Key: granuleKey(sid, iova, mem.GiantPageShift), Value: uint64(tblHPA)})
	}
	if pageShift == mem.PageShift {
		if tblHPA, terr := nt.TableHPA(iova, 1); terr == nil {
			u.l2pwc.Insert(tlb.Entry{Key: granuleKey(sid, iova, mem.HugePageShift), Value: uint64(tblHPA)})
		}
	}
	return res, nil
}

// install performs the post-walk cache installs from already-derived
// resume addresses, sparing the silent table re-walks of the classic
// install path. The insert set and values match it exactly: tbl2OK/tbl1OK
// hold precisely when TableHPA(iova, 2)/TableHPA(iova, 1) would succeed.
func (u *IOMMU) install(sid mem.SID, iova uint64, pageShift uint8, iotlbKey tlb.Key, hpa uint64, tbl1, tbl2 mem.Addr, tbl1OK, tbl2OK bool) {
	if u.iotlb != nil {
		pageMask := uint64(1)<<pageShift - 1
		u.iotlb.Insert(tlb.Entry{Key: iotlbKey, Value: hpa &^ pageMask, PageShift: pageShift})
	}
	if tbl2OK {
		u.l3pwc.Insert(tlb.Entry{Key: granuleKey(sid, iova, mem.GiantPageShift), Value: uint64(tbl2)})
	}
	if pageShift == mem.PageShift && tbl1OK {
		u.l2pwc.Insert(tlb.Entry{Key: granuleKey(sid, iova, mem.HugePageShift), Value: uint64(tbl1)})
	}
}

func (u *IOMMU) l2pwcHit(sid mem.SID, iova uint64) bool {
	_, ok := u.l2pwc.Lookup(granuleKey(sid, iova, mem.HugePageShift))
	return ok
}

func (u *IOMMU) l3pwcHit(sid mem.SID, iova uint64) bool {
	_, ok := u.l3pwc.Lookup(granuleKey(sid, iova, mem.GiantPageShift))
	return ok
}

// Invalidate drops cached state for one unmapped page (driver unmap →
// IOTLB invalidation command). Page-walk-cache entries for the covering
// granules are dropped too, conservatively.
func (u *IOMMU) Invalidate(sid mem.SID, iova uint64, pageShift uint8) {
	if u.iotlb != nil {
		u.iotlb.Invalidate(PageKey(sid, iova, pageShift))
	}
	if pageShift == mem.PageShift {
		u.l2pwc.Invalidate(granuleKey(sid, iova, mem.HugePageShift))
	}
	u.memo.bumpSID(sid)
	u.history.Drop(sid, iova, pageShift)
}

// InvalidateSID drops every chipset-cached structure belonging to one
// tenant — the domain-wide invalidation a hypervisor issues at tenant
// teardown (context-cache entry, IOTLB and walk-cache entries, and the
// per-DID IOVA history). It returns how many cache entries were dropped.
func (u *IOMMU) InvalidateSID(sid mem.SID) int {
	n := u.cc.InvalidateSID(uint32(sid))
	if u.iotlb != nil {
		n += u.iotlb.InvalidateSID(uint32(sid))
	}
	n += u.l2pwc.InvalidateSID(uint32(sid))
	n += u.l3pwc.InvalidateSID(uint32(sid))
	u.memo.bumpSID(sid)
	u.history.DropSID(sid)
	return n
}

// FlushAll empties every chipset cache (a global invalidation command)
// and returns how many entries were dropped. Histories survive — they
// live in main memory, not in chipset state.
func (u *IOMMU) FlushAll() int {
	n := u.cc.Flush()
	if u.iotlb != nil {
		n += u.iotlb.Flush()
	}
	n += u.l2pwc.Flush()
	n += u.l3pwc.Flush()
	u.memo.bumpGlobal()
	return n
}

// History returns the per-DID IOVA history store.
func (u *IOMMU) History() *History { return u.history }

// Stats bundles the IOMMU counters for reporting.
type Stats struct {
	Translations uint64
	Walks        uint64
	MemAccesses  uint64
	ContextCache tlb.Stats
	IOTLB        tlb.Stats
	L2PWC        tlb.Stats
	L3PWC        tlb.Stats
}

// Stats returns a snapshot of the counters.
func (u *IOMMU) Stats() Stats {
	s := Stats{
		Translations: u.translations.Value(),
		Walks:        u.walks.Value(),
		MemAccesses:  u.memAccesses.Value(),
		ContextCache: u.cc.Stats(),
		L2PWC:        u.l2pwc.Stats(),
		L3PWC:        u.l3pwc.Stats(),
	}
	if u.iotlb != nil {
		s.IOTLB = u.iotlb.Stats()
	}
	return s
}

// Register publishes the chipset's counters and every cache's traffic
// into a metrics registry under prefix.
func (u *IOMMU) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".translations", &u.translations)
	r.Counter(prefix+".walks", &u.walks)
	r.Counter(prefix+".mem_accesses", &u.memAccesses)
	u.cc.Register(r, prefix+".cc")
	if u.iotlb != nil {
		u.iotlb.Register(r, prefix+".iotlb")
	}
	u.l2pwc.Register(r, prefix+".l2pwc")
	u.l3pwc.Register(r, prefix+".l3pwc")
}
