package iommu

import (
	"math/rand"
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// Property: for random tenants and random canonical gIOVAs, Translate
// always agrees with a direct nested walk and never reports more memory
// accesses than a cold two-dimensional walk plus context reads.
func TestPropertyTranslateAgreesWithWalk(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 8, workload.Websearch)
	u := New(testConfig(16), ct, tenants)
	rng := rand.New(rand.NewSource(77))
	maxCost := mem.ContextReadAccesses + 24
	for i := 0; i < 500; i++ {
		as := spaces[rng.Intn(len(spaces))]
		var iova uint64
		switch rng.Intn(4) {
		case 0:
			iova = as.Ring + uint64(rng.Intn(mem.PageSize))
		case 1:
			iova = as.Mailbox + uint64(rng.Intn(mem.PageSize))
		case 2:
			iova = as.DataPages[rng.Intn(len(as.DataPages))] + uint64(rng.Intn(mem.HugePageSize))
		default:
			iova = as.InitPages[rng.Intn(len(as.InitPages))] + uint64(rng.Intn(mem.PageSize))
		}
		shift := workload.PageShiftOf(iova)
		res, err := u.Translate(as.SID, iova, shift, rng.Intn(2) == 0)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		want, err := as.Nested.Walk(iova)
		if err != nil {
			t.Fatal(err)
		}
		if res.HPA != want.HPA {
			t.Fatalf("iter %d: HPA %#x, walk says %#x", i, res.HPA, want.HPA)
		}
		if res.MemAccesses < 0 || res.MemAccesses > maxCost {
			t.Fatalf("iter %d: %d accesses outside [0,%d]", i, res.MemAccesses, maxCost)
		}
		if res.IOTLBHit && res.MemAccesses > mem.ContextReadAccesses {
			t.Fatalf("iter %d: IOTLB hit cost %d accesses", i, res.MemAccesses)
		}
	}
	// Counter consistency after the storm.
	s := u.Stats()
	if s.Translations != 500 {
		t.Fatalf("translations = %d", s.Translations)
	}
	if s.Walks > s.Translations {
		t.Fatal("more walks than translations")
	}
	if s.IOTLB.Hits+s.IOTLB.Misses != s.IOTLB.Lookups {
		t.Fatalf("IOTLB stats inconsistent: %+v", s.IOTLB)
	}
}

// Property: interleaving invalidations with translations never corrupts
// results — a translation after invalidate re-walks and returns the same
// hPA (the mapping itself is unchanged).
func TestPropertyInvalidateConsistency(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 4, workload.Mediastream)
	u := New(testConfig(8), ct, tenants)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		as := spaces[rng.Intn(len(spaces))]
		page := as.DataPages[rng.Intn(len(as.DataPages))]
		if rng.Intn(3) == 0 {
			u.Invalidate(as.SID, page, mem.HugePageShift)
			continue
		}
		res, err := u.Translate(as.SID, page+uint64(rng.Intn(4096)), mem.HugePageShift, true)
		if err != nil {
			t.Fatal(err)
		}
		want, err := as.Nested.Walk(page)
		if err != nil {
			t.Fatal(err)
		}
		if res.HPA&^uint64(mem.HugePageSize-1) != want.HPA&^uint64(mem.HugePageSize-1) {
			t.Fatalf("iter %d: page base mismatch", i)
		}
	}
}

// Property: history Recent never returns more than depth entries, never
// duplicates a page, and most-recent-first ordering holds under random
// record/drop interleavings.
func TestPropertyHistoryInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHistory(4)
	last := make(map[uint64]uint64) // (sid,page) -> logical time
	clock := uint64(0)
	for i := 0; i < 2000; i++ {
		sid := mem.SID(rng.Intn(3) + 1)
		page := uint64(rng.Intn(8)) << 12
		if rng.Intn(5) == 0 {
			h.Drop(sid, page, 12)
			delete(last, uint64ToKey(sid, page))
			continue
		}
		clock++
		h.Record(sid, page|uint64(rng.Intn(4096)), 12)
		last[uint64ToKey(sid, page)] = clock
		r := h.Recent(sid, 10)
		if len(r) > 4 {
			t.Fatalf("Recent returned %d > depth", len(r))
		}
		seen := map[uint64]bool{}
		for j, e := range r {
			if seen[e.IOVA] {
				t.Fatalf("duplicate page %#x in history", e.IOVA)
			}
			seen[e.IOVA] = true
			if j > 0 && last[uint64ToKey(sid, r[j-1].IOVA)] < last[uint64ToKey(sid, e.IOVA)] {
				t.Fatalf("history not most-recent-first at %d", j)
			}
		}
	}
}

func uint64ToKey(sid mem.SID, page uint64) uint64 {
	return uint64(sid)<<48 | page
}
