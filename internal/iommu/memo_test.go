package iommu

import (
	"math/rand"
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// driveMemoDifferential builds two identical worlds — one IOMMU with
// walk memoization at its default size, one with it disabled — and
// drives both through the same randomized interleaving of translations,
// mid-flight remaps, page/tenant invalidations, driver unmaps and global
// flushes. Every translation must return an identical Result (HPA,
// hit flags, PWC level, access count) and identical error disposition,
// and the final Stats must match field for field: memoization is an
// engine optimization, not a modeled structure, so it may never change
// a single observable number.
func driveMemoDifferential(t *testing.T, iotlbSets int, seed int64) {
	t.Helper()
	const nTenants = 3

	ctM, tenantsM, spacesM := buildTenants(t, nTenants, workload.Mediastream)
	uM := New(testConfig(iotlbSets), ctM, tenantsM)

	ctU, tenantsU, spacesU := buildTenants(t, nTenants, workload.Mediastream)
	cfgU := testConfig(iotlbSets)
	cfgU.MemoEntries = -1
	uU := New(cfgU, ctU, tenantsU)

	rng := rand.New(rand.NewSource(seed))

	// pick returns the same (iova, shift) against both worlds' layouts;
	// the builds are deterministic, so the layouts agree.
	pick := func(as *workload.AddressSpace) (uint64, uint8) {
		switch rng.Intn(4) {
		case 0:
			return as.Ring + uint64(rng.Intn(mem.PageSize)), mem.PageShift
		case 1:
			return as.Mailbox + uint64(rng.Intn(mem.PageSize)), mem.PageShift
		case 2:
			j := rng.Intn(len(as.InitPages))
			return as.InitPages[j] + uint64(rng.Intn(mem.PageSize)), mem.PageShift
		default:
			j := rng.Intn(len(as.DataPages))
			return as.DataPages[j] + uint64(rng.Intn(mem.HugePageSize)), mem.HugePageShift
		}
	}

	translate := func(sid mem.SID, iova uint64, shift uint8, op int) {
		rM, errM := uM.Translate(sid, iova, shift, true)
		rU, errU := uU.Translate(sid, iova, shift, true)
		if (errM == nil) != (errU == nil) {
			t.Fatalf("op %d: error disposition diverged: memo=%v uncached=%v", op, errM, errU)
		}
		if rM != rU {
			t.Fatalf("op %d: SID %d iova %#x: memoized %+v, uncached %+v", op, sid, iova, rM, rU)
		}
	}

	const ops = 4000
	for op := 0; op < ops; op++ {
		k := rng.Intn(nTenants)
		asM, asU := spacesM[k], spacesU[k]
		switch r := rng.Intn(20); {
		case r < 14: // translate
			iova, shift := pick(asM)
			translate(asM.SID, iova, shift, op)
		case r < 16: // mid-flight remap of a data page onto a fresh frame
			j := rng.Intn(len(asM.DataPages))
			iova := asM.DataPages[j]
			if _, _, err := asM.Nested.MapIOVA(iova, mem.HugePageShift); err != nil {
				t.Fatal(err)
			}
			if _, _, err := asU.Nested.MapIOVA(iova, mem.HugePageShift); err != nil {
				t.Fatal(err)
			}
			// Half the remaps close the stale window immediately; the other
			// half leave the chipset serving the old frame until the next
			// invalidation — identically on both sides.
			if rng.Intn(2) == 0 {
				uM.Invalidate(asM.SID, iova, mem.HugePageShift)
				uU.Invalidate(asU.SID, iova, mem.HugePageShift)
			}
			translate(asM.SID, iova+uint64(rng.Intn(mem.HugePageSize)), mem.HugePageShift, op)
		case r < 17: // driver unmap + invalidation, then remap the page back
			j := rng.Intn(len(asM.InitPages))
			iova := asM.InitPages[j]
			if _, err := asM.Nested.UnmapIOVA(iova, mem.PageShift); err != nil {
				t.Fatal(err)
			}
			if _, err := asU.Nested.UnmapIOVA(iova, mem.PageShift); err != nil {
				t.Fatal(err)
			}
			uM.Invalidate(asM.SID, iova, mem.PageShift)
			uU.Invalidate(asU.SID, iova, mem.PageShift)
			// The unmapped page must fail (or stale-hit) identically.
			translate(asM.SID, iova, mem.PageShift, op)
			if _, _, err := asM.Nested.MapIOVA(iova, mem.PageShift); err != nil {
				t.Fatal(err)
			}
			if _, _, err := asU.Nested.MapIOVA(iova, mem.PageShift); err != nil {
				t.Fatal(err)
			}
			translate(asM.SID, iova, mem.PageShift, op)
		case r < 19: // tenant teardown
			nM := uM.InvalidateSID(asM.SID)
			nU := uU.InvalidateSID(asU.SID)
			if nM != nU {
				t.Fatalf("op %d: InvalidateSID dropped %d vs %d entries", op, nM, nU)
			}
		default: // global flush
			nM := uM.FlushAll()
			nU := uU.FlushAll()
			if nM != nU {
				t.Fatalf("op %d: FlushAll dropped %d vs %d entries", op, nM, nU)
			}
		}
	}

	if sM, sU := uM.Stats(), uU.Stats(); sM != sU {
		t.Fatalf("final stats diverged:\nmemoized: %+v\nuncached: %+v", sM, sU)
	}
	ms := uM.MemoStats()
	if !ms.Enabled || ms.Fills == 0 {
		t.Fatalf("memoized run never exercised the memo: %+v", ms)
	}
	if iotlbSets == 0 && ms.Hits == 0 {
		// Without an IOTLB every repeat translation reaches the memo, so a
		// hit-free run means the epochs never validated anything. (With an
		// IOTLB in front, repeat walks of one page mostly follow an
		// invalidation — which bumps the epoch — so hits are legitimately
		// scarce there.)
		t.Fatalf("IOTLB-less memoized run never hit the memo: %+v", ms)
	}
	if uU.MemoStats().Enabled {
		t.Fatal("MemoEntries=-1 did not disable memoization")
	}
}

// TestMemoMatchesUncachedUnderMutation: no IOTLB in front, so every
// translation reaches the walk path and the memo is consulted (and must
// revalidate) on each one.
func TestMemoMatchesUncachedUnderMutation(t *testing.T) {
	driveMemoDifferential(t, 0, 1)
}

// TestMemoMatchesUncachedWithIOTLB: with an IOTLB in front the memo only
// sees that cache's misses, and invalidations must keep all three layers
// (IOTLB, PWCs, memo) mutually coherent.
func TestMemoMatchesUncachedWithIOTLB(t *testing.T) {
	driveMemoDifferential(t, 8, 2)
}

// TestMemoEpochInvalidation pins the three invalidation channels one by
// one: a table mutation (epoch), a per-SID invalidation and a global
// flush must each kill a memoized walk, while an unrelated tenant's
// mutation must not.
func TestMemoEpochInvalidation(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 2, workload.Mediastream)
	u := New(testConfig(0), ct, tenants) // no IOTLB: every translate consults the memo
	a, b := spaces[0], spaces[1]

	warm := func(as *workload.AddressSpace) MemoStats {
		t.Helper()
		if _, err := u.Translate(as.SID, as.Ring, mem.PageShift, true); err != nil {
			t.Fatal(err)
		}
		return u.MemoStats()
	}
	// refill restores a fresh, valid memo entry for as.Ring: the flush
	// empties the PWCs (a PWC-resumed rewalk never refills the memo — only
	// a full walk does), so the next translate is a full walk that fills.
	refill := func(as *workload.AddressSpace) {
		t.Helper()
		u.FlushAll()
		before := u.MemoStats()
		after := warm(as)
		if after.Fills != before.Fills+1 {
			t.Fatalf("full walk after flush did not refill: %+v -> %+v", before, after)
		}
	}
	expect := func(as *workload.AddressSpace, what string, hit bool) {
		t.Helper()
		before := u.MemoStats()
		after := warm(as)
		if hit && after.Hits != before.Hits+1 {
			t.Fatalf("%s: expected a memo hit: %+v -> %+v", what, before, after)
		}
		if !hit && after.Misses != before.Misses+1 {
			t.Fatalf("%s: expected a memo miss: %+v -> %+v", what, before, after)
		}
	}

	warm(a) // first full walk fills
	expect(a, "steady state", true)
	expect(a, "steady state", true)

	// Channel 1: a table mutation anywhere in tenant A's tables (a map of
	// an otherwise-unused gIOVA region) advances A's table epoch.
	if _, _, err := a.Nested.MapIOVA(0x1000_0000, mem.PageShift); err != nil {
		t.Fatal(err)
	}
	expect(a, "table mutation", false)

	// An unrelated tenant's mutation must NOT invalidate A's entry.
	refill(a)
	if _, _, err := b.Nested.MapIOVA(0x1000_0000, mem.PageShift); err != nil {
		t.Fatal(err)
	}
	expect(a, "unrelated tenant's mutation", true)

	// Channel 2: per-SID invalidation.
	u.InvalidateSID(a.SID)
	expect(a, "InvalidateSID", false)

	// ...which must not have touched tenant B either.
	refill(b)
	u.InvalidateSID(a.SID)
	expect(b, "other tenant's InvalidateSID", true)

	// Channel 3: a global flush kills every tenant's entries.
	refill(a)
	refill(b)
	u.FlushAll()
	expect(a, "FlushAll (tenant A)", false)
	expect(b, "FlushAll (tenant B)", false)
}
