package iommu

import (
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/tlb"
	"hypertrio/internal/workload"
)

// buildTenants maps n tenants with the mediastream layout and returns the
// pieces an IOMMU needs.
func buildTenants(t *testing.T, n int, kind workload.Kind) (*mem.ContextTable, *mem.TenantTables, []*workload.AddressSpace) {
	t.Helper()
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	ct := mem.NewContextTable()
	tenants := mem.NewTenantTables(mem.SID(n))
	var spaces []*workload.AddressSpace
	for i := 1; i <= n; i++ {
		as, err := workload.BuildAddressSpace(workload.ProfileFor(kind), mem.SID(i), host, ct)
		if err != nil {
			t.Fatal(err)
		}
		tenants.Set(mem.SID(i), as.Nested)
		spaces = append(spaces, as)
	}
	return ct, tenants, spaces
}

func testConfig(iotlbSets int) Config {
	cfg := Config{
		ContextCache: DefaultContextCache(),
		L2PWC:        tlb.Config{Name: "l2pwc", Sets: 32, Ways: 16, Policy: tlb.LFU},
		L3PWC:        tlb.Config{Name: "l3pwc", Sets: 64, Ways: 16, Policy: tlb.LFU},
	}
	if iotlbSets > 0 {
		cfg.IOTLB = tlb.Config{Name: "iotlb", Sets: iotlbSets, Ways: 8, Policy: tlb.LRU}
	}
	return cfg
}

func TestTranslateMatchesWalk(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 2, workload.Mediastream)
	u := New(testConfig(0), ct, tenants)
	for _, as := range spaces {
		for _, iova := range []uint64{as.Ring + 0x40, as.DataPages[3] + 0x1234, as.Mailbox} {
			want, err := as.Nested.Walk(iova)
			if err != nil {
				t.Fatal(err)
			}
			got, err := u.Translate(as.SID, iova, workload.PageShiftOf(iova), true)
			if err != nil {
				t.Fatal(err)
			}
			if got.HPA != want.HPA {
				t.Fatalf("SID %d iova %#x: HPA %#x, want %#x", as.SID, iova, got.HPA, want.HPA)
			}
		}
	}
}

func TestColdTranslationCosts(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 1, workload.Mediastream)
	u := New(testConfig(0), ct, tenants)
	as := spaces[0]
	// Cold 4K ring page: 2 context reads + 24 walk accesses.
	res, err := u.Translate(as.SID, as.Ring, mem.PageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.CCHit || res.PWCLevel != 0 {
		t.Fatalf("cold translation hit something: %+v", res)
	}
	if res.MemAccesses != mem.ContextReadAccesses+24 {
		t.Fatalf("cold 4K cost %d accesses, want %d", res.MemAccesses, mem.ContextReadAccesses+24)
	}
	// Cold 2M data page in a fresh granule: context hits now; the L3 PWC
	// entry installed by the ring walk covers a different 1 GB granule.
	res, err = u.Translate(as.SID, as.DataPages[0], mem.HugePageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.CCHit != true {
		t.Fatal("context cache should hit on second translation")
	}
	if res.PWCLevel != 0 || res.MemAccesses != 18 {
		t.Fatalf("cold 2M translation: %+v, want full 18-access walk", res)
	}
}

func TestPWCAcceleration(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 1, workload.Mediastream)
	u := New(testConfig(0), ct, tenants)
	as := spaces[0]
	if _, err := u.Translate(as.SID, as.Ring, mem.PageShift, true); err != nil {
		t.Fatal(err)
	}
	// Same 4K page again (no IOTLB): the L2 PWC resumes at guest L1,
	// leaving 5 walk accesses.
	res, err := u.Translate(as.SID, as.Ring+8, mem.PageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.PWCLevel != 2 {
		t.Fatalf("PWCLevel = %d, want 2", res.PWCLevel)
	}
	if res.MemAccesses != 5 {
		t.Fatalf("L2-PWC-hit walk cost %d, want 5", res.MemAccesses)
	}
	// Mailbox page shares the ring's 2 MB granule: also an L2 hit.
	res, err = u.Translate(as.SID, as.Mailbox, mem.PageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.PWCLevel != 2 || res.MemAccesses != 5 {
		t.Fatalf("mailbox after ring: %+v, want L2 hit costing 5", res)
	}
	// Data pages: first cold (18), second in same 1 GB granule gets an
	// L3 hit: gL2 read + 3-access host walk = 4.
	if _, err := u.Translate(as.SID, as.DataPages[0], mem.HugePageShift, true); err != nil {
		t.Fatal(err)
	}
	res, err = u.Translate(as.SID, as.DataPages[1], mem.HugePageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.PWCLevel != 3 || res.MemAccesses != 4 {
		t.Fatalf("second data page: %+v, want L3 hit costing 4", res)
	}
}

func TestIOTLBHitCostsNothing(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 1, workload.Iperf3)
	u := New(testConfig(8), ct, tenants)
	as := spaces[0]
	if _, err := u.Translate(as.SID, as.Ring, mem.PageShift, true); err != nil {
		t.Fatal(err)
	}
	res, err := u.Translate(as.SID, as.Ring+16, mem.PageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IOTLBHit {
		t.Fatalf("second access should hit IOTLB: %+v", res)
	}
	if res.MemAccesses != 0 {
		t.Fatalf("IOTLB hit cost %d accesses, want 0", res.MemAccesses)
	}
	want, err := as.Nested.Walk(as.Ring + 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPA != want.HPA {
		t.Fatalf("IOTLB hit HPA %#x, want %#x", res.HPA, want.HPA)
	}
}

func TestTenantsIsolatedInCaches(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 2, workload.Iperf3)
	u := New(testConfig(8), ct, tenants)
	a, b := spaces[0], spaces[1]
	ra, err := u.Translate(a.SID, a.Ring, mem.PageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := u.Translate(b.SID, b.Ring, mem.PageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if rb.IOTLBHit {
		t.Fatal("tenant B hit tenant A's IOTLB entry for the same gIOVA")
	}
	if ra.HPA == rb.HPA {
		t.Fatal("two tenants translated the same gIOVA to the same hPA")
	}
}

func TestInvalidateForcesRewalk(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 1, workload.Mediastream)
	u := New(testConfig(8), ct, tenants)
	as := spaces[0]
	iova := as.DataPages[0]
	if _, err := u.Translate(as.SID, iova, mem.HugePageShift, true); err != nil {
		t.Fatal(err)
	}
	res, err := u.Translate(as.SID, iova+64, mem.HugePageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IOTLBHit {
		t.Fatal("warm access should hit")
	}
	u.Invalidate(as.SID, iova, mem.HugePageShift)
	res, err = u.Translate(as.SID, iova+128, mem.HugePageShift, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOTLBHit {
		t.Fatal("access after invalidate must miss the IOTLB")
	}
}

func TestStatsAccumulate(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 1, workload.Iperf3)
	u := New(testConfig(8), ct, tenants)
	as := spaces[0]
	for i := 0; i < 5; i++ {
		if _, err := u.Translate(as.SID, as.Ring, mem.PageShift, true); err != nil {
			t.Fatal(err)
		}
	}
	s := u.Stats()
	if s.Translations != 5 {
		t.Fatalf("Translations = %d, want 5", s.Translations)
	}
	if s.Walks != 1 {
		t.Fatalf("Walks = %d, want 1 (rest IOTLB hits)", s.Walks)
	}
	if s.IOTLB.Hits != 4 {
		t.Fatalf("IOTLB hits = %d, want 4", s.IOTLB.Hits)
	}
	if s.MemAccesses == 0 {
		t.Fatal("MemAccesses not counted")
	}
}

func TestTranslateUnknownSID(t *testing.T) {
	ct, tenants, _ := buildTenants(t, 1, workload.Iperf3)
	u := New(testConfig(0), ct, tenants)
	if _, err := u.Translate(99, workload.RingIOVA, mem.PageShift, true); err == nil {
		t.Fatal("unknown SID accepted")
	}
}

func TestHistoryRecordRecentDrop(t *testing.T) {
	h := NewHistory(3)
	h.Record(1, 0x1000, 12)
	h.Record(1, 0x2000, 12)
	h.Record(1, 0x1008, 12) // same page as 0x1000: dedups, moves to front
	r := h.Recent(1, 2)
	if len(r) != 2 || r[0].IOVA != 0x1000 || r[1].IOVA != 0x2000 {
		t.Fatalf("Recent = %+v", r)
	}
	h.Record(1, 0x3000, 12)
	h.Record(1, 0x4000, 12) // depth 3: 0x2000 falls off
	r = h.Recent(1, 4)
	if len(r) != 3 || r[0].IOVA != 0x4000 || r[2].IOVA != 0x1000 {
		t.Fatalf("after overflow: %+v", r)
	}
	h.Drop(1, 0x3000, 12)
	r = h.Recent(1, 3)
	if len(r) != 2 {
		t.Fatalf("Drop failed: %+v", r)
	}
	if h.Tenants() != 1 {
		t.Fatalf("Tenants = %d", h.Tenants())
	}
}

func TestHistoryRecordedByTranslate(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 1, workload.Iperf3)
	u := New(testConfig(0), ct, tenants)
	as := spaces[0]
	if _, err := u.Translate(as.SID, as.Ring+8, mem.PageShift, true); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(as.SID, as.DataPages[0]+100, mem.HugePageShift, true); err != nil {
		t.Fatal(err)
	}
	// Prefetch-style translation must not pollute history.
	if _, err := u.Translate(as.SID, as.Mailbox, mem.PageShift, false); err != nil {
		t.Fatal(err)
	}
	r := u.History().Recent(as.SID, 4)
	if len(r) != 2 {
		t.Fatalf("history has %d entries, want 2: %+v", len(r), r)
	}
	if r[0].IOVA != as.DataPages[0] || r[1].IOVA != as.Ring {
		t.Fatalf("history order wrong: %+v", r)
	}
}

func TestPageKeyGranules(t *testing.T) {
	// Same iova, different granules must produce distinct keys.
	a := PageKey(1, workload.DataBase+0x1000, mem.PageShift)
	b := PageKey(1, workload.DataBase+0x1000, mem.HugePageShift)
	if a == b {
		t.Fatal("4K and 2M keys alias")
	}
	// Offsets within a page share the key.
	if PageKey(1, workload.DataBase+100, mem.HugePageShift) != PageKey(1, workload.DataBase+0x1FFFFF, mem.HugePageShift) {
		t.Fatal("offsets within one 2M page produced different keys")
	}
}

func TestInvalidateSIDScoped(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 2, workload.Mediastream)
	u := New(testConfig(4), ct, tenants)
	for _, as := range spaces {
		if _, err := u.Translate(as.SID, as.Ring, workload.PageShiftOf(as.Ring), true); err != nil {
			t.Fatal(err)
		}
	}
	victim, other := spaces[0], spaces[1]
	if n := u.InvalidateSID(victim.SID); n == 0 {
		t.Fatal("InvalidateSID dropped no chipset state after a translation")
	}
	if got := u.History().AppendRecent(nil, victim.SID, 8); len(got) != 0 {
		t.Fatalf("victim's history survived teardown: %v", got)
	}
	if got := u.History().AppendRecent(nil, other.SID, 8); len(got) == 0 {
		t.Fatal("other tenant's history dropped by a scoped invalidation")
	}
	res, err := u.Translate(other.SID, other.Ring, workload.PageShiftOf(other.Ring), true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IOTLBHit {
		t.Fatal("other tenant's IOTLB entry dropped by a scoped invalidation")
	}
	res, err = u.Translate(victim.SID, victim.Ring, workload.PageShiftOf(victim.Ring), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOTLBHit {
		t.Fatal("victim's IOTLB entry survived teardown")
	}
}

func TestFlushAllKeepsHistory(t *testing.T) {
	ct, tenants, spaces := buildTenants(t, 2, workload.Mediastream)
	u := New(testConfig(4), ct, tenants)
	for _, as := range spaces {
		if _, err := u.Translate(as.SID, as.Ring, workload.PageShiftOf(as.Ring), true); err != nil {
			t.Fatal(err)
		}
	}
	if n := u.FlushAll(); n == 0 {
		t.Fatal("FlushAll dropped nothing after translations")
	}
	for _, as := range spaces {
		// The per-DID IOVA history lives in main memory, not chipset state:
		// a broadcast invalidation must not touch it.
		if got := u.History().AppendRecent(nil, as.SID, 8); len(got) == 0 {
			t.Fatalf("SID %d history dropped by FlushAll", as.SID)
		}
		res, err := u.Translate(as.SID, as.Ring, workload.PageShiftOf(as.Ring), true)
		if err != nil {
			t.Fatal(err)
		}
		if res.IOTLBHit {
			t.Fatalf("SID %d IOTLB entry survived FlushAll", as.SID)
		}
	}
}
