package iommu

import (
	"hypertrio/internal/mem"
)

// DefaultMemoEntries is the walk-memoization capacity used when
// Config.MemoEntries is zero: 16 K direct-mapped entries, ~1.5 MB of
// fixed storage per chipset.
const DefaultMemoEntries = 1 << 14

// memoEntry is one cached nested-walk outcome for a (SID, gIOVA 4 KB
// page) pair. The entry stores everything a replay needs — the 4 KB-
// granular host translation, the access counts of the full walk and of
// the two page-walk-cache resume points, and the host addresses of the
// guest L1/L2 tables that the install path would otherwise re-derive
// with silent walks. Validity is epoch-checked, never scanned: a stored
// snapshot of the tenant's table epoch, the per-SID invalidation epoch
// and the global flush epoch must all still match.
type memoEntry struct {
	sid  mem.SID
	page uint64 // gIOVA >> mem.PageShift

	tableEpoch  uint64
	sidEpoch    uint32
	globalEpoch uint32

	hpa4k      uint64 // host translation of the key's 4 KB page (low 12 bits clear)
	tbl1, tbl2 mem.Addr
	tbl1OK     bool
	tbl2OK     bool
	valid      bool

	total uint16 // accesses of the full two-dimensional walk
	suf1  uint16 // accesses when resuming at guest L1 (L2-PWC hit)
	suf2  uint16 // accesses when resuming at guest L2 (L3-PWC hit)
}

// walkMemo is the epoch-validated walk-memoization table: direct-mapped
// over a power-of-two entry array, so lookup, fill and eviction are a
// hash, a compare and a struct write — no map, no lists, no allocation
// after construction. Collisions simply overwrite (the displaced walk
// recomputes on its next miss), which keeps behaviour deterministic and
// memory exactly bounded.
//
// Invalidation is O(1) regardless of how many entries a command covers:
// page and tenant invalidations bump the tenant's epoch counter, global
// flushes bump the global epoch, and table mutations advance the
// tenant's NestedTable epoch — stale entries then fail their epoch
// compare on next touch instead of being searched for eagerly.
type walkMemo struct {
	entries []memoEntry
	mask    uint64

	sidEp    []uint32 // per-SID invalidation epochs, dense, grown on demand
	globalEp uint32

	hits, misses, fills uint64
}

// newWalkMemo sizes the table from the config knob: 0 means
// DefaultMemoEntries, negative disables memoization entirely (nil memo),
// anything else rounds up to a power of two.
func newWalkMemo(entries int) *walkMemo {
	if entries < 0 {
		return nil
	}
	if entries == 0 {
		entries = DefaultMemoEntries
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	return &walkMemo{entries: make([]memoEntry, n), mask: uint64(n - 1)}
}

// memoHash mixes (sid, page) into a table index (splitmix64 finalizer).
func memoHash(sid mem.SID, page uint64) uint64 {
	x := page*0x9E3779B97F4A7C15 ^ uint64(sid)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (m *walkMemo) sidEpoch(sid mem.SID) uint32 {
	if int(sid) < len(m.sidEp) {
		return m.sidEp[sid]
	}
	return 0
}

// bumpSID advances one tenant's invalidation epoch, logically dropping
// every memoized walk for that SID in O(1).
func (m *walkMemo) bumpSID(sid mem.SID) {
	if m == nil {
		return
	}
	for int(sid) >= len(m.sidEp) {
		m.sidEp = append(m.sidEp, 0)
	}
	m.sidEp[sid]++
}

// bumpGlobal logically drops every memoized walk (global flush).
func (m *walkMemo) bumpGlobal() {
	if m == nil {
		return
	}
	m.globalEp++
}

// lookup returns the live entry for (sid, page), revalidating its epochs
// against the tenant's current table state, or nil on a miss. A stale
// entry is marked invalid so the slot refills.
func (m *walkMemo) lookup(sid mem.SID, page uint64, nt *mem.NestedTable) *memoEntry {
	if m == nil {
		return nil
	}
	ent := &m.entries[memoHash(sid, page)&m.mask]
	if !ent.valid || ent.sid != sid || ent.page != page {
		m.misses++
		return nil
	}
	if ent.tableEpoch != nt.Epoch() || ent.sidEpoch != m.sidEpoch(sid) || ent.globalEpoch != m.globalEp {
		ent.valid = false
		m.misses++
		return nil
	}
	m.hits++
	return ent
}

// fill memoizes one successful full walk. The resume-point table
// addresses and suffix access counts are derived from the walk's own
// access vector: the GuestEntry read at guest level L happens at
// (level-L table base) + index(iova, L)*8, and a page-walk-cache resume
// from level L replays exactly the vector's suffix from that read — so
// one walk yields the full-walk count, both partial-walk counts and both
// install addresses without any extra table traffic.
func (m *walkMemo) fill(sid mem.SID, iova uint64, nt *mem.NestedTable, accesses []mem.NestedAccess, hpa uint64) *memoEntry {
	if m == nil || len(accesses) == 0 || len(accesses) > 0xFFFF {
		return nil
	}
	ent := &m.entries[memoHash(sid, iova>>mem.PageShift)&m.mask]
	m.fills++
	*ent = memoEntry{
		sid:         sid,
		page:        iova >> mem.PageShift,
		tableEpoch:  nt.Epoch(),
		sidEpoch:    m.sidEpoch(sid),
		globalEpoch: m.globalEp,
		hpa4k:       hpa &^ (mem.PageSize - 1),
		total:       uint16(len(accesses)),
		valid:       true,
	}
	for i := range accesses {
		a := &accesses[i]
		if a.Kind != mem.GuestEntry {
			continue
		}
		switch a.GuestLevel {
		case 2:
			idx2 := (iova >> (mem.PageShift + 9)) & (mem.EntriesPerTable - 1)
			ent.tbl2 = a.HostAddr - mem.Addr(idx2*8)
			ent.tbl2OK = true
			ent.suf2 = uint16(len(accesses) - i)
		case 1:
			idx1 := (iova >> mem.PageShift) & (mem.EntriesPerTable - 1)
			ent.tbl1 = a.HostAddr - mem.Addr(idx1*8)
			ent.tbl1OK = true
			ent.suf1 = uint16(len(accesses) - i)
		}
	}
	return ent
}

// MemoStats reports the walk-memoization counters. They are intentionally
// not part of Stats or the obs registry: memoization is outcome-invisible
// by contract, so its bookkeeping must not alter any reported schema.
type MemoStats struct {
	Enabled bool
	Entries int
	Hits    uint64
	Misses  uint64
	Fills   uint64
}

// MemoStats returns a snapshot of the walk-memoization counters.
func (u *IOMMU) MemoStats() MemoStats {
	if u.memo == nil {
		return MemoStats{}
	}
	return MemoStats{
		Enabled: true,
		Entries: len(u.memo.entries),
		Hits:    u.memo.hits,
		Misses:  u.memo.misses,
		Fills:   u.memo.fills,
	}
}
