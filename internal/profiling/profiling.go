// Package profiling wraps runtime/pprof for the repository's CLIs: one
// Start/Finish pair gives a command -cpuprofile/-memprofile behaviour
// consistent with `go test`, with the output paths validated up front so
// a typo fails before minutes of simulation, not after.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the open profile outputs of one CLI run. The zero-value
// (from Start with two empty paths) is inert: Finish is a no-op.
type Session struct {
	cpu *os.File
	mem *os.File
}

// Start opens the requested profile outputs and begins CPU profiling.
// Both files are created immediately — an unwritable path is reported
// here, before the profiled work starts — but the heap profile itself is
// only written by Finish, after the work it should describe.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		s.cpu = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			s.stopCPU()
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
		s.mem = f
	}
	return s, nil
}

func (s *Session) stopCPU() {
	if s.cpu != nil {
		pprof.StopCPUProfile()
		s.cpu.Close()
		s.cpu = nil
	}
}

// Finish stops the CPU profile and writes the heap profile (after a
// final GC, so the numbers reflect live memory rather than garbage).
// It is idempotent: a deferred Finish after an explicit one is a no-op.
func (s *Session) Finish() error {
	var firstErr error
	if s.cpu != nil {
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			firstErr = fmt.Errorf("-cpuprofile: %w", err)
		}
		s.cpu = nil
	}
	if s.mem != nil {
		runtime.GC()
		err := pprof.WriteHeapProfile(s.mem)
		if cerr := s.mem.Close(); err == nil {
			err = cerr
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("-memprofile: %w", err)
		}
		s.mem = nil
	}
	return firstErr
}
