package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartFinishWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Some sampled work so the CPU profile is plausible, then finish.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	// Idempotent: a second Finish (the deferred-backstop pattern) is a no-op.
	if err := s.Finish(); err != nil {
		t.Fatalf("second Finish: %v", err)
	}
}

func TestStartValidatesPathsUpFront(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("bad -cpuprofile path accepted")
	}
	if _, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")); err == nil {
		t.Fatal("bad -memprofile path accepted")
	}
	// A bad mem path must also unwind an already-started CPU profile so
	// the caller can retry (StartCPUProfile fails if one is active).
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	if _, err := Start(cpu, filepath.Join(t.TempDir(), "no", "mem.pprof")); err == nil {
		t.Fatal("bad -memprofile path accepted alongside a valid -cpuprofile")
	}
	s, err := Start(cpu, "")
	if err != nil {
		t.Fatalf("CPU profiling not unwound after a failed Start: %v", err)
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySessionIsInert(t *testing.T) {
	s, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}
