package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hypertrio/internal/core"
	"hypertrio/internal/trace"
)

// Cell is one independent unit of simulation work: a system
// configuration plus the trace it replays. Cells never share mutable
// state (each simulation builds its own page tables and caches), which
// is what makes the sweep embarrassingly parallel.
type Cell struct {
	Config core.Config
	// Trace, when non-nil, is replayed as-is and must not be mutated
	// anywhere (it may be shared with other cells).
	Trace *trace.Trace
	// TraceConfig describes the trace to construct when Trace is nil;
	// construction goes through the pool's cache, so cells sweeping the
	// same trace config share one instance.
	TraceConfig trace.Config
	// Stream replays TraceConfig through an online generator-backed
	// source instead of materializing the trace: memory stays O(tenants)
	// regardless of trace length, which is what makes million-tenant
	// cells feasible. The packet sequence is identical either way
	// (Construct drains the same Stream). Ignored when Trace is set.
	// Configurations that genuinely need the whole sequence up front —
	// the Oracle replacement policy — fall back to the materialized cache
	// path rather than failing, since the fallback costs exactly what
	// streaming was avoiding only for those cells that cannot avoid it.
	Stream bool
	// Source, when non-nil, is replayed directly and takes precedence
	// over every other trace field. Sources are single-consumer: each
	// cell needs its own (scenario sweeps hand every streaming cell a
	// fresh scenario.Compiled.Stream()). Unlike the Stream path there is
	// no materialized fallback — a config that requires the whole
	// sequence up front is an error.
	Source trace.Source
}

// Pool executes cells across a fixed number of worker goroutines. The
// zero value is ready to use: GOMAXPROCS workers and the Shared cache.
type Pool struct {
	// Workers is the number of concurrent simulation goroutines; values
	// <= 0 mean runtime.GOMAXPROCS(0). Workers == 1 executes cells
	// sequentially in submission order — the historical serial behaviour.
	Workers int
	// Cache memoizes trace construction; nil means the process-wide
	// Shared() cache.
	Cache *Cache
}

func (p Pool) cache() *Cache {
	if p.Cache != nil {
		return p.Cache
	}
	return Shared()
}

func (p Pool) workers(cells int) int {
	n := p.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > cells {
		n = cells
	}
	return n
}

// Run executes every cell and returns the results indexed exactly as
// submitted: results[i] belongs to cells[i] regardless of the worker
// count or completion order, so output assembled from them is
// byte-identical to a serial run. Each simulation is deterministic, so
// the whole call is deterministic for a given cell list.
//
// On failure Run reports the error of the lowest-indexed failing cell;
// remaining cells may be skipped.
func (p Pool) Run(cells []Cell) ([]core.Result, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	results := make([]core.Result, len(cells))
	errs := make([]error, len(cells))
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := p.workers(len(cells)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) || failed.Load() {
					return
				}
				results[i], errs[i] = p.runCell(cells[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: cell %d: %w", i, err)
		}
	}
	return results, nil
}

// runCell resolves the cell's trace (building or sharing it through the
// cache) and runs one simulation. Panics inside the simulation engine
// are converted to errors so one bad cell cannot take down the pool.
func (p Pool) runCell(c Cell) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("simulation panic: %v", r)
		}
	}()
	if c.Source != nil {
		if core.RequiresMaterialized(c.Config) {
			return core.Result{}, fmt.Errorf("config requires a materialized trace; cell has a streaming source")
		}
		sys, err := core.NewSystemSource(c.Config, c.Source)
		if err != nil {
			return core.Result{}, err
		}
		return sys.Run()
	}
	tr := c.Trace
	if tr == nil {
		if c.Stream && !core.RequiresMaterialized(c.Config) {
			src, err := trace.NewStream(c.TraceConfig)
			if err != nil {
				return core.Result{}, err
			}
			sys, err := core.NewSystemSource(c.Config, src)
			if err != nil {
				return core.Result{}, err
			}
			return sys.Run()
		}
		tr, err = p.cache().Get(c.TraceConfig)
		if err != nil {
			return core.Result{}, err
		}
	}
	sys, err := core.NewSystem(c.Config, tr)
	if err != nil {
		return core.Result{}, err
	}
	return sys.Run()
}
