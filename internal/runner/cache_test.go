package runner

import (
	"sync"
	"testing"

	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

func testTraceConfig() trace.Config {
	return trace.Config{
		Benchmark:  workload.Iperf3,
		Tenants:    4,
		Interleave: trace.RR1,
		Seed:       42,
		Scale:      0.002,
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache()
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("fresh cache has stats %+v", s)
	}
	tr1, err := c.Get(testTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c.Get(testTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("identical configs returned distinct traces")
	}
	s := c.Stats()
	if s.Entries != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats after miss+hit: %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache()
	base := testTraceConfig()
	variants := []trace.Config{base}

	seed := base
	seed.Seed = 43
	variants = append(variants, seed)

	scale := base
	scale.Scale = 0.004
	variants = append(variants, scale)

	tenants := base
	tenants.Tenants = 8
	variants = append(variants, tenants)

	iv := base
	iv.Interleave = trace.RR4
	variants = append(variants, iv)

	seen := map[*trace.Trace]bool{}
	for _, cfg := range variants {
		tr, err := c.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seen[tr] {
			t.Errorf("config %+v shared a trace with a different config", cfg)
		}
		seen[tr] = true
	}
	s := c.Stats()
	if s.Entries != len(variants) || s.Misses != uint64(len(variants)) || s.Hits != 0 {
		t.Errorf("stats after %d distinct configs: %+v", len(variants), s)
	}
}

// TestCacheProfileKeyedByValue: the override profile is part of the key
// by value, so equal profiles in different allocations share one trace
// and a different profile gets its own.
func TestCacheProfileKeyedByValue(t *testing.T) {
	c := NewCache()
	p1 := workload.SmallDataVariant(workload.ProfileFor(workload.Iperf3))
	p2 := p1 // same value, distinct address
	cfg1, cfg2 := testTraceConfig(), testTraceConfig()
	cfg1.Profile, cfg2.Profile = &p1, &p2
	tr1, err := c.Get(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := c.Get(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("equal override profiles did not share a trace")
	}
	noOverride, err := c.Get(testTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if noOverride == tr1 {
		t.Error("override and non-override configs shared a trace")
	}
}

func TestCacheErrorMemoized(t *testing.T) {
	c := NewCache()
	bad := testTraceConfig()
	bad.Tenants = 0
	for i := 0; i < 2; i++ {
		if _, err := c.Get(bad); err == nil {
			t.Fatalf("get %d: invalid config accepted", i)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("error entries not memoized: %+v", c.Stats())
	}
}

// TestCacheConcurrentSingleflight: concurrent Gets for one key must
// construct exactly once and all observe the same trace.
func TestCacheConcurrentSingleflight(t *testing.T) {
	c := NewCache()
	const goroutines = 16
	traces := make([]*trace.Trace, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Get(testTraceConfig())
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if traces[i] != traces[0] {
			t.Fatalf("goroutine %d saw a different trace", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != goroutines-1 || s.Entries != 1 {
		t.Errorf("singleflight accounting off: %+v", s)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache()
	if _, err := c.Get(testTraceConfig()); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if s := c.Stats(); s != (CacheStats{}) {
		t.Errorf("stats after reset: %+v", s)
	}
	if _, err := c.Get(testTraceConfig()); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Errorf("reset did not drop entries: %+v", s)
	}
}

func TestSharedCacheIsProcessWide(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() returned distinct caches")
	}
}
