package runner

import (
	"reflect"
	"strings"
	"testing"

	"hypertrio/internal/core"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// testCells builds a small heterogeneous sweep: three tenant counts,
// Base and HyperTRIO each, all through the pool's trace cache.
func testCells() []Cell {
	var cells []Cell
	for _, n := range []int{2, 4, 8} {
		tc := trace.Config{
			Benchmark:  workload.Websearch,
			Tenants:    n,
			Interleave: trace.RR1,
			Seed:       42,
			Scale:      0.002,
		}
		cells = append(cells,
			Cell{Config: core.BaseConfig(), TraceConfig: tc},
			Cell{Config: core.HyperTRIOConfig(), TraceConfig: tc},
		)
	}
	return cells
}

func TestPoolEmpty(t *testing.T) {
	rs, err := Pool{Cache: NewCache()}.Run(nil)
	if err != nil || rs != nil {
		t.Fatalf("empty run: %v, %v", rs, err)
	}
}

// TestPoolDeterministicAcrossWorkerCounts: any worker count must return
// the exact same results in the exact same submission order.
func TestPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Pool{Workers: 1, Cache: NewCache()}.Run(testCells())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 6 {
		t.Fatalf("got %d results, want 6", len(serial))
	}
	// Sanity: HyperTRIO beats Base at 8 tenants (cells 4 and 5).
	if serial[5].AchievedGbps <= serial[4].AchievedGbps {
		t.Errorf("result order looks scrambled: HyperTRIO %.2f <= Base %.2f",
			serial[5].AchievedGbps, serial[4].AchievedGbps)
	}
	for _, workers := range []int{0, 2, 7, 32} {
		parallel, err := Pool{Workers: workers, Cache: NewCache()}.Run(testCells())
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if !reflect.DeepEqual(parallel[i], serial[i]) {
				t.Fatalf("workers=%d: result %d differs from serial run", workers, i)
			}
		}
	}
}

// TestPoolSharesCachedTraces: cells sweeping the same trace config must
// construct it once, not once per cell.
func TestPoolSharesCachedTraces(t *testing.T) {
	cache := NewCache()
	if _, err := (Pool{Workers: 4, Cache: cache}).Run(testCells()); err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Misses != 3 {
		t.Errorf("built %d traces for 3 distinct configs", s.Misses)
	}
	if s.Hits != 3 {
		t.Errorf("reused %d times, want 3 (one per second design)", s.Hits)
	}
}

func TestPoolPrebuiltTrace(t *testing.T) {
	tr, err := trace.Construct(trace.Config{
		Benchmark:  workload.Iperf3,
		Tenants:    2,
		Interleave: trace.RR1,
		Seed:       7,
		Scale:      0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	rs, err := Pool{Workers: 2, Cache: cache}.Run([]Cell{
		{Config: core.BaseConfig(), Trace: tr},
		{Config: core.HyperTRIOConfig(), Trace: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Packets == 0 {
		t.Fatalf("unexpected results: %+v", rs)
	}
	if s := cache.Stats(); s.Misses != 0 {
		t.Errorf("pre-built traces went through the cache: %+v", s)
	}
}

// TestPoolReportsLowestFailingCell: the error must name the first
// failing cell by submission index, deterministically.
func TestPoolReportsLowestFailingCell(t *testing.T) {
	bad := testTraceConfig()
	bad.Scale = -1
	cells := testCells()
	cells[2] = Cell{Config: core.BaseConfig(), TraceConfig: bad}
	_, err := Pool{Workers: 1, Cache: NewCache()}.Run(cells)
	if err == nil {
		t.Fatal("bad cell accepted")
	}
	if !strings.Contains(err.Error(), "cell 2") {
		t.Errorf("error does not name cell 2: %v", err)
	}
}

func TestPoolInvalidConfig(t *testing.T) {
	cfg := core.BaseConfig()
	cfg.PTBEntries = -1
	_, err := Pool{Workers: 2, Cache: NewCache()}.Run([]Cell{
		{Config: cfg, TraceConfig: testTraceConfig()},
	})
	if err == nil {
		t.Fatal("invalid system config accepted")
	}
}

// TestPoolOracleCellsShareTrace: oracle replacement precomputes per-cell
// future state from the shared trace; running several oracle cells over
// one cached trace concurrently must not interfere (and is exercised
// under -race by the race CI target).
func TestPoolOracleCellsShareTrace(t *testing.T) {
	oracle := core.BaseConfig()
	oracle.DevTLB.Policy = tlb.Oracle
	tc := trace.Config{
		Benchmark:  workload.Mediastream,
		Tenants:    4,
		Interleave: trace.RR1,
		Seed:       42,
		Scale:      0.002,
	}
	cells := []Cell{
		{Config: oracle, TraceConfig: tc},
		{Config: oracle, TraceConfig: tc},
		{Config: oracle, TraceConfig: tc},
	}
	rs, err := Pool{Workers: 3, Cache: NewCache()}.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs[0], rs[1]) || !reflect.DeepEqual(rs[1], rs[2]) {
		t.Error("identical oracle cells diverged over a shared trace")
	}
}

// TestPoolConcurrentSampling runs cells with the time-series sampler
// attached through a shared obs.Options across many workers: sampling
// state is per-System, so concurrent cells must neither race (the -race
// CI target covers this test) nor change any simulation outcome.
func TestPoolConcurrentSampling(t *testing.T) {
	plain, err := Pool{Workers: 4, Cache: NewCache()}.Run(testCells())
	if err != nil {
		t.Fatal(err)
	}
	shared := &obs.Options{SampleEvery: 10 * sim.Microsecond}
	cells := testCells()
	for i := range cells {
		cells[i].Config.Obs = shared
	}
	sampled, err := Pool{Workers: 4, Cache: NewCache()}.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sampled {
		if sampled[i].Series == nil || len(sampled[i].Series.Points) == 0 {
			t.Fatalf("cell %d: sampling on but no series", i)
		}
		sampled[i].Series = nil
		if !reflect.DeepEqual(plain[i], sampled[i]) {
			t.Fatalf("cell %d: sampling changed the result\noff: %+v\non:  %+v",
				i, plain[i], sampled[i])
		}
	}
}
