// Package runner is the sweep-execution layer of the experiment suite:
// a worker pool that fans independent simulation cells out across
// goroutines while keeping results in deterministic submission order,
// and a process-wide memoizing cache that constructs each distinct
// hyper-tenant trace at most once and shares it read-only between
// simulations (the immutability contract documented in internal/trace).
package runner

import (
	"sync"

	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// cacheKey identifies a trace by the values that determine its content.
// trace.Config carries its optional profile override as a pointer; the
// key stores the pointed-to Profile by value, so two callers that build
// identical override profiles in different allocations still share one
// cached trace.
type cacheKey struct {
	benchmark  workload.Kind
	tenants    int
	interleave trace.Interleave
	seed       int64
	scale      float64
	rng        workload.RNG
	hasProfile bool
	profile    workload.Profile
}

func keyOf(c trace.Config) cacheKey {
	k := cacheKey{
		benchmark:  c.Benchmark,
		tenants:    c.Tenants,
		interleave: c.Interleave,
		seed:       c.Seed,
		scale:      c.Scale,
		rng:        c.RNG,
	}
	if c.Profile != nil {
		k.hasProfile = true
		k.profile = *c.Profile
	}
	return k
}

// cacheEntry holds one memoized Construct call. The once gives the
// cache singleflight semantics: concurrent Gets for the same key block
// on a single construction instead of duplicating it.
type cacheEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// Cache memoizes trace construction. It is safe for concurrent use; the
// traces it returns are shared, so callers must treat them as read-only
// (trace.Trace documents that contract, and core.System honours it).
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    uint64
	misses  uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// shared is the process-wide cache the experiment suite runs through.
var shared = NewCache()

// Shared returns the process-wide cache: every distinct trace.Config is
// constructed once per process no matter how many experiments sweep it.
func Shared() *Cache { return shared }

// Get returns the trace for cfg, constructing it on first use. Failed
// constructions are memoized too (Construct is deterministic, so
// retrying cannot succeed). The returned trace is shared: read-only.
func (c *Cache) Get(cfg trace.Config) (*trace.Trace, error) {
	key := keyOf(cfg)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = trace.Construct(cfg) })
	return e.tr, e.err
}

// Reset drops every entry and zeroes the counters (benchmarks use it to
// make iterations pay trace construction again).
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = make(map[cacheKey]*cacheEntry)
	c.hits = 0
	c.misses = 0
	c.mu.Unlock()
}

// CacheStats is a snapshot of the cache's accounting.
type CacheStats struct {
	Entries int    // distinct traces held
	Hits    uint64 // Gets served from an existing entry
	Misses  uint64 // Gets that triggered construction
}

// HitRate returns Hits over all Gets, or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}
