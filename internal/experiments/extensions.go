package experiments

import (
	"fmt"

	"hypertrio/internal/core"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// The paper leaves two design dimensions open: "exploring the optimal
// number of partitions and the number of devices per partition is left
// outside of the scope of this work" (§V-D), and its performance model is
// latency-only with unbounded chipset walk concurrency. The two
// extension experiments below fill both gaps on this implementation.

// ExtPartitions sweeps the DevTLB partition count at fixed capacity
// (64 entries): 1 partition degenerates to a shared fully-associative
// row per SID group, 64 partitions give each row a single way. The sweep
// locates the isolation/capacity trade-off for each tenant count.
func ExtPartitions(o Options) (*stats.Table, error) {
	parts := []int{1, 2, 4, 8, 16, 32, 64}
	counts := []int{8, 16, 64, 256}
	if o.Quick {
		counts = []int{8, 64}
	}
	sw := newSweep(o)
	for _, n := range counts {
		for _, p := range parts {
			// PTB=1 keeps the DevTLB on the critical path: with a deep
			// PTB, out-of-order completion hides the differences this
			// sweep is meant to expose.
			cfg := core.HyperTRIOConfig()
			cfg.Prefetch = nil
			cfg.PTBEntries = 1
			cfg.DevTLB.Sets = p
			cfg.DevTLB.Ways = 64 / p
			sw.sim(cfg, workload.Websearch, n, trace.RR1)
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: DevTLB partition-count sweep at 64 entries (websearch, PTB=1, no prefetch, Gb/s)",
		"tenants", "p=1", "p=2", "p=4", "p=8", "p=16", "p=32", "p=64")
	for _, n := range counts {
		row := []string{itoa(n)}
		for range parts {
			row = append(row, gbps(res.next()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtWalkers bounds the chipset's concurrent page-table walks and
// measures how much walker parallelism the full HyperTRIO design needs
// to keep a 200 Gb/s link busy in the hyper-tenant regime.
func ExtWalkers(o Options) (*stats.Table, error) {
	walkers := []int{1, 2, 4, 8, 16, 32, 0}
	n := 256
	if o.Quick {
		n = 64
	}
	sw := newSweep(o)
	for _, w := range walkers {
		cfg := core.HyperTRIOConfig()
		cfg.IOMMUWalkers = w
		sw.sim(cfg, workload.Websearch, n, trace.RR1)
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: IOMMU walker-concurrency sweep (websearch, %d tenants, full HyperTRIO, Gb/s)", n),
		"walkers", "bandwidth", "utilization", "avg translation latency")
	for _, w := range walkers {
		r := res.next()
		label := itoa(w)
		if w == 0 {
			label = "unlimited"
		}
		t.AddRow(label, gbps(r), util(r), r.AvgMissLatency.String())
	}
	return t, nil
}

// ExtFiveLevel compares 4- and 5-level page tables (24- vs 35-access
// two-dimensional walks, §II-A): deeper tables lengthen every walk, so
// the Base design degrades further while HyperTRIO's latency-hiding
// mechanisms absorb most of the difference.
func ExtFiveLevel(o Options) (*stats.Table, error) {
	counts := []int{16, 64, 256}
	if o.Quick {
		counts = []int{16, 64}
	}
	designs := []func() core.Config{core.BaseConfig, core.HyperTRIOConfig}
	levelses := []int{4, 5}
	sw := newSweep(o)
	for _, n := range counts {
		for _, design := range designs {
			for _, levels := range levelses {
				cfg := design()
				cfg.PageTableLevels = levels
				sw.sim(cfg, workload.Iperf3, n, trace.RR1)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: 4- vs 5-level page tables (iperf3, RR1, Gb/s)",
		"tenants", "Base 4-level", "Base 5-level", "HyperTRIO 4-level", "HyperTRIO 5-level")
	for _, n := range counts {
		row := []string{itoa(n)}
		for range designs {
			for range levelses {
				row = append(row, gbps(res.next()))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtIsolation quantifies the performance-isolation claim behind the
// partitioned DevTLB: Jain's fairness index over per-tenant mean packet
// service times, plus the latency spread, for the Base and partitioned
// designs. Partitioning keeps one tenant's translations from evicting
// another's, so its fairness stays near 1.0 with a tight spread.
func ExtIsolation(o Options) (*stats.Table, error) {
	counts := []int{8, 16, 32, 64}
	if o.Quick {
		counts = []int{8, 32}
	}
	sw := newSweep(o)
	for _, n := range counts {
		sw.sim(core.BaseConfig(), workload.Iperf3, n, trace.RR1)
		pcfg := core.HyperTRIOConfig()
		pcfg.PTBEntries = 1
		pcfg.Prefetch = nil
		sw.sim(pcfg, workload.Iperf3, n, trace.RR1)
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: per-tenant latency fairness, Base vs partitioned (iperf3, RR1)",
		"tenants", "Base Jain", "part Jain", "Base lat min..max", "part lat min..max")
	for _, n := range counts {
		base, part := res.next(), res.next()
		t.AddRow(itoa(n),
			fmt.Sprintf("%.3f", base.LatencyFairness),
			fmt.Sprintf("%.3f", part.LatencyFairness),
			fmt.Sprintf("%v..%v", base.MinTenantLatency, base.MaxTenantLatency),
			fmt.Sprintf("%v..%v", part.MinTenantLatency, part.MaxTenantLatency))
	}
	return t, nil
}
