package experiments

import (
	"fmt"

	"hypertrio/internal/core"
	"hypertrio/internal/fault"
	"hypertrio/internal/sim"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// The two sweeps below exercise the scripted fault-injection subsystem
// (internal/fault) at experiment scale. The paper's evaluation assumes a
// quiescent control plane: no IOTLB shootdowns, no tenant churn, no
// walker faults. Real hyper-tenant hosts have all three, so these
// extensions measure how much of HyperTRIO's advantage survives an
// active control plane.
//
// Both experiments run a fault-free pass first: its elapsed time is the
// horizon the plans are scripted against, so "N events per run" means
// the same thing at every trace scale and the zero row doubles as the
// baseline. Plans derive from (Options.Seed, horizon) only, so the
// rendered tables stay deterministic for a given (Seed, Quick).

// faultDesigns are the configurations both sweeps compare. The middle
// one is HyperTRIO's partitioning alone (single PTB entry, no
// prefetching): with the DevTLB on the critical path and no latency
// hiding, it exposes the raw cost of every scripted fault that the full
// design's deep PTB absorbs.
var faultDesigns = []struct {
	name string
	cfg  func() core.Config
}{
	{"Base", core.BaseConfig},
	{"part", partitionedConfig},
	{"HyperTRIO", core.HyperTRIOConfig},
}

func partitionedConfig() core.Config {
	cfg := core.HyperTRIOConfig()
	cfg.PTBEntries = 1
	cfg.Prefetch = nil
	return cfg
}

// cleanPass runs one fault-free cell per design and returns the results
// (the sweep's zero rows) alongside each design's horizon.
func cleanPass(o Options, kind workload.Kind, tenants int, iv trace.Interleave) ([]core.Result, []sim.Duration, error) {
	sw := newSweep(o)
	for _, d := range faultDesigns {
		sw.sim(d.cfg(), kind, tenants, iv)
	}
	res, err := sw.run()
	if err != nil {
		return nil, nil, err
	}
	base := make([]core.Result, len(faultDesigns))
	horizon := make([]sim.Duration, len(faultDesigns))
	for i := range faultDesigns {
		base[i] = res.next()
		if base[i].Elapsed <= 0 {
			return nil, nil, fmt.Errorf("fault sweep: clean %s run reports no elapsed time", faultDesigns[i].name)
		}
		horizon[i] = base[i].Elapsed
	}
	return base, horizon, nil
}

// ExtFaults sweeps the control-plane invalidation rate: N scripted
// invalidations spread over the run, either targeted (the victim
// tenant's always-hot ring page, the cheapest possible shootdown) or a
// full per-tenant flush (a domain-wide shootdown). Targeted
// invalidations cost one re-walk each; shootdowns also re-cool the
// victim's whole working set, which hits the Base design's single
// shared DevTLB far harder than HyperTRIO's partitions.
func ExtFaults(o Options) (*stats.Table, error) {
	// 16 tenants keeps every design in a hit-capable regime (at high
	// tenant counts Base is miss-dominated already and invalidations
	// have nothing left to evict); the rate is the swept variable.
	const tenants = 16
	counts := []int{256, 1024, 4096}
	if o.Quick {
		counts = []int{64, 256}
	}
	base, horizon, err := cleanPass(o, workload.Iperf3, tenants, trace.RR1)
	if err != nil {
		return nil, err
	}
	modes := []bool{true, false} // targeted page invalidation, then tenant shootdown
	sw := newSweep(o)
	for _, n := range counts {
		for i, d := range faultDesigns {
			for _, targeted := range modes {
				cfg := d.cfg()
				cfg.Fault = fault.InvalidationPlan(o.Seed, tenants,
					horizon[i]/sim.Duration(n+1), horizon[i], targeted)
				sw.sim(cfg, workload.Iperf3, tenants, trace.RR1)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: scripted invalidation-rate sweep (iperf3, %d tenants, Gb/s)", tenants),
		"invalidations", "Base page", "Base shootdown", "part page", "part shootdown",
		"HyperTRIO page", "HyperTRIO shootdown")
	zero := []string{"0"}
	for i := range faultDesigns {
		zero = append(zero, gbps(base[i]), gbps(base[i]))
	}
	t.AddRow(zero...)
	for _, n := range counts {
		row := []string{itoa(n)}
		for range faultDesigns {
			for range modes {
				row = append(row, gbps(res.next()))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtChurn sweeps tenant churn: N times per run a tenant detaches —
// flushing its PTag from every translation structure in the datapath —
// and re-attaches shortly after, restarting cold against its persistent
// page tables. Churn converts steady-state hits back into
// two-dimensional walks, so the miss latency and walk count columns
// show the cost HyperTRIO's latency-hiding has to absorb.
func ExtChurn(o Options) (*stats.Table, error) {
	// Same reasoning as ExtFaults: 16 tenants keeps warm state worth
	// flushing; the churn rate is the swept variable.
	const tenants = 16
	churns := []int{8, 32, 128}
	if o.Quick {
		churns = []int{8, 32}
	}
	base, horizon, err := cleanPass(o, workload.Mediastream, tenants, trace.RR4)
	if err != nil {
		return nil, err
	}
	sw := newSweep(o)
	for _, c := range churns {
		for i, d := range faultDesigns {
			cfg := d.cfg()
			// Downtime 0 means the generator's default: a quarter period
			// offline per churn event.
			cfg.Fault = fault.ChurnPlan(o.Seed, tenants,
				horizon[i]/sim.Duration(c+1), 0, horizon[i])
			sw.sim(cfg, workload.Mediastream, tenants, trace.RR4)
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Extension: tenant-churn sweep (mediastream, %d tenants, RR4)", tenants),
		"churn events", "Base", "part", "HyperTRIO", "HyperTRIO miss lat", "HyperTRIO walks")
	t.AddRow("0", gbps(base[0]), gbps(base[1]), gbps(base[2]),
		base[2].AvgMissLatency.String(), itoa(int(base[2].IOMMU.Walks)))
	for _, c := range churns {
		b, p, h := res.next(), res.next(), res.next()
		t.AddRow(itoa(c), gbps(b), gbps(p), gbps(h),
			h.AvgMissLatency.String(), itoa(int(h.IOMMU.Walks)))
	}
	return t, nil
}
