package experiments

import (
	"fmt"

	"hypertrio/internal/core"
	"hypertrio/internal/stats"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Figure9 reproduces the hyper-tenant motivation on the performance
// model: modeled I/O bandwidth as a function of concurrent connections
// for different DevTLB configurations (the paper's base design with a
// 64-entry 8-way DevTLB, a 1024-entry 8-way variant, and a 64-entry
// fully-associative one), on the mediastream workload at 200 Gb/s.
func Figure9(o Options) (*stats.Table, error) {
	geoms := []struct{ sets, ways int }{{8, 8}, {128, 8}, {1, 64}}
	sw := newSweep(o)
	for _, n := range tenantSweep(o) {
		for _, geom := range geoms {
			cfg := core.BaseConfig()
			cfg.DevTLB.Sets = geom.sets
			cfg.DevTLB.Ways = geom.ways
			sw.sim(cfg, workload.Mediastream, n, trace.RR1)
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 9: modeled bandwidth vs connections per DevTLB configuration (mediastream, Gb/s)",
		"connections", "64e 8-way", "1024e 8-way", "64e full-assoc")
	for _, n := range tenantSweep(o) {
		row := []string{itoa(n)}
		for range geoms {
			row = append(row, gbps(res.next()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11a studies scaling the Base DevTLB from 64 to 1024 entries for
// every benchmark and interleaving: a larger DevTLB helps mid-range
// tenant counts but not the hyper-tenant regime.
func Figure11a(o Options) (*stats.Table, error) {
	ivs := []trace.Interleave{trace.RR1, trace.RR4, trace.RAND1}
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, iv := range ivs {
			for _, n := range tenantSweep(o) {
				sw.sim(core.BaseConfig(), kind, n, iv)
				big := core.BaseConfig()
				big.DevTLB.Sets = 128 // 1024 entries at 8 ways
				sw.sim(big, kind, n, iv)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 11a: Base design bandwidth with 64- vs 1024-entry 8-way DevTLB (Gb/s)",
		"benchmark", "interleave", "tenants", "64-entry", "1024-entry")
	for _, kind := range workload.Kinds {
		for _, iv := range ivs {
			for _, n := range tenantSweep(o) {
				t.AddRow(kind.String(), iv.String(), itoa(n), gbps(res.next()), gbps(res.next()))
			}
		}
	}
	return t, nil
}

// Figure11b studies DevTLB replacement policies on the Base design: LFU
// (motivated by the access-frequency groups of Fig. 8a) beats LRU in the
// mid-range, and even the Belady oracle cannot rescue the hyper-tenant
// regime.
func Figure11b(o Options) (*stats.Table, error) {
	policies := []tlb.PolicyKind{tlb.LRU, tlb.LFU, tlb.Oracle}
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			for _, pol := range policies {
				cfg := core.BaseConfig()
				cfg.DevTLB.Policy = pol
				sw.sim(cfg, kind, n, trace.RR1)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 11b: Base design bandwidth per DevTLB replacement policy (Gb/s)",
		"benchmark", "tenants", "LRU", "LFU", "oracle")
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			row := []string{kind.String(), itoa(n)}
			for range policies {
				row = append(row, gbps(res.next()))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure11c studies fully associative DevTLBs under oracle replacement,
// sized at the benchmarks' active translation sets (8/32/36) and at 64
// entries: once tenant count grows past a handful, even an ideal
// fully-associative cache cannot keep every tenant's active set resident.
func Figure11c(o Options) (*stats.Table, error) {
	sizes := []int{8, 32, 36, 64}
	counts := tenantSweep(o)
	if !o.Quick {
		// The interesting range is small tenant counts; cap the sweep so
		// the fully-associative oracle runs stay tractable.
		counts = []int{1, 2, 4, 8, 16, 64}
	}
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, n := range counts {
			for _, size := range sizes {
				cfg := core.BaseConfig()
				cfg.DevTLB = tlb.Config{
					Name: "devtlb", Sets: 1, Ways: size,
					Policy: tlb.Oracle, Index: tlb.ByAddress,
				}
				sw.sim(cfg, kind, n, trace.RR1)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 11c: fully associative DevTLB with oracle replacement (Gb/s)",
		"benchmark", "tenants", "8 entries", "32 entries", "36 entries", "64 entries")
	for _, kind := range workload.Kinds {
		for _, n := range counts {
			row := []string{kind.String(), itoa(n)}
			for range sizes {
				row = append(row, gbps(res.next()))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// activeSetNote is used by documentation tests to cross-check §V-C.
func activeSetNote() string {
	return fmt.Sprintf("active sets: iperf3=%d mediastream=%d websearch=%d",
		workload.ProfileFor(workload.Iperf3).ActiveSet(),
		workload.ProfileFor(workload.Mediastream).ActiveSet(),
		workload.ProfileFor(workload.Websearch).ActiveSet())
}
