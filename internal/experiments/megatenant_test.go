package experiments

import (
	"runtime"
	"testing"

	"hypertrio/internal/core"
	"hypertrio/internal/trace"
)

// TestExtMegaTenantSignal checks the experiment produces the expected
// signal at quick scale: every cell completes packets, and the
// partitioned-plus-prefetching design sustains at least the Base
// bandwidth at every tenant count (at thousands of tenants the DevTLB is
// hopelessly over-subscribed, so the PTB's overlap and prefetching are
// what keep the link busy).
func TestExtMegaTenantSignal(t *testing.T) {
	tbl, err := ExtMegaTenant(Options{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows
	if len(rows) != 2 {
		t.Fatalf("quick sweep should have 2 tenant counts, got %d", len(rows))
	}
	for _, r := range rows {
		if r[1] == "0.00" || r[2] == "0.00" {
			t.Errorf("tenants=%s: zero bandwidth: base=%s ht=%s", r[0], r[1], r[2])
		}
	}
}

// megaTenantHeapBudget is the committed live-heap ceiling for a
// 10⁵-tenant streaming HyperTRIO run: measured ~64 MB (≈640 B/tenant —
// generators, context table, tenant-latency cells), committed at 2x
// headroom. A materialized run of the same cell at paper-scale trace
// lengths would hold hundreds of millions of packets instead; this guard
// is what keeps the O(tenants) streaming contract from regressing
// silently.
const megaTenantHeapBudget = 128 << 20

// TestMegaTenantHeapBudget runs the 10⁵-tenant streaming cell and holds
// the post-run live heap under the committed budget.
func TestMegaTenantHeapBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-tenant run takes ~3s; skipped in -short mode")
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	tc := megaTenantTrace(100_000, 300_000, Options{Seed: 42})
	src, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemSource(core.HyperTRIOConfig(), src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("streaming run completed no packets")
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	live := ms.HeapAlloc
	t.Logf("10^5-tenant streaming run: %d packets, live heap %.1f MB (budget %.0f MB)",
		res.Packets, float64(live)/(1<<20), float64(megaTenantHeapBudget)/(1<<20))
	if live > megaTenantHeapBudget {
		t.Errorf("live heap %.1f MB exceeds the committed %.0f MB budget: streaming memory is no longer O(tenants)",
			float64(live)/(1<<20), float64(megaTenantHeapBudget)/(1<<20))
	}
	runtime.KeepAlive(sys)
	runtime.KeepAlive(src)
}
