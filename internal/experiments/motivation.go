package experiments

import (
	"hypertrio/internal/core"
	"hypertrio/internal/mem"
	"hypertrio/internal/stats"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Table2 reports the performance-model parameters (Table II) as the model
// actually uses them — a self-check that defaults match the paper.
func Table2(Options) (*stats.Table, error) {
	p := core.DefaultParams()
	t := stats.NewTable("Table II: system parameters used by the performance model",
		"parameter", "value")
	t.AddRow("One-way PCIe latency", p.PCIeOneWay.String())
	t.AddRow("DRAM latency", p.DRAMLatency.String())
	t.AddRow("IOTLB hit", p.TLBHit.String())
	t.AddRow("# memory accesses during PTW (4 KB)", "24")
	t.AddRow("# memory accesses during PTW (2 MB)", "18")
	t.AddRow("Packet size at I/O link", itoa(p.PacketBytes)+"B (Eth Pkt + IPG)")
	t.AddRow("I/O link bandwidth", stats.Gbps(p.LinkGbps*1e9)+" Gb/s")
	t.AddRow("L2 Page Cache", "512 entries, 16-ways")
	t.AddRow("L3 Page Cache", "1024 entries, 16-ways")
	return t, nil
}

// Table3 reproduces the per-benchmark translation-request accounting.
// Budgets come from the generators; totals follow the edge-effect rule
// (the minimum-budget tenant bounds the trace), so the table is computed
// without materializing the paper-scale 70M-request traces.
func Table3(o Options) (*stats.Table, error) {
	tenants := 1024
	if o.Quick {
		tenants = 128
	}
	t := stats.NewTable("Table III: translation requests recorded per benchmark (scale 1.0)",
		"benchmark", "max #transl/tnt", "min #transl/tnt",
		"total for "+itoa(tenants)+" tnt", "paper max", "paper min", "paper total@1024")
	paper := map[workload.Kind][3]string{
		workload.Iperf3:      {"108,510", "68,079", "69,712,894"},
		workload.Mediastream: {"73,657", "5,520", "5,652,477"},
		workload.Websearch:   {"108,513", "43,362", "44,402,679"},
	}
	for _, kind := range workload.Kinds {
		p := workload.ProfileFor(kind)
		min, max := -1, 0
		for i := 1; i <= tenants; i++ {
			b := workload.BudgetFor(p, mem.SID(i), o.Seed, 1.0)
			if min < 0 || b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		// RR1 edge effect: every tenant contributes ~min requests
		// (whole packets).
		perTenant := min / workload.RequestsPerPacket * workload.RequestsPerPacket
		total := uint64(perTenant) * uint64(tenants)
		pp := paper[kind]
		t.AddRow(kind.String(), stats.Count(uint64(max)), stats.Count(uint64(min)),
			stats.Count(total), pp[0], pp[1], pp[2])
	}
	return t, nil
}

// Figure4 reproduces the AMD case study: IOMMU TLB miss rate versus the
// number of parallel iperf3 connections on a 10 Gb/s host. The model uses
// a hash-indexed chipset IOTLB (AMD's IOMMU hashes the domain ID into the
// set index) with no DevTLB, so the miss rate stays negligible until the
// aggregate active translation set approaches IOTLB capacity and climbs
// past it — the paper's 80-to-120-connection inflection.
func Figure4(o Options) (*stats.Table, error) {
	counts := []int{64, 72, 80, 88, 96, 104, 112, 120}
	if o.Quick {
		counts = []int{64, 96, 120}
	}
	sw := newSweep(o)
	for _, n := range counts {
		cfg := core.BaseConfig()
		cfg.Params.LinkGbps = 10
		cfg.DevTLB.Sets = 0 // the study counts chipset-side misses
		cfg.PTBEntries = 64
		cfg.IOMMU.IOTLB = tlb.Config{
			Name: "amd-iotlb", Sets: 128, Ways: 8, Policy: tlb.LRU, Index: tlb.Hashed,
		}
		sw.sim(cfg, workload.Iperf3, n, trace.RR1)
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 4: IOMMU TLB PTE miss rate vs parallel connections (10 Gb/s, iperf3)",
		"connections", "miss rate", "nested page reads", "translations")
	for _, n := range counts {
		r := res.next()
		t.AddRow(itoa(n), stats.Percent(r.IOMMU.IOTLB.MissRate()),
			stats.Count(r.IOMMU.MemAccesses), stats.Count(r.IOMMU.Translations))
	}
	return t, nil
}

// Figure5 reproduces the Intel case study: cumulative bandwidth for
// native (host interface, no translation) versus virtualized (VF)
// connections over one 10 Gb/s link. Hosts cap a single connection at
// 8.7 Gb/s (native) and 6.7 Gb/s (VF) of goodput; the VF path uses the
// Base translation design of a legacy NIC (64-entry DevTLB, serialized
// per-packet translations) with guests running 4 KB data buffers (the
// case-study VMs had no hugepage-backed buffers), which collapses once
// around eight tenants thrash the shared DevTLB.
func Figure5(o Options) (*stats.Table, error) {
	counts := []int{1, 2, 4, 8, 12, 16, 24, 32}
	if o.Quick {
		counts = []int{1, 8, 16, 32}
	}
	// Goodput -> wire-rate conversion for 1500 B payloads in 1542 B slots.
	const wirePerGood = 1542.0 / 1500.0
	small := workload.SmallDataVariant(workload.ProfileFor(workload.Iperf3))
	sw := newSweep(o)
	for _, n := range counts {
		tc := traceConfig(workload.Iperf3, n, trace.RR1, o)
		tc.Profile = &small
		// Native: no translation, per-connection CPU cap 8.7 Gb/s.
		native := core.BaseConfig()
		native.Params.LinkGbps = 10
		native.Params.ArrivalGbps = capGbps(float64(n)*8.7*wirePerGood, 10)
		native.TranslationOff = true
		sw.simTrace(native, tc)
		// VF: translation through a legacy device, cap 6.7 Gb/s.
		vf := core.BaseConfig()
		vf.Params.LinkGbps = 10
		vf.Params.ArrivalGbps = capGbps(float64(n)*6.7*wirePerGood, 10)
		vf.SerialRequests = true
		sw.simTrace(vf, tc)
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 5: cumulative goodput vs concurrent connections (10 Gb/s link)",
		"connections", "host native Gb/s", "VF Gb/s")
	for _, n := range counts {
		rn, rv := res.next(), res.next()
		t.AddRow(itoa(n),
			stats.Gbps(rn.AchievedGbps/wirePerGood*1e9),
			stats.Gbps(rv.AchievedGbps/wirePerGood*1e9))
	}
	return t, nil
}

func capGbps(v, max float64) float64 {
	if v > max {
		return max
	}
	return v
}
