package experiments

import (
	"fmt"

	"hypertrio/internal/core"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// megaTenantCounts returns the tenant-count sweep and the per-cell packet
// budget of the million-tenant experiment. Full mode climbs three decades
// to 10⁶ tenants — the "hyper-tenant" regime the paper argues future hosts
// reach (§I projects tenant counts growing with core counts and SR-IOV
// virtual functions) — while quick mode stops at 10⁴ so the CI suite stays
// fast.
func megaTenantCounts(o Options) (counts []int, budget int) {
	if o.Quick {
		return []int{1_000, 10_000}, 100_000
	}
	return []int{1_000, 10_000, 100_000, 1_000_000}, 2_000_000
}

// megaTenantTrace is the canonical trace config of one sweep point:
// iperf3 (the fewest per-tenant streams, so generator state is smallest),
// round-robin interleave, and the compact RNG — at 10⁶ tenants the
// standard source's per-generator state alone would cost ~5 GB.
func megaTenantTrace(n, budget int, o Options) trace.Config {
	ppt := budget / n
	if ppt < 3 {
		ppt = 3
	}
	return trace.Config{
		Benchmark:  workload.Iperf3,
		Tenants:    n,
		Interleave: trace.RR1,
		Seed:       o.Seed,
		Scale:      scaleFor(workload.Iperf3, ppt),
		RNG:        workload.CompactRNG,
	}
}

// ExtMegaTenant sweeps Base vs HyperTRIO from 10³ to 10⁶ tenants using
// streaming sources: no cell ever materializes its trace, so memory is
// O(tenants) — the arena-backed spaces hold O(RingSlots) template tables
// and the generator population is the only per-tenant state. The table
// reports how translation performance and fairness hold up as the tenant
// population outgrows every cached structure by orders of magnitude.
func ExtMegaTenant(o Options) (*stats.Table, error) {
	counts, budget := megaTenantCounts(o)
	so := o
	so.Stream = true // the point of the experiment: bounded memory at any scale
	sw := newSweep(so)
	for _, n := range counts {
		tc := megaTenantTrace(n, budget, o)
		sw.simTrace(core.BaseConfig(), tc)
		sw.simTrace(core.HyperTRIOConfig(), tc)
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: million-tenant scale-out with streaming sources (iperf3, RR1, compact RNG)",
		"tenants", "Base Gb/s", "HT Gb/s", "Base devtlb hit", "HT devtlb hit", "HT Jain", "HT prefetch share")
	for _, n := range counts {
		base, ht := res.next(), res.next()
		t.AddRow(itoa(n), gbps(base), gbps(ht),
			stats.Percent(base.DevTLB.HitRate()),
			stats.Percent(ht.DevTLB.HitRate()),
			fmt.Sprintf("%.3f", ht.LatencyFairness),
			stats.Percent(ht.PrefetchServedShare()))
	}
	return t, nil
}
