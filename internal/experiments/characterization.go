package experiments

import (
	"fmt"
	"sort"

	"hypertrio/internal/mem"
	"hypertrio/internal/stats"
	"hypertrio/internal/workload"
)

// Figure8a reproduces the single-tenant page-access-frequency analysis:
// running the mediastream stream for one tenant and grouping its page
// frames by access count. The paper's three groups emerge: the ring page
// (touched every packet), the 2 MB data-buffer pages (roughly equal
// counts, ~30x rarer than the ring page), and the init-time 4 KB pages
// (fewer than 100 touches each).
func Figure8a(o Options) (*stats.Table, error) {
	scale := 0.5
	if o.Quick {
		scale = 0.05
	}
	g := workload.NewGenerator(workload.ProfileFor(workload.Mediastream), 1, o.Seed, scale)
	type bucket struct{ pages, minAcc, maxAcc, total int }
	counts := map[uint64]int{} // page base -> accesses
	packets := 0
	for {
		pkt, ok := g.Next()
		if !ok {
			break
		}
		packets++
		for _, iova := range []uint64{pkt.Ring, pkt.Data, pkt.Mailbox} {
			shift := uint(workload.PageShiftOf(iova))
			counts[iova&^(uint64(1)<<shift-1)]++
		}
	}
	groups := map[string]*bucket{}
	groupOf := func(page uint64) string {
		switch {
		case page >= workload.InitBase:
			return "3: init-time 4KB pages"
		case page >= workload.DataBase:
			return "2: data-buffer 2MB pages"
		default:
			return "1: ring/mailbox 4KB pages"
		}
	}
	for page, n := range counts {
		b := groups[groupOf(page)]
		if b == nil {
			b = &bucket{minAcc: n, maxAcc: n}
			groups[groupOf(page)] = b
		}
		b.pages++
		b.total += n
		if n < b.minAcc {
			b.minAcc = n
		}
		if n > b.maxAcc {
			b.maxAcc = n
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("Fig. 8a: page access frequencies, 1 mediastream tenant (%d packets, %d pages)",
			packets, len(counts)),
		"group", "pages", "min acc/page", "max acc/page", "total")
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := groups[name]
		t.AddRow(name, itoa(b.pages), stats.Count(uint64(b.minAcc)),
			stats.Count(uint64(b.maxAcc)), stats.Count(uint64(b.total)))
	}
	return t, nil
}

// Figure8b reproduces the data-page access-pattern analysis: the order of
// 2 MB page-frame accesses is periodic, each page accessed in a long
// sequential run (~1500 accesses in the paper) before the driver unmaps
// it and moves to the next page.
func Figure8b(o Options) (*stats.Table, error) {
	scale := 1.0
	if o.Quick {
		scale = 0.2
	}
	g := workload.NewGenerator(workload.ProfileFor(workload.Mediastream), 1, o.Seed, scale)
	// Count per-page run lengths over the data region: accesses
	// accumulated on a page between its mapping and the driver's unmap.
	runs := map[int][]int{} // page index -> run lengths
	cur := map[int]int{}    // in-progress run per page (streams interleave)
	for {
		pkt, ok := g.Next()
		if !ok {
			break
		}
		if pkt.Data < workload.DataBase || pkt.Data >= workload.InitBase {
			continue
		}
		page := int((pkt.Data - workload.DataBase) >> mem.HugePageShift)
		cur[page]++
		if pkt.UnmapIOVA != 0 {
			up := int((pkt.UnmapIOVA - workload.DataBase) >> mem.HugePageShift)
			if n := cur[up]; n > 0 {
				runs[up] = append(runs[up], n)
				cur[up] = 0
			}
		}
	}
	// Runs still in progress when the log ends are part of the pattern
	// too (short logs rarely see a full ~1400-access run complete).
	for page, n := range cur {
		if n > 0 {
			runs[page] = append(runs[page], n)
		}
	}
	t := stats.NewTable("Fig. 8b: data-page access pattern, 1 mediastream tenant (run = accesses before unmap)",
		"data page", "runs", "min run", "mean run", "max run")
	pages := make([]int, 0, len(runs))
	for p := range runs {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	for _, p := range pages {
		rs := runs[p]
		min, max, sum := rs[0], rs[0], 0
		for _, r := range rs {
			if r < min {
				min = r
			}
			if r > max {
				max = r
			}
			sum += r
		}
		t.AddRow(fmt.Sprintf("%#x", workload.DataBase+uint64(p)<<mem.HugePageShift),
			itoa(len(rs)), itoa(min), itoa(sum/len(rs)), itoa(max))
	}
	return t, nil
}
