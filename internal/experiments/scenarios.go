package experiments

import (
	"fmt"

	"hypertrio/internal/core"
	"hypertrio/internal/runner"
	"hypertrio/internal/scenario"
	"hypertrio/internal/stats"
)

// The five experiments below run the committed production-traffic
// scenario library (internal/scenario) against the same three designs
// the fault sweeps compare. Each experiment pairs an adversarial
// scenario with its control twin — Neutral() for adversary/envelope
// scenarios, WithoutOverlays() for the fault storm — so every table
// separates the adversary's cost from the population shape's. The
// signal tests in scenarios_test.go pin each pairing directionally:
// they fail if the adversarial signal vanishes, and they fail if the
// same signal shows up in the control.

// scenarioQuickScale shrinks a committed scenario for quick mode: the
// budget scale, phase durations, envelope periods and overlay event
// counts all scale together, so the quick variant keeps the full
// scenario's structure at ~15% of its length.
const scenarioQuickScale = 0.15

// scenarioFor resolves a committed scenario at the options' seed and
// quick scale.
func scenarioFor(name string, o Options) (*scenario.Scenario, error) {
	s, err := scenario.ByName(name)
	if err != nil {
		return nil, err
	}
	s.Seed = o.Seed
	if o.Quick {
		s = s.WithScale(scenarioQuickScale)
	}
	return s, nil
}

// simCompiled queues one simulation of cfg over a compiled scenario.
// Streaming sweeps hand the cell its own fresh source (sources are
// single-consumer); materialized sweeps share the compiled trace.
func (s *sweep) simCompiled(cfg core.Config, comp *scenario.Compiled) error {
	cfg = comp.Apply(cfg)
	if s.o.Stream {
		src, err := comp.Stream()
		if err != nil {
			return err
		}
		s.cells = append(s.cells, runner.Cell{Config: cfg, Source: src})
		return nil
	}
	tr, err := comp.Materialize()
	if err != nil {
		return err
	}
	s.cells = append(s.cells, runner.Cell{Config: cfg, Trace: tr})
	return nil
}

// scenarioPair compiles an adversarial scenario and its control and
// runs both across the three fault designs. Results come back in
// design order, adversarial cell first.
func scenarioPair(o Options, adv, control *scenario.Scenario) (*results, error) {
	compA, err := adv.Compile()
	if err != nil {
		return nil, err
	}
	compC, err := control.Compile()
	if err != nil {
		return nil, err
	}
	sw := newSweep(o)
	for _, d := range faultDesigns {
		if err := sw.simCompiled(d.cfg(), compA); err != nil {
			return nil, err
		}
		if err := sw.simCompiled(d.cfg(), compC); err != nil {
			return nil, err
		}
	}
	return sw.run()
}

// classOf returns the named class's breakdown from a run result.
func classOf(r core.Result, name string) (core.ClassResult, error) {
	for _, c := range r.Classes {
		if c.Name == name {
			return c, nil
		}
	}
	return core.ClassResult{}, fmt.Errorf("scenario run reported no class %q", name)
}

// ratioPercent formats a/b as a percentage.
func ratioPercent(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return stats.Percent(a / b)
}

// ExtNoisyNeighbor runs the noisy-neighbor scenario: four heavy-hitter
// tenants at eight arbitration slots each beside twelve victims. The
// victim columns against the neutral twin (same population, no
// over-weighting) measure the isolation each design preserves — the
// floor column is the fraction of its fair-share throughput the victim
// class keeps while the adversary runs.
func ExtNoisyNeighbor(o Options) (*stats.Table, error) {
	adv, err := scenarioFor("noisy-neighbor", o)
	if err != nil {
		return nil, err
	}
	res, err := scenarioPair(o, adv, adv.Neutral())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: noisy-neighbor scenario (12 iperf3 victims vs 4 weight-8 bullies)",
		"design", "victim Gb/s", "victim neutral", "floor", "bully Gb/s", "victim Jain", "victim lat")
	for _, d := range faultDesigns {
		a, n := res.next(), res.next()
		victim, err := classOf(a, "victim")
		if err != nil {
			return nil, err
		}
		bully, err := classOf(a, "bully")
		if err != nil {
			return nil, err
		}
		victimN, err := classOf(n, "victim")
		if err != nil {
			return nil, err
		}
		t.AddRow(d.name,
			stats.Gbps(victim.Gbps*1e9), stats.Gbps(victimN.Gbps*1e9),
			ratioPercent(victim.Gbps, victimN.Gbps),
			stats.Gbps(bully.Gbps*1e9),
			fmt.Sprintf("%.3f", victim.Fairness),
			victim.AvgLatency.String())
	}
	return t, nil
}

// ExtSIDFlood runs the SID-flood scenario: two IOTLB-thrasher tenants
// sweeping single-use translations through the shared caches beside
// twelve victims. Partitioned designs confine the sweep to the
// thrashers' own partitions; the victim hit-rate and latency columns
// against the neutral twin measure how much of the shared-cache
// pollution each design absorbs.
func ExtSIDFlood(o Options) (*stats.Table, error) {
	adv, err := scenarioFor("sid-flood", o)
	if err != nil {
		return nil, err
	}
	res, err := scenarioPair(o, adv, adv.Neutral())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: SID-flood scenario (12 iperf3 victims vs 2 weight-4 IOTLB thrashers)",
		"design", "victim Gb/s", "victim neutral", "floor", "devtlb hit", "neutral hit", "victim lat")
	for _, d := range faultDesigns {
		a, n := res.next(), res.next()
		victim, err := classOf(a, "victim")
		if err != nil {
			return nil, err
		}
		victimN, err := classOf(n, "victim")
		if err != nil {
			return nil, err
		}
		t.AddRow(d.name,
			stats.Gbps(victim.Gbps*1e9), stats.Gbps(victimN.Gbps*1e9),
			ratioPercent(victim.Gbps, victimN.Gbps),
			stats.Percent(a.DevTLB.HitRate()), stats.Percent(n.DevTLB.HitRate()),
			victim.AvgLatency.String())
	}
	return t, nil
}

// ExtIncast runs the incast scenario: synchronized microbursts to full
// rate against a flat envelope at the same baseline. The burst columns
// measure the queueing each design absorbs when the translation path
// takes a cold spike at the top of every period.
func ExtIncast(o Options) (*stats.Table, error) {
	adv, err := scenarioFor("incast", o)
	if err != nil {
		return nil, err
	}
	res, err := scenarioPair(o, adv, adv.Neutral())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: incast scenario (16 mediastream tenants, 25 us bursts to full rate every 100 us)",
		"design", "incast Gb/s", "flat Gb/s", "incast lat", "flat lat", "incast miss lat", "flat miss lat")
	for _, d := range faultDesigns {
		a, n := res.next(), res.next()
		ca, err := classOf(a, "ms")
		if err != nil {
			return nil, err
		}
		cn, err := classOf(n, "ms")
		if err != nil {
			return nil, err
		}
		t.AddRow(d.name, gbps(a), gbps(n),
			ca.AvgLatency.String(), cn.AvgLatency.String(),
			a.AvgMissLatency.String(), n.AvgMissLatency.String())
	}
	return t, nil
}

// ExtDiurnal runs the diurnal scenario: a triangle wave between 25%
// and 95% load over three periods, against a flat envelope at the
// trough. Throughput tracks the envelope; the latency and hit-rate
// columns show what the daily peak costs each design.
func ExtDiurnal(o Options) (*stats.Table, error) {
	adv, err := scenarioFor("diurnal", o)
	if err != nil {
		return nil, err
	}
	res, err := scenarioPair(o, adv, adv.Neutral())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: diurnal scenario (16 websearch tenants, 25-95% triangle wave)",
		"design", "diurnal Gb/s", "flat Gb/s", "diurnal lat", "flat lat", "diurnal hit", "flat hit")
	for _, d := range faultDesigns {
		a, n := res.next(), res.next()
		ca, err := classOf(a, "web")
		if err != nil {
			return nil, err
		}
		cn, err := classOf(n, "web")
		if err != nil {
			return nil, err
		}
		t.AddRow(d.name, gbps(a), gbps(n),
			ca.AvgLatency.String(), cn.AvgLatency.String(),
			stats.Percent(a.DevTLB.HitRate()), stats.Percent(n.DevTLB.HitRate()))
	}
	return t, nil
}

// ExtStorm runs the invalidation-storm scenario: a shootdown storm and
// a walker-fault storm landing exactly at peak load, against the same
// envelope with no faults (WithoutOverlays). The loss column is the
// bandwidth the storm costs at equal offered load. On the unpartitioned
// Base design the two storms interact nonlinearly (each alone costs
// bandwidth, together the stall windows re-synchronize the drop-retry
// loop and walks coalesce); the partitioned designs respond
// monotonically, which is what the signal test pins.
func ExtStorm(o Options) (*stats.Table, error) {
	adv, err := scenarioFor("storm", o)
	if err != nil {
		return nil, err
	}
	res, err := scenarioPair(o, adv, adv.WithoutOverlays())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: invalidation storm at peak load (16 iperf3 tenants, ramp-peak-cool)",
		"design", "storm Gb/s", "calm Gb/s", "loss", "storm walks", "calm walks", "storm miss lat")
	for _, d := range faultDesigns {
		a, n := res.next(), res.next()
		loss := "n/a"
		if n.AchievedGbps > 0 {
			loss = stats.Percent(1 - a.AchievedGbps/n.AchievedGbps)
		}
		t.AddRow(d.name, gbps(a), gbps(n), loss,
			itoa(int(a.IOMMU.Walks)), itoa(int(n.IOMMU.Walks)),
			a.AvgMissLatency.String())
	}
	return t, nil
}
