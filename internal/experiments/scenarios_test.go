package experiments

import (
	"reflect"
	"testing"

	"hypertrio/internal/core"
	"hypertrio/internal/scenario"
)

// scenarioResults runs one committed scenario (by name, quick scale)
// and its control across the three fault designs and returns the
// results keyed by design name: [adversarial, control] per design.
func scenarioResults(t *testing.T, name string, o Options, control func(*scenario.Scenario) *scenario.Scenario) map[string][2]core.Result {
	t.Helper()
	adv, err := scenarioFor(name, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenarioPair(o, adv, control(adv))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][2]core.Result, len(faultDesigns))
	for _, d := range faultDesigns {
		out[d.name] = [2]core.Result{res.next(), res.next()}
	}
	return out
}

func neutralOf(s *scenario.Scenario) *scenario.Scenario { return s.Neutral() }
func calmOf(s *scenario.Scenario) *scenario.Scenario    { return s.WithoutOverlays() }
func perTenant(c core.ClassResult) float64              { return c.Gbps / float64(c.Tenants) }
func class(t *testing.T, r core.Result, name string) core.ClassResult {
	t.Helper()
	c, err := classOf(r, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The noisy-neighbor signal: under the adversary the bully class takes
// several times a victim tenant's share, yet HyperTRIO's partitions
// hold the victim class at its arbitration-share floor. On the neutral
// twin the same assertions fail — per-tenant throughput is balanced —
// which is what makes this a signal and not a tautology.
func TestNoisyNeighborSignal(t *testing.T) {
	rs := scenarioResults(t, "noisy-neighbor", quick(), neutralOf)
	advR, neuR := rs["HyperTRIO"][0], rs["HyperTRIO"][1]
	victim, bully := class(t, advR, "victim"), class(t, advR, "bully")
	victimN, bullyN := class(t, neuR, "victim"), class(t, neuR, "bully")

	// Adversarial run: the bully really over-occupies.
	if perTenant(bully) < 2*perTenant(victim) {
		t.Errorf("adversary signal missing: bully %.2f Gb/s per tenant vs victim %.2f",
			perTenant(bully), perTenant(victim))
	}
	// Isolation floor: the victim class keeps at least 30% of its
	// neutral throughput — its fair arbitration share under a weight-8
	// bully is 12/44 slots vs 12/16 neutral, i.e. ~36%; a design that
	// let the bully damage victims beyond arbitration would fall below.
	if victimN.Gbps <= 0 {
		t.Fatal("neutral victim throughput is zero")
	}
	if floor := victim.Gbps / victimN.Gbps; floor < 0.30 {
		t.Errorf("victim floor %.2f under noisy neighbor, want >= 0.30", floor)
	}
	// Control: no imbalance on the neutral twin — the adversarial
	// assertion above would fail against these results.
	if r := perTenant(bullyN) / perTenant(victimN); r < 0.8 || r > 1.25 {
		t.Errorf("neutral twin shows per-tenant imbalance %.2f; the control leaked signal", r)
	}
}

// The SID-flood signal: the thrashers sweep the shared translation
// caches, so the run-wide DevTLB hit rate and the victims' throughput
// both degrade against the neutral twin; HyperTRIO still holds the
// victim class above half its clean throughput.
func TestSIDFloodSignal(t *testing.T) {
	rs := scenarioResults(t, "sid-flood", quick(), neutralOf)
	advR, neuR := rs["HyperTRIO"][0], rs["HyperTRIO"][1]
	if advR.DevTLB.HitRate() > neuR.DevTLB.HitRate()-0.05 {
		t.Errorf("flood signal missing: hit rate %.3f vs neutral %.3f",
			advR.DevTLB.HitRate(), neuR.DevTLB.HitRate())
	}
	victim, victimN := class(t, advR, "victim"), class(t, neuR, "victim")
	floor := victim.Gbps / victimN.Gbps
	if floor > 0.95 {
		t.Errorf("flood cost invisible: victim floor %.2f", floor)
	}
	if floor < 0.50 {
		t.Errorf("isolation regressed: HyperTRIO victim floor %.2f under SID flood, want >= 0.50", floor)
	}
	if victim.AvgLatency < victimN.AvgLatency {
		t.Errorf("victim latency improved under flood: %v vs %v", victim.AvgLatency, victimN.AvgLatency)
	}
}

// The incast signal: microbursts raise the mean offered load above the
// flat baseline, and HyperTRIO tracks the envelope; the translation-
// bound Base design barely notices — the signal is arrival-side.
func TestIncastSignal(t *testing.T) {
	rs := scenarioResults(t, "incast", quick(), neutralOf)
	adv, neu := rs["HyperTRIO"][0], rs["HyperTRIO"][1]
	if adv.AchievedGbps < neu.AchievedGbps*1.05 {
		t.Errorf("incast signal missing: %.2f Gb/s vs flat %.2f", adv.AchievedGbps, neu.AchievedGbps)
	}
	if ca, cn := class(t, adv, "ms"), class(t, neu, "ms"); ca.AvgLatency < cn.AvgLatency {
		t.Errorf("burst latency below flat latency: %v vs %v", ca.AvgLatency, cn.AvgLatency)
	}
	base, baseN := rs["Base"][0], rs["Base"][1]
	if r := base.AchievedGbps / baseN.AchievedGbps; r < 0.95 || r > 1.1 {
		t.Errorf("translation-bound Base moved %.3fx under incast; envelope should not bind it", r)
	}
}

// The diurnal signal: the triangle wave's mean load is far above the
// trough baseline, so a design that can follow arrivals delivers
// proportionally more bandwidth than its flat-trough twin.
func TestDiurnalSignal(t *testing.T) {
	rs := scenarioResults(t, "diurnal", quick(), neutralOf)
	adv, neu := rs["HyperTRIO"][0], rs["HyperTRIO"][1]
	if adv.AchievedGbps < neu.AchievedGbps*1.5 {
		t.Errorf("diurnal signal missing: %.2f Gb/s vs flat-trough %.2f", adv.AchievedGbps, neu.AchievedGbps)
	}
}

// The storm signal: partitioning alone (single PTB entry, no latency
// hiding) pays for the shootdown/walker-fault storm in bandwidth,
// while the full design re-walks everything the storm invalidated —
// visibly more walks — at no bandwidth cost. Both assertions fail
// against the calm control by construction.
func TestStormSignal(t *testing.T) {
	rs := scenarioResults(t, "storm", quick(), calmOf)
	part, partCalm := rs["part"][0], rs["part"][1]
	if part.AchievedGbps > partCalm.AchievedGbps*0.9 {
		t.Errorf("storm cost invisible on part: %.2f vs calm %.2f", part.AchievedGbps, partCalm.AchievedGbps)
	}
	ht, htCalm := rs["HyperTRIO"][0], rs["HyperTRIO"][1]
	if ht.IOMMU.Walks < htCalm.IOMMU.Walks*3/2 {
		t.Errorf("storm re-walks missing: %d walks vs calm %d", ht.IOMMU.Walks, htCalm.IOMMU.Walks)
	}
	if ht.AchievedGbps < htCalm.AchievedGbps*0.99 {
		t.Errorf("HyperTRIO lost bandwidth to the storm: %.2f vs calm %.2f", ht.AchievedGbps, htCalm.AchievedGbps)
	}
}

// Conservation holds under every committed scenario: with the
// invariants stage composed into every cell the engine itself asserts
// attempts == packets + drops (and admission/occupancy bounds) while
// it runs, and the per-class breakdown must reconcile exactly with the
// run totals.
func TestScenarioConservation(t *testing.T) {
	o := quick()
	o.Invariants = true
	for _, name := range []string{"noisy-neighbor", "sid-flood", "incast", "diurnal", "storm"} {
		s, err := scenarioFor(name, o)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		sw := newSweep(o)
		for _, d := range faultDesigns {
			if err := sw.simCompiled(d.cfg(), comp); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sw.run()
		if err != nil {
			t.Fatalf("%s: invariant violation or run failure: %v", name, err)
		}
		for _, d := range faultDesigns {
			r := res.next()
			var pkts, drops uint64
			tenants := 0
			for _, c := range r.Classes {
				pkts += c.Packets
				drops += c.Drops
				tenants += c.Tenants
				if c.Fairness < 0 || c.Fairness > 1.000001 {
					t.Errorf("%s/%s: class %s Jain index %v out of range", name, d.name, c.Name, c.Fairness)
				}
			}
			if pkts != r.Packets || drops != r.Drops {
				t.Errorf("%s/%s: class sums (%d pkts, %d drops) != totals (%d, %d)",
					name, d.name, pkts, drops, r.Packets, r.Drops)
			}
			if tenants != s.TotalTenants() {
				t.Errorf("%s/%s: class tenants sum to %d, scenario has %d", name, d.name, tenants, s.TotalTenants())
			}
		}
	}
}

// Every committed scenario produces the identical Result — not just
// the same table cells — across serial, sharded (2 and 8), streaming,
// and sharded-streaming execution. The quick-suite golden tests pin
// the same property at the rendered-output level; this pins the full
// result structs, per run mode, with a precise failure message.
func TestScenarioDifferentialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario five times; skipped in -short mode")
	}
	modes := []struct {
		name   string
		shards int
		stream bool
	}{
		{"serial", 0, false},
		{"shards2", 2, false},
		{"shards8", 8, false},
		{"stream", 0, true},
		{"stream-shards2", 2, true},
	}
	for _, name := range []string{"noisy-neighbor", "sid-flood", "incast", "diurnal", "storm"} {
		var ref core.Result
		for i, m := range modes {
			o := quick()
			o.Shards = m.shards
			o.Stream = m.stream
			s, err := scenarioFor(name, o)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := s.Compile()
			if err != nil {
				t.Fatal(err)
			}
			sw := newSweep(o)
			if err := sw.simCompiled(core.HyperTRIOConfig(), comp); err != nil {
				t.Fatal(err)
			}
			res, err := sw.run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.name, err)
			}
			r := res.next()
			r.Series = nil
			if i == 0 {
				ref = r
				continue
			}
			if !reflect.DeepEqual(r, ref) {
				t.Errorf("%s: %s diverged from serial:\n%+v\n%+v", name, m.name, r, ref)
			}
		}
	}
}
