package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Seed: 42, Quick: true} }

// parseGbps pulls a float out of a table cell produced by gbps().
func parseGbps(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q is not a bandwidth: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "table3", "fig4", "fig5", "fig8a", "fig8b",
		"fig9", "fig10", "fig11a", "fig11b", "fig11c", "fig12a", "fig12b", "fig12c",
		"ext-partitions", "ext-walkers", "ext-5level", "ext-isolation",
		"ext-faults", "ext-churn", "ext-megatenant",
		"ext-noisy-neighbor", "ext-sid-flood", "ext-incast", "ext-diurnal", "ext-storm"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All), len(want))
	}
	for i, id := range want {
		if All[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, All[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if tbl.Title == "" || len(tbl.Columns) == 0 {
				t.Fatal("table missing title or columns")
			}
			// Every row must be fully populated.
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestFigure10Shape(t *testing.T) {
	tbl, err := Figure10(quick())
	if err != nil {
		t.Fatal(err)
	}
	// HyperTRIO must dominate Base at the largest tenant count for every
	// benchmark/interleaving, and Base must collapse below 20% there.
	maxTenants := "128"
	checked := 0
	for _, row := range tbl.Rows {
		if row[2] != maxTenants {
			continue
		}
		checked++
		base, hyper := parseGbps(t, row[3]), parseGbps(t, row[4])
		if hyper < 2*base {
			t.Errorf("%s/%s@%s: HyperTRIO %.1f not >= 2x Base %.1f",
				row[0], row[1], row[2], hyper, base)
		}
		if base > 40 { // 20% of 200 Gb/s
			t.Errorf("%s/%s@%s: Base %.1f Gb/s did not collapse", row[0], row[1], row[2], base)
		}
	}
	if checked != 9 {
		t.Fatalf("checked %d rows at %s tenants, want 9", checked, maxTenants)
	}
}

func TestFigure12bMonotone(t *testing.T) {
	tbl, err := Figure12b(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		p1, p8, p32 := parseGbps(t, row[2]), parseGbps(t, row[3]), parseGbps(t, row[4])
		// Allow tiny noise but deeper PTBs must never lose badly.
		if p8 < p1*0.95 || p32 < p8*0.95 {
			t.Errorf("%s@%s: PTB scaling not monotone: %v %v %v", row[0], row[1], p1, p8, p32)
		}
	}
}

func TestFigure4MissRateRises(t *testing.T) {
	tbl, err := Figure4(quick())
	if err != nil {
		t.Fatal(err)
	}
	first := tbl.Rows[0][1]
	last := tbl.Rows[len(tbl.Rows)-1][1]
	pf, _ := strconv.ParseFloat(strings.TrimSuffix(first, "%"), 64)
	pl, _ := strconv.ParseFloat(strings.TrimSuffix(last, "%"), 64)
	if pl <= pf {
		t.Fatalf("IOTLB miss rate did not rise with connections: %s -> %s", first, last)
	}
}

func TestFigure5VFCollapses(t *testing.T) {
	tbl, err := Figure5(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Native grows/stays near link; VF peaks then collapses.
	var vfPeak, vfLast, nativeLast float64
	for _, row := range tbl.Rows {
		vf := parseGbps(t, row[2])
		if vf > vfPeak {
			vfPeak = vf
		}
		vfLast = vf
		nativeLast = parseGbps(t, row[1])
	}
	if nativeLast < 8.5 {
		t.Errorf("native at 32 connections = %.2f Gb/s, want near link rate", nativeLast)
	}
	if vfLast > vfPeak/1.5 {
		t.Errorf("VF did not collapse: peak %.2f, last %.2f", vfPeak, vfLast)
	}
}

func TestTable3MatchesPaperBounds(t *testing.T) {
	tbl, err := Table3(DefaultOptions()) // full 1024 tenants (cheap: no simulation)
	if err != nil {
		t.Fatal(err)
	}
	// With enough tenants the sampled max/min approach the profile
	// bounds; paper columns must be present verbatim.
	for _, row := range tbl.Rows {
		if row[4] == "" || row[5] == "" || row[6] == "" {
			t.Fatalf("paper columns missing in row %v", row)
		}
	}
	if tbl.Rows[0][5] != "68,079" {
		t.Fatalf("iperf3 paper min = %s, want 68,079", tbl.Rows[0][5])
	}
}

func TestScalePolicy(t *testing.T) {
	o := DefaultOptions()
	if packetsPerTenant(4, o) <= packetsPerTenant(1024, o) {
		t.Error("small tenant counts should get more packets per tenant")
	}
	for _, n := range []int{1, 4, 1024} {
		for _, q := range []bool{false, true} {
			s := scaleFor(0, packetsPerTenant(n, Options{Quick: q}))
			if s <= 0 || s > 1 {
				t.Fatalf("scale %v out of range for n=%d quick=%v", s, n, q)
			}
		}
	}
}

func TestExtWalkersMonotone(t *testing.T) {
	tbl, err := ExtWalkers(quick())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tbl.Rows {
		bw := parseGbps(t, row[1])
		if bw < prev*0.95 {
			t.Fatalf("bandwidth fell when adding walkers: %v after %v", bw, prev)
		}
		prev = bw
	}
	// One walker must be a real bottleneck versus unlimited.
	first := parseGbps(t, tbl.Rows[0][1])
	last := parseGbps(t, tbl.Rows[len(tbl.Rows)-1][1])
	if first >= last {
		t.Fatalf("walker limit had no effect: 1 walker %.1f vs unlimited %.1f", first, last)
	}
}

// TestWorkerCountDeterminism is the golden determinism check: the
// rendered table of a serial run (Workers=1, the historical behaviour)
// must be byte-identical to a parallel run (Workers=8) of the same
// experiment. fig10 covers the canonical sweep path, fig5 the
// profile-override trace path.
func TestWorkerCountDeterminism(t *testing.T) {
	for _, id := range []string{"fig10", "fig5"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		serial, err := e.Run(Options{Seed: 42, Quick: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := e.Run(Options{Seed: 42, Quick: true, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("%s: Workers=1 and Workers=8 text output differ:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial.String(), parallel.String())
		}
		if serial.CSV() != parallel.CSV() {
			t.Errorf("%s: Workers=1 and Workers=8 CSV output differ", id)
		}
	}
}

func TestActiveSetNote(t *testing.T) {
	if activeSetNote() != "active sets: iperf3=8 mediastream=32 websearch=36" {
		t.Fatalf("unexpected: %s", activeSetNote())
	}
}
