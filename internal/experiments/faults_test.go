package experiments

import (
	"strconv"
	"testing"
)

// TestExtFaultsSignal pins the invalidation sweep's two properties: the
// table is deterministic (plans derive only from seed and measured
// horizon), and scripted invalidations monotonically cost bandwidth in
// the designs that have hits to lose.
func TestExtFaultsSignal(t *testing.T) {
	a, err := ExtFaults(quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtFaults(quick())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("ExtFaults is not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	clean, worst := a.Rows[0], a.Rows[len(a.Rows)-1]
	for col := 1; col < len(a.Columns); col++ {
		c, w := parseGbps(t, clean[col]), parseGbps(t, worst[col])
		if w > c {
			t.Errorf("%s: bandwidth rose from %.2f to %.2f under max invalidation rate",
				a.Columns[col], c, w)
		}
	}
	// Partitioning without latency hiding pays for every shootdown.
	c, w := parseGbps(t, clean[4]), parseGbps(t, worst[4])
	if w >= c {
		t.Errorf("part shootdown: %.2f -> %.2f, want a strict bandwidth loss", c, w)
	}
}

// TestExtChurnSignal pins the churn sweep: teardown/re-attach cycles
// force extra walks (the flushed tenant restarts cold) and cost the
// Base design bandwidth.
func TestExtChurnSignal(t *testing.T) {
	tbl, err := ExtChurn(quick())
	if err != nil {
		t.Fatal(err)
	}
	clean, worst := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	walks := func(row []string) int {
		n, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatalf("walks cell %q: %v", row[5], err)
		}
		return n
	}
	if w0, w1 := walks(clean), walks(worst); w1 <= w0 {
		t.Errorf("churn did not force extra walks: %d -> %d", w0, w1)
	}
	if b0, b1 := parseGbps(t, clean[1]), parseGbps(t, worst[1]); b1 >= b0 {
		t.Errorf("Base bandwidth did not drop under churn: %.2f -> %.2f", b0, b1)
	}
}

// TestInvariantsOptionTransparent runs a fault-injected sweep with and
// without the conservation checker composed into every cell: the
// rendered tables must be byte-identical (and the checked run must not
// flag a violation).
func TestInvariantsOptionTransparent(t *testing.T) {
	plain, err := ExtChurn(quick())
	if err != nil {
		t.Fatal(err)
	}
	o := quick()
	o.Invariants = true
	checked, err := ExtChurn(o)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != checked.String() {
		t.Fatalf("invariant checker perturbed the sweep:\n%s\nvs\n%s",
			plain.String(), checked.String())
	}
}
