package experiments

import (
	"hypertrio/internal/core"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Figure10 is the headline result: maximum achievable link bandwidth for
// the Base and HyperTRIO designs (Table IV) across benchmarks,
// inter-tenant interleavings and tenant counts.
func Figure10(o Options) (*stats.Table, error) {
	ivs := []trace.Interleave{trace.RR1, trace.RR4, trace.RAND1}
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, iv := range ivs {
			for _, n := range tenantSweep(o) {
				sw.sim(core.BaseConfig(), kind, n, iv)
				sw.sim(core.HyperTRIOConfig(), kind, n, iv)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 10: scalability of I/O bandwidth, HyperTRIO vs Base",
		"benchmark", "interleave", "tenants", "Base Gb/s", "HyperTRIO Gb/s", "Base util", "HyperTRIO util")
	for _, kind := range workload.Kinds {
		for _, iv := range ivs {
			for _, n := range tenantSweep(o) {
				rb, rh := res.next(), res.next()
				t.AddRow(kind.String(), iv.String(), itoa(n),
					gbps(rb), gbps(rh), util(rb), util(rh))
			}
		}
	}
	return t, nil
}

// partitionedOnly is the Fig. 12a configuration: Table IV partitioning of
// the DevTLB and L2/L3 TLBs with no PTB overlap and no prefetching.
func partitionedOnly() core.Config {
	cfg := core.HyperTRIOConfig()
	cfg.PTBEntries = 1
	cfg.Prefetch = nil
	return cfg
}

// Figure12a isolates the partitioning scheme: bandwidth with partitioned
// DevTLB and page-walk caches but a single PTB entry and no prefetcher.
func Figure12a(o Options) (*stats.Table, error) {
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			sw.sim(core.BaseConfig(), kind, n, trace.RR1)
			sw.sim(partitionedOnly(), kind, n, trace.RR1)
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 12a: effect of DevTLB and L2/L3 TLB partitioning alone (Gb/s)",
		"benchmark", "tenants", "Base", "partitioned")
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			t.AddRow(kind.String(), itoa(n), gbps(res.next()), gbps(res.next()))
		}
	}
	return t, nil
}

// Figure12b sweeps the Pending Translation Buffer size on top of the
// partitioned design (still no prefetching): deeper buffers hide more
// translation latency via out-of-order completion.
func Figure12b(o Options) (*stats.Table, error) {
	sizes := []int{1, 8, 32}
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			for _, size := range sizes {
				cfg := partitionedOnly()
				cfg.PTBEntries = size
				sw.sim(cfg, kind, n, trace.RR1)
			}
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 12b: effect of Pending Translation Buffer size (partitioned, no prefetch, Gb/s)",
		"benchmark", "tenants", "PTB=1", "PTB=8", "PTB=32")
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			row := []string{kind.String(), itoa(n)}
			for range sizes {
				row = append(row, gbps(res.next()))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure12c isolates the Translation Prefetching Scheme: the full
// HyperTRIO design versus the same design without the Prefetch Unit,
// plus the share of requests served straight from the Prefetch Buffer
// (the paper reports 45% for websearch at 1024 tenants).
func Figure12c(o Options) (*stats.Table, error) {
	sw := newSweep(o)
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			noPf := core.HyperTRIOConfig()
			noPf.Prefetch = nil
			sw.sim(noPf, kind, n, trace.RR1)
			sw.sim(core.HyperTRIOConfig(), kind, n, trace.RR1)
		}
	}
	res, err := sw.run()
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig. 12c: contribution of translation prefetching (Gb/s)",
		"benchmark", "tenants", "PTB+partition", "+prefetch", "gain", "PB served")
	for _, kind := range workload.Kinds {
		for _, n := range tenantSweep(o) {
			rn, rp := res.next(), res.next()
			gain := 0.0
			if rn.AchievedGbps > 0 {
				gain = (rp.AchievedGbps - rn.AchievedGbps) / rn.AchievedGbps
			}
			t.AddRow(kind.String(), itoa(n), gbps(rn), gbps(rp),
				stats.Percent(gain), stats.Percent(rp.PrefetchServedShare()))
		}
	}
	return t, nil
}
