// Package experiments regenerates every table and figure of the paper's
// evaluation: each Figure*/Table* function sweeps the parameters the
// paper sweeps and returns the same rows or series the paper reports.
// The registry in All drives cmd/experiments and the benchmark harness.
//
// Scale: absolute bandwidths depend on the testbed, so experiments run at
// a reduced (but shape-preserving) trace scale by default; EXPERIMENTS.md
// records the measured values next to the paper's.
package experiments

import (
	"fmt"

	"hypertrio/internal/core"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Options tunes how heavy a regeneration run is.
type Options struct {
	// Seed drives trace construction; experiments are deterministic for
	// a given (Seed, Quick).
	Seed int64
	// Quick shrinks tenant counts and trace lengths for CI/benchmarks.
	Quick bool
}

// DefaultOptions is what cmd/experiments uses.
func DefaultOptions() Options { return Options{Seed: 42} }

// Experiment ties a paper artifact to its regeneration function.
type Experiment struct {
	ID    string // e.g. "fig10"
	Title string
	Run   func(Options) (*stats.Table, error)
}

// All lists every experiment in presentation order.
var All = []Experiment{
	{"table2", "Table II: performance-model parameters", Table2},
	{"table3", "Table III: translation requests per benchmark", Table3},
	{"fig4", "Fig. 4: IOMMU TLB miss rate vs parallel connections (AMD case study)", Figure4},
	{"fig5", "Fig. 5: cumulative bandwidth, native vs VF (Intel case study)", Figure5},
	{"fig8a", "Fig. 8a: single-tenant page access frequencies", Figure8a},
	{"fig8b", "Fig. 8b: single-tenant data-page access pattern", Figure8b},
	{"fig9", "Fig. 9: modeled bandwidth vs connections per DevTLB configuration", Figure9},
	{"fig10", "Fig. 10: scalability of HyperTRIO vs Base", Figure10},
	{"fig11a", "Fig. 11a: Base with different DevTLB sizes", Figure11a},
	{"fig11b", "Fig. 11b: DevTLB replacement policies", Figure11b},
	{"fig11c", "Fig. 11c: fully associative DevTLB with oracle replacement", Figure11c},
	{"fig12a", "Fig. 12a: DevTLB and L2/L3 TLB partitioning alone", Figure12a},
	{"fig12b", "Fig. 12b: Pending Translation Buffer size", Figure12b},
	{"fig12c", "Fig. 12c: translation prefetching contribution", Figure12c},
	{"ext-partitions", "Extension: DevTLB partition-count sweep (open question in §V-D)", ExtPartitions},
	{"ext-walkers", "Extension: IOMMU walker-concurrency sweep", ExtWalkers},
	{"ext-5level", "Extension: 4- vs 5-level page tables (24- vs 35-access walks)", ExtFiveLevel},
	{"ext-isolation", "Extension: per-tenant latency fairness (isolation)", ExtIsolation},
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// tenantSweep returns the tenant counts an experiment sweeps.
func tenantSweep(o Options) []int {
	if o.Quick {
		return []int{4, 32, 128}
	}
	return []int{4, 16, 64, 256, 1024}
}

// packetsPerTenant balances statistical quality against runtime: small
// tenant counts need long runs so warmup does not dominate, large counts
// are already miss-dominated.
func packetsPerTenant(tenants int, o Options) int {
	budget := 24000
	floor, ceil := 300, 4000
	if o.Quick {
		budget, floor, ceil = 4000, 120, 1200
	}
	ppt := budget / tenants
	if ppt < floor {
		ppt = floor
	}
	if ppt > ceil {
		ppt = ceil
	}
	return ppt
}

// scaleFor converts a packets-per-tenant target into the trace scale
// knob (budgets are in requests; the minimum-budget tenant bounds the
// trace length).
func scaleFor(kind workload.Kind, ppt int) float64 {
	p := workload.ProfileFor(kind)
	s := float64(ppt*workload.RequestsPerPacket) / float64(p.MinRequests)
	if s > 1 {
		s = 1
	}
	return s
}

// buildTrace constructs the hyper-tenant trace for one sweep point.
func buildTrace(kind workload.Kind, tenants int, iv trace.Interleave, o Options) (*trace.Trace, error) {
	return trace.Construct(trace.Config{
		Benchmark:  kind,
		Tenants:    tenants,
		Interleave: iv,
		Seed:       o.Seed,
		Scale:      scaleFor(kind, packetsPerTenant(tenants, o)),
	})
}

// simulate runs one configuration against one trace.
func simulate(cfg core.Config, tr *trace.Trace) (core.Result, error) {
	sys, err := core.NewSystem(cfg, tr)
	if err != nil {
		return core.Result{}, err
	}
	return sys.Run()
}

// gbps formats a bandwidth cell.
func gbps(r core.Result) string { return stats.Gbps(r.AchievedGbps * 1e9) }

// util formats a utilization cell.
func util(r core.Result) string { return stats.Percent(r.Utilization) }

func itoa(n int) string { return fmt.Sprintf("%d", n) }
