// Package experiments regenerates every table and figure of the paper's
// evaluation: each Figure*/Table* function sweeps the parameters the
// paper sweeps and returns the same rows or series the paper reports.
// The registry in All drives cmd/experiments and the benchmark harness.
//
// Scale: absolute bandwidths depend on the testbed, so experiments run at
// a reduced (but shape-preserving) trace scale by default; EXPERIMENTS.md
// records the measured values next to the paper's.
package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"hypertrio/internal/core"
	"hypertrio/internal/obs"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/runner"
	"hypertrio/internal/sim"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Options tunes how heavy a regeneration run is.
type Options struct {
	// Seed drives trace construction; experiments are deterministic for
	// a given (Seed, Quick).
	Seed int64
	// Quick shrinks tenant counts and trace lengths for CI/benchmarks.
	Quick bool
	// Workers is how many goroutines a sweep's simulation cells fan out
	// across (<= 0 means GOMAXPROCS). Tables are byte-identical for any
	// worker count; Workers == 1 reproduces the historical serial
	// execution exactly.
	Workers int
	// SampleEvery, when positive, attaches the time-series sampler to
	// every simulation cell at this interval of simulated time. Sampling
	// only reads model state, so the rendered tables are unchanged.
	SampleEvery sim.Duration
	// SeriesDir, when set together with SampleEvery, receives one CSV
	// per cell (cell-000.csv, ... in submission order) for each sweep.
	SeriesDir string
	// Shards, when >= 2, runs every simulation cell on the sharded
	// coordinator (core.Config.Shards): the chipset work in its own event
	// domain, synchronized with the device domain by conservative PCIe
	// lookahead. Sharding is an execution strategy, not a model change —
	// rendered tables are byte-identical for every value.
	Shards int
	// Stream replays every queued cell through an online generator-backed
	// source instead of a materialized trace (runner.Cell.Stream): memory
	// stays O(tenants) per cell and rendered tables are byte-identical,
	// since the stream and the constructed trace are the same generation
	// path. Cells whose configuration requires the whole sequence up
	// front (the Oracle policy) transparently fall back to the
	// materialized path.
	Stream bool
	// Invariants composes the conservation-checking pipeline stage
	// ("invariants") into every simulation cell. The checker is
	// transparent — rendered tables are byte-identical with it on or
	// off — but any conservation violation (a packet completing without
	// admission, PTB occupancy escaping its capacity, attempts not
	// equalling packets plus drops) fails the sweep instead of skewing
	// a table silently.
	Invariants bool
}

// DefaultOptions is what cmd/experiments uses.
func DefaultOptions() Options { return Options{Seed: 42} }

// Experiment ties a paper artifact to its regeneration function.
type Experiment struct {
	ID    string // e.g. "fig10"
	Title string
	Run   func(Options) (*stats.Table, error)
}

// All lists every experiment in presentation order.
var All = []Experiment{
	{"table2", "Table II: performance-model parameters", Table2},
	{"table3", "Table III: translation requests per benchmark", Table3},
	{"fig4", "Fig. 4: IOMMU TLB miss rate vs parallel connections (AMD case study)", Figure4},
	{"fig5", "Fig. 5: cumulative bandwidth, native vs VF (Intel case study)", Figure5},
	{"fig8a", "Fig. 8a: single-tenant page access frequencies", Figure8a},
	{"fig8b", "Fig. 8b: single-tenant data-page access pattern", Figure8b},
	{"fig9", "Fig. 9: modeled bandwidth vs connections per DevTLB configuration", Figure9},
	{"fig10", "Fig. 10: scalability of HyperTRIO vs Base", Figure10},
	{"fig11a", "Fig. 11a: Base with different DevTLB sizes", Figure11a},
	{"fig11b", "Fig. 11b: DevTLB replacement policies", Figure11b},
	{"fig11c", "Fig. 11c: fully associative DevTLB with oracle replacement", Figure11c},
	{"fig12a", "Fig. 12a: DevTLB and L2/L3 TLB partitioning alone", Figure12a},
	{"fig12b", "Fig. 12b: Pending Translation Buffer size", Figure12b},
	{"fig12c", "Fig. 12c: translation prefetching contribution", Figure12c},
	{"ext-partitions", "Extension: DevTLB partition-count sweep (open question in §V-D)", ExtPartitions},
	{"ext-walkers", "Extension: IOMMU walker-concurrency sweep", ExtWalkers},
	{"ext-5level", "Extension: 4- vs 5-level page tables (24- vs 35-access walks)", ExtFiveLevel},
	{"ext-isolation", "Extension: per-tenant latency fairness (isolation)", ExtIsolation},
	{"ext-faults", "Extension: scripted invalidation-rate sweep (fault injection)", ExtFaults},
	{"ext-churn", "Extension: tenant-churn sweep (fault injection)", ExtChurn},
	{"ext-megatenant", "Extension: million-tenant scale-out with streaming sources", ExtMegaTenant},
	{"ext-noisy-neighbor", "Extension: noisy-neighbor scenario (heavy-hitter isolation)", ExtNoisyNeighbor},
	{"ext-sid-flood", "Extension: SID-flood scenario (IOTLB thrashing)", ExtSIDFlood},
	{"ext-incast", "Extension: incast scenario (synchronized microbursts)", ExtIncast},
	{"ext-diurnal", "Extension: diurnal scenario (day/night load curve)", ExtDiurnal},
	{"ext-storm", "Extension: invalidation storm at peak load", ExtStorm},
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// tenantSweep returns the tenant counts an experiment sweeps.
func tenantSweep(o Options) []int {
	if o.Quick {
		return []int{4, 32, 128}
	}
	return []int{4, 16, 64, 256, 1024}
}

// packetsPerTenant balances statistical quality against runtime: small
// tenant counts need long runs so warmup does not dominate, large counts
// are already miss-dominated.
func packetsPerTenant(tenants int, o Options) int {
	budget := 24000
	floor, ceil := 300, 4000
	if o.Quick {
		budget, floor, ceil = 4000, 120, 1200
	}
	ppt := budget / tenants
	if ppt < floor {
		ppt = floor
	}
	if ppt > ceil {
		ppt = ceil
	}
	return ppt
}

// scaleFor converts a packets-per-tenant target into the trace scale
// knob (budgets are in requests; the minimum-budget tenant bounds the
// trace length).
func scaleFor(kind workload.Kind, ppt int) float64 {
	p := workload.ProfileFor(kind)
	s := float64(ppt*workload.RequestsPerPacket) / float64(p.MinRequests)
	if s > 1 {
		s = 1
	}
	return s
}

// traceConfig describes the canonical trace for one sweep point; the
// shared runner cache constructs each distinct config at most once per
// process, so experiments that sweep overlapping points share traces.
func traceConfig(kind workload.Kind, tenants int, iv trace.Interleave, o Options) trace.Config {
	return trace.Config{
		Benchmark:  kind,
		Tenants:    tenants,
		Interleave: iv,
		Seed:       o.Seed,
		Scale:      scaleFor(kind, packetsPerTenant(tenants, o)),
	}
}

// sweep is the declarative cell-submission API the experiment functions
// are written against: queue every (config, trace) cell of a sweep up
// front, run them through the worker pool, then assemble table rows from
// the ordered results. Submission order equals result order, so the
// rendered tables are byte-identical for any worker count.
type sweep struct {
	o     Options
	cells []runner.Cell
}

func newSweep(o Options) *sweep { return &sweep{o: o} }

// sim queues one simulation of cfg over the canonical trace for
// (kind, tenants, iv).
func (s *sweep) sim(cfg core.Config, kind workload.Kind, tenants int, iv trace.Interleave) {
	s.simTrace(cfg, traceConfig(kind, tenants, iv, s.o))
}

// simTrace queues one simulation of cfg over an explicit trace config
// (used by the profile-override studies).
func (s *sweep) simTrace(cfg core.Config, tc trace.Config) {
	s.cells = append(s.cells, runner.Cell{Config: cfg, TraceConfig: tc, Stream: s.o.Stream})
}

// run executes the queued cells and returns a cursor over the results in
// submission order. With sampling enabled it attaches the shared
// observability options to every cell (safe: cells only read them) and
// writes the per-cell time series under SeriesDir.
func (s *sweep) run() (*results, error) {
	cells := s.cells
	if s.o.SampleEvery > 0 || s.o.Invariants || s.o.Shards >= 2 {
		cells = make([]runner.Cell, len(s.cells))
		copy(cells, s.cells)
	}
	if s.o.Shards >= 2 {
		for i := range cells {
			cells[i].Config.Shards = s.o.Shards
		}
	}
	if s.o.SampleEvery > 0 {
		shared := &obs.Options{SampleEvery: s.o.SampleEvery}
		for i := range cells {
			cells[i].Config.Obs = shared
		}
	}
	if s.o.Invariants {
		for i := range cells {
			// Fresh slice per cell: never share a backing array with the
			// submitted spec (TranslationOff cells ignore ExtraStages).
			extra := make([]pipeline.StageSpec, 0, len(cells[i].Config.ExtraStages)+1)
			extra = append(extra, cells[i].Config.ExtraStages...)
			cells[i].Config.ExtraStages = append(extra, pipeline.StageSpec{Kind: "invariants"})
		}
	}
	rs, err := runner.Pool{Workers: s.o.Workers}.Run(cells)
	if err != nil {
		return nil, err
	}
	if s.o.SampleEvery > 0 && s.o.SeriesDir != "" {
		if err := writeSeries(s.o.SeriesDir, rs); err != nil {
			return nil, err
		}
	}
	return &results{rs: rs}, nil
}

// writeSeries dumps each cell's sampled series as CSV, numbered in
// submission order so a results directory diffs clean across runs.
func writeSeries(dir string, rs []core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, r := range rs {
		var buf bytes.Buffer
		if err := r.Series.WriteCSV(&buf); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("cell-%03d.csv", i))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// results replays a sweep's outcomes in submission order: the assembly
// pass calls next exactly once per queued cell, mirroring its loops.
type results struct {
	rs []core.Result
	i  int
}

func (r *results) next() core.Result {
	res := r.rs[r.i]
	r.i++
	return res
}

// gbps formats a bandwidth cell.
func gbps(r core.Result) string { return stats.Gbps(r.AchievedGbps * 1e9) }

// util formats a utilization cell.
func util(r core.Result) string { return stats.Percent(r.Utilization) }

func itoa(n int) string { return fmt.Sprintf("%d", n) }
