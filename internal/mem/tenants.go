package mem

// TenantTables is the dense SID-indexed collection of per-tenant nested
// page tables a simulation walks. SIDs are dense by construction
// (1..Tenants), so a slice replaces the former map: a hot-path lookup is
// one bounds check and one indexed load, and the container costs one
// pointer per tenant instead of map buckets — 8 MB at 10⁶ tenants.
//
// Distinct SIDs may share one *NestedTable: all tenants run the same
// guest image and so build identical table structures, and the model's
// outcomes depend only on walk shape, not on which physical frames back
// it. core.System exploits that to register a single template table for
// every tenant when no fault plan can mutate per-tenant state.
type TenantTables struct {
	byID []*NestedTable // indexed by SID; nil = unregistered
}

// NewTenantTables returns an empty collection pre-sized for SIDs up to
// maxSID.
func NewTenantTables(maxSID SID) *TenantTables {
	return &TenantTables{byID: make([]*NestedTable, int(maxSID)+1)}
}

// Set registers the nested tables for sid, growing the index as needed.
func (t *TenantTables) Set(sid SID, nt *NestedTable) {
	for len(t.byID) <= int(sid) {
		t.byID = append(t.byID, nil)
	}
	t.byID[sid] = nt
}

// Get returns the nested tables for sid, or nil when none is registered.
func (t *TenantTables) Get(sid SID) *NestedTable {
	if t == nil || int(sid) >= len(t.byID) {
		return nil
	}
	return t.byID[sid]
}

// Len reports how many SIDs have registered tables.
func (t *TenantTables) Len() int {
	n := 0
	for _, nt := range t.byID {
		if nt != nil {
			n++
		}
	}
	return n
}
