// Package mem implements the memory substrate of the HyperSIO model:
// simulated physical address spaces, 4-level radix page tables, and the
// two-dimensional (nested) page-table walker that the IOMMU model drives.
//
// Unlike a latency-only model, the page tables here are real data
// structures: Map writes present entries into simulated table pages and
// Walk reads them back, returning both the translation and the exact
// sequence of physical accesses the walk performed. The performance model
// charges DRAM latency per returned access, and tests verify that
// translations round-trip against the allocator.
package mem

import (
	"fmt"
	"sort"
)

// Architectural constants for x86-64-style 4-level paging.
const (
	PageShift      = 12 // 4 KB base pages
	PageSize       = 1 << PageShift
	HugePageShift  = 21 // 2 MB huge pages
	HugePageSize   = 1 << HugePageShift
	GiantPageShift = 30 // 1 GB pages (supported by the walker, unused by workloads)

	// EntriesPerTable is the fan-out of one page-table page.
	EntriesPerTable = 512

	// Levels in a full walk: L4 -> L3 -> L2 -> L1.
	Levels = 4
)

// Addr is an address in some simulated physical address space (host
// physical or guest physical, depending on the Space it belongs to).
type Addr uint64

// table is one 4 KB page-table page: 512 64-bit entries.
type table [EntriesPerTable]uint64

// Page-table entry layout (a simplified x86-64 PTE):
//
//	bit 0      present
//	bit 7      page size (PS): entry maps a huge/giant page at L2/L3
//	bits 12..  physical frame address
const (
	ptePresent  = 1 << 0
	ptePageSize = 1 << 7
	pteAddrMask = ^uint64(PageSize - 1)
)

// Space is a simulated physical address space: a bump allocator for frames
// plus sparse storage for the page-table pages that live in it. Data
// frames are allocated but not backed — the model never reads packet
// payloads, only page-table pages.
type Space struct {
	name   string
	next   Addr
	limit  Addr
	tables map[Addr]*table

	// access statistics
	reads  uint64
	writes uint64
}

// NewSpace creates an address space whose allocations start at base.
// limit (0 = unbounded) caps the bump allocator; exceeding it panics,
// which in practice means a workload was misconfigured.
func NewSpace(name string, base, limit Addr) *Space {
	if base%PageSize != 0 {
		panic(fmt.Sprintf("mem: space %q base %#x not page aligned", name, base))
	}
	return &Space{name: name, next: base, limit: limit, tables: make(map[Addr]*table)}
}

// Name returns the label the space was created with.
func (s *Space) Name() string { return s.name }

// Reads returns the number of 8-byte entry reads performed in this space.
func (s *Space) Reads() uint64 { return s.reads }

// Writes returns the number of entry writes performed in this space.
func (s *Space) Writes() uint64 { return s.writes }

// AllocFrame reserves one naturally aligned frame of size 1<<shift and
// returns its base address.
func (s *Space) AllocFrame(shift uint) Addr {
	size := Addr(1) << shift
	base := (s.next + size - 1) &^ (size - 1)
	s.next = base + size
	if s.limit != 0 && s.next > s.limit {
		panic(fmt.Sprintf("mem: space %q exhausted (limit %#x)", s.name, s.limit))
	}
	return base
}

// AllocTable reserves a 4 KB frame and registers it as a page-table page.
func (s *Space) AllocTable() Addr {
	base := s.AllocFrame(PageShift)
	s.tables[base] = &table{}
	return base
}

// Allocated reports the next free address, i.e. the high-water mark.
func (s *Space) Allocated() Addr { return s.next }

// TableCount reports how many page-table pages live in the space.
func (s *Space) TableCount() int { return len(s.tables) }

// ReadEntry reads the 8-byte entry at addr, which must fall inside a
// registered table page.
func (s *Space) ReadEntry(addr Addr) (uint64, error) {
	base := addr &^ (PageSize - 1)
	t, ok := s.tables[base]
	if !ok {
		return 0, fmt.Errorf("mem: read of non-table address %#x in space %q", uint64(addr), s.name)
	}
	if addr%8 != 0 {
		return 0, fmt.Errorf("mem: misaligned entry read %#x", uint64(addr))
	}
	s.reads++
	return t[(addr-base)/8], nil
}

// WriteEntry writes the 8-byte entry at addr inside a registered table page.
func (s *Space) WriteEntry(addr Addr, v uint64) error {
	base := addr &^ (PageSize - 1)
	t, ok := s.tables[base]
	if !ok {
		return fmt.Errorf("mem: write to non-table address %#x in space %q", uint64(addr), s.name)
	}
	if addr%8 != 0 {
		return fmt.Errorf("mem: misaligned entry write %#x", uint64(addr))
	}
	s.writes++
	t[(addr-base)/8] = v
	return nil
}

// TableAddrs returns the sorted base addresses of all table pages;
// used by tests and the trace serializer.
func (s *Space) TableAddrs() []Addr {
	out := make([]Addr, 0, len(s.tables))
	for a := range s.tables {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
