// Package mem implements the memory substrate of the HyperSIO model:
// simulated physical address spaces, 4-level radix page tables, and the
// two-dimensional (nested) page-table walker that the IOMMU model drives.
//
// Unlike a latency-only model, the page tables here are real data
// structures: Map writes present entries into simulated table pages and
// Walk reads them back, returning both the translation and the exact
// sequence of physical accesses the walk performed. The performance model
// charges DRAM latency per returned access, and tests verify that
// translations round-trip against the allocator.
package mem

import (
	"fmt"
	"sort"
)

// Architectural constants for x86-64-style 4-level paging.
const (
	PageShift      = 12 // 4 KB base pages
	PageSize       = 1 << PageShift
	HugePageShift  = 21 // 2 MB huge pages
	HugePageSize   = 1 << HugePageShift
	GiantPageShift = 30 // 1 GB pages (supported by the walker, unused by workloads)

	// EntriesPerTable is the fan-out of one page-table page.
	EntriesPerTable = 512

	// Levels in a full walk: L4 -> L3 -> L2 -> L1.
	Levels = 4
)

// Addr is an address in some simulated physical address space (host
// physical or guest physical, depending on the Space it belongs to).
type Addr uint64

// Page-table entry layout (a simplified x86-64 PTE):
//
//	bit 0      present
//	bit 7      page size (PS): entry maps a huge/giant page at L2/L3
//	bits 12..  physical frame address
const (
	ptePresent  = 1 << 0
	ptePageSize = 1 << 7
	pteAddrMask = ^uint64(PageSize - 1)
)

// Arena geometry. Table pages are fixed-size slots carved out of chunked
// []uint64 backing arrays instead of individual heap objects: a slot id
// resolves to (chunk, offset) by shifts, and a page-number directory maps
// a table page's address to its slot. Chunks are kept small (8 tables,
// 32 KB) so a Space holding only a handful of tables — every tenant's
// guest space — wastes at most a fraction of one chunk.
const (
	tablesPerChunkShift = 3 // 8 table slots (32 KB) per arena chunk
	tablesPerChunk      = 1 << tablesPerChunkShift
	chunkWords          = tablesPerChunk * EntriesPerTable

	// dirPageShift sizes one directory page: 256 page numbers, covering
	// 1 MB of address space per 1 KB of directory.
	dirPageShift = 8
	dirPageLen   = 1 << dirPageShift

	// extTag marks a directory entry that resolves into another Space's
	// arena (an aliased table page — see AliasTable).
	extTag = uint32(1) << 31
)

// dirPage is one leaf of the two-level page-number directory. Each entry
// is 0 (not a table page) or a tagged slot reference + 1.
type dirPage [dirPageLen]uint32

// extRef records one aliased table: the directory entry points here, and
// reads resolve into the source space's arena slot.
type extRef struct {
	src  *Space
	slot uint32
}

// Space is a simulated physical address space: a bump allocator for frames
// plus slab-arena storage for the page-table pages that live in it. Data
// frames are allocated but not backed — the model never reads packet
// payloads, only page-table pages.
type Space struct {
	name  string
	next  Addr
	limit Addr

	// base is the address the bump allocator started at; the page-number
	// directory is indexed relative to it.
	base Addr

	// arena holds table-page storage: fixed-size chunks of tablesPerChunk
	// slots each. Slot n lives at arena[n>>tablesPerChunkShift], word
	// offset (n & (tablesPerChunk-1)) * EntriesPerTable.
	arena  [][]uint64
	nSlots uint32

	// dir maps page number (addr-base)>>PageShift to a tagged slot
	// reference (+1; 0 = not a table page). Level 1 is a slice of leaf
	// pages, allocated only where table pages actually live.
	dir []*dirPage

	// ext holds aliased-table references (tag extTag in dir entries).
	ext []extRef

	// tableAddrs records every registered table page in registration
	// order; the bump allocator hands out ascending addresses, so the
	// slice is normally already sorted (addrsSorted tracks the exception).
	tableAddrs  []Addr
	addrsSorted bool

	// access statistics
	reads  uint64
	writes uint64
}

// NewSpace creates an address space whose allocations start at base.
// limit (0 = unbounded) caps the bump allocator; exceeding it panics,
// which in practice means a workload was misconfigured.
func NewSpace(name string, base, limit Addr) *Space {
	if base%PageSize != 0 {
		panic(fmt.Sprintf("mem: space %q base %#x not page aligned", name, base))
	}
	return &Space{name: name, next: base, limit: limit, base: base, addrsSorted: true}
}

// Name returns the label the space was created with.
func (s *Space) Name() string { return s.name }

// Reads returns the number of 8-byte entry reads performed in this space.
func (s *Space) Reads() uint64 { return s.reads }

// Writes returns the number of entry writes performed in this space.
func (s *Space) Writes() uint64 { return s.writes }

// AllocFrame reserves one naturally aligned frame of size 1<<shift and
// returns its base address.
func (s *Space) AllocFrame(shift uint) Addr {
	size := Addr(1) << shift
	base := (s.next + size - 1) &^ (size - 1)
	s.next = base + size
	if s.limit != 0 && s.next > s.limit {
		panic(fmt.Sprintf("mem: space %q exhausted (limit %#x)", s.name, s.limit))
	}
	return base
}

// AllocTable reserves a 4 KB frame and registers it as a page-table page
// backed by a fresh arena slot.
func (s *Space) AllocTable() Addr {
	base := s.AllocFrame(PageShift)
	slot := s.nSlots
	s.nSlots++
	if int(slot>>tablesPerChunkShift) == len(s.arena) {
		s.arena = append(s.arena, make([]uint64, chunkWords))
	}
	s.register(base, slot+1)
	return base
}

// AliasTable registers the table page at addr as an alias of the table at
// srcAddr in space src: reads and writes through addr observe the source
// table's storage. The nested walker uses it to expose guest table pages
// through their host-physical frames, as real hardware does.
func (s *Space) AliasTable(addr Addr, src *Space, srcAddr Addr) error {
	v := src.dirLookup(srcAddr &^ (PageSize - 1))
	if v == 0 {
		return fmt.Errorf("mem: aliasing non-table address %#x in space %q", uint64(srcAddr), src.name)
	}
	slot := v - 1
	if v&extTag != 0 {
		// Chase one level: aliases always reference the owning arena.
		e := src.ext[(v&^extTag)-1]
		src, slot = e.src, e.slot
	}
	s.ext = append(s.ext, extRef{src: src, slot: slot})
	s.register(addr&^(PageSize-1), uint32(len(s.ext))|extTag)
	return nil
}

// register installs a tagged slot reference for the table page at base.
func (s *Space) register(base Addr, v uint32) {
	pn := uint64(base-s.base) >> PageShift
	l1 := pn >> dirPageShift
	for uint64(len(s.dir)) <= l1 {
		s.dir = append(s.dir, nil)
	}
	if s.dir[l1] == nil {
		s.dir[l1] = &dirPage{}
	}
	if s.dir[l1][pn&(dirPageLen-1)] != 0 {
		panic(fmt.Sprintf("mem: table %#x registered twice in space %q", uint64(base), s.name))
	}
	s.dir[l1][pn&(dirPageLen-1)] = v
	if n := len(s.tableAddrs); n > 0 && base < s.tableAddrs[n-1] {
		s.addrsSorted = false
	}
	s.tableAddrs = append(s.tableAddrs, base)
}

// dirLookup returns the tagged slot reference for the table page at base,
// or 0 if no table page is registered there.
func (s *Space) dirLookup(base Addr) uint32 {
	if base < s.base {
		return 0
	}
	pn := uint64(base-s.base) >> PageShift
	l1 := pn >> dirPageShift
	if l1 >= uint64(len(s.dir)) || s.dir[l1] == nil {
		return 0
	}
	return s.dir[l1][pn&(dirPageLen-1)]
}

// slotWords returns the storage of one owned arena slot.
func (s *Space) slotWords(slot uint32) []uint64 {
	off := int(slot&(tablesPerChunk-1)) * EntriesPerTable
	return s.arena[slot>>tablesPerChunkShift][off : off+EntriesPerTable : off+EntriesPerTable]
}

// tableWords resolves the table page at base to its backing storage
// (following one alias hop if needed), or nil when base is not a
// registered table page. Resolution is pure arithmetic — two shifts and
// two indexed loads — with no map in the path.
func (s *Space) tableWords(base Addr) []uint64 {
	v := s.dirLookup(base)
	if v == 0 {
		return nil
	}
	if v&extTag == 0 {
		return s.slotWords(v - 1)
	}
	e := s.ext[(v&^extTag)-1]
	return e.src.slotWords(e.slot)
}

// Allocated reports the next free address, i.e. the high-water mark.
func (s *Space) Allocated() Addr { return s.next }

// TableCount reports how many page-table pages live in the space
// (aliased pages included).
func (s *Space) TableCount() int { return len(s.tableAddrs) }

// ArenaBytes reports the bytes of arena backing storage this space owns
// (aliased tables are charged to their owning space). Directory and
// bookkeeping overhead is excluded; it is bounded by one dirPage per
// 1 MB of table-bearing address range.
func (s *Space) ArenaBytes() uint64 {
	return uint64(len(s.arena)) * chunkWords * 8
}

// ReadEntry reads the 8-byte entry at addr, which must fall inside a
// registered table page.
func (s *Space) ReadEntry(addr Addr) (uint64, error) {
	base := addr &^ (PageSize - 1)
	w := s.tableWords(base)
	if w == nil {
		return 0, fmt.Errorf("mem: read of non-table address %#x in space %q", uint64(addr), s.name)
	}
	if addr%8 != 0 {
		return 0, fmt.Errorf("mem: misaligned entry read %#x", uint64(addr))
	}
	s.reads++
	return w[(addr-base)/8], nil
}

// WriteEntry writes the 8-byte entry at addr inside a registered table page.
func (s *Space) WriteEntry(addr Addr, v uint64) error {
	base := addr &^ (PageSize - 1)
	w := s.tableWords(base)
	if w == nil {
		return fmt.Errorf("mem: write to non-table address %#x in space %q", uint64(addr), s.name)
	}
	if addr%8 != 0 {
		return fmt.Errorf("mem: misaligned entry write %#x", uint64(addr))
	}
	s.writes++
	w[(addr-base)/8] = v
	return nil
}

// TableAddrs returns the sorted base addresses of all table pages;
// used by tests and the trace serializer.
func (s *Space) TableAddrs() []Addr {
	out := make([]Addr, len(s.tableAddrs))
	copy(out, s.tableAddrs)
	if !s.addrsSorted {
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}
