package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpaceAllocAlignment(t *testing.T) {
	s := NewSpace("t", 0x1000, 0)
	a := s.AllocFrame(PageShift)
	if a != 0x1000 {
		t.Fatalf("first frame at %#x, want 0x1000", uint64(a))
	}
	h := s.AllocFrame(HugePageShift)
	if uint64(h)%HugePageSize != 0 {
		t.Fatalf("huge frame %#x not 2MB aligned", uint64(h))
	}
	b := s.AllocFrame(PageShift)
	if b <= h {
		t.Fatalf("bump allocator went backwards: %#x after %#x", uint64(b), uint64(h))
	}
}

func TestSpaceLimit(t *testing.T) {
	s := NewSpace("t", 0x1000, 0x3000)
	s.AllocFrame(PageShift)
	s.AllocFrame(PageShift)
	defer func() {
		if recover() == nil {
			t.Fatal("allocation past limit did not panic")
		}
	}()
	s.AllocFrame(PageShift)
}

func TestSpaceReadWriteEntry(t *testing.T) {
	s := NewSpace("t", 0, 0)
	tb := s.AllocTable()
	if err := s.WriteEntry(tb+8*7, 0xdeadbeef000|ptePresent); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadEntry(tb + 8*7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef000|ptePresent {
		t.Fatalf("read %#x", v)
	}
	if _, err := s.ReadEntry(0x999000); err == nil {
		t.Fatal("read of unregistered table page should fail")
	}
	if s.Reads() != 1 || s.Writes() != 1 {
		t.Fatalf("stats reads=%d writes=%d, want 1/1", s.Reads(), s.Writes())
	}
}

func TestPageTableMapWalk4K(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	if err := pt.Map(0x7f0000123000, 0xabc000, PageShift); err != nil {
		t.Fatal(err)
	}
	res, err := pt.Walk(0x7f0000123abc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0xabcabc {
		t.Fatalf("PA = %#x, want 0xabcabc", res.PA)
	}
	if res.PageShift != PageShift {
		t.Fatalf("PageShift = %d, want %d", res.PageShift, PageShift)
	}
	if len(res.Accesses) != 4 {
		t.Fatalf("4K walk made %d accesses, want 4", len(res.Accesses))
	}
	for i, a := range res.Accesses {
		if a.Level != 4-i {
			t.Fatalf("access %d at level %d, want %d", i, a.Level, 4-i)
		}
	}
}

func TestPageTableMapWalk2M(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	if err := pt.Map(0xbbe00000, 0x40000000, HugePageShift); err != nil {
		t.Fatal(err)
	}
	res, err := pt.Walk(0xbbe12345)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x40012345 {
		t.Fatalf("PA = %#x, want 0x40012345", res.PA)
	}
	if res.PageShift != HugePageShift {
		t.Fatalf("PageShift = %d, want %d", res.PageShift, HugePageShift)
	}
	if len(res.Accesses) != 3 {
		t.Fatalf("2M walk made %d accesses, want 3", len(res.Accesses))
	}
}

func TestPageTableNotMapped(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	_, err := pt.Walk(0x1234000)
	var nm *NotMappedError
	if !errors.As(err, &nm) {
		t.Fatalf("err = %v, want NotMappedError", err)
	}
	if nm.Level != 4 {
		t.Fatalf("miss at level %d, want 4 (empty table)", nm.Level)
	}
}

func TestPageTableMisalignedMap(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	if err := pt.Map(0x1001, 0x2000, PageShift); err == nil {
		t.Fatal("misaligned va accepted")
	}
	if err := pt.Map(0x1000, 0x2001, PageShift); err == nil {
		t.Fatal("misaligned pa accepted")
	}
	if err := pt.Map(0x1000, 0x2000, 13); err == nil {
		t.Fatal("bogus page shift accepted")
	}
}

func TestPageTableHugeConflict(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	if err := pt.Map(0x40000000, 0x1000, PageShift); err != nil {
		t.Fatal(err)
	}
	// A fine mapping exists under this 2MB region; huge map must not
	// silently clobber the subtree.
	if err := pt.Map(0x40000000, 0x200000, HugePageShift); err != nil {
		t.Fatalf("huge map over table: %v", err)
	}
	// Walking now hits the huge leaf.
	res, err := pt.Walk(0x40000123)
	if err != nil {
		t.Fatal(err)
	}
	if res.PageShift != HugePageShift {
		t.Fatalf("PageShift = %d, want huge", res.PageShift)
	}
	// But mapping 4K under an existing huge leaf errors.
	if err := pt.Map(0x40001000, 0x9000, PageShift); err == nil {
		t.Fatal("4K map under huge leaf accepted")
	}
}

// Property: random (va, pa) mappings round-trip through Walk.
func TestPropertyMapWalkRoundTrip(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	mapped := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		va := uint64(rng.Int63n(1<<47)) &^ (PageSize - 1)
		if _, dup := mapped[va]; dup {
			continue
		}
		pa := uint64(rng.Int63n(1<<40)) &^ (PageSize - 1)
		if err := pt.Map(va, pa, PageShift); err != nil {
			t.Fatal(err)
		}
		mapped[va] = pa
	}
	for va, pa := range mapped {
		off := uint64(rng.Intn(PageSize))
		res, err := pt.Walk(va | off)
		if err != nil {
			t.Fatalf("walk %#x: %v", va, err)
		}
		if res.PA != pa|off {
			t.Fatalf("walk %#x = %#x, want %#x", va|off, res.PA, pa|off)
		}
	}
}

func newTestNested(t *testing.T) (*NestedTable, *Space) {
	t.Helper()
	host := NewSpace("host", 0x100000000, 0)
	nt, err := NewNestedTable("tenant0", 0x40000000, host)
	if err != nil {
		t.Fatal(err)
	}
	return nt, host
}

func TestNestedWalk4KAccessCount(t *testing.T) {
	nt, _ := newTestNested(t)
	if _, _, err := nt.MapIOVA(0x34800000, PageShift); err != nil {
		t.Fatal(err)
	}
	res, err := nt.Walk(0x34800040)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's count for a 4KB two-dimensional 4-level walk: 24.
	if len(res.Accesses) != 24 {
		t.Fatalf("nested 4K walk made %d accesses, want 24", len(res.Accesses))
	}
	guestReads := 0
	for _, a := range res.Accesses {
		if a.Kind == GuestEntry {
			guestReads++
		}
	}
	if guestReads != 4 {
		t.Fatalf("guest entry reads = %d, want 4", guestReads)
	}
}

func TestNestedWalk2MAccessCount(t *testing.T) {
	nt, _ := newTestNested(t)
	if _, _, err := nt.MapIOVA(0xbbe00000, HugePageShift); err != nil {
		t.Fatal(err)
	}
	res, err := nt.Walk(0xbbe54321)
	if err != nil {
		t.Fatal(err)
	}
	// Root resolution host walk (4) + 3 guest levels x (1 guest read +
	// 4 host accesses for the next table, except the final data page is
	// a 2 MB host mapping: 3 accesses) = 4 + 5 + 5 + 1 + 3 = 18.
	if len(res.Accesses) != 18 {
		t.Fatalf("nested 2M walk made %d accesses, want 18", len(res.Accesses))
	}
	if res.PageShift != HugePageShift {
		t.Fatalf("PageShift = %d, want %d", res.PageShift, HugePageShift)
	}
}

func TestNestedWalkTranslation(t *testing.T) {
	nt, _ := newTestNested(t)
	gpa, hpa, err := nt.MapIOVA(0xbbe00000, HugePageShift)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nt.Walk(0xbbe00000 + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPA != uint64(gpa)+0x1234 {
		t.Fatalf("GPA = %#x, want %#x", res.GPA, uint64(gpa)+0x1234)
	}
	if res.HPA != uint64(hpa)+0x1234 {
		t.Fatalf("HPA = %#x, want %#x", res.HPA, uint64(hpa)+0x1234)
	}
}

func TestNestedWalkFromPartial(t *testing.T) {
	nt, _ := newTestNested(t)
	if _, _, err := nt.MapIOVA(0x34800000, PageShift); err != nil {
		t.Fatal(err)
	}
	full, err := nt.Walk(0x34800040)
	if err != nil {
		t.Fatal(err)
	}
	// Resume from guest L2 (as after an L3 page-walk-cache hit).
	tbl, err := nt.TableHPA(0x34800040, 2)
	if err != nil {
		t.Fatal(err)
	}
	part, err := nt.WalkFrom(0x34800040, 2, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if part.HPA != full.HPA {
		t.Fatalf("partial walk HPA %#x != full walk %#x", part.HPA, full.HPA)
	}
	// Remaining accesses: gL2 read (1) + host for gL1 table (4) + gL1
	// read (1) + final host walk (4) = 10.
	if len(part.Accesses) != 10 {
		t.Fatalf("partial walk from L2 made %d accesses, want 10", len(part.Accesses))
	}
	// Resume from guest L1 (as after an L2 page-walk-cache hit).
	tbl1, err := nt.TableHPA(0x34800040, 1)
	if err != nil {
		t.Fatal(err)
	}
	part1, err := nt.WalkFrom(0x34800040, 1, tbl1)
	if err != nil {
		t.Fatal(err)
	}
	if part1.HPA != full.HPA {
		t.Fatalf("L1 partial walk HPA %#x != full %#x", part1.HPA, full.HPA)
	}
	if len(part1.Accesses) != 5 {
		t.Fatalf("partial walk from L1 made %d accesses, want 5", len(part1.Accesses))
	}
}

func TestNestedPartial2M(t *testing.T) {
	nt, _ := newTestNested(t)
	if _, _, err := nt.MapIOVA(0xbbe00000, HugePageShift); err != nil {
		t.Fatal(err)
	}
	full, err := nt.Walk(0xbbe00040)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := nt.TableHPA(0xbbe00040, 2)
	if err != nil {
		t.Fatal(err)
	}
	part, err := nt.WalkFrom(0xbbe00040, 2, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if part.HPA != full.HPA {
		t.Fatalf("partial 2M HPA %#x != full %#x", part.HPA, full.HPA)
	}
	// gL2 leaf read (1) + final host walk of a 2 MB host page (3) = 4.
	if len(part.Accesses) != 4 {
		t.Fatalf("partial 2M walk made %d accesses, want 4", len(part.Accesses))
	}
}

func TestTableHPAIsSilent(t *testing.T) {
	nt, host := newTestNested(t)
	if _, _, err := nt.MapIOVA(0x34800000, PageShift); err != nil {
		t.Fatal(err)
	}
	before := host.Reads()
	if _, err := nt.TableHPA(0x34800000, 2); err != nil {
		t.Fatal(err)
	}
	if host.Reads() != before {
		t.Fatalf("TableHPA changed read count: %d -> %d", before, host.Reads())
	}
}

// Property: for random nested mappings, walk translation equals the
// allocator's record and access counts match the paper's arithmetic.
func TestPropertyNestedRoundTrip(t *testing.T) {
	host := NewSpace("host", 0x100000000, 0)
	nt, err := NewNestedTable("t", 0x40000000, host)
	if err != nil {
		t.Fatal(err)
	}
	type m struct {
		hpa   Addr
		shift uint
	}
	mapped := make(map[uint64]m)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		shift := uint(PageShift)
		if rng.Intn(2) == 0 {
			shift = HugePageShift
		}
		iova := uint64(rng.Int63n(1<<40)) &^ (uint64(1)<<shift - 1)
		conflict := false
		for prev := range mapped {
			if prev>>HugePageShift == iova>>HugePageShift {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		_, hpa, err := nt.MapIOVA(iova, shift)
		if err != nil {
			t.Fatal(err)
		}
		mapped[iova] = m{hpa, shift}
	}
	for iova, want := range mapped {
		off := uint64(rng.Int63n(1 << want.shift))
		res, err := nt.Walk(iova | off)
		if err != nil {
			t.Fatalf("walk %#x: %v", iova|off, err)
		}
		if res.HPA != uint64(want.hpa)|off {
			t.Fatalf("walk %#x = %#x, want %#x", iova|off, res.HPA, uint64(want.hpa)|off)
		}
		wantN := 24
		if want.shift == HugePageShift {
			wantN = 18
		}
		if len(res.Accesses) != wantN {
			t.Fatalf("walk %#x: %d accesses, want %d", iova, len(res.Accesses), wantN)
		}
	}
}

func TestContextTable(t *testing.T) {
	ct := NewContextTable()
	ct.Set(5, ContextEntry{DID: 1, GuestRoot: 0x1000, HostRoot: 0x2000})
	e, err := ct.Lookup(5)
	if err != nil {
		t.Fatal(err)
	}
	if e.DID != 1 || e.GuestRoot != 0x1000 || e.HostRoot != 0x2000 {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := ct.Lookup(6); err == nil {
		t.Fatal("lookup of missing SID should error")
	}
	if ct.Len() != 1 {
		t.Fatalf("Len = %d", ct.Len())
	}
}

// Property (quick): levelShift/index are consistent: reassembling indices
// reproduces the original page-aligned VA.
func TestPropertyIndexDecomposition(t *testing.T) {
	f := func(raw uint64) bool {
		va := raw & (1<<48 - 1) &^ (PageSize - 1)
		var back uint64
		for level := 4; level >= 1; level-- {
			back |= index(va, level) << levelShift(level)
		}
		return back == va
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFiveLevelWalkCounts(t *testing.T) {
	// §II-A: a two-dimensional walk costs 24 memory accesses with
	// 4-level tables and 35 with 5-level ones.
	host := NewSpace("host", 0x1_0000_0000, 0)
	nt, err := NewNestedTableLevels("t5", 0x40000000, host, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nt.MapIOVA(0x34800000, PageShift); err != nil {
		t.Fatal(err)
	}
	res, err := nt.Walk(0x34800040)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accesses) != 35 {
		t.Fatalf("5-level nested 4K walk made %d accesses, want 35", len(res.Accesses))
	}
	// Translation correctness holds at depth 5 too.
	if res.HPA == 0 {
		t.Fatal("zero hPA")
	}
	res2, err := nt.Walk(0x34800040)
	if err != nil || res2.HPA != res.HPA {
		t.Fatalf("repeat walk diverged: %v %#x vs %#x", err, res2.HPA, res.HPA)
	}
}

func TestFiveLevelSingleDimension(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTableLevels(s, 5)
	if pt.Levels() != 5 {
		t.Fatalf("Levels = %d", pt.Levels())
	}
	// A 5-level table can map VAs beyond the 4-level 48-bit limit.
	va := uint64(1)<<52 | 0x123000
	if err := pt.Map(va, 0xabc000, PageShift); err != nil {
		t.Fatal(err)
	}
	res, err := pt.Walk(va | 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0xabc042 {
		t.Fatalf("PA = %#x", res.PA)
	}
	if len(res.Accesses) != 5 {
		t.Fatalf("5-level walk made %d accesses, want 5", len(res.Accesses))
	}
}

func TestBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth 3 did not panic")
		}
	}()
	NewPageTableLevels(NewSpace("t", 0, 0), 3)
}

func TestUnmapRemap(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	if err := pt.Map(0x1000, 0x2000, PageShift); err != nil {
		t.Fatal(err)
	}
	ok, err := pt.Unmap(0x1000, PageShift)
	if err != nil || !ok {
		t.Fatalf("Unmap: %v %v", ok, err)
	}
	if _, err := pt.Walk(0x1000); err == nil {
		t.Fatal("walk succeeded after unmap")
	}
	// Unmapping again reports absent.
	ok, err = pt.Unmap(0x1000, PageShift)
	if err != nil || ok {
		t.Fatalf("double Unmap: %v %v", ok, err)
	}
	// Remap reuses the intermediate tables.
	tables := s.TableCount()
	if err := pt.Map(0x1000, 0x3000, PageShift); err != nil {
		t.Fatal(err)
	}
	if s.TableCount() != tables {
		t.Fatal("remap allocated new table pages")
	}
	res, err := pt.Walk(0x1000)
	if err != nil || res.PA != 0x3000 {
		t.Fatalf("walk after remap: %v %#x", err, res.PA)
	}
}

func TestUnmapValidation(t *testing.T) {
	s := NewSpace("t", 0, 0)
	pt := NewPageTable(s)
	if _, err := pt.Unmap(0x1001, PageShift); err == nil {
		t.Fatal("misaligned unmap accepted")
	}
	if _, err := pt.Unmap(0x1000, 13); err == nil {
		t.Fatal("bogus shift accepted")
	}
	// Unmapping 4K inside a huge leaf is an error.
	if err := pt.Map(0x200000, 0x400000, HugePageShift); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Unmap(0x201000, PageShift); err == nil {
		t.Fatal("unmap under huge leaf accepted")
	}
}

func TestNestedUnmapRemap(t *testing.T) {
	host := NewSpace("host", 0x1_0000_0000, 0)
	nt, err := NewNestedTable("t", 0x40000000, host)
	if err != nil {
		t.Fatal(err)
	}
	gpa, _, err := nt.MapIOVA(0xbbe00000, HugePageShift)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := nt.UnmapIOVA(0xbbe00000, HugePageShift)
	if err != nil || !ok {
		t.Fatalf("UnmapIOVA: %v %v", ok, err)
	}
	if _, err := nt.Walk(0xbbe00040); err == nil {
		t.Fatal("nested walk succeeded after unmap")
	}
	if err := nt.RemapIOVA(0xbbe00000, gpa, HugePageShift); err != nil {
		t.Fatal(err)
	}
	res, err := nt.Walk(0xbbe00040)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPA != uint64(gpa)+0x40 {
		t.Fatalf("remap GPA %#x", res.GPA)
	}
}

// TestMutationEpoch pins the counters the IOMMU's walk-memoization
// layer keys its validity checks on: every mutation path through either
// walk dimension strictly increases Epoch, and ReplayReads charges host
// reads without touching a table page.
func TestMutationEpoch(t *testing.T) {
	host := NewSpace("host", 0x1_0000_0000, 0)
	nt, err := NewNestedTable("t", 0x40000000, host)
	if err != nil {
		t.Fatal(err)
	}
	e0 := nt.Epoch()
	gpa, _, err := nt.MapIOVA(0x1000_0000, PageShift)
	if err != nil {
		t.Fatal(err)
	}
	e1 := nt.Epoch()
	if e1 <= e0 {
		t.Fatalf("MapIOVA did not advance the epoch: %d -> %d", e0, e1)
	}
	if g := nt.Guest().Mutations(); g == 0 {
		t.Fatal("guest table reports zero mutations after MapIOVA")
	}
	if _, err := nt.UnmapIOVA(0x1000_0000, PageShift); err != nil {
		t.Fatal(err)
	}
	e2 := nt.Epoch()
	if e2 <= e1 {
		t.Fatalf("UnmapIOVA did not advance the epoch: %d -> %d", e1, e2)
	}
	if err := nt.RemapIOVA(0x1000_0000, gpa, PageShift); err != nil {
		t.Fatal(err)
	}
	if nt.Epoch() <= e2 {
		t.Fatalf("RemapIOVA did not advance the epoch: %d -> %d", e2, nt.Epoch())
	}

	// ReplayReads is pure accounting: read counter moves, epoch does not.
	before, eBefore := host.Reads(), nt.Epoch()
	nt.ReplayReads(24)
	if host.Reads() != before+24 {
		t.Fatalf("ReplayReads(24) moved reads %d -> %d", before, host.Reads())
	}
	if nt.Epoch() != eBefore {
		t.Fatal("ReplayReads changed the epoch")
	}
}
