package mem

import (
	"fmt"
	"sort"
)

// SID is a Source ID: the PCIe Bus/Device/Function identity of a tenant's
// virtual function. The hypervisor assigns SIDs when a VF is attached, so
// the translation hardware can key per-tenant state on it.
type SID uint16

// ContextEntry is what the IOMMU's context table stores per SID: the
// domain ID and the roots of the tenant's two translation dimensions.
type ContextEntry struct {
	DID       uint16 // domain (tenant) identifier configured by the host
	GuestRoot Addr   // guest-physical address of the guest L4 table
	HostRoot  Addr   // host-physical address of the host L4 table
}

// ContextTable is the in-memory structure the IOMMU consults on a context
// cache miss. Reading an entry costs ReadAccesses memory accesses (the
// VT-d root table plus the context table itself).
type ContextTable struct {
	entries map[SID]ContextEntry
}

// ContextReadAccesses is the number of physical memory accesses one
// context-table lookup costs on a context-cache miss: one read of the
// root-table entry and one of the context entry.
const ContextReadAccesses = 2

// NewContextTable returns an empty context table.
func NewContextTable() *ContextTable {
	return &ContextTable{entries: make(map[SID]ContextEntry)}
}

// Set installs or replaces the entry for sid.
func (ct *ContextTable) Set(sid SID, e ContextEntry) { ct.entries[sid] = e }

// Lookup returns the entry for sid.
func (ct *ContextTable) Lookup(sid SID) (ContextEntry, error) {
	e, ok := ct.entries[sid]
	if !ok {
		return ContextEntry{}, fmt.Errorf("mem: no context entry for SID %#x", uint16(sid))
	}
	return e, nil
}

// Len reports the number of installed entries.
func (ct *ContextTable) Len() int { return len(ct.entries) }

// SIDs returns all installed SIDs in ascending order. The order is
// pinned so that any consumer walking every tenant (sweeps, serializers,
// future invalidate-all commands) is deterministic by construction.
func (ct *ContextTable) SIDs() []SID {
	out := make([]SID, 0, len(ct.entries))
	for sid := range ct.entries {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
