package mem

import (
	"fmt"
	"sort"
)

// SID is a Source ID: the PCIe Bus/Device/Function identity of a tenant's
// virtual function. The hypervisor assigns SIDs when a VF is attached, so
// the translation hardware can key per-tenant state on it. 32 bits cover
// the million-tenant regime the scale-out experiments model (real
// hardware segments the ID space across IOMMUs at that scale).
type SID uint32

// ContextEntry is what the IOMMU's context table stores per SID: the
// domain ID and the roots of the tenant's two translation dimensions.
type ContextEntry struct {
	DID       uint32 // domain (tenant) identifier configured by the host
	GuestRoot Addr   // guest-physical address of the guest L4 table
	HostRoot  Addr   // host-physical address of the host L4 table
}

// ContextTable is the in-memory structure the IOMMU consults on a context
// cache miss. Reading an entry costs ReadAccesses memory accesses (the
// VT-d root table plus the context table itself). Entries live in a dense
// SID-indexed array — SIDs are dense by construction (1..Tenants) — so a
// lookup is one bounds check and one indexed load even at 10⁶ tenants.
type ContextTable struct {
	entries []ContextEntry // indexed by SID
	present []bool
	count   int

	// sids caches the ascending-SID view SIDs() hands out; it is rebuilt
	// lazily (sorted flag) only when entries were installed out of order.
	sids   []SID
	sorted bool
}

// ContextReadAccesses is the number of physical memory accesses one
// context-table lookup costs on a context-cache miss: one read of the
// root-table entry and one of the context entry.
const ContextReadAccesses = 2

// NewContextTable returns an empty context table.
func NewContextTable() *ContextTable {
	return &ContextTable{sorted: true}
}

// Reserve pre-sizes the table for SIDs up to maxSID, so dense
// registration of large tenant populations does not pay repeated growth.
func (ct *ContextTable) Reserve(maxSID SID) {
	n := int(maxSID) + 1
	if cap(ct.entries) < n {
		entries := make([]ContextEntry, len(ct.entries), n)
		copy(entries, ct.entries)
		ct.entries = entries
		present := make([]bool, len(ct.present), n)
		copy(present, ct.present)
		ct.present = present
	}
	if cap(ct.sids) < n-1 {
		sids := make([]SID, len(ct.sids), n-1)
		copy(sids, ct.sids)
		ct.sids = sids
	}
}

// Set installs or replaces the entry for sid.
func (ct *ContextTable) Set(sid SID, e ContextEntry) {
	for len(ct.entries) <= int(sid) {
		ct.entries = append(ct.entries, ContextEntry{})
		ct.present = append(ct.present, false)
	}
	ct.entries[sid] = e
	if !ct.present[sid] {
		ct.present[sid] = true
		ct.count++
		if n := len(ct.sids); n > 0 && ct.sids[n-1] > sid {
			ct.sorted = false
		}
		ct.sids = append(ct.sids, sid)
	}
}

// Lookup returns the entry for sid.
func (ct *ContextTable) Lookup(sid SID) (ContextEntry, error) {
	if int(sid) >= len(ct.entries) || !ct.present[sid] {
		return ContextEntry{}, fmt.Errorf("mem: no context entry for SID %#x", uint32(sid))
	}
	return ct.entries[sid], nil
}

// Len reports the number of installed entries.
func (ct *ContextTable) Len() int { return ct.count }

// SIDs returns all installed SIDs in ascending order. The order is
// pinned so that any consumer walking every tenant (sweeps, serializers,
// future invalidate-all commands) is deterministic by construction.
//
// The returned slice is the table's cached view: callers must treat it
// as read-only, and a later Set invalidates it. Registration is normally
// already ascending, so repeated calls cost nothing beyond the first
// out-of-order sort — no per-call copy or sort of a million-entry slice.
func (ct *ContextTable) SIDs() []SID {
	if !ct.sorted {
		sort.Slice(ct.sids, func(i, j int) bool { return ct.sids[i] < ct.sids[j] })
		ct.sorted = true
	}
	return ct.sids
}
