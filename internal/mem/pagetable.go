package mem

import "fmt"

// PageTable is a 4- or 5-level radix page table whose table pages live
// in a Space. Entries are written by Map and read back by Walk, so a walk
// is a genuine traversal of simulated memory, not a lookup in a Go map.
// 5-level tables model the paper's second walk-cost data point (§II-A: a
// two-dimensional walk costs 24 memory accesses with 4-level tables and
// 35 with 5-level ones).
type PageTable struct {
	space  *Space
	root   Addr
	levels int

	// mutations counts Map/Unmap calls. It only ever grows, so an equal
	// snapshot proves the table is unchanged — the validity check behind
	// the IOMMU's walk-memoization layer (see NestedTable.Epoch).
	mutations uint64
}

// NewPageTable allocates a root table page in space for a 4-level table.
func NewPageTable(space *Space) *PageTable {
	return NewPageTableLevels(space, Levels)
}

// NewPageTableLevels allocates a table with the given depth (4 or 5).
func NewPageTableLevels(space *Space, levels int) *PageTable {
	if levels != 4 && levels != 5 {
		panic(fmt.Sprintf("mem: unsupported page-table depth %d", levels))
	}
	return &PageTable{space: space, root: space.AllocTable(), levels: levels}
}

// Root returns the physical address of the top-level table page.
func (pt *PageTable) Root() Addr { return pt.root }

// Levels returns the table depth (4 or 5).
func (pt *PageTable) Levels() int { return pt.levels }

// Space returns the address space the table pages live in.
func (pt *PageTable) Space() *Space { return pt.space }

// Mutations returns the monotone count of Map/Unmap calls against this
// table. Cached walk results snapshot it and revalidate by equality.
func (pt *PageTable) Mutations() uint64 { return pt.mutations }

// levelShift returns the VA shift for a level (4 -> 39, 3 -> 30, 2 -> 21, 1 -> 12).
func levelShift(level int) uint { return uint(PageShift + 9*(level-1)) }

// index extracts the table index for a level from a virtual address.
func index(va uint64, level int) uint64 {
	return (va >> levelShift(level)) & (EntriesPerTable - 1)
}

// leafLevel maps a page-size shift to the level at which its leaf entry
// sits: 12 -> L1, 21 -> L2, 30 -> L3.
func leafLevel(pageShift uint) (int, error) {
	switch pageShift {
	case PageShift:
		return 1, nil
	case HugePageShift:
		return 2, nil
	case GiantPageShift:
		return 3, nil
	}
	return 0, fmt.Errorf("mem: unsupported page shift %d", pageShift)
}

// Map installs a translation va -> pa for a page of size 1<<pageShift,
// creating intermediate table pages as needed. Both va and pa must be
// aligned to the page size. Remapping an existing leaf overwrites it;
// mapping a huge page over existing finer tables is rejected.
func (pt *PageTable) Map(va, pa uint64, pageShift uint) error {
	leaf, err := leafLevel(pageShift)
	if err != nil {
		return err
	}
	pt.mutations++
	mask := uint64(1)<<pageShift - 1
	if va&mask != 0 {
		return fmt.Errorf("mem: va %#x not aligned to %d-byte page", va, 1<<pageShift)
	}
	if pa&mask != 0 {
		return fmt.Errorf("mem: pa %#x not aligned to %d-byte page", pa, 1<<pageShift)
	}
	cur := pt.root
	for level := pt.levels; level > leaf; level-- {
		entryAddr := cur + Addr(index(va, level)*8)
		e, err := pt.space.ReadEntry(entryAddr)
		if err != nil {
			return err
		}
		if e&ptePresent == 0 {
			next := pt.space.AllocTable()
			if err := pt.space.WriteEntry(entryAddr, uint64(next)&pteAddrMask|ptePresent); err != nil {
				return err
			}
			cur = next
			continue
		}
		if e&ptePageSize != 0 {
			return fmt.Errorf("mem: va %#x already mapped by a level-%d leaf", va, level)
		}
		cur = Addr(e & pteAddrMask)
	}
	leafEntry := pa&^mask | ptePresent
	if leaf > 1 {
		leafEntry |= ptePageSize
	}
	return pt.space.WriteEntry(cur+Addr(index(va, leaf)*8), leafEntry)
}

// Access records one physical read performed during a walk.
type Access struct {
	Addr  Addr // entry address that was read
	Level int  // table level the entry belonged to (4..1)
}

// WalkResult is the outcome of a single-dimensional page-table walk.
type WalkResult struct {
	PA        uint64   // translated physical address (page base + offset)
	PageShift uint     // size of the mapping that was hit
	Accesses  []Access // entry reads, in order
}

// ErrNotMapped is returned (wrapped) when a walk finds a non-present entry.
type NotMappedError struct {
	VA    uint64
	Level int
}

func (e *NotMappedError) Error() string {
	return fmt.Sprintf("mem: va %#x not mapped (level %d entry not present)", e.VA, e.Level)
}

// Walk translates va by reading entries from simulated memory. startLevel
// and startTable allow resuming a partial walk (page-walk-cache hit);
// pass Levels and Root for a full walk.
func (pt *PageTable) WalkFrom(va uint64, startLevel int, startTable Addr) (WalkResult, error) {
	return pt.WalkFromInto(va, startLevel, startTable, nil)
}

// WalkFromInto is WalkFrom appending the walk's accesses onto acc, which
// callers on the hot path pass as a reused scratch buffer (acc[:0]) so a
// warm walk performs no allocation. The returned result's Accesses is
// the extended slice; with a nil acc it behaves exactly like WalkFrom.
func (pt *PageTable) WalkFromInto(va uint64, startLevel int, startTable Addr, acc []Access) (WalkResult, error) {
	res := WalkResult{Accesses: acc}
	cur := startTable
	for level := startLevel; level >= 1; level-- {
		entryAddr := cur + Addr(index(va, level)*8)
		e, err := pt.space.ReadEntry(entryAddr)
		if err != nil {
			return res, err
		}
		res.Accesses = append(res.Accesses, Access{Addr: entryAddr, Level: level})
		if e&ptePresent == 0 {
			return res, &NotMappedError{VA: va, Level: level}
		}
		if level == 1 || e&ptePageSize != 0 {
			shift := levelShift(level)
			res.PageShift = shift
			res.PA = e&pteAddrMask&^(uint64(1)<<shift-1) | va&(uint64(1)<<shift-1)
			return res, nil
		}
		cur = Addr(e & pteAddrMask)
	}
	return res, fmt.Errorf("mem: walk of %#x fell through", va)
}

// Walk performs a full walk from the root.
func (pt *PageTable) Walk(va uint64) (WalkResult, error) {
	return pt.WalkFrom(va, pt.levels, pt.root)
}

// Unmap clears the leaf entry for va at the given page size, returning
// whether a mapping was present. Intermediate table pages are left in
// place (as real kernels usually do); a subsequent Map of the same
// region reuses them.
func (pt *PageTable) Unmap(va uint64, pageShift uint) (bool, error) {
	leaf, err := leafLevel(pageShift)
	if err != nil {
		return false, err
	}
	pt.mutations++
	mask := uint64(1)<<pageShift - 1
	if va&mask != 0 {
		return false, fmt.Errorf("mem: unmap va %#x not aligned to %d-byte page", va, 1<<pageShift)
	}
	cur := pt.root
	for level := pt.levels; level > leaf; level-- {
		e, err := pt.space.ReadEntry(cur + Addr(index(va, level)*8))
		if err != nil {
			return false, err
		}
		if e&ptePresent == 0 {
			return false, nil
		}
		if e&ptePageSize != 0 {
			return false, fmt.Errorf("mem: unmap %#x at shift %d crosses a level-%d leaf", va, pageShift, level)
		}
		cur = Addr(e & pteAddrMask)
	}
	entryAddr := cur + Addr(index(va, leaf)*8)
	e, err := pt.space.ReadEntry(entryAddr)
	if err != nil {
		return false, err
	}
	if e&ptePresent == 0 {
		return false, nil
	}
	return true, pt.space.WriteEntry(entryAddr, 0)
}
