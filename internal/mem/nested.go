package mem

import "fmt"

// NestedKind classifies one physical access inside a two-dimensional walk,
// so the IOMMU model can attribute latency and cache behaviour.
type NestedKind uint8

const (
	// HostForGuest is a host-table read performed to translate the guest
	// physical address of a guest table page (or of the final data page).
	HostForGuest NestedKind = iota
	// GuestEntry is the read of a guest page-table entry itself.
	GuestEntry
)

func (k NestedKind) String() string {
	switch k {
	case HostForGuest:
		return "host"
	case GuestEntry:
		return "guest"
	}
	return fmt.Sprintf("NestedKind(%d)", uint8(k))
}

// NestedAccess is one physical (host) memory access of a nested walk.
type NestedAccess struct {
	HostAddr   Addr // host-physical address that was read
	Kind       NestedKind
	GuestLevel int // guest level being resolved (4..1; 0 for the final host walk)
}

// NestedResult is the outcome of a full or partial two-dimensional walk.
type NestedResult struct {
	HPA       uint64 // host-physical translation of the input gIOVA
	GPA       uint64 // intermediate guest-physical address
	PageShift uint   // guest page size that was hit
	Accesses  []NestedAccess
}

// NestedTable models one tenant's two-dimensional translation: a guest
// page table (gIOVA -> gPA) whose table pages live in guest-physical
// space, and a host page table (gPA -> hPA) that also translates the
// guest table pages themselves. A full walk of a 4 KB mapping performs
// 24 physical accesses, a 2 MB guest mapping 19, matching the counts the
// paper uses (§II-A, Table II).
type NestedTable struct {
	guestSpace *Space
	guest      *PageTable
	host       *PageTable
	hostSpace  *Space

	// guestFrames maps every guest-physical frame we allocated (table
	// pages and data pages) to its host frame; used to keep the host
	// table complete and by tests.
	guestFrames map[Addr]Addr

	// hostBuf is the reused scratch for the host-dimension accesses of a
	// single walk step, so steady-state walks allocate nothing. Walks are
	// engine-serial per tenant, so one buffer suffices.
	hostBuf []Access
}

// NewNestedTable builds an empty nested translation for one tenant with
// 4-level tables. guestBase is where the tenant's guest-physical
// allocations start (every tenant may use the same guest-physical layout
// — isolation comes from the per-tenant host table). hostSpace is the
// shared host physical memory.
func NewNestedTable(name string, guestBase Addr, hostSpace *Space) (*NestedTable, error) {
	return NewNestedTableLevels(name, guestBase, hostSpace, Levels)
}

// NewNestedTableLevels builds the nested translation with the given table
// depth in both dimensions (4 or 5; §II-A's 24- vs 35-access walks).
func NewNestedTableLevels(name string, guestBase Addr, hostSpace *Space, levels int) (*NestedTable, error) {
	nt := &NestedTable{
		guestSpace:  NewSpace(name+"/guest", guestBase, 0),
		hostSpace:   hostSpace,
		guestFrames: make(map[Addr]Addr),
	}
	nt.host = NewPageTableLevels(hostSpace, levels)
	nt.guest = NewPageTableLevels(nt.guestSpace, levels)
	// The guest root table page itself needs a host mapping.
	if err := nt.adoptGuestTables(); err != nil {
		return nil, err
	}
	return nt, nil
}

// Guest returns the guest (first-level) page table.
func (nt *NestedTable) Guest() *PageTable { return nt.guest }

// Host returns the host (second-level) page table.
func (nt *NestedTable) Host() *PageTable { return nt.host }

// GuestRoot returns the guest-physical address of the guest L4 table.
func (nt *NestedTable) GuestRoot() Addr { return nt.guest.Root() }

// HostRoot returns the host-physical address of the host L4 table.
func (nt *NestedTable) HostRoot() Addr { return nt.host.Root() }

// adoptGuestTables host-maps any guest table pages that do not have a
// host frame yet. Guest tables are created lazily by guest.Map, so this
// runs after every MapIOVA.
func (nt *NestedTable) adoptGuestTables() error {
	// Iterate the registration-order slice directly: the guest bump
	// allocator hands out ascending addresses, so the order matches the
	// sorted TableAddrs() view without building a copy per MapIOVA.
	for _, gpa := range nt.guestSpace.tableAddrs {
		if _, ok := nt.guestFrames[gpa]; ok {
			continue
		}
		hpa := nt.hostSpace.AllocFrame(PageShift)
		if err := nt.host.Map(uint64(gpa), uint64(hpa), PageShift); err != nil {
			return fmt.Errorf("mem: host-mapping guest table %#x: %w", uint64(gpa), err)
		}
		// Alias the guest table page's contents at its host-physical
		// address so the nested walker can read guest entries through
		// host physical memory, as real hardware does.
		if err := nt.hostSpace.AliasTable(hpa, nt.guestSpace, gpa); err != nil {
			return err
		}
		nt.guestFrames[gpa] = hpa
	}
	return nil
}

// MapIOVA allocates a fresh guest-physical page of size 1<<pageShift,
// maps iova to it in the guest table, allocates backing host memory and
// maps the guest page in the host table. It returns the guest-physical
// and host-physical bases of the new page.
func (nt *NestedTable) MapIOVA(iova uint64, pageShift uint) (gpa, hpa Addr, err error) {
	gpa = nt.guestSpace.AllocFrame(pageShift)
	if err = nt.guest.Map(iova, uint64(gpa), pageShift); err != nil {
		return 0, 0, err
	}
	if err = nt.adoptGuestTables(); err != nil {
		return 0, 0, err
	}
	hpa = nt.hostSpace.AllocFrame(pageShift)
	if err = nt.host.Map(uint64(gpa), uint64(hpa), pageShift); err != nil {
		return 0, 0, err
	}
	nt.guestFrames[gpa] = hpa
	return gpa, hpa, nil
}

// hostTranslate runs the host dimension for one guest-physical address and
// appends its accesses. It walks through the reused hostBuf scratch, so a
// warm host walk allocates nothing.
func (nt *NestedTable) hostTranslate(gpa uint64, guestLevel int, acc *[]NestedAccess) (uint64, error) {
	res, err := nt.host.WalkFromInto(gpa, nt.host.levels, nt.host.root, nt.hostBuf[:0])
	nt.hostBuf = res.Accesses[:0]
	for _, a := range res.Accesses {
		*acc = append(*acc, NestedAccess{HostAddr: a.Addr, Kind: HostForGuest, GuestLevel: guestLevel})
	}
	if err != nil {
		return 0, err
	}
	return res.PA, nil
}

// WalkFrom performs the two-dimensional walk starting at guest level
// startLevel with the guest table page already resolved to host-physical
// address tableHPA. A page-walk-cache hit supplies (startLevel, tableHPA);
// a full walk uses startLevel = Levels+1 semantics via Walk.
func (nt *NestedTable) WalkFrom(iova uint64, startLevel int, tableHPA Addr) (NestedResult, error) {
	return nt.WalkFromInto(iova, startLevel, tableHPA, nil)
}

// WalkFromInto is WalkFrom appending the walk's accesses onto acc (a
// reused scratch buffer on the hot path; nil for the allocating form).
func (nt *NestedTable) WalkFromInto(iova uint64, startLevel int, tableHPA Addr, acc []NestedAccess) (NestedResult, error) {
	res := NestedResult{Accesses: acc}
	curHost := tableHPA
	for level := startLevel; level >= 1; level-- {
		entryHost := curHost + Addr(index(iova, level)*8)
		e, err := nt.hostSpace.ReadEntry(entryHost)
		if err != nil {
			return res, err
		}
		res.Accesses = append(res.Accesses, NestedAccess{HostAddr: entryHost, Kind: GuestEntry, GuestLevel: level})
		if e&ptePresent == 0 {
			return res, &NotMappedError{VA: iova, Level: level}
		}
		if level == 1 || e&ptePageSize != 0 {
			shift := levelShift(level)
			res.PageShift = shift
			res.GPA = e&pteAddrMask&^(uint64(1)<<shift-1) | iova&(uint64(1)<<shift-1)
			hpa, err := nt.hostTranslate(res.GPA, 0, &res.Accesses)
			if err != nil {
				return res, err
			}
			res.HPA = hpa
			return res, nil
		}
		// Entry points at the next guest table by guest-physical address;
		// resolve that gPA through the host table.
		nextGPA := e & pteAddrMask
		nextHost, err := nt.hostTranslate(nextGPA, level-1, &res.Accesses)
		if err != nil {
			return res, err
		}
		curHost = Addr(nextHost)
	}
	return res, fmt.Errorf("mem: nested walk of %#x fell through", iova)
}

// Walk performs the full two-dimensional walk of iova: it first resolves
// the guest root's gPA through the host table, then descends guest levels,
// translating every guest table pointer through the host dimension.
func (nt *NestedTable) Walk(iova uint64) (NestedResult, error) {
	return nt.WalkInto(iova, nil)
}

// WalkInto is Walk appending the walk's accesses onto acc (a reused
// scratch buffer on the hot path; nil for the allocating form).
func (nt *NestedTable) WalkInto(iova uint64, acc []NestedAccess) (NestedResult, error) {
	res := NestedResult{Accesses: acc}
	rootHost, err := nt.hostTranslate(uint64(nt.guest.Root()), nt.guest.levels, &res.Accesses)
	if err != nil {
		return res, err
	}
	return nt.WalkFromInto(iova, nt.guest.levels, Addr(rootHost), res.Accesses)
}

// TableHPA returns the host-physical address of the guest table page that
// a partial walk resumes from at the given guest level, by performing a
// silent (uncounted) walk. The IOMMU model uses it when installing
// page-walk-cache entries.
func (nt *NestedTable) TableHPA(iova uint64, level int) (Addr, error) {
	// Silent walk: replay the descent without recording accesses.
	curGPA := uint64(nt.guest.Root())
	for l := nt.guest.levels; l > level; l-- {
		hostRes, err := nt.host.WalkFromInto(curGPA, nt.host.levels, nt.host.root, nt.hostBuf[:0])
		nt.hostBuf = hostRes.Accesses[:0]
		if err != nil {
			return 0, err
		}
		nt.hostSpace.reads -= uint64(len(hostRes.Accesses)) // silent
		entryHost := Addr(hostRes.PA) + Addr(index(iova, l)*8)
		e, err := nt.hostSpace.ReadEntry(entryHost)
		if err != nil {
			return 0, err
		}
		nt.hostSpace.reads-- // silent
		if e&ptePresent == 0 {
			return 0, &NotMappedError{VA: iova, Level: l}
		}
		if e&ptePageSize != 0 {
			return 0, fmt.Errorf("mem: no level-%d table for %#x (level-%d leaf)", level, iova, l)
		}
		curGPA = e & pteAddrMask
	}
	hostRes, err := nt.host.WalkFromInto(curGPA, nt.host.levels, nt.host.root, nt.hostBuf[:0])
	nt.hostBuf = hostRes.Accesses[:0]
	if err != nil {
		return 0, err
	}
	nt.hostSpace.reads -= uint64(len(hostRes.Accesses))
	return Addr(hostRes.PA), nil
}

// Epoch summarizes the mutation state of both walk dimensions. The two
// mutation counters only grow, so any Map/Unmap against either table —
// driver unmaps, fault-plan remaps, lazy table adoption — strictly
// increases the epoch, and an equal snapshot proves every walk through
// this table still returns exactly what it returned when the snapshot
// was taken. The IOMMU's walk-memoization layer keys its validity checks
// on it.
func (nt *NestedTable) Epoch() uint64 {
	return nt.guest.mutations + nt.host.mutations
}

// ReplayReads charges n entry reads to host physical memory without
// touching any table page — the accounting half of replaying a memoized
// walk, which must leave the read counters exactly as the real walk
// would have.
func (nt *NestedTable) ReplayReads(n int) {
	nt.hostSpace.reads += uint64(n)
}

// UnmapIOVA removes the guest mapping for iova (driver unmap). The
// guest-physical frame stays host-mapped: only the gIOVA becomes
// untranslatable until the driver maps it again.
func (nt *NestedTable) UnmapIOVA(iova uint64, pageShift uint) (bool, error) {
	return nt.guest.Unmap(iova, uint(pageShift))
}

// RemapIOVA reinstalls a translation for iova onto an existing
// guest-physical page (the driver recycling a buffer page).
func (nt *NestedTable) RemapIOVA(iova uint64, gpa Addr, pageShift uint) error {
	return nt.guest.Map(iova, uint64(gpa), uint(pageShift))
}
