// Package workload models per-tenant gIOVA request streams for the three
// I/O-intensive benchmarks the paper evaluates (iperf3, CloudSuite
// mediastream and websearch), replacing HyperSIO's QEMU-based log
// collector with synthetic generators calibrated to the paper's own
// characterization (§IV-D, Fig. 8, Table III):
//
//   - every packet triggers three translations: ring-buffer pointer,
//     data buffer, and interrupt-mailbox notification;
//   - one hot 4 KB page holds the ring buffer and is touched on every
//     packet (it is seen ~30x more often than any data page);
//   - data buffers live in 2 MB huge pages that are walked sequentially
//     ~1500 accesses at a time in a periodic ring, the driver unmapping a
//     page when its buffers are consumed;
//   - ~70 4 KB pages are touched a few times right after NIC init;
//   - all tenants run the same guest OS and driver, so they use the SAME
//     gIOVA values — the cross-tenant conflict at the heart of the paper.
package workload

import (
	"fmt"

	"hypertrio/internal/mem"
)

// Kind identifies one of the paper's three benchmarks.
type Kind uint8

const (
	// Iperf3 is the throughput-oriented network-stack stressor: the most
	// regular stream, with a small active translation set (8).
	Iperf3 Kind = iota
	// Mediastream is CloudSuite 3's video-serving benchmark: long
	// sequential runs over a large buffer set (active set 32).
	Mediastream
	// Websearch is CloudSuite 3's index-serving benchmark: the least
	// regular stream (active set 36).
	Websearch
)

// Kinds lists all benchmarks in presentation order.
var Kinds = []Kind{Iperf3, Mediastream, Websearch}

func (k Kind) String() string {
	switch k {
	case Iperf3:
		return "iperf3"
	case Mediastream:
		return "mediastream"
	case Websearch:
		return "websearch"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind converts a benchmark name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "iperf3", "iperf":
		return Iperf3, nil
	case "mediastream", "media":
		return Mediastream, nil
	case "websearch", "web":
		return Websearch, nil
	}
	return 0, fmt.Errorf("workload: unknown benchmark %q", s)
}

// Canonical gIOVA layout, shared by every tenant (same guest OS and
// driver version — §IV-D multi-tenant observation): tenants draw their
// ring/mailbox pages from the same small window and use the same
// data-buffer and init regions, so identical page addresses across
// tenants are common (the conflict behaviour the paper studies) without
// being universal. Values follow the paper's recorded ranges.
const (
	// RingIOVA is the bottom of the small window of 4 KB pages holding
	// ring-buffer descriptors; one page per tenant, translated for every
	// arriving packet (Fig. 8a group 1).
	RingIOVA = 0x34800000
	// RingSlots is how many distinct ring-page addresses guest drivers
	// allocate across tenants; tenants whose SIDs are congruent modulo
	// RingSlots use the same gIOVA ring page.
	RingSlots = 8
	// DataBase is the bottom of the 2 MB data-buffer region
	// (Fig. 8a group 2: 0xbbe00000–0xbfe00000), identical across tenants.
	DataBase = 0xbbe00000
	// SmallDataBase is the bottom of the 4 KB data-buffer region used by
	// guests that run without hugepages (Profile.SmallData) — the
	// configuration of the paper's §II-B hardware case studies, where
	// buffers are recycled every couple of packets.
	SmallDataBase = 0xe0000000
	// InitBase is the bottom of the 4 KB init-time page region
	// (Fig. 8a group 3: 0xf0000000–0xffffffff).
	InitBase = 0xf0000000
)

// RingPageFor returns the tenant's ring-descriptor page base: a slot in
// the shared ring window, so distinct tenants frequently share the exact
// address.
func RingPageFor(sid mem.SID) uint64 {
	return RingIOVA + uint64(sid%RingSlots)*0x2000
}

// MailboxFor returns the tenant's interrupt-mailbox page, adjacent to
// its ring page.
func MailboxFor(sid mem.SID) uint64 { return RingPageFor(sid) + 0x1000 }

// Profile is the per-benchmark calibration of the stream generator.
type Profile struct {
	Kind Kind

	// DataPages is the number of 2 MB data-buffer pages the driver
	// cycles through (the paper observed 32 for mediastream).
	DataPages int
	// Streams is the number of concurrently live buffer cursors; the
	// active translation set is Streams + 2 (ring + mailbox), matching
	// the paper's measured active sets of 8/32/36 (§V-C). Stream 0 is
	// the primary stream and receives most packets (Fig. 8b's long
	// sequential runs); the rest are touched in the background at
	// BackgroundChance, keeping their pages live.
	Streams int
	// BackgroundChance is the per-packet probability (in 1/256 units)
	// of touching a background stream instead of the primary one.
	BackgroundChance uint8
	// RunLength is how many packets touch one data page before the
	// stream's cursor advances to the next page and the driver unmaps
	// the old one (~1500 in Fig. 8b).
	RunLength int
	// InitPages / InitTouches describe the startup-only 4 KB pages
	// (group 3): InitPages pages touched InitTouches times each before
	// steady state.
	InitPages   int
	InitTouches int
	// JumpChance is the per-run probability (in 1/256 units) that a
	// stream jumps to a random page instead of the next one — the
	// irregularity that separates websearch from iperf3.
	JumpChance uint8

	// MinRequests/MaxRequests bound the per-tenant translation-request
	// budget at scale 1.0 (Table III).
	MinRequests int
	MaxRequests int

	// SmallData switches the tenant's data buffers from 2 MB huge pages
	// to 4 KB pages (guests without hugepage-backed buffers, as in the
	// paper's hardware case studies). DataPages then counts 4 KB pages
	// and RunLength is typically 2-3 packets (a 1500 B packet fills most
	// of a 4 KB buffer), so the driver unmaps pages at a much higher
	// rate.
	SmallData bool
}

// DataShift returns the page-size shift of the profile's data buffers.
func (p Profile) DataShift() uint8 {
	if p.SmallData {
		return mem.PageShift
	}
	return mem.HugePageShift
}

// DataRegionBase returns the bottom of the profile's data-buffer region.
func (p Profile) DataRegionBase() uint64 {
	if p.SmallData {
		return SmallDataBase
	}
	return DataBase
}

// SmallDataVariant converts a calibrated profile to its 4 KB-buffer
// equivalent: the driver cycles a ring of 4 KB buffers, recycling each
// mapped buffer a few dozen times before unmapping it (buffer pools),
// so the per-tenant hot set grows and unmap churn rises relative to the
// hugepage-backed profiles.
func SmallDataVariant(p Profile) Profile {
	p.SmallData = true
	p.DataPages = 512
	p.RunLength = 32
	return p
}

// ProfileFor returns the calibrated profile for a benchmark.
func ProfileFor(k Kind) Profile {
	switch k {
	case Iperf3:
		return Profile{
			Kind: Iperf3, DataPages: 16, Streams: 6, BackgroundChance: 13,
			RunLength: 1400, InitPages: 20, InitTouches: 3, JumpChance: 0,
			MinRequests: 68079, MaxRequests: 108510,
		}
	case Mediastream:
		return Profile{
			Kind: Mediastream, DataPages: 32, Streams: 30, BackgroundChance: 26,
			RunLength: 1400, InitPages: 70, InitTouches: 3, JumpChance: 5,
			MinRequests: 5520, MaxRequests: 73657,
		}
	case Websearch:
		return Profile{
			Kind: Websearch, DataPages: 40, Streams: 34, BackgroundChance: 64,
			RunLength: 600, InitPages: 40, InitTouches: 3, JumpChance: 38,
			MinRequests: 43362, MaxRequests: 108513,
		}
	}
	panic(fmt.Sprintf("workload: no profile for kind %d", k))
}

// ActiveSet returns the size of the profile's active translation set:
// the number of fully-associative DevTLB entries needed for full link
// utilization with a single tenant (§V-C).
func (p Profile) ActiveSet() int { return p.Streams + 2 }

// Validate reports configuration errors.
func (p Profile) Validate() error {
	switch {
	case p.DataPages <= 0:
		return fmt.Errorf("workload: %s: DataPages must be positive", p.Kind)
	case p.Streams <= 0 || p.Streams > p.DataPages:
		return fmt.Errorf("workload: %s: Streams must be in 1..DataPages", p.Kind)
	case p.RunLength <= 0:
		return fmt.Errorf("workload: %s: RunLength must be positive", p.Kind)
	case p.InitPages < 0 || p.InitTouches < 0:
		return fmt.Errorf("workload: %s: init parameters must be non-negative", p.Kind)
	case p.MinRequests <= 0 || p.MaxRequests < p.MinRequests:
		return fmt.Errorf("workload: %s: request bounds invalid", p.Kind)
	}
	return nil
}
