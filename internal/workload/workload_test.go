package workload

import (
	"testing"
	"testing/quick"

	"hypertrio/internal/mem"
)

func TestProfilesValid(t *testing.T) {
	for _, k := range Kinds {
		p := ProfileFor(k)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestActiveSetsMatchPaper(t *testing.T) {
	// §V-C: active translation sets of 8 (iperf3), 32 (mediastream),
	// 36 (websearch).
	want := map[Kind]int{Iperf3: 8, Mediastream: 32, Websearch: 36}
	for k, n := range want {
		if got := ProfileFor(k).ActiveSet(); got != n {
			t.Errorf("%s active set = %d, want %d", k, got, n)
		}
	}
}

func TestTableIIIBudgets(t *testing.T) {
	// Table III request bounds at scale 1.0.
	cases := map[Kind][2]int{
		Iperf3:      {68079, 108510},
		Mediastream: {5520, 73657},
		Websearch:   {43362, 108513},
	}
	for k, b := range cases {
		p := ProfileFor(k)
		if p.MinRequests != b[0] || p.MaxRequests != b[1] {
			t.Errorf("%s budgets = [%d,%d], want %v", k, p.MinRequests, p.MaxRequests, b)
		}
		for sid := mem.SID(0); sid < 64; sid++ {
			n := BudgetFor(p, sid, 1, 1.0)
			if n < b[0] || n > b[1] {
				t.Fatalf("%s sid %d budget %d outside Table III bounds %v", k, sid, n, b)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	collect := func() []Packet {
		g := NewGenerator(ProfileFor(Websearch), 7, 42, 0.01)
		var out []Packet
		for {
			p, ok := g.Next()
			if !ok {
				break
			}
			out = append(out, p)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorBudgetAccounting(t *testing.T) {
	g := NewGenerator(ProfileFor(Iperf3), 3, 1, 0.01)
	total := g.Total()
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != total/RequestsPerPacket {
		t.Fatalf("emitted %d packets, want %d", n, total/RequestsPerPacket)
	}
	if g.Remaining() >= RequestsPerPacket {
		t.Fatalf("generator stopped with %d requests left", g.Remaining())
	}
	if g.Emitted() != n {
		t.Fatalf("Emitted() = %d, want %d", g.Emitted(), n)
	}
}

func TestGeneratorAddressesAreCanonical(t *testing.T) {
	for _, k := range Kinds {
		p := ProfileFor(k)
		g := NewGenerator(p, 5, 9, 0.02)
		for {
			pkt, ok := g.Next()
			if !ok {
				break
			}
			ringBase := RingPageFor(5)
			if pkt.Ring < ringBase || pkt.Ring >= ringBase+mem.PageSize {
				t.Fatalf("%s: ring gIOVA %#x outside ring page %#x", k, pkt.Ring, ringBase)
			}
			if pkt.Mailbox != MailboxFor(5) {
				t.Fatalf("%s: mailbox gIOVA %#x", k, pkt.Mailbox)
			}
			dataOK := pkt.Data >= DataBase && pkt.Data < DataBase+uint64(p.DataPages)*mem.HugePageSize
			initOK := pkt.Data >= InitBase && pkt.Data < InitBase+uint64(p.InitPages)*mem.PageSize
			if !dataOK && !initOK {
				t.Fatalf("%s: data gIOVA %#x outside data and init regions", k, pkt.Data)
			}
			if pkt.UnmapIOVA != 0 && PageShiftOf(pkt.UnmapIOVA) != pkt.UnmapShift {
				t.Fatalf("%s: unmap shift %d inconsistent for %#x", k, pkt.UnmapShift, pkt.UnmapIOVA)
			}
		}
	}
}

func TestRingPageHottestAndPeriodicity(t *testing.T) {
	// Fig. 8a: the ring page is by far the most frequently accessed,
	// because every packet touches it while data accesses spread over
	// the page ring. A shortened RunLength lets the ring wrap several
	// times within one test-sized log.
	p := ProfileFor(Mediastream)
	p.RunLength = 100
	g := NewGenerator(p, 2, 4, 0.5)
	pageCount := map[uint64]int{}
	packets := 0
	for {
		pkt, ok := g.Next()
		if !ok {
			break
		}
		packets++
		pageCount[pkt.Data>>mem.HugePageShift]++
	}
	ringTouches := packets // ring page touched every packet by construction
	maxData := 0
	for page, n := range pageCount {
		if page<<mem.HugePageShift >= DataBase && page<<mem.HugePageShift < InitBase && n > maxData {
			maxData = n
		}
	}
	if maxData == 0 {
		t.Fatal("no data-page accesses generated")
	}
	if ringTouches < 10*maxData {
		t.Fatalf("ring page (%d) not much hotter than hottest data page (%d)", ringTouches, maxData)
	}
}

func TestUnmapsEmittedOnPageAdvance(t *testing.T) {
	g := NewGenerator(ProfileFor(Websearch), 1, 3, 0.2)
	unmaps := 0
	for {
		pkt, ok := g.Next()
		if !ok {
			break
		}
		if pkt.UnmapIOVA != 0 {
			unmaps++
			if pkt.UnmapShift != mem.HugePageShift {
				t.Fatalf("unmap of %#x has shift %d", pkt.UnmapIOVA, pkt.UnmapShift)
			}
		}
	}
	if unmaps == 0 {
		t.Fatal("no unmap markers emitted over a long run")
	}
}

func TestBuildAddressSpace(t *testing.T) {
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	ct := mem.NewContextTable()
	p := ProfileFor(Mediastream)
	as, err := BuildAddressSpace(p, 9, host, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.DataPages) != p.DataPages || len(as.InitPages) != p.InitPages {
		t.Fatalf("page counts: data=%d init=%d", len(as.DataPages), len(as.InitPages))
	}
	// Every generated gIOVA must be walkable to a valid hPA.
	g := NewGenerator(p, 9, 7, 0.005)
	seen := 0
	for {
		pkt, ok := g.Next()
		if !ok || seen > 2000 {
			break
		}
		seen++
		for _, iova := range []uint64{pkt.Ring, pkt.Data, pkt.Mailbox} {
			res, err := as.Nested.Walk(iova)
			if err != nil {
				t.Fatalf("walk %#x: %v", iova, err)
			}
			if res.HPA == 0 {
				t.Fatalf("walk %#x returned zero hPA", iova)
			}
		}
	}
	// Context table registered.
	ce, err := ct.Lookup(9)
	if err != nil {
		t.Fatal(err)
	}
	if ce.GuestRoot != as.Nested.GuestRoot() || ce.HostRoot != as.Nested.HostRoot() {
		t.Fatal("context entry roots do not match the nested table")
	}
}

func TestTenantsShareIOVAsButNotHPAs(t *testing.T) {
	// §IV-D: independent tenants use the same gIOVA pages; their hPAs
	// must differ (per-tenant host tables provide isolation).
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	p := ProfileFor(Iperf3)
	a, err := BuildAddressSpace(p, 1, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildAddressSpace(p, 2, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.DataPages[0] != b.DataPages[0] {
		t.Fatal("tenants should share the canonical data-buffer layout")
	}
	// SIDs 1 and 9 share the exact ring gIOVA (slot collision).
	if RingPageFor(1) != RingPageFor(9) {
		t.Fatal("SIDs 1 and 9 should share a ring slot")
	}
	if RingPageFor(1) == RingPageFor(2) {
		t.Fatal("SIDs 1 and 2 should use different ring slots")
	}
	ra, err := a.Nested.Walk(a.DataPages[0])
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Nested.Walk(b.DataPages[0])
	if err != nil {
		t.Fatal(err)
	}
	if ra.HPA == rb.HPA {
		t.Fatalf("tenants map the same gIOVA to the same hPA %#x — isolation broken", ra.HPA)
	}
}

func TestPageShiftOf(t *testing.T) {
	if PageShiftOf(RingIOVA) != mem.PageShift {
		t.Error("ring page should be 4K")
	}
	if PageShiftOf(DataBase+12345) != mem.HugePageShift {
		t.Error("data region should be 2M")
	}
	if PageShiftOf(InitBase) != mem.PageShift {
		t.Error("init region should be 4K")
	}
}

func TestParseKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kind
	}{{"iperf3", Iperf3}, {"media", Mediastream}, {"websearch", Websearch}} {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind(nope) should error")
	}
}

// Property: budgets are within scaled bounds and monotone in scale.
func TestPropertyBudgetBounds(t *testing.T) {
	p := ProfileFor(Websearch)
	f := func(sidRaw uint16, seed int64) bool {
		sid := mem.SID(sidRaw)
		full := BudgetFor(p, sid, seed, 1.0)
		half := BudgetFor(p, sid, seed, 0.5)
		if full < p.MinRequests || full > p.MaxRequests {
			return false
		}
		// Same tenant, same seed: half scale is half the draw (rounded).
		return half == int(float64(full)/1.0*0.5) || half >= RequestsPerPacket
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the generator's active data-page set stays bounded by the
// stream count (plus jitter from jumps landing on shared pages).
func TestPropertyActivePagesBounded(t *testing.T) {
	for _, k := range Kinds {
		p := ProfileFor(k)
		g := NewGenerator(p, 11, 123, 0.05)
		// Skip init phase.
		window := map[uint64]bool{}
		n := 0
		for {
			pkt, ok := g.Next()
			if !ok {
				break
			}
			if pkt.Data < DataBase || pkt.Data >= InitBase {
				continue
			}
			n++
			if n < 1000 {
				continue // warm up past staggered starts
			}
			window[pkt.Data>>mem.HugePageShift] = true
			if len(window) > p.DataPages {
				t.Fatalf("%s: touched %d distinct data pages, profile has %d", k, len(window), p.DataPages)
			}
		}
	}
}

func TestSmallDataVariant(t *testing.T) {
	small := SmallDataVariant(ProfileFor(Iperf3))
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if small.DataShift() != mem.PageShift {
		t.Fatalf("DataShift = %d, want 4K", small.DataShift())
	}
	if small.DataRegionBase() != SmallDataBase {
		t.Fatalf("DataRegionBase = %#x", small.DataRegionBase())
	}
	g := NewGenerator(small, 3, 11, 0.02)
	dataPkts, unmaps := 0, 0
	for {
		pkt, ok := g.Next()
		if !ok {
			break
		}
		if pkt.Data >= SmallDataBase && pkt.Data < InitBase {
			dataPkts++
			if PageShiftOf(pkt.Data) != mem.PageShift {
				t.Fatalf("small-data gIOVA %#x not 4K", pkt.Data)
			}
		}
		if pkt.Data >= DataBase && pkt.Data < SmallDataBase {
			t.Fatalf("small-data profile emitted hugepage gIOVA %#x", pkt.Data)
		}
		if pkt.UnmapIOVA != 0 {
			unmaps++
			if pkt.UnmapShift != mem.PageShift {
				t.Fatalf("unmap shift %d, want 4K", pkt.UnmapShift)
			}
		}
	}
	if dataPkts == 0 {
		t.Fatal("no small-data accesses")
	}
	// 4K buffers recycle ~every RunLength packets: unmap churn must be
	// far higher than the hugepage profiles' (one per ~1400 packets).
	if unmaps*50 < dataPkts {
		t.Fatalf("unmap churn too low: %d unmaps over %d data packets", unmaps, dataPkts)
	}
}

func TestSmallDataAddressSpaceWalks(t *testing.T) {
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	small := SmallDataVariant(ProfileFor(Iperf3))
	as, err := BuildAddressSpace(small, 4, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.DataPages) != small.DataPages {
		t.Fatalf("mapped %d data pages, want %d", len(as.DataPages), small.DataPages)
	}
	res, err := as.Nested.Walk(as.DataPages[100] + 0x10)
	if err != nil {
		t.Fatal(err)
	}
	// 4K mapping: the full two-dimensional walk is 24 accesses.
	if len(res.Accesses) != 24 {
		t.Fatalf("small-data walk made %d accesses, want 24", len(res.Accesses))
	}
}
