package workload

import (
	"math/rand"

	"hypertrio/internal/mem"
)

// Packet is one arriving packet's translation work: the three gIOVAs the
// device must translate (ring pointer, data buffer, mailbox notification)
// plus an optional unmap marker emitted when the driver recycled a data
// page just before this packet.
type Packet struct {
	SID     mem.SID
	Ring    uint64 // gIOVA of the ring-descriptor read
	Data    uint64 // gIOVA of the data-buffer write
	Mailbox uint64 // gIOVA of the notification write

	// UnmapIOVA, when non-zero, is the page base the tenant's driver
	// unmapped before this packet; translation caches must drop it.
	UnmapIOVA  uint64
	UnmapShift uint8
}

// PacketBytes is the modeled wire size of one packet: a 1500 B Ethernet
// payload plus framing and inter-packet gap (Table II: 1542 B).
const PacketBytes = 1542

// RequestsPerPacket is the number of translation requests each accepted
// packet generates.
const RequestsPerPacket = 3

// stream is one in-flight buffer cursor inside a tenant.
type stream struct {
	page   int // index into the data-page ring
	left   int // packets remaining on this page
	offset uint64
}

// Generator produces one tenant's deterministic packet stream. Budget is
// expressed in translation requests (3 per packet) to align with the
// paper's Table III accounting.
type Generator struct {
	p       Profile
	sid     mem.SID
	rng     *rand.Rand
	budget  int // remaining requests
	total   int // initial request budget
	emitted int // packets emitted

	initLeft int // init-phase packets remaining
	initIdx  int

	streams []stream

	pendingUnmap      uint64
	pendingUnmapShift uint8
}

// BudgetFor returns the deterministic per-tenant request budget for a
// tenant: a value in [MinRequests, MaxRequests] scaled by scale, drawn
// from the tenant's seeded RNG (different tenants recorded logs of
// different lengths — Table III).
func BudgetFor(p Profile, sid mem.SID, seed int64, scale float64) int {
	return BudgetForRNG(p, sid, seed, scale, StdRNG)
}

// BudgetForRNG is BudgetFor with an explicit random-source implementation
// (see RNG); different implementations draw different budgets.
func BudgetForRNG(p Profile, sid mem.SID, seed int64, scale float64, r RNG) int {
	rng := rand.New(r.source(seed ^ int64(sid)*0x2545F4914F6CDD1D))
	span := p.MaxRequests - p.MinRequests
	raw := p.MinRequests
	if span > 0 {
		raw += rng.Intn(span + 1)
	}
	n := int(float64(raw) * scale)
	if n < RequestsPerPacket {
		n = RequestsPerPacket
	}
	return n
}

// NewGenerator builds the stream for one tenant. scale in (0, 1] shrinks
// the Table III request budgets so experiments finish quickly while
// preserving the stream's structure.
func NewGenerator(p Profile, sid mem.SID, seed int64, scale float64) *Generator {
	return NewGeneratorRNG(p, sid, seed, scale, StdRNG)
}

// NewGeneratorRNG is NewGenerator with an explicit random-source
// implementation. CompactRNG shrinks a generator's footprint from ~5 KB
// to a few hundred bytes — the difference between 5 GB and 300 MB of
// generator state at 10⁶ tenants — at the cost of different (but equally
// deterministic) sequences.
func NewGeneratorRNG(p Profile, sid mem.SID, seed int64, scale float64, r RNG) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if scale <= 0 {
		panic("workload: scale must be positive")
	}
	g := &Generator{
		p:   p,
		sid: sid,
		rng: rand.New(r.source(seed ^ int64(sid)*0x2545F4914F6CDD1D ^ 0x5bf0_3635)),
	}
	g.total = BudgetForRNG(p, sid, seed, scale, r)
	g.budget = g.total
	// Init phase shrinks with scale too, capped to a third of the budget
	// so steady state always dominates.
	g.initLeft = int(float64(p.InitPages*p.InitTouches) * scale)
	if max := g.total / RequestsPerPacket / 3; g.initLeft > max {
		g.initLeft = max
	}
	g.streams = make([]stream, p.Streams)
	for i := range g.streams {
		g.streams[i] = stream{
			page: (i * p.DataPages) / p.Streams,
			left: 1 + g.rng.Intn(p.RunLength), // staggered starts
		}
	}
	return g
}

// Total returns the tenant's initial request budget.
func (g *Generator) Total() int { return g.total }

// Remaining returns how many translation requests are left in the budget.
func (g *Generator) Remaining() int { return g.budget }

// Emitted returns how many packets have been produced so far.
func (g *Generator) Emitted() int { return g.emitted }

// Next returns the next packet, or ok=false when the budget is exhausted.
func (g *Generator) Next() (Packet, bool) {
	if g.budget < RequestsPerPacket {
		return Packet{}, false
	}
	g.budget -= RequestsPerPacket
	g.emitted++

	pkt := Packet{
		SID:     g.sid,
		Ring:    RingPageFor(g.sid) + uint64(g.emitted%512)*8, // descriptor slot within the ring page
		Mailbox: MailboxFor(g.sid),
	}
	if g.pendingUnmap != 0 {
		pkt.UnmapIOVA, pkt.UnmapShift = g.pendingUnmap, g.pendingUnmapShift
		g.pendingUnmap, g.pendingUnmapShift = 0, 0
	}

	if g.initLeft > 0 {
		// Startup phase: DMA setup touches the init-time 4 KB pages.
		idx := g.initIdx % g.p.InitPages
		g.initIdx++
		g.initLeft--
		pkt.Data = uint64(InitBase) + uint64(idx)*mem.PageSize
		return pkt, true
	}

	// Most packets land on the primary stream (stream 0), producing the
	// long sequential page runs of Fig. 8b; background streams are
	// touched occasionally, keeping the tenant's whole active set live.
	cur := 0
	if len(g.streams) > 1 && uint8(g.rng.Intn(256)) < g.p.BackgroundChance {
		cur = 1 + g.rng.Intn(len(g.streams)-1)
	}
	s := &g.streams[cur]
	dataShift := uint(g.p.DataShift())
	pageSize := uint64(1) << dataShift
	pkt.Data = g.p.DataRegionBase() + uint64(s.page)<<dataShift + s.offset
	s.offset = (s.offset + 1536) % pageSize
	s.left--
	if s.left == 0 {
		// The driver consumed this page's buffers: unmap it and move to
		// the next page in the ring (or jump, for irregular workloads).
		g.pendingUnmap = g.p.DataRegionBase() + uint64(s.page)<<dataShift
		g.pendingUnmapShift = g.p.DataShift()
		if g.p.JumpChance > 0 && uint8(g.rng.Intn(256)) < g.p.JumpChance {
			s.page = g.rng.Intn(g.p.DataPages)
		} else {
			s.page = (s.page + 1) % g.p.DataPages
		}
		s.left = g.p.RunLength
		s.offset = 0
	}
	return pkt, true
}
