package workload

import (
	"fmt"

	"hypertrio/internal/mem"
)

// AddressSpace is one tenant's I/O address space: the nested page tables
// mapping its canonical gIOVA layout, ready for the IOMMU model to walk.
type AddressSpace struct {
	SID     mem.SID
	Profile Profile
	Nested  *mem.NestedTable

	// Page bases, all in gIOVA space.
	Ring      uint64
	Mailbox   uint64
	DataPages []uint64 // 2 MB pages
	InitPages []uint64 // 4 KB pages
}

// guestPhysBase is where every tenant's guest-physical allocations start.
// Tenants may share the value: isolation comes from per-tenant host tables.
const guestPhysBase = 0x40000000

// BuildAddressSpace maps the canonical layout for one tenant into fresh
// 4-level nested page tables backed by hostSpace, and registers the
// tenant in ct.
func BuildAddressSpace(p Profile, sid mem.SID, hostSpace *mem.Space, ct *mem.ContextTable) (*AddressSpace, error) {
	return BuildAddressSpaceLevels(p, sid, hostSpace, ct, mem.Levels)
}

// BuildAddressSpaceLevels is BuildAddressSpace with an explicit page-table
// depth (4 or 5 — §II-A's 24- vs 35-access two-dimensional walks).
func BuildAddressSpaceLevels(p Profile, sid mem.SID, hostSpace *mem.Space, ct *mem.ContextTable, levels int) (*AddressSpace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nt, err := mem.NewNestedTableLevels(fmt.Sprintf("sid%d", sid), guestPhysBase, hostSpace, levels)
	if err != nil {
		return nil, err
	}
	as := &AddressSpace{SID: sid, Profile: p, Nested: nt, Ring: RingPageFor(sid), Mailbox: MailboxFor(sid)}
	if _, _, err := nt.MapIOVA(as.Ring, mem.PageShift); err != nil {
		return nil, fmt.Errorf("workload: mapping ring page: %w", err)
	}
	if _, _, err := nt.MapIOVA(as.Mailbox, mem.PageShift); err != nil {
		return nil, fmt.Errorf("workload: mapping mailbox page: %w", err)
	}
	dataShift := uint(p.DataShift())
	for i := 0; i < p.DataPages; i++ {
		iova := p.DataRegionBase() + uint64(i)<<dataShift
		if _, _, err := nt.MapIOVA(iova, dataShift); err != nil {
			return nil, fmt.Errorf("workload: mapping data page %d: %w", i, err)
		}
		as.DataPages = append(as.DataPages, iova)
	}
	for i := 0; i < p.InitPages; i++ {
		iova := uint64(InitBase) + uint64(i)*mem.PageSize
		if _, _, err := nt.MapIOVA(iova, mem.PageShift); err != nil {
			return nil, fmt.Errorf("workload: mapping init page %d: %w", i, err)
		}
		as.InitPages = append(as.InitPages, iova)
	}
	if ct != nil {
		ct.Set(sid, mem.ContextEntry{
			DID:       uint32(sid),
			GuestRoot: nt.GuestRoot(),
			HostRoot:  nt.HostRoot(),
		})
	}
	return as, nil
}

// PageShiftOf reports the page size backing a gIOVA in the canonical
// layout: 2 MB for the hugepage data region, 4 KB for the small-data,
// ring/mailbox and init regions.
func PageShiftOf(iova uint64) uint8 {
	if iova >= DataBase && iova < SmallDataBase {
		return mem.HugePageShift
	}
	return mem.PageShift
}
