package workload

import "math/rand"

// RNG selects the random-source implementation backing a tenant's
// generator. The choice changes the generated sequences, so it is part of
// a trace's identity (internal/trace folds it into Config and the runner
// cache key).
type RNG uint8

const (
	// StdRNG is math/rand's default source — the sequences every golden
	// experiment is pinned to. Its ~5 KB of state per generator is
	// irrelevant up to tens of thousands of tenants.
	StdRNG RNG = iota
	// CompactRNG is an 8-byte splitmix64 source. At 10⁶ tenants the
	// default source's state alone would cost ~5 GB; compact generators
	// keep the whole tenant population in the hundreds of megabytes. Used
	// by the megatenant scale-out experiments, never by the golden suite.
	CompactRNG
)

// source builds a seeded rand source of the selected implementation.
func (r RNG) source(seed int64) rand.Source {
	if r == CompactRNG {
		return newSplitMix64(seed)
	}
	return rand.NewSource(seed)
}

// splitMix64 is the SplitMix64 generator (Steele, Lea & Flood): one
// 64-bit counter state, full 2⁶⁴ period, passes BigCrush. It implements
// rand.Source64 so rand.New can drive Intn from it.
type splitMix64 struct{ state uint64 }

func newSplitMix64(seed int64) *splitMix64 {
	return &splitMix64{state: uint64(seed)}
}

func (s *splitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (s *splitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitMix64) Seed(seed int64) { s.state = uint64(seed) }
