package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScenarioCodec hardens the scenario JSON codec against hostile
// input and pins its round-trip identity: any document the decoder
// accepts must re-encode canonically — decode(encode(decode(doc)))
// equals decode(doc) and the second encoding is byte-identical to the
// first. The committed corpus under testdata/fuzz seeds the search
// with every library scenario plus hostile shapes; `make fuzz-smoke`
// runs the target briefly on every CI pass.
func FuzzScenarioCodec(f *testing.F) {
	for _, s := range Library() {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"schema":"hypertrio-scenario/1"}`))
	f.Add([]byte(`{"schema":"hypertrio-scenario/1","name":"�","seed":-1,` +
		`"interleave":"RAND1","scale":1e-300,"classes":[],"phases":[]}`))
	f.Add([]byte(`{"scale":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadScenario(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only panics and hangs count
		}
		var first bytes.Buffer
		if err := s.WriteJSON(&first); err != nil {
			t.Fatalf("accepted scenario failed to encode: %v", err)
		}
		s2, err := ReadScenario(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, first.Bytes())
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed the scenario:\n%+v\n%+v", s, s2)
		}
		var second bytes.Buffer
		if err := s2.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-encoding not byte-identical:\n%s\n%s", first.Bytes(), second.Bytes())
		}
	})
}
