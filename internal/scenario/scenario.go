// Package scenario is the production-traffic scenario library: a
// composable, seeded DSL that layers time-varying load shaping and
// adversarial tenant behavior on top of the workload generators and
// fault plans. A Scenario is a deterministic composition of
//
//   - tenant classes: per-class workload mixes over contiguous SID
//     ranges (reusing trace.MixStream, so scenarios stream at 10⁶
//     tenants in O(tenants) memory),
//   - adversary roles: a noisy-neighbor heavy-hitter that over-occupies
//     arbitration slots, or a SID-flood thrasher whose access pattern
//     sweeps the shared IOTLB,
//   - phases with load envelopes: diurnal curves, incast microbursts,
//     ramps and steps modulating the packet inter-arrival gap
//     (core.ArrivalShaper), and
//   - fault overlays: invalidation/shootdown/flush/walker-fault storms
//     and tenant churn anchored to a phase (compiled into one
//     fault.Plan).
//
// Scenarios serialize as JSON (schema "hypertrio-scenario/1") and
// compile (Compile) into the runnable pieces. Everything downstream of
// the seed is deterministic: the same scenario yields byte-identical
// results across serial, sharded and streaming execution — the same
// contract the quick-suite golden manifest pins.
package scenario

import (
	"fmt"
	"unicode/utf8"

	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Role is a class's adversarial behavior.
type Role uint8

const (
	// RoleNone is a well-behaved tenant class.
	RoleNone Role = iota
	// RoleNoisyNeighbor is a heavy-hitter class: its tenants take a
	// default arbitration weight of 8 (eight consecutive bursts per
	// round-robin turn), crowding the link and the shared translation
	// structures. Budgets scale with the weight so the edge-effect
	// truncation does not cut the run short.
	RoleNoisyNeighbor
	// RoleSIDFlood is an IOTLB thrasher: its tenants run FloodProfile —
	// thousands of 4 KB buffers, near-random page jumps, unmap churn
	// every couple of packets — sweeping the shared translation caches
	// with single-use entries.
	RoleSIDFlood

	roleCount // sentinel
)

var roleNames = [...]string{
	RoleNone:          "",
	RoleNoisyNeighbor: "noisy-neighbor",
	RoleSIDFlood:      "sid-flood",
}

func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// RoleFromString parses the JSON name of a role ("" is RoleNone).
func RoleFromString(s string) (Role, error) {
	for r, name := range roleNames {
		if name == s {
			return Role(r), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown role %q", s)
}

// defaultWeight is the role's arbitration weight when the class leaves
// Weight zero.
func (r Role) defaultWeight() int {
	if r == RoleNoisyNeighbor {
		return 8
	}
	return 1
}

// Class is one tenant class of a scenario: a contiguous SID range
// running one benchmark under one role.
type Class struct {
	Name      string
	Benchmark workload.Kind
	Tenants   int
	Role      Role
	// Weight overrides the role's default arbitration weight (0 keeps
	// the default: 8 for noisy-neighbor, 1 otherwise).
	Weight int
	// Scale multiplies the scenario-wide Scale for this class (0 means
	// 1.0). The arbitration weight is folded into the effective budget
	// scale at compile time, so heavier classes last the whole run.
	Scale float64
}

// weight returns the class's effective arbitration weight.
func (c Class) weight() int {
	if c.Weight > 0 {
		return c.Weight
	}
	return c.Role.defaultWeight()
}

// scale returns the class's scale multiplier (zero → 1).
func (c Class) scale() float64 {
	if c.Scale > 0 {
		return c.Scale
	}
	return 1
}

// profile returns the workload profile the class's role implies.
func (c Class) profile() workload.Profile {
	if c.Role == RoleSIDFlood {
		return FloodProfile(c.Benchmark)
	}
	return workload.ProfileFor(c.Benchmark)
}

// FloodProfile is the SID-flood adversary's calibration: the
// benchmark's budget bounds over a 4 KB-buffer pool of 4096 pages with
// near-random jumps and two-packet runs, so nearly every data access
// is a fresh page and the driver unmaps at the highest rate the
// generator can express. One such tenant pushes a single-use entry
// stream through every shared translation structure.
func FloodProfile(k workload.Kind) workload.Profile {
	p := workload.ProfileFor(k)
	p.SmallData = true
	p.DataPages = 4096
	p.Streams = 8
	p.BackgroundChance = 128
	p.RunLength = 2
	p.JumpChance = 255
	p.InitPages = 0
	p.InitTouches = 0
	return p
}

// Phase is one stretch of the scenario's timeline under one load
// envelope. Phases play in order; the scenario's horizon is the sum of
// their durations (load past the horizon holds the last phase's final
// level, should service lag behind arrival).
type Phase struct {
	Name string
	Dur  sim.Duration
	Env  Envelope
}

// Overlay schedules a storm of fault events across one phase's window,
// optionally targeted at one class's SID range.
type Overlay struct {
	// Phase anchors the overlay to the named phase's [start, end) span;
	// events spread evenly across it.
	Phase string
	Kind  OverlayKind
	// Events is how many storm events fire within the phase.
	Events int
	// Class targets the named class's SID range ("" draws SIDs from the
	// whole population). Per-event SIDs are drawn from the scenario
	// seed, so the storm is deterministic.
	Class string
}

// OverlayKind selects the storm's fault event type.
type OverlayKind uint8

const (
	// OverlayInvalidationStorm fires page invalidations against the
	// targets' hot ring pages — each victim's next ring access re-walks.
	OverlayInvalidationStorm OverlayKind = iota
	// OverlayShootdownStorm fires tenant-wide invalidations (domain
	// shootdowns): every cached object of the drawn SID drops.
	OverlayShootdownStorm
	// OverlayWalkerFaultStorm arms walker faults: page-table walks
	// around each event back off and retry per the plan's retry policy.
	OverlayWalkerFaultStorm
	// OverlayFlushStorm fires global flushes of every translation cache.
	OverlayFlushStorm
	// OverlayChurn detaches the drawn tenant and re-attaches it half an
	// event-interval later (SID teardown / re-attach pairs).
	OverlayChurn

	overlayKindCount // sentinel
)

var overlayKindNames = [...]string{
	OverlayInvalidationStorm: "invalidation_storm",
	OverlayShootdownStorm:    "shootdown_storm",
	OverlayWalkerFaultStorm:  "walker_fault_storm",
	OverlayFlushStorm:        "flush_storm",
	OverlayChurn:             "churn",
}

func (k OverlayKind) String() string {
	if int(k) < len(overlayKindNames) {
		return overlayKindNames[k]
	}
	return fmt.Sprintf("OverlayKind(%d)", uint8(k))
}

// OverlayKindFromString parses the JSON name of an overlay kind.
func OverlayKindFromString(s string) (OverlayKind, error) {
	for k, name := range overlayKindNames {
		if name == s {
			return OverlayKind(k), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown overlay kind %q", s)
}

// Scenario is one composed production-traffic scenario. The zero value
// is invalid; build one in code or decode it from JSON (ReadScenario).
type Scenario struct {
	Name string
	// Seed drives every random draw the scenario makes: per-tenant
	// budgets and access patterns, the interleave, and storm targeting.
	Seed       int64
	Interleave trace.Interleave
	// Scale shrinks every class's Table III request budget, exactly as
	// trace.Config.Scale does; per-class Scale multiplies it.
	Scale float64
	// CompactRNG selects the 8-byte-per-tenant random state for
	// million-tenant streaming runs (different, still deterministic,
	// sequences).
	CompactRNG bool

	Classes  []Class
	Phases   []Phase
	Overlays []Overlay
}

// Hard bounds on scenario shape: generous for real use, tight enough
// that a hostile JSON document cannot demand pathological allocations
// or multi-day storms from whoever compiles it.
const (
	maxClasses      = 64
	maxPhases       = 256
	maxOverlays     = 256
	maxOverlayFires = 1 << 20
	maxTenants      = 1 << 21
	maxNameLen      = 128
	maxWeight       = 64
	maxClassScale   = 64
	maxHorizon      = sim.Duration(3600) * sim.Second
)

// validName screens scenario-authored identifiers: bounded length,
// valid UTF-8 (a name that JSON-escapes into replacement runes would
// break round-trip identity).
func validName(s string) error {
	if len(s) > maxNameLen {
		return fmt.Errorf("name longer than %d bytes", maxNameLen)
	}
	if !utf8.ValidString(s) {
		return fmt.Errorf("name is not valid UTF-8")
	}
	return nil
}

// Validate reports structural errors: bad shapes, out-of-range knobs,
// dangling phase/class references, invalid envelope parameters.
func (s *Scenario) Validate() error {
	if err := validName(s.Name); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if !(s.Scale > 0 && s.Scale <= 1) {
		return fmt.Errorf("scenario: scale must be in (0,1], got %v", s.Scale)
	}
	if s.Interleave.Burst <= 0 || s.Interleave.Burst > 1<<16 {
		return fmt.Errorf("scenario: interleave burst must be in 1..65536, got %d", s.Interleave.Burst)
	}
	if len(s.Classes) == 0 || len(s.Classes) > maxClasses {
		return fmt.Errorf("scenario: need 1..%d classes, got %d", maxClasses, len(s.Classes))
	}
	total := 0
	classNames := make(map[string]bool, len(s.Classes))
	for i, cl := range s.Classes {
		if err := validName(cl.Name); err != nil {
			return fmt.Errorf("scenario: class %d: %w", i, err)
		}
		if cl.Name == "" {
			return fmt.Errorf("scenario: class %d: name required", i)
		}
		if classNames[cl.Name] {
			return fmt.Errorf("scenario: duplicate class name %q", cl.Name)
		}
		classNames[cl.Name] = true
		if cl.Benchmark > workload.Websearch {
			return fmt.Errorf("scenario: class %q: unknown benchmark %d", cl.Name, cl.Benchmark)
		}
		if cl.Role >= roleCount {
			return fmt.Errorf("scenario: class %q: unknown role %d", cl.Name, cl.Role)
		}
		if cl.Tenants <= 0 || cl.Tenants > maxTenants {
			return fmt.Errorf("scenario: class %q: tenants must be in 1..%d, got %d", cl.Name, maxTenants, cl.Tenants)
		}
		if cl.Weight < 0 || cl.Weight > maxWeight {
			return fmt.Errorf("scenario: class %q: weight must be in 0..%d, got %d", cl.Name, maxWeight, cl.Weight)
		}
		if cl.Scale != 0 && !(cl.Scale > 0 && cl.Scale <= maxClassScale) {
			return fmt.Errorf("scenario: class %q: scale must be 0 or in (0,%d], got %v", cl.Name, maxClassScale, cl.Scale)
		}
		total += cl.Tenants
	}
	if total > maxTenants {
		return fmt.Errorf("scenario: %d tenants across classes exceeds the %d cap", total, maxTenants)
	}
	if len(s.Phases) == 0 || len(s.Phases) > maxPhases {
		return fmt.Errorf("scenario: need 1..%d phases, got %d", maxPhases, len(s.Phases))
	}
	var horizon sim.Duration
	phaseNames := make(map[string]bool, len(s.Phases))
	for i, ph := range s.Phases {
		if err := validName(ph.Name); err != nil {
			return fmt.Errorf("scenario: phase %d: %w", i, err)
		}
		if ph.Name == "" {
			return fmt.Errorf("scenario: phase %d: name required", i)
		}
		if phaseNames[ph.Name] {
			return fmt.Errorf("scenario: duplicate phase name %q", ph.Name)
		}
		phaseNames[ph.Name] = true
		if !(ph.Dur > 0 && ph.Dur <= maxHorizon) {
			return fmt.Errorf("scenario: phase %q: duration must be in (0, %v], got %v", ph.Name, maxHorizon, ph.Dur)
		}
		horizon += ph.Dur
		if err := ph.Env.validate(); err != nil {
			return fmt.Errorf("scenario: phase %q: %w", ph.Name, err)
		}
	}
	if horizon > maxHorizon {
		return fmt.Errorf("scenario: horizon %v exceeds the %v cap", horizon, maxHorizon)
	}
	if len(s.Overlays) > maxOverlays {
		return fmt.Errorf("scenario: at most %d overlays, got %d", maxOverlays, len(s.Overlays))
	}
	fires := 0
	for i, ov := range s.Overlays {
		if ov.Kind >= overlayKindCount {
			return fmt.Errorf("scenario: overlay %d: unknown kind %d", i, ov.Kind)
		}
		if !phaseNames[ov.Phase] {
			return fmt.Errorf("scenario: overlay %d (%s): unknown phase %q", i, ov.Kind, ov.Phase)
		}
		if ov.Class != "" && !classNames[ov.Class] {
			return fmt.Errorf("scenario: overlay %d (%s): unknown class %q", i, ov.Kind, ov.Class)
		}
		if ov.Events <= 0 || ov.Events > maxOverlayFires {
			return fmt.Errorf("scenario: overlay %d (%s): events must be in 1..%d, got %d", i, ov.Kind, maxOverlayFires, ov.Events)
		}
		fires += ov.Events
	}
	if fires > maxOverlayFires {
		return fmt.Errorf("scenario: %d overlay events across overlays exceeds the %d cap", fires, maxOverlayFires)
	}
	return nil
}

// clone returns a deep copy (slices unshared).
func (s *Scenario) clone() *Scenario {
	n := *s
	n.Classes = append([]Class(nil), s.Classes...)
	n.Phases = append([]Phase(nil), s.Phases...)
	n.Overlays = append([]Overlay(nil), s.Overlays...)
	return &n
}

// Neutral returns the scenario's no-adversary twin: every role and
// weight reset, every envelope flattened to its baseline level, every
// overlay removed. Signal tests run the adversarial scenario against
// its neutral twin — the neutral run is the control that proves a
// pinned signal comes from the adversary, not the population shape.
func (s *Scenario) Neutral() *Scenario {
	n := s.clone()
	n.Name = s.Name + "-neutral"
	for i := range n.Classes {
		n.Classes[i].Role = RoleNone
		n.Classes[i].Weight = 0
	}
	for i := range n.Phases {
		n.Phases[i].Env = Envelope{Kind: EnvFlat, Level: n.Phases[i].Env.Level}
	}
	n.Overlays = nil
	return n
}

// WithoutOverlays returns a twin that keeps classes and envelopes but
// drops every fault overlay — the control for storm scenarios, where
// the signal under test is the fault storm's cost at equal load.
func (s *Scenario) WithoutOverlays() *Scenario {
	n := s.clone()
	n.Name = s.Name + "-calm"
	n.Overlays = nil
	return n
}

// WithScale returns a twin with every extent multiplied by f: the
// budget scale, phase durations, envelope periods/bursts, and overlay
// event counts (floored at one). Experiments use it to shrink a
// full-scale scenario into its quick-mode variant without changing its
// structure.
func (s *Scenario) WithScale(f float64) *Scenario {
	n := s.clone()
	n.Scale *= f
	for i := range n.Phases {
		ph := &n.Phases[i]
		ph.Dur = scaleDur(ph.Dur, f)
		ph.Env.Period = scaleDur(ph.Env.Period, f)
		ph.Env.Burst = scaleDur(ph.Env.Burst, f)
	}
	for i := range n.Overlays {
		ev := int(float64(n.Overlays[i].Events)*f + 0.5)
		if ev < 1 {
			ev = 1
		}
		n.Overlays[i].Events = ev
	}
	return n
}

func scaleDur(d sim.Duration, f float64) sim.Duration {
	if d <= 0 {
		return d
	}
	n := sim.Duration(float64(d)*f + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// TotalTenants returns the population size across classes.
func (s *Scenario) TotalTenants() int {
	n := 0
	for _, cl := range s.Classes {
		n += cl.Tenants
	}
	return n
}
