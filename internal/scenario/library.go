package scenario

import (
	"fmt"

	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// The committed scenario library. Each constructor returns a fresh
// Scenario (callers may mutate their copy); Library returns all of
// them in experiment order. The committed scenarios/*.json files are
// pinned byte-identical to these definitions by a test, so editing a
// constructor without regenerating the JSON fails CI.

// NoisyNeighbor is the heavy-hitter isolation scenario: twelve
// well-behaved iperf3 victims share the device with four
// noisy-neighbor tenants holding eight arbitration slots each. The
// adversary crowds the link (32 of 44 slots per round-robin cycle) and
// the shared translation caches; the signal under test is the victim
// class's throughput floor.
func NoisyNeighbor() *Scenario {
	return &Scenario{
		Name:       "noisy-neighbor",
		Seed:       42,
		Interleave: trace.RR1,
		Scale:      1,
		Classes: []Class{
			{Name: "victim", Benchmark: workload.Iperf3, Tenants: 12, Scale: 0.09},
			{Name: "bully", Benchmark: workload.Iperf3, Tenants: 4, Role: RoleNoisyNeighbor, Scale: 0.09},
		},
		Phases: []Phase{
			{Name: "steady", Dur: 6 * sim.Millisecond, Env: Envelope{Kind: EnvFlat, Level: 1}},
		},
	}
}

// SIDFlood is the IOTLB-thrash scenario: twelve iperf3 victims beside
// two flood tenants running FloodProfile at four arbitration slots
// each — a single-use entry stream sweeping the shared IOTLB and walk
// caches. The signal under test is the victims' hit-rate and latency
// degradation versus the neutral twin.
func SIDFlood() *Scenario {
	return &Scenario{
		Name:       "sid-flood",
		Seed:       42,
		Interleave: trace.RR1,
		Scale:      1,
		Classes: []Class{
			{Name: "victim", Benchmark: workload.Iperf3, Tenants: 12, Scale: 0.09},
			{Name: "flood", Benchmark: workload.Iperf3, Tenants: 2, Role: RoleSIDFlood, Weight: 4, Scale: 0.09},
		},
		Phases: []Phase{
			{Name: "steady", Dur: 6 * sim.Millisecond, Env: Envelope{Kind: EnvFlat, Level: 1}},
		},
	}
}

// Incast is the synchronized fan-in scenario: sixteen mediastream
// tenants idle at 35% load, then a phase of 25 µs microbursts to full
// rate every 100 µs — the translation structures absorb a cold spike
// at the top of every period.
func Incast() *Scenario {
	return &Scenario{
		Name:       "incast",
		Seed:       42,
		Interleave: trace.RR1,
		Scale:      1,
		Classes: []Class{
			{Name: "ms", Benchmark: workload.Mediastream, Tenants: 16, Scale: 0.8},
		},
		Phases: []Phase{
			{Name: "lull", Dur: 800 * sim.Microsecond, Env: Envelope{Kind: EnvFlat, Level: 0.35}},
			{Name: "burst", Dur: 2400 * sim.Microsecond, Env: Envelope{
				Kind: EnvIncast, Level: 0.35, Peak: 1,
				Period: 100 * sim.Microsecond, Burst: 25 * sim.Microsecond,
			}},
			{Name: "recover", Dur: 800 * sim.Microsecond, Env: Envelope{Kind: EnvFlat, Level: 0.35}},
		},
	}
}

// Diurnal is the day/night curve: sixteen websearch tenants under a
// triangle wave between 25% and 95% load with a 1 ms period — three
// full days over the horizon. Locality-poor websearch exercises the
// walk path hardest exactly when the curve peaks.
func Diurnal() *Scenario {
	return &Scenario{
		Name:       "diurnal",
		Seed:       42,
		Interleave: trace.RR1,
		Scale:      1,
		Classes: []Class{
			{Name: "web", Benchmark: workload.Websearch, Tenants: 16, Scale: 0.1},
		},
		Phases: []Phase{
			{Name: "day", Dur: 3 * sim.Millisecond, Env: Envelope{
				Kind: EnvDiurnal, Level: 0.25, Peak: 0.95, Period: sim.Millisecond,
			}},
		},
	}
}

// Storm is the invalidation-storm-at-peak scenario: sixteen iperf3
// tenants ramp to full load, then hold the peak while a shootdown
// storm (600 tenant-wide invalidations) and a walker-fault storm (200
// armed faults) land on them, then cool to half load. The control is
// WithoutOverlays — identical load, no faults — so the pinned signal
// is the storm's cost alone.
func Storm() *Scenario {
	return &Scenario{
		Name:       "storm",
		Seed:       42,
		Interleave: trace.RR1,
		Scale:      1,
		Classes: []Class{
			{Name: "tenant", Benchmark: workload.Iperf3, Tenants: 16, Scale: 0.09},
		},
		Phases: []Phase{
			{Name: "ramp", Dur: 600 * sim.Microsecond, Env: Envelope{Kind: EnvRamp, Level: 0.3, Peak: 1}},
			{Name: "peak", Dur: 1200 * sim.Microsecond, Env: Envelope{Kind: EnvFlat, Level: 1}},
			{Name: "cool", Dur: 600 * sim.Microsecond, Env: Envelope{Kind: EnvFlat, Level: 0.5}},
		},
		Overlays: []Overlay{
			{Phase: "peak", Kind: OverlayShootdownStorm, Events: 600, Class: "tenant"},
			{Phase: "peak", Kind: OverlayWalkerFaultStorm, Events: 200},
		},
	}
}

// Library returns the committed scenarios in experiment order.
func Library() []*Scenario {
	return []*Scenario{NoisyNeighbor(), SIDFlood(), Incast(), Diurnal(), Storm()}
}

// ByName returns the committed scenario with the given name.
func ByName(name string) (*Scenario, error) {
	for _, s := range Library() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: no library scenario %q", name)
}
