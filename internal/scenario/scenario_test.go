package scenario

import (
	"reflect"
	"strings"
	"testing"

	"hypertrio/internal/core"
	"hypertrio/internal/fault"
	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Every committed scenario validates, compiles, and resolves the
// pieces its shape implies: a shaper iff some phase offers less than
// flat full load, a plan iff it has overlays.
func TestLibraryCompiles(t *testing.T) {
	lib := Library()
	if len(lib) != 5 {
		t.Fatalf("library has %d scenarios, want 5", len(lib))
	}
	wantShaper := map[string]bool{"noisy-neighbor": false, "sid-flood": false, "incast": true, "diurnal": true, "storm": true}
	wantPlan := map[string]bool{"storm": true}
	for _, s := range lib {
		c, err := s.Compile()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if got := c.Shaper != nil; got != wantShaper[s.Name] {
			t.Errorf("%s: shaper presence = %v, want %v", s.Name, got, wantShaper[s.Name])
		}
		if got := c.Plan != nil; got != wantPlan[s.Name] {
			t.Errorf("%s: plan presence = %v, want %v", s.Name, got, wantPlan[s.Name])
		}
		if c.Horizon <= 0 {
			t.Errorf("%s: horizon %v", s.Name, c.Horizon)
		}
		if _, err := ByName(s.Name); err != nil {
			t.Errorf("ByName(%s): %v", s.Name, err)
		}
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName accepted an unknown name")
	}
}

// The neutral twin drops every adversarial ingredient but keeps the
// population shape.
func TestNeutralTwin(t *testing.T) {
	s := Storm()
	s.Classes[0].Role = RoleNoisyNeighbor // make the twin do some work
	n := s.Neutral()
	if n.Name != "storm-neutral" {
		t.Fatalf("name = %q", n.Name)
	}
	if len(n.Overlays) != 0 {
		t.Fatalf("neutral kept overlays: %v", n.Overlays)
	}
	for _, cl := range n.Classes {
		if cl.Role != RoleNone || cl.Weight != 0 {
			t.Fatalf("neutral kept adversary class: %+v", cl)
		}
	}
	for i, ph := range n.Phases {
		if ph.Env.Kind != EnvFlat {
			t.Fatalf("phase %d not flattened: %+v", i, ph.Env)
		}
		if ph.Env.Level != s.Phases[i].Env.Level {
			t.Fatalf("phase %d baseline changed: %v vs %v", i, ph.Env.Level, s.Phases[i].Env.Level)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original is untouched (clone semantics).
	if len(s.Overlays) == 0 || s.Classes[0].Role != RoleNoisyNeighbor {
		t.Fatal("Neutral mutated its receiver")
	}
	c := s.WithoutOverlays()
	if c.Name != "storm-calm" || len(c.Overlays) != 0 || c.Classes[0].Role != RoleNoisyNeighbor {
		t.Fatalf("WithoutOverlays wrong shape: %+v", c)
	}
}

// WithScale shrinks every extent together and floors at the smallest
// meaningful value.
func TestWithScale(t *testing.T) {
	s := Incast()
	q := s.WithScale(0.5)
	if q.Scale != s.Scale*0.5 {
		t.Fatalf("scale = %v", q.Scale)
	}
	if q.Phases[0].Dur != s.Phases[0].Dur/2 {
		t.Fatalf("dur = %v, want %v", q.Phases[0].Dur, s.Phases[0].Dur/2)
	}
	if q.Phases[1].Env.Period != s.Phases[1].Env.Period/2 || q.Phases[1].Env.Burst != s.Phases[1].Env.Burst/2 {
		t.Fatalf("envelope extents not scaled: %+v", q.Phases[1].Env)
	}
	st := Storm().WithScale(0.001)
	for _, ov := range st.Overlays {
		if ov.Events < 1 {
			t.Fatalf("events scaled below 1: %+v", ov)
		}
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Validate rejects each class of malformed scenario with a targeted
// error.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"bad scale", func(s *Scenario) { s.Scale = 0 }, "scale"},
		{"nan scale", func(s *Scenario) { s.Scale = nan() }, "scale"},
		{"no classes", func(s *Scenario) { s.Classes = nil }, "classes"},
		{"dup class", func(s *Scenario) { s.Classes = append(s.Classes, s.Classes[0]) }, "duplicate class"},
		{"empty class name", func(s *Scenario) { s.Classes[0].Name = "" }, "name required"},
		{"bad utf8 name", func(s *Scenario) { s.Classes[0].Name = "x\xff" }, "UTF-8"},
		{"long name", func(s *Scenario) { s.Name = strings.Repeat("n", maxNameLen+1) }, "longer"},
		{"zero tenants", func(s *Scenario) { s.Classes[0].Tenants = 0 }, "tenants"},
		{"huge weight", func(s *Scenario) { s.Classes[0].Weight = maxWeight + 1 }, "weight"},
		{"nan class scale", func(s *Scenario) { s.Classes[0].Scale = nan() }, "scale"},
		{"no phases", func(s *Scenario) { s.Phases = nil }, "phases"},
		{"dup phase", func(s *Scenario) { s.Phases = append(s.Phases, s.Phases[0]) }, "duplicate phase"},
		{"zero dur", func(s *Scenario) { s.Phases[0].Dur = 0 }, "duration"},
		{"nan level", func(s *Scenario) { s.Phases[0].Env.Level = nan() }, "level"},
		{"flat with peak", func(s *Scenario) { s.Phases[0].Env.Peak = 0.5 }, "flat"},
		{"dangling overlay phase", func(s *Scenario) {
			s.Overlays = []Overlay{{Phase: "nope", Kind: OverlayFlushStorm, Events: 1}}
		}, "unknown phase"},
		{"dangling overlay class", func(s *Scenario) {
			s.Overlays = []Overlay{{Phase: s.Phases[0].Name, Kind: OverlayShootdownStorm, Events: 1, Class: "nope"}}
		}, "unknown class"},
		{"zero events", func(s *Scenario) {
			s.Overlays = []Overlay{{Phase: s.Phases[0].Name, Kind: OverlayFlushStorm, Events: 0}}
		}, "events"},
		{"fire cap", func(s *Scenario) {
			s.Overlays = []Overlay{
				{Phase: s.Phases[0].Name, Kind: OverlayFlushStorm, Events: maxOverlayFires},
				{Phase: s.Phases[0].Name, Kind: OverlayShootdownStorm, Events: 1},
			}
		}, "exceeds"},
		{"bad incast burst", func(s *Scenario) {
			s.Phases[0].Env = Envelope{Kind: EnvIncast, Level: 0.5, Peak: 1, Period: 10, Burst: 11}
		}, "burst"},
		{"diurnal burst", func(s *Scenario) {
			s.Phases[0].Env = Envelope{Kind: EnvDiurnal, Level: 0.5, Peak: 1, Period: 10, Burst: 1}
		}, "burst"},
		{"ramp period", func(s *Scenario) {
			s.Phases[0].Env = Envelope{Kind: EnvRamp, Level: 0.5, Peak: 1, Period: 10}
		}, "period"},
	}
	for _, tc := range cases {
		s := NoisyNeighbor()
		tc.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// Envelope curves evaluate to their defining points.
func TestEnvelopeLevels(t *testing.T) {
	d := sim.Duration(1000)
	diurnal := Envelope{Kind: EnvDiurnal, Level: 0.2, Peak: 0.8, Period: 100}
	if got := diurnal.level(0, d); got != 0.2 {
		t.Errorf("diurnal trough = %v", got)
	}
	if got := diurnal.level(50, d); got != 0.8 {
		t.Errorf("diurnal peak = %v", got)
	}
	incast := Envelope{Kind: EnvIncast, Level: 0.3, Peak: 1, Period: 100, Burst: 25}
	if got := incast.level(10, d); got != 1 {
		t.Errorf("incast in burst = %v", got)
	}
	if got := incast.level(30, d); got != 0.3 {
		t.Errorf("incast out of burst = %v", got)
	}
	ramp := Envelope{Kind: EnvRamp, Level: 0.25, Peak: 0.75, Period: 0}
	if got := ramp.level(0, d); got != 0.25 {
		t.Errorf("ramp start = %v", got)
	}
	if got := ramp.level(500, d); got != 0.5 {
		t.Errorf("ramp middle = %v", got)
	}
	if got := ramp.level(d, d); got != 0.75 {
		t.Errorf("ramp end = %v", got)
	}
	step := Envelope{Kind: EnvStep, Level: 0.4, Peak: 0.9}
	if got := step.level(499, d); got != 0.4 {
		t.Errorf("step low = %v", got)
	}
	if got := step.level(500, d); got != 0.9 {
		t.Errorf("step high = %v", got)
	}
}

// The compiled shaper stretches gaps by the reciprocal level, holds
// the last phase's final level past the horizon, and returns the base
// gap untouched at full load.
func TestShaperGap(t *testing.T) {
	s := &Scenario{
		Name: "g", Seed: 1, Interleave: trace.RR1, Scale: 0.5,
		Classes: []Class{{Name: "c", Benchmark: workload.Iperf3, Tenants: 1}},
		Phases: []Phase{
			{Name: "half", Dur: 1000, Env: Envelope{Kind: EnvFlat, Level: 0.5}},
			{Name: "full", Dur: 1000, Env: Envelope{Kind: EnvFlat, Level: 1}},
			{Name: "ramp", Dur: 1000, Env: Envelope{Kind: EnvRamp, Level: 1, Peak: 0.25}},
		},
	}
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Duration(100)
	if got := c.Shaper.Gap(base, 0); got != 200 {
		t.Errorf("half-load gap = %v, want 200", got)
	}
	if got := c.Shaper.Gap(base, 1500); got != base {
		t.Errorf("full-load gap = %v, want %v", got, base)
	}
	// Past the horizon the tail holds the ramp's end level (0.25).
	if got := c.Shaper.Gap(base, 10_000); got != 400 {
		t.Errorf("tail gap = %v, want 400", got)
	}
	if at, ok := c.PhaseStart("ramp"); !ok || at != 2000 {
		t.Errorf("PhaseStart(ramp) = %v, %v", at, ok)
	}
	if _, ok := c.PhaseStart("nope"); ok {
		t.Error("PhaseStart accepted an unknown phase")
	}
}

// Plan composition is deterministic, time-sorted, anchored to the
// overlay's phase window, and targeted inside the overlay's class
// range.
func TestComposePlan(t *testing.T) {
	s := Storm()
	c1, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1.Plan, c2.Plan) {
		t.Fatal("two compiles produced different plans")
	}
	wantEvents := 0
	for _, ov := range s.Overlays {
		wantEvents += ov.Events
	}
	if len(c1.Plan.Events) != wantEvents {
		t.Fatalf("plan has %d events, want %d", len(c1.Plan.Events), wantEvents)
	}
	start, _ := c1.PhaseStart("peak")
	end := start + s.Phases[1].Dur
	lo, hi, _ := c1.ClassRange("tenant")
	for i, ev := range c1.Plan.Events {
		if i > 0 && ev.At < c1.Plan.Events[i-1].At {
			t.Fatalf("event %d out of order", i)
		}
		if sim.Duration(ev.At) <= start || sim.Duration(ev.At) >= end {
			t.Fatalf("event %d at %v outside peak window [%v, %v]", i, ev.At, start, end)
		}
		if ev.Kind == fault.InvalidateTenant && (ev.SID < lo || ev.SID > hi) {
			t.Fatalf("event %d targets SID %d outside class range [%d, %d]", i, ev.SID, lo, hi)
		}
	}
	// A different seed moves the targets.
	alt := Storm()
	alt.Seed++
	c3, err := alt.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c1.Plan.Events, c3.Plan.Events) {
		t.Fatal("seed change did not move storm targets")
	}
}

func TestClassRange(t *testing.T) {
	c, err := NoisyNeighbor().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := c.ClassRange("victim"); !ok || lo != 1 || hi != 12 {
		t.Errorf("victim range = [%d, %d] %v", lo, hi, ok)
	}
	if lo, hi, ok := c.ClassRange("bully"); !ok || lo != 13 || hi != 16 {
		t.Errorf("bully range = [%d, %d] %v", lo, hi, ok)
	}
	if lo, hi, ok := c.ClassRange(""); !ok || lo != 1 || hi != 16 {
		t.Errorf("whole-population range = [%d, %d] %v", lo, hi, ok)
	}
	if _, _, ok := c.ClassRange("nope"); ok {
		t.Error("ClassRange accepted an unknown class")
	}
}

// A compiled scenario's stream and materialized trace are the same
// packet sequence — the equivalence every execution mode relies on.
func TestStreamMatchesMaterialize(t *testing.T) {
	c, err := NoisyNeighbor().WithScale(0.02).Compile()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	src, err := c.Stream()
	if err != nil {
		t.Fatal(err)
	}
	var pkts []workload.Packet
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		pkts = append(pkts, p)
	}
	if !reflect.DeepEqual(pkts, tr.Packets) {
		t.Fatalf("stream yielded %d packets, materialized %d (or contents differ)", len(pkts), len(tr.Packets))
	}
	if !reflect.DeepEqual(tr.Classes, src.Meta().Classes) {
		t.Fatalf("materialized classes %+v != stream classes %+v", tr.Classes, src.Meta().Classes)
	}
}

// Apply layers exactly the scenario's shaper and plan onto a design
// config and leaves everything else alone.
func TestApply(t *testing.T) {
	storm, err := Storm().Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := core.HyperTRIOConfig()
	got := storm.Apply(base)
	if got.Shaper != core.ArrivalShaper(storm.Shaper) {
		t.Error("Apply did not install the shaper")
	}
	if got.Fault != storm.Plan {
		t.Error("Apply did not install the plan")
	}
	if got.DevTLB != base.DevTLB || got.PTBEntries != base.PTBEntries {
		t.Error("Apply touched design structure")
	}
	// A calm scenario leaves an externally scripted plan in place and
	// installs no shaper for flat-full-load phases.
	calm, err := NoisyNeighbor().Compile()
	if err != nil {
		t.Fatal(err)
	}
	ext := &fault.Plan{Seed: 1, Retry: fault.DefaultRetryPolicy()}
	base.Fault = ext
	got = calm.Apply(base)
	if got.Fault != ext {
		t.Error("calm Apply dropped the external plan")
	}
	if got.Shaper != nil {
		t.Error("flat-full-load scenario installed a shaper")
	}
}

var _ core.ArrivalShaper = (*Shaper)(nil)

var _ trace.Source = (*trace.MixStream)(nil)

// SID range bookkeeping stays consistent with mem.SID arithmetic.
func TestClassRangeSIDType(t *testing.T) {
	c, err := SIDFlood().Compile()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := c.ClassRange("flood")
	if !ok || hi-lo+1 != mem.SID(2) {
		t.Fatalf("flood range [%d, %d] %v", lo, hi, ok)
	}
}
