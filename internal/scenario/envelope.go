package scenario

import (
	"fmt"

	"hypertrio/internal/sim"
)

// EnvelopeKind selects a phase's load-shaping curve.
type EnvelopeKind uint8

const (
	// EnvFlat offers a constant fraction Level of the link rate.
	EnvFlat EnvelopeKind = iota
	// EnvDiurnal is a piecewise-linear day/night curve: the level climbs
	// from Level to Peak over the first half of each Period and falls
	// back over the second half (a triangle wave — deterministic integer
	// arithmetic, no transcendentals).
	EnvDiurnal
	// EnvIncast holds Level except for a Burst-long spike to Peak at the
	// top of every Period — synchronized fan-in microbursts.
	EnvIncast
	// EnvRamp climbs linearly from Level to Peak across the phase.
	EnvRamp
	// EnvStep holds Level for the first half of the phase and jumps to
	// Peak for the second.
	EnvStep

	envelopeKindCount // sentinel
)

var envelopeKindNames = [...]string{
	EnvFlat:    "flat",
	EnvDiurnal: "diurnal",
	EnvIncast:  "incast",
	EnvRamp:    "ramp",
	EnvStep:    "step",
}

func (k EnvelopeKind) String() string {
	if int(k) < len(envelopeKindNames) {
		return envelopeKindNames[k]
	}
	return fmt.Sprintf("EnvelopeKind(%d)", uint8(k))
}

// EnvelopeKindFromString parses the JSON name of an envelope kind.
func EnvelopeKindFromString(s string) (EnvelopeKind, error) {
	for k, name := range envelopeKindNames {
		if name == s {
			return EnvelopeKind(k), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown envelope kind %q", s)
}

// Envelope shapes one phase's offered load as a fraction of the link
// rate over the phase's local time. Levels are clamped to
// [minLevel, 1] at evaluation: a scenario can thin load to 1% but
// never push the link past its nominal rate.
type Envelope struct {
	Kind EnvelopeKind
	// Level is the baseline load fraction in (0, 1].
	Level float64
	// Peak is the curve's other extreme for non-flat kinds, in (0, 1].
	Peak float64
	// Period is the diurnal/incast cycle length.
	Period sim.Duration
	// Burst is the spike width within each incast period.
	Burst sim.Duration
}

// minLevel floors envelope evaluation so a gap can never stretch more
// than 100x nominal (and never divides by zero).
const minLevel = 0.01

func (e Envelope) validate() error {
	if e.Kind >= envelopeKindCount {
		return fmt.Errorf("unknown envelope kind %d", e.Kind)
	}
	if !(e.Level > 0 && e.Level <= 1) {
		return fmt.Errorf("envelope level must be in (0,1], got %v", e.Level)
	}
	if e.Kind == EnvFlat {
		if e.Peak != 0 || e.Period != 0 || e.Burst != 0 {
			return fmt.Errorf("flat envelope takes only a level")
		}
		return nil
	}
	if !(e.Peak > 0 && e.Peak <= 1) {
		return fmt.Errorf("envelope peak must be in (0,1], got %v", e.Peak)
	}
	switch e.Kind {
	case EnvDiurnal:
		if !(e.Period >= 2 && e.Period <= maxHorizon) {
			return fmt.Errorf("diurnal period must be in [2ps, %v], got %v", maxHorizon, e.Period)
		}
		if e.Burst != 0 {
			return fmt.Errorf("diurnal envelope takes no burst")
		}
	case EnvIncast:
		if !(e.Period > 0 && e.Period <= maxHorizon) {
			return fmt.Errorf("incast period must be in (0, %v], got %v", maxHorizon, e.Period)
		}
		if !(e.Burst > 0 && e.Burst <= e.Period) {
			return fmt.Errorf("incast burst must be in (0, period], got %v", e.Burst)
		}
	case EnvRamp, EnvStep:
		if e.Period != 0 || e.Burst != 0 {
			return fmt.Errorf("%v envelope takes no period or burst", e.Kind)
		}
	}
	return nil
}

// level evaluates the envelope at local phase time u within a phase of
// duration d (both > 0 validated upstream; u may reach or exceed d when
// evaluating the tail level).
func (e Envelope) level(u, d sim.Duration) float64 {
	switch e.Kind {
	case EnvDiurnal:
		pos := u % e.Period
		half := e.Period / 2
		var frac float64
		if pos < half {
			frac = float64(pos) / float64(half)
		} else {
			frac = float64(e.Period-pos) / float64(e.Period-half)
		}
		return e.Level + (e.Peak-e.Level)*frac
	case EnvIncast:
		if u%e.Period < e.Burst {
			return e.Peak
		}
		return e.Level
	case EnvRamp:
		if u >= d {
			return e.Peak
		}
		return e.Level + (e.Peak-e.Level)*(float64(u)/float64(d))
	case EnvStep:
		if 2*u < d {
			return e.Level
		}
		return e.Peak
	}
	return e.Level
}

func clampLevel(l float64) float64 {
	if l < minLevel {
		return minLevel
	}
	if l > 1 {
		return 1
	}
	return l
}

// span is one phase's window on the scenario timeline.
type span struct {
	start, end sim.Duration
	env        Envelope
}

// Shaper is the compiled load envelope: a piecewise curve over the
// scenario's phases implementing core.ArrivalShaper. It is stateless
// and read-only after Compile, so one Shaper may be shared by any
// number of concurrently running systems (the runner pool does exactly
// that when a sweep fans a scenario across designs).
type Shaper struct {
	spans []span
	tail  float64 // level held past the horizon
}

// Level evaluates the envelope at an absolute scenario time.
func (sh *Shaper) Level(at sim.Duration) float64 {
	for i := range sh.spans {
		sp := &sh.spans[i]
		if at < sp.end {
			return clampLevel(sp.env.level(at-sp.start, sp.end-sp.start))
		}
	}
	return sh.tail
}

// Gap implements core.ArrivalShaper: the nominal gap stretched by the
// reciprocal of the current load level. Full load returns base
// unchanged, so a flat-1.0 scenario is indistinguishable from an
// unshaped run.
func (sh *Shaper) Gap(base sim.Duration, now sim.Time) sim.Duration {
	l := sh.Level(sim.Duration(now))
	if l >= 1 {
		return base
	}
	return sim.Duration(float64(base)/l + 0.5)
}
