package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"hypertrio/internal/core"
	"hypertrio/internal/fault"
	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Compiled is a scenario resolved into its runnable pieces: the mixed
// tenant population, the load-envelope shaper, and the phase-anchored
// fault plan. A Compiled is read-only after Compile; its Shaper and
// Plan may be shared by any number of concurrently running systems.
type Compiled struct {
	Scenario *Scenario
	// Mix drives trace.NewMixStream / trace.ConstructMix.
	Mix trace.MixConfig
	// Shaper modulates arrivals; nil when every phase offers flat full
	// load (the constant-gap fast path).
	Shaper *Shaper
	// Plan is the composed fault script; nil without overlays, keeping
	// overlay-free scenarios byte-identical to fault-free builds.
	Plan *fault.Plan
	// Horizon is the sum of phase durations — the scenario's intended
	// timeline (service may drain past it when the run lags arrivals).
	Horizon sim.Duration

	starts []sim.Duration // per-phase start offsets

	matOnce sync.Once
	mat     *trace.Trace
	matErr  error
}

// stormSeed decorrelates storm targeting from the budget/interleave
// draws made with the scenario seed itself.
const stormSeed = 0x73_746f_726d // "storm"

// Compile validates the scenario and resolves it.
func (s *Scenario) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Scenario: s}

	// Tenant population: the arbitration weight folds into the class's
	// effective budget scale, so a weight-w class consuming slots w
	// times faster still lasts the whole run (the edge-effect
	// truncation fires when the first tenant of ANY class drains).
	c.Mix = trace.MixConfig{Interleave: s.Interleave, Seed: s.Seed}
	if s.CompactRNG {
		c.Mix.RNG = workload.CompactRNG
	}
	for _, cl := range s.Classes {
		w := cl.weight()
		c.Mix.Classes = append(c.Mix.Classes, trace.ClassSpec{
			Name:    cl.Name,
			Profile: cl.profile(),
			Tenants: cl.Tenants,
			Weight:  w,
			Scale:   s.Scale * cl.scale() * float64(w),
		})
	}

	// Timeline: phase spans and the compiled shaper. A scenario whose
	// every phase is flat at full load needs no shaper at all.
	c.starts = make([]sim.Duration, len(s.Phases))
	spans := make([]span, len(s.Phases))
	var at sim.Duration
	flatFull := true
	for i, ph := range s.Phases {
		c.starts[i] = at
		spans[i] = span{start: at, end: at + ph.Dur, env: ph.Env}
		at += ph.Dur
		if ph.Env.Kind != EnvFlat || ph.Env.Level < 1 {
			flatFull = false
		}
	}
	c.Horizon = at
	if !flatFull {
		last := spans[len(spans)-1]
		c.Shaper = &Shaper{
			spans: spans,
			tail:  clampLevel(last.env.level(last.end-last.start, last.end-last.start)),
		}
	}

	if len(s.Overlays) > 0 {
		plan, err := c.composePlan()
		if err != nil {
			return nil, err
		}
		c.Plan = plan
	}
	return c, nil
}

// phaseIndex resolves a phase name (validated upstream).
func (c *Compiled) phaseIndex(name string) int {
	for i, ph := range c.Scenario.Phases {
		if ph.Name == name {
			return i
		}
	}
	return -1
}

// ClassRange returns the named class's inclusive SID range; ok=false
// for unknown names. The empty name addresses the whole population.
func (c *Compiled) ClassRange(name string) (lo, hi mem.SID, ok bool) {
	if name == "" {
		return 1, mem.SID(c.Mix.TotalTenants()), true
	}
	at := 1
	for _, cl := range c.Scenario.Classes {
		if cl.Name == name {
			return mem.SID(at), mem.SID(at + cl.Tenants - 1), true
		}
		at += cl.Tenants
	}
	return 0, 0, false
}

// composePlan renders every overlay into fault events across its
// anchor phase's window and merges them into one time-sorted plan.
// Per-event target SIDs are drawn from the scenario seed, so the storm
// is part of the scenario's deterministic identity.
func (c *Compiled) composePlan() (*fault.Plan, error) {
	rng := rand.New(rand.NewSource(c.Scenario.Seed ^ stormSeed))
	var evs []fault.Event
	for i, ov := range c.Scenario.Overlays {
		pi := c.phaseIndex(ov.Phase)
		lo, hi, ok := c.ClassRange(ov.Class)
		if pi < 0 || !ok {
			return nil, fmt.Errorf("scenario: overlay %d: dangling reference", i)
		}
		start := c.starts[pi]
		dur := c.Scenario.Phases[pi].Dur
		step := dur / sim.Duration(ov.Events+1)
		if step < 1 {
			step = 1
		}
		for e := 0; e < ov.Events; e++ {
			at := sim.Time(start + step*sim.Duration(e+1))
			sid := lo + mem.SID(rng.Intn(int(hi-lo)+1))
			switch ov.Kind {
			case OverlayInvalidationStorm:
				evs = append(evs, fault.Event{
					At: at, Kind: fault.InvalidatePage, SID: sid,
					IOVA: workload.RingPageFor(sid), Shift: uint8(mem.PageShift),
				})
			case OverlayShootdownStorm:
				evs = append(evs, fault.Event{At: at, Kind: fault.InvalidateTenant, SID: sid})
			case OverlayWalkerFaultStorm:
				evs = append(evs, fault.Event{At: at, Kind: fault.WalkerFault, N: 8})
			case OverlayFlushStorm:
				evs = append(evs, fault.Event{At: at, Kind: fault.FlushAll})
			case OverlayChurn:
				evs = append(evs,
					fault.Event{At: at, Kind: fault.Detach, SID: sid},
					fault.Event{At: at + sim.Time(step/2), Kind: fault.Attach, SID: sid},
				)
			}
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	plan := &fault.Plan{Seed: c.Scenario.Seed, Retry: fault.DefaultRetryPolicy(), Events: evs}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: composed plan invalid: %w", err)
	}
	return plan, nil
}

// Stream returns a fresh online source over the scenario's population
// (O(tenants) memory; single-consumer, so every cell gets its own).
func (c *Compiled) Stream() (*trace.MixStream, error) {
	return trace.NewMixStream(c.Mix)
}

// Materialize constructs (once) and returns the scenario's trace. The
// trace is immutable and shared — the same contract runner's trace
// cache relies on.
func (c *Compiled) Materialize() (*trace.Trace, error) {
	c.matOnce.Do(func() {
		c.mat, c.matErr = trace.ConstructMix(c.Mix)
	})
	return c.mat, c.matErr
}

// Apply composes the scenario onto a design configuration: the load
// shaper and the composed fault plan. The design's own structure
// (caches, PTB, prefetch, shards) is untouched, so one scenario sweeps
// identically across Base/HyperTRIO/any future design. A scenario
// without overlays leaves the config's own Fault script in place, so a
// calm scenario composes with an externally scripted plan.
func (c *Compiled) Apply(base core.Config) core.Config {
	if c.Shaper != nil {
		base.Shaper = c.Shaper
	}
	if c.Plan != nil {
		base.Fault = c.Plan
	}
	return base
}

// PhaseStart returns the named phase's start offset on the timeline.
func (c *Compiled) PhaseStart(name string) (sim.Duration, bool) {
	if i := c.phaseIndex(name); i >= 0 {
		return c.starts[i], true
	}
	return 0, false
}
