package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// Every committed scenario round-trips through the codec exactly:
// decode(encode(s)) == s and the re-encoding is byte-identical.
func TestJSONRoundTripLibrary(t *testing.T) {
	for _, s := range Library() {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", s.Name, err)
		}
		first := buf.String()
		got, err := ReadScenario(strings.NewReader(first))
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s: round-trip changed the scenario:\n%+v\n%+v", s.Name, got, s)
		}
		buf.Reset()
		if err := got.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: re-encode: %v", s.Name, err)
		}
		if buf.String() != first {
			t.Fatalf("%s: re-encoding not byte-identical", s.Name)
		}
	}
}

// The decoder is strict: wrong schema, unknown fields, unknown enum
// names and structurally invalid scenarios are all errors.
func TestReadScenarioRejects(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		if err := NoisyNeighbor().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []struct {
		name, doc, want string
	}{
		{"empty", "", "decoding"},
		{"not json", "{", "decoding"},
		{"wrong schema", strings.Replace(valid, "hypertrio-scenario/1", "hypertrio-scenario/9", 1), "schema"},
		{"unknown field", strings.Replace(valid, `"seed"`, `"sneed"`, 1), "decoding"},
		{"bad benchmark", strings.Replace(valid, `"benchmark": "iperf3"`, `"benchmark": "doom"`, 1), "doom"},
		{"bad role", strings.Replace(valid, `"role": "noisy-neighbor"`, `"role": "saint"`, 1), "role"},
		{"bad interleave", strings.Replace(valid, `"interleave": "RR1"`, `"interleave": "ZZ1"`, 1), "interleav"},
		{"bad envelope kind", strings.Replace(valid, `"kind": "flat"`, `"kind": "cubic"`, 1), "envelope"},
		{"invalid scenario", strings.Replace(valid, `"tenants": 12`, `"tenants": -3`, 1), "tenants"},
	}
	for _, tc := range cases {
		_, err := ReadScenario(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: decoded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Overlay kinds decode too (the noisy-neighbor doc has none).
	var buf bytes.Buffer
	if err := Storm().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(buf.String(), `"kind": "shootdown_storm"`, `"kind": "locust_storm"`, 1)
	if _, err := ReadScenario(strings.NewReader(doc)); err == nil || !strings.Contains(err.Error(), "overlay") {
		t.Errorf("bad overlay kind: %v", err)
	}
}
