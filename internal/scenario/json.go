package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Schema names the JSON scenario format (cmd/hypersio -scenario,
// cmd/scenariolint). Bump the suffix on any incompatible change;
// ReadScenario rejects other schemas.
const Schema = "hypertrio-scenario/1"

// The on-disk shape: kinds and roles by name, durations as integer
// picoseconds (sim.Duration verbatim — exact round-trip, no float
// rounding at any magnitude), floats only where the model itself is a
// float (scale, envelope levels). Writable by hand, stable across
// internal refactors.
type scenarioDoc struct {
	Schema     string       `json:"schema"`
	Name       string       `json:"name"`
	Seed       int64        `json:"seed"`
	Interleave string       `json:"interleave"`
	Scale      float64      `json:"scale"`
	CompactRNG bool         `json:"compact_rng,omitempty"`
	Classes    []classDoc   `json:"classes"`
	Phases     []phaseDoc   `json:"phases"`
	Overlays   []overlayDoc `json:"overlays,omitempty"`
}

type classDoc struct {
	Name      string  `json:"name"`
	Benchmark string  `json:"benchmark"`
	Tenants   int     `json:"tenants"`
	Role      string  `json:"role,omitempty"`
	Weight    int     `json:"weight,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
}

type phaseDoc struct {
	Name  string `json:"name"`
	DurPs int64  `json:"dur_ps"`
	Env   envDoc `json:"env"`
}

type envDoc struct {
	Kind     string  `json:"kind"`
	Level    float64 `json:"level"`
	Peak     float64 `json:"peak,omitempty"`
	PeriodPs int64   `json:"period_ps,omitempty"`
	BurstPs  int64   `json:"burst_ps,omitempty"`
}

type overlayDoc struct {
	Phase  string `json:"phase"`
	Kind   string `json:"kind"`
	Events int    `json:"events"`
	Class  string `json:"class,omitempty"`
}

// ReadScenario decodes (strictly — unknown fields are errors) and
// validates a JSON scenario.
func ReadScenario(r io.Reader) (*Scenario, error) {
	var doc scenarioDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("scenario: decoding: %w", err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("scenario: schema %q, want %q", doc.Schema, Schema)
	}
	iv, err := trace.ParseInterleave(doc.Interleave)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s := &Scenario{
		Name:       doc.Name,
		Seed:       doc.Seed,
		Interleave: iv,
		Scale:      doc.Scale,
		CompactRNG: doc.CompactRNG,
	}
	for i, cd := range doc.Classes {
		kind, err := workload.ParseKind(cd.Benchmark)
		if err != nil {
			return nil, fmt.Errorf("scenario: class %d: %w", i, err)
		}
		role, err := RoleFromString(cd.Role)
		if err != nil {
			return nil, fmt.Errorf("scenario: class %d: %w", i, err)
		}
		s.Classes = append(s.Classes, Class{
			Name: cd.Name, Benchmark: kind, Tenants: cd.Tenants,
			Role: role, Weight: cd.Weight, Scale: cd.Scale,
		})
	}
	for i, pd := range doc.Phases {
		kind, err := EnvelopeKindFromString(pd.Env.Kind)
		if err != nil {
			return nil, fmt.Errorf("scenario: phase %d: %w", i, err)
		}
		s.Phases = append(s.Phases, Phase{
			Name: pd.Name,
			Dur:  sim.Duration(pd.DurPs),
			Env: Envelope{
				Kind:   kind,
				Level:  pd.Env.Level,
				Peak:   pd.Env.Peak,
				Period: sim.Duration(pd.Env.PeriodPs),
				Burst:  sim.Duration(pd.Env.BurstPs),
			},
		})
	}
	for i, od := range doc.Overlays {
		kind, err := OverlayKindFromString(od.Kind)
		if err != nil {
			return nil, fmt.Errorf("scenario: overlay %d: %w", i, err)
		}
		s.Overlays = append(s.Overlays, Overlay{
			Phase: od.Phase, Kind: kind, Events: od.Events, Class: od.Class,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteJSON encodes the scenario in the on-disk format (indented, one
// schema header). Encoding is canonical: decode(WriteJSON(s)) yields a
// Scenario equal to s, and WriteJSON of that decodes byte-identically —
// the fuzz target pins both directions.
func (s *Scenario) WriteJSON(w io.Writer) error {
	doc := scenarioDoc{
		Schema:     Schema,
		Name:       s.Name,
		Seed:       s.Seed,
		Interleave: s.Interleave.String(),
		Scale:      s.Scale,
		CompactRNG: s.CompactRNG,
		Classes:    []classDoc{},
		Phases:     []phaseDoc{},
	}
	for _, cl := range s.Classes {
		doc.Classes = append(doc.Classes, classDoc{
			Name: cl.Name, Benchmark: cl.Benchmark.String(), Tenants: cl.Tenants,
			Role: cl.Role.String(), Weight: cl.Weight, Scale: cl.Scale,
		})
	}
	for _, ph := range s.Phases {
		doc.Phases = append(doc.Phases, phaseDoc{
			Name:  ph.Name,
			DurPs: int64(ph.Dur),
			Env: envDoc{
				Kind:     ph.Env.Kind.String(),
				Level:    ph.Env.Level,
				Peak:     ph.Env.Peak,
				PeriodPs: int64(ph.Env.Period),
				BurstPs:  int64(ph.Env.Burst),
			},
		})
	}
	for _, ov := range s.Overlays {
		doc.Overlays = append(doc.Overlays, overlayDoc{
			Phase: ov.Phase, Kind: ov.Kind.String(), Events: ov.Events, Class: ov.Class,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
