// Package core is the HyperSIO trace-driven device–system performance
// model: it wires the on-device structures (DevTLB, PTB, Prefetch Unit)
// to the chipset (context cache, page-walk caches, two-dimensional
// walker) over a PCIe latency model, replays a hyper-tenant trace against
// real per-tenant page tables, and reports achieved I/O bandwidth.
package core

import (
	"fmt"

	"hypertrio/internal/device"
	"hypertrio/internal/fault"
	"hypertrio/internal/iommu"
	"hypertrio/internal/obs"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
)

// Params are the physical model parameters (paper Table II).
type Params struct {
	PCIeOneWay  sim.Duration // one-way PCIe traversal
	DRAMLatency sim.Duration // one physical memory access
	TLBHit      sim.Duration // DevTLB / Prefetch Buffer / chipset IOTLB hit
	PacketBytes int          // Ethernet packet + inter-packet gap
	LinkGbps    float64      // nominal link rate
	// ArrivalGbps caps the offered load; 0 means the link is fully
	// utilized on the input side (the paper's default). Motivational
	// studies on slower hosts set this below LinkGbps.
	ArrivalGbps float64
}

// DefaultParams returns Table II verbatim.
func DefaultParams() Params {
	return Params{
		PCIeOneWay:  450 * sim.Nanosecond,
		DRAMLatency: 50 * sim.Nanosecond,
		TLBHit:      2 * sim.Nanosecond,
		PacketBytes: 1542,
		LinkGbps:    200,
	}
}

// Interarrival returns the packet inter-arrival gap implied by the
// offered load.
func (p Params) Interarrival() sim.Duration {
	rate := p.ArrivalGbps
	if rate == 0 {
		rate = p.LinkGbps
	}
	return sim.FromNanos(float64(p.PacketBytes*8) / rate)
}

func (p Params) validate() error {
	switch {
	case p.PCIeOneWay < 0 || p.DRAMLatency <= 0 || p.TLBHit <= 0:
		return fmt.Errorf("core: latencies must be positive: %+v", p)
	case p.PacketBytes <= 0:
		return fmt.Errorf("core: packet size must be positive")
	case p.LinkGbps <= 0:
		return fmt.Errorf("core: link rate must be positive")
	case p.ArrivalGbps < 0 || p.ArrivalGbps > p.LinkGbps:
		return fmt.Errorf("core: arrival rate must be in (0, link rate]")
	}
	return nil
}

// ArrivalShaper modulates the packet inter-arrival gap over simulated
// time — the hook scenario load envelopes (diurnal curves, incast
// microbursts, ramps) use to make offered load time-varying without
// touching the generators. Implementations must be deterministic pure
// functions of their inputs: the same (base, now) pair always yields
// the same gap, which is what keeps shaped runs byte-identical across
// serial, sharded and streaming execution.
type ArrivalShaper interface {
	// Gap returns the gap between the current link slot and the next,
	// given the nominal (full-load) gap and the current simulated time.
	// Returning base models full offered load; larger gaps thin it.
	Gap(base sim.Duration, now sim.Time) sim.Duration
}

// Config is one full system configuration under test.
type Config struct {
	Params Params

	// Shaper, when non-nil, modulates the packet inter-arrival gap over
	// simulated time (load envelopes). Nil offers the constant
	// Params-implied load — byte-identical to a build without the hook.
	Shaper ArrivalShaper

	// DevTLB configures the on-device translation cache; Sets == 0
	// disables the DevTLB entirely (every request goes to the chipset).
	DevTLB tlb.Config
	// PTBEntries is the number of Pending Translation Buffer entries;
	// each holds one packet's in-flight translation context (its three
	// translations proceed concurrently; completion is out of order
	// across packets). A packet that cannot allocate an entry at arrival
	// is dropped and retried.
	PTBEntries int
	// Prefetch enables the Prefetch Unit when non-nil.
	Prefetch *device.PrefetchConfig
	// IOMMU configures the chipset.
	IOMMU iommu.Config

	// TranslationOff models a native (non-virtualized) interface: every
	// packet completes in TLBHit with no translation work — the Fig. 5
	// "host" baseline.
	TranslationOff bool

	// SerialRequests makes a packet's missing translations execute one
	// after another instead of concurrently — the head-of-line-blocking
	// behaviour of legacy devices that the PTB's out-of-order completion
	// removes. Used by the Fig. 5 motivational study.
	SerialRequests bool

	// PageTableLevels selects 4- or 5-level page tables in both walk
	// dimensions (0 means 4). A 4 KB two-dimensional walk costs 24
	// memory accesses at depth 4 and 35 at depth 5 (§II-A).
	PageTableLevels int

	// IOMMUWalkers caps how many page-table walks the chipset performs
	// concurrently; excess translations queue. Zero means unlimited (the
	// paper's latency-only model). The walker ablation uses this to
	// study structural contention at the IOMMU — a design dimension the
	// paper's GPU-related work discusses (§VI) but its model leaves open.
	IOMMUWalkers int

	// Shards splits the single run across event domains executed by the
	// sharded coordinator (internal/sim.ShardedEngine): 0 or 1 keeps the
	// classic single-engine simulation; 2 or more moves the chipset's
	// IOMMU/walker work into its own domain, with the device side in
	// another, synchronized by conservative PCIe lookahead. The model has
	// one device-side link, so shard counts above 2 clamp to the two
	// domains that exist. Runs needing instantaneous cross-domain
	// coupling (driver unmaps in the trace, prefetching, fault plans,
	// observability) execute the domains in lockstep instead of in
	// parallel. Results are byte-identical to serial for every value.
	Shards int

	// Obs attaches the observability layer (internal/obs): model-level
	// event tracing, optional engine-kernel probing, and periodic
	// time-series sampling. Nil turns everything off; observability only
	// reads model state, so simulation outcomes are byte-identical with
	// it on or off.
	Obs *obs.Options

	// Fault loads a fault-injection script (internal/fault): scripted
	// invalidations, mid-flight remaps, walker faults and tenant churn
	// applied at their scripted instants. Nil (the default) builds no
	// injector and installs no hooks — a fault-free run is byte-identical
	// to a build without the subsystem. The plan is read-only once the
	// run starts, so one plan value may be shared across systems.
	Fault *fault.Plan

	// ExtraStages are appended to the resolved pipeline spec after the
	// datapath stages — verification and experimental stages (e.g. the
	// "invariants" conservation checker). Ignored when TranslationOff.
	ExtraStages []pipeline.StageSpec
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Params.validate(); err != nil {
		return err
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards must be non-negative, got %d", c.Shards)
	}
	if c.TranslationOff {
		return nil
	}
	if c.PTBEntries <= 0 {
		return fmt.Errorf("core: PTBEntries must be positive, got %d", c.PTBEntries)
	}
	if l := c.PageTableLevels; l != 0 && l != 4 && l != 5 {
		return fmt.Errorf("core: PageTableLevels must be 0, 4 or 5, got %d", l)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

// PipelineSpec resolves the configuration into the stage sequence it
// composes: admission, then the device-side probe levels in probe order,
// then the chipset resolver and its history reader. TranslationOff
// resolves to the empty spec (the native path). Every design variant —
// baseline, partitioned, prefetching, and future ones — is a different
// spec of the same stage kinds, not a different code path.
func (c Config) PipelineSpec() pipeline.Spec {
	if c.TranslationOff {
		return pipeline.Spec{}
	}
	var spec pipeline.Spec
	spec.Stages = append(spec.Stages, pipeline.StageSpec{Kind: "ptb", Entries: c.PTBEntries})
	if c.DevTLB.Sets > 0 {
		spec.Stages = append(spec.Stages, pipeline.StageSpec{Kind: "devtlb", Cache: c.DevTLB})
	}
	if c.Prefetch != nil {
		spec.Stages = append(spec.Stages, pipeline.StageSpec{Kind: "prefetch-buffer", Prefetch: *c.Prefetch})
	}
	spec.Stages = append(spec.Stages, pipeline.StageSpec{
		Kind: "chipset", IOMMU: c.IOMMU, Walkers: c.IOMMUWalkers,
	})
	if c.Prefetch != nil {
		spec.Stages = append(spec.Stages, pipeline.StageSpec{Kind: "history-reader"})
	}
	spec.Stages = append(spec.Stages, c.ExtraStages...)
	return spec
}

// DescribePipeline renders the datapath the configuration resolves to,
// without building page tables or running anything (hypersio -describe).
func DescribePipeline(cfg Config) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	// Describe-only build: no tenants, no oracle future. Stage builders
	// only touch the memory system when translations run, so a chain
	// built against an empty context table still renders.
	chain, err := pipeline.BuildChain(cfg.PipelineSpec(), pipeline.Env{
		Lat: pipeline.Latencies{
			PCIeOneWay:   cfg.Params.PCIeOneWay,
			DRAMLatency:  cfg.Params.DRAMLatency,
			TLBHit:       cfg.Params.TLBHit,
			Interarrival: cfg.Params.Interarrival(),
		},
	})
	if err != nil {
		return "", err
	}
	return chain.Describe(), nil
}

// BaseConfig is the paper's Base design (Table IV): a conventional
// 64-entry 8-way LFU DevTLB indexed by address (one partition), a single
// PTB entry (no overlap across packets), unpartitioned page-walk caches,
// and no prefetching.
func BaseConfig() Config {
	return Config{
		Params: DefaultParams(),
		DevTLB: tlb.Config{
			Name: "devtlb", Sets: 8, Ways: 8, Policy: tlb.LFU, Index: tlb.ByAddress,
		},
		PTBEntries: 1,
		IOMMU: iommu.Config{
			ContextCache: iommu.DefaultContextCache(),
			L2PWC:        tlb.Config{Name: "l2pwc", Sets: 32, Ways: 16, Policy: tlb.LFU, Index: tlb.ByAddress},
			L3PWC:        tlb.Config{Name: "l3pwc", Sets: 64, Ways: 16, Policy: tlb.LFU, Index: tlb.ByAddress},
		},
	}
}

// HyperTRIOConfig is the paper's full design (Table IV): the same cache
// geometries with SID partitioning (8 DevTLB partitions, 32/64 page-walk
// cache partitions), a 32-entry PTB, and the prefetching scheme
// (8-entry buffer, 48-access stride, 2 pages of history per tenant).
func HyperTRIOConfig() Config {
	pf := device.DefaultPrefetchConfig()
	return Config{
		Params: DefaultParams(),
		DevTLB: tlb.Config{
			Name: "devtlb", Sets: 8, Ways: 8, Policy: tlb.LFU, Index: tlb.BySID,
		},
		PTBEntries: 32,
		Prefetch:   &pf,
		IOMMU: iommu.Config{
			ContextCache: iommu.DefaultContextCache(),
			L2PWC:        tlb.Config{Name: "l2pwc", Sets: 32, Ways: 16, Policy: tlb.LFU, Index: tlb.BySID},
			L3PWC:        tlb.Config{Name: "l3pwc", Sets: 64, Ways: 16, Policy: tlb.LFU, Index: tlb.BySID},
		},
	}
}
