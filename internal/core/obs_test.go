package core

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// zeroPacketTrace models a Scale that rounded every tenant's budget down
// to zero: tenants exist (page tables get built) but no packet arrives.
func zeroPacketTrace() *trace.Trace {
	return &trace.Trace{Benchmark: workload.Iperf3, Tenants: 2, Scale: 0.001}
}

// TestZeroPacketRun pins the degenerate-run accounting: a tenant-ful but
// packet-less trace must run to a fully zeroed Result with no NaN or
// division-by-zero in any derived rate.
func TestZeroPacketRun(t *testing.T) {
	for _, cfg := range []Config{BaseConfig(), HyperTRIOConfig(), {Params: DefaultParams(), TranslationOff: true}} {
		s, err := NewSystem(cfg, zeroPacketTrace())
		if err != nil {
			t.Fatalf("zero-packet trace rejected: %v", err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatalf("zero-packet run failed: %v", err)
		}
		if r.Packets != 0 || r.Drops != 0 || r.Bytes != 0 || r.Requests != 0 {
			t.Fatalf("zero-packet run counted traffic: %+v", r)
		}
		if r.AchievedGbps != 0 || r.Utilization != 0 || r.Elapsed != 0 {
			t.Fatalf("zero-packet run reports bandwidth: %+v", r)
		}
		if r.AvgMissLatency != 0 || r.LatencyFairness != 0 {
			t.Fatalf("zero-packet run reports latency: %+v", r)
		}
		for name, v := range map[string]float64{
			"AchievedGbps": r.AchievedGbps, "Utilization": r.Utilization,
			"LatencyFairness": r.LatencyFairness, "DropRate": r.DropRate(),
			"PrefetchServedShare": r.PrefetchServedShare(),
			"DevTLBHitRate":       r.DevTLB.HitRate(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("zero-packet run: %s = %v", name, v)
			}
		}
	}
}

// TestTenantlessTraceRejected keeps the original input contract: a trace
// with no tenants has nothing to build page tables for.
func TestTenantlessTraceRejected(t *testing.T) {
	if _, err := NewSystem(BaseConfig(), nil); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := NewSystem(BaseConfig(), &trace.Trace{}); err == nil {
		t.Fatal("tenant-less trace accepted")
	}
}

// TestZeroMissRun exercises the zero-miss accounting path: with
// translation off no request ever reaches the chipset, so the miss
// aggregates must stay zero while packets still complete.
func TestZeroMissRun(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 2, trace.RR1, 0.002)
	cfg := Config{Params: DefaultParams(), TranslationOff: true}
	r := run(t, cfg, tr)
	if r.Packets != uint64(len(tr.Packets)) {
		t.Fatalf("packets = %d, want %d", r.Packets, len(tr.Packets))
	}
	if r.AvgMissLatency != 0 || r.IOMMU.Walks != 0 {
		t.Fatalf("translation-off run walked: %+v", r)
	}
	if math.IsNaN(r.LatencyFairness) || r.LatencyFairness <= 0 {
		t.Fatalf("fairness = %v", r.LatencyFairness)
	}
}

// TestObservabilityDeterminism pins the layer's core contract: enabling
// every observability feature must not change simulation outcomes.
func TestObservabilityDeterminism(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 4, trace.RR4, 0.002)
	cfg := HyperTRIOConfig()
	cfg.IOMMUWalkers = 4
	plain := run(t, cfg, tr)

	ocfg := cfg
	ocfg.Obs = &obs.Options{
		Tracer:       obs.NewTracer(io.Discard),
		EngineEvents: true,
		SampleEvery:  5 * sim.Microsecond,
	}
	observed := run(t, ocfg, tr)
	if observed.Series == nil || len(observed.Series.Points) == 0 {
		t.Fatal("sampling enabled but no series recorded")
	}
	observed.Series = nil
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observability changed the simulation:\noff: %+v\non:  %+v", plain, observed)
	}
}

// TestSamplerSeries checks the time-series sampler's shape: strictly
// increasing timestamps on the interval grid, a final partial-window
// point at the end of the run, and no NaN rates.
func TestSamplerSeries(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.004)
	cfg := BaseConfig()
	cfg.Obs = &obs.Options{SampleEvery: 10 * sim.Microsecond}
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Series == nil || len(r.Series.Points) == 0 {
		t.Fatal("no series")
	}
	if r.Series.Interval != cfg.Obs.SampleEvery {
		t.Fatalf("interval = %v", r.Series.Interval)
	}
	prev := int64(-1)
	for i, p := range r.Series.Points {
		if p.T <= prev {
			t.Fatalf("point %d: t %d <= previous %d", i, p.T, prev)
		}
		prev = p.T
		if math.IsNaN(p.Gbps) || math.IsNaN(p.PBHitRate) || math.IsNaN(p.DevTLBHitRate) {
			t.Fatalf("point %d has NaN: %+v", i, p)
		}
		if p.PTBInUse < 0 || p.PTBInUse > cfg.PTBEntries {
			t.Fatalf("point %d: PTB occupancy %d out of [0,%d]", i, p.PTBInUse, cfg.PTBEntries)
		}
	}
	// The series must cover the whole run: the final point is either the
	// sampler's last tick (which may trail the final completion by up to
	// one interval) or the partial-window close at the last event.
	if got := r.Series.Points[len(r.Series.Points)-1].T; got < int64(r.Elapsed) {
		t.Fatalf("final sample at %d precedes run end %d", got, int64(r.Elapsed))
	}
}

// TestRegistryNamesComponents checks that the registry names every
// layer's cells and that its counters agree with the Result view.
func TestRegistryNamesComponents(t *testing.T) {
	tr := makeTrace(t, workload.Mediastream, 2, trace.RR1, 0.002)
	s, err := NewSystem(HyperTRIOConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	for _, name := range []string{
		"core.packets", "core.drops", "core.requests",
		"devtlb.hits", "devtlb.misses",
		"ptb.allocs", "ptb.rejected",
		"prefetch.issued", "prefetch.buffer.hits", "prefetch.predictor.predictions",
		"iommu.translations", "iommu.walks", "iommu.mem_accesses",
		"iommu.cc.lookups", "iommu.l2pwc.lookups", "iommu.l3pwc.lookups",
	} {
		if _, ok := reg.CounterValue(name); !ok {
			t.Fatalf("metric %q not registered (have %v)", name, reg.Names())
		}
	}
	if v, _ := reg.CounterValue("core.packets"); v != r.Packets {
		t.Fatalf("core.packets = %d, Result.Packets = %d", v, r.Packets)
	}
	if v, _ := reg.CounterValue("devtlb.hits"); v != r.DevTLB.Hits {
		t.Fatalf("devtlb.hits = %d, Result %d", v, r.DevTLB.Hits)
	}
	snap := reg.Snapshot()
	if snap.Histograms["core.miss_latency"].Count != r.IOMMU.Walks+0 && snap.Histograms["core.miss_latency"].Count == 0 {
		t.Fatal("miss latency histogram empty on a missing run")
	}
}

// TestPropertyDropRetryInvariant replays a PTB-starved run with tracing
// on and checks the flow-conservation invariants between the trace and
// the Result: every link slot is an arrival or a retry, accepted+dropped
// slots account for all of them, and derived rates stay in [0,1].
func TestPropertyDropRetryInvariant(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.002)
	cfg := BaseConfig() // PTBEntries=1: heavy drop/retry traffic
	var buf bytes.Buffer
	cfg.Obs = &obs.Options{Tracer: obs.NewTracer(&buf)}
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	counts := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		counts[ev.Ev]++
	}
	attempts := counts["arrival"] + counts["retry"]
	if got := r.Packets + r.Drops; got != attempts {
		t.Fatalf("Packets+Drops = %d, trace saw %d arrival attempts", got, attempts)
	}
	if counts["drop"] != r.Drops {
		t.Fatalf("trace drops = %d, Result.Drops = %d", counts["drop"], r.Drops)
	}
	if counts["complete"] != r.Packets {
		t.Fatalf("trace completions = %d, Result.Packets = %d", counts["complete"], r.Packets)
	}
	if counts["arrival"] != uint64(len(tr.Packets)) {
		t.Fatalf("first arrivals = %d, trace has %d packets", counts["arrival"], len(tr.Packets))
	}
	if want := r.Packets * uint64(cfg.Params.PacketBytes); r.Bytes != want {
		t.Fatalf("Bytes = %d, want Packets*PacketBytes = %d", r.Bytes, want)
	}
	hits := counts["devtlb_hit"] + counts["prefetch_hit"] + counts["devtlb_miss"]
	if hits != r.Requests {
		t.Fatalf("per-request events = %d, Result.Requests = %d", hits, r.Requests)
	}
	if dr := r.DropRate(); dr < 0 || dr > 1 {
		t.Fatalf("DropRate = %v", dr)
	}
	if ps := r.PrefetchServedShare(); ps < 0 || ps > 1 {
		t.Fatalf("PrefetchServedShare = %v", ps)
	}
	if r.Drops == 0 || counts["retry"] == 0 {
		t.Fatalf("test needs drop pressure to bite: drops=%d retries=%d", r.Drops, counts["retry"])
	}
}
