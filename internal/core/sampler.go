package core

import (
	"hypertrio/internal/obs"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/sim"
)

// sampler owns the periodic time-series sampling: the interval, the
// series under construction, and the previous-sample window state that
// turns cumulative counters into per-window rates. It only reads model
// state (through the chain's stats accessors), so enabling it cannot
// change simulation outcomes.
type sampler struct {
	every     sim.Duration
	series    *obs.Series
	bytes     *obs.Counter
	chain     *pipeline.Chain
	walkerCap int // configured walker-pool size, for the utilization rate

	// Window state: values at the previous sample, so each Point reports
	// rates over its window rather than cumulative averages.
	last           sim.Time
	prevBytes      uint64
	prevDevHits    uint64
	prevDevLookups uint64
	prevPBHits     uint64
	prevPBLookups  uint64
}

func newSampler(every sim.Duration, bytes *obs.Counter, chain *pipeline.Chain, walkerCap int) *sampler {
	return &sampler{
		every: every, series: &obs.Series{Interval: every},
		bytes: bytes, chain: chain, walkerCap: walkerCap,
	}
}

// start schedules the first tick.
func (sp *sampler) start(e *sim.Engine) { e.ScheduleEventLabeled(sp.every, "sample", sp, 0) }

// HandleEvent records one sample and reschedules only while model events
// remain pending, so the sampler never keeps a drained engine alive.
// Typed self-rescheduling keeps the tick allocation-free.
func (sp *sampler) HandleEvent(e *sim.Engine, now sim.Time, _ uint64) {
	sp.record(now)
	if e.Pending() > 0 {
		e.ScheduleEventLabeled(sp.every, "sample", sp, 0)
	}
}

// flush closes the final partial window so short runs still get a point.
func (sp *sampler) flush(now sim.Time) {
	if now > sp.last {
		sp.record(now)
	}
}

// record appends one Point covering the window since the previous
// sample. The chain's stats accessors report zeroes for absent stages,
// so the corresponding rates stay zero without special cases.
func (sp *sampler) record(now sim.Time) {
	window := now.Sub(sp.last)
	if window <= 0 {
		return
	}
	p := obs.Point{T: int64(now)}
	bytes := sp.bytes.Value()
	p.Gbps = float64((bytes-sp.prevBytes)*8) / window.Seconds() / 1e9
	sp.prevBytes = bytes
	p.PTBInUse = sp.chain.PTBInUse()
	dev := sp.chain.CacheStats("devtlb")
	if dl := dev.Lookups - sp.prevDevLookups; dl > 0 {
		p.DevTLBHitRate = float64(dev.Hits-sp.prevDevHits) / float64(dl)
	}
	sp.prevDevHits, sp.prevDevLookups = dev.Hits, dev.Lookups
	pb := sp.chain.PrefetchStats().Buffer
	if dl := pb.Lookups - sp.prevPBLookups; dl > 0 {
		p.PBHitRate = float64(pb.Hits-sp.prevPBHits) / float64(dl)
	}
	sp.prevPBHits, sp.prevPBLookups = pb.Hits, pb.Lookups
	p.WalkersBusy = sp.chain.WalkersBusy()
	if sp.walkerCap > 0 {
		p.WalkerUtil = float64(sp.chain.WalkersBusy()) / float64(sp.walkerCap)
	}
	sp.series.Points = append(sp.series.Points, p)
	sp.last = now
}
