package core

import (
	"reflect"
	"testing"

	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

func makeTrace(t *testing.T, kind workload.Kind, tenants int, iv trace.Interleave, scale float64) *trace.Trace {
	t.Helper()
	tr, err := trace.Construct(trace.Config{
		Benchmark: kind, Tenants: tenants, Interleave: iv, Seed: 42, Scale: scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func run(t *testing.T, cfg Config, tr *trace.Trace) Result {
	t.Helper()
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.PCIeOneWay != 450*sim.Nanosecond {
		t.Errorf("PCIe one-way = %v, want 450ns (Table II)", p.PCIeOneWay)
	}
	if p.DRAMLatency != 50*sim.Nanosecond {
		t.Errorf("DRAM latency = %v, want 50ns (Table II)", p.DRAMLatency)
	}
	if p.TLBHit != 2*sim.Nanosecond {
		t.Errorf("TLB hit = %v, want 2ns (Table II)", p.TLBHit)
	}
	if p.PacketBytes != 1542 {
		t.Errorf("packet = %dB, want 1542B (Table II)", p.PacketBytes)
	}
	if p.LinkGbps != 200 {
		t.Errorf("link = %vGb/s, want 200 (Table II)", p.LinkGbps)
	}
	// 1542B at 200Gb/s: 61.68ns inter-arrival.
	if p.Interarrival() != sim.FromNanos(61.68) {
		t.Errorf("interarrival = %v, want 61.68ns", p.Interarrival())
	}
}

func TestTable4Configs(t *testing.T) {
	b := BaseConfig()
	h := HyperTRIOConfig()
	if b.DevTLB.Entries() != 64 || b.DevTLB.Ways != 8 || b.DevTLB.Policy != tlb.LFU {
		t.Errorf("Base DevTLB %+v does not match Table IV", b.DevTLB)
	}
	if b.DevTLB.Index != tlb.ByAddress || h.DevTLB.Index != tlb.BySID {
		t.Error("partitioning: Base must index by address, HyperTRIO by SID")
	}
	if h.DevTLB.Sets != 8 {
		t.Errorf("HyperTRIO DevTLB partitions = %d, want 8", h.DevTLB.Sets)
	}
	if b.PTBEntries != 1 || h.PTBEntries != 32 {
		t.Errorf("PTB entries base=%d hyper=%d, want 1/32", b.PTBEntries, h.PTBEntries)
	}
	if b.Prefetch != nil {
		t.Error("Base must not prefetch")
	}
	if h.Prefetch == nil || h.Prefetch.BufferEntries != 8 || h.Prefetch.HistoryLen != 48 {
		t.Errorf("HyperTRIO prefetch %+v does not match Table IV", h.Prefetch)
	}
	if h.IOMMU.L2PWC.Entries() != 512 || h.IOMMU.L2PWC.Sets != 32 {
		t.Errorf("L2TLB %+v does not match Table IV", h.IOMMU.L2PWC)
	}
	if h.IOMMU.L3PWC.Entries() != 1024 || h.IOMMU.L3PWC.Sets != 64 {
		t.Errorf("L3TLB %+v does not match Table IV", h.IOMMU.L3PWC)
	}
}

func TestConfigValidation(t *testing.T) {
	good := BaseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.PTBEntries = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PTB accepted")
	}
	bad = good
	bad.Params.LinkGbps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero link rate accepted")
	}
	bad = good
	bad.Params.ArrivalGbps = 300
	if err := bad.Validate(); err == nil {
		t.Error("arrival above link accepted")
	}
}

func TestSingleTenantSaturatesLink(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 1, trace.RR1, 0.02)
	r := run(t, HyperTRIOConfig(), tr)
	if r.Utilization < 0.95 {
		t.Fatalf("single tenant utilization %.1f%%, want ~100%%", r.Utilization*100)
	}
	if r.Drops > r.Packets/100 {
		t.Fatalf("single tenant dropped %d of %d packets", r.Drops, r.Packets)
	}
}

func TestBaseCollapsesAtHighTenantCount(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 128, trace.RR1, 0.002)
	r := run(t, BaseConfig(), tr)
	// Fig. 10: Base at >32 tenants is at most ~15% of the link.
	if r.Utilization > 0.2 {
		t.Fatalf("Base at 128 tenants reached %.1f%% utilization, expected collapse", r.Utilization*100)
	}
	if r.Drops == 0 {
		t.Fatal("Base under overload should drop packets")
	}
}

func TestHyperTRIOBeatsBaseAtScale(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 128, trace.RR1, 0.002)
	base := run(t, BaseConfig(), tr)
	hyper := run(t, HyperTRIOConfig(), tr)
	if hyper.AchievedGbps <= 2*base.AchievedGbps {
		t.Fatalf("HyperTRIO %.1f Gb/s not decisively above Base %.1f Gb/s",
			hyper.AchievedGbps, base.AchievedGbps)
	}
}

func TestNativeModeLineRate(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.005)
	cfg := BaseConfig()
	cfg.TranslationOff = true
	r := run(t, cfg, tr)
	if r.Utilization < 0.99 {
		t.Fatalf("native mode utilization %.2f%%, want ~100%%", r.Utilization*100)
	}
	if r.Drops != 0 {
		t.Fatalf("native mode dropped %d packets", r.Drops)
	}
}

func TestAccountingInvariants(t *testing.T) {
	tr := makeTrace(t, workload.Mediastream, 16, trace.RR4, 0.01)
	r := run(t, HyperTRIOConfig(), tr)
	if r.Packets != uint64(len(tr.Packets)) {
		t.Fatalf("processed %d packets, trace has %d", r.Packets, len(tr.Packets))
	}
	if r.Requests != r.Packets*workload.RequestsPerPacket {
		t.Fatalf("requests %d != packets*3 %d", r.Requests, r.Packets*3)
	}
	if r.Bytes != r.Packets*uint64(DefaultParams().PacketBytes) {
		t.Fatalf("bytes %d inconsistent", r.Bytes)
	}
	if r.DevTLBServed+r.PrefetchServed > r.Requests {
		t.Fatal("served counts exceed requests")
	}
	if r.Utilization < 0 || r.Utilization > 1.001 {
		t.Fatalf("utilization %.3f out of range", r.Utilization)
	}
	if r.PTB.Peak > HyperTRIOConfig().PTBEntries {
		t.Fatalf("PTB peak %d beyond capacity", r.PTB.Peak)
	}
}

func TestDeterministicRuns(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 32, trace.RAND1, 0.004)
	a := run(t, HyperTRIOConfig(), tr)
	b := run(t, HyperTRIOConfig(), tr)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestPrefetcherServesRequests(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 64, trace.RR1, 0.004)
	r := run(t, HyperTRIOConfig(), tr)
	if r.Prefetch.Issued == 0 {
		t.Fatal("no prefetches issued at 64 tenants")
	}
	if r.PrefetchServed == 0 {
		t.Fatal("prefetch buffer served nothing under round-robin interleaving")
	}
}

func TestDevTLBDisabled(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.002)
	cfg := BaseConfig()
	cfg.DevTLB.Sets = 0 // disable: every request goes to the chipset
	cfg.PTBEntries = 64
	cfg.IOMMU.IOTLB = tlb.Config{Name: "iotlb", Sets: 128, Ways: 8, Policy: tlb.LRU}
	r := run(t, cfg, tr)
	if r.DevTLBServed != 0 {
		t.Fatal("disabled DevTLB served requests")
	}
	if r.IOMMU.IOTLB.Lookups == 0 {
		t.Fatal("chipset IOTLB unused")
	}
	if r.IOMMU.Translations != r.Requests {
		t.Fatalf("IOMMU saw %d translations, want all %d requests", r.IOMMU.Translations, r.Requests)
	}
}

func TestOracleDevTLBRuns(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.002)
	cfg := BaseConfig()
	cfg.DevTLB.Policy = tlb.Oracle
	lru := run(t, BaseConfig(), tr)
	oracle := run(t, cfg, tr)
	if oracle.DevTLB.Misses > lru.DevTLB.Misses {
		t.Fatalf("oracle misses %d > LFU misses %d", oracle.DevTLB.Misses, lru.DevTLB.Misses)
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := NewSystem(BaseConfig(), &trace.Trace{}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 1, trace.RR1, 0.001)
	s, err := NewSystem(BaseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestArrivalRateCap(t *testing.T) {
	// Fig. 5 machinery: capping the offered load must cap the result.
	tr := makeTrace(t, workload.Iperf3, 2, trace.RR1, 0.005)
	cfg := HyperTRIOConfig()
	cfg.Params.ArrivalGbps = 20
	r := run(t, cfg, tr)
	if r.AchievedGbps > 21 {
		t.Fatalf("achieved %.1f Gb/s above the 20 Gb/s offered load", r.AchievedGbps)
	}
	if r.AchievedGbps < 18 {
		t.Fatalf("achieved %.1f Gb/s, expected ~20 with ample translation headroom", r.AchievedGbps)
	}
}
