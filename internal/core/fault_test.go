package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hypertrio/internal/fault"
	"hypertrio/internal/obs"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// faultConfig is the full HyperTRIO design with the invariant checker
// composed and the given fault plan loaded (nil for a fault-free run with
// the checker still on).
func faultConfig(p *fault.Plan) Config {
	cfg := HyperTRIOConfig()
	cfg.Fault = p
	cfg.ExtraStages = []pipeline.StageSpec{{Kind: "invariants"}}
	return cfg
}

// runWithStats runs one system and returns its result plus the fault
// injector's accounting (zero when no plan was loaded).
func runWithStats(t *testing.T, cfg Config, tr *trace.Trace) (Result, fault.Stats) {
	t.Helper()
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.FaultStats()
	return r, st
}

// horizonOf measures how long the trace runs fault-free, so plans can be
// scripted to land inside the run regardless of trace scale.
func horizonOf(t *testing.T, tr *trace.Trace) sim.Duration {
	t.Helper()
	r := run(t, faultConfig(nil), tr)
	if r.Elapsed <= 0 {
		t.Fatal("fault-free run reports no elapsed time")
	}
	return r.Elapsed
}

// TestFaultRunDeterministic pins reproducibility: the same plan against
// the same trace yields identical results, identical injector accounting
// and a byte-identical event trace across independent systems.
func TestFaultRunDeterministic(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.005)
	horizon := horizonOf(t, tr)
	plan := fault.InvalidationPlan(9, 8, horizon/16, horizon, true)

	type outcome struct {
		r     Result
		st    fault.Stats
		trace []byte
	}
	runOnce := func() outcome {
		var buf bytes.Buffer
		otr := obs.NewTracer(&buf)
		cfg := faultConfig(plan) // the plan value is shared: read-only once running
		cfg.Obs = &obs.Options{Tracer: otr}
		r, st := runWithStats(t, cfg, tr)
		if err := otr.Flush(); err != nil {
			t.Fatal(err)
		}
		return outcome{r: r, st: st, trace: buf.Bytes()}
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a.r, b.r) {
		t.Errorf("fault-enabled results drifted between identical runs:\n %+v\n %+v", a.r, b.r)
	}
	if a.st != b.st {
		t.Errorf("injector accounting drifted: %+v vs %+v", a.st, b.st)
	}
	if !bytes.Equal(a.trace, b.trace) {
		t.Error("fault-enabled event traces are not byte-identical")
	}
	if a.st.Applied == 0 || a.st.PageInvs == 0 {
		t.Fatalf("plan did not actually fire: %+v", a.st)
	}
}

// TestInvalidationsPerturbTheRun checks the tentpole's point: scripted
// invalidations reach the running datapath and force re-walks that a
// fault-free run does not do.
func TestInvalidationsPerturbTheRun(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.005)
	horizon := horizonOf(t, tr)
	clean, _ := runWithStats(t, faultConfig(nil), tr)

	plan := fault.InvalidationPlan(9, 8, horizon/32, horizon, true)
	faulted, st := runWithStats(t, faultConfig(plan), tr)

	if st.Applied != uint64(len(plan.Events)) {
		t.Errorf("applied %d of %d scripted events", st.Applied, len(plan.Events))
	}
	if st.Rewalks == 0 {
		t.Error("targeted ring-page invalidations forced no re-walks")
	}
	if faulted.IOMMU.Walks <= clean.IOMMU.Walks {
		t.Errorf("faulted run walked %d times, clean %d: invalidations had no effect",
			faulted.IOMMU.Walks, clean.IOMMU.Walks)
	}
	if faulted.DevTLB.Invalidates == 0 {
		t.Error("invalidations never reached the DevTLB")
	}
	if faulted.Packets != clean.Packets {
		t.Errorf("faulted run completed %d packets, clean %d: invalidations must not lose packets",
			faulted.Packets, clean.Packets)
	}
}

// TestWalkerFaultsSlowTheRun pins the retry path end to end: a fault
// window covering the whole run makes every cold walk back off, which
// must show up as retries and a longer run — with no packet lost.
func TestWalkerFaultsSlowTheRun(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.002)
	horizon := horizonOf(t, tr)
	clean, _ := runWithStats(t, faultConfig(nil), tr)

	plan := &fault.Plan{
		Retry:  fault.RetryPolicy{MaxRetries: 2, Backoff: 200 * sim.Nanosecond, BackoffMax: 2 * sim.Microsecond},
		Events: []fault.Event{{At: 0, Kind: fault.WalkerFault, Dur: 4 * horizon}},
	}
	faulted, st := runWithStats(t, faultConfig(plan), tr)

	if st.FaultRetries == 0 {
		t.Fatal("a run-long fault window produced no walk retries")
	}
	if faulted.Elapsed <= clean.Elapsed {
		t.Errorf("faulted run finished at %v, clean at %v: backoff added no latency",
			faulted.Elapsed, clean.Elapsed)
	}
	if faulted.AvgMissLatency <= clean.AvgMissLatency {
		t.Errorf("faulted miss latency %v not above clean %v", faulted.AvgMissLatency, clean.AvgMissLatency)
	}
	if faulted.Packets != clean.Packets {
		t.Errorf("faulted run completed %d packets, clean %d: retried walks must still complete",
			faulted.Packets, clean.Packets)
	}
}

// TestTenantChurnFlushesState pins the churn path: scripted SID teardown
// and re-attach flush per-tenant state mid-run while every conservation
// invariant (checked by the composed invariant stage and core's own
// cross-check inside Run) still holds.
func TestTenantChurnFlushesState(t *testing.T) {
	tr := makeTrace(t, workload.Mediastream, 16, trace.RR4, 0.01)
	horizon := horizonOf(t, tr)
	clean, _ := runWithStats(t, faultConfig(nil), tr)

	plan := fault.ChurnPlan(5, 16, horizon/12, horizon/48, horizon)
	churned, st := runWithStats(t, faultConfig(plan), tr)

	if st.Detaches == 0 || st.Detaches != st.Attaches {
		t.Fatalf("churn detaches=%d attaches=%d, want equal and nonzero", st.Detaches, st.Attaches)
	}
	if st.Dropped == 0 {
		t.Error("tenant teardowns dropped no cached state")
	}
	if churned.DevTLB.Invalidates == 0 {
		t.Error("teardown flushes never reached the DevTLB")
	}
	if churned.Packets != clean.Packets {
		t.Errorf("churned run completed %d packets, clean %d: churn must not lose packets",
			churned.Packets, clean.Packets)
	}
}

// TestInvariantStageTransparent pins that composing the checker changes
// nothing: the simulation outcome is identical with and without it.
func TestInvariantStageTransparent(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.002)
	for _, base := range []struct {
		name string
		cfg  Config
	}{
		{"base", BaseConfig()},
		{"hypertrio", HyperTRIOConfig()},
	} {
		t.Run(base.name, func(t *testing.T) {
			plain := run(t, base.cfg, tr)
			checked := base.cfg
			checked.ExtraStages = []pipeline.StageSpec{{Kind: "invariants"}}
			if got := run(t, checked, tr); !reflect.DeepEqual(got, plain) {
				t.Errorf("invariant checker perturbed the run:\n with    %+v\n without %+v", got, plain)
			}
		})
	}
}

// TestFaultFreeRunIdenticalWithPlanNil pins zero-cost-off at the system
// level: Config.Fault == nil builds no injector and changes nothing
// against a config that never heard of the fault subsystem.
func TestFaultFreeRunIdenticalWithPlanNil(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.002)
	cfg := HyperTRIOConfig()
	plain := run(t, cfg, tr)
	cfg.Fault = nil
	again := run(t, cfg, tr)
	if !reflect.DeepEqual(plain, again) {
		t.Error("nil fault plan perturbed the run")
	}
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.FaultStats(); ok {
		t.Error("fault-free system reports injector stats")
	}
}

// TestRemapUnknownSIDFailsTheRun pins the sticky-error path: a plan
// touching a tenant the trace never built surfaces as a run error, not a
// silent no-op.
func TestRemapUnknownSIDFailsTheRun(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.002)
	cfg := faultConfig(&fault.Plan{Events: []fault.Event{
		{At: 0, Kind: fault.Remap, SID: 99, IOVA: workload.RingPageFor(99), Shift: 12},
	}})
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "remap") {
		t.Fatalf("Run() = %v, want the remap failure", err)
	}
}

// TestConfigRejectsInvalidPlan pins plan validation at config level.
func TestConfigRejectsInvalidPlan(t *testing.T) {
	cfg := HyperTRIOConfig()
	cfg.Fault = &fault.Plan{Events: []fault.Event{{At: -1, Kind: fault.FlushAll}}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an invalid fault plan")
	}
}
