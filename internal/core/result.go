package core

import (
	"fmt"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
)

// Result is what one simulation run reports.
type Result struct {
	// Packet accounting.
	Packets uint64 // packets fully translated and processed
	Drops   uint64 // arrival attempts rejected for lack of a PTB entry
	Bytes   uint64

	// Timing.
	Elapsed sim.Duration // time of the last packet completion

	// AchievedGbps is the average bandwidth over the run; Utilization is
	// its fraction of the nominal link rate.
	AchievedGbps float64
	Utilization  float64

	// Requests accounting.
	Requests       uint64       // translation requests observed
	DevTLBServed   uint64       // requests answered by the DevTLB
	PrefetchServed uint64       // requests answered by the Prefetch Buffer
	AvgMissLatency sim.Duration // mean latency of requests that went to the chipset

	// Isolation metrics over per-tenant mean packet service times
	// (first arrival attempt to completion): Jain's fairness index is 1.0
	// when every tenant sees the same mean latency and 1/n in the worst
	// case; the Min/Max pair bounds the spread. The partitioned designs
	// exist precisely to keep these flat as tenants are added.
	LatencyFairness  float64
	MinTenantLatency sim.Duration
	MaxTenantLatency sim.Duration
	WorstPacket      sim.Duration // single slowest packet service time

	// Structure statistics.
	DevTLB   tlb.Stats
	PTB      device.PTBStats
	Prefetch device.PrefetchStats
	IOMMU    iommu.Stats

	// Series is the sampled time series when Config.Obs enabled the
	// periodic sampler; nil otherwise. It rides on the result so runners
	// can export per-run CSVs without re-plumbing the System.
	Series *obs.Series
}

// PrefetchServedShare is the fraction of all translation requests
// answered from the Prefetch Buffer (the paper reports 45% for websearch
// with 1024 tenants).
func (r Result) PrefetchServedShare() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.PrefetchServed) / float64(r.Requests)
}

// DropRate is the fraction of arrival attempts that were dropped.
func (r Result) DropRate() float64 {
	attempts := r.Packets + r.Drops
	if attempts == 0 {
		return 0
	}
	return float64(r.Drops) / float64(attempts)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%.2f Gb/s (%.1f%% of link), %d packets, %d drops, devtlb hit %.1f%%",
		r.AchievedGbps, r.Utilization*100, r.Packets, r.Drops, r.DevTLB.HitRate()*100)
}
