package core

import (
	"fmt"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
)

// Result is what one simulation run reports.
type Result struct {
	// Packet accounting.
	Packets uint64 // packets fully translated and processed
	Drops   uint64 // arrival attempts rejected for lack of a PTB entry
	Bytes   uint64

	// Timing.
	Elapsed sim.Duration // time of the last packet completion

	// AchievedGbps is the average bandwidth over the run; Utilization is
	// its fraction of the nominal link rate.
	AchievedGbps float64
	Utilization  float64

	// Requests accounting.
	Requests       uint64       // translation requests observed
	DevTLBServed   uint64       // requests answered by the DevTLB
	PrefetchServed uint64       // requests answered by the Prefetch Buffer
	AvgMissLatency sim.Duration // mean latency of requests that went to the chipset

	// Isolation metrics over per-tenant mean packet service times
	// (first arrival attempt to completion): Jain's fairness index is 1.0
	// when every tenant sees the same mean latency and 1/n in the worst
	// case; the Min/Max pair bounds the spread. The partitioned designs
	// exist precisely to keep these flat as tenants are added.
	LatencyFairness  float64
	MinTenantLatency sim.Duration
	MaxTenantLatency sim.Duration
	WorstPacket      sim.Duration // single slowest packet service time

	// Classes breaks the run down by tenant class for class-partitioned
	// populations (scenario runs), in the population's class order; nil
	// for uniform single-profile traces.
	Classes []ClassResult

	// Structure statistics.
	DevTLB   tlb.Stats
	PTB      device.PTBStats
	Prefetch device.PrefetchStats
	IOMMU    iommu.Stats

	// Series is the sampled time series when Config.Obs enabled the
	// periodic sampler; nil otherwise. It rides on the result so runners
	// can export per-run CSVs without re-plumbing the System.
	Series *obs.Series
}

// ClassResult is one tenant class's share of a run: throughput, drop
// and latency accounting over the class's contiguous SID range, plus
// Jain's fairness index *within* the class — the isolation metric the
// adversarial scenarios pin (a victim class staying fair and fast while
// a bully class thrashes the shared structures).
type ClassResult struct {
	Name       string
	Tenants    int
	Packets    uint64
	Drops      uint64
	Gbps       float64      // class throughput over the run's elapsed time
	AvgLatency sim.Duration // packet-weighted mean service time
	Fairness   float64      // Jain's index over the class's per-tenant mean latencies
}

// DropRate is the fraction of the class's arrival attempts dropped.
func (c ClassResult) DropRate() float64 {
	attempts := c.Packets + c.Drops
	if attempts == 0 {
		return 0
	}
	return float64(c.Drops) / float64(attempts)
}

// result assembles the Result view from the metric cells and the chain's
// stage statistics at end of run.
func (s *System) result() Result {
	r := Result{
		Packets:        s.packets.Value(),
		Drops:          s.drops.Value(),
		Bytes:          s.bytes.Value(),
		Elapsed:        sim.Duration(s.lastCompletion),
		Requests:       s.requests.Value(),
		DevTLBServed:   s.chain.Served("devtlb").Value(),
		PrefetchServed: s.chain.Served("prefetch").Value(),
	}
	if s.sampler != nil {
		r.Series = s.sampler.series
	}
	if s.lastCompletion > 0 {
		r.AchievedGbps = float64(r.Bytes*8) / sim.Duration(s.lastCompletion).Seconds() / 1e9
		r.Utilization = r.AchievedGbps / s.cfg.Params.LinkGbps
	}
	if n := s.missCount.Value(); n > 0 {
		r.AvgMissLatency = sim.Duration(s.missLatencySum.Value()) / sim.Duration(n)
	}
	// tenantLat is SID-indexed, so walking it front to back is already
	// the deterministic ascending-SID order the floating-point
	// accumulation needs: identical runs stay bitwise identical. Tenants
	// that completed no packet (count == 0) contribute nothing, matching
	// the former map which only held tenants with completions.
	var sum, sumSq float64
	active := 0
	first := true
	for sid := range s.tenantLat {
		tl := &s.tenantLat[sid]
		if tl.count == 0 {
			continue
		}
		active++
		mean := float64(tl.sum) / float64(tl.count)
		sum += mean
		sumSq += mean * mean
		m := sim.Duration(mean)
		if first || m < r.MinTenantLatency {
			r.MinTenantLatency = m
		}
		if m > r.MaxTenantLatency {
			r.MaxTenantLatency = m
		}
		if tl.worst > r.WorstPacket {
			r.WorstPacket = tl.worst
		}
		first = false
	}
	if sumSq > 0 {
		r.LatencyFairness = sum * sum / (float64(active) * sumSq)
	}
	// Per-class breakdown: the class partition is contiguous SID ranges
	// in class order, so one SID-ascending walk per class keeps the
	// floating-point accumulation order deterministic.
	if len(s.meta.Classes) > 0 {
		r.Classes = make([]ClassResult, 0, len(s.meta.Classes))
		lo := 1
		for _, cl := range s.meta.Classes {
			cr := ClassResult{Name: cl.Name, Tenants: cl.Tenants}
			var cSum, cSumSq float64
			var latSum sim.Duration
			cActive := 0
			for sid := lo; sid < lo+cl.Tenants && sid < len(s.tenantLat); sid++ {
				if s.tenantDrops != nil {
					cr.Drops += s.tenantDrops[sid]
				}
				tl := &s.tenantLat[sid]
				if tl.count == 0 {
					continue
				}
				cActive++
				cr.Packets += tl.count
				latSum += tl.sum
				mean := float64(tl.sum) / float64(tl.count)
				cSum += mean
				cSumSq += mean * mean
			}
			if cr.Packets > 0 {
				cr.AvgLatency = latSum / sim.Duration(cr.Packets)
			}
			if s.lastCompletion > 0 {
				cr.Gbps = float64(cr.Packets*uint64(s.cfg.Params.PacketBytes)*8) / sim.Duration(s.lastCompletion).Seconds() / 1e9
			}
			if cSumSq > 0 {
				cr.Fairness = cSum * cSum / (float64(cActive) * cSumSq)
			}
			r.Classes = append(r.Classes, cr)
			lo += cl.Tenants
		}
	}
	r.DevTLB = s.chain.CacheStats("devtlb")
	r.PTB = s.chain.PTBStats()
	r.Prefetch = s.chain.PrefetchStats()
	r.IOMMU = s.chain.IOMMUStats()
	return r
}

// PrefetchServedShare is the fraction of all translation requests
// answered from the Prefetch Buffer (the paper reports 45% for websearch
// with 1024 tenants).
func (r Result) PrefetchServedShare() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.PrefetchServed) / float64(r.Requests)
}

// DropRate is the fraction of arrival attempts that were dropped.
func (r Result) DropRate() float64 {
	attempts := r.Packets + r.Drops
	if attempts == 0 {
		return 0
	}
	return float64(r.Drops) / float64(attempts)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%.2f Gb/s (%.1f%% of link), %d packets, %d drops, devtlb hit %.1f%%",
		r.AchievedGbps, r.Utilization*100, r.Packets, r.Drops, r.DevTLB.HitRate()*100)
}
