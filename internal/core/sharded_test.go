package core

import (
	"reflect"
	"testing"

	"hypertrio/internal/fault"
	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// stripUnmaps copies the trace with every driver unmap removed. Unmaps
// are an instantaneous device↔chipset coupling, so a trace without them
// (and a config without prefetch/faults/obs) is what makes a sharded run
// eligible for true parallel execution.
func stripUnmaps(tr *trace.Trace) *trace.Trace {
	cp := *tr
	cp.Packets = make([]workload.Packet, len(tr.Packets))
	copy(cp.Packets, tr.Packets)
	for i := range cp.Packets {
		cp.Packets[i].UnmapIOVA, cp.Packets[i].UnmapShift = 0, 0
	}
	return &cp
}

// TestShardedMatchesSerial is the tentpole's non-negotiable: for every
// shard count the sharded run's Result is deep-equal to the serial run,
// across lockstep-forcing configurations (unmaps in the trace,
// prefetching) and parallel-eligible ones (stripped traces, native
// path, capped walkers exercising the queue at the domain boundary).
func TestShardedMatchesSerial(t *testing.T) {
	raw := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.02)
	stripped := stripUnmaps(raw)

	walkerCapped := BaseConfig()
	walkerCapped.IOMMUWalkers = 2

	serialReqs := BaseConfig()
	serialReqs.SerialRequests = true

	native := BaseConfig()
	native.TranslationOff = true

	cases := []struct {
		name     string
		cfg      Config
		tr       *trace.Trace
		parallel bool // mode Seal must choose at shards >= 2
	}{
		{"base-unmaps-lockstep", BaseConfig(), raw, false},
		{"hypertrio-prefetch-lockstep", HyperTRIOConfig(), raw, false},
		{"base-parallel", BaseConfig(), stripped, true},
		{"walker-capped-parallel", walkerCapped, stripped, true},
		{"serial-requests-parallel", serialReqs, stripped, true},
		{"native-parallel", native, raw, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := run(t, tc.cfg, tc.tr)
			for _, shards := range []int{2, 8} {
				cfg := tc.cfg
				cfg.Shards = shards
				s, err := NewSystem(cfg, tc.tr)
				if err != nil {
					t.Fatal(err)
				}
				if s.sharded == nil {
					t.Fatalf("shards=%d built no sharded coordinator", shards)
				}
				if s.sharded.Parallel() != tc.parallel {
					t.Fatalf("shards=%d parallel=%v, want %v", shards, s.sharded.Parallel(), tc.parallel)
				}
				// Exercise the goroutine-per-domain execution even on a
				// single-P test runner (no-op for lockstep topologies).
				s.sharded.ForceThreads()
				got, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d diverged from serial:\n got  %+v\n want %+v", shards, got, want)
				}
			}
		})
	}
}

// TestShardedParallelRepeatable runs the goroutine-per-domain mode
// several times: scheduling nondeterminism must never reach the Result.
func TestShardedParallelRepeatable(t *testing.T) {
	tr := stripUnmaps(makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.02))
	cfg := BaseConfig()
	cfg.Shards = 2
	threaded := func() Result {
		s, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		s.sharded.ForceThreads()
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := threaded()
	for i := 0; i < 3; i++ {
		if got := threaded(); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel run %d drifted:\n got  %+v\n want %+v", i, got, want)
		}
	}
}

// boundaryInstants returns timestamps that land exactly on cross-domain
// handoffs of a sharded run: a link arrival slot, the instant a demand
// miss is delivered into the IOMMU domain, and the instant its earliest
// possible completion is delivered back — the timestamps where a
// mis-ordered merge would fire a scripted fault on the wrong side of the
// handoff.
func boundaryInstants(cfg Config) []sim.Time {
	dt := cfg.Params.Interarrival()
	toIO := cfg.Params.TLBHit + cfg.Params.PCIeOneWay
	walkMin := cfg.Params.DRAMLatency // at least one memory access
	return []sim.Time{
		sim.Time(dt),        // first arrival slot
		sim.Time(dt + toIO), // first miss lands at the chipset
		sim.Time(dt + toIO + walkMin + cfg.Params.PCIeOneWay), // earliest completion returns
		sim.Time(5*dt + toIO), // a later miss, mid-stream
	}
}

// TestShardedBoundaryInvalidation is the regression the fault-injector
// interplay demands: a tenant-broadcast invalidation scripted to land
// exactly on a domain-boundary timestamp must fire identically in the
// serial and sharded executions — same Result, same injector accounting.
func TestShardedBoundaryInvalidation(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.02)
	for _, at := range boundaryInstants(BaseConfig()) {
		plan := &fault.Plan{Events: []fault.Event{
			{At: at, Kind: fault.InvalidateTenant, SID: 1},
			{At: at, Kind: fault.FlushAll},
		}}
		cfg := BaseConfig()
		cfg.Fault = plan
		wantR, wantSt := runWithStats(t, cfg, tr)
		if wantSt.Applied == 0 {
			t.Fatalf("at=%v: plan did not fire in the serial run", at)
		}
		cfg.Shards = 2
		gotR, gotSt := runWithStats(t, cfg, tr)
		if !reflect.DeepEqual(gotR, wantR) {
			t.Errorf("at=%v: sharded result diverged:\n got  %+v\n want %+v", at, gotR, wantR)
		}
		if gotSt != wantSt {
			t.Errorf("at=%v: injector accounting diverged: %+v vs %+v", at, gotSt, wantSt)
		}
	}
}

// TestShardedRunUntilBoundary pins the RunUntil interplay: stepping a
// sharded system to an exact boundary instant and then draining it must
// fire the same number of events and produce the same Result as doing
// the same to a serial system — the windowed execution path the fault
// tests step through.
func TestShardedRunUntilBoundary(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.02)
	cfg := BaseConfig()
	plan := &fault.Plan{Events: []fault.Event{
		{At: boundaryInstants(cfg)[1], Kind: fault.InvalidateTenant, SID: 2},
	}}
	cfg.Fault = plan

	serial, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	shardedCfg := cfg
	shardedCfg.Shards = 2
	sharded, err := NewSystem(shardedCfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	serial.start()
	sharded.start()
	for _, at := range boundaryInstants(cfg) {
		ns := serial.engine.RunUntil(at)
		nh := sharded.sharded.RunUntil(at)
		if ns != nh {
			t.Fatalf("window ending %v fired %d serial vs %d sharded events", at, ns, nh)
		}
	}
	serial.engine.Run()
	for sharded.sharded.Step() {
	}
	if serial.engine.Fired() != sharded.sharded.Fired() {
		t.Fatalf("total fired diverged: %d serial vs %d sharded",
			serial.engine.Fired(), sharded.sharded.Fired())
	}
	if serial.consumed != len(tr.Packets) || sharded.consumed != len(tr.Packets) {
		t.Fatalf("runs did not drain: serial %d, sharded %d of %d packets",
			serial.consumed, sharded.consumed, len(tr.Packets))
	}
	a, b := serial.result(), sharded.result()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("windowed executions diverged:\n serial  %+v\n sharded %+v", a, b)
	}
}

// TestShardedWarmPathZeroAllocs extends the zero-alloc pin to sharded
// mode: the merged single-threaded execution of a parallel-eligible
// two-domain system (messages crossing rings, records pooled per domain)
// allocates nothing per event once warm.
func TestShardedWarmPathZeroAllocs(t *testing.T) {
	tr := stripUnmaps(makeTrace(t, workload.Iperf3, 1, trace.RR1, 0.2))
	cfg := BaseConfig()
	cfg.Shards = 2
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !s.sharded.Parallel() {
		t.Fatal("stripped single-tenant run should be parallel-eligible")
	}
	s.start()
	for i := 0; i < 3000; i++ {
		if !s.sharded.Step() {
			t.Fatal("sharded engine drained during warm-up; trace too small for the test")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 10; i++ {
			s.sharded.Step()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm sharded packet path allocated %v per 10 events, want 0", allocs)
	}
}
