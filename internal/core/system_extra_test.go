package core

import (
	"testing"

	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

func TestSerialRequestsSlower(t *testing.T) {
	// Serializing a packet's translations (legacy device) must never be
	// faster than issuing them concurrently.
	tr := makeTrace(t, workload.Websearch, 32, trace.RR1, 0.004)
	par := run(t, BaseConfig(), tr)
	cfg := BaseConfig()
	cfg.SerialRequests = true
	ser := run(t, cfg, tr)
	if ser.AchievedGbps > par.AchievedGbps*1.01 {
		t.Fatalf("serial (%.1f) faster than concurrent (%.1f)", ser.AchievedGbps, par.AchievedGbps)
	}
	if ser.Packets != par.Packets {
		t.Fatalf("packet counts differ: %d vs %d", ser.Packets, par.Packets)
	}
}

func TestUnmapInvalidatesDevTLB(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 4, trace.RR1, 0.05)
	unmaps := 0
	for _, p := range tr.Packets {
		if p.UnmapIOVA != 0 {
			unmaps++
		}
	}
	if unmaps == 0 {
		t.Skip("trace carries no unmaps at this scale/seed")
	}
	r := run(t, HyperTRIOConfig(), tr)
	if r.DevTLB.Invalidates == 0 {
		t.Fatalf("trace has %d unmaps but the DevTLB saw no invalidations", unmaps)
	}
}

func TestPTBPressureSweep(t *testing.T) {
	// Bigger PTBs must help monotonically (within noise) at a miss-heavy
	// operating point: this is the mechanism behind Fig. 12b.
	tr := makeTrace(t, workload.Iperf3, 128, trace.RR1, 0.002)
	prev := -1.0
	for _, size := range []int{1, 4, 16, 64} {
		cfg := HyperTRIOConfig()
		cfg.Prefetch = nil
		cfg.PTBEntries = size
		r := run(t, cfg, tr)
		if r.AchievedGbps < prev*0.95 {
			t.Fatalf("PTB=%d achieved %.1f, less than smaller buffer's %.1f", size, r.AchievedGbps, prev)
		}
		prev = r.AchievedGbps
		if r.PTB.Peak > size {
			t.Fatalf("PTB peak %d exceeded capacity %d", r.PTB.Peak, size)
		}
	}
}

func TestPartitionedDevTLBIsolatesTenants(t *testing.T) {
	// With BySID partitioning, DevTLB hit rate in the mid-range (2
	// tenants per row) must beat the by-address Base, whose identical
	// guest addresses collide (the Fig. 12a mechanism: utilization
	// "stays high until multiple devices start using the same
	// partition").
	tr := makeTrace(t, workload.Iperf3, 16, trace.RR1, 0.01)
	base := run(t, BaseConfig(), tr)
	part := run(t, partitionedConfigForTest(), tr)
	if part.DevTLB.HitRate() <= base.DevTLB.HitRate() {
		t.Fatalf("partitioned hit rate %.3f not above base %.3f",
			part.DevTLB.HitRate(), base.DevTLB.HitRate())
	}
}

func partitionedConfigForTest() Config {
	cfg := HyperTRIOConfig()
	cfg.PTBEntries = 1
	cfg.Prefetch = nil
	return cfg
}

func TestInterarrivalMatchesLinkRate(t *testing.T) {
	p := DefaultParams()
	p.LinkGbps = 10
	// 1542 B at 10 Gb/s = 1233.6 ns.
	if got := p.Interarrival(); got != sim.FromNanos(1233.6) {
		t.Fatalf("interarrival = %v", got)
	}
	p.ArrivalGbps = 5
	if got := p.Interarrival(); got != sim.FromNanos(2467.2) {
		t.Fatalf("capped interarrival = %v", got)
	}
}

func TestElapsedCoversTailLatency(t *testing.T) {
	// The run's elapsed time must include the last packet's completion,
	// not just its arrival.
	tr := makeTrace(t, workload.Iperf3, 2, trace.RR1, 0.001)
	r := run(t, BaseConfig(), tr)
	arrivalSpan := sim.Duration(len(tr.Packets)) * DefaultParams().Interarrival()
	if r.Elapsed < arrivalSpan {
		t.Fatalf("elapsed %v shorter than the arrival span %v", r.Elapsed, arrivalSpan)
	}
}

func TestDropsRetrySamePacketUntilAccepted(t *testing.T) {
	// Every trace packet is eventually processed exactly once even under
	// heavy dropping (Base at high tenant count).
	tr := makeTrace(t, workload.Websearch, 128, trace.RR1, 0.001)
	r := run(t, BaseConfig(), tr)
	if r.Packets != uint64(len(tr.Packets)) {
		t.Fatalf("processed %d of %d packets", r.Packets, len(tr.Packets))
	}
	if r.Drops == 0 {
		t.Fatal("expected drops at this operating point")
	}
}

func TestPrefetchDisabledMeansNoPrefetchStats(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 16, trace.RR1, 0.002)
	cfg := HyperTRIOConfig()
	cfg.Prefetch = nil
	r := run(t, cfg, tr)
	if r.Prefetch.Issued != 0 || r.PrefetchServed != 0 {
		t.Fatalf("prefetch stats non-zero with prefetch disabled: %+v", r.Prefetch)
	}
}

func TestHistoryRegisterAdapts(t *testing.T) {
	// With the adaptive register, sustained prefetching should move the
	// history length away from its initial value toward observed latency.
	tr := makeTrace(t, workload.Websearch, 64, trace.RR1, 0.004)
	r := run(t, HyperTRIOConfig(), tr)
	if r.Prefetch.Issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if r.Prefetch.Predictor.Predictions == 0 {
		t.Fatal("predictor never consulted")
	}
}

func TestIsolationMetrics(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 16, trace.RR1, 0.01)
	r := run(t, HyperTRIOConfig(), tr)
	if r.LatencyFairness <= 0 || r.LatencyFairness > 1.0001 {
		t.Fatalf("Jain index %v out of (0,1]", r.LatencyFairness)
	}
	if r.MinTenantLatency <= 0 || r.MaxTenantLatency < r.MinTenantLatency {
		t.Fatalf("latency bounds inverted: %v..%v", r.MinTenantLatency, r.MaxTenantLatency)
	}
	if r.WorstPacket < r.MaxTenantLatency {
		t.Fatalf("worst packet %v below max mean %v", r.WorstPacket, r.MaxTenantLatency)
	}
}

func TestPartitioningImprovesFairness(t *testing.T) {
	// 16 iperf3 tenants: partitioned rows isolate tenants, so per-tenant
	// mean latencies must be at least as uniform as the shared Base
	// DevTLB where ring slots collide.
	tr := makeTrace(t, workload.Iperf3, 16, trace.RR1, 0.02)
	base := run(t, BaseConfig(), tr)
	part := run(t, partitionedConfigForTest(), tr)
	if part.LatencyFairness < base.LatencyFairness-0.01 {
		t.Fatalf("partitioned fairness %.3f below base %.3f",
			part.LatencyFairness, base.LatencyFairness)
	}
}

func TestFiveLevelSlowerThanFour(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 64, trace.RR1, 0.002)
	cfg4 := BaseConfig()
	cfg5 := BaseConfig()
	cfg5.PageTableLevels = 5
	r4 := run(t, cfg4, tr)
	r5 := run(t, cfg5, tr)
	if r5.AchievedGbps > r4.AchievedGbps*1.01 {
		t.Fatalf("5-level (%.1f) beat 4-level (%.1f)", r5.AchievedGbps, r4.AchievedGbps)
	}
	if r5.AvgMissLatency <= r4.AvgMissLatency {
		t.Fatalf("5-level walk latency %v not above 4-level %v", r5.AvgMissLatency, r4.AvgMissLatency)
	}
}
