package core

import (
	"fmt"
	"sort"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// System is one instantiated simulation: a configuration bound to a
// hyper-tenant trace with per-tenant page tables built and ready to walk.
type System struct {
	cfg Config
	tr  *trace.Trace

	engine *sim.Engine
	dt     sim.Duration // packet inter-arrival gap

	host    *mem.Space
	ctx     *mem.ContextTable
	spaces  map[mem.SID]*workload.AddressSpace
	devtlb  *tlb.Cache // nil when disabled
	pu      *device.PrefetchUnit
	ptb     *device.PTB
	chipset *iommu.IOMMU

	cursor       int
	unmapApplied bool
	firstAttempt sim.Time // when the packet at cursor first hit the link
	haveAttempt  bool

	// Walker pool (Config.IOMMUWalkers > 0): translations queue for a
	// free walker once they reach the chipset.
	walkersBusy int
	walkQueue   []func(*sim.Engine)

	// Metric cells. The registry (see Registry) names these for export;
	// Result is a view assembled from the same cells, so there is no
	// second accounting path to drift out of sync.
	packets        obs.Counter
	drops          obs.Counter
	bytes          obs.Counter
	requests       obs.Counter
	devtlbServed   obs.Counter
	prefetchServed obs.Counter
	missLatencySum obs.Counter // picoseconds
	missCount      obs.Counter
	missHist       obs.Histogram // chipset round-trip latency, ps
	lastCompletion sim.Time
	tenantLat      map[mem.SID]*tenantLatency

	// Observability (all zero when Config.Obs is unset; the simulation's
	// outcome is byte-identical either way).
	otr         *obs.Tracer
	registry    *obs.Registry
	series      *obs.Series
	sampleEvery sim.Duration

	// Sampler window state: values at the previous sample, so each Point
	// reports rates over its window rather than cumulative averages.
	lastSampleAt   sim.Time
	prevBytes      uint64
	prevDevHits    uint64
	prevDevLookups uint64
	prevPBHits     uint64
	prevPBLookups  uint64
}

// tenantLatency aggregates one tenant's packet service times (first
// arrival attempt to completion), the basis of the isolation metrics.
type tenantLatency struct {
	sum   sim.Duration
	count uint64
	worst sim.Duration
}

// NewSystem builds per-tenant page tables for every SID in the trace and
// instantiates the configured hardware. A trace with tenants but no
// packets is legal — an aggressive Scale can round a benchmark down to
// zero packets — and runs to a zeroed Result.
func NewSystem(cfg Config, tr *trace.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Tenants <= 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	s := &System{
		cfg:       cfg,
		tr:        tr,
		engine:    sim.NewEngine(),
		dt:        cfg.Params.Interarrival(),
		host:      mem.NewSpace("host", 0x1_0000_0000, 0),
		ctx:       mem.NewContextTable(),
		spaces:    make(map[mem.SID]*workload.AddressSpace, tr.Tenants),
		tenantLat: make(map[mem.SID]*tenantLatency, tr.Tenants),
	}
	profile := tr.Profile
	if err := profile.Validate(); err != nil {
		// Traces built by older tools may lack the embedded profile;
		// fall back to the benchmark's calibration.
		profile = workload.ProfileFor(tr.Benchmark)
	}
	levels := cfg.PageTableLevels
	if levels == 0 {
		levels = mem.Levels
	}
	tenants := make(map[mem.SID]*mem.NestedTable, tr.Tenants)
	for i := 1; i <= tr.Tenants; i++ {
		sid := mem.SID(i)
		as, err := workload.BuildAddressSpaceLevels(profile, sid, s.host, s.ctx, levels)
		if err != nil {
			return nil, fmt.Errorf("core: building tenant %d: %w", i, err)
		}
		s.spaces[sid] = as
		tenants[sid] = as.Nested
	}
	if !cfg.TranslationOff {
		if cfg.DevTLB.Sets > 0 {
			s.devtlb = tlb.New(cfg.DevTLB)
			if cfg.DevTLB.Policy == tlb.Oracle {
				s.devtlb.SetFuture(tlb.NewFuture(flattenKeys(tr)))
			}
		}
		if cfg.Prefetch != nil {
			s.pu = device.NewPrefetchUnit(*cfg.Prefetch)
		}
		s.ptb = device.NewPTB(cfg.PTBEntries)
		s.chipset = iommu.New(cfg.IOMMU, s.ctx, tenants)
	}
	if o := cfg.Obs; o != nil {
		s.otr = o.Tracer
		if o.EngineEvents && o.Tracer != nil {
			s.engine.SetProbe(obs.EngineProbe{T: o.Tracer})
		}
		s.sampleEvery = o.SampleEvery
	}
	return s, nil
}

// Registry returns the system's metrics registry, building it on first
// use: every component's counter cells and occupancy gauges published
// under stable dotted names (core.*, devtlb.*, ptb.*, prefetch.*,
// iommu.*). The registry is a name directory over the cells the model
// updates anyway, so calling it costs nothing on the simulation path.
func (s *System) Registry() *obs.Registry {
	if s.registry == nil {
		s.registry = obs.NewRegistry()
		s.register(s.registry)
	}
	return s.registry
}

func (s *System) register(r *obs.Registry) {
	r.Counter("core.packets", &s.packets)
	r.Counter("core.drops", &s.drops)
	r.Counter("core.bytes", &s.bytes)
	r.Counter("core.requests", &s.requests)
	r.Counter("core.devtlb_served", &s.devtlbServed)
	r.Counter("core.prefetch_served", &s.prefetchServed)
	r.Counter("core.miss_latency_ps", &s.missLatencySum)
	r.Counter("core.misses", &s.missCount)
	r.Histogram("core.miss_latency", &s.missHist)
	r.Gauge("core.walkers_busy", func() float64 { return float64(s.walkersBusy) })
	r.Gauge("core.walk_queue", func() float64 { return float64(len(s.walkQueue)) })
	if s.devtlb != nil {
		s.devtlb.Register(r, "devtlb")
	}
	if s.ptb != nil {
		s.ptb.Register(r, "ptb")
	}
	if s.pu != nil {
		s.pu.Register(r, "prefetch")
	}
	if s.chipset != nil {
		s.chipset.Register(r, "iommu")
	}
}

// flattenKeys produces the DevTLB's ideal lookup sequence for Belady
// replacement: every packet is eventually accepted exactly once, so the
// DevTLB observes the flattened trace in order.
func flattenKeys(tr *trace.Trace) []tlb.Key {
	keys := make([]tlb.Key, 0, len(tr.Packets)*workload.RequestsPerPacket)
	for _, p := range tr.Packets {
		keys = append(keys,
			iommu.PageKey(p.SID, p.Ring, workload.PageShiftOf(p.Ring)),
			iommu.PageKey(p.SID, p.Data, workload.PageShiftOf(p.Data)),
			iommu.PageKey(p.SID, p.Mailbox, workload.PageShiftOf(p.Mailbox)),
		)
	}
	return keys
}

// Run replays the whole trace and returns the metrics. It may be called
// once per System. A zero-packet trace drains immediately and reports a
// zeroed Result (no NaN rates, no division by the empty run).
func (s *System) Run() (Result, error) {
	if s.engine.Fired() > 0 {
		return Result{}, fmt.Errorf("core: System.Run called twice")
	}
	// The first slot lands one inter-arrival gap in, so that N packets
	// occupy N link slots and measured bandwidth can never exceed the
	// offered rate by a fencepost.
	s.engine.Schedule(s.dt, s.arrival)
	if s.sampleEvery > 0 {
		s.series = &obs.Series{Interval: s.sampleEvery}
		s.engine.ScheduleLabeled(s.sampleEvery, "sample", s.sampleTick)
	}
	s.engine.Run()
	if s.cursor != len(s.tr.Packets) {
		return Result{}, fmt.Errorf("core: simulation drained with %d of %d packets unprocessed",
			len(s.tr.Packets)-s.cursor, len(s.tr.Packets))
	}
	if s.series != nil {
		// Close the final partial window so short runs still get a point.
		if now := s.engine.Now(); now > s.lastSampleAt {
			s.recordSample(now)
		}
	}
	return s.result(), nil
}

// sampleTick is the periodic time-series sampler. It only reads model
// state, so enabling it cannot change simulation outcomes; it
// reschedules itself only while model events remain pending, so it
// never keeps a drained engine alive.
func (s *System) sampleTick(e *sim.Engine, now sim.Time) {
	s.recordSample(now)
	if e.Pending() > 0 {
		e.ScheduleLabeled(s.sampleEvery, "sample", s.sampleTick)
	}
}

// recordSample appends one Point covering the window since the previous
// sample. Rates are windowed deltas, not cumulative averages, so the
// series shows transients (PTB fill-up, prefetcher warm-up) that the
// end-of-run Result integrates away.
func (s *System) recordSample(now sim.Time) {
	window := now.Sub(s.lastSampleAt)
	if window <= 0 {
		return
	}
	p := obs.Point{T: int64(now)}
	bytes := s.bytes.Value()
	p.Gbps = float64((bytes-s.prevBytes)*8) / window.Seconds() / 1e9
	s.prevBytes = bytes
	if s.ptb != nil {
		p.PTBInUse = s.ptb.InUse()
	}
	if s.devtlb != nil {
		st := s.devtlb.Stats()
		if dl := st.Lookups - s.prevDevLookups; dl > 0 {
			p.DevTLBHitRate = float64(st.Hits-s.prevDevHits) / float64(dl)
		}
		s.prevDevHits, s.prevDevLookups = st.Hits, st.Lookups
	}
	if s.pu != nil {
		st := s.pu.Stats().Buffer
		if dl := st.Lookups - s.prevPBLookups; dl > 0 {
			p.PBHitRate = float64(st.Hits-s.prevPBHits) / float64(dl)
		}
		s.prevPBHits, s.prevPBLookups = st.Hits, st.Lookups
	}
	p.WalkersBusy = s.walkersBusy
	if s.cfg.IOMMUWalkers > 0 {
		p.WalkerUtil = float64(s.walkersBusy) / float64(s.cfg.IOMMUWalkers)
	}
	s.series.Points = append(s.series.Points, p)
	s.lastSampleAt = now
}

func (s *System) result() Result {
	r := Result{
		Packets:        s.packets.Value(),
		Drops:          s.drops.Value(),
		Bytes:          s.bytes.Value(),
		Elapsed:        sim.Duration(s.lastCompletion),
		Requests:       s.requests.Value(),
		DevTLBServed:   s.devtlbServed.Value(),
		PrefetchServed: s.prefetchServed.Value(),
		Series:         s.series,
	}
	if s.lastCompletion > 0 {
		r.AchievedGbps = float64(r.Bytes*8) / sim.Duration(s.lastCompletion).Seconds() / 1e9
		r.Utilization = r.AchievedGbps / s.cfg.Params.LinkGbps
	}
	if n := s.missCount.Value(); n > 0 {
		r.AvgMissLatency = sim.Duration(s.missLatencySum.Value()) / sim.Duration(n)
	}
	if len(s.tenantLat) > 0 {
		// Deterministic order: floating-point accumulation must not
		// depend on map iteration, or identical runs diverge bitwise.
		sids := make([]int, 0, len(s.tenantLat))
		for sid := range s.tenantLat {
			sids = append(sids, int(sid))
		}
		sort.Ints(sids)
		var sum, sumSq float64
		first := true
		for _, sid := range sids {
			tl := s.tenantLat[mem.SID(sid)]
			if tl.count == 0 {
				continue
			}
			mean := float64(tl.sum) / float64(tl.count)
			sum += mean
			sumSq += mean * mean
			m := sim.Duration(mean)
			if first || m < r.MinTenantLatency {
				r.MinTenantLatency = m
			}
			if m > r.MaxTenantLatency {
				r.MaxTenantLatency = m
			}
			if tl.worst > r.WorstPacket {
				r.WorstPacket = tl.worst
			}
			first = false
		}
		if n := float64(len(s.tenantLat)); sumSq > 0 {
			r.LatencyFairness = sum * sum / (n * sumSq)
		}
	}
	if s.devtlb != nil {
		r.DevTLB = s.devtlb.Stats()
	}
	if s.ptb != nil {
		r.PTB = s.ptb.Stats()
	}
	if s.pu != nil {
		r.Prefetch = s.pu.Stats()
	}
	if s.chipset != nil {
		r.IOMMU = s.chipset.Stats()
	}
	return r
}

// request is one translation of a packet, resolved against the canonical
// layout.
type request struct {
	iova  uint64
	shift uint8
}

func packetRequests(p workload.Packet) [workload.RequestsPerPacket]request {
	return [workload.RequestsPerPacket]request{
		{p.Ring, workload.PageShiftOf(p.Ring)},
		{p.Data, workload.PageShiftOf(p.Data)},
		{p.Mailbox, workload.PageShiftOf(p.Mailbox)},
	}
}

// arrival models one packet slot on the I/O link.
func (s *System) arrival(e *sim.Engine, now sim.Time) {
	if s.cursor >= len(s.tr.Packets) {
		return // trace consumed; in-flight work drains the engine
	}
	pkt := s.tr.Packets[s.cursor]
	if s.otr != nil {
		// A slot offered to a packet whose earlier attempt was dropped is
		// a retry; haveAttempt still holds from that first attempt.
		ev := "arrival"
		if s.haveAttempt {
			ev = "retry"
		}
		s.otr.Emit(obs.Event{T: int64(now), Ev: ev, SID: uint16(pkt.SID)})
	}
	if !s.haveAttempt {
		s.firstAttempt, s.haveAttempt = now, true
	}

	// Driver unmaps are tied to the packet's first arrival attempt:
	// the guest recycled the page whether or not the device drops.
	if pkt.UnmapIOVA != 0 && !s.unmapApplied {
		s.invalidate(pkt.SID, pkt.UnmapIOVA, pkt.UnmapShift)
		s.unmapApplied = true
	}

	if s.cfg.TranslationOff {
		s.acceptNative(e, now, pkt)
		e.Schedule(s.dt, s.arrival)
		return
	}

	// The device allocates the packet's PTB context before translating;
	// without a free entry the packet is dropped and the link slot is
	// lost (the source retries at the next arrival time, §IV-C).
	if !s.ptb.Alloc() {
		s.drops.Inc()
		if s.otr != nil {
			s.otr.Emit(obs.Event{T: int64(now), Ev: "drop", SID: uint16(pkt.SID)})
		}
		e.Schedule(s.dt, s.arrival)
		return
	}
	s.cursor++
	s.unmapApplied = false
	started := s.firstAttempt
	s.haveAttempt = false
	if s.pu != nil {
		s.pu.Predictor().Observe(pkt.SID)
	}

	ctx := &packetCtx{}
	var misses [workload.RequestsPerPacket]request
	for _, rq := range packetRequests(pkt) {
		s.requests.Inc()
		key := iommu.PageKey(pkt.SID, rq.iova, rq.shift)
		if s.devtlb != nil {
			if _, ok := s.devtlb.Lookup(key); ok {
				s.devtlbServed.Inc()
				if s.otr != nil {
					s.otr.Emit(obs.Event{T: int64(now), Ev: "devtlb_hit",
						SID: uint16(pkt.SID), IOVA: obs.Hex(rq.iova), Shift: rq.shift})
				}
				continue
			}
		}
		if s.pu != nil {
			if _, ok := s.pu.Lookup(key); ok {
				s.prefetchServed.Inc()
				if s.otr != nil {
					s.otr.Emit(obs.Event{T: int64(now), Ev: "prefetch_hit",
						SID: uint16(pkt.SID), IOVA: obs.Hex(rq.iova), Shift: rq.shift})
				}
				continue
			}
		}
		if s.otr != nil {
			s.otr.Emit(obs.Event{T: int64(now), Ev: "devtlb_miss",
				SID: uint16(pkt.SID), IOVA: obs.Hex(rq.iova), Shift: rq.shift})
		}
		misses[ctx.outstanding] = rq
		ctx.outstanding++
	}

	if ctx.outstanding == 0 {
		e.Schedule(s.cfg.Params.TLBHit, func(_ *sim.Engine, done sim.Time) {
			s.finishPacket(done)
			s.recordTenantLatency(pkt.SID, done, done.Sub(started))
		})
	} else {
		ctx.sid, ctx.started = pkt.SID, started
		if s.cfg.SerialRequests {
			ctx.queue = append(ctx.queue, misses[:ctx.outstanding]...)
			s.startMiss(e, pkt.SID, ctx.queue[0], ctx)
			ctx.queue = ctx.queue[1:]
		} else {
			for _, rq := range misses[:ctx.outstanding] {
				s.startMiss(e, pkt.SID, rq, ctx)
			}
		}
		if s.pu != nil {
			s.maybePrefetch(e, pkt.SID)
		}
	}
	e.Schedule(s.dt, s.arrival)
}

func (s *System) acceptNative(e *sim.Engine, now sim.Time, pkt workload.Packet) {
	s.cursor++
	s.unmapApplied = false
	s.haveAttempt = false
	s.requests.Add(workload.RequestsPerPacket)
	e.Schedule(s.cfg.Params.TLBHit, func(_ *sim.Engine, done sim.Time) {
		s.finishPacket(done)
		s.recordTenantLatency(pkt.SID, done, done.Sub(now))
	})
}

func (s *System) finishPacket(now sim.Time) {
	s.packets.Inc()
	s.bytes.Add(uint64(s.cfg.Params.PacketBytes))
	if s.ptb != nil && !s.cfg.TranslationOff {
		s.ptb.Release()
	}
	if now > s.lastCompletion {
		s.lastCompletion = now
	}
}

// packetCtx counts a packet's in-flight translations; the packet (and
// its PTB entry) completes when the counter drains. In serial mode the
// not-yet-issued translations wait in queue.
type packetCtx struct {
	outstanding int
	queue       []request
	sid         mem.SID
	started     sim.Time
}

// acquireWalker runs task now if a chipset walker is free (or the pool is
// unlimited), otherwise queues it. The task must call releaseWalker when
// its memory accesses finish.
func (s *System) acquireWalker(e *sim.Engine, task func(*sim.Engine)) {
	if s.cfg.IOMMUWalkers > 0 && s.walkersBusy >= s.cfg.IOMMUWalkers {
		s.walkQueue = append(s.walkQueue, task)
		return
	}
	s.walkersBusy++
	task(e)
}

// releaseWalker frees a walker, immediately handing it to the next queued
// translation if any.
func (s *System) releaseWalker(e *sim.Engine) {
	if len(s.walkQueue) > 0 {
		next := s.walkQueue[0]
		s.walkQueue = s.walkQueue[1:]
		next(e)
		return
	}
	s.walkersBusy--
}

// startMiss runs one translation through PCIe -> chipset -> PCIe.
func (s *System) startMiss(e *sim.Engine, sid mem.SID, rq request, ctx *packetCtx) {
	issued := e.Now()
	probe := s.cfg.Params.TLBHit
	e.Schedule(probe+s.cfg.Params.PCIeOneWay, func(e *sim.Engine, _ sim.Time) {
		s.acquireWalker(e, func(e *sim.Engine) {
			res, err := s.chipset.Translate(sid, rq.iova, rq.shift, true)
			if err != nil {
				panic(fmt.Sprintf("core: translate SID %d iova %#x: %v", sid, rq.iova, err))
			}
			lat := sim.Duration(res.MemAccesses) * s.cfg.Params.DRAMLatency
			if res.IOTLBHit {
				lat += s.cfg.Params.TLBHit
			}
			if s.otr != nil {
				s.otr.Emit(obs.Event{T: int64(e.Now()), Ev: "walk_start",
					SID: uint16(sid), IOVA: obs.Hex(rq.iova), Shift: rq.shift, N: res.MemAccesses})
			}
			e.Schedule(lat, func(e *sim.Engine, wnow sim.Time) {
				if s.otr != nil {
					s.otr.Emit(obs.Event{T: int64(wnow), Ev: "walk_end",
						SID: uint16(sid), IOVA: obs.Hex(rq.iova), DurPs: int64(lat)})
				}
				s.releaseWalker(e)
			})
			e.Schedule(lat+s.cfg.Params.PCIeOneWay, func(_ *sim.Engine, done sim.Time) {
				if s.devtlb != nil {
					pageMask := uint64(1)<<rq.shift - 1
					s.devtlb.Insert(tlb.Entry{
						Key:       iommu.PageKey(sid, rq.iova, rq.shift),
						Value:     res.HPA &^ pageMask,
						PageShift: rq.shift,
					})
				}
				d := done.Sub(issued)
				s.missLatencySum.Add(uint64(d))
				s.missCount.Inc()
				s.missHist.Observe(uint64(d))
				ctx.outstanding--
				if len(ctx.queue) > 0 {
					next := ctx.queue[0]
					ctx.queue = ctx.queue[1:]
					s.startMiss(e, sid, next, ctx)
				} else if ctx.outstanding == 0 {
					s.finishPacket(done)
					s.recordTenantLatency(ctx.sid, done, done.Sub(ctx.started))
				}
			})
		})
	})
}

// maybePrefetch issues a prefetch for the predicted SID, modelling the
// chipset's IOVA history reader.
func (s *System) maybePrefetch(e *sim.Engine, current mem.SID) {
	target, ok := s.pu.ShouldPrefetch(current)
	if !ok {
		return
	}
	triggered := e.Now()
	if s.otr != nil {
		s.otr.Emit(obs.Event{T: int64(triggered), Ev: "prefetch_issue", SID: uint16(target)})
	}
	p := s.cfg.Params
	e.Schedule(p.PCIeOneWay, func(e *sim.Engine, _ sim.Time) {
		// The IOVA history reader claims one walker: it reads the
		// per-DID history from memory, then walks the fetched gIOVAs
		// back to back.
		s.acquireWalker(e, func(e *sim.Engine) {
			recent := s.chipset.History().Recent(target, s.pu.Config().Degree)
			if len(recent) == 0 {
				if s.otr != nil {
					s.otr.Emit(obs.Event{T: int64(e.Now()), Ev: "prefetch_abort", SID: uint16(target)})
				}
				s.pu.Abort(target)
				s.releaseWalker(e)
				return
			}
			total := p.DRAMLatency // history read
			entries := make([]tlb.Entry, 0, len(recent))
			for _, h := range recent {
				res, err := s.chipset.Translate(target, h.IOVA, h.PageShift, false)
				if err != nil {
					continue // page was unmapped while the prefetch was in flight
				}
				total += sim.Duration(res.MemAccesses) * p.DRAMLatency
				if res.IOTLBHit {
					total += p.TLBHit
				}
				pageMask := uint64(1)<<h.PageShift - 1
				entries = append(entries, tlb.Entry{
					Key:       iommu.PageKey(target, h.IOVA, h.PageShift),
					Value:     res.HPA &^ pageMask,
					PageShift: h.PageShift,
				})
			}
			e.Schedule(total, func(e *sim.Engine, _ sim.Time) { s.releaseWalker(e) })
			e.Schedule(total+p.PCIeOneWay, func(_ *sim.Engine, done sim.Time) {
				if s.otr != nil {
					s.otr.Emit(obs.Event{T: int64(done), Ev: "prefetch_fill",
						SID: uint16(target), N: len(entries), DurPs: int64(done.Sub(triggered))})
				}
				// Report the observed trigger-to-fill latency in requests
				// so the host can retune the history-length register.
				latencyRequests := int(float64(done.Sub(triggered)) / float64(s.dt) * workload.RequestsPerPacket)
				s.pu.Complete(target, entries, latencyRequests)
			})
		})
	})
}

// recordTenantLatency folds one packet's service time (completing at
// done) into its tenant's aggregate, and is therefore also the packet
// completion trace point.
func (s *System) recordTenantLatency(sid mem.SID, done sim.Time, d sim.Duration) {
	if s.otr != nil {
		s.otr.Emit(obs.Event{T: int64(done), Ev: "complete", SID: uint16(sid), DurPs: int64(d)})
	}
	tl := s.tenantLat[sid]
	if tl == nil {
		tl = &tenantLatency{}
		s.tenantLat[sid] = tl
	}
	tl.sum += d
	tl.count++
	if d > tl.worst {
		tl.worst = d
	}
}

// invalidate broadcasts a driver unmap to every caching structure.
func (s *System) invalidate(sid mem.SID, iova uint64, shift uint8) {
	if s.devtlb != nil {
		s.devtlb.Invalidate(iommu.PageKey(sid, iova, shift))
	}
	if s.pu != nil {
		s.pu.Invalidate(sid, iova, shift)
	}
	if s.chipset != nil {
		s.chipset.Invalidate(sid, iova, shift)
	}
}
