package core

import (
	"fmt"

	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// System is one instantiated simulation: a configuration bound to a
// hyper-tenant trace with per-tenant page tables built and ready to
// walk. The translation datapath itself lives in the chain
// (internal/pipeline); System owns the link model (arrival slots, drop
// and retry), the packet-level accounting, and the observability wiring.
type System struct {
	cfg Config
	tr  *trace.Trace

	engine *sim.Engine
	dt     sim.Duration // packet inter-arrival gap

	host  *mem.Space
	ctx   *mem.ContextTable
	chain *pipeline.Chain

	cursor       int
	unmapApplied bool
	firstAttempt sim.Time // when the packet at cursor first hit the link
	haveAttempt  bool

	// Metric cells. The registry (see Registry) names these for export;
	// Result is a view assembled from the same cells, so there is no
	// second accounting path to drift out of sync. Per-stage cells live
	// in the chain's stages.
	packets        obs.Counter
	drops          obs.Counter
	bytes          obs.Counter
	requests       obs.Counter
	missLatencySum obs.Counter // picoseconds
	missCount      obs.Counter
	missHist       obs.Histogram // chipset round-trip latency, ps
	lastCompletion sim.Time
	tenantLat      map[mem.SID]*tenantLatency

	// Observability (all zero when Config.Obs is unset; the simulation's
	// outcome is byte-identical either way).
	otr      *obs.Tracer
	registry *obs.Registry
	sampler  *sampler
}

// tenantLatency aggregates one tenant's packet service times (first
// arrival attempt to completion), the basis of the isolation metrics.
type tenantLatency struct {
	sum   sim.Duration
	count uint64
	worst sim.Duration
}

// NewSystem builds per-tenant page tables for every SID in the trace and
// composes the configured translation datapath. A trace with tenants but
// no packets is legal — an aggressive Scale can round a benchmark down
// to zero packets — and runs to a zeroed Result.
func NewSystem(cfg Config, tr *trace.Trace) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Tenants <= 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	s := &System{
		cfg:       cfg,
		tr:        tr,
		engine:    sim.NewEngine(),
		dt:        cfg.Params.Interarrival(),
		host:      mem.NewSpace("host", 0x1_0000_0000, 0),
		ctx:       mem.NewContextTable(),
		tenantLat: make(map[mem.SID]*tenantLatency, tr.Tenants),
	}
	profile := tr.Profile
	if err := profile.Validate(); err != nil {
		// Traces built by older tools may lack the embedded profile;
		// fall back to the benchmark's calibration.
		profile = workload.ProfileFor(tr.Benchmark)
	}
	levels := cfg.PageTableLevels
	if levels == 0 {
		levels = mem.Levels
	}
	tenants := make(map[mem.SID]*mem.NestedTable, tr.Tenants)
	for i := 1; i <= tr.Tenants; i++ {
		sid := mem.SID(i)
		as, err := workload.BuildAddressSpaceLevels(profile, sid, s.host, s.ctx, levels)
		if err != nil {
			return nil, fmt.Errorf("core: building tenant %d: %w", i, err)
		}
		tenants[sid] = as.Nested
	}
	env := pipeline.Env{
		Lat: pipeline.Latencies{
			PCIeOneWay:   cfg.Params.PCIeOneWay,
			DRAMLatency:  cfg.Params.DRAMLatency,
			TLBHit:       cfg.Params.TLBHit,
			Interarrival: s.dt,
		},
		Ctx:        s.ctx,
		Tenants:    tenants,
		OracleKeys: func() []tlb.Key { return flattenKeys(tr) },
	}
	if o := cfg.Obs; o != nil {
		s.otr = o.Tracer
		env.Tracer = o.Tracer
		if o.EngineEvents && o.Tracer != nil {
			s.engine.SetProbe(obs.EngineProbe{T: o.Tracer})
		}
	}
	chain, err := pipeline.BuildChain(cfg.PipelineSpec(), env)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.chain = chain
	if o := cfg.Obs; o != nil && o.SampleEvery > 0 {
		s.sampler = newSampler(o.SampleEvery, &s.bytes, s.chain, cfg.IOMMUWalkers)
	}
	return s, nil
}

// Chain returns the composed translation datapath (for describe output
// and tests; the simulation drives it internally).
func (s *System) Chain() *pipeline.Chain { return s.chain }

// Registry returns the system's metrics registry, building it on first
// use: every stage's counter cells and occupancy gauges published under
// stable dotted names (core.*, devtlb.*, ptb.*, prefetch.*, iommu.*).
// The registry is a name directory over the cells the model updates
// anyway, so calling it costs nothing on the simulation path.
func (s *System) Registry() *obs.Registry {
	if s.registry == nil {
		s.registry = obs.NewRegistry()
		s.register(s.registry)
	}
	return s.registry
}

func (s *System) register(r *obs.Registry) {
	r.Counter("core.packets", &s.packets)
	r.Counter("core.drops", &s.drops)
	r.Counter("core.bytes", &s.bytes)
	r.Counter("core.requests", &s.requests)
	r.Counter("core.devtlb_served", s.chain.Served("devtlb"))
	r.Counter("core.prefetch_served", s.chain.Served("prefetch"))
	r.Counter("core.miss_latency_ps", &s.missLatencySum)
	r.Counter("core.misses", &s.missCount)
	r.Histogram("core.miss_latency", &s.missHist)
	r.Gauge("core.walkers_busy", func() float64 { return float64(s.chain.WalkersBusy()) })
	r.Gauge("core.walk_queue", func() float64 { return float64(s.chain.WalkQueue()) })
	s.chain.Register(r)
}

// flattenKeys produces the DevTLB's ideal lookup sequence for Belady
// replacement: every packet is eventually accepted exactly once, so the
// DevTLB observes the flattened trace in order. Packets is a slice, so
// the order is the trace's — no map iteration feeds the oracle.
func flattenKeys(tr *trace.Trace) []tlb.Key {
	keys := make([]tlb.Key, 0, len(tr.Packets)*workload.RequestsPerPacket)
	for _, p := range tr.Packets {
		keys = append(keys,
			iommu.PageKey(p.SID, p.Ring, workload.PageShiftOf(p.Ring)),
			iommu.PageKey(p.SID, p.Data, workload.PageShiftOf(p.Data)),
			iommu.PageKey(p.SID, p.Mailbox, workload.PageShiftOf(p.Mailbox)),
		)
	}
	return keys
}

// Run replays the whole trace and returns the metrics. It may be called
// once per System. A zero-packet trace drains immediately and reports a
// zeroed Result (no NaN rates, no division by the empty run).
func (s *System) Run() (Result, error) {
	if s.engine.Fired() > 0 {
		return Result{}, fmt.Errorf("core: System.Run called twice")
	}
	// The first slot lands one inter-arrival gap in, so that N packets
	// occupy N link slots and measured bandwidth can never exceed the
	// offered rate by a fencepost.
	s.engine.Schedule(s.dt, s.arrival)
	if s.sampler != nil {
		s.sampler.start(s.engine)
	}
	s.engine.Run()
	if s.cursor != len(s.tr.Packets) {
		return Result{}, fmt.Errorf("core: simulation drained with %d of %d packets unprocessed",
			len(s.tr.Packets)-s.cursor, len(s.tr.Packets))
	}
	if s.sampler != nil {
		// Close the final partial window so short runs still get a point.
		s.sampler.flush(s.engine.Now())
	}
	return s.result(), nil
}

func packetRequests(p workload.Packet) [workload.RequestsPerPacket]pipeline.Request {
	return [workload.RequestsPerPacket]pipeline.Request{
		{SID: p.SID, IOVA: p.Ring, Shift: workload.PageShiftOf(p.Ring)},
		{SID: p.SID, IOVA: p.Data, Shift: workload.PageShiftOf(p.Data)},
		{SID: p.SID, IOVA: p.Mailbox, Shift: workload.PageShiftOf(p.Mailbox)},
	}
}

// arrival models one packet slot on the I/O link. The chain methods are
// total — an absent stage admits/misses/no-ops — so this path never
// branches on which stages the configuration composed.
func (s *System) arrival(e *sim.Engine, now sim.Time) {
	if s.cursor >= len(s.tr.Packets) {
		return // trace consumed; in-flight work drains the engine
	}
	pkt := s.tr.Packets[s.cursor]
	if s.otr != nil {
		// A slot offered to a packet whose earlier attempt was dropped is
		// a retry; haveAttempt still holds from that first attempt.
		ev := "arrival"
		if s.haveAttempt {
			ev = "retry"
		}
		s.otr.Emit(obs.Event{T: int64(now), Ev: ev, SID: uint16(pkt.SID)})
	}
	if !s.haveAttempt {
		s.firstAttempt, s.haveAttempt = now, true
	}

	// Driver unmaps are tied to the packet's first arrival attempt:
	// the guest recycled the page whether or not the device drops.
	if pkt.UnmapIOVA != 0 && !s.unmapApplied {
		s.chain.Invalidate(pkt.SID, pkt.UnmapIOVA, pkt.UnmapShift)
		s.unmapApplied = true
	}

	if s.cfg.TranslationOff {
		s.acceptNative(e, now, pkt)
		e.Schedule(s.dt, s.arrival)
		return
	}

	// The device allocates the packet's admission slot before
	// translating; without a free entry the packet is dropped and the
	// link slot is lost (the source retries at the next arrival time,
	// §IV-C).
	if !s.chain.Admit() {
		s.drops.Inc()
		if s.otr != nil {
			s.otr.Emit(obs.Event{T: int64(now), Ev: "drop", SID: uint16(pkt.SID)})
		}
		e.Schedule(s.dt, s.arrival)
		return
	}
	s.cursor++
	s.unmapApplied = false
	started := s.firstAttempt
	s.haveAttempt = false
	s.chain.Observe(pkt.SID)

	ctx := &packetCtx{}
	var misses [workload.RequestsPerPacket]pipeline.Request
	for _, rq := range packetRequests(pkt) {
		s.requests.Inc()
		if s.chain.Lookup(e, rq) {
			continue
		}
		misses[ctx.outstanding] = rq
		ctx.outstanding++
	}

	if ctx.outstanding == 0 {
		e.Schedule(s.cfg.Params.TLBHit, func(_ *sim.Engine, done sim.Time) {
			s.finishPacket(done)
			s.recordTenantLatency(pkt.SID, done, done.Sub(started))
		})
	} else {
		ctx.sid, ctx.started = pkt.SID, started
		if s.cfg.SerialRequests {
			ctx.queue = append(ctx.queue, misses[:ctx.outstanding]...)
			s.startMiss(e, ctx.queue[0], ctx)
			ctx.queue = ctx.queue[1:]
		} else {
			for _, rq := range misses[:ctx.outstanding] {
				s.startMiss(e, rq, ctx)
			}
		}
		s.chain.MaybePrefetch(e, pkt.SID)
	}
	e.Schedule(s.dt, s.arrival)
}

func (s *System) acceptNative(e *sim.Engine, now sim.Time, pkt workload.Packet) {
	s.cursor++
	s.unmapApplied = false
	s.haveAttempt = false
	s.requests.Add(workload.RequestsPerPacket)
	e.Schedule(s.cfg.Params.TLBHit, func(_ *sim.Engine, done sim.Time) {
		s.finishPacket(done)
		s.recordTenantLatency(pkt.SID, done, done.Sub(now))
	})
}

func (s *System) finishPacket(now sim.Time) {
	s.packets.Inc()
	s.bytes.Add(uint64(s.cfg.Params.PacketBytes))
	s.chain.ReleaseSlot()
	if now > s.lastCompletion {
		s.lastCompletion = now
	}
}

// packetCtx counts a packet's in-flight translations; the packet (and
// its admission slot) completes when the counter drains. In serial mode
// the not-yet-issued translations wait in queue.
type packetCtx struct {
	outstanding int
	queue       []pipeline.Request
	sid         mem.SID
	started     sim.Time
}

// startMiss sends one translation down the chain's resolver and folds
// the completion into the packet's context and the miss-latency cells.
func (s *System) startMiss(e *sim.Engine, rq pipeline.Request, ctx *packetCtx) {
	issued := e.Now()
	s.chain.Resolve(e, rq, func(e *sim.Engine, done sim.Time) {
		d := done.Sub(issued)
		s.missLatencySum.Add(uint64(d))
		s.missCount.Inc()
		s.missHist.Observe(uint64(d))
		ctx.outstanding--
		if len(ctx.queue) > 0 {
			next := ctx.queue[0]
			ctx.queue = ctx.queue[1:]
			s.startMiss(e, next, ctx)
		} else if ctx.outstanding == 0 {
			s.finishPacket(done)
			s.recordTenantLatency(ctx.sid, done, done.Sub(ctx.started))
		}
	})
}

// recordTenantLatency folds one packet's service time (completing at
// done) into its tenant's aggregate, and is therefore also the packet
// completion trace point.
func (s *System) recordTenantLatency(sid mem.SID, done sim.Time, d sim.Duration) {
	if s.otr != nil {
		s.otr.Emit(obs.Event{T: int64(done), Ev: "complete", SID: uint16(sid), DurPs: int64(d)})
	}
	tl := s.tenantLat[sid]
	if tl == nil {
		tl = &tenantLatency{}
		s.tenantLat[sid] = tl
	}
	tl.sum += d
	tl.count++
	if d > tl.worst {
		tl.worst = d
	}
}
