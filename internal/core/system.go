package core

import (
	"fmt"
	"sync/atomic"

	"hypertrio/internal/fault"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// System is one instantiated simulation: a configuration bound to a
// hyper-tenant trace with per-tenant page tables built and ready to
// walk. The translation datapath itself lives in the chain
// (internal/pipeline); System owns the link model (arrival slots, drop
// and retry), the packet-level accounting, and the observability wiring.
type System struct {
	cfg Config
	// src is the packet source the run consumes; tr is the materialized
	// trace behind it, or nil for online (streaming) sources. Everything
	// that genuinely needs the whole sequence at once — oracle
	// precomputation, the unmap lookahead scan — checks tr and fails fast
	// or degrades conservatively when it is nil.
	src  trace.Source
	tr   *trace.Trace
	meta trace.Meta

	engine *sim.Engine
	dt     sim.Duration // nominal packet inter-arrival gap
	// shaper, when non-nil, stretches the inter-arrival gap over
	// simulated time (scenario load envelopes); nextGap is the only
	// consumer, so a nil shaper keeps the constant-load fast path.
	shaper ArrivalShaper

	// Sharded-run topology (all nil/zero for Shards <= 1). The IOMMU
	// domain is deliberately domain 0: at equal timestamps the merged
	// order fires chipset-side events before device-side ones, which is
	// exactly the order a serial engine reaches by sequence numbers —
	// a completion or walk-end was always scheduled at least one PCIe
	// traversal (> one packet slot) before any device event tying with
	// it could be scheduled.
	sharded *sim.ShardedEngine
	ioDom   *sim.Domain
	devDom  *sim.Domain

	host    *mem.Space
	ctx     *mem.ContextTable
	tenants *mem.TenantTables
	chain   *pipeline.Chain

	// injector applies the configured fault plan (nil without one; every
	// consultation in the run path is behind that nil check).
	injector *fault.Injector

	// Pull-model packet state: cur holds the packet currently offered to
	// the link (pulled from src once, then retried across drops until
	// accepted); consumed counts accepted packets.
	cur          workload.Packet
	curValid     bool
	srcDone      bool
	consumed     int
	unmapApplied bool
	firstAttempt sim.Time // when the current packet first hit the link
	haveAttempt  bool

	// Pooled per-packet contexts. Records are recycled through a free
	// list, so the steady-state packet path performs no allocation; the
	// slab's high-water mark is the maximum number of packets
	// simultaneously in flight.
	pkts     []packetCtx
	freePkts []uint32

	// Metric cells. The registry (see Registry) names these for export;
	// Result is a view assembled from the same cells, so there is no
	// second accounting path to drift out of sync. Per-stage cells live
	// in the chain's stages.
	packets        obs.Counter
	drops          obs.Counter
	bytes          obs.Counter
	requests       obs.Counter
	missLatencySum obs.Counter // picoseconds
	missCount      obs.Counter
	missHist       obs.Histogram // chipset round-trip latency, ps
	lastCompletion sim.Time
	// tenantLat is indexed by SID (1..Tenants; slot 0 unused): tenant IDs
	// are dense by construction, so a slice replaces the former map and
	// the per-completion update is one index, no hashing, no allocation.
	tenantLat []tenantLatency
	// tenantDrops attributes drops to the tenant whose packet lost the
	// slot — allocated only for class-partitioned populations (scenario
	// runs), where per-class drop accounting is part of the result.
	tenantDrops []uint64

	// Observability (all zero when Config.Obs is unset; the simulation's
	// outcome is byte-identical either way).
	otr      *obs.Tracer
	registry *obs.Registry
	sampler  *sampler
}

// tenantLatency aggregates one tenant's packet service times (first
// arrival attempt to completion), the basis of the isolation metrics.
type tenantLatency struct {
	sum   sim.Duration
	count uint64
	worst sim.Duration
}

// Event kinds for System's typed events (payload = kind<<32 | ctx idx).
const (
	evArrival = iota // one packet slot on the I/O link
	evHitDone        // an all-hit (or native) packet's completion time
)

// NewSystem builds per-tenant page tables for every SID in the trace and
// composes the configured translation datapath. A trace with tenants but
// no packets is legal — an aggressive Scale can round a benchmark down
// to zero packets — and runs to a zeroed Result.
func NewSystem(cfg Config, tr *trace.Trace) (*System, error) {
	if tr == nil {
		return nil, fmt.Errorf("core: empty trace")
	}
	return NewSystemSource(cfg, tr.Source())
}

// RequiresMaterialized reports whether the configuration's resolved
// pipeline needs the whole request sequence ahead of time — true exactly
// when any cache runs the Oracle (Belady) policy, whose replacement
// decisions look into the future. Streaming sources cannot drive such a
// configuration; NewSystemSource fails fast instead of silently
// materializing O(requests) state.
func RequiresMaterialized(cfg Config) bool {
	for _, ss := range cfg.PipelineSpec().Stages {
		for _, cc := range []tlb.Config{
			ss.Cache,
			ss.IOMMU.ContextCache, ss.IOMMU.IOTLB, ss.IOMMU.L2PWC, ss.IOMMU.L3PWC,
		} {
			if cc.Policy == tlb.Oracle {
				return true
			}
		}
	}
	return false
}

// NewSystemSource is NewSystem over any packet Source — a materialized
// trace adapter or an online stream. Online sources keep the run's
// memory O(tenants): the model pulls one packet at a time and never sees
// the sequence's length up front.
func NewSystemSource(cfg Config, src trace.Source) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil packet source")
	}
	meta := src.Meta()
	if meta.Tenants <= 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	tr := src.Materialized()
	if tr == nil && RequiresMaterialized(cfg) {
		return nil, fmt.Errorf("core: the Oracle (Belady) replacement policy requires a materialized trace; construct the trace instead of streaming it")
	}
	s := &System{
		cfg:       cfg,
		src:       src,
		tr:        tr,
		meta:      meta,
		dt:        cfg.Params.Interarrival(),
		shaper:    cfg.Shaper,
		host:      mem.NewSpace("host", 0x1_0000_0000, 0),
		ctx:       mem.NewContextTable(),
		tenantLat: make([]tenantLatency, meta.Tenants+1),
	}
	if len(meta.Classes) > 0 {
		s.tenantDrops = make([]uint64, meta.Tenants+1)
	}
	if cfg.Shards >= 2 {
		s.sharded = sim.NewSharded()
		s.ioDom = s.sharded.AddDomain()
		s.devDom = s.sharded.AddDomain()
		s.engine = s.devDom.Engine()
	} else {
		s.engine = sim.NewEngine()
	}
	// The tenant population is a sequence of classes over contiguous SID
	// ranges; a classic single-profile trace is the one-class case, so
	// both shapes share the build loop below (and the one-class case
	// allocates host frames in exactly the order it always has — the
	// byte-identity the golden suite pins).
	population := meta.Classes
	if len(population) == 0 {
		profile := meta.Profile
		if err := profile.Validate(); err != nil {
			// Traces built by older tools may lack the embedded profile;
			// fall back to the benchmark's calibration.
			profile = workload.ProfileFor(meta.Benchmark)
		}
		population = []trace.TenantClass{{Profile: profile, Tenants: meta.Tenants}}
	} else {
		n := 0
		for _, cl := range population {
			n += cl.Tenants
		}
		if n != meta.Tenants {
			return nil, fmt.Errorf("core: class tenant counts sum to %d, trace has %d tenants", n, meta.Tenants)
		}
		for i, cl := range population {
			if err := cl.Profile.Validate(); err != nil {
				return nil, fmt.Errorf("core: class %d (%s): %w", i, cl.Name, err)
			}
		}
	}
	levels := cfg.PageTableLevels
	if levels == 0 {
		levels = mem.Levels
	}
	s.ctx.Reserve(mem.SID(meta.Tenants))
	tenants := mem.NewTenantTables(mem.SID(meta.Tenants))
	if cfg.Fault == nil {
		// Every tenant of a class runs the same guest image, so tenant
		// page tables are structurally identical up to the ring-window
		// slot the SID maps to (RingSlots congruence classes). Simulation
		// outcomes depend only on walk shape and (SID, IOVA) cache keys —
		// never on which physical frames back a walk — so all tenants of
		// one congruence class share a single template table, keeping
		// simulated memory O(classes x RingSlots) at any tenant count. A
		// fault plan's Remap mutates per-tenant tables, so faulted runs
		// build private ones below.
		lo := 1
		for ci := range population {
			cl := &population[ci]
			slots := workload.RingSlots
			if cl.Tenants < slots {
				slots = cl.Tenants
			}
			templates := make([]*mem.NestedTable, slots)
			for c := 0; c < slots; c++ {
				as, err := workload.BuildAddressSpaceLevels(cl.Profile, mem.SID(lo+c), s.host, nil, levels)
				if err != nil {
					return nil, fmt.Errorf("core: building tenant template %d: %w", lo+c, err)
				}
				templates[c] = as.Nested
			}
			for i := lo; i < lo+cl.Tenants; i++ {
				sid := mem.SID(i)
				nt := templates[(i-lo)%slots]
				tenants.Set(sid, nt)
				s.ctx.Set(sid, mem.ContextEntry{
					DID:       uint32(sid),
					GuestRoot: nt.GuestRoot(),
					HostRoot:  nt.HostRoot(),
				})
			}
			lo += cl.Tenants
		}
	} else {
		lo := 1
		for ci := range population {
			cl := &population[ci]
			for i := lo; i < lo+cl.Tenants; i++ {
				sid := mem.SID(i)
				as, err := workload.BuildAddressSpaceLevels(cl.Profile, sid, s.host, s.ctx, levels)
				if err != nil {
					return nil, fmt.Errorf("core: building tenant %d: %w", i, err)
				}
				tenants.Set(sid, as.Nested)
			}
			lo += cl.Tenants
		}
	}
	s.tenants = tenants
	env := pipeline.Env{
		Lat: pipeline.Latencies{
			PCIeOneWay:   cfg.Params.PCIeOneWay,
			DRAMLatency:  cfg.Params.DRAMLatency,
			TLBHit:       cfg.Params.TLBHit,
			Interarrival: s.dt,
		},
		Ctx:     s.ctx,
		Tenants: tenants,
	}
	if tr != nil {
		// Only materialized sources can serve the oracle's future; the
		// builder skips SetFuture when this hook is absent, and the
		// fail-fast check above guarantees no Oracle stage was configured.
		env.OracleKeys = func() []tlb.Key { return flattenKeys(tr) }
	}
	if o := cfg.Obs; o != nil {
		s.otr = o.Tracer
		env.Tracer = o.Tracer
		if o.EngineEvents && o.Tracer != nil {
			s.engine.SetProbe(obs.EngineProbe{T: o.Tracer})
			if s.sharded != nil {
				// Observability forces lockstep, where both engines run
				// on one thread drawing one sequence counter, so the two
				// probes interleave into exactly the serial stream.
				s.ioDom.Engine().SetProbe(obs.EngineProbe{T: o.Tracer})
			}
		}
	}
	if cfg.Fault != nil {
		inj, err := fault.NewInjector(cfg.Fault, s, s.otr)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.injector = inj
		env.Faults = inj
	}
	chain, err := pipeline.BuildChain(cfg.PipelineSpec(), env)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.chain = chain
	if s.sharded != nil {
		lookIO, lookDev := s.lookaheads()
		toIO := s.sharded.Connect(s.devDom, s.ioDom, lookIO, 0)
		toDev := s.sharded.Connect(s.ioDom, s.devDom, lookDev, 0)
		s.chain.EnableSplit(toIO, toDev, s)
		s.sharded.Seal()
	}
	if o := cfg.Obs; o != nil && o.SampleEvery > 0 {
		s.sampler = newSampler(o.SampleEvery, &s.bytes, s.chain, cfg.IOMMUWalkers)
	}
	return s, nil
}

// lookaheads chooses the conservative synchronization windows of a
// sharded run's two edges. The demand resolve path guarantees a minimum
// latency in each direction — a miss reaches the chipset no sooner than
// the DevTLB probe plus the PCIe traversal, and a completion returns no
// sooner than one PCIe traversal — so a fault-free, observation-free,
// prefetch-free run with no driver unmaps in the trace can execute the
// domains in parallel. Everything else needs an instantaneous coupling
// across the boundary (broadcast invalidations, the history reader's
// device-side prefetch unit, the shared tracer/sampler, fault hooks on
// both sides) and returns zero windows, which Seal turns into the
// lockstep merge — still sharded, still byte-identical, one thread.
func (s *System) lookaheads() (toIO, toDev sim.Duration) {
	if s.cfg.TranslationOff {
		// Native path: nothing ever crosses the boundary; any positive
		// window lets the (empty) chipset domain stay out of the way.
		return s.cfg.Params.PCIeOneWay, s.cfg.Params.PCIeOneWay
	}
	if s.cfg.Fault != nil || s.cfg.Obs != nil || s.cfg.Prefetch != nil {
		return 0, 0
	}
	if s.tr == nil {
		// Online source: the unmap scan below needs the whole sequence,
		// which a stream cannot provide without materializing it. Degrade
		// conservatively to the lockstep merge (zero windows) — still
		// sharded, still byte-identical to serial.
		return 0, 0
	}
	for _, p := range s.tr.Packets {
		if p.UnmapIOVA != 0 {
			return 0, 0
		}
	}
	return s.cfg.Params.TLBHit + s.cfg.Params.PCIeOneWay, s.cfg.Params.PCIeOneWay
}

// Sharded returns the sharded coordinator (nil for Shards <= 1), for
// white-box tests that step the merged execution manually.
func (s *System) Sharded() *sim.ShardedEngine { return s.sharded }

// Chain returns the composed translation datapath (for describe output
// and tests; the simulation drives it internally).
func (s *System) Chain() *pipeline.Chain { return s.chain }

// Registry returns the system's metrics registry, building it on first
// use: every stage's counter cells and occupancy gauges published under
// stable dotted names (core.*, devtlb.*, ptb.*, prefetch.*, iommu.*).
// The registry is a name directory over the cells the model updates
// anyway, so calling it costs nothing on the simulation path.
func (s *System) Registry() *obs.Registry {
	if s.registry == nil {
		s.registry = obs.NewRegistry()
		s.register(s.registry)
	}
	return s.registry
}

func (s *System) register(r *obs.Registry) {
	r.Counter("core.packets", &s.packets)
	r.Counter("core.drops", &s.drops)
	r.Counter("core.bytes", &s.bytes)
	r.Counter("core.requests", &s.requests)
	r.Counter("core.devtlb_served", s.chain.Served("devtlb"))
	r.Counter("core.prefetch_served", s.chain.Served("prefetch"))
	r.Counter("core.miss_latency_ps", &s.missLatencySum)
	r.Counter("core.misses", &s.missCount)
	r.Histogram("core.miss_latency", &s.missHist)
	r.Gauge("core.walkers_busy", func() float64 { return float64(s.chain.WalkersBusy()) })
	r.Gauge("core.walk_queue", func() float64 { return float64(s.chain.WalkQueue()) })
	s.chain.Register(r)
	if s.injector != nil {
		s.injector.Register(r, "fault")
	}
}

// oracleFlattens counts flattenKeys invocations across all Systems.
// Tests read it to assert the oracle preprocessing stays lazy: building
// or running a non-Oracle configuration must never flatten the trace.
var oracleFlattens atomic.Uint64

// flattenKeys produces the DevTLB's ideal lookup sequence for Belady
// replacement: every packet is eventually accepted exactly once, so the
// DevTLB observes the flattened trace in order. Packets is a slice, so
// the order is the trace's — no map iteration feeds the oracle. It runs
// only when a stage asks for Env.OracleKeys (the Oracle DevTLB policy).
func flattenKeys(tr *trace.Trace) []tlb.Key {
	oracleFlattens.Add(1)
	keys := make([]tlb.Key, 0, len(tr.Packets)*workload.RequestsPerPacket)
	for _, p := range tr.Packets {
		keys = append(keys,
			iommu.PageKey(p.SID, p.Ring, workload.PageShiftOf(p.Ring)),
			iommu.PageKey(p.SID, p.Data, workload.PageShiftOf(p.Data)),
			iommu.PageKey(p.SID, p.Mailbox, workload.PageShiftOf(p.Mailbox)),
		)
	}
	return keys
}

// nextGap returns the gap to the next link slot: the nominal
// inter-arrival time, stretched by the configured load envelope when
// one is present. The gap is floored at one picosecond so a hostile
// shaper can never wedge the event loop at zero-time self-scheduling.
func (s *System) nextGap(now sim.Time) sim.Duration {
	if s.shaper == nil {
		return s.dt
	}
	g := s.shaper.Gap(s.dt, now)
	if g < 1 {
		g = 1
	}
	return g
}

// start primes the engine with the first link slot and the sampler tick
// without draining it. Run uses it; white-box tests call it and step the
// engine manually.
func (s *System) start() {
	// The first slot lands one inter-arrival gap in, so that N packets
	// occupy N link slots and measured bandwidth can never exceed the
	// offered rate by a fencepost.
	s.engine.ScheduleEvent(s.nextGap(0), s, evArrival<<32)
	if s.sampler != nil {
		s.sampler.start(s.engine)
	}
	if s.injector != nil {
		s.injector.Start(s.engine)
	}
}

// Run replays the whole trace and returns the metrics. It may be called
// once per System. A zero-packet trace drains immediately and reports a
// zeroed Result (no NaN rates, no division by the empty run).
func (s *System) Run() (Result, error) {
	if s.engine.Fired() > 0 {
		return Result{}, fmt.Errorf("core: System.Run called twice")
	}
	s.start()
	if s.sharded != nil {
		s.sharded.Run()
	} else {
		s.engine.Run()
	}
	if s.curValid || !s.srcDone {
		return Result{}, fmt.Errorf("core: simulation drained with the packet stream unconsumed (%d packets accepted)", s.consumed)
	}
	if s.tr != nil && s.consumed != len(s.tr.Packets) {
		return Result{}, fmt.Errorf("core: simulation drained with %d of %d packets unprocessed",
			len(s.tr.Packets)-s.consumed, len(s.tr.Packets))
	}
	if s.sampler != nil {
		// Close the final partial window so short runs still get a point.
		s.sampler.flush(s.engine.Now())
	}
	if s.injector != nil {
		if err := s.injector.Err(); err != nil {
			return Result{}, err
		}
	}
	res := s.result()
	if err := s.verifyInvariants(res); err != nil {
		return Result{}, err
	}
	return res, nil
}

func packetRequests(p workload.Packet) [workload.RequestsPerPacket]pipeline.Request {
	return [workload.RequestsPerPacket]pipeline.Request{
		{SID: p.SID, IOVA: p.Ring, Shift: workload.PageShiftOf(p.Ring)},
		{SID: p.SID, IOVA: p.Data, Shift: workload.PageShiftOf(p.Data)},
		{SID: p.SID, IOVA: p.Mailbox, Shift: workload.PageShiftOf(p.Mailbox)},
	}
}

// HandleEvent dispatches System's typed events by kind tag.
func (s *System) HandleEvent(e *sim.Engine, now sim.Time, payload uint64) {
	idx := uint32(payload)
	switch payload >> 32 {
	case evArrival:
		s.arrival(e, now)
	case evHitDone:
		ctx := &s.pkts[idx]
		sid, started := ctx.sid, ctx.started
		s.releasePkt(idx)
		s.finishPacket(now)
		s.recordTenantLatency(sid, now, now.Sub(started))
	}
}

// arrival models one packet slot on the I/O link. The chain methods are
// total — an absent stage admits/misses/no-ops — so this path never
// branches on which stages the configuration composed.
func (s *System) arrival(e *sim.Engine, now sim.Time) {
	if !s.curValid {
		if s.srcDone {
			return // source consumed; in-flight work drains the engine
		}
		pkt, ok := s.src.Next()
		if !ok {
			s.srcDone = true
			return
		}
		s.cur, s.curValid = pkt, true
	}
	pkt := s.cur
	if s.otr != nil {
		// A slot offered to a packet whose earlier attempt was dropped is
		// a retry; haveAttempt still holds from that first attempt.
		ev := "arrival"
		if s.haveAttempt {
			ev = "retry"
		}
		s.otr.Emit(obs.Event{T: int64(now), Ev: ev, SID: uint32(pkt.SID)})
	}
	if !s.haveAttempt {
		s.firstAttempt, s.haveAttempt = now, true
	}

	// Driver unmaps are tied to the packet's first arrival attempt:
	// the guest recycled the page whether or not the device drops.
	if pkt.UnmapIOVA != 0 && !s.unmapApplied {
		s.chain.Invalidate(pkt.SID, pkt.UnmapIOVA, pkt.UnmapShift)
		s.unmapApplied = true
	}

	if s.cfg.TranslationOff {
		s.acceptNative(e, now, pkt)
		e.ScheduleEvent(s.nextGap(now), s, evArrival<<32)
		return
	}

	// The device allocates the packet's admission slot before
	// translating; without a free entry the packet is dropped and the
	// link slot is lost (the source retries at the next arrival time,
	// §IV-C).
	if !s.chain.Admit() {
		s.drops.Inc()
		if s.tenantDrops != nil {
			s.tenantDrops[pkt.SID]++
		}
		if s.otr != nil {
			s.otr.Emit(obs.Event{T: int64(now), Ev: "drop", SID: uint32(pkt.SID)})
		}
		e.ScheduleEvent(s.nextGap(now), s, evArrival<<32)
		return
	}
	s.curValid = false
	s.consumed++
	s.unmapApplied = false
	started := s.firstAttempt
	s.haveAttempt = false
	s.chain.Observe(pkt.SID)

	idx := s.allocPkt()
	ctx := &s.pkts[idx]
	ctx.sid, ctx.started = pkt.SID, started
	var misses [workload.RequestsPerPacket]pipeline.Request
	nMiss := 0
	for _, rq := range packetRequests(pkt) {
		s.requests.Inc()
		if s.chain.Lookup(e, rq) {
			continue
		}
		misses[nMiss] = rq
		nMiss++
	}

	if nMiss == 0 {
		e.ScheduleEvent(s.cfg.Params.TLBHit, s, evHitDone<<32|uint64(idx))
	} else {
		ctx.outstanding = nMiss
		if s.cfg.SerialRequests {
			copy(ctx.queue[:], misses[:nMiss])
			ctx.qlen = uint8(nMiss)
			ctx.qhead = 1
			s.startMiss(e, misses[0], idx)
		} else {
			for _, rq := range misses[:nMiss] {
				s.startMiss(e, rq, idx)
			}
		}
		s.chain.MaybePrefetch(e, pkt.SID)
	}
	e.ScheduleEvent(s.nextGap(now), s, evArrival<<32)
}

func (s *System) acceptNative(e *sim.Engine, now sim.Time, pkt workload.Packet) {
	s.curValid = false
	s.consumed++
	s.unmapApplied = false
	s.haveAttempt = false
	s.requests.Add(workload.RequestsPerPacket)
	idx := s.allocPkt()
	ctx := &s.pkts[idx]
	ctx.sid, ctx.started = pkt.SID, now
	e.ScheduleEvent(s.cfg.Params.TLBHit, s, evHitDone<<32|uint64(idx))
}

func (s *System) finishPacket(now sim.Time) {
	s.packets.Inc()
	s.bytes.Add(uint64(s.cfg.Params.PacketBytes))
	s.chain.ReleaseSlot()
	if now > s.lastCompletion {
		s.lastCompletion = now
	}
}

// packetCtx counts a packet's in-flight translations; the packet (and
// its admission slot) completes when the counter drains. In serial mode
// the not-yet-issued translations wait in queue — a fixed array, since a
// packet can never queue more than its own request count. issued is when
// the packet's in-flight resolve left the device (serial mode reissues
// it per translation; parallel mode shares one issue time).
type packetCtx struct {
	outstanding int
	queue       [workload.RequestsPerPacket]pipeline.Request
	qhead, qlen uint8
	sid         mem.SID
	started     sim.Time
	issued      sim.Time
}

// allocPkt takes a zeroed packet context from the pool, growing the slab
// only when every record is in flight.
func (s *System) allocPkt() uint32 {
	if n := len(s.freePkts); n > 0 {
		idx := s.freePkts[n-1]
		s.freePkts = s.freePkts[:n-1]
		s.pkts[idx] = packetCtx{}
		return idx
	}
	s.pkts = append(s.pkts, packetCtx{})
	return uint32(len(s.pkts) - 1)
}

func (s *System) releasePkt(idx uint32) { s.freePkts = append(s.freePkts, idx) }

// startMiss sends one translation down the chain's resolver; the chain
// calls s.Complete with the context index at the completion time.
func (s *System) startMiss(e *sim.Engine, rq pipeline.Request, idx uint32) {
	s.pkts[idx].issued = e.Now()
	s.chain.Resolve(e, rq, s, uint64(idx))
}

// Complete receives one resolved translation (the pipeline.Completer
// face of System) and folds it into the packet's context and the
// miss-latency cells.
func (s *System) Complete(e *sim.Engine, done sim.Time, ctxWord uint64) {
	idx := uint32(ctxWord)
	ctx := &s.pkts[idx]
	d := done.Sub(ctx.issued)
	s.missLatencySum.Add(uint64(d))
	s.missCount.Inc()
	s.missHist.Observe(uint64(d))
	ctx.outstanding--
	if ctx.qhead < ctx.qlen {
		next := ctx.queue[ctx.qhead]
		ctx.qhead++
		s.startMiss(e, next, idx)
	} else if ctx.outstanding == 0 {
		sid, started := ctx.sid, ctx.started
		s.releasePkt(idx)
		s.finishPacket(done)
		s.recordTenantLatency(sid, done, done.Sub(started))
	}
}

// recordTenantLatency folds one packet's service time (completing at
// done) into its tenant's aggregate, and is therefore also the packet
// completion trace point.
func (s *System) recordTenantLatency(sid mem.SID, done sim.Time, d sim.Duration) {
	if s.otr != nil {
		s.otr.Emit(obs.Event{T: int64(done), Ev: "complete", SID: uint32(sid), DurPs: int64(d)})
	}
	tl := &s.tenantLat[sid]
	tl.sum += d
	tl.count++
	if d > tl.worst {
		tl.worst = d
	}
}
