package core

import (
	"math"
	"reflect"
	"testing"

	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// halfLoad stretches every inter-arrival gap 2x: offered load is half
// the link rate at all times.
type halfLoad struct{}

func (halfLoad) Gap(base sim.Duration, now sim.Time) sim.Duration { return 2 * base }

func mixTrace(t *testing.T, victims, bullies int) *trace.Trace {
	t.Helper()
	tr, err := trace.ConstructMix(trace.MixConfig{
		Classes: []trace.ClassSpec{
			{Name: "victim", Profile: workload.ProfileFor(workload.Iperf3), Tenants: victims, Weight: 1, Scale: 0.01},
			{Name: "bully", Profile: workload.ProfileFor(workload.Iperf3), Tenants: bullies, Weight: 4, Scale: 0.08},
		},
		Interleave: trace.RR1,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// A load envelope at half rate doubles the run's span (to within the
// service tail) and halves achieved bandwidth, without changing which
// packets complete; two shaped runs stay identical.
func TestShaperThinsOfferedLoad(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 8, trace.RR1, 0.01)
	full := run(t, HyperTRIOConfig(), tr)
	cfg := HyperTRIOConfig()
	cfg.Shaper = halfLoad{}
	shaped := run(t, cfg, tr)
	if shaped.Packets != full.Packets {
		t.Fatalf("shaper changed packet count: %d vs %d", shaped.Packets, full.Packets)
	}
	ratio := float64(shaped.Elapsed) / float64(full.Elapsed)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("half-rate envelope should ~double the span; ratio = %.2f", ratio)
	}
	if shaped.AchievedGbps >= full.AchievedGbps {
		t.Fatalf("half-rate envelope did not reduce bandwidth: %.2f vs %.2f",
			shaped.AchievedGbps, full.AchievedGbps)
	}
	again := run(t, cfg, tr)
	if !reflect.DeepEqual(shaped, again) {
		t.Fatalf("two identical shaped runs diverged:\n%+v\n%+v", shaped, again)
	}
}

// Class-partitioned populations report a per-class breakdown whose
// packet, drop and throughput accounting reconciles with the totals.
func TestClassResultsReconcile(t *testing.T) {
	tr := mixTrace(t, 6, 2)
	r := run(t, BaseConfig(), tr)
	if len(r.Classes) != 2 {
		t.Fatalf("classes = %d, want 2", len(r.Classes))
	}
	if r.Classes[0].Name != "victim" || r.Classes[1].Name != "bully" {
		t.Fatalf("class names = %q, %q", r.Classes[0].Name, r.Classes[1].Name)
	}
	var pkts, drops uint64
	var gbps float64
	for _, c := range r.Classes {
		pkts += c.Packets
		drops += c.Drops
		gbps += c.Gbps
		if c.Fairness < 0 || c.Fairness > 1.000001 {
			t.Fatalf("class %s fairness out of range: %v", c.Name, c.Fairness)
		}
	}
	if pkts != r.Packets {
		t.Fatalf("class packets sum to %d, run has %d", pkts, r.Packets)
	}
	if drops != r.Drops {
		t.Fatalf("class drops sum to %d, run has %d", drops, r.Drops)
	}
	if math.Abs(gbps-r.AchievedGbps) > 1e-9*math.Max(1, r.AchievedGbps) {
		t.Fatalf("class Gbps sum to %v, run reports %v", gbps, r.AchievedGbps)
	}
	// The weight-4 bully class (2 tenants vs 6) holds 8 of 14 slots per
	// RR cycle and must carry more traffic than the victim class.
	if r.Classes[1].Packets <= r.Classes[0].Packets {
		t.Fatalf("weighted bully class should dominate: bully %d <= victim %d packets",
			r.Classes[1].Packets, r.Classes[0].Packets)
	}
	// Uniform populations keep the legacy shape: no class breakdown.
	if rr := run(t, BaseConfig(), makeTrace(t, workload.Iperf3, 4, trace.RR1, 0.01)); rr.Classes != nil {
		t.Fatalf("uniform trace reported classes: %+v", rr.Classes)
	}
}

// A population whose class tenant counts disagree with the trace's
// tenant count is rejected up front.
func TestClassCountMismatchRejected(t *testing.T) {
	tr := mixTrace(t, 6, 2)
	bad := *tr
	bad.Classes = append([]trace.TenantClass(nil), tr.Classes...)
	bad.Classes[0].Tenants = 5
	if _, err := NewSystem(BaseConfig(), &bad); err == nil {
		t.Fatal("expected class/tenant count mismatch error")
	}
}
