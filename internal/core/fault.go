package core

import (
	"fmt"

	"hypertrio/internal/fault"
	"hypertrio/internal/mem"
	"hypertrio/internal/pipeline"
	"hypertrio/internal/workload"
)

// System is the fault injector's Target: scripted events apply to the
// composed chain exactly like the model's own driver-unmap invalidations
// do, and remaps rewrite the same page tables the chipset walks.

// InvalidatePage propagates one page's invalidation through every stage.
func (s *System) InvalidatePage(sid mem.SID, iova uint64, shift uint8) {
	s.chain.Invalidate(sid, iova, shift)
}

// InvalidateTenant drops every stage's cached state for one SID.
func (s *System) InvalidateTenant(sid mem.SID) int {
	return s.chain.InvalidateSID(sid)
}

// FlushAll empties every translation cache in the datapath.
func (s *System) FlushAll() int {
	return s.chain.FlushAll()
}

// Remap rewrites the page's guest mapping to a fresh physical frame (the
// guest recycling a buffer mid-flight). The mapping's leaf is overwritten
// in place, so in-flight partial-walk resume points stay coherent and the
// page's next full walk observes the new frame.
func (s *System) Remap(sid mem.SID, iova uint64, shift uint8) error {
	nt := s.tenants.Get(sid)
	if nt == nil {
		return fmt.Errorf("core: remap for unknown SID %d", sid)
	}
	_, _, err := nt.MapIOVA(iova, uint(shift))
	return err
}

// FaultStats returns the injector's accounting when a fault plan is
// loaded; ok is false on a fault-free run.
func (s *System) FaultStats() (fault.Stats, bool) {
	if s.injector == nil {
		return fault.Stats{}, false
	}
	return s.injector.Stats(), true
}

// verifyInvariants cross-checks the composed invariant-checker stages (if
// any) against the system's own packet accounting after the run drains.
// A chain without an "invariants" stage verifies nothing and costs
// nothing.
func (s *System) verifyInvariants(r Result) error {
	for _, st := range s.chain.Stages() {
		iv, ok := st.(*pipeline.InvariantStage)
		if !ok {
			continue
		}
		if err := iv.CheckFinal(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		rep := iv.Report()
		if rep.Attempts != r.Packets+r.Drops {
			return fmt.Errorf("core: invariant violated: %d admission attempts != %d packets + %d drops",
				rep.Attempts, r.Packets, r.Drops)
		}
		if rep.Admitted != r.Packets || rep.Rejected != r.Drops {
			return fmt.Errorf("core: invariant violated: admitted/rejected %d/%d != packets/drops %d/%d",
				rep.Admitted, rep.Rejected, r.Packets, r.Drops)
		}
		if want := r.Packets * workload.RequestsPerPacket; r.Requests != want {
			return fmt.Errorf("core: invariant violated: %d requests != %d packets x %d",
				r.Requests, r.Packets, workload.RequestsPerPacket)
		}
	}
	return nil
}
