package core

import (
	"math/rand"
	"testing"

	"hypertrio/internal/device"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// randomConfig builds a valid but arbitrary system configuration.
func randomConfig(rng *rand.Rand) Config {
	cfg := BaseConfig()
	if rng.Intn(2) == 0 {
		cfg = HyperTRIOConfig()
	}
	// Geometry.
	sets := []int{1, 2, 4, 8, 16}[rng.Intn(5)]
	ways := []int{1, 2, 4, 8}[rng.Intn(4)]
	cfg.DevTLB.Sets, cfg.DevTLB.Ways = sets, ways
	cfg.DevTLB.Policy = tlb.PolicyKind(rng.Intn(4)) // skip oracle: needs Future wiring here
	cfg.DevTLB.Index = tlb.IndexMode(rng.Intn(3))
	cfg.PTBEntries = 1 + rng.Intn(48)
	if rng.Intn(3) == 0 {
		cfg.Prefetch = nil
	} else {
		pf := device.DefaultPrefetchConfig()
		pf.BufferEntries = 1 + rng.Intn(16)
		pf.Degree = 1 + rng.Intn(3)
		pf.HistoryLen = 3 * (1 + rng.Intn(40))
		pf.AdaptiveHistory = rng.Intn(2) == 0
		cfg.Prefetch = &pf
	}
	if rng.Intn(4) == 0 {
		cfg.SerialRequests = true
	}
	if rng.Intn(4) == 0 {
		cfg.IOMMUWalkers = 1 + rng.Intn(16)
	}
	if rng.Intn(4) == 0 {
		cfg.PageTableLevels = 5
	}
	return cfg
}

// Property: any valid configuration processes the whole trace, respects
// capacity bounds, and reports sane aggregate metrics.
func TestPropertyRandomConfigsSane(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		kind := workload.Kinds[rng.Intn(len(workload.Kinds))]
		iv := []trace.Interleave{trace.RR1, trace.RR4, trace.RAND1}[rng.Intn(3)]
		tenants := []int{1, 3, 8, 17}[rng.Intn(4)]
		tr, err := trace.Construct(trace.Config{
			Benchmark: kind, Tenants: tenants, Interleave: iv,
			Seed: int64(trial), Scale: 0.002,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := randomConfig(rng)
		sys, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatalf("trial %d: %v (cfg %+v)", trial, err, cfg)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Packets != uint64(len(tr.Packets)) {
			t.Fatalf("trial %d: processed %d of %d packets", trial, r.Packets, len(tr.Packets))
		}
		if r.Utilization < 0 || r.Utilization > 1.0001 {
			t.Fatalf("trial %d: utilization %v", trial, r.Utilization)
		}
		if r.PTB.Peak > cfg.PTBEntries {
			t.Fatalf("trial %d: PTB peak %d > capacity %d", trial, r.PTB.Peak, cfg.PTBEntries)
		}
		if r.DevTLBServed+r.PrefetchServed > r.Requests {
			t.Fatalf("trial %d: served > requests", trial)
		}
		if cfg.DevTLB.Sets > 0 && r.DevTLB.Lookups > 0 &&
			r.DevTLB.Hits+r.DevTLB.Misses != r.DevTLB.Lookups {
			t.Fatalf("trial %d: DevTLB stats inconsistent: %+v", trial, r.DevTLB)
		}
		if r.LatencyFairness < 0 || r.LatencyFairness > 1.0001 {
			t.Fatalf("trial %d: Jain %v", trial, r.LatencyFairness)
		}
	}
}

// Property: adding link headroom (lower offered load) never increases
// drops and never reduces per-tenant fairness dramatically.
func TestPropertyOfferedLoadMonotone(t *testing.T) {
	tr, err := trace.Construct(trace.Config{
		Benchmark: workload.Iperf3, Tenants: 32, Interleave: trace.RR1,
		Seed: 5, Scale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	prevDrops := ^uint64(0)
	for _, rate := range []float64{200, 100, 50, 25} {
		cfg := BaseConfig()
		cfg.Params.ArrivalGbps = rate
		sys, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Drops > prevDrops {
			t.Fatalf("drops rose when offered load fell: %d at %v Gb/s (prev %d)",
				r.Drops, rate, prevDrops)
		}
		prevDrops = r.Drops
	}
}

// Property: walker-limited runs never beat unlimited ones, at any limit.
func TestPropertyWalkerLimitMonotone(t *testing.T) {
	tr, err := trace.Construct(trace.Config{
		Benchmark: workload.Websearch, Tenants: 64, Interleave: trace.RR1,
		Seed: 9, Scale: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	unlimited := HyperTRIOConfig()
	sysU, err := NewSystem(unlimited, tr)
	if err != nil {
		t.Fatal(err)
	}
	rU, err := sysU.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3, 7} {
		cfg := HyperTRIOConfig()
		cfg.IOMMUWalkers = w
		sys, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.AchievedGbps > rU.AchievedGbps*1.01 {
			t.Fatalf("%d walkers (%.1f) beat unlimited (%.1f)", w, r.AchievedGbps, rU.AchievedGbps)
		}
	}
}

// Property: a trace built from a custom small-data profile runs end to
// end with page sizes honored throughout the stack.
func TestPropertySmallDataEndToEnd(t *testing.T) {
	small := workload.SmallDataVariant(workload.ProfileFor(workload.Websearch))
	tr, err := trace.Construct(trace.Config{
		Benchmark: workload.Websearch, Tenants: 12, Interleave: trace.RAND1,
		Seed: 3, Scale: 0.003, Profile: &small,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := func() (Result, error) {
		sys, err := NewSystem(HyperTRIOConfig(), tr)
		if err != nil {
			return Result{}, err
		}
		return sys.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if r.Packets != uint64(len(tr.Packets)) {
		t.Fatalf("processed %d of %d", r.Packets, len(tr.Packets))
	}
	// Small-data pages invalidate often; the DevTLB must see it.
	if r.DevTLB.Invalidates == 0 {
		t.Fatal("no invalidations despite 4K buffer churn")
	}
}
