package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// TestPipelineSpecResolvesVariants pins the config -> stage-sequence
// mapping: every design variant is a different spec of the same kinds.
func TestPipelineSpecResolvesVariants(t *testing.T) {
	kinds := func(c Config) []string {
		spec := c.PipelineSpec()
		out := make([]string, len(spec.Stages))
		for i, s := range spec.Stages {
			out[i] = s.Kind
		}
		return out
	}
	check := func(name string, got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: stages %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: stages %v, want %v", name, got, want)
			}
		}
	}
	check("base", kinds(BaseConfig()), []string{"ptb", "devtlb", "chipset"})
	check("hypertrio", kinds(HyperTRIOConfig()),
		[]string{"ptb", "devtlb", "prefetch-buffer", "chipset", "history-reader"})
	off := Config{Params: DefaultParams(), TranslationOff: true}
	check("native", kinds(off), nil)
	noTLB := BaseConfig()
	noTLB.DevTLB.Sets = 0
	check("no devtlb", kinds(noTLB), []string{"ptb", "chipset"})
}

// TestDescribePipeline checks the user-facing -describe rendering.
func TestDescribePipeline(t *testing.T) {
	got, err := DescribePipeline(HyperTRIOConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ptb", "devtlb", "prefetch", "iommu", "history-reader", "5 stages"} {
		if !strings.Contains(got, want) {
			t.Fatalf("describe output missing %q:\n%s", want, got)
		}
	}
	got, err = DescribePipeline(Config{Params: DefaultParams(), TranslationOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "translation off") {
		t.Fatalf("native describe: %q", got)
	}
	if _, err := DescribePipeline(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestNewPoliciesRunEndToEnd proves the configuration seam: a pseudo-LRU
// DevTLB and a shared (hashed, unpartitioned) chipset IOTLB run through
// the full simulation purely as configuration — no new code path.
func TestNewPoliciesRunEndToEnd(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 16, trace.RR1, 0.002)
	cfg := BaseConfig()
	cfg.DevTLB.Policy = tlb.PLRU // 8 ways: power of two, tree fits
	cfg.IOMMU.IOTLB = tlb.Config{
		Name: "iotlb", Sets: 16, Ways: 8, Policy: tlb.LRU, Index: tlb.Hashed,
	}
	r := run(t, cfg, tr)
	if r.Packets != uint64(len(tr.Packets)) {
		t.Fatalf("processed %d of %d packets", r.Packets, len(tr.Packets))
	}
	if r.DevTLB.Lookups == 0 || r.DevTLB.Hits == 0 {
		t.Fatalf("PLRU DevTLB saw no traffic: %+v", r.DevTLB)
	}
	if r.IOMMU.IOTLB.Lookups == 0 {
		t.Fatalf("shared IOTLB saw no traffic: %+v", r.IOMMU.IOTLB)
	}
}

// TestRepeatedRunsByteIdentical pins determinism at the event level: two
// fresh systems over the same inputs must emit byte-identical traces and
// identical results — no map-iteration order can leak into scheduling.
func TestRepeatedRunsByteIdentical(t *testing.T) {
	tr := makeTrace(t, workload.Websearch, 32, trace.RAND1, 0.002)
	cfg := HyperTRIOConfig()
	cfg.IOMMUWalkers = 4
	runOnce := func() ([]byte, Result) {
		var buf bytes.Buffer
		c := cfg
		c.Obs = &obs.Options{Tracer: obs.NewTracer(&buf), SampleEvery: 5 * sim.Microsecond}
		r := run(t, c, tr)
		if err := c.Obs.Tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), r
	}
	ev1, r1 := runOnce()
	ev2, r2 := runOnce()
	if !bytes.Equal(ev1, ev2) {
		t.Fatalf("event traces differ between identical runs (%d vs %d bytes)", len(ev1), len(ev2))
	}
	r1.Series, r2.Series = nil, nil
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("results differ:\n%+v\n%+v", r1, r2)
	}
}

// TestRetryLatencyDatesFromFirstAttempt pins the drop-retry accounting:
// a packet's recorded service time must span from its FIRST arrival
// attempt (even if that attempt was dropped) to completion, with the
// sampler ticking across retry sequences.
//
// Geometry: one tenant, one PTB slot, no DevTLB — every packet's three
// translations go to the chipset (~2 µs round trip) while arrival slots
// land every ~62 ns, so nearly every packet is dropped repeatedly before
// acceptance. With a single tenant and a single PTB slot, packets are
// accepted and completed in trace order, so first-attempt times can be
// matched to completions FIFO.
func TestRetryLatencyDatesFromFirstAttempt(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 1, trace.RR1, 0.0005)
	cfg := BaseConfig()
	cfg.DevTLB.Sets = 0 // all demand misses
	cfg.PTBEntries = 1

	var buf bytes.Buffer
	cfg.Obs = &obs.Options{Tracer: obs.NewTracer(&buf), SampleEvery: 1 * sim.Microsecond}
	r := run(t, cfg, tr)
	if err := cfg.Obs.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.Drops == 0 {
		t.Fatal("operating point produced no drops; the retry path is untested")
	}

	var firstAttempts []int64 // FIFO of first-attempt times
	var completes, retries int
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Ev {
		case "arrival": // emitted only for a packet's first attempt
			firstAttempts = append(firstAttempts, ev.T)
		case "retry":
			retries++
		case "complete":
			if len(firstAttempts) == 0 {
				t.Fatal("complete event with no matching first attempt")
			}
			first := firstAttempts[0]
			firstAttempts = firstAttempts[1:]
			if want := ev.T - first; ev.DurPs != want {
				t.Fatalf("complete at t=%d: DurPs = %d, want %d (first attempt at %d)",
					ev.T, ev.DurPs, want, first)
			}
			completes++
		}
	}
	if completes != int(r.Packets) {
		t.Fatalf("matched %d completes, result says %d packets", completes, r.Packets)
	}
	if retries == 0 {
		t.Fatal("no retry events despite drops")
	}
}
