package core

import (
	"testing"

	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// TestOracleFlattenLazy pins the laziness of the oracle preprocessing:
// flattening the trace into the Belady future sequence is O(packets) work
// that only the Oracle DevTLB policy consumes, so building and running
// any non-Oracle configuration must never invoke it.
func TestOracleFlattenLazy(t *testing.T) {
	tr := makeTrace(t, workload.Iperf3, 2, trace.RR1, 0.02)
	for _, cfg := range []Config{BaseConfig(), HyperTRIOConfig()} {
		before := oracleFlattens.Load()
		s, err := NewSystem(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if got := oracleFlattens.Load(); got != before {
			t.Fatalf("non-Oracle config flattened the trace %d times; oracle preprocessing must stay lazy", got-before)
		}
	}

	// The Oracle policy is the one consumer: building it must flatten.
	cfg := HyperTRIOConfig()
	cfg.DevTLB.Policy = tlb.Oracle
	before := oracleFlattens.Load()
	if _, err := NewSystem(cfg, tr); err != nil {
		t.Fatal(err)
	}
	if oracleFlattens.Load() == before {
		t.Fatal("Oracle config did not flatten the trace; Belady replacement has no future sequence")
	}
}

// TestOracleRequiresMaterialized pins the streaming/oracle coupling: a
// configuration with any Belady-policy cache cannot run from an online
// source — its replacement decisions need the whole future — and must
// fail fast with a clear error instead of silently materializing
// O(requests) state. Materialized adapters over the same config work.
func TestOracleRequiresMaterialized(t *testing.T) {
	cfg := HyperTRIOConfig()
	cfg.DevTLB.Policy = tlb.Oracle
	if !RequiresMaterialized(cfg) {
		t.Fatal("Oracle DevTLB config not reported as requiring materialization")
	}
	if RequiresMaterialized(HyperTRIOConfig()) {
		t.Fatal("non-Oracle config reported as requiring materialization")
	}
	tc := trace.Config{Benchmark: workload.Iperf3, Tenants: 2, Interleave: trace.RR1, Seed: 42, Scale: 0.02}
	src, err := trace.NewStream(tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystemSource(cfg, src); err == nil {
		t.Fatal("Oracle config over a streaming source must fail fast")
	}
	tr := makeTrace(t, workload.Iperf3, 2, trace.RR1, 0.02)
	if _, err := NewSystemSource(cfg, tr.Source()); err != nil {
		t.Fatalf("Oracle config over a materialized adapter: %v", err)
	}
}

// warmSystem builds a System over a single-tenant trace, primes the
// engine, and steps past the cold phase (pool growth, cache fills,
// histogram buckets), leaving plenty of events pending.
func warmSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	tr := makeTrace(t, workload.Iperf3, 1, trace.RR1, 0.2)
	s, err := NewSystem(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	s.start()
	for i := 0; i < 3000; i++ {
		if !s.step() {
			t.Fatal("engine drained during warm-up; trace too small for the test")
		}
	}
	return s
}

// step advances the system by one event whichever engine topology it
// runs: the serial engine directly, or the sharded coordinator's merged
// execution.
func (s *System) step() bool {
	if s.sharded != nil {
		return s.sharded.Step()
	}
	return s.engine.Step()
}

// warmStreamSystem is warmSystem over an online streaming source: the
// packet pull path (Stream.Next through the generator) joins the measured
// hot path instead of a slice read.
func warmStreamSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	src, err := trace.NewStream(trace.Config{
		Benchmark: workload.Iperf3, Tenants: 1, Interleave: trace.RR1,
		Seed: 42, Scale: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystemSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	s.start()
	for i := 0; i < 3000; i++ {
		if !s.step() {
			t.Fatal("engine drained during warm-up; stream too small for the test")
		}
	}
	return s
}

// TestWarmPacketPathZeroAllocs pins the tentpole claim: once the pools
// and caches are warm, driving packets through the full datapath —
// arrivals, DevTLB hits, chipset misses, nested walks, completions —
// performs zero heap allocations per event.
func TestWarmPacketPathZeroAllocs(t *testing.T) {
	base2 := BaseConfig()
	base2.Shards = 2
	ht2 := HyperTRIOConfig()
	ht2.Shards = 2
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"base", BaseConfig()},
		{"hypertrio", HyperTRIOConfig()},
		{"base/shards=2", base2},
		{"hypertrio/shards=2", ht2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := warmSystem(t, tc.cfg)
			allocs := testing.AllocsPerRun(100, func() {
				for i := 0; i < 10; i++ {
					s.step()
				}
			})
			if allocs != 0 {
				t.Fatalf("warm packet path allocated %v per 10 events, want 0", allocs)
			}
		})
	}
}

// TestWarmStreamPathZeroAllocs extends the zero-alloc pin to streaming
// runs: pulling packets from the online generator-backed source (instead
// of indexing a materialized slice) must not add a single allocation to
// the warm event path — otherwise million-tenant streaming runs would pay
// GC churn proportional to trace length.
func TestWarmStreamPathZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"base", BaseConfig()},
		{"hypertrio", HyperTRIOConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := warmStreamSystem(t, tc.cfg)
			allocs := testing.AllocsPerRun(100, func() {
				for i := 0; i < 10; i++ {
					s.step()
				}
			})
			if allocs != 0 {
				t.Fatalf("warm streaming packet path allocated %v per 10 events, want 0", allocs)
			}
		})
	}
}
