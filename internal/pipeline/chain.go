package pipeline

import (
	"fmt"
	"strings"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
)

// missEvent is the trace event emitted when no device-side probe stage
// serves a request. The name is fixed for schema stability
// (hypertrio-trace/1): it stays "devtlb_miss" even in chains without a
// DevTLB, where it marks the request leaving the device.
const missEvent = "devtlb_miss"

// Chain is a composed translation datapath. Every method is total: an
// empty chain (the TranslationOff native path) admits everything and
// reports zeroes, so the performance model never branches on which
// stages exist.
type Chain struct {
	stages []Stage
	tracer *obs.Tracer
	pool   *WalkerPool

	// faults is the fault injector's hook (nil in every fault-free run;
	// all uses are nil-guarded so the hot path is untouched without it).
	faults FaultHook
	// invalidators are the stages holding per-tenant state, precomputed
	// at build time so tenant-scoped and broadcast invalidations are one
	// tight loop in chain order.
	invalidators []Invalidator

	// Role bindings resolved at build time; no-op placeholders keep the
	// packet path branch-free when a role is absent.
	admit    Admitter
	resolver Resolver
	issuer   Issuer

	// Device-side probe order with the per-stage served counters and hit
	// event names, precomputed so Lookup is one tight loop.
	probes      []Prober
	probeServed []*obs.Counter
	probeHitEv  []string
	served      map[string]*obs.Counter

	// Concrete handles for stats/sampling views (nil when absent — these
	// feed accessors that return zero values, never the packet path).
	admission *AdmissionStage
	caches    map[string]*CacheStage
	pb        *PrefetchBufferStage
	chipset   *ChipsetStage
}

// Admit takes an admission slot for one packet (always true without an
// admission stage).
func (c *Chain) Admit() bool { return c.admit.Admit() }

// ReleaseSlot frees the admission slot at packet completion.
func (c *Chain) ReleaseSlot() { c.admit.Release() }

// Observe feeds the accepted packet stream to the prefetch predictor.
func (c *Chain) Observe(sid mem.SID) { c.issuer.Observe(sid) }

// Lookup probes the device-side stages in chain order. A hit bumps the
// serving stage's counter and emits its hit event; a full miss emits the
// miss event and returns false — the caller then resolves via Resolve.
func (c *Chain) Lookup(e *sim.Engine, rq Request) bool {
	for i, p := range c.probes {
		if p.Lookup(rq) {
			c.probeServed[i].Inc()
			if c.tracer != nil {
				c.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: c.probeHitEv[i],
					SID: uint32(rq.SID), IOVA: obs.Hex(rq.IOVA), Shift: rq.Shift})
			}
			if c.faults != nil {
				c.faults.OnProbeHit(e.Now(), rq.SID, rq.IOVA, rq.Shift)
			}
			return true
		}
	}
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: missEvent,
			SID: uint32(rq.SID), IOVA: obs.Hex(rq.IOVA), Shift: rq.Shift})
	}
	return false
}

// Resolve sends a demand miss down to the resolver stage; done.Complete
// fires at the completion time (with the caller's ctx word), after the
// device-side stages were refilled.
func (c *Chain) Resolve(e *sim.Engine, rq Request, done Completer, ctx uint64) {
	c.resolver.Resolve(e, rq, done, ctx)
}

// MaybePrefetch gives the issuing stage a chance to start a prefetch
// after a demand miss by current.
func (c *Chain) MaybePrefetch(e *sim.Engine, current mem.SID) { c.issuer.Issue(e, current) }

// Invalidate broadcasts a driver unmap to every stage, in chain order
// (device side first, then the chipset — one invalidation command).
func (c *Chain) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	for _, st := range c.stages {
		st.Invalidate(sid, iova, shift)
	}
}

// InvalidateSID drops every stage's cached state for one tenant (SID
// teardown / domain-wide invalidation), device side first, and returns
// how many cached objects were dropped across the chain.
func (c *Chain) InvalidateSID(sid mem.SID) int {
	n := 0
	for _, iv := range c.invalidators {
		n += iv.InvalidateSID(sid)
	}
	return n
}

// FlushAll empties every stage's cached translations (a broadcast
// invalidation command) and returns how many entries were dropped.
func (c *Chain) FlushAll() int {
	n := 0
	for _, iv := range c.invalidators {
		n += iv.FlushAll()
	}
	return n
}

// Register publishes every stage's cells under its stage name, plus the
// walker-pool gauges the sampler reads.
func (c *Chain) Register(r *obs.Registry) {
	for _, st := range c.stages {
		st.Register(r, st.Name())
	}
}

// Served returns the counter of demand requests answered by the named
// probe stage. The cell exists (at zero, never incremented) even when
// the stage is absent, so callers can register and read it
// unconditionally.
func (c *Chain) Served(name string) *obs.Counter {
	if c.served[name] == nil {
		c.served[name] = &obs.Counter{}
	}
	return c.served[name]
}

// Stages returns the composed stages in chain order.
func (c *Chain) Stages() []Stage { return c.stages }

// WalkersBusy returns how many chipset walkers are currently held.
func (c *Chain) WalkersBusy() int { return c.pool.Busy() }

// WalkQueue returns how many translations wait for a walker.
func (c *Chain) WalkQueue() int { return c.pool.Queued() }

// PTBInUse returns the admission stage's occupied slots (0 if absent).
func (c *Chain) PTBInUse() int {
	if c.admission == nil {
		return 0
	}
	return c.admission.PTB().InUse()
}

// PTBStats returns the admission stage's counters (zero if absent).
func (c *Chain) PTBStats() device.PTBStats {
	if c.admission == nil {
		return device.PTBStats{}
	}
	return c.admission.PTB().Stats()
}

// CacheStats returns the named cache stage's traffic (zero if absent).
func (c *Chain) CacheStats(name string) tlb.Stats {
	if st := c.caches[name]; st != nil {
		return st.Cache().Stats()
	}
	return tlb.Stats{}
}

// PrefetchStats returns the prefetch unit's counters (zero if absent).
func (c *Chain) PrefetchStats() device.PrefetchStats {
	if c.pb == nil {
		return device.PrefetchStats{}
	}
	return c.pb.Unit().Stats()
}

// IOMMUStats returns the chipset's counters (zero if absent).
func (c *Chain) IOMMUStats() iommu.Stats {
	if c.chipset == nil {
		return iommu.Stats{}
	}
	return c.chipset.IOMMU().Stats()
}

// Describe renders the resolved datapath, one numbered line per stage.
func (c *Chain) Describe() string {
	if len(c.stages) == 0 {
		return "translation off: native path, every packet completes in one TLB-hit latency\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "translation datapath (%d stages):\n", len(c.stages))
	for i, st := range c.stages {
		fmt.Fprintf(&b, "  %d. %-16s %s\n", i+1, st.Name(), st.Describe())
	}
	return b.String()
}

// noopAdmitter admits everything; it backs chains without an admission
// stage (the native path).
type noopAdmitter struct{}

func (noopAdmitter) Name() string                      { return "admit-all" }
func (noopAdmitter) Lookup(Request) bool               { return false }
func (noopAdmitter) Fill(Request, uint64)              {}
func (noopAdmitter) Invalidate(mem.SID, uint64, uint8) {}
func (noopAdmitter) Register(*obs.Registry, string)    {}
func (noopAdmitter) Describe() string                  { return "admit everything" }
func (noopAdmitter) Admit() bool                       { return true }
func (noopAdmitter) Release()                          {}

// noopIssuer never prefetches; it backs chains without a history reader.
type noopIssuer struct{}

func (noopIssuer) Name() string                      { return "no-prefetch" }
func (noopIssuer) Lookup(Request) bool               { return false }
func (noopIssuer) Fill(Request, uint64)              {}
func (noopIssuer) Invalidate(mem.SID, uint64, uint8) {}
func (noopIssuer) Register(*obs.Registry, string)    {}
func (noopIssuer) Describe() string                  { return "no prefetching" }
func (noopIssuer) Observe(mem.SID)                   {}
func (noopIssuer) Issue(*sim.Engine, mem.SID)        {}

// panicResolver backs chains that have stages but no resolver; BuildChain
// rejects such specs, so reaching it is a bug.
type panicResolver struct{ noopIssuer }

func (panicResolver) Resolve(*sim.Engine, Request, Completer, uint64) {
	panic("pipeline: chain has no resolver stage")
}
