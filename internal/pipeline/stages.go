package pipeline

import (
	"fmt"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/workload"
)

// AdmissionStage wraps the Pending Translation Buffer as the chain's
// admitter: a packet allocates its in-flight translation context here or
// is dropped and retried by the link model.
type AdmissionStage struct {
	ptb *device.PTB
}

func (st *AdmissionStage) Name() string                       { return "ptb" }
func (st *AdmissionStage) Lookup(Request) bool                { return false }
func (st *AdmissionStage) Fill(Request, uint64)               {}
func (st *AdmissionStage) Invalidate(mem.SID, uint64, uint8)  {}
func (st *AdmissionStage) Register(r *obs.Registry, p string) { st.ptb.Register(r, p) }
func (st *AdmissionStage) Admit() bool                        { return st.ptb.Alloc() }
func (st *AdmissionStage) Release()                           { st.ptb.Release() }

// PTB exposes the underlying buffer for occupancy sampling and stats.
func (st *AdmissionStage) PTB() *device.PTB { return st.ptb }

func (st *AdmissionStage) Describe() string {
	return fmt.Sprintf("admission: %d pending-translation slots (drop + retry when full)",
		st.ptb.Capacity())
}

// CacheStage wraps a tlb.Cache as a device-side probe level — the
// DevTLB in every shipped configuration, but any geometry/policy/name
// can be composed in.
type CacheStage struct {
	name  string
	cache *tlb.Cache
}

func (st *CacheStage) Name() string     { return st.name }
func (st *CacheStage) HitEvent() string { return st.name + "_hit" }

func (st *CacheStage) Lookup(rq Request) bool {
	_, ok := st.cache.Lookup(rq.Key())
	return ok
}

func (st *CacheStage) Fill(rq Request, hpaBase uint64) {
	st.cache.Insert(tlb.Entry{Key: rq.Key(), Value: hpaBase, PageShift: rq.Shift})
}

func (st *CacheStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.cache.Invalidate(iommu.PageKey(sid, iova, shift))
}

func (st *CacheStage) Register(r *obs.Registry, p string) { st.cache.Register(r, p) }

// Cache exposes the underlying structure for stats and tests.
func (st *CacheStage) Cache() *tlb.Cache { return st.cache }

func (st *CacheStage) Describe() string {
	cfg := st.cache.Config()
	return fmt.Sprintf("cache: %d sets x %d ways (%d entries), %s replacement, %s indexing",
		cfg.Sets, cfg.Ways, cfg.Entries(), cfg.Policy, cfg.Index)
}

// PrefetchBufferStage wraps the Prefetch Unit's buffer as a device-side
// probe level. Demand completions do not fill it — only prefetch
// completions install entries, via the history reader.
type PrefetchBufferStage struct {
	pu *device.PrefetchUnit
}

func (st *PrefetchBufferStage) Name() string     { return "prefetch" }
func (st *PrefetchBufferStage) HitEvent() string { return "prefetch_hit" }

func (st *PrefetchBufferStage) Lookup(rq Request) bool {
	_, ok := st.pu.Lookup(rq.Key())
	return ok
}

func (st *PrefetchBufferStage) Fill(Request, uint64) {}

func (st *PrefetchBufferStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.pu.Invalidate(sid, iova, shift)
}

func (st *PrefetchBufferStage) Register(r *obs.Registry, p string) { st.pu.Register(r, p) }

// Unit exposes the prefetch unit for stats and the history reader.
func (st *PrefetchBufferStage) Unit() *device.PrefetchUnit { return st.pu }

func (st *PrefetchBufferStage) Describe() string {
	cfg := st.pu.Config()
	adaptive := "fixed"
	if cfg.AdaptiveHistory {
		adaptive = "adaptive"
	}
	return fmt.Sprintf("prefetch buffer: %d entries (fully associative, LRU), degree %d, %s history (len %d)",
		cfg.BufferEntries, cfg.Degree, adaptive, cfg.HistoryLen)
}

// ChipsetStage is the resolver: it carries a demand miss over PCIe to
// the chipset, claims a walker, runs the translation (context cache,
// optional IOTLB, page-walk caches, nested walk), charges the memory
// latency, refills the device-side probe stages and completes back over
// PCIe.
type ChipsetStage struct {
	mmu     *iommu.IOMMU
	pool    *WalkerPool
	lat     Latencies
	tracer  *obs.Tracer
	fills   []Stage // device-side stages refilled by demand completions
	walkers int     // configured cap (0 = unlimited), for Describe
}

func (st *ChipsetStage) Name() string         { return "iommu" }
func (st *ChipsetStage) Lookup(Request) bool  { return false }
func (st *ChipsetStage) Fill(Request, uint64) {}

func (st *ChipsetStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.mmu.Invalidate(sid, iova, shift)
}

func (st *ChipsetStage) Register(r *obs.Registry, p string) { st.mmu.Register(r, p) }

// IOMMU exposes the chipset model for stats and the history reader.
func (st *ChipsetStage) IOMMU() *iommu.IOMMU { return st.mmu }

func (st *ChipsetStage) Resolve(e *sim.Engine, rq Request, done func(*sim.Engine, sim.Time)) {
	lat := st.lat
	e.Schedule(lat.TLBHit+lat.PCIeOneWay, func(e *sim.Engine, _ sim.Time) {
		st.pool.Acquire(e, func(e *sim.Engine) {
			res, err := st.mmu.Translate(rq.SID, rq.IOVA, rq.Shift, true)
			if err != nil {
				panic(fmt.Sprintf("pipeline: translate SID %d iova %#x: %v", rq.SID, rq.IOVA, err))
			}
			walk := sim.Duration(res.MemAccesses) * lat.DRAMLatency
			if res.IOTLBHit {
				walk += lat.TLBHit
			}
			if st.tracer != nil {
				st.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: "walk_start",
					SID: uint16(rq.SID), IOVA: obs.Hex(rq.IOVA), Shift: rq.Shift, N: res.MemAccesses})
			}
			e.Schedule(walk, func(e *sim.Engine, wnow sim.Time) {
				if st.tracer != nil {
					st.tracer.Emit(obs.Event{T: int64(wnow), Ev: "walk_end",
						SID: uint16(rq.SID), IOVA: obs.Hex(rq.IOVA), DurPs: int64(walk)})
				}
				st.pool.Release(e)
			})
			e.Schedule(walk+lat.PCIeOneWay, func(e *sim.Engine, doneAt sim.Time) {
				base := res.HPA &^ (uint64(1)<<rq.Shift - 1)
				for _, f := range st.fills {
					f.Fill(rq, base)
				}
				done(e, doneAt)
			})
		})
	})
}

func (st *ChipsetStage) Describe() string {
	c := st.mmu.Config()
	iotlb := "off"
	if c.IOTLB.Sets > 0 {
		iotlb = fmt.Sprintf("%dx%d %s %s", c.IOTLB.Sets, c.IOTLB.Ways, c.IOTLB.Policy, c.IOTLB.Index)
	}
	walkers := "unlimited walkers"
	if st.walkers > 0 {
		walkers = fmt.Sprintf("%d walkers", st.walkers)
	}
	return fmt.Sprintf("chipset: context cache %d-entry %s; IOTLB %s; L2 PWC %dx%d %s %s; L3 PWC %dx%d %s %s; %s",
		c.ContextCache.Entries(), c.ContextCache.Policy, iotlb,
		c.L2PWC.Sets, c.L2PWC.Ways, c.L2PWC.Policy, c.L2PWC.Index,
		c.L3PWC.Sets, c.L3PWC.Ways, c.L3PWC.Policy, c.L3PWC.Index, walkers)
}

// HistoryReaderStage is the chipset's IOVA history reader driven by the
// device's SID-predictor: after a demand miss it may claim a walker,
// read the predicted tenant's per-DID history from memory, translate the
// fetched gIOVAs back to back and install them into the Prefetch Buffer.
type HistoryReaderStage struct {
	pu     *device.PrefetchUnit
	mmu    *iommu.IOMMU
	pool   *WalkerPool
	lat    Latencies
	tracer *obs.Tracer
}

func (st *HistoryReaderStage) Name() string                      { return "history-reader" }
func (st *HistoryReaderStage) Lookup(Request) bool               { return false }
func (st *HistoryReaderStage) Fill(Request, uint64)              {}
func (st *HistoryReaderStage) Invalidate(mem.SID, uint64, uint8) {}

// Register is a no-op: the prefetch unit's cells (including the
// predictor this stage drives) are published by the PrefetchBufferStage
// under "prefetch", and double registration would panic the registry.
func (st *HistoryReaderStage) Register(*obs.Registry, string) {}

func (st *HistoryReaderStage) Observe(sid mem.SID) { st.pu.Predictor().Observe(sid) }

func (st *HistoryReaderStage) Issue(e *sim.Engine, current mem.SID) {
	target, ok := st.pu.ShouldPrefetch(current)
	if !ok {
		return
	}
	triggered := e.Now()
	if st.tracer != nil {
		st.tracer.Emit(obs.Event{T: int64(triggered), Ev: "prefetch_issue", SID: uint16(target)})
	}
	lat := st.lat
	e.Schedule(lat.PCIeOneWay, func(e *sim.Engine, _ sim.Time) {
		// The history reader claims one walker: it reads the per-DID
		// history from memory, then walks the fetched gIOVAs back to back.
		st.pool.Acquire(e, func(e *sim.Engine) {
			recent := st.mmu.History().Recent(target, st.pu.Config().Degree)
			if len(recent) == 0 {
				if st.tracer != nil {
					st.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: "prefetch_abort", SID: uint16(target)})
				}
				st.pu.Abort(target)
				st.pool.Release(e)
				return
			}
			total := lat.DRAMLatency // history read
			entries := make([]tlb.Entry, 0, len(recent))
			for _, h := range recent {
				res, err := st.mmu.Translate(target, h.IOVA, h.PageShift, false)
				if err != nil {
					continue // page was unmapped while the prefetch was in flight
				}
				total += sim.Duration(res.MemAccesses) * lat.DRAMLatency
				if res.IOTLBHit {
					total += lat.TLBHit
				}
				pageMask := uint64(1)<<h.PageShift - 1
				entries = append(entries, tlb.Entry{
					Key:       iommu.PageKey(target, h.IOVA, h.PageShift),
					Value:     res.HPA &^ pageMask,
					PageShift: h.PageShift,
				})
			}
			e.Schedule(total, func(e *sim.Engine, _ sim.Time) { st.pool.Release(e) })
			e.Schedule(total+lat.PCIeOneWay, func(_ *sim.Engine, done sim.Time) {
				if st.tracer != nil {
					st.tracer.Emit(obs.Event{T: int64(done), Ev: "prefetch_fill",
						SID: uint16(target), N: len(entries), DurPs: int64(done.Sub(triggered))})
				}
				// Report the observed trigger-to-fill latency in requests
				// so the host can retune the history-length register.
				latencyRequests := int(float64(done.Sub(triggered)) / float64(lat.Interarrival) * workload.RequestsPerPacket)
				st.pu.Complete(target, entries, latencyRequests)
			})
		})
	})
}

func (st *HistoryReaderStage) Describe() string {
	return fmt.Sprintf("history reader: degree-%d prefetch of the predicted tenant's recent IOVAs",
		st.pu.Config().Degree)
}
