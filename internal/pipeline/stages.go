package pipeline

import (
	"fmt"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/workload"
)

// AdmissionStage wraps the Pending Translation Buffer as the chain's
// admitter: a packet allocates its in-flight translation context here or
// is dropped and retried by the link model.
type AdmissionStage struct {
	ptb *device.PTB
}

func (st *AdmissionStage) Name() string                       { return "ptb" }
func (st *AdmissionStage) Lookup(Request) bool                { return false }
func (st *AdmissionStage) Fill(Request, uint64)               {}
func (st *AdmissionStage) Invalidate(mem.SID, uint64, uint8)  {}
func (st *AdmissionStage) Register(r *obs.Registry, p string) { st.ptb.Register(r, p) }
func (st *AdmissionStage) Admit() bool                        { return st.ptb.Alloc() }
func (st *AdmissionStage) Release()                           { st.ptb.Release() }

// PTB exposes the underlying buffer for occupancy sampling and stats.
func (st *AdmissionStage) PTB() *device.PTB { return st.ptb }

func (st *AdmissionStage) Describe() string {
	return fmt.Sprintf("admission: %d pending-translation slots (drop + retry when full)",
		st.ptb.Capacity())
}

// CacheStage wraps a tlb.Cache as a device-side probe level — the
// DevTLB in every shipped configuration, but any geometry/policy/name
// can be composed in.
type CacheStage struct {
	name  string
	cache *tlb.Cache
}

func (st *CacheStage) Name() string     { return st.name }
func (st *CacheStage) HitEvent() string { return st.name + "_hit" }

func (st *CacheStage) Lookup(rq Request) bool {
	_, ok := st.cache.Lookup(rq.Key())
	return ok
}

func (st *CacheStage) Fill(rq Request, hpaBase uint64) {
	st.cache.Insert(tlb.Entry{Key: rq.Key(), Value: hpaBase, PageShift: rq.Shift})
}

func (st *CacheStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.cache.Invalidate(iommu.PageKey(sid, iova, shift))
}

func (st *CacheStage) InvalidateSID(sid mem.SID) int { return st.cache.InvalidateSID(uint32(sid)) }
func (st *CacheStage) FlushAll() int                 { return st.cache.Flush() }

func (st *CacheStage) Register(r *obs.Registry, p string) { st.cache.Register(r, p) }

// Cache exposes the underlying structure for stats and tests.
func (st *CacheStage) Cache() *tlb.Cache { return st.cache }

func (st *CacheStage) Describe() string {
	cfg := st.cache.Config()
	return fmt.Sprintf("cache: %d sets x %d ways (%d entries), %s replacement, %s indexing",
		cfg.Sets, cfg.Ways, cfg.Entries(), cfg.Policy, cfg.Index)
}

// PrefetchBufferStage wraps the Prefetch Unit's buffer as a device-side
// probe level. Demand completions do not fill it — only prefetch
// completions install entries, via the history reader.
type PrefetchBufferStage struct {
	pu *device.PrefetchUnit
}

func (st *PrefetchBufferStage) Name() string     { return "prefetch" }
func (st *PrefetchBufferStage) HitEvent() string { return "prefetch_hit" }

func (st *PrefetchBufferStage) Lookup(rq Request) bool {
	_, ok := st.pu.Lookup(rq.Key())
	return ok
}

func (st *PrefetchBufferStage) Fill(Request, uint64) {}

func (st *PrefetchBufferStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.pu.Invalidate(sid, iova, shift)
}

func (st *PrefetchBufferStage) InvalidateSID(sid mem.SID) int { return st.pu.InvalidateSID(sid) }
func (st *PrefetchBufferStage) FlushAll() int                 { return st.pu.FlushAll() }

func (st *PrefetchBufferStage) Register(r *obs.Registry, p string) { st.pu.Register(r, p) }

// Unit exposes the prefetch unit for stats and the history reader.
func (st *PrefetchBufferStage) Unit() *device.PrefetchUnit { return st.pu }

func (st *PrefetchBufferStage) Describe() string {
	cfg := st.pu.Config()
	adaptive := "fixed"
	if cfg.AdaptiveHistory {
		adaptive = "adaptive"
	}
	return fmt.Sprintf("prefetch buffer: %d entries (fully associative, LRU), degree %d, %s history (len %d)",
		cfg.BufferEntries, cfg.Degree, adaptive, cfg.HistoryLen)
}

// ChipsetStage is the resolver: it carries a demand miss over PCIe to
// the chipset, claims a walker, runs the translation (context cache,
// optional IOTLB, page-walk caches, nested walk), charges the memory
// latency, refills the device-side probe stages and completes back over
// PCIe.
//
// The whole resolve path is closure-free: each in-flight miss lives in
// a pooled chipsetWalk record, and the stage schedules typed events
// against itself with the record's index (plus an event-kind tag) in
// the payload word. Steady-state resolution allocates nothing.
type ChipsetStage struct {
	mmu     *iommu.IOMMU
	pool    *WalkerPool
	lat     Latencies
	tracer  *obs.Tracer
	faults  FaultHook   // nil in every fault-free run
	fills   []Stage     // device-side stages refilled by demand completions
	walkers int         // configured cap (0 = unlimited), for Describe
	split   *chainSplit // non-nil when the stage runs in its own domain

	walks []chipsetWalk // pooled in-flight miss records
	free  []uint32
}

// chipsetWalk is one in-flight demand miss at the chipset.
type chipsetWalk struct {
	rq      Request
	done    Completer
	ctx     uint64 // the caller's context word, threaded through
	walk    sim.Duration
	hpaBase uint64
	attempt uint8 // walk attempts faulted so far (walker-fault retries)
}

// Event kinds for the chipset's typed events, stored in payload bits
// 32+; the low 32 bits carry the chipsetWalk index.
const (
	ckArrive   uint64 = iota // PCIe trip done: claim a walker
	ckWalkEnd                // memory accesses done: release the walker
	ckComplete               // return PCIe trip done: refill and complete
	ckRetry                  // walker-fault backoff elapsed: re-attempt the walk
)

func (st *ChipsetStage) alloc() uint32 {
	if n := len(st.free); n > 0 {
		idx := st.free[n-1]
		st.free = st.free[:n-1]
		return idx
	}
	st.walks = append(st.walks, chipsetWalk{})
	return uint32(len(st.walks) - 1)
}

func (st *ChipsetStage) release(idx uint32) {
	st.walks[idx] = chipsetWalk{} // drop the Completer reference
	st.free = append(st.free, idx)
}

func (st *ChipsetStage) Name() string         { return "iommu" }
func (st *ChipsetStage) Lookup(Request) bool  { return false }
func (st *ChipsetStage) Fill(Request, uint64) {}

func (st *ChipsetStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.mmu.Invalidate(sid, iova, shift)
}

func (st *ChipsetStage) InvalidateSID(sid mem.SID) int { return st.mmu.InvalidateSID(sid) }
func (st *ChipsetStage) FlushAll() int                 { return st.mmu.FlushAll() }

func (st *ChipsetStage) Register(r *obs.Registry, p string) { st.mmu.Register(r, p) }

// IOMMU exposes the chipset model for stats and the history reader.
func (st *ChipsetStage) IOMMU() *iommu.IOMMU { return st.mmu }

func (st *ChipsetStage) Resolve(e *sim.Engine, rq Request, done Completer, ctx uint64) {
	if sp := st.split; sp != nil {
		// Split chain: the miss crosses the domain boundary as a
		// message; the walk record is allocated on arrival, in the
		// chipset's own domain. The completer was bound at EnableSplit
		// (it cannot travel in a payload word), so it must be the one
		// every caller passes.
		if done != sp.dev.done {
			panic("pipeline: split chain resolved with a different completer than EnableSplit bound")
		}
		sp.toIO.Send(sp.io, st.lat.TLBHit+st.lat.PCIeOneWay, xResolve, rq.IOVA, packRq(rq), ctx, 0)
		return
	}
	idx := st.alloc()
	w := &st.walks[idx]
	w.rq, w.done, w.ctx = rq, done, ctx
	e.ScheduleEvent(st.lat.TLBHit+st.lat.PCIeOneWay, st, ckArrive<<32|uint64(idx))
}

// HandleEvent dispatches the stage's typed events by kind tag.
func (st *ChipsetStage) HandleEvent(e *sim.Engine, now sim.Time, payload uint64) {
	idx := uint32(payload)
	switch payload >> 32 {
	case ckArrive:
		st.pool.Acquire(e, st, uint64(idx))
	case ckWalkEnd:
		w := &st.walks[idx]
		if st.tracer != nil {
			st.tracer.Emit(obs.Event{T: int64(now), Ev: "walk_end",
				SID: uint32(w.rq.SID), IOVA: obs.Hex(w.rq.IOVA), DurPs: int64(w.walk)})
		}
		st.pool.Release(e)
		if st.split != nil {
			// Split chains never schedule ckComplete — the completion
			// crossed as a message carrying the result by value, so the
			// record is done once the walker is back.
			st.release(idx)
		}
	case ckComplete:
		w := &st.walks[idx]
		for _, f := range st.fills {
			f.Fill(w.rq, w.hpaBase)
		}
		done, ctx := w.done, w.ctx
		st.release(idx)
		done.Complete(e, now, ctx)
	case ckRetry:
		st.runWalk(e, idx)
	}
}

// RunWalk runs the translation once the pool grants a walker.
func (st *ChipsetStage) RunWalk(e *sim.Engine, payload uint64) {
	st.runWalk(e, uint32(payload))
}

// runWalk is one walk attempt for the record at idx: the walker is held;
// a faulted attempt backs off (keeping the walker — the walk context is
// pinned in hardware while the host services the fault) and re-attempts
// via ckRetry; a clean attempt performs the translation.
func (st *ChipsetStage) runWalk(e *sim.Engine, idx uint32) {
	w := &st.walks[idx]
	if st.faults != nil {
		if retryIn, faulted := st.faults.WalkAttempt(e.Now(), w.rq.SID, int(w.attempt)); faulted {
			w.attempt++
			if st.tracer != nil {
				st.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: "fault_retry",
					SID: uint32(w.rq.SID), IOVA: obs.Hex(w.rq.IOVA), Shift: w.rq.Shift,
					N: int(w.attempt), DurPs: int64(retryIn)})
			}
			e.ScheduleEvent(retryIn, st, ckRetry<<32|uint64(idx))
			return
		}
		st.faults.OnWalk(e.Now(), w.rq.SID, w.rq.IOVA, w.rq.Shift)
	}
	res, err := st.mmu.Translate(w.rq.SID, w.rq.IOVA, w.rq.Shift, true)
	if err != nil {
		panic(fmt.Sprintf("pipeline: translate SID %d iova %#x: %v", w.rq.SID, w.rq.IOVA, err))
	}
	walk := sim.Duration(res.MemAccesses) * st.lat.DRAMLatency
	if res.IOTLBHit {
		walk += st.lat.TLBHit
	}
	w.walk = walk
	w.hpaBase = res.HPA &^ (uint64(1)<<w.rq.Shift - 1)
	if st.tracer != nil {
		st.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: "walk_start",
			SID: uint32(w.rq.SID), IOVA: obs.Hex(w.rq.IOVA), Shift: w.rq.Shift, N: res.MemAccesses})
	}
	e.ScheduleEvent(walk, st, ckWalkEnd<<32|uint64(idx))
	if sp := st.split; sp != nil {
		// Same schedule order as serial (walk end, then completion) so a
		// lockstep merge consumes the shared sequence counter at exactly
		// the same points.
		sp.toDev.Send(sp.dev, walk+st.lat.PCIeOneWay, xComplete,
			w.rq.IOVA, packRq(w.rq), w.hpaBase, w.ctx)
		return
	}
	e.ScheduleEvent(walk+st.lat.PCIeOneWay, st, ckComplete<<32|uint64(idx))
}

func (st *ChipsetStage) Describe() string {
	c := st.mmu.Config()
	iotlb := "off"
	if c.IOTLB.Sets > 0 {
		iotlb = fmt.Sprintf("%dx%d %s %s", c.IOTLB.Sets, c.IOTLB.Ways, c.IOTLB.Policy, c.IOTLB.Index)
	}
	walkers := "unlimited walkers"
	if st.walkers > 0 {
		walkers = fmt.Sprintf("%d walkers", st.walkers)
	}
	return fmt.Sprintf("chipset: context cache %d-entry %s; IOTLB %s; L2 PWC %dx%d %s %s; L3 PWC %dx%d %s %s; %s",
		c.ContextCache.Entries(), c.ContextCache.Policy, iotlb,
		c.L2PWC.Sets, c.L2PWC.Ways, c.L2PWC.Policy, c.L2PWC.Index,
		c.L3PWC.Sets, c.L3PWC.Ways, c.L3PWC.Policy, c.L3PWC.Index, walkers)
}

// HistoryReaderStage is the chipset's IOVA history reader driven by the
// device's SID-predictor: after a demand miss it may claim a walker,
// read the predicted tenant's per-DID history from memory, translate the
// fetched gIOVAs back to back and install them into the Prefetch Buffer.
//
// Like the chipset stage, prefetches are closure-free: each in-flight
// prefetch is a pooled historyPrefetch record whose entry and history
// buffers are reused across prefetches, addressed by index through the
// typed-event payload.
type HistoryReaderStage struct {
	pu     *device.PrefetchUnit
	mmu    *iommu.IOMMU
	pool   *WalkerPool
	lat    Latencies
	tracer *obs.Tracer

	prefs []historyPrefetch // pooled in-flight prefetch records
	free  []uint32
}

// historyPrefetch is one in-flight prefetch of a predicted tenant.
type historyPrefetch struct {
	target    mem.SID
	triggered sim.Time
	recent    []iommu.HistoryEntry // reused scratch: fetched history
	entries   []tlb.Entry          // reused scratch: translated fills
}

// Event kinds for the history reader's typed events (payload bits 32+;
// low 32 bits are the historyPrefetch index).
const (
	hkArrive  uint64 = iota // PCIe trip done: claim a walker
	hkWalkEnd               // history read + walks done: release walker
	hkFill                  // return PCIe trip done: install the fills
)

func (st *HistoryReaderStage) alloc() uint32 {
	if n := len(st.free); n > 0 {
		idx := st.free[n-1]
		st.free = st.free[:n-1]
		return idx
	}
	st.prefs = append(st.prefs, historyPrefetch{})
	return uint32(len(st.prefs) - 1)
}

func (st *HistoryReaderStage) release(idx uint32) {
	p := &st.prefs[idx]
	p.target, p.triggered = 0, 0
	p.recent, p.entries = p.recent[:0], p.entries[:0] // keep the backing arrays
	st.free = append(st.free, idx)
}

func (st *HistoryReaderStage) Name() string                      { return "history-reader" }
func (st *HistoryReaderStage) Lookup(Request) bool               { return false }
func (st *HistoryReaderStage) Fill(Request, uint64)              {}
func (st *HistoryReaderStage) Invalidate(mem.SID, uint64, uint8) {}

// Register is a no-op: the prefetch unit's cells (including the
// predictor this stage drives) are published by the PrefetchBufferStage
// under "prefetch", and double registration would panic the registry.
func (st *HistoryReaderStage) Register(*obs.Registry, string) {}

func (st *HistoryReaderStage) Observe(sid mem.SID) { st.pu.Predictor().Observe(sid) }

func (st *HistoryReaderStage) Issue(e *sim.Engine, current mem.SID) {
	target, ok := st.pu.ShouldPrefetch(current)
	if !ok {
		return
	}
	triggered := e.Now()
	if st.tracer != nil {
		st.tracer.Emit(obs.Event{T: int64(triggered), Ev: "prefetch_issue", SID: uint32(target)})
	}
	idx := st.alloc()
	p := &st.prefs[idx]
	p.target, p.triggered = target, triggered
	e.ScheduleEvent(st.lat.PCIeOneWay, st, hkArrive<<32|uint64(idx))
}

// HandleEvent dispatches the stage's typed events by kind tag.
func (st *HistoryReaderStage) HandleEvent(e *sim.Engine, now sim.Time, payload uint64) {
	idx := uint32(payload)
	switch payload >> 32 {
	case hkArrive:
		// The history reader claims one walker: it reads the per-DID
		// history from memory, then walks the fetched gIOVAs back to back.
		st.pool.Acquire(e, st, uint64(idx))
	case hkWalkEnd:
		st.pool.Release(e)
	case hkFill:
		p := &st.prefs[idx]
		if st.tracer != nil {
			st.tracer.Emit(obs.Event{T: int64(now), Ev: "prefetch_fill",
				SID: uint32(p.target), N: len(p.entries), DurPs: int64(now.Sub(p.triggered))})
		}
		// Report the observed trigger-to-fill latency in requests
		// so the host can retune the history-length register.
		latencyRequests := int(float64(now.Sub(p.triggered)) / float64(st.lat.Interarrival) * workload.RequestsPerPacket)
		st.pu.Complete(p.target, p.entries, latencyRequests)
		st.release(idx)
	}
}

// RunWalk reads the target's history and walks its pages once the pool
// grants a walker.
func (st *HistoryReaderStage) RunWalk(e *sim.Engine, payload uint64) {
	idx := uint32(payload)
	p := &st.prefs[idx]
	p.recent = st.mmu.History().AppendRecent(p.recent[:0], p.target, st.pu.Config().Degree)
	if len(p.recent) == 0 {
		if st.tracer != nil {
			st.tracer.Emit(obs.Event{T: int64(e.Now()), Ev: "prefetch_abort", SID: uint32(p.target)})
		}
		st.pu.Abort(p.target)
		st.pool.Release(e)
		st.release(idx)
		return
	}
	total := st.lat.DRAMLatency // history read
	p.entries = p.entries[:0]
	for _, h := range p.recent {
		res, err := st.mmu.Translate(p.target, h.IOVA, h.PageShift, false)
		if err != nil {
			continue // page was unmapped while the prefetch was in flight
		}
		total += sim.Duration(res.MemAccesses) * st.lat.DRAMLatency
		if res.IOTLBHit {
			total += st.lat.TLBHit
		}
		pageMask := uint64(1)<<h.PageShift - 1
		p.entries = append(p.entries, tlb.Entry{
			Key:       iommu.PageKey(p.target, h.IOVA, h.PageShift),
			Value:     res.HPA &^ pageMask,
			PageShift: h.PageShift,
		})
	}
	e.ScheduleEvent(total, st, hkWalkEnd<<32|uint64(idx))
	e.ScheduleEvent(total+st.lat.PCIeOneWay, st, hkFill<<32|uint64(idx))
}

func (st *HistoryReaderStage) Describe() string {
	return fmt.Sprintf("history reader: degree-%d prefetch of the predicted tenant's recent IOVAs",
		st.pu.Config().Degree)
}
