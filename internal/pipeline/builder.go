package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/tlb"
)

// StageSpec describes one stage of a datapath: a builder kind plus the
// parameters that kind consumes (the other fields are ignored). Specs
// are pure data — comparing, printing and persisting them never touches
// simulation state.
type StageSpec struct {
	// Kind names a registered stage builder ("ptb", "devtlb",
	// "prefetch-buffer", "chipset", "history-reader").
	Kind string
	// Entries sizes the admission stage ("ptb").
	Entries int
	// Cache is the geometry and policy of a cache stage ("devtlb").
	Cache tlb.Config
	// Prefetch parametrizes the prefetch-buffer stage.
	Prefetch device.PrefetchConfig
	// IOMMU parametrizes the chipset stage.
	IOMMU iommu.Config
	// Walkers bounds the chipset stage's walk concurrency (0 = unlimited).
	Walkers int
}

// Spec is a whole datapath: stages in probe/refill order, device side
// first. An empty spec builds the empty chain (the native path).
type Spec struct {
	Stages []StageSpec
}

// Env is the world a chain is built into: physical latencies, the
// observability tracer, and the memory system the chipset walks.
type Env struct {
	Lat    Latencies
	Tracer *obs.Tracer
	// Ctx and Tenants are the context table and per-tenant nested page
	// tables the chipset stage translates against.
	Ctx     *mem.ContextTable
	Tenants *mem.TenantTables
	// OracleKeys supplies the flattened future access sequence for
	// Belady-policy cache stages; consulted only when such a stage is in
	// the spec. Nil leaves the future unset (Describe-only builds).
	OracleKeys func() []tlb.Key
	// Faults is the fault injector's hook (nil in every fault-free run;
	// every consultation in the chain is nil-guarded).
	Faults FaultHook
}

// Builder constructs one stage from its spec. The Build carries what
// earlier stages established (walker pool, prefetch unit, chipset), so
// later stages can bind to them.
type Builder func(spec StageSpec, b *Build) (Stage, error)

// Build is the under-construction chain state passed through builders.
type Build struct {
	Env Env

	// Handles published by earlier stages for later ones.
	Pool         *WalkerPool
	PrefetchUnit *device.PrefetchUnit
	Chipset      *iommu.IOMMU
	// Admitter is the admission role as bound so far; a later stage (the
	// invariant checker) can decorate it and take over the role.
	Admitter Admitter
}

var builders = map[string]Builder{}

// RegisterBuilder adds a stage kind to the registry. Registering a
// duplicate kind panics: builders are wired at init time and a collision
// is a programming error.
func RegisterBuilder(kind string, fn Builder) {
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("pipeline: duplicate stage builder %q", kind))
	}
	builders[kind] = fn
}

// BuilderKinds lists the registered stage kinds, sorted.
func BuilderKinds() []string {
	kinds := make([]string, 0, len(builders))
	for k := range builders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func init() {
	RegisterBuilder("ptb", func(spec StageSpec, b *Build) (Stage, error) {
		if spec.Entries <= 0 {
			return nil, fmt.Errorf("ptb stage needs Entries > 0, got %d", spec.Entries)
		}
		return &AdmissionStage{ptb: device.NewPTB(spec.Entries)}, nil
	})
	RegisterBuilder("devtlb", func(spec StageSpec, b *Build) (Stage, error) {
		cfg := spec.Cache
		if cfg.Name == "" {
			cfg.Name = "devtlb"
		}
		cache := tlb.New(cfg)
		if cfg.Policy == tlb.Oracle && b.Env.OracleKeys != nil {
			cache.SetFuture(tlb.NewFuture(b.Env.OracleKeys()))
		}
		return &CacheStage{name: cfg.Name, cache: cache}, nil
	})
	RegisterBuilder("prefetch-buffer", func(spec StageSpec, b *Build) (Stage, error) {
		st := &PrefetchBufferStage{pu: device.NewPrefetchUnit(spec.Prefetch)}
		b.PrefetchUnit = st.pu
		return st, nil
	})
	RegisterBuilder("chipset", func(spec StageSpec, b *Build) (Stage, error) {
		b.Pool = NewWalkerPool(spec.Walkers)
		b.Chipset = iommu.New(spec.IOMMU, b.Env.Ctx, b.Env.Tenants)
		return &ChipsetStage{
			mmu: b.Chipset, pool: b.Pool, lat: b.Env.Lat,
			tracer: b.Env.Tracer, walkers: spec.Walkers,
			faults: b.Env.Faults,
		}, nil
	})
	RegisterBuilder("history-reader", func(spec StageSpec, b *Build) (Stage, error) {
		if b.PrefetchUnit == nil || b.Chipset == nil {
			return nil, fmt.Errorf("history-reader needs prefetch-buffer and chipset stages earlier in the spec")
		}
		return &HistoryReaderStage{
			pu: b.PrefetchUnit, mmu: b.Chipset, pool: b.Pool,
			lat: b.Env.Lat, tracer: b.Env.Tracer,
		}, nil
	})
}

// BuildChain composes a chain from a spec: each stage is built by its
// registered builder in spec order, then bound into its roles (probe,
// admitter, resolver, issuer). An empty spec yields the empty chain.
func BuildChain(spec Spec, env Env) (*Chain, error) {
	b := &Build{Env: env}
	c := &Chain{
		tracer: env.Tracer,
		faults: env.Faults,
		pool:   NewWalkerPool(0),
		admit:  noopAdmitter{},
		issuer: noopIssuer{},
		served: map[string]*obs.Counter{},
		caches: map[string]*CacheStage{},
	}
	c.resolver = panicResolver{}
	for _, ss := range spec.Stages {
		builder := builders[ss.Kind]
		if builder == nil {
			return nil, fmt.Errorf("pipeline: unknown stage kind %q (registered: %s)",
				ss.Kind, strings.Join(BuilderKinds(), ", "))
		}
		st, err := builder(ss, b)
		if err != nil {
			return nil, fmt.Errorf("pipeline: building %q stage: %w", ss.Kind, err)
		}
		c.stages = append(c.stages, st)
		if a, ok := st.(Admitter); ok {
			c.admit = a
			b.Admitter = a
		}
		if r, ok := st.(Resolver); ok {
			c.resolver = r
		}
		if i, ok := st.(Issuer); ok {
			c.issuer = i
		}
		switch v := st.(type) {
		case *AdmissionStage:
			c.admission = v
		case *CacheStage:
			c.caches[v.Name()] = v
		case *PrefetchBufferStage:
			c.pb = v
		case *ChipsetStage:
			c.chipset = v
		}
	}
	if b.Pool != nil {
		c.pool = b.Pool
	}
	for _, st := range c.stages {
		if p, ok := st.(Prober); ok {
			c.probes = append(c.probes, p)
			c.probeServed = append(c.probeServed, c.Served(p.Name()))
			c.probeHitEv = append(c.probeHitEv, p.HitEvent())
		}
		if iv, ok := st.(Invalidator); ok {
			c.invalidators = append(c.invalidators, iv)
		}
	}
	// Demand completions refill the device-side probe stages in order.
	if c.chipset != nil {
		for _, p := range c.probes {
			c.chipset.fills = append(c.chipset.fills, p)
		}
	}
	if len(c.stages) > 0 && c.chipset == nil {
		return nil, fmt.Errorf("pipeline: spec has stages but no resolver (chipset) stage")
	}
	return c, nil
}
