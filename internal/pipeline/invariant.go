package pipeline

import (
	"fmt"

	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
)

// InvariantStage is a verification decorator over the chain's admission
// role: it observes every admission attempt and every slot release and
// asserts the model's conservation properties as they happen —
//
//   - occupancy never exceeds the admitter's capacity,
//   - a slot is never released that was never admitted,
//   - attempts always split exactly into admissions plus rejections.
//
// It is composed like any other stage (spec kind "invariants", appended
// after the datapath), binds itself as the chain's admitter wrapping the
// real one, and changes nothing about the simulation: admit/reject
// decisions pass through untouched, so a run with the checker is
// byte-identical to one without. The first violation is sticky and
// reported by CheckFinal; internal/core cross-checks the counts against
// its packet accounting after the run drains.
type InvariantStage struct {
	inner    Admitter // the decorated admission role (never nil)
	capacity int      // inner capacity; 0 = unbounded (noop admitter)

	attempts    obs.Counter
	admitted    obs.Counter
	rejected    obs.Counter
	released    obs.Counter
	outstanding int
	peak        int

	err error // first violation, sticky
}

func (st *InvariantStage) violate(format string, args ...any) {
	if st.err == nil {
		st.err = fmt.Errorf("invariant violated: "+format, args...)
	}
}

func (st *InvariantStage) Name() string                      { return "invariants" }
func (st *InvariantStage) Lookup(Request) bool               { return false }
func (st *InvariantStage) Fill(Request, uint64)              {}
func (st *InvariantStage) Invalidate(mem.SID, uint64, uint8) {}

func (st *InvariantStage) Register(r *obs.Registry, p string) {
	r.Counter(p+".attempts", &st.attempts)
	r.Counter(p+".admitted", &st.admitted)
	r.Counter(p+".rejected", &st.rejected)
	r.Counter(p+".released", &st.released)
	r.Gauge(p+".outstanding", func() float64 { return float64(st.outstanding) })
}

func (st *InvariantStage) Describe() string {
	return "invariant checker: conservation of admissions, releases and occupancy"
}

// Admit decorates the real admitter's decision with occupancy accounting.
func (st *InvariantStage) Admit() bool {
	st.attempts.Inc()
	ok := st.inner.Admit()
	if ok {
		st.admitted.Inc()
		st.outstanding++
		if st.outstanding > st.peak {
			st.peak = st.outstanding
		}
		if st.capacity > 0 && st.outstanding > st.capacity {
			st.violate("occupancy %d exceeds admission capacity %d", st.outstanding, st.capacity)
		}
	} else {
		st.rejected.Inc()
		if st.capacity > 0 && st.outstanding < st.capacity {
			st.violate("admission rejected with %d of %d slots occupied", st.outstanding, st.capacity)
		}
	}
	return ok
}

// Release decorates slot release, catching completions without admission.
func (st *InvariantStage) Release() {
	st.released.Inc()
	if st.outstanding == 0 {
		st.violate("slot released with no packet admitted")
		return
	}
	st.outstanding--
	st.inner.Release()
}

// Report is the checker's accounting snapshot for external cross-checks.
type InvariantReport struct {
	Attempts, Admitted, Rejected, Released uint64
	Outstanding, Peak                      int
}

// Report returns the counts observed so far.
func (st *InvariantStage) Report() InvariantReport {
	return InvariantReport{
		Attempts: st.attempts.Value(), Admitted: st.admitted.Value(),
		Rejected: st.rejected.Value(), Released: st.released.Value(),
		Outstanding: st.outstanding, Peak: st.peak,
	}
}

// CheckFinal reports the first in-run violation, or end-state violations:
// a drained simulation must have released every admission and split every
// attempt into exactly one admit or reject.
func (st *InvariantStage) CheckFinal() error {
	if st.err != nil {
		return st.err
	}
	if st.outstanding != 0 {
		return fmt.Errorf("invariant violated: %d admissions never released", st.outstanding)
	}
	if a, ad, rj := st.attempts.Value(), st.admitted.Value(), st.rejected.Value(); a != ad+rj {
		return fmt.Errorf("invariant violated: %d attempts != %d admitted + %d rejected", a, ad, rj)
	}
	if ad, rl := st.admitted.Value(), st.released.Value(); ad != rl {
		return fmt.Errorf("invariant violated: %d admitted != %d released", ad, rl)
	}
	return nil
}

func init() {
	RegisterBuilder("invariants", func(spec StageSpec, b *Build) (Stage, error) {
		st := &InvariantStage{inner: b.Admitter}
		if st.inner == nil {
			st.inner = noopAdmitter{}
		}
		if a, ok := st.inner.(*AdmissionStage); ok {
			st.capacity = a.PTB().Capacity()
		}
		return st, nil
	})
}
