package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
	"hypertrio/internal/workload"
)

// fakeHook is a scripted FaultHook: it faults one walk attempt per queued
// backoff and records everything the chain reports.
type fakeHook struct {
	backoffs  []sim.Duration // consumed per faulted attempt
	attempts  []int
	walks     []tlb.Key
	probeHits []tlb.Key
}

func (h *fakeHook) WalkAttempt(_ sim.Time, _ mem.SID, attempt int) (sim.Duration, bool) {
	h.attempts = append(h.attempts, attempt)
	if len(h.backoffs) == 0 {
		return 0, false
	}
	d := h.backoffs[0]
	h.backoffs = h.backoffs[1:]
	return d, true
}

func (h *fakeHook) OnWalk(_ sim.Time, sid mem.SID, iova uint64, shift uint8) {
	h.walks = append(h.walks, iommu.PageKey(sid, iova, shift))
}

func (h *fakeHook) OnProbeHit(_ sim.Time, sid mem.SID, iova uint64, shift uint8) {
	h.probeHits = append(h.probeHits, iommu.PageKey(sid, iova, shift))
}

// doneRecorder is a Completer logging completion times and ctx words.
type doneRecorder struct {
	times []sim.Time
	ctxs  []uint64
}

func (d *doneRecorder) Complete(_ *sim.Engine, at sim.Time, ctx uint64) {
	d.times = append(d.times, at)
	d.ctxs = append(d.ctxs, ctx)
}

// tenantEnv is a testEnv with one real mapped tenant, so the chipset
// stage can actually translate.
func tenantEnv(t *testing.T) (Env, *workload.AddressSpace) {
	t.Helper()
	env := testEnv()
	host := mem.NewSpace("host", 0x1_0000_0000, 0)
	env.Tenants = mem.NewTenantTables(1)
	as, err := workload.BuildAddressSpace(workload.ProfileFor(workload.Iperf3), 1, host, env.Ctx)
	if err != nil {
		t.Fatal(err)
	}
	env.Tenants.Set(1, as.Nested)
	return env, as
}

// TestTenantInvalidationPropagation checks that tenant-scoped and
// broadcast invalidations reach every composed stage holding per-tenant
// state, across all enabled-stage combinations, and drop only what they
// should.
func TestTenantInvalidationPropagation(t *testing.T) {
	const (
		victim = mem.SID(3)
		other  = mem.SID(4)
		iova   = uint64(0x7000)
		shift  = uint8(12)
	)
	combos := []struct {
		name             string
		devtlb, prefetch bool
	}{
		{"chipset only", false, false},
		{"devtlb", true, false},
		{"prefetch", false, true},
		{"devtlb+prefetch", true, true},
	}
	for _, combo := range combos {
		t.Run(combo.name, func(t *testing.T) {
			spec := Spec{Stages: []StageSpec{{Kind: "ptb", Entries: 4}}}
			seeded := 0 // per-SID entries installed on the device side
			if combo.devtlb {
				spec.Stages = append(spec.Stages, devtlbSpec())
				seeded++
			}
			if combo.prefetch {
				spec.Stages = append(spec.Stages, prefetchSpec())
				seeded++
			}
			spec.Stages = append(spec.Stages, chipsetSpec())
			if combo.prefetch {
				spec.Stages = append(spec.Stages, StageSpec{Kind: "history-reader"})
			}
			c, err := BuildChain(spec, testEnv())
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range c.Stages() {
				switch v := st.(type) {
				case *CacheStage:
					for _, sid := range []mem.SID{victim, other} {
						v.Fill(Request{SID: sid, IOVA: iova, Shift: shift}, 0xBEEF000)
					}
				case *PrefetchBufferStage:
					for _, sid := range []mem.SID{victim, other} {
						key := iommu.PageKey(sid, iova, shift)
						v.Unit().Complete(sid, []tlb.Entry{{Key: key, Value: 0xBEEF000, PageShift: shift}}, 0)
					}
				}
			}
			e := sim.NewEngine()
			lookup := func(sid mem.SID) bool {
				return c.Lookup(e, Request{SID: sid, IOVA: iova, Shift: shift})
			}

			if got := c.InvalidateSID(victim); got != seeded {
				t.Fatalf("InvalidateSID dropped %d entries, want %d", got, seeded)
			}
			if lookup(victim) {
				t.Fatal("victim SID still served after tenant invalidation")
			}
			if seeded > 0 && !lookup(other) {
				t.Fatal("tenant invalidation dropped another SID's entries")
			}

			if got := c.FlushAll(); got != seeded {
				t.Fatalf("FlushAll dropped %d entries, want %d", got, seeded)
			}
			if lookup(other) {
				t.Fatal("page still served after broadcast flush")
			}
		})
	}
}

// TestProbeHitNotifiesFaultHook pins the hook's view of the device-side
// probe path: exactly the hits, never the misses.
func TestProbeHitNotifiesFaultHook(t *testing.T) {
	env := testEnv()
	hook := &fakeHook{}
	env.Faults = hook
	c, err := BuildChain(Spec{Stages: []StageSpec{
		{Kind: "ptb", Entries: 4}, devtlbSpec(), chipsetSpec(),
	}}, env)
	if err != nil {
		t.Fatal(err)
	}
	rq := Request{SID: 2, IOVA: 0x9000, Shift: 12}
	e := sim.NewEngine()
	if c.Lookup(e, rq) {
		t.Fatal("empty chain hit")
	}
	if len(hook.probeHits) != 0 {
		t.Fatal("hook notified on a miss")
	}
	for _, st := range c.Stages() {
		if v, ok := st.(*CacheStage); ok {
			v.Fill(rq, 0xF000)
		}
	}
	if !c.Lookup(e, rq) {
		t.Fatal("seeded page missed")
	}
	if len(hook.probeHits) != 1 || hook.probeHits[0] != rq.Key() {
		t.Fatalf("hook saw %v, want exactly [%v]", hook.probeHits, rq.Key())
	}
}

// resolveOnce drives one demand miss through a ptb+chipset chain with the
// given hook and returns the completion time and trace buffer.
func resolveOnce(t *testing.T, hook *fakeHook) (sim.Time, string) {
	t.Helper()
	env, as := tenantEnv(t)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	env.Tracer = tr
	env.Faults = hook
	c, err := BuildChain(Spec{Stages: []StageSpec{
		{Kind: "ptb", Entries: 4},
		{Kind: "chipset", IOMMU: iommu.Config{
			ContextCache: iommu.DefaultContextCache(),
			L2PWC:        tlb.Config{Name: "l2pwc", Sets: 4, Ways: 4, Policy: tlb.LRU},
			L3PWC:        tlb.Config{Name: "l3pwc", Sets: 4, Ways: 4, Policy: tlb.LRU},
		}, Walkers: 1},
	}}, env)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	done := &doneRecorder{}
	c.Resolve(e, Request{SID: as.SID, IOVA: as.Ring, Shift: 12}, done, 77)
	e.Run()
	if len(done.times) != 1 || done.ctxs[0] != 77 {
		t.Fatalf("completions: times=%v ctxs=%v, want one with ctx 77", done.times, done.ctxs)
	}
	if c.WalkersBusy() != 0 || c.WalkQueue() != 0 {
		t.Fatalf("walker leaked: busy=%d queued=%d", c.WalkersBusy(), c.WalkQueue())
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return done.times[0], buf.String()
}

// TestChipsetWalkerFaultRetry pins the retry path: a faulted walk holds
// its walker, backs off exactly as told, re-attempts with an incremented
// attempt number, and completes late by precisely the backoff sum.
func TestChipsetWalkerFaultRetry(t *testing.T) {
	clean := &fakeHook{}
	t0, _ := resolveOnce(t, clean)
	if got := clean.attempts; len(got) != 1 || got[0] != 0 {
		t.Fatalf("clean run attempts = %v, want [0]", got)
	}
	if len(clean.walks) != 1 {
		t.Fatalf("clean run walks = %v, want one", clean.walks)
	}

	faulty := &fakeHook{backoffs: []sim.Duration{100 * sim.Nanosecond, 250 * sim.Nanosecond}}
	t1, trace := resolveOnce(t, faulty)
	if want := []int{0, 1, 2}; len(faulty.attempts) != 3 ||
		faulty.attempts[0] != 0 || faulty.attempts[1] != 1 || faulty.attempts[2] != 2 {
		t.Fatalf("faulted run attempts = %v, want %v", faulty.attempts, want)
	}
	if len(faulty.walks) != 1 {
		t.Fatalf("faulted run executed %d walks, want 1", len(faulty.walks))
	}
	if want := t0.Add(350 * sim.Nanosecond); t1 != want {
		t.Fatalf("faulted completion at %d, want %d (clean %d + 350ns backoff)", t1, want, t0)
	}
	if n := strings.Count(trace, `"ev":"fault_retry"`); n != 2 {
		t.Fatalf("trace has %d fault_retry events, want 2:\n%s", n, trace)
	}
}

// TestInvariantStageDecoratesAdmission checks the conservation checker
// wraps the real admitter: decisions pass through, counts add up.
func TestInvariantStageDecoratesAdmission(t *testing.T) {
	c, err := BuildChain(Spec{Stages: []StageSpec{
		{Kind: "ptb", Entries: 2}, chipsetSpec(), {Kind: "invariants"},
	}}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	var iv *InvariantStage
	for _, st := range c.Stages() {
		if v, ok := st.(*InvariantStage); ok {
			iv = v
		}
	}
	if iv == nil {
		t.Fatal("invariants stage not composed")
	}
	if !c.Admit() || !c.Admit() {
		t.Fatal("admission refused with free slots")
	}
	if c.Admit() {
		t.Fatal("admission granted past capacity")
	}
	if c.PTBInUse() != 2 {
		t.Fatalf("PTB in use = %d, want 2 (decisions must pass through)", c.PTBInUse())
	}
	c.ReleaseSlot()
	c.ReleaseSlot()
	rep := iv.Report()
	want := InvariantReport{Attempts: 3, Admitted: 2, Rejected: 1, Released: 2, Peak: 2}
	if rep != want {
		t.Fatalf("report %+v, want %+v", rep, want)
	}
	if err := iv.CheckFinal(); err != nil {
		t.Fatalf("clean run reported a violation: %v", err)
	}
}

func TestInvariantStageCatchesViolations(t *testing.T) {
	build := func(t *testing.T) (*Chain, *InvariantStage) {
		c, err := BuildChain(Spec{Stages: []StageSpec{
			{Kind: "ptb", Entries: 2}, chipsetSpec(), {Kind: "invariants"},
		}}, testEnv())
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range c.Stages() {
			if v, ok := st.(*InvariantStage); ok {
				return c, v
			}
		}
		t.Fatal("invariants stage not composed")
		return nil, nil
	}

	t.Run("release without admission", func(t *testing.T) {
		c, iv := build(t)
		c.ReleaseSlot()
		if err := iv.CheckFinal(); err == nil || !strings.Contains(err.Error(), "released") {
			t.Fatalf("CheckFinal = %v, want a release violation", err)
		}
	})
	t.Run("admission never released", func(t *testing.T) {
		c, iv := build(t)
		c.Admit()
		if err := iv.CheckFinal(); err == nil || !strings.Contains(err.Error(), "never released") {
			t.Fatalf("CheckFinal = %v, want an outstanding-admission violation", err)
		}
	})
}

// TestInvariantStageWithoutAdmitter pins the unbounded fallback: composed
// into a chain with no PTB it admits everything and still balances.
func TestInvariantStageWithoutAdmitter(t *testing.T) {
	c, err := BuildChain(Spec{Stages: []StageSpec{
		chipsetSpec(), {Kind: "invariants"},
	}}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !c.Admit() {
			t.Fatal("unbounded invariant admitter refused admission")
		}
	}
	for i := 0; i < 5; i++ {
		c.ReleaseSlot()
	}
	for _, st := range c.Stages() {
		if iv, ok := st.(*InvariantStage); ok {
			if err := iv.CheckFinal(); err != nil {
				t.Fatalf("unbounded checker violation: %v", err)
			}
		}
	}
}
