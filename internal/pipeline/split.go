package pipeline

import (
	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
)

// This file splits a chain at the device ↔ IOMMU boundary for sharded
// runs: the chipset stage moves to its own event domain, demand misses
// travel to it as cross-domain messages, and resolved translations
// return the same way. The split covers exactly the paths that can run
// in parallel mode — the demand resolve round trip. Everything else
// (prefetch, fault retries, driver unmaps, sampling) forces the sharded
// coordinator into lockstep, where all engines share one thread and one
// sequence counter, so those paths keep their direct synchronous calls
// and remain byte-identical to serial by construction.

// Cross-domain message kinds for a split chain.
const (
	xResolve  uint8 = iota // device → chipset: demand miss crossing PCIe
	xComplete              // chipset → device: resolved translation returning
)

// packRq packs a request's (SID, shift) into one message word; the IOVA
// travels in its own word.
func packRq(rq Request) uint64 { return uint64(rq.SID)<<8 | uint64(rq.Shift) }

func unpackRq(iova, ss uint64) Request {
	return Request{SID: mem.SID(ss >> 8), IOVA: iova, Shift: uint8(ss)}
}

// chainSplit is the wiring of a split chain: the two directed ports and
// the inbox sinks at each end.
type chainSplit struct {
	toIO  *sim.Port // device domain → IOMMU domain
	toDev *sim.Port // IOMMU domain → device domain
	io    *ioInbox
	dev   *devInbox
}

// ioInbox receives device→IOMMU messages in the chipset's domain.
type ioInbox struct {
	cs *ChipsetStage
}

func (in *ioInbox) HandleEvent(e *sim.Engine, now sim.Time, payload uint64) {
	m := e.ClaimMsg(payload)
	switch m.Kind {
	case xResolve:
		// The PCIe trip is done: materialize the in-flight walk record
		// on this side of the boundary and claim a walker — the same
		// point serial execution reaches via ckArrive.
		idx := in.cs.alloc()
		w := &in.cs.walks[idx]
		w.rq, w.ctx = unpackRq(m.P0, m.P1), m.P2
		in.cs.pool.Acquire(e, in.cs, uint64(idx))
	}
}

// devInbox receives IOMMU→device messages in the device's domain.
type devInbox struct {
	fills []Stage
	done  Completer
}

func (in *devInbox) HandleEvent(e *sim.Engine, now sim.Time, payload uint64) {
	m := e.ClaimMsg(payload)
	switch m.Kind {
	case xComplete:
		// The return PCIe trip is done: refill the device-side stages
		// and complete the packet, exactly as serial ckComplete does.
		// The message carries the whole result by value — the chipset's
		// walk record was already recycled in its own domain.
		rq := unpackRq(m.P0, m.P1)
		for _, f := range in.fills {
			f.Fill(rq, m.P2)
		}
		in.done.Complete(e, now, m.P3)
	}
}

// EnableSplit moves the chain's resolve path across a domain boundary:
// demand misses travel to the chipset over toIOMMU (lookahead = TLB hit
// + PCIe one-way, the delay Resolve always charges) and resolved
// translations return over toDevice (lookahead = PCIe one-way). done
// must be the completer every Resolve call passes — with the resolver in
// another domain the completion callback crosses as a message, so it is
// bound once here instead of traveling with each request.
//
// A chain without a chipset stage (the native path) has no resolver to
// move and ignores the call.
func (c *Chain) EnableSplit(toIOMMU, toDevice *sim.Port, done Completer) {
	if c.chipset == nil {
		return
	}
	sp := &chainSplit{toIO: toIOMMU, toDev: toDevice}
	sp.io = &ioInbox{cs: c.chipset}
	sp.dev = &devInbox{fills: c.chipset.fills, done: done}
	c.chipset.split = sp
}
