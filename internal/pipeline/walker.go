package pipeline

import "hypertrio/internal/sim"

// WalkerPool models the chipset's bounded page-table-walker concurrency:
// a translation that reaches the chipset must hold a walker for the
// duration of its memory accesses; excess work queues FIFO. A capacity
// of zero means unlimited (the paper's latency-only model).
type WalkerPool struct {
	capacity int
	busy     int
	queue    []func(*sim.Engine)
}

// NewWalkerPool builds a pool with the given capacity (0 = unlimited).
func NewWalkerPool(capacity int) *WalkerPool {
	return &WalkerPool{capacity: capacity}
}

// Acquire runs task now if a walker is free (or the pool is unlimited),
// otherwise queues it. The task must call Release when its memory
// accesses finish.
func (p *WalkerPool) Acquire(e *sim.Engine, task func(*sim.Engine)) {
	if p.capacity > 0 && p.busy >= p.capacity {
		p.queue = append(p.queue, task)
		return
	}
	p.busy++
	task(e)
}

// Release frees a walker, immediately handing it to the next queued
// translation if any.
func (p *WalkerPool) Release(e *sim.Engine) {
	if len(p.queue) > 0 {
		next := p.queue[0]
		p.queue = p.queue[1:]
		next(e)
		return
	}
	p.busy--
}

// Busy returns the number of walkers currently held.
func (p *WalkerPool) Busy() int { return p.busy }

// Queued returns the number of translations waiting for a walker.
func (p *WalkerPool) Queued() int { return len(p.queue) }

// Capacity returns the pool size (0 = unlimited).
func (p *WalkerPool) Capacity() int { return p.capacity }
