package pipeline

import "hypertrio/internal/sim"

// WalkerTask is work that runs when the pool grants a walker. Like the
// engine's EventSink, it is the closure-free shape of a callback: the
// requesting stage implements RunWalk once and threads per-request
// state through the payload word (typically an index into its own
// pooled context records), so queueing for a walker allocates nothing.
type WalkerTask interface {
	RunWalk(e *sim.Engine, payload uint64)
}

// walkerReq is one queued acquisition.
type walkerReq struct {
	task    WalkerTask
	payload uint64
}

// WalkerPool models the chipset's bounded page-table-walker concurrency:
// a translation that reaches the chipset must hold a walker for the
// duration of its memory accesses; excess work queues FIFO. A capacity
// of zero means unlimited (the paper's latency-only model).
type WalkerPool struct {
	capacity int
	busy     int
	// FIFO queue as a head-indexed slice: Release pops from head, the
	// backing array is reset (not reallocated) when the queue drains, so
	// steady-state queueing is allocation-free.
	queue []walkerReq
	head  int
}

// NewWalkerPool builds a pool with the given capacity (0 = unlimited).
func NewWalkerPool(capacity int) *WalkerPool {
	return &WalkerPool{capacity: capacity}
}

// Acquire runs task.RunWalk(e, payload) now if a walker is free (or the
// pool is unlimited), otherwise queues it. The task must call Release
// when its memory accesses finish.
func (p *WalkerPool) Acquire(e *sim.Engine, task WalkerTask, payload uint64) {
	if p.capacity > 0 && p.busy >= p.capacity {
		p.queue = append(p.queue, walkerReq{task: task, payload: payload})
		return
	}
	p.busy++
	task.RunWalk(e, payload)
}

// Release frees a walker, immediately handing it to the next queued
// translation if any.
func (p *WalkerPool) Release(e *sim.Engine) {
	if p.head < len(p.queue) {
		req := p.queue[p.head]
		p.queue[p.head] = walkerReq{} // release the task reference
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		req.task.RunWalk(e, req.payload)
		return
	}
	p.busy--
}

// Busy returns the number of walkers currently held.
func (p *WalkerPool) Busy() int { return p.busy }

// Queued returns the number of translations waiting for a walker.
func (p *WalkerPool) Queued() int { return len(p.queue) - p.head }

// Capacity returns the pool size (0 = unlimited).
func (p *WalkerPool) Capacity() int { return p.capacity }
