package pipeline

import (
	"strings"
	"testing"

	"hypertrio/internal/device"
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
)

func testEnv() Env {
	return Env{
		Lat: Latencies{
			PCIeOneWay:   450 * sim.Nanosecond,
			DRAMLatency:  50 * sim.Nanosecond,
			TLBHit:       2 * sim.Nanosecond,
			Interarrival: 60 * sim.Nanosecond,
		},
		Ctx: mem.NewContextTable(),
	}
}

func devtlbSpec() StageSpec {
	return StageSpec{Kind: "devtlb", Cache: tlb.Config{
		Name: "devtlb", Sets: 4, Ways: 4, Policy: tlb.LRU, Index: tlb.ByAddress,
	}}
}

func chipsetSpec() StageSpec {
	return StageSpec{Kind: "chipset", IOMMU: iommu.Config{
		ContextCache: iommu.DefaultContextCache(),
		L2PWC:        tlb.Config{Name: "l2pwc", Sets: 4, Ways: 4, Policy: tlb.LRU, Index: tlb.ByAddress},
		L3PWC:        tlb.Config{Name: "l3pwc", Sets: 4, Ways: 4, Policy: tlb.LRU, Index: tlb.ByAddress},
	}}
}

func prefetchSpec() StageSpec {
	return StageSpec{Kind: "prefetch-buffer", Prefetch: device.DefaultPrefetchConfig()}
}

// countingTask records every RunWalk payload, standing in for a stage.
type countingTask struct{ payloads []uint64 }

func (c *countingTask) RunWalk(_ *sim.Engine, payload uint64) {
	c.payloads = append(c.payloads, payload)
}

func TestWalkerPoolBoundsConcurrency(t *testing.T) {
	e := sim.NewEngine()
	p := NewWalkerPool(2)
	task := &countingTask{}
	p.Acquire(e, task, 0)
	p.Acquire(e, task, 1)
	p.Acquire(e, task, 2) // queues: both walkers busy
	if len(task.payloads) != 2 || p.Busy() != 2 || p.Queued() != 1 {
		t.Fatalf("ran=%d busy=%d queued=%d, want 2/2/1", len(task.payloads), p.Busy(), p.Queued())
	}
	p.Release(e) // hands the walker straight to the queued task
	if len(task.payloads) != 3 || p.Busy() != 2 || p.Queued() != 0 {
		t.Fatalf("after release: ran=%d busy=%d queued=%d, want 3/2/0", len(task.payloads), p.Busy(), p.Queued())
	}
	want := []uint64{0, 1, 2}
	for i, got := range task.payloads {
		if got != want[i] {
			t.Fatalf("payloads ran out of order: got %v, want %v", task.payloads, want)
		}
	}
	p.Release(e)
	p.Release(e)
	if p.Busy() != 0 {
		t.Fatalf("busy=%d after all releases", p.Busy())
	}
}

func TestWalkerPoolUnlimited(t *testing.T) {
	e := sim.NewEngine()
	p := NewWalkerPool(0)
	task := &countingTask{}
	for i := 0; i < 10; i++ {
		p.Acquire(e, task, uint64(i))
	}
	if len(task.payloads) != 10 || p.Queued() != 0 {
		t.Fatalf("unlimited pool queued work: ran=%d queued=%d", len(task.payloads), p.Queued())
	}
}

func TestWalkerPoolQueueReusesBacking(t *testing.T) {
	e := sim.NewEngine()
	p := NewWalkerPool(1)
	task := &countingTask{}
	p.Acquire(e, task, 0)
	// Warm the queue's backing array, then drain it.
	for i := 1; i <= 4; i++ {
		p.Acquire(e, task, uint64(i))
	}
	for i := 0; i < 4; i++ {
		p.Release(e)
	}
	p.Release(e)
	if p.Busy() != 0 || p.Queued() != 0 {
		t.Fatalf("pool not drained: busy=%d queued=%d", p.Busy(), p.Queued())
	}
	// Steady-state queue churn within the warmed capacity must not
	// allocate.
	allocs := testing.AllocsPerRun(100, func() {
		p.Acquire(e, task, 1)
		p.Acquire(e, task, 2)
		p.Acquire(e, task, 3)
		p.Release(e)
		p.Release(e)
		p.Release(e)
	})
	if allocs != 0 {
		t.Fatalf("walker queue churn allocated %v per run, want 0", allocs)
	}
}

func TestBuildChainErrors(t *testing.T) {
	env := testEnv()
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown kind", Spec{Stages: []StageSpec{{Kind: "quantum-tlb"}}}, "unknown stage kind"},
		{"ptb without entries", Spec{Stages: []StageSpec{{Kind: "ptb"}, chipsetSpec()}}, "Entries > 0"},
		{"history reader without prereqs", Spec{Stages: []StageSpec{chipsetSpec(), {Kind: "history-reader"}}}, "prefetch-buffer"},
		{"stages but no resolver", Spec{Stages: []StageSpec{{Kind: "ptb", Entries: 4}}}, "no resolver"},
	}
	for _, tc := range cases {
		if _, err := BuildChain(tc.spec, env); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestEmptyChainIsTotal pins the native-path contract: every chain method
// works on the empty chain, so core never branches on stage presence.
func TestEmptyChainIsTotal(t *testing.T) {
	c, err := BuildChain(Spec{}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	if !c.Admit() {
		t.Fatal("empty chain refused admission")
	}
	c.ReleaseSlot()
	c.Observe(1)
	c.MaybePrefetch(e, 1)
	c.Invalidate(1, 0x1000, 12)
	if c.Lookup(e, Request{SID: 1, IOVA: 0x1000, Shift: 12}) {
		t.Fatal("empty chain claimed a hit")
	}
	if c.WalkersBusy() != 0 || c.WalkQueue() != 0 || c.PTBInUse() != 0 {
		t.Fatal("empty chain reports occupancy")
	}
	if s := c.CacheStats("devtlb"); s != (tlb.Stats{}) {
		t.Fatalf("empty chain cache stats: %+v", s)
	}
	if got := c.Describe(); !strings.Contains(got, "translation off") {
		t.Fatalf("empty chain describe: %q", got)
	}
	if c.Served("devtlb").Value() != 0 {
		t.Fatal("served counter non-zero")
	}
}

// recorderStage is a registered test stage that records invalidate
// broadcasts — it doubles as the proof that new stage kinds compose via
// the builder registry without touching the chain.
type recorderStage struct {
	calls []tlb.Key
}

func (st *recorderStage) Name() string         { return "recorder" }
func (st *recorderStage) Lookup(Request) bool  { return false }
func (st *recorderStage) Fill(Request, uint64) {}
func (st *recorderStage) Invalidate(sid mem.SID, iova uint64, shift uint8) {
	st.calls = append(st.calls, iommu.PageKey(sid, iova, shift))
}
func (st *recorderStage) Register(*obs.Registry, string) {}
func (st *recorderStage) Describe() string               { return "records invalidations" }

func init() {
	RegisterBuilder("recorder", func(StageSpec, *Build) (Stage, error) {
		return &recorderStage{}, nil
	})
}

// TestInvalidatePropagation checks that a chain-level invalidate reaches
// every composed stage, across all enabled-stage combinations.
func TestInvalidatePropagation(t *testing.T) {
	const (
		sid   = mem.SID(3)
		iova  = uint64(0x7000)
		shift = uint8(12)
	)
	key := iommu.PageKey(sid, iova, shift)
	combos := []struct {
		name             string
		devtlb, prefetch bool
	}{
		{"chipset only", false, false},
		{"devtlb", true, false},
		{"prefetch", false, true},
		{"devtlb+prefetch", true, true},
	}
	for _, combo := range combos {
		t.Run(combo.name, func(t *testing.T) {
			spec := Spec{Stages: []StageSpec{{Kind: "ptb", Entries: 4}}}
			if combo.devtlb {
				spec.Stages = append(spec.Stages, devtlbSpec())
			}
			if combo.prefetch {
				spec.Stages = append(spec.Stages, prefetchSpec())
			}
			spec.Stages = append(spec.Stages, chipsetSpec(), StageSpec{Kind: "recorder"})
			if combo.prefetch {
				spec.Stages = append(spec.Stages, StageSpec{Kind: "history-reader"})
			}
			c, err := BuildChain(spec, testEnv())
			if err != nil {
				t.Fatal(err)
			}

			// Seed every translation-holding stage with the page.
			var rec *recorderStage
			for _, st := range c.Stages() {
				switch v := st.(type) {
				case *CacheStage:
					v.Fill(Request{SID: sid, IOVA: iova, Shift: shift}, 0xBEEF000)
				case *PrefetchBufferStage:
					v.Unit().Complete(sid, []tlb.Entry{{Key: key, Value: 0xBEEF000, PageShift: shift}}, 0)
				case *recorderStage:
					rec = v
				}
			}
			e := sim.NewEngine()
			if combo.devtlb || combo.prefetch {
				if !c.Lookup(e, Request{SID: sid, IOVA: iova, Shift: shift}) {
					t.Fatal("seeded page not found before invalidate")
				}
			}

			c.Invalidate(sid, iova, shift)

			if c.Lookup(e, Request{SID: sid, IOVA: iova, Shift: shift}) {
				t.Fatal("page still served after invalidate")
			}
			if len(rec.calls) != 1 || rec.calls[0] != key {
				t.Fatalf("recorder stage saw %v, want exactly [%v]", rec.calls, key)
			}
			// The broadcast must also reach stages individually, not just
			// miss at the chain level.
			for _, st := range c.Stages() {
				switch v := st.(type) {
				case *CacheStage:
					if _, ok := v.Cache().Lookup(key); ok {
						t.Fatalf("stage %s still holds the page", v.Name())
					}
				case *PrefetchBufferStage:
					if _, ok := v.Unit().Lookup(key); ok {
						t.Fatal("prefetch buffer still holds the page")
					}
				}
			}
		})
	}
}

// TestServedCountsPerStage checks the chain's hit attribution: a request
// present only in the prefetch buffer is credited to it, not the DevTLB.
func TestServedCountsPerStage(t *testing.T) {
	spec := Spec{Stages: []StageSpec{
		{Kind: "ptb", Entries: 4}, devtlbSpec(), prefetchSpec(),
		chipsetSpec(), {Kind: "history-reader"},
	}}
	c, err := BuildChain(spec, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	key := iommu.PageKey(1, 0x3000, 12)
	for _, st := range c.Stages() {
		if v, ok := st.(*PrefetchBufferStage); ok {
			v.Unit().Complete(1, []tlb.Entry{{Key: key, Value: 0xF000, PageShift: 12}}, 0)
		}
	}
	e := sim.NewEngine()
	if !c.Lookup(e, Request{SID: 1, IOVA: 0x3000, Shift: 12}) {
		t.Fatal("prefetched page not served")
	}
	if got := c.Served("prefetch").Value(); got != 1 {
		t.Fatalf("prefetch served = %d, want 1", got)
	}
	if got := c.Served("devtlb").Value(); got != 0 {
		t.Fatalf("devtlb served = %d, want 0", got)
	}
}

// TestDescribeListsStages pins the -describe rendering to the composed
// stage names in order.
func TestDescribeListsStages(t *testing.T) {
	spec := Spec{Stages: []StageSpec{
		{Kind: "ptb", Entries: 32}, devtlbSpec(), prefetchSpec(),
		chipsetSpec(), {Kind: "history-reader"},
	}}
	c, err := BuildChain(spec, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := c.Describe()
	last := -1
	for _, name := range []string{"ptb", "devtlb", "prefetch", "iommu", "history-reader"} {
		i := strings.Index(got, name)
		if i < 0 {
			t.Fatalf("describe output missing %q:\n%s", name, got)
		}
		if i < last {
			t.Fatalf("describe lists %q out of order:\n%s", name, got)
		}
		last = i
	}
}

func TestBuilderKindsSorted(t *testing.T) {
	kinds := BuilderKinds()
	for _, want := range []string{"chipset", "devtlb", "history-reader", "prefetch-buffer", "ptb"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("builder registry missing %q: %v", want, kinds)
		}
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("kinds not sorted: %v", kinds)
		}
	}
}
