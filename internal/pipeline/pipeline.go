// Package pipeline decomposes the translation datapath into composable
// stages. The paper's architecture is explicitly staged — PTB admission,
// the on-device DevTLB and Prefetch Buffer, then the chipset's context
// cache, optional IOTLB, partitioned L2/L3 page-walk caches and bounded
// walker pool, with the IOVA history reader issuing prefetches — and
// this package makes each of those a Stage value behind one interface,
// composed into a Chain by a stage-builder registry.
//
// Which stages exist, in what order, with what geometry and policies is
// a Spec — data, not code — so the Base design, the full HyperTRIO
// design, and future variants (shared chipset IOTLB, pseudo-LRU DevTLB,
// new levels entirely) are configurations rather than branches inside
// the performance model. internal/core drives the Chain from the event
// kernel; stages charge latency by scheduling against the sim.Engine.
package pipeline

import (
	"hypertrio/internal/iommu"
	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
	"hypertrio/internal/tlb"
)

// Request is one translation demand flowing down the datapath.
type Request struct {
	SID   mem.SID
	IOVA  uint64
	Shift uint8 // native page-size class of the mapping
}

// Key returns the request's cache key at its native granule.
func (r Request) Key() tlb.Key { return iommu.PageKey(r.SID, r.IOVA, r.Shift) }

// Stage is one level of the translation datapath. Lookup and Fill are
// the synchronous cache-like face (a stage that is not a lookup
// structure answers false / ignores fills); Invalidate propagates a
// driver unmap; Register publishes the stage's observability cells under
// its name. Asynchronous work — walks, prefetches — is expressed by the
// capability interfaces below, which schedule completions against the
// sim.Engine rather than blocking.
type Stage interface {
	// Name identifies the stage: its metrics prefix in the registry and
	// its label in Describe output.
	Name() string
	// Lookup consults the stage for a demand request, updating
	// replacement state on a hit.
	Lookup(rq Request) bool
	// Fill installs a completed translation (hpaBase is the host
	// physical base of the mapped page). Stages that are not demand-fill
	// targets ignore it.
	Fill(rq Request, hpaBase uint64)
	// Invalidate drops cached state for one unmapped page.
	Invalidate(sid mem.SID, iova uint64, shift uint8)
	// Register publishes the stage's metric cells under prefix.
	Register(r *obs.Registry, prefix string)
	// Describe returns a one-line human summary of the stage's
	// configuration (geometry, policies).
	Describe() string
}

// Prober marks device-side stages consulted synchronously at packet
// arrival, in chain order, before a miss travels to the resolver.
// HitEvent names the trace event emitted when the stage serves a
// request ("devtlb_hit", "prefetch_hit").
type Prober interface {
	Stage
	HitEvent() string
}

// Admitter is the admission stage: a packet must take a slot before its
// translations issue, and frees it at completion. A chain without an
// admitter admits everything.
type Admitter interface {
	Stage
	// Admit takes one slot, reporting whether one was available.
	Admit() bool
	// Release frees the slot taken by Admit.
	Release()
}

// Completer receives resolved demand misses. It is the closure-free
// completion callback: the caller implements Complete once, passes
// itself to Resolve with an opaque context word (typically an index
// into its own pooled per-packet records), and gets both back at the
// completion time. Resolvers thread ctx through untouched.
type Completer interface {
	Complete(e *sim.Engine, at sim.Time, ctx uint64)
}

// Resolver is the terminal stage: it resolves a demand miss
// asynchronously (PCIe to the chipset, the nested walk, PCIe back),
// refills the device-side probe stages, and calls done.Complete at the
// completion time with the caller's ctx word.
type Resolver interface {
	Stage
	Resolve(e *sim.Engine, rq Request, done Completer, ctx uint64)
}

// Issuer is the prefetch-issuing stage: Observe feeds it the accepted
// packet stream; Issue gives it the chance to start an asynchronous
// prefetch after a demand miss.
type Issuer interface {
	Stage
	Observe(sid mem.SID)
	Issue(e *sim.Engine, current mem.SID)
}

// Invalidator marks stages holding per-tenant cached state that a
// tenant-scoped or broadcast invalidation must reach. Stages without such
// state (admission, history reader) simply do not implement it.
type Invalidator interface {
	Stage
	// InvalidateSID drops every cached object belonging to one tenant
	// (SID teardown / domain flush), returning how many were dropped.
	InvalidateSID(sid mem.SID) int
	// FlushAll drops every cached translation the stage holds (broadcast
	// invalidation), returning how many were dropped.
	FlushAll() int
}

// FaultHook is the chain's view of a fault injector (internal/fault).
// Every call site is nil-guarded, so a chain built without a hook pays
// nothing — the zero-cost-off guarantee the golden suite pins.
type FaultHook interface {
	// WalkAttempt is consulted before each page-table walk attempt
	// (attempt 0 is the first). When faulted is true the walker must back
	// off retryIn and re-attempt; the stage counts and traces the retry.
	WalkAttempt(now sim.Time, sid mem.SID, attempt int) (retryIn sim.Duration, faulted bool)
	// OnWalk observes a walk that is actually executing (after any
	// retries), letting the injector detect forced re-walks of pages it
	// remapped.
	OnWalk(now sim.Time, sid mem.SID, iova uint64, shift uint8)
	// OnProbeHit observes a device-side probe hit, letting the injector
	// detect hits inside a stale-translation window (a remap whose
	// invalidation has not been issued yet).
	OnProbeHit(now sim.Time, sid mem.SID, iova uint64, shift uint8)
}

// Latencies are the physical model parameters the datapath charges
// (paper Table II), plus the link slot gap the history reader uses to
// express observed prefetch latency in requests.
type Latencies struct {
	PCIeOneWay   sim.Duration
	DRAMLatency  sim.Duration
	TLBHit       sim.Duration
	Interarrival sim.Duration
}
