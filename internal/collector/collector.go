// Package collector emulates HyperSIO's Log Collector stage (§IV-A).
//
// The paper records per-tenant IOMMU translation logs by running real
// workloads in nested VMs under QEMU, whose Q35 root complex offers only
// 24 PCIe slots: a single emulation run can host at most 24 tenants with
// directly assigned NICs. Hyper-tenant traces are therefore assembled
// from *multiple* runs, remapping each run's slot-local tenants to global
// Source IDs before the Trace Constructor interleaves them.
//
// This package reproduces that pipeline over the synthetic workload
// generators: Collect performs ceil(n/24) emulated runs, each producing
// up to 24 slot-local tenant logs; Merge interleaves the logs into one
// hyper-tenant trace exactly as trace.Construct would. Because 24 is a
// multiple of the guest drivers' ring-page window (workload.RingSlots),
// slot-local gIOVAs remain valid under the global SID assignment — the
// same address reuse across runs that the paper observes in its logs.
package collector

import (
	"fmt"
	"math/rand"

	"hypertrio/internal/mem"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// MaxSlotsPerRun is the Q35 root-complex limit on directly assigned
// devices per emulated server (§IV-A).
const MaxSlotsPerRun = 24

// TenantLog is one tenant's recorded packet stream from one emulated run.
type TenantLog struct {
	Run  int     // which emulated L1VM run produced the log (0-based)
	Slot int     // PCIe slot within the run (1..MaxSlotsPerRun)
	SID  mem.SID // global Source ID after remapping (run*24 + slot)

	Packets []workload.Packet
	Budget  int // translation requests available in the log
}

// Collector drives emulated log-collection runs for one benchmark.
type Collector struct {
	profile workload.Profile
	seed    int64
	scale   float64
}

// New builds a collector. scale shrinks per-tenant logs as in
// trace.Config.
func New(p workload.Profile, seed int64, scale float64) (*Collector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("collector: scale must be in (0,1], got %v", scale)
	}
	return &Collector{profile: p, seed: seed, scale: scale}, nil
}

// Runs reports how many emulation runs collecting n tenants requires.
func Runs(n int) int { return (n + MaxSlotsPerRun - 1) / MaxSlotsPerRun }

// CollectRun records the logs of a single emulated run hosting `slots`
// tenants (1..MaxSlotsPerRun).
func (c *Collector) CollectRun(run, slots int) ([]TenantLog, error) {
	if slots <= 0 || slots > MaxSlotsPerRun {
		return nil, fmt.Errorf("collector: a run hosts 1..%d tenants, got %d", MaxSlotsPerRun, slots)
	}
	logs := make([]TenantLog, 0, slots)
	for slot := 1; slot <= slots; slot++ {
		sid := mem.SID(run*MaxSlotsPerRun + slot)
		g := workload.NewGenerator(c.profile, sid, c.seed, c.scale)
		log := TenantLog{Run: run, Slot: slot, SID: sid, Budget: g.Total()}
		for {
			pkt, ok := g.Next()
			if !ok {
				break
			}
			log.Packets = append(log.Packets, pkt)
		}
		logs = append(logs, log)
	}
	return logs, nil
}

// Collect performs as many runs as needed for n tenants and returns the
// remapped logs in global SID order.
func (c *Collector) Collect(n int) ([]TenantLog, error) {
	if n <= 0 {
		return nil, fmt.Errorf("collector: tenant count must be positive, got %d", n)
	}
	var all []TenantLog
	for run := 0; run < Runs(n); run++ {
		slots := MaxSlotsPerRun
		if remaining := n - run*MaxSlotsPerRun; remaining < slots {
			slots = remaining
		}
		logs, err := c.CollectRun(run, slots)
		if err != nil {
			return nil, err
		}
		all = append(all, logs...)
	}
	return all, nil
}

// Merge is the Trace Constructor applied to recorded logs: it interleaves
// the tenants' packet streams (round-robin or random with the configured
// burst) and stops at the edge effect — the first exhausted log ends the
// trace so every modeled tenant stays active throughout.
func Merge(logs []TenantLog, benchmark workload.Kind, profile workload.Profile,
	iv trace.Interleave, seed int64, scale float64) (*trace.Trace, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("collector: no logs to merge")
	}
	if iv.Burst <= 0 {
		return nil, fmt.Errorf("collector: interleave burst must be positive")
	}
	for i, l := range logs {
		if int(l.SID) != i+1 {
			return nil, fmt.Errorf("collector: log %d has SID %d, want contiguous global SIDs", i, l.SID)
		}
		if len(l.Packets) == 0 {
			return nil, fmt.Errorf("collector: log for SID %d is empty", l.SID)
		}
	}
	tr := &trace.Trace{
		Benchmark:  benchmark,
		Interleave: iv,
		Tenants:    len(logs),
		Seed:       seed,
		Scale:      scale,
		Profile:    profile,
	}
	stats := make([]trace.TenantStat, len(logs))
	cursors := make([]int, len(logs))
	for i, l := range logs {
		stats[i] = trace.TenantStat{SID: l.SID, Budget: l.Budget}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x7261_6e64))
	cur := 0
loop:
	for {
		if iv.Kind == trace.Random {
			cur = rng.Intn(len(logs))
		}
		for b := 0; b < iv.Burst; b++ {
			if cursors[cur] >= len(logs[cur].Packets) {
				break loop // edge effect
			}
			tr.Packets = append(tr.Packets, logs[cur].Packets[cursors[cur]])
			cursors[cur]++
			stats[cur].Packets++
			stats[cur].Consumed += workload.RequestsPerPacket
		}
		if iv.Kind == trace.RoundRobin {
			cur = (cur + 1) % len(logs)
		}
	}
	tr.Stats = stats
	return tr, nil
}
