package collector

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hypertrio/internal/mem"
	"hypertrio/internal/workload"
)

// Binary per-run log format ("HLOG"): the on-disk shape of one emulated
// run's recorded logs, so collection and merging can be separate steps
// (as they are in the paper's pipeline, where each QEMU run writes its
// logs before the Trace Constructor reads them all).
//
//	magic   [4]byte "HLOG"
//	version uvarint
//	run     uvarint
//	logs    uvarint
//	per log: slot, sid, budget, packet count (uvarints), then packets as
//	         ring-delta, data, unmap (+shift byte when unmap != 0)

const (
	logMagic   = "HLOG"
	logVersion = 1
)

// WriteLogs serializes one run's logs.
func WriteLogs(w io.Writer, run int, logs []TenantLog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(logMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := put(logVersion); err != nil {
		return err
	}
	if err := put(uint64(run)); err != nil {
		return err
	}
	if err := put(uint64(len(logs))); err != nil {
		return err
	}
	for _, l := range logs {
		if l.Run != run {
			return fmt.Errorf("collector: log for SID %d belongs to run %d, writing run %d", l.SID, l.Run, run)
		}
		if err := put(uint64(l.Slot)); err != nil {
			return err
		}
		if err := put(uint64(l.SID)); err != nil {
			return err
		}
		if err := put(uint64(l.Budget)); err != nil {
			return err
		}
		if err := put(uint64(len(l.Packets))); err != nil {
			return err
		}
		for _, p := range l.Packets {
			if err := put(p.Ring - workload.RingIOVA); err != nil {
				return err
			}
			if err := put(p.Data); err != nil {
				return err
			}
			if err := put(p.UnmapIOVA); err != nil {
				return err
			}
			if p.UnmapIOVA != 0 {
				if err := bw.WriteByte(p.UnmapShift); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadLogs deserializes one run's logs.
func ReadLogs(r io.Reader) (run int, logs []TenantLog, err error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err = io.ReadFull(br, head); err != nil {
		return 0, nil, fmt.Errorf("collector: reading magic: %w", err)
	}
	if string(head) != logMagic {
		return 0, nil, fmt.Errorf("collector: bad magic %q", head)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	ver, err := get()
	if err != nil {
		return 0, nil, err
	}
	if ver != logVersion {
		return 0, nil, fmt.Errorf("collector: unsupported log version %d", ver)
	}
	runU, err := get()
	if err != nil {
		return 0, nil, err
	}
	run = int(runU)
	count, err := get()
	if err != nil {
		return 0, nil, err
	}
	if count > MaxSlotsPerRun {
		return 0, nil, fmt.Errorf("collector: %d logs in one run (max %d)", count, MaxSlotsPerRun)
	}
	logs = make([]TenantLog, count)
	for i := range logs {
		slot, err := get()
		if err != nil {
			return 0, nil, err
		}
		sid, err := get()
		if err != nil {
			return 0, nil, err
		}
		budget, err := get()
		if err != nil {
			return 0, nil, err
		}
		npkts, err := get()
		if err != nil {
			return 0, nil, err
		}
		if npkts > 1<<31 {
			return 0, nil, fmt.Errorf("collector: implausible packet count %d", npkts)
		}
		l := TenantLog{Run: run, Slot: int(slot), SID: mem.SID(sid), Budget: int(budget)}
		l.Packets = make([]workload.Packet, npkts)
		for j := range l.Packets {
			ring, err := get()
			if err != nil {
				return 0, nil, err
			}
			data, err := get()
			if err != nil {
				return 0, nil, err
			}
			unmap, err := get()
			if err != nil {
				return 0, nil, err
			}
			ringAddr := workload.RingIOVA + ring
			p := workload.Packet{
				SID:       l.SID,
				Ring:      ringAddr,
				Data:      data,
				Mailbox:   ringAddr&^uint64(mem.PageSize-1) + mem.PageSize,
				UnmapIOVA: unmap,
			}
			if unmap != 0 {
				shift, err := br.ReadByte()
				if err != nil {
					return 0, nil, err
				}
				p.UnmapShift = shift
			}
			l.Packets[j] = p
		}
		logs[i] = l
	}
	return run, logs, nil
}
