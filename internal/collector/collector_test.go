package collector

import (
	"bytes"
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

func newCollector(t *testing.T, scale float64) *Collector {
	t.Helper()
	c, err := New(workload.ProfileFor(workload.Iperf3), 42, scale)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRuns(t *testing.T) {
	cases := map[int]int{1: 1, 24: 1, 25: 2, 48: 2, 49: 3, 1024: 43}
	for n, want := range cases {
		if got := Runs(n); got != want {
			t.Errorf("Runs(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCollectRunLimits(t *testing.T) {
	c := newCollector(t, 0.001)
	if _, err := c.CollectRun(0, 0); err == nil {
		t.Error("0 slots accepted")
	}
	if _, err := c.CollectRun(0, 25); err == nil {
		t.Error("25 slots accepted")
	}
	logs, err := c.CollectRun(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 24 {
		t.Fatalf("got %d logs", len(logs))
	}
}

func TestCollectGlobalSIDs(t *testing.T) {
	c := newCollector(t, 0.001)
	logs, err := c.Collect(50) // 3 runs: 24 + 24 + 2
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 50 {
		t.Fatalf("got %d logs, want 50", len(logs))
	}
	for i, l := range logs {
		if int(l.SID) != i+1 {
			t.Fatalf("log %d has SID %d", i, l.SID)
		}
		wantRun := i / MaxSlotsPerRun
		wantSlot := i%MaxSlotsPerRun + 1
		if l.Run != wantRun || l.Slot != wantSlot {
			t.Fatalf("log %d: run/slot = %d/%d, want %d/%d", i, l.Run, l.Slot, wantRun, wantSlot)
		}
		if len(l.Packets) == 0 || l.Budget == 0 {
			t.Fatalf("log %d empty", i)
		}
	}
}

func TestSlotAddressingSurvivesRemap(t *testing.T) {
	// Tenants in the same slot of different runs must share ring-page
	// gIOVAs (the cross-run address reuse the paper observes), and the
	// global SID must map to the same ring slot (24 ≡ 0 mod RingSlots).
	c := newCollector(t, 0.001)
	logs, err := c.Collect(30)
	if err != nil {
		t.Fatal(err)
	}
	slotOne := []TenantLog{logs[0], logs[24]} // slot 1 of runs 0 and 1
	ringA := slotOne[0].Packets[0].Ring &^ uint64(mem.PageSize-1)
	ringB := slotOne[1].Packets[0].Ring &^ uint64(mem.PageSize-1)
	if ringA != ringB {
		t.Fatalf("same slot, different ring pages: %#x vs %#x", ringA, ringB)
	}
	for _, l := range logs {
		want := workload.RingPageFor(l.SID)
		got := l.Packets[0].Ring &^ uint64(mem.PageSize-1)
		if got != want {
			t.Fatalf("SID %d ring page %#x, want %#x", l.SID, got, want)
		}
	}
}

func TestMergeMatchesDirectConstruction(t *testing.T) {
	// The collector pipeline (runs -> logs -> merge) must produce the
	// same hyper-trace as trace.Construct for every interleaving.
	for _, iv := range []trace.Interleave{trace.RR1, trace.RR4, trace.RAND1} {
		profile := workload.ProfileFor(workload.Iperf3)
		c := newCollector(t, 0.002)
		logs, err := c.Collect(30)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := Merge(logs, workload.Iperf3, profile, iv, 42, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := trace.Construct(trace.Config{
			Benchmark: workload.Iperf3, Tenants: 30, Interleave: iv, Seed: 42, Scale: 0.002,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(merged.Packets) != len(direct.Packets) {
			t.Fatalf("%v: merged %d packets, direct %d", iv, len(merged.Packets), len(direct.Packets))
		}
		for i := range merged.Packets {
			if merged.Packets[i] != direct.Packets[i] {
				t.Fatalf("%v: packet %d differs: %+v vs %+v", iv, i, merged.Packets[i], direct.Packets[i])
			}
		}
		for i := range merged.Stats {
			if merged.Stats[i] != direct.Stats[i] {
				t.Fatalf("%v: stat %d differs", iv, i)
			}
		}
	}
}

func TestMergeValidation(t *testing.T) {
	profile := workload.ProfileFor(workload.Iperf3)
	if _, err := Merge(nil, workload.Iperf3, profile, trace.RR1, 1, 0.01); err == nil {
		t.Error("empty logs accepted")
	}
	c := newCollector(t, 0.001)
	logs, err := c.Collect(4)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]TenantLog{}, logs...)
	bad[2].SID = 9 // gap
	if _, err := Merge(bad, workload.Iperf3, profile, trace.RR1, 1, 0.001); err == nil {
		t.Error("non-contiguous SIDs accepted")
	}
	if _, err := Merge(logs, workload.Iperf3, profile, trace.Interleave{Kind: trace.RoundRobin}, 1, 0.001); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestLogFileRoundTrip(t *testing.T) {
	c := newCollector(t, 0.002)
	logs, err := c.CollectRun(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLogs(&buf, 3, logs); err != nil {
		t.Fatal(err)
	}
	run, got, err := ReadLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if run != 3 {
		t.Fatalf("run = %d", run)
	}
	if len(got) != len(logs) {
		t.Fatalf("got %d logs", len(got))
	}
	for i := range got {
		if got[i].Run != logs[i].Run || got[i].Slot != logs[i].Slot ||
			got[i].SID != logs[i].SID || got[i].Budget != logs[i].Budget {
			t.Fatalf("log %d header differs: %+v vs %+v", i, got[i], logs[i])
		}
		if len(got[i].Packets) != len(logs[i].Packets) {
			t.Fatalf("log %d packet count differs", i)
		}
		for j := range got[i].Packets {
			if got[i].Packets[j] != logs[i].Packets[j] {
				t.Fatalf("log %d packet %d differs", i, j)
			}
		}
	}
}

func TestLogFileRejectsGarbage(t *testing.T) {
	if _, _, err := ReadLogs(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	c := newCollector(t, 0.001)
	logs, _ := c.CollectRun(0, 2)
	var buf bytes.Buffer
	if err := WriteLogs(&buf, 0, logs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLogs(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("truncated log accepted")
	}
	// Writing a log under the wrong run id is rejected.
	if err := WriteLogs(&bytes.Buffer{}, 7, logs); err == nil {
		t.Fatal("wrong-run write accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(workload.ProfileFor(workload.Iperf3), 1, 0); err == nil {
		t.Error("zero scale accepted")
	}
	bad := workload.ProfileFor(workload.Iperf3)
	bad.DataPages = 0
	if _, err := New(bad, 1, 0.5); err == nil {
		t.Error("invalid profile accepted")
	}
}
