package stats

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("title", "a", "bb", "ccc")
	tb.AddRow("1", "22", "333")
	tb.AddRow("x")
	out := tb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "a") || !strings.Contains(lines[1], "ccc") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator wrong: %q", lines[2])
	}
	// Short row padded: no panic, row present.
	if !strings.HasPrefix(lines[4], "x") {
		t.Fatalf("padded row wrong: %q", lines[4])
	}
}

func TestTableColumnWidths(t *testing.T) {
	tb := NewTable("", "col")
	tb.AddRow("longervalue")
	lines := strings.Split(tb.String(), "\n")
	if len(lines[0]) < len("longervalue") {
		t.Fatalf("header not widened: %q", lines[0])
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", `va"l,ue`)
	csv := tb.CSV()
	want := "a,b\n1,\"va\"\"l,ue\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestGbps(t *testing.T) {
	if g := Gbps(199.44e9); g != "199.44" {
		t.Fatalf("Gbps = %q", g)
	}
	if g := Gbps(0); g != "0.00" {
		t.Fatalf("Gbps(0) = %q", g)
	}
}

func TestPercent(t *testing.T) {
	if p := Percent(0.4312); p != "43.1%" {
		t.Fatalf("Percent = %q", p)
	}
}

func TestCount(t *testing.T) {
	cases := map[uint64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		69712894:   "69,712,894",
		1234567890: "1,234,567,890",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestChart(t *testing.T) {
	c := NewChart("bw", " Gb/s", "base", "hypertrio")
	c.SetWidth(10)
	c.AddPoint("4", 100, 200)
	c.AddPoint("1024", 5)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 2 points x 2 series
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Fatalf("half bar wrong: %q", lines[1])
	}
	// Missing second value renders as zero-width bar.
	if !strings.Contains(lines[4], "0.00 Gb/s") {
		t.Fatalf("missing value not zeroed: %q", lines[4])
	}
	// Zero-max chart must not divide by zero.
	z := NewChart("", "", "s")
	z.AddPoint("x", 0)
	if !strings.Contains(z.String(), "0.00") {
		t.Fatal("zero chart broken")
	}
}
