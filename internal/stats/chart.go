package stats

import (
	"fmt"
	"strings"
)

// Chart renders one or more numeric series against a shared categorical
// x-axis as horizontal ASCII bars — enough to eyeball the shape of a
// bandwidth curve in a terminal or a log file.
type Chart struct {
	Title  string
	Unit   string
	Series []string
	points []chartPoint
	width  int
}

type chartPoint struct {
	x      string
	values []float64
}

// NewChart creates a chart with the given series names.
func NewChart(title, unit string, series ...string) *Chart {
	return &Chart{Title: title, Unit: unit, Series: series, width: 40}
}

// SetWidth changes the maximum bar width (default 40 characters).
func (c *Chart) SetWidth(w int) {
	if w > 0 {
		c.width = w
	}
}

// AddPoint appends one x position with one value per series; missing
// values render as empty bars.
func (c *Chart) AddPoint(x string, values ...float64) {
	vs := make([]float64, len(c.Series))
	copy(vs, values)
	c.points = append(c.points, chartPoint{x: x, values: vs})
}

// String renders the chart.
func (c *Chart) String() string {
	var max float64
	for _, p := range c.points {
		for _, v := range p.values {
			if v > max {
				max = v
			}
		}
	}
	xw, sw := 1, 1
	for _, p := range c.points {
		if len(p.x) > xw {
			xw = len(p.x)
		}
	}
	for _, s := range c.Series {
		if len(s) > sw {
			sw = len(s)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, p := range c.points {
		for i, s := range c.Series {
			label := ""
			if i == 0 {
				label = p.x
			}
			bar := 0
			if max > 0 {
				bar = int(p.values[i]/max*float64(c.width) + 0.5)
			}
			fmt.Fprintf(&b, "%-*s | %-*s %s %.2f%s\n",
				xw, label, sw, s, strings.Repeat("#", bar), p.values[i], c.Unit)
		}
	}
	return b.String()
}
