// Package stats provides the small formatting and accounting helpers the
// experiment harness and CLIs share: aligned text tables, CSV output and
// unit formatting.
package stats

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells rendered either as aligned text or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted where needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Gbps formats a bit rate in Gb/s with two decimals.
func Gbps(bitsPerSecond float64) string {
	return fmt.Sprintf("%.2f", bitsPerSecond/1e9)
}

// Percent formats a ratio (0..1) as a percentage with one decimal.
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}

// Count formats an integer with thousands separators.
func Count(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
