// Package sim provides a small deterministic discrete-event simulation
// kernel used by the HyperSIO performance model.
//
// Time is kept in integer picoseconds so that sub-nanosecond quantities
// (for example the 61.68 ns inter-arrival gap of 1542-byte packets on a
// 200 Gb/s link) accumulate without rounding drift. An int64 picosecond
// clock overflows after roughly 106 days of simulated time, far beyond
// any experiment in this repository.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulation timestamp in picoseconds since the start of the run.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds returns d as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Std converts d to a time.Duration, rounding to nanoseconds.
func (d Duration) Std() time.Duration {
	return time.Duration(d/Nanosecond) * time.Nanosecond
}

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0"
	case d%Second == 0:
		return fmt.Sprintf("%ds", int64(d/Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	case d >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp as a duration since time zero.
func (t Time) String() string { return Duration(t).String() }

// FromNanos converts a floating-point nanosecond quantity to a Duration,
// rounding half away from zero.
func FromNanos(ns float64) Duration {
	if ns >= 0 {
		return Duration(ns*float64(Nanosecond) + 0.5)
	}
	return Duration(ns*float64(Nanosecond) - 0.5)
}
