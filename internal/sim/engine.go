package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events, and the firing time.
type Handler func(e *Engine, now Time)

// event is one pending callback in the queue.
type event struct {
	at     Time
	seq    uint64 // schedule order, breaks timestamp ties deterministically
	fn     Handler
	index  int // heap index, -1 once popped or cancelled
	cancel bool
	label  string
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// Probe observes the engine's lifecycle: every event entering the
// queue, firing, or being cancelled, with its timestamp, deterministic
// sequence number, and optional debug label. Probes must only observe —
// a probe that mutates model state would break the determinism contract.
// All hooks are nil-guarded, so an engine without a probe pays one
// predictable branch per operation.
type Probe interface {
	OnSchedule(at Time, seq uint64, label string)
	OnFire(at Time, seq uint64, label string)
	OnCancel(at Time, seq uint64, label string)
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator. Events scheduled
// for the same timestamp fire in scheduling order. Engine is not safe for
// concurrent use; the whole model is single-threaded by design, which is
// also what makes runs reproducible.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	stopped bool
	probe   Probe
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Stopped reports whether the last Run/RunUntil/RunLimit call ended
// because Stop was called (rather than by draining the queue or hitting
// its bound). RunUntil callers use this to distinguish "clock advanced
// to the deadline" from "halted mid-window".
func (e *Engine) Stopped() bool { return e.stopped }

// SetProbe attaches an observability probe (nil detaches). The probe
// sees events from the next operation onward.
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// ErrPastEvent is returned by ScheduleAt when the requested time is
// before the current simulation time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule queues fn to run after delay. A negative delay panics: the
// model must never travel backwards in time.
func (e *Engine) Schedule(delay Duration, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), fn, "")
}

// ScheduleAt queues fn to run at the absolute time at.
func (e *Engine) ScheduleAt(at Time, fn Handler) (EventID, error) {
	if at < e.now {
		return EventID{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	return e.scheduleAt(at, fn, ""), nil
}

// ScheduleLabeled is Schedule with a debug label attached to the event.
func (e *Engine) ScheduleLabeled(delay Duration, label string, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), fn, label)
}

func (e *Engine) scheduleAt(at Time, fn Handler, label string) EventID {
	ev := &event{at: at, seq: e.nextSeq, fn: fn, label: label}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	if e.probe != nil {
		e.probe.OnSchedule(at, ev.seq, label)
	}
	return EventID{ev: ev}
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false; in particular,
// an event popped for execution during same-timestamp firing (including
// a handler cancelling itself) has already left the queue and cannot be
// cancelled.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.cancel || ev.index < 0 {
		return false
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	if e.probe != nil {
		e.probe.OnCancel(ev.at, ev.seq, ev.label)
	}
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancel {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v (%s)", e.now, ev.at, ev.label))
		}
		e.now = ev.at
		e.fired++
		if e.probe != nil {
			e.probe.OnFire(ev.at, ev.seq, ev.label)
		}
		ev.fn(e, e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns
// the number of events executed during this call.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline. Events scheduled
// beyond the deadline stay queued. It returns the number of events fired.
//
// Clock-advance semantics: when the window completes normally the clock
// lands exactly on deadline even if no event fired there, so repeated
// RunUntil calls tile time without gaps. When Stop fires mid-window the
// clock stays at the stopping event's time and the remaining in-window
// events stay queued (Stopped reports which case occurred); a later
// RunUntil with the same deadline resumes and finishes the window.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.fired - start
}

// RunLimit fires at most n events, returning the number fired. It is a
// guard rail for tests that want to bound runaway models.
func (e *Engine) RunLimit(n uint64) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.fired-start < n && e.Step() {
	}
	return e.fired - start
}
