package sim

import (
	"errors"
	"fmt"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events, and the firing time.
type Handler func(e *Engine, now Time)

// EventSink is the typed, closure-free scheduling path: a model
// component implements HandleEvent once and schedules events against
// itself with ScheduleEvent, threading per-event state through the
// payload word instead of capturing it in a closure. Components that
// need more than 64 bits of state keep it in a pooled record and pass
// the record's index (see internal/core and internal/pipeline).
//
// Typed and closure events share one queue, one sequence numbering and
// one firing order; which path scheduled an event is invisible to
// determinism, probes and traces.
type EventSink interface {
	HandleEvent(e *Engine, now Time, payload uint64)
}

// recState tracks an event record's lifecycle through the slab.
const (
	recFree uint8 = iota // on the free list
	recQueued
	recCancelled // still in the heap, skipped and recycled at pop
)

// eventRec is one event's slab record. Records are recycled through a
// free list, so steady-state scheduling allocates nothing; gen
// distinguishes incarnations of the same slot so a stale EventID from a
// previous occupant can never touch the current one.
type eventRec struct {
	at      Time
	seq     uint64 // schedule order, breaks timestamp ties deterministically
	fn      Handler
	sink    EventSink
	payload uint64
	label   string
	gen     uint32
	state   uint8
	dom     uint8 // owning domain; 0 for serial and lockstep engines
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is invalid and never cancels anything. IDs are
// generation-checked: after the event fires or is cancelled its slab
// slot may be recycled, and the stale ID keeps returning false from
// Cancel instead of touching the slot's next occupant.
type EventID struct {
	slot uint32 // slab index + 1; 0 marks the zero (invalid) EventID
	gen  uint32
}

// Probe observes the engine's lifecycle: every event entering the
// queue, firing, or being cancelled, with its timestamp, deterministic
// sequence number, and optional debug label. Probes must only observe —
// a probe that mutates model state would break the determinism contract.
// All hooks are nil-guarded, so an engine without a probe pays one
// predictable branch per operation.
type Probe interface {
	OnSchedule(at Time, seq uint64, label string)
	OnFire(at Time, seq uint64, label string)
	OnCancel(at Time, seq uint64, label string)
}

// Engine is a deterministic discrete-event simulator. Events scheduled
// for the same timestamp fire in scheduling order. Engine is not safe for
// concurrent use; the whole model is single-threaded by design, which is
// also what makes runs reproducible.
//
// Internally the queue is a 4-ary min-heap of slab indices ordered by
// (time, seq): the slab keeps every record in one flat allocation and
// the free list recycles slots, so Schedule/Step allocate nothing in
// steady state (pinned by TestScheduleStepZeroAllocs). Cancellation is
// lazy — a cancelled record stays in the heap, is skipped at pop, and
// its slot is recycled then.
type Engine struct {
	now     Time
	slab    []eventRec
	heap    []uint32 // slab indices ordered by (at, dom, seq)
	free    []uint32 // recycled slab indices
	live    int      // queued, not-cancelled events
	nextSeq uint64
	fired   uint64
	stopped bool
	probe   Probe

	// Sharding state (see ShardedEngine). A serial engine keeps the zero
	// domain and its own sequence counter, making the comparator
	// (at, dom, seq) degenerate to the historical (at, seq) order.
	dom  uint8
	seqp *uint64 // shared sequence counter; nil means &e.nextSeq

	// Parked cross-domain messages, indexed by the payload word of the
	// event Deliver schedules; recycled through a free list like the
	// event slab so steady-state handoff allocates nothing.
	msgs    []Msg
	msgFree []uint32

	// deliveries counts Deliver calls; the lockstep merge loop uses it to
	// notice that a fired event lowered this engine's head mid-batch.
	deliveries uint64
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled (cancelled
// events leave this count immediately, even though their heap slots are
// recycled lazily).
func (e *Engine) Pending() int { return e.live }

// Stopped reports whether the last Run/RunUntil/RunLimit call ended
// because Stop was called (rather than by draining the queue or hitting
// its bound). RunUntil callers use this to distinguish "clock advanced
// to the deadline" from "halted mid-window".
func (e *Engine) Stopped() bool { return e.stopped }

// SetProbe attaches an observability probe (nil detaches). The probe
// sees events from the next operation onward.
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// SetDomain tags every event this engine subsequently schedules with the
// domain ID d. ShardedEngine uses it in parallel mode so the
// (at, dom, seq) comparator totally orders events across domains even
// though each domain assigns sequence numbers independently. Serial
// engines and lockstep topologies keep the zero domain.
func (e *Engine) SetDomain(d uint8) { e.dom = d }

// Domain returns the engine's domain tag.
func (e *Engine) Domain() uint8 { return e.dom }

// SetSharedSeq points the engine's sequence counter at an external
// counter shared with other engines (the lockstep sharding mode), so
// events scheduled across all of them draw from one global schedule
// order — exactly the sequence a single serial engine would have
// assigned. Passing nil restores the engine's own counter. Must be
// called before any event is scheduled.
func (e *Engine) SetSharedSeq(p *uint64) { e.seqp = p }

// takeSeq consumes the next sequence number from the engine's counter
// (its own, or the shared lockstep counter).
func (e *Engine) takeSeq() uint64 {
	p := e.seqp
	if p == nil {
		p = &e.nextSeq
	}
	s := *p
	*p++
	return s
}

// Stamp is an event's global ordering key. Events fire in lexicographic
// (At, Dom, Seq) order; for serial engines Dom is always zero and the
// order is the historical (At, Seq).
type Stamp struct {
	At  Time
	Dom uint8
	Seq uint64
}

// Less reports whether s orders strictly before o.
func (s Stamp) Less(o Stamp) bool {
	if s.At != o.At {
		return s.At < o.At
	}
	if s.Dom != o.Dom {
		return s.Dom < o.Dom
	}
	return s.Seq < o.Seq
}

// PeekStamp returns the ordering stamp of the earliest pending event
// without firing it, discarding any cancelled records at the head. The
// second result is false when the queue is empty.
func (e *Engine) PeekStamp() (Stamp, bool) {
	e.pruneCancelled()
	if len(e.heap) == 0 {
		return Stamp{}, false
	}
	r := &e.slab[e.heap[0]]
	return Stamp{At: r.at, Dom: r.dom, Seq: r.seq}, true
}

// Deliveries counts how many cross-domain messages have been delivered
// into this engine (see Deliver).
func (e *Engine) Deliveries() uint64 { return e.deliveries }

// ErrPastEvent is returned by ScheduleAt when the requested time is
// before the current simulation time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule queues fn to run after delay. A negative delay panics: the
// model must never travel backwards in time.
func (e *Engine) Schedule(delay Duration, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), fn, nil, 0, "")
}

// ScheduleAt queues fn to run at the absolute time at.
func (e *Engine) ScheduleAt(at Time, fn Handler) (EventID, error) {
	if at < e.now {
		return EventID{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	return e.scheduleAt(at, fn, nil, 0, ""), nil
}

// ScheduleLabeled is Schedule with a debug label attached to the event.
func (e *Engine) ScheduleLabeled(delay Duration, label string, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), fn, nil, 0, label)
}

// ScheduleEvent queues a typed event: after delay, sink.HandleEvent
// fires with the payload word. Unlike Schedule with a capturing
// closure, this path allocates nothing — the hot-path alternative for
// model components that schedule per packet or per translation.
func (e *Engine) ScheduleEvent(delay Duration, sink EventSink, payload uint64) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), nil, sink, payload, "")
}

// ScheduleEventLabeled is ScheduleEvent with a debug label attached.
func (e *Engine) ScheduleEventLabeled(delay Duration, label string, sink EventSink, payload uint64) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), nil, sink, payload, label)
}

func (e *Engine) scheduleAt(at Time, fn Handler, sink EventSink, payload uint64, label string) EventID {
	var idx uint32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slab = append(e.slab, eventRec{})
		idx = uint32(len(e.slab) - 1)
	}
	rec := &e.slab[idx]
	rec.at = at
	rec.seq = e.takeSeq()
	rec.dom = e.dom
	rec.fn = fn
	rec.sink = sink
	rec.payload = payload
	rec.label = label
	rec.state = recQueued
	e.live++
	e.heapPush(idx)
	if e.probe != nil {
		e.probe.OnSchedule(at, rec.seq, label)
	}
	return EventID{slot: idx + 1, gen: rec.gen}
}

// freeRec retires a slab slot: the generation bump invalidates any
// outstanding EventID, and clearing the references releases the
// handler/sink for GC.
func (e *Engine) freeRec(idx uint32) {
	rec := &e.slab[idx]
	rec.gen++
	rec.state = recFree
	rec.fn = nil
	rec.sink = nil
	rec.label = ""
	e.free = append(e.free, idx)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or recycled event is a no-op and returns false; in
// particular, an event popped for execution during same-timestamp firing
// (including a handler cancelling itself) has already left the queue and
// cannot be cancelled, and a stale EventID whose slab slot was recycled
// fails the generation check rather than cancelling the new occupant.
func (e *Engine) Cancel(id EventID) bool {
	if id.slot == 0 || int(id.slot) > len(e.slab) {
		return false
	}
	rec := &e.slab[id.slot-1]
	if rec.gen != id.gen || rec.state != recQueued {
		return false
	}
	rec.state = recCancelled
	e.live--
	if e.probe != nil {
		e.probe.OnCancel(rec.at, rec.seq, rec.label)
	}
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		idx := e.heapPop()
		rec := &e.slab[idx]
		if rec.state == recCancelled {
			e.freeRec(idx)
			continue
		}
		at, seq := rec.at, rec.seq
		fn, sink, payload, label := rec.fn, rec.sink, rec.payload, rec.label
		// Recycle before firing: the handler may schedule into this very
		// slot, which is exactly why EventIDs are generation-checked.
		e.freeRec(idx)
		if at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v (%s)", e.now, at, label))
		}
		e.now = at
		e.fired++
		e.live--
		if e.probe != nil {
			e.probe.OnFire(at, seq, label)
		}
		if fn != nil {
			fn(e, e.now)
		} else {
			sink.HandleEvent(e, e.now, payload)
		}
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns
// the number of events executed during this call.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline. Events scheduled
// beyond the deadline stay queued. It returns the number of events fired.
//
// Clock-advance semantics: when the window completes normally the clock
// lands exactly on deadline even if no event fired there, so repeated
// RunUntil calls tile time without gaps. When Stop fires mid-window the
// clock stays at the stopping event's time and the remaining in-window
// events stay queued (Stopped reports which case occurred); a later
// RunUntil with the same deadline resumes and finishes the window.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped {
		e.pruneCancelled()
		if len(e.heap) == 0 || e.slab[e.heap[0]].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return e.fired - start
}

// RunLimit fires at most n events, returning the number fired. It is a
// guard rail for tests that want to bound runaway models.
func (e *Engine) RunLimit(n uint64) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.fired-start < n && e.Step() {
	}
	return e.fired - start
}

// pruneCancelled discards cancelled records at the heap root so peeking
// at the head (RunUntil's deadline check) sees the earliest live event.
func (e *Engine) pruneCancelled() {
	for len(e.heap) > 0 && e.slab[e.heap[0]].state == recCancelled {
		e.freeRec(e.heapPop())
	}
}

// --- 4-ary min-heap over slab indices ---------------------------------
//
// A 4-ary heap halves the tree depth of the binary heap, trading a
// slightly wider sift-down for far fewer cache-missing levels — the
// classic d-ary layout for event queues where pushes outnumber
// reorderings. Ordering is (at, dom, seq); the pairs are unique (a
// domain never reuses a sequence number), so the comparator is a total
// order. Serial engines keep dom == 0 everywhere, making pop order
// exactly the old (at, seq) firing order.

const heapArity = 4

func (e *Engine) heapLess(a, b uint32) bool {
	ra, rb := &e.slab[a], &e.slab[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	if ra.dom != rb.dom {
		return ra.dom < rb.dom
	}
	return ra.seq < rb.seq
}

func (e *Engine) heapPush(idx uint32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.heapLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) heapPop() uint32 {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return root
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.heapLess(h[c], h[min]) {
				min = c
			}
		}
		if !e.heapLess(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
