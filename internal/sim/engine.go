package sim

import (
	"errors"
	"fmt"
	"math/bits"
)

// Handler is a callback executed when an event fires. It receives the
// engine so it can schedule follow-up events, and the firing time.
type Handler func(e *Engine, now Time)

// EventSink is the typed, closure-free scheduling path: a model
// component implements HandleEvent once and schedules events against
// itself with ScheduleEvent, threading per-event state through the
// payload word instead of capturing it in a closure. Components that
// need more than 64 bits of state keep it in a pooled record and pass
// the record's index (see internal/core and internal/pipeline).
//
// Typed and closure events share one queue, one sequence numbering and
// one firing order; which path scheduled an event is invisible to
// determinism, probes and traces.
type EventSink interface {
	HandleEvent(e *Engine, now Time, payload uint64)
}

// recState tracks an event record's lifecycle through the slab.
const (
	recFree uint8 = iota // on the free list
	recQueued
	recCancelled // still queued, skipped and recycled when encountered
)

// eventRec is one event's slab record. Records are recycled through a
// free list, so steady-state scheduling allocates nothing; gen
// distinguishes incarnations of the same slot so a stale EventID from a
// previous occupant can never touch the current one. next chains records
// into their timing-wheel slot's intrusive list (slab index + 1; 0 ends
// the chain).
type eventRec struct {
	at      Time
	seq     uint64 // schedule order, breaks timestamp ties deterministically
	fn      Handler
	sink    EventSink
	payload uint64
	label   string
	next    uint32
	gen     uint32
	state   uint8
	dom     uint8 // owning domain; 0 for serial and lockstep engines
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is invalid and never cancels anything. IDs are
// generation-checked: after the event fires or is cancelled its slab
// slot may be recycled, and the stale ID keeps returning false from
// Cancel instead of touching the slot's next occupant.
type EventID struct {
	slot uint32 // slab index + 1; 0 marks the zero (invalid) EventID
	gen  uint32
}

// Probe observes the engine's lifecycle: every event entering the
// queue, firing, or being cancelled, with its timestamp, deterministic
// sequence number, and optional debug label. Probes must only observe —
// a probe that mutates model state would break the determinism contract.
// All hooks are nil-guarded, so an engine without a probe pays one
// predictable branch per operation.
type Probe interface {
	OnSchedule(at Time, seq uint64, label string)
	OnFire(at Time, seq uint64, label string)
	OnCancel(at Time, seq uint64, label string)
}

// Timing-wheel geometry: wheelLevels levels of wheelSlots slots each,
// wheelBits address bits per level. Level l buckets events whose
// timestamps first differ from the cursor in bit l*wheelBits ..
// l*wheelBits+wheelBits-1; the wheel as a whole covers the cursor's
// next 2^48 picoseconds (~281 simulated seconds). Events beyond that
// horizon wait in a small 4-ary overflow heap and migrate into the
// wheel when the cursor gets close.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 8
	horizonBits = wheelBits * wheelLevels // 48
)

// Engine is a deterministic discrete-event simulator. Events scheduled
// for the same timestamp fire in scheduling order. Engine is not safe for
// concurrent use; the whole model is single-threaded by design, which is
// also what makes runs reproducible.
//
// Internally the queue is a hierarchical timing wheel over a slab of
// recycled event records: the slab keeps every record in one flat
// allocation and the free list recycles slots, so Schedule/Step allocate
// nothing in steady state (pinned by TestScheduleStepZeroAllocs).
// Scheduling hashes the timestamp into a wheel slot in O(1); firing
// advances the cursor and cascades at most a handful of records to lower
// levels, amortized O(1) per event because every relocation moves a
// record to a strictly lower level. Events at exactly the cursor time
// sit in a small "ready" heap ordered by (at, dom, seq), which is what
// preserves the exact total fire order of the previous 4-ary-heap
// engine. Cancellation is lazy — a cancelled record stays in its slot,
// is skipped and recycled when the cursor or a peek reaches it.
type Engine struct {
	now     Time
	slab    []eventRec
	free    []uint32 // recycled slab indices
	live    int      // queued, not-cancelled events
	nextSeq uint64
	fired   uint64
	stopped bool
	probe   Probe

	// Timing-wheel state. cur is the wheel cursor; it trails or equals
	// the clock and only advances on a committed fire or a RunUntil
	// deadline, never on a peek — cross-domain Deliver may legally insert
	// below the currently peeked minimum (only >= now is guaranteed).
	cur      Time
	slotHead [wheelLevels * wheelSlots]uint32 // intrusive lists (slab index + 1)
	occ      [wheelLevels]uint64              // per-level slot occupancy bitmaps
	ready    []uint32                         // 4-ary heap of events at exactly cur
	ovfl     []uint32                         // 4-ary heap of events beyond the horizon
	scratch  []uint32                         // reused cascade buffer

	// Memoized minimum: findMin scans bitmaps and slot lists once, then
	// repeated peeks (the lockstep merge loop re-peeks per step) are O(1)
	// until a pop, a cancel of the cached minimum, or a smaller insert.
	peekStamp Stamp
	peekValid bool

	// Sharding state (see ShardedEngine). A serial engine keeps the zero
	// domain and its own sequence counter, making the comparator
	// (at, dom, seq) degenerate to the historical (at, seq) order.
	dom  uint8
	seqp *uint64 // shared sequence counter; nil means &e.nextSeq

	// Parked cross-domain messages, indexed by the payload word of the
	// event Deliver schedules; recycled through a free list like the
	// event slab so steady-state handoff allocates nothing.
	msgs    []Msg
	msgFree []uint32

	// deliveries counts Deliver calls; the lockstep merge loop uses it to
	// notice that a fired event lowered this engine's head mid-batch.
	deliveries uint64
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled (cancelled
// events leave this count immediately, even though their queue slots are
// recycled lazily).
func (e *Engine) Pending() int { return e.live }

// Stopped reports whether the last Run/RunUntil/RunLimit call ended
// because Stop was called (rather than by draining the queue or hitting
// its bound). RunUntil callers use this to distinguish "clock advanced
// to the deadline" from "halted mid-window".
func (e *Engine) Stopped() bool { return e.stopped }

// SetProbe attaches an observability probe (nil detaches). The probe
// sees events from the next operation onward.
func (e *Engine) SetProbe(p Probe) { e.probe = p }

// SetDomain tags every event this engine subsequently schedules with the
// domain ID d. ShardedEngine uses it in parallel mode so the
// (at, dom, seq) comparator totally orders events across domains even
// though each domain assigns sequence numbers independently. Serial
// engines and lockstep topologies keep the zero domain.
func (e *Engine) SetDomain(d uint8) { e.dom = d }

// Domain returns the engine's domain tag.
func (e *Engine) Domain() uint8 { return e.dom }

// SetSharedSeq points the engine's sequence counter at an external
// counter shared with other engines (the lockstep sharding mode), so
// events scheduled across all of them draw from one global schedule
// order — exactly the sequence a single serial engine would have
// assigned. Passing nil restores the engine's own counter. Must be
// called before any event is scheduled.
func (e *Engine) SetSharedSeq(p *uint64) { e.seqp = p }

// takeSeq consumes the next sequence number from the engine's counter
// (its own, or the shared lockstep counter).
func (e *Engine) takeSeq() uint64 {
	p := e.seqp
	if p == nil {
		p = &e.nextSeq
	}
	s := *p
	*p++
	return s
}

// Stamp is an event's global ordering key. Events fire in lexicographic
// (At, Dom, Seq) order; for serial engines Dom is always zero and the
// order is the historical (At, Seq).
type Stamp struct {
	At  Time
	Dom uint8
	Seq uint64
}

// Less reports whether s orders strictly before o.
func (s Stamp) Less(o Stamp) bool {
	if s.At != o.At {
		return s.At < o.At
	}
	if s.Dom != o.Dom {
		return s.Dom < o.Dom
	}
	return s.Seq < o.Seq
}

// PeekStamp returns the ordering stamp of the earliest pending event
// without firing it, discarding any cancelled records it encounters. The
// second result is false when the queue is empty. Peeking never moves
// the wheel cursor, so a later Deliver below the peeked minimum stays
// legal.
func (e *Engine) PeekStamp() (Stamp, bool) {
	return e.findMin()
}

// Deliveries counts how many cross-domain messages have been delivered
// into this engine (see Deliver).
func (e *Engine) Deliveries() uint64 { return e.deliveries }

// ErrPastEvent is returned by ScheduleAt when the requested time is
// before the current simulation time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule queues fn to run after delay. A negative delay panics: the
// model must never travel backwards in time.
func (e *Engine) Schedule(delay Duration, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), fn, nil, 0, "")
}

// ScheduleAt queues fn to run at the absolute time at.
func (e *Engine) ScheduleAt(at Time, fn Handler) (EventID, error) {
	if at < e.now {
		return EventID{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	return e.scheduleAt(at, fn, nil, 0, ""), nil
}

// ScheduleLabeled is Schedule with a debug label attached to the event.
func (e *Engine) ScheduleLabeled(delay Duration, label string, fn Handler) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), fn, nil, 0, label)
}

// ScheduleEvent queues a typed event: after delay, sink.HandleEvent
// fires with the payload word. Unlike Schedule with a capturing
// closure, this path allocates nothing — the hot-path alternative for
// model components that schedule per packet or per translation.
func (e *Engine) ScheduleEvent(delay Duration, sink EventSink, payload uint64) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), nil, sink, payload, "")
}

// ScheduleEventLabeled is ScheduleEvent with a debug label attached.
func (e *Engine) ScheduleEventLabeled(delay Duration, label string, sink EventSink, payload uint64) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d ps", int64(delay)))
	}
	return e.scheduleAt(e.now.Add(delay), nil, sink, payload, label)
}

func (e *Engine) scheduleAt(at Time, fn Handler, sink EventSink, payload uint64, label string) EventID {
	idx := e.allocRec()
	rec := &e.slab[idx]
	rec.at = at
	rec.seq = e.takeSeq()
	rec.dom = e.dom
	rec.fn = fn
	rec.sink = sink
	rec.payload = payload
	rec.label = label
	rec.state = recQueued
	e.live++
	e.enqueue(idx)
	if e.probe != nil {
		e.probe.OnSchedule(at, rec.seq, label)
	}
	return EventID{slot: idx + 1, gen: rec.gen}
}

// allocRec pops a recycled slab slot or grows the slab by one record.
func (e *Engine) allocRec() uint32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.slab = append(e.slab, eventRec{})
	return uint32(len(e.slab) - 1)
}

// freeRec retires a slab slot: the generation bump invalidates any
// outstanding EventID, and clearing the references releases the
// handler/sink for GC.
func (e *Engine) freeRec(idx uint32) {
	rec := &e.slab[idx]
	rec.gen++
	rec.state = recFree
	rec.fn = nil
	rec.sink = nil
	rec.label = ""
	rec.next = 0
	e.free = append(e.free, idx)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or recycled event is a no-op and returns false; in
// particular, an event popped for execution during same-timestamp firing
// (including a handler cancelling itself) has already left the queue and
// cannot be cancelled, and a stale EventID whose slab slot was recycled
// fails the generation check rather than cancelling the new occupant.
func (e *Engine) Cancel(id EventID) bool {
	if id.slot == 0 || int(id.slot) > len(e.slab) {
		return false
	}
	rec := &e.slab[id.slot-1]
	if rec.gen != id.gen || rec.state != recQueued {
		return false
	}
	rec.state = recCancelled
	e.live--
	if e.peekValid && e.peekStamp.At == rec.at && e.peekStamp.Dom == rec.dom && e.peekStamp.Seq == rec.seq {
		e.peekValid = false
	}
	if e.probe != nil {
		e.probe.OnCancel(rec.at, rec.seq, rec.label)
	}
	return true
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event. It returns false when the
// queue is empty.
func (e *Engine) Step() bool {
	st, ok := e.findMin()
	if !ok {
		return false
	}
	e.advanceTo(st.At)
	// The minimum now sits in the ready bucket; anything cancelled ahead
	// of it recycles on the way.
	var idx uint32
	for {
		if len(e.ready) == 0 {
			panic("sim: timing wheel lost the minimum event")
		}
		e.ready, idx = e.heapPopFrom(e.ready)
		if e.slab[idx].state == recCancelled {
			e.freeRec(idx)
			continue
		}
		break
	}
	e.peekValid = false
	rec := &e.slab[idx]
	at, seq := rec.at, rec.seq
	fn, sink, payload, label := rec.fn, rec.sink, rec.payload, rec.label
	// Recycle before firing: the handler may schedule into this very
	// slot, which is exactly why EventIDs are generation-checked.
	e.freeRec(idx)
	if at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v (%s)", e.now, at, label))
	}
	e.now = at
	e.fired++
	e.live--
	if e.probe != nil {
		e.probe.OnFire(at, seq, label)
	}
	if fn != nil {
		fn(e, e.now)
	} else {
		sink.HandleEvent(e, e.now, payload)
	}
	return true
}

// Run fires events until the queue drains or Stop is called. It returns
// the number of events executed during this call.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline. Events scheduled
// beyond the deadline stay queued. It returns the number of events fired.
//
// Clock-advance semantics: when the window completes normally the clock
// lands exactly on deadline even if no event fired there, so repeated
// RunUntil calls tile time without gaps. When Stop fires mid-window the
// clock stays at the stopping event's time and the remaining in-window
// events stay queued (Stopped reports which case occurred); a later
// RunUntil with the same deadline resumes and finishes the window.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped {
		st, ok := e.findMin()
		if !ok || st.At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		// No live event lies in (cur, deadline], so the cursor may jump
		// straight to the deadline; passed slots hold only cancelled
		// records, which the sweep recycles.
		e.advanceTo(deadline)
		e.now = deadline
	}
	return e.fired - start
}

// RunLimit fires at most n events, returning the number fired. It is a
// guard rail for tests that want to bound runaway models.
func (e *Engine) RunLimit(n uint64) uint64 {
	start := e.fired
	e.stopped = false
	for !e.stopped && e.fired-start < n && e.Step() {
	}
	return e.fired - start
}

// --- hierarchical timing wheel ----------------------------------------
//
// Placement invariant: a queued record with time t > cur lives at level
// l = (bits.Len64(t^cur)-1)/wheelBits, slot (t>>(l*wheelBits)) & wheelMask
// — the level of the highest bit where t diverges from the cursor. Every
// occupied slot at level l is strictly above the cursor's own slot index
// at that level, and events at exactly t == cur sit in the ready heap.
// The cursor only moves to the time of a committed minimum (Step) or to
// a RunUntil deadline known to precede every live event, which is what
// keeps the invariant cheap to maintain: advancing to T cascades exactly
// the slots the cursor passes, and each live record cascades to a
// strictly lower level every time, bounding total relocation work per
// event by the number of levels.

// enqueue places a filled record into the queue structure appropriate
// for its timestamp and keeps the memoized minimum coherent.
func (e *Engine) enqueue(idx uint32) {
	rec := &e.slab[idx]
	if e.peekValid {
		st := Stamp{At: rec.at, Dom: rec.dom, Seq: rec.seq}
		if st.Less(e.peekStamp) {
			e.peekStamp = st
		}
	}
	e.place(idx, rec.at)
}

// place inserts idx into the ready heap, a wheel slot, or the overflow
// heap according to t's distance from the cursor. t must be >= cur.
func (e *Engine) place(idx uint32, t Time) {
	if t == e.cur {
		e.ready = e.heapPushTo(e.ready, idx)
		return
	}
	d := uint64(t) ^ uint64(e.cur)
	lvl := (bits.Len64(d) - 1) / wheelBits
	if lvl >= wheelLevels {
		e.ovfl = e.heapPushTo(e.ovfl, idx)
		return
	}
	slot := int(uint64(t)>>(uint(lvl)*wheelBits)) & wheelMask
	pos := lvl*wheelSlots + slot
	e.slab[idx].next = e.slotHead[pos]
	e.slotHead[pos] = idx + 1
	e.occ[lvl] |= 1 << uint(slot)
}

// lowOnes returns a mask of the n lowest bits (n in 1..64).
func lowOnes(n uint) uint64 {
	return ^uint64(0) >> (64 - n)
}

// findMin locates the earliest live event without moving the cursor,
// recycling any cancelled records it encounters, and memoizes the
// result for repeated peeks. The second result is false when the queue
// holds no live events.
func (e *Engine) findMin() (Stamp, bool) {
	if e.peekValid {
		return e.peekStamp, true
	}
	// Ready bucket first: it holds events at exactly cur, which precede
	// everything in the wheel (> cur) and the overflow (beyond horizon).
	for len(e.ready) > 0 {
		top := e.ready[0]
		if e.slab[top].state != recCancelled {
			r := &e.slab[top]
			e.peekStamp = Stamp{At: r.at, Dom: r.dom, Seq: r.seq}
			e.peekValid = true
			return e.peekStamp, true
		}
		e.ready, _ = e.heapPopFrom(e.ready)
		e.freeRec(top)
	}
	// Wheel levels bottom-up: within one level, lower slot index means
	// earlier time (all of a level's events share the cursor's
	// higher-level window), and any occupied lower level precedes any
	// occupied higher one.
	for lvl := 0; lvl < wheelLevels; lvl++ {
		if e.occ[lvl] == 0 {
			continue
		}
		curSlot := uint(uint64(e.cur)>>(uint(lvl)*wheelBits)) & wheelMask
		mask := e.occ[lvl] &^ lowOnes(curSlot+1)
		for mask != 0 {
			slot := bits.TrailingZeros64(mask)
			if st, ok := e.scanSlot(lvl, slot); ok {
				e.peekStamp = st
				e.peekValid = true
				return st, true
			}
			mask &^= 1 << uint(slot) // slot held only cancelled records
		}
	}
	// Overflow heap last: everything there is beyond the wheel horizon,
	// hence after every wheel event.
	for len(e.ovfl) > 0 {
		top := e.ovfl[0]
		if e.slab[top].state != recCancelled {
			r := &e.slab[top]
			e.peekStamp = Stamp{At: r.at, Dom: r.dom, Seq: r.seq}
			e.peekValid = true
			return e.peekStamp, true
		}
		e.ovfl, _ = e.heapPopFrom(e.ovfl)
		e.freeRec(top)
	}
	return Stamp{}, false
}

// scanSlot walks one wheel slot's list, unlinking and recycling
// cancelled records, and returns the minimum live stamp. When no live
// record remains the slot empties and its occupancy bit clears.
func (e *Engine) scanSlot(lvl, slot int) (Stamp, bool) {
	pos := lvl*wheelSlots + slot
	var best Stamp
	found := false
	prev := uint32(0)
	cur := e.slotHead[pos]
	for cur != 0 {
		idx := cur - 1
		rec := &e.slab[idx]
		next := rec.next
		if rec.state == recCancelled {
			if prev == 0 {
				e.slotHead[pos] = next
			} else {
				e.slab[prev-1].next = next
			}
			e.freeRec(idx)
			cur = next
			continue
		}
		st := Stamp{At: rec.at, Dom: rec.dom, Seq: rec.seq}
		if !found || st.Less(best) {
			best = st
			found = true
		}
		prev = cur
		cur = next
	}
	if e.slotHead[pos] == 0 {
		e.occ[lvl] &^= 1 << uint(slot)
	}
	return best, found
}

// drainSlotFreed empties one wheel slot whose records the cursor is
// about to pass. Every record there must already be cancelled — a live
// one would order before the advance target, contradicting the caller's
// T <= minimum-live-time guarantee.
func (e *Engine) drainSlotFreed(lvl, slot int) {
	pos := lvl*wheelSlots + slot
	cur := e.slotHead[pos]
	for cur != 0 {
		idx := cur - 1
		rec := &e.slab[idx]
		if rec.state != recCancelled {
			panic(fmt.Sprintf("sim: timing wheel passed a live event at t=%v (cursor advance past its slot)", rec.at))
		}
		cur = rec.next
		e.freeRec(idx)
	}
	e.slotHead[pos] = 0
}

// detachSlot moves one wheel slot's whole list into the scratch buffer
// for re-placement against the new cursor.
func (e *Engine) detachSlot(lvl, slot int) {
	pos := lvl*wheelSlots + slot
	cur := e.slotHead[pos]
	for cur != 0 {
		idx := cur - 1
		e.scratch = append(e.scratch, idx)
		cur = e.slab[idx].next
	}
	e.slotHead[pos] = 0
	e.occ[lvl] &^= 1 << uint(slot)
}

// advanceTo moves the wheel cursor to T, which must not precede any live
// event (T is either the peeked minimum's time or a RunUntil deadline
// below it). Slots the cursor passes hold only cancelled records and are
// recycled; the slot containing T at the divergence level cascades its
// records toward lower levels (or the ready heap), and overflow events
// that fall inside the new horizon migrate into the wheel. Each live
// record re-places at a strictly lower level than before, so the total
// cascade work per event is bounded by the level count — amortized O(1)
// per fired event.
func (e *Engine) advanceTo(T Time) {
	if T <= e.cur {
		return
	}
	hb := bits.Len64(uint64(e.cur)^uint64(T)) - 1
	hl := hb / wheelBits
	e.scratch = e.scratch[:0]
	if hl >= wheelLevels {
		// The cursor leaves the entire wheel horizon: every level empties.
		for lvl := 0; lvl < wheelLevels; lvl++ {
			occ := e.occ[lvl]
			for occ != 0 {
				slot := bits.TrailingZeros64(occ)
				occ &^= 1 << uint(slot)
				e.drainSlotFreed(lvl, slot)
			}
			e.occ[lvl] = 0
		}
	} else {
		// Levels below the divergence level: the cursor leaves their whole
		// window, so every occupied slot is passed.
		for lvl := 0; lvl < hl; lvl++ {
			occ := e.occ[lvl]
			for occ != 0 {
				slot := bits.TrailingZeros64(occ)
				occ &^= 1 << uint(slot)
				e.drainSlotFreed(lvl, slot)
			}
			e.occ[lvl] = 0
		}
		// Divergence level: slots strictly between the old and new cursor
		// positions are passed; T's own slot cascades down.
		curSlot := uint(uint64(e.cur)>>(uint(hl)*wheelBits)) & wheelMask
		tSlot := uint(uint64(T)>>(uint(hl)*wheelBits)) & wheelMask
		if between := e.occ[hl] & (lowOnes(tSlot) &^ lowOnes(curSlot+1)); between != 0 {
			for m := between; m != 0; {
				slot := bits.TrailingZeros64(m)
				m &^= 1 << uint(slot)
				e.drainSlotFreed(hl, slot)
			}
			e.occ[hl] &^= between
		}
		if e.occ[hl]&(1<<tSlot) != 0 {
			e.detachSlot(hl, int(tSlot))
		}
	}
	// Overflow migration: events now within T's horizon re-place; the
	// heap order guarantees everything staying put is still beyond it.
	for len(e.ovfl) > 0 {
		top := e.ovfl[0]
		rec := &e.slab[top]
		if rec.state == recCancelled {
			e.ovfl, _ = e.heapPopFrom(e.ovfl)
			e.freeRec(top)
			continue
		}
		if (uint64(rec.at)^uint64(T))>>horizonBits != 0 {
			break
		}
		e.ovfl, _ = e.heapPopFrom(e.ovfl)
		e.scratch = append(e.scratch, top)
	}
	e.cur = T
	for _, idx := range e.scratch {
		rec := &e.slab[idx]
		if rec.state == recCancelled {
			e.freeRec(idx)
			continue
		}
		e.place(idx, rec.at)
	}
	e.scratch = e.scratch[:0]
}

// --- 4-ary min-heaps over slab indices --------------------------------
//
// The ready bucket (events at exactly the cursor time, ordered by
// (at, dom, seq)) and the overflow bucket (events beyond the wheel
// horizon) are small 4-ary heaps: shallow, cache-friendly, and shared
// with nothing. Ordering pairs are unique (a domain never reuses a
// sequence number), so the comparator is a total order; serial engines
// keep dom == 0 everywhere, making pop order exactly the historical
// (at, seq) firing order.

const heapArity = 4

func (e *Engine) heapLess(a, b uint32) bool {
	ra, rb := &e.slab[a], &e.slab[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	if ra.dom != rb.dom {
		return ra.dom < rb.dom
	}
	return ra.seq < rb.seq
}

func (e *Engine) heapPushTo(h []uint32, idx uint32) []uint32 {
	h = append(h, idx)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.heapLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func (e *Engine) heapPopFrom(h []uint32) ([]uint32, uint32) {
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	if n > 1 {
		e.heapSiftDown(h, 0)
	}
	return h, root
}

func (e *Engine) heapSiftDown(h []uint32, i int) {
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.heapLess(h[c], h[min]) {
				min = c
			}
		}
		if !e.heapLess(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
