package sim

import (
	"testing"
)

// FuzzEngineMatchesHeapRef drives the timing-wheel engine and the old
// container/heap reference (refEngine, slab_test.go) through the same
// byte-decoded operation stream and requires identical observable
// behaviour: the same fire times in the same order, the same Cancel
// results, and the same pending count and clock at every step. The
// decoder is built to stress the wheel's seams — near events exercise
// level-0 slots and the ready heap, far-future events start in the
// overflow heap and migrate across every level on their way down, and
// indexed cancels hit records wherever they currently live.
//
// Op stream: each op byte selects by op%4, data bytes follow.
//
//	0: schedule near    (1 data byte d: delay = d ns, level 0..2)
//	1: schedule far     (2 data bytes: delay = hi<<40 | lo<<32 ps,
//	                     up to ~2^48 — straddles the overflow horizon)
//	2: cancel           (1 data byte k: cancel the k-th outstanding id)
//	3: step both engines
func FuzzEngineMatchesHeapRef(f *testing.F) {
	// Committed seeds (also under testdata/fuzz/FuzzEngineMatchesHeapRef):
	// far-future scheduling with interleaved fires, and mass cancellation
	// of a scheduled batch before draining.
	f.Add([]byte("0A0B0C333333"))                          // near events, drain
	f.Add([]byte("1\xff\xff1\x80\x001\x00\x01333333"))     // beyond, at and below the horizon
	f.Add([]byte("0A0B0C0D0E2\x002\x012\x022\x032\x0433")) // schedule 5, cancel all, step
	f.Add([]byte("1\xff\xff0A2\x0032\x0133"))              // cancel far, fire near, stale cancel

	f.Fuzz(func(t *testing.T, ops []byte) {
		e := NewEngine()
		ref := &refEngine{}

		type firing struct {
			at  Time
			seq uint64
		}
		var got, want []firing
		var ids []EventID
		var refs []*refEvent

		sink := firingRecorder{record: func(at Time, _ uint64) {
			got = append(got, firing{at: at})
		}}

		stepBoth := func() {
			at, seq, ok := ref.step()
			if ok {
				want = append(want, firing{at, seq})
			}
			if e.Step() != ok {
				t.Fatalf("Step disagreement: ref fired=%v (wheel pending=%d)", ok, e.Pending())
			}
		}

		i := 0
		next := func() (byte, bool) {
			if i >= len(ops) {
				return 0, false
			}
			b := ops[i]
			i++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0:
				d, ok := next()
				if !ok {
					break
				}
				delay := Duration(d) * Nanosecond
				ids = append(ids, e.ScheduleEvent(delay, sink, 0))
				refs = append(refs, ref.schedule(delay))
			case 1:
				hi, ok := next()
				if !ok {
					break
				}
				lo, _ := next()
				delay := Duration(hi)<<40 | Duration(lo)<<32
				ids = append(ids, e.ScheduleEvent(delay, sink, 0))
				refs = append(refs, ref.schedule(delay))
			case 2:
				k, ok := next()
				if !ok {
					break
				}
				if len(ids) == 0 {
					continue
				}
				j := int(k) % len(ids)
				gc := e.Cancel(ids[j])
				rc := ref.cancel(refs[j])
				if gc != rc {
					t.Fatalf("Cancel disagreement at op %d: wheel=%v ref=%v", i, gc, rc)
				}
			case 3:
				stepBoth()
			}
			if e.Pending() != len(ref.queue) {
				t.Fatalf("pending %d, reference %d", e.Pending(), len(ref.queue))
			}
			if e.Now() != ref.now {
				t.Fatalf("clock %v, reference %v", e.Now(), ref.now)
			}
		}
		// Drain both and compare the complete firing sequence. The final
		// empty-queue step makes both report exhaustion AND sweeps any
		// still-queued cancelled records (cancellation is lazy: a record
		// nobody peeks at again stays in its slot until a scan frees it).
		for len(ref.queue) > 0 || e.Pending() > 0 {
			stepBoth()
		}
		stepBoth()
		if len(got) != len(want) {
			t.Fatalf("fired %d events, reference fired %d", len(got), len(want))
		}
		for j := range got {
			if got[j].at != want[j].at {
				t.Fatalf("firing %d at %v, reference %v", j, got[j].at, want[j].at)
			}
		}
		if len(e.free) != len(e.slab) {
			t.Fatalf("free list (%d) does not cover the slab (%d) after drain", len(e.free), len(e.slab))
		}
	})
}
