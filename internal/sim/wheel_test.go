package sim

import (
	"testing"
)

// These tests pin the timing-wheel internals through the public API at
// the geometry's seams: same-timestamp events that land in different
// wheel levels because they were inserted at different cursor positions,
// slot recycling of a record that migrated between levels before being
// cancelled, and RunUntil deadlines that sit exactly on slot and horizon
// boundaries.

// claimingSink records cross-domain deliveries in fire order, reclaiming
// the parked message as the Deliver contract requires.
type claimingSink struct{ seqs []uint64 }

func (s *claimingSink) HandleEvent(e *Engine, _ Time, payload uint64) {
	m := e.ClaimMsg(payload)
	s.seqs = append(s.seqs, m.Seq)
}

// TestWheelSameTickOrderAcrossLevels schedules three events for one
// absolute timestamp from three different cursor positions, so they
// enter the structure at three different places — a level-2 slot, a
// level-1 slot and the ready heap — plus a cross-domain delivery with a
// non-zero domain tag. All four must still fire in (at, dom, seq) order.
func TestWheelSameTickOrderAcrossLevels(t *testing.T) {
	e := NewEngine()
	const T = Time(0x1040) // diverges from cursor 0 at bit 12: level 2

	var order []string
	at := func(name string) Handler {
		return func(_ *Engine, now Time) {
			if now != T {
				t.Fatalf("%s fired at %v, want %v", name, now, T)
			}
			order = append(order, name)
		}
	}

	// seq 0, inserted with cur=0: level 2.
	if _, err := e.ScheduleAt(T, at("lvl2")); err != nil {
		t.Fatal(err)
	}
	// A filler at 0x1000 advances the cursor into T's level-2 slot; the
	// lvl2 record cascades down to level 1 when it fires.
	e.Schedule(Duration(0x1000), func(*Engine, Time) {}) // seq 1
	if !e.Step() {
		t.Fatal("filler did not fire")
	}
	// seq 2, inserted with cur=0x1000: T now diverges at bit 6, level 1.
	if _, err := e.ScheduleAt(T, at("lvl1")); err != nil {
		t.Fatal(err)
	}
	// A cross-domain delivery at the same tick with dom=1 and a sequence
	// number below every scheduled one: dom orders after all dom-0 events
	// regardless of seq.
	sink := &claimingSink{}
	e.Deliver(Msg{Stamp: Stamp{At: T, Dom: 1, Seq: 0}, Sink: sink})
	// Fire the tick's minimum — the level-2 record, which the cursor
	// advance cascades into the ready heap first. The cursor now sits at
	// exactly T, so the last same-tick insert goes straight to ready.
	if !e.Step() {
		t.Fatal("no event fired at T")
	}
	if len(order) != 1 || order[0] != "lvl2" {
		t.Fatalf("first event at T was %v, want lvl2 (lowest seq)", order)
	}
	if _, err := e.ScheduleAt(T, at("ready")); err != nil { // seq 3
		t.Fatal(err)
	}

	e.Run()
	want := []string{"lvl2", "lvl1", "ready"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v (seq ties must break by schedule order across levels)", order, want)
		}
	}
	// dom=1 orders after every dom=0 event at the same tick, so the
	// delivery fired last of all.
	if len(sink.seqs) != 1 || sink.seqs[0] != 0 {
		t.Fatalf("delivery seqs = %v, want [0]", sink.seqs)
	}
	if e.Now() != T || e.Pending() != 0 {
		t.Fatalf("now=%v pending=%d after drain", e.Now(), e.Pending())
	}
}

// TestWheelCancelAfterLevelMigration cancels an event after the cursor
// advance has already cascaded its record from a level-2 slot into a
// level-1 slot, drains the queue so the record is recycled during a slot
// scan, and then reuses the slot: the stale EventID must stay dead and
// the slot's new occupant must fire untouched.
func TestWheelCancelAfterLevelMigration(t *testing.T) {
	e := NewEngine()
	const T = Time(0x1040)

	far := e.Schedule(Duration(T), func(*Engine, Time) { t.Fatal("cancelled event fired") })
	e.Schedule(Duration(0x1000), func(*Engine, Time) {})
	if !e.Step() { // cursor -> 0x1000; far migrates level 2 -> level 1
		t.Fatal("filler did not fire")
	}
	if !e.Cancel(far) {
		t.Fatal("migrated event did not cancel")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after cancel, want 0", e.Pending())
	}
	// Draining scans the level-1 slot, recycles the cancelled record and
	// must report an empty queue rather than firing it.
	if e.Step() {
		t.Fatal("Step fired something in a queue holding only a cancelled record")
	}
	if len(e.free) != len(e.slab) {
		t.Fatalf("free list (%d) does not cover the slab (%d) after drain", len(e.free), len(e.slab))
	}

	// Reuse the recycled slot and check the stale ID stays inert.
	fired := false
	fresh := e.Schedule(1*Nanosecond, func(*Engine, Time) { fired = true })
	if e.Cancel(far) {
		t.Fatal("stale EventID cancelled the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("slot's new occupant did not fire")
	}
	if e.Cancel(fresh) {
		t.Fatal("Cancel after fire returned true")
	}
}

// TestRunUntilOnWheelBoundaries lands RunUntil deadlines exactly on slot
// and level boundaries (powers of 64 in picoseconds) and on the overflow
// horizon itself. At each boundary: an event at the deadline fires, an
// event one tick past it stays queued, and the clock lands exactly on
// the deadline.
func TestRunUntilOnWheelBoundaries(t *testing.T) {
	boundaries := []Time{
		1 << wheelBits,                // level 0/1 seam
		1 << (2 * wheelBits),          // level 1/2 seam
		1 << (3 * wheelBits),          // level 2/3 seam
		1 << horizonBits,              // wheel horizon: the event starts in overflow
		1<<horizonBits + 1<<wheelBits, // one level-1 step past the horizon
	}
	e := NewEngine()
	var prev Time
	for _, b := range boundaries {
		firedAt := Time(-1)
		if _, err := e.ScheduleAt(b, func(_ *Engine, now Time) { firedAt = now }); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ScheduleAt(b+1, func(*Engine, Time) {}); err != nil {
			t.Fatal(err)
		}
		if n := e.RunUntil(b); n != 1 {
			t.Fatalf("RunUntil(%#x) fired %d events, want 1", uint64(b), n)
		}
		if firedAt != b {
			t.Fatalf("boundary event fired at %v, want %#x", firedAt, uint64(b))
		}
		if e.Now() != b {
			t.Fatalf("clock = %v after RunUntil(%#x)", e.Now(), uint64(b))
		}
		if e.Pending() != 1 {
			t.Fatalf("pending = %d at boundary %#x, want 1 (the b+1 event)", e.Pending(), uint64(b))
		}
		// Clear the straggler before the next boundary.
		if n := e.RunUntil(b + 1); n != 1 {
			t.Fatalf("straggler run fired %d, want 1", n)
		}
		prev = b + 1
	}
	if e.Now() != prev || e.Pending() != 0 {
		t.Fatalf("now=%v pending=%d after the boundary sweep", e.Now(), e.Pending())
	}
}

// TestRunUntilBoundaryWithEmptyWindow: a deadline exactly on a level seam
// with no event anywhere inside the window still advances the clock and
// cursor to the seam, and a subsequent schedule relative to it fires at
// the right time.
func TestRunUntilBoundaryWithEmptyWindow(t *testing.T) {
	e := NewEngine()
	const seam = Time(1 << (2 * wheelBits))
	if _, err := e.ScheduleAt(seam*4, func(*Engine, Time) {}); err != nil {
		t.Fatal(err)
	}
	if n := e.RunUntil(seam); n != 0 {
		t.Fatalf("empty window fired %d events", n)
	}
	if e.Now() != seam {
		t.Fatalf("clock = %v, want %v", e.Now(), seam)
	}
	firedAt := Time(-1)
	e.Schedule(1*Picosecond, func(_ *Engine, now Time) { firedAt = now })
	if n := e.RunUntil(seam + 1); n != 1 {
		t.Fatalf("fired %d events, want 1", n)
	}
	if firedAt != seam+1 {
		t.Fatalf("post-seam event fired at %v, want %v", firedAt, seam+1)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

// TestRunUntilDrainsCancelledSlots pins the cursor-advance reclamation
// path: cancelled records parked in wheel slots the cursor passes over
// (including a jump past the entire 2^48 ps horizon) are freed during
// the advance rather than leaking until some later scan.
func TestRunUntilDrainsCancelledSlots(t *testing.T) {
	e := NewEngine()
	nop := func(*Engine, Time) {}

	// Cancelled records across several levels, then a deadline beyond all
	// of them with nothing live: every passed slot must drain.
	var ids []EventID
	for _, d := range []Duration{0x40, 0x1000, 0x40000, 0x1000000} {
		ids = append(ids, e.Schedule(d, func(*Engine, Time) { t.Fatal("cancelled event fired") }))
	}
	for _, id := range ids {
		if !e.Cancel(id) {
			t.Fatal("cancel failed")
		}
	}
	if n := e.RunUntil(Time(0x2000000)); n != 0 {
		t.Fatalf("RunUntil fired %d events, want 0", n)
	}
	if len(e.free) != len(e.slab) {
		t.Fatalf("free list (%d) does not cover the slab (%d) after cursor advance",
			len(e.free), len(e.slab))
	}

	// Jump past the whole wheel horizon with a cancelled record inside it
	// and a live one beyond it (in the overflow heap): the advance drains
	// every level, migrates the overflow event in, and fires it.
	stale := e.Schedule(Duration(0x40), func(*Engine, Time) { t.Fatal("cancelled event fired") })
	fired := false
	e.Schedule(Duration(1)<<horizonBits+Duration(0x40), func(*Engine, Time) { fired = true })
	if !e.Cancel(stale) {
		t.Fatal("cancel failed")
	}
	if n := e.RunUntil(e.Now() + Time(1)<<horizonBits + Time(0x80)); n != 1 {
		t.Fatalf("RunUntil fired %d events, want 1", n)
	}
	if !fired {
		t.Fatal("overflow event did not fire after horizon jump")
	}
	if len(e.free) != len(e.slab) {
		t.Fatalf("free list (%d) does not cover the slab (%d) after horizon jump",
			len(e.free), len(e.slab))
	}
	e.Schedule(1*Nanosecond, nop)
	if !e.Step() {
		t.Fatal("engine dead after horizon jump")
	}
}
