package sim

import (
	"runtime"
	"testing"
)

// relayNode is a synthetic sharded workload: every node fires a train of
// local ticks, forwards each tick to its ring neighbour with a TTL, and
// folds every event it fires into an order-sensitive hash. Comparing the
// hashes across execution modes checks that per-domain firing order (and
// therefore state) is identical however the coordinator interleaves the
// domains.
type relayNode struct {
	d     *Domain
	next  *Port
	peer  *relayNode
	inbox relayInbox
	step  Duration

	fired int
	hash  uint64
}

type relayInbox struct{ n *relayNode }

const (
	relayTick uint8 = iota
	relayMsg
)

func (n *relayNode) fold(now Time, kind uint8, p0 uint64) {
	h := n.hash
	h = (h ^ uint64(now)) * 1099511628211
	h = (h ^ uint64(kind)) * 1099511628211
	h = (h ^ p0) * 1099511628211
	n.hash = h
	n.fired++
}

// HandleEvent is the node's local tick: forward it with a hop budget.
func (n *relayNode) HandleEvent(e *Engine, now Time, payload uint64) {
	n.fold(now, relayTick, payload)
	ttl := payload & 0xffff
	if ttl > 0 {
		n.next.Send(&n.peer.inbox, n.step+Duration(payload%5)*Nanosecond, relayMsg, payload-1, 0, 0, 0)
	}
}

// HandleEvent receives a forwarded message and keeps relaying it.
func (ib relayInbox) HandleEvent(e *Engine, now Time, payload uint64) {
	n := ib.n
	m := e.ClaimMsg(payload)
	n.fold(now, relayMsg, m.P0)
	if ttl := m.P0 & 0xffff; ttl > 0 {
		// Alternate between a local follow-up and a direct forward, so the
		// workload mixes intra- and cross-domain scheduling.
		if m.P0%2 == 0 {
			e.ScheduleEvent(Duration(ttl)*Nanosecond, n, m.P0-1)
		} else {
			n.next.Send(&n.peer.inbox, n.step, relayMsg, m.P0-1, 0, 0, 0)
		}
	}
}

// buildRelayRing wires nodes domains in a ring with the given lookahead
// and ring capacity, schedules ticks ticks per node, and returns the
// nodes ready to run. Seal has been called.
func buildRelayRing(nodes, ticks int, look Duration, cap int) (*ShardedEngine, []*relayNode) {
	se := NewSharded()
	ns := make([]*relayNode, nodes)
	for i := range ns {
		ns[i] = &relayNode{d: se.AddDomain(), step: look}
		ns[i].inbox = relayInbox{n: ns[i]}
	}
	for i, n := range ns {
		peer := ns[(i+1)%nodes]
		n.peer = peer
		n.next = se.Connect(n.d, peer.d, look, cap)
	}
	se.Seal()
	for i, n := range ns {
		for t := 0; t < ticks; t++ {
			n.d.Engine().ScheduleEvent(Duration(t*97+i*13)*Nanosecond, n, uint64(16|i<<20|t<<24))
		}
	}
	return se, ns
}

// fingerprint summarizes a finished run for cross-mode comparison.
func fingerprint(ns []*relayNode) (fired []int, hashes []uint64) {
	for _, n := range ns {
		fired = append(fired, n.fired)
		hashes = append(hashes, n.hash)
	}
	return
}

// TestParallelMatchesStepReference runs the same 8-domain relay both
// through the single-threaded Step merge and through the goroutine-based
// conservative-lookahead Run, and requires identical per-domain event
// counts and order-sensitive hashes. Under -race this is also the data
// race check for the parallel coordinator.
func TestParallelMatchesStepReference(t *testing.T) {
	const nodes, ticks = 8, 40
	look := 100 * Nanosecond

	ref, refNodes := buildRelayRing(nodes, ticks, look, 8)
	if !ref.Parallel() {
		t.Fatal("positive-lookahead ring should seal parallel")
	}
	for ref.Step() {
	}
	wantFired, wantHash := fingerprint(refNodes)

	for trial := 0; trial < 3; trial++ {
		se, ns := buildRelayRing(nodes, ticks, look, 8)
		se.ForceThreads() // bypass the single-P merged fallback: race the goroutines
		se.Run()
		gotFired, gotHash := fingerprint(ns)
		for i := range ns {
			if gotFired[i] != wantFired[i] || gotHash[i] != wantHash[i] {
				t.Fatalf("trial %d domain %d: fired=%d hash=%#x, want fired=%d hash=%#x",
					trial, i, gotFired[i], gotHash[i], wantFired[i], wantHash[i])
			}
		}
		if se.Fired() != ref.Fired() {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, se.Fired(), ref.Fired())
		}
	}
}

// TestLockstepMatchesStepReference seals the same ring with one
// zero-lookahead edge (forcing lockstep) and checks Run against Step.
func TestLockstepMatchesStepReference(t *testing.T) {
	build := func() (*ShardedEngine, []*relayNode) {
		se := NewSharded()
		ns := make([]*relayNode, 4)
		for i := range ns {
			ns[i] = &relayNode{d: se.AddDomain(), step: 50 * Nanosecond}
			ns[i].inbox = relayInbox{n: ns[i]}
		}
		for i, n := range ns {
			peer := ns[(i+1)%len(ns)]
			n.peer = peer
			look := 50 * Nanosecond
			if i == 2 {
				look = 0 // instantaneous coupling: whole topology drops to lockstep
				n.step = 0
			}
			n.next = se.Connect(n.d, peer.d, look, 8)
		}
		se.Seal()
		for i, n := range ns {
			for t := 0; t < 30; t++ {
				n.d.Engine().ScheduleEvent(Duration(t*61+i*7)*Nanosecond, n, uint64(12|i<<20|t<<24))
			}
		}
		return se, ns
	}

	ref, refNodes := build()
	if ref.Parallel() {
		t.Fatal("zero-lookahead edge should seal lockstep")
	}
	for ref.Step() {
	}
	wantFired, wantHash := fingerprint(refNodes)

	se, ns := build()
	se.Run()
	gotFired, gotHash := fingerprint(ns)
	for i := range ns {
		if gotFired[i] != wantFired[i] || gotHash[i] != wantHash[i] {
			t.Fatalf("domain %d: fired=%d hash=%#x, want fired=%d hash=%#x",
				i, gotFired[i], gotHash[i], wantFired[i], wantHash[i])
		}
	}
}

// TestLockstepSharesSerialStamps checks the structural property the
// byte-identity guarantee rests on: engines sealed into lockstep draw
// from one shared sequence counter with the zero domain tag, so a
// cross-domain send consumes exactly the sequence number a serial
// ScheduleEvent would have.
func TestLockstepSharesSerialStamps(t *testing.T) {
	se := NewSharded()
	a, b := se.AddDomain(), se.AddDomain()
	p := se.Connect(a, b, 0, 4)
	se.Seal()

	a.Engine().ScheduleEvent(0, nopSink{}, 0) // seq 0
	p.Send(nopSink{}, 5*Nanosecond, 0, 0, 0, 0, 0)
	a.Engine().ScheduleEvent(0, nopSink{}, 0) // seq 2

	st, ok := b.Engine().PeekStamp()
	if !ok {
		t.Fatal("send did not deliver")
	}
	if st.Seq != 1 || st.Dom != 0 || st.At != 5*Time(Nanosecond) {
		t.Fatalf("delivered stamp = %+v, want {At:5ns Dom:0 Seq:1}", st)
	}
	if st2, _ := a.Engine().PeekStamp(); st2.Seq != 0 {
		t.Fatalf("first local event seq = %d, want 0", st2.Seq)
	}
}

// nopSink backs events that are scheduled but never fired in a test.
type nopSink struct{}

func (nopSink) HandleEvent(*Engine, Time, uint64) {}

// claimSink fires delivered messages and reclaims their parked slots.
type claimSink struct{}

func (claimSink) HandleEvent(e *Engine, now Time, payload uint64) { e.ClaimMsg(payload) }

// TestLookaheadBound pins the window math: a domain may advance strictly
// below min over in-edges of (effective sender frontier + lookahead),
// where the effective frontier closes transitively over idle domains.
func TestLookaheadBound(t *testing.T) {
	se := NewSharded()
	a, b, c := se.AddDomain(), se.AddDomain(), se.AddDomain()
	se.Connect(a, b, 10*Nanosecond, 4)
	se.Connect(b, c, 20*Nanosecond, 4)
	se.Connect(c, a, 30*Nanosecond, 4)
	se.Seal()

	a.frontier = 100 * Time(Nanosecond)
	b.frontier = maxTime // idle: everything it ever fires is caused by a
	c.frontier = maxTime

	if got, want := b.bound(), Time(110*Nanosecond); got != want {
		t.Errorf("bound(b) = %v, want %v", got, want)
	}
	// c's only in-edge is from idle b, whose effective frontier closes
	// through a: ef(b) = 100 + 10, so bound(c) = 110 + 20.
	if got, want := c.bound(), Time(130*Nanosecond); got != want {
		t.Errorf("bound(c) = %v, want %v", got, want)
	}
	// a's own bound closes all the way around the ring: 100+10+20+30.
	if got, want := a.bound(), Time(160*Nanosecond); got != want {
		t.Errorf("bound(a) = %v, want %v", got, want)
	}

	// With b holding earlier local work, its own frontier takes over.
	b.frontier = 50 * Time(Nanosecond)
	if got, want := c.bound(), Time(70*Nanosecond); got != want {
		t.Errorf("bound(c) with busy b = %v, want %v", got, want)
	}
}

// TestSendBelowLookaheadPanics pins the contract that makes the window
// math sound: no message may undercut its edge's declared minimum.
func TestSendBelowLookaheadPanics(t *testing.T) {
	se := NewSharded()
	a, b := se.AddDomain(), se.AddDomain()
	p := se.Connect(a, b, 10*Nanosecond, 4)
	se.Connect(b, a, 10*Nanosecond, 4)
	se.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("send below edge lookahead did not panic")
		}
	}()
	p.Send(nopSink{}, 5*Nanosecond, 0, 0, 0, 0, 0)
}

// TestDeliverIntoPastPanics pins the runtime detector for lookahead
// violations: a message behind the destination clock is a model bug.
func TestDeliverIntoPastPanics(t *testing.T) {
	e := NewEngine()
	e.ScheduleEvent(10*Nanosecond, nopSink{}, 0)
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("delivery into the past did not panic")
		}
	}()
	e.Deliver(Msg{Stamp: Stamp{At: 5 * Time(Nanosecond)}, Sink: nopSink{}})
}

// TestSPSCBackpressure floods a two-node parallel topology through
// rings of capacity 2 and checks nothing is lost or reordered: the
// producer blocks on the full ring until the consumer drains, and the
// result still matches the single-threaded reference. Under -race this
// doubles as the handoff race check.
func TestSPSCBackpressure(t *testing.T) {
	const ticks = 200
	look := 10 * Nanosecond

	ref, refNodes := buildRelayRing(2, ticks, look, 2)
	for ref.Step() {
	}
	wantFired, wantHash := fingerprint(refNodes)

	se, ns := buildRelayRing(2, ticks, look, 2)
	se.ForceThreads() // backpressure only exists on the threaded path
	se.Run()
	gotFired, gotHash := fingerprint(ns)
	for i := range ns {
		if gotFired[i] != wantFired[i] || gotHash[i] != wantHash[i] {
			t.Fatalf("domain %d: fired=%d hash=%#x, want fired=%d hash=%#x",
				i, gotFired[i], gotHash[i], wantFired[i], wantHash[i])
		}
	}
	if se.Fired() == 0 {
		t.Fatal("nothing fired")
	}
}

// TestParallelMergedFallback pins the single-P execution strategy: with
// GOMAXPROCS=1 a parallel-mode Run (without ForceThreads) uses the
// merged single-threaded execution — identical outcome to the Step
// reference, zero coordination cost. Both the two-domain fast loop and
// the generic N-domain merge are exercised.
func TestParallelMergedFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, nodes := range []int{2, 8} {
		ref, refNodes := buildRelayRing(nodes, 40, 100*Nanosecond, 8)
		if !ref.Parallel() {
			t.Fatal("positive-lookahead ring should seal parallel")
		}
		for ref.Step() {
		}
		wantFired, wantHash := fingerprint(refNodes)

		se, ns := buildRelayRing(nodes, 40, 100*Nanosecond, 8)
		se.Run()
		gotFired, gotHash := fingerprint(ns)
		for i := range ns {
			if gotFired[i] != wantFired[i] || gotHash[i] != wantHash[i] {
				t.Fatalf("%d nodes, domain %d: fired=%d hash=%#x, want fired=%d hash=%#x",
					nodes, i, gotFired[i], gotHash[i], wantFired[i], wantHash[i])
			}
		}
	}
}

// TestDeliverZeroAllocs pins the parked-message pool: steady-state
// cross-domain handoff must not allocate.
func TestDeliverZeroAllocs(t *testing.T) {
	e := NewEngine()
	var seq uint64
	// Warm the slab and message pool.
	for i := 0; i < 64; i++ {
		e.Deliver(Msg{Stamp: Stamp{At: e.Now(), Seq: seq}, Sink: claimSink{}, P0: 1})
		seq++
		e.Step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.Deliver(Msg{Stamp: Stamp{At: e.Now(), Seq: seq}, Sink: claimSink{}, P0: 1})
		seq++
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Deliver+Step allocated %.1f times per run, want 0", allocs)
	}
}
