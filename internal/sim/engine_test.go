package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*Nanosecond, func(*Engine, Time) { got = append(got, 3) })
	e.Schedule(10*Nanosecond, func(*Engine, Time) { got = append(got, 1) })
	e.Schedule(20*Nanosecond, func(*Engine, Time) { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != Time(30*Nanosecond) {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestTieBreakIsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Nanosecond, func(*Engine, Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick Handler
	tick = func(e *Engine, now Time) {
		ticks = append(ticks, now)
		if len(ticks) < 5 {
			e.Schedule(7*Nanosecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		want := Time(int64(i) * 7 * int64(Nanosecond))
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(10*Nanosecond, func(*Engine, Time) { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel should return false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1*Nanosecond, func(*Engine, Time) {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel after fire should return false")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i)*Nanosecond, func(e *Engine, _ Time) {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("fired %d events before stop, want 4", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Microsecond, func(_ *Engine, now Time) { fired = append(fired, now) })
	}
	n := e.RunUntil(Time(5 * Microsecond))
	if n != 5 {
		t.Fatalf("RunUntil fired %d, want 5", n)
	}
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("clock = %v, want 5us", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	// RunUntil advances the clock to the deadline even with no event there.
	e.RunUntil(Time(7500 * Nanosecond))
	if e.Now() != Time(7500*Nanosecond) {
		t.Fatalf("clock = %v, want 7.5us", e.Now())
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.Schedule(Duration(i), func(*Engine, Time) {})
	}
	if n := e.RunLimit(17); n != 17 {
		t.Fatalf("RunLimit fired %d, want 17", n)
	}
}

func TestScheduleAtPast(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Nanosecond, func(*Engine, Time) {})
	e.Run()
	if _, err := e.ScheduleAt(Time(5*Nanosecond), func(*Engine, Time) {}); err == nil {
		t.Fatal("ScheduleAt in the past should error")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func(*Engine, Time) {})
}

// Property: any batch of randomly timed events fires in nondecreasing
// time order, and same-time events fire in schedule order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			e.Schedule(Duration(d)*Nanosecond, func(_ *Engine, now Time) {
				fired = append(fired, firing{now, i})
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestPropertyCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		n := 1 + rng.Intn(64)
		firedSet := make(map[int]bool)
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = e.Schedule(Duration(rng.Intn(1000))*Nanosecond, func(*Engine, Time) { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(ids[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			if cancelled[i] && firedSet[i] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, i)
			}
			if !cancelled[i] && !firedSet[i] {
				t.Fatalf("trial %d: live event %d did not fire", trial, i)
			}
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0"},
		{500, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{Duration(61680), "61.680ns"},
		{3 * Microsecond, "3.000us"},
		{Second, "1s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestFromNanos(t *testing.T) {
	if d := FromNanos(61.68); d != 61680 {
		t.Fatalf("FromNanos(61.68) = %d ps, want 61680", int64(d))
	}
	if d := FromNanos(0.5); d != 500 {
		t.Fatalf("FromNanos(0.5) = %d ps, want 500", int64(d))
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100 * Nanosecond)
	t1 := t0.Add(50 * Nanosecond)
	if t1.Sub(t0) != 50*Nanosecond {
		t.Fatalf("Sub = %v, want 50ns", t1.Sub(t0))
	}
	if t1.Nanoseconds() != 150 {
		t.Fatalf("Nanoseconds = %v, want 150", t1.Nanoseconds())
	}
}

func TestScheduleLabeled(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleLabeled(5*Nanosecond, "pcie-return", func(*Engine, Time) { fired = true })
	e.Run()
	if !fired {
		t.Fatal("labeled event did not fire")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative labeled delay did not panic")
		}
	}()
	e.ScheduleLabeled(-1, "bad", func(*Engine, Time) {})
}

func TestFiredAndPendingCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Duration(i)*Nanosecond, func(*Engine, Time) {})
	}
	if e.Pending() != 5 || e.Fired() != 0 {
		t.Fatalf("pending=%d fired=%d", e.Pending(), e.Fired())
	}
	e.Step()
	e.Step()
	if e.Pending() != 3 || e.Fired() != 2 {
		t.Fatalf("after 2 steps: pending=%d fired=%d", e.Pending(), e.Fired())
	}
	e.Run()
	if e.Pending() != 0 || e.Fired() != 5 {
		t.Fatalf("after run: pending=%d fired=%d", e.Pending(), e.Fired())
	}
}

func TestDurationStd(t *testing.T) {
	if (1500 * Nanosecond).Std().Nanoseconds() != 1500 {
		t.Fatal("Std conversion wrong")
	}
	if Duration(999).Std() != 0 { // sub-nanosecond truncates
		t.Fatal("sub-ns Std should truncate to zero")
	}
}

// TestRunUntilStopMidWindow pins the clock-advance contract: when Stop
// fires mid-window the clock must stay at the stopping event's time (not
// jump to the deadline), the remaining in-window events must stay
// queued, Stopped must report true, and a later RunUntil with the same
// deadline must resume and finish the window.
func TestRunUntilStopMidWindow(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10*Nanosecond, func(e *Engine, _ Time) {
		got = append(got, 1)
		e.Stop()
	})
	e.Schedule(20*Nanosecond, func(*Engine, Time) { got = append(got, 2) })

	deadline := Time(50 * Nanosecond)
	if n := e.RunUntil(deadline); n != 1 {
		t.Fatalf("first window fired %d events, want 1", n)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() false after Stop mid-window")
	}
	if e.Now() != Time(10*Nanosecond) {
		t.Fatalf("clock advanced to %v after Stop; want the stopping event's time %v",
			e.Now(), Time(10*Nanosecond))
	}
	if e.Pending() != 1 {
		t.Fatalf("in-window event lost: pending = %d, want 1", e.Pending())
	}

	// Resume: the same deadline finishes the window and lands the clock
	// on the deadline exactly.
	if n := e.RunUntil(deadline); n != 1 {
		t.Fatalf("resumed window fired %d events, want 1", n)
	}
	if e.Stopped() {
		t.Fatal("Stopped() stuck true after a normal window")
	}
	if e.Now() != deadline {
		t.Fatalf("clock = %v after normal window, want deadline %v", e.Now(), deadline)
	}
	if want := []int{1, 2}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fired order %v, want %v", got, want)
	}
}

// TestCancelSameTimestampDuringFiring pins Cancel semantics while the
// engine is mid-firing a run of same-timestamp events: a later event at
// the same timestamp is still in the queue and cancels cleanly, while
// the currently executing event (already popped) cannot be cancelled.
func TestCancelSameTimestampDuringFiring(t *testing.T) {
	e := NewEngine()
	var ids [3]EventID
	var fired [3]bool
	var selfCancel, laterCancel bool
	ids[0] = e.Schedule(5*Nanosecond, func(e *Engine, _ Time) {
		fired[0] = true
		selfCancel = e.Cancel(ids[0])  // popped: must fail
		laterCancel = e.Cancel(ids[2]) // still queued at the same ts: must succeed
	})
	ids[1] = e.Schedule(5*Nanosecond, func(*Engine, Time) { fired[1] = true })
	ids[2] = e.Schedule(5*Nanosecond, func(*Engine, Time) { fired[2] = true })
	e.Run()

	if selfCancel {
		t.Fatal("cancelling the currently executing event reported success")
	}
	if !laterCancel {
		t.Fatal("cancelling a queued same-timestamp event failed")
	}
	if !fired[0] || !fired[1] {
		t.Fatalf("fired = %v; events 0 and 1 must run", fired)
	}
	if fired[2] {
		t.Fatal("cancelled same-timestamp event fired anyway")
	}
	// Cancelling an already-cancelled event stays a no-op.
	if e.Cancel(ids[2]) {
		t.Fatal("double cancel reported success")
	}
}

// TestStoppedReset verifies Stopped clears on every run entry point.
func TestStoppedReset(t *testing.T) {
	e := NewEngine()
	e.Schedule(1*Nanosecond, func(e *Engine, _ Time) { e.Stop() })
	e.Run()
	if !e.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	e.Schedule(1*Nanosecond, func(*Engine, Time) {})
	e.Run()
	if e.Stopped() {
		t.Fatal("Stopped() not cleared by the next Run")
	}
}
