package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// --- generation-checked cancellation ----------------------------------

// TestCancelStaleIDAfterRecycle pins the EventID generation contract: an
// ID whose event already fired must stay a no-op even after the slab
// slot is recycled by a new event — cancelling the stale ID must not
// cancel the slot's new occupant.
func TestCancelStaleIDAfterRecycle(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(1*Nanosecond, func(*Engine, Time) {})
	e.Run() // fires; the slot goes to the free list

	// The next schedule reuses the freed slot (single-slot slab).
	fired := false
	fresh := e.Schedule(1*Nanosecond, func(*Engine, Time) { fired = true })
	if fresh.slot != stale.slot {
		t.Fatalf("slot not recycled: stale=%d fresh=%d", stale.slot, fresh.slot)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled slot kept the same generation")
	}
	if e.Cancel(stale) {
		t.Fatal("stale EventID cancelled the slot's new occupant")
	}
	e.Run()
	if !fired {
		t.Fatal("fresh event did not fire — stale Cancel touched it")
	}
	// And the fresh ID is itself stale now.
	if e.Cancel(fresh) {
		t.Fatal("Cancel after fire returned true")
	}
}

// TestCancelZeroAndOutOfRangeIDs: the zero EventID and IDs beyond the
// slab are safe no-ops.
func TestCancelZeroAndOutOfRangeIDs(t *testing.T) {
	e := NewEngine()
	if e.Cancel(EventID{}) {
		t.Fatal("zero EventID cancelled something")
	}
	if e.Cancel(EventID{slot: 99, gen: 0}) {
		t.Fatal("out-of-range EventID cancelled something")
	}
	id := e.Schedule(1*Nanosecond, func(*Engine, Time) {})
	if !e.Cancel(id) {
		t.Fatal("live event did not cancel")
	}
	if e.Cancel(id) {
		t.Fatal("double cancel returned true")
	}
}

// TestRunUntilSkipsCancelledHead guards the lazy-deletion interaction
// with RunUntil's head peek: a cancelled record sitting at the heap root
// inside the window must not cause a live event beyond the deadline to
// fire.
func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(5*Nanosecond, func(*Engine, Time) { t.Fatal("cancelled event fired") })
	fired := false
	e.Schedule(20*Nanosecond, func(*Engine, Time) { fired = true })
	e.Cancel(id)
	if n := e.RunUntil(Time(10 * Nanosecond)); n != 0 {
		t.Fatalf("RunUntil fired %d events, want 0", n)
	}
	if fired {
		t.Fatal("event beyond the deadline fired")
	}
	if e.Now() != Time(10*Nanosecond) {
		t.Fatalf("clock = %v, want 10ns", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if !fired {
		t.Fatal("live event never fired")
	}
}

// --- typed (closure-free) events --------------------------------------

type recordingSink struct {
	fired []uint64
	ats   []Time
}

func (s *recordingSink) HandleEvent(_ *Engine, now Time, payload uint64) {
	s.fired = append(s.fired, payload)
	s.ats = append(s.ats, now)
}

// TestScheduleEventPayloadAndOrder: typed events carry their payload and
// interleave with closure events in one (time, seq) order.
func TestScheduleEventPayloadAndOrder(t *testing.T) {
	e := NewEngine()
	sink := &recordingSink{}
	var order []string
	e.Schedule(10*Nanosecond, func(*Engine, Time) { order = append(order, "closure") })
	e.ScheduleEvent(10*Nanosecond, sink, 42) // same timestamp: fires second by seq
	e.ScheduleEvent(5*Nanosecond, sink, 7)   // earlier: fires first
	e.Run()
	if len(sink.fired) != 2 || sink.fired[0] != 7 || sink.fired[1] != 42 {
		t.Fatalf("payloads = %v, want [7 42]", sink.fired)
	}
	if sink.ats[0] != Time(5*Nanosecond) || sink.ats[1] != Time(10*Nanosecond) {
		t.Fatalf("fire times = %v", sink.ats)
	}
	if len(order) != 1 || order[0] != "closure" {
		t.Fatalf("closure event lost: %v", order)
	}
}

// TestScheduleEventCancel: typed events cancel like closure events.
func TestScheduleEventCancel(t *testing.T) {
	e := NewEngine()
	sink := &recordingSink{}
	id := e.ScheduleEvent(10*Nanosecond, sink, 1)
	e.ScheduleEvent(20*Nanosecond, sink, 2)
	if !e.Cancel(id) {
		t.Fatal("typed event did not cancel")
	}
	e.Run()
	if len(sink.fired) != 1 || sink.fired[0] != 2 {
		t.Fatalf("fired = %v, want [2]", sink.fired)
	}
}

func TestScheduleEventNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative typed delay did not panic")
		}
	}()
	NewEngine().ScheduleEvent(-1, &recordingSink{}, 0)
}

func TestScheduleEventLabeled(t *testing.T) {
	e := NewEngine()
	sink := &recordingSink{}
	e.ScheduleEventLabeled(5*Nanosecond, "sample", sink, 3)
	e.Run()
	if len(sink.fired) != 1 || sink.fired[0] != 3 {
		t.Fatalf("fired = %v, want [3]", sink.fired)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative labeled typed delay did not panic")
		}
	}()
	e.ScheduleEventLabeled(-1, "bad", sink, 0)
}

// --- allocation pins ---------------------------------------------------

// drainSink is an EventSink whose records schedule nothing; used to
// measure the bare typed schedule+fire cycle.
type drainSink struct{ n int }

func (s *drainSink) HandleEvent(*Engine, Time, uint64) { s.n++ }

// TestScheduleStepZeroAllocs pins the tentpole allocation contract:
// after warm-up, Schedule (closure path with a non-capturing function),
// ScheduleEvent (typed path) and Step allocate nothing. Future PRs
// cannot silently reintroduce per-event garbage.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := NewEngine()
	sink := &drainSink{}
	nop := func(*Engine, Time) {}
	// Warm-up: grow the slab, heap and free list to steady-state size.
	for i := 0; i < 256; i++ {
		e.Schedule(Duration(i%16)*Nanosecond, nop)
		e.ScheduleEvent(Duration(i%16)*Nanosecond, sink, uint64(i))
	}
	e.Run()

	if avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(3*Nanosecond, nop)
		if !e.Step() {
			t.Fatal("queue empty")
		}
	}); avg != 0 {
		t.Fatalf("closure Schedule+Step allocates %v/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleEvent(3*Nanosecond, sink, 9)
		if !e.Step() {
			t.Fatal("queue empty")
		}
	}); avg != 0 {
		t.Fatalf("ScheduleEvent+Step allocates %v/op in steady state, want 0", avg)
	}
	// A deeper queue (many pending events) must not change the story.
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleEvent(Duration(i%8)*Nanosecond, sink, uint64(i))
		}
		for i := 0; i < 64; i++ {
			e.Step()
		}
	}); avg != 0 {
		t.Fatalf("batched ScheduleEvent+Step allocates %v/op in steady state, want 0", avg)
	}
}

// --- old-heap reference comparison ------------------------------------

// refEngine is the pre-slab engine, preserved here verbatim in miniature
// as the firing-order referee: a pointer-per-event binary heap driven by
// container/heap with eager cancellation. The slab engine must fire the
// exact same (time, seq) sequence for any mixed schedule/cancel/fire
// workload.
type refEvent struct {
	at    Time
	seq   uint64
	index int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

type refEngine struct {
	now     Time
	queue   refQueue
	nextSeq uint64
}

func (r *refEngine) schedule(delay Duration) *refEvent {
	ev := &refEvent{at: r.now.Add(delay), seq: r.nextSeq}
	r.nextSeq++
	heap.Push(&r.queue, ev)
	return ev
}

func (r *refEngine) cancel(ev *refEvent) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&r.queue, ev.index)
	return true
}

func (r *refEngine) step() (Time, uint64, bool) {
	if len(r.queue) == 0 {
		return 0, 0, false
	}
	ev := heap.Pop(&r.queue).(*refEvent)
	r.now = ev.at
	return ev.at, ev.seq, true
}

// TestSlabEngineMatchesReference drives both engines through 10k mixed
// schedule/cancel/fire operations from a seeded RNG and requires the
// identical firing sequence — the determinism proof that the 4-ary slab
// heap is observationally the old container/heap engine.
func TestSlabEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	e := NewEngine()
	ref := &refEngine{}

	type firing struct {
		at  Time
		seq uint64
	}
	var got, want []firing

	var liveIDs []EventID
	var liveRefs []*refEvent

	record := func(at Time, seq uint64) { got = append(got, firing{at, seq}) }
	sink := firingRecorder{record: record}

	const ops = 10000
	for i := 0; i < ops; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // schedule (typed and closure paths alternate)
			d := Duration(rng.Intn(500)) * Nanosecond
			var id EventID
			if i%2 == 0 {
				id = e.ScheduleEvent(d, sink, 0)
			} else {
				id = e.Schedule(d, func(_ *Engine, now Time) {
					// The closure path records via the engine's own state;
					// seq is not visible here, so recover it from the
					// reference: both fire in lockstep below.
					record(now, 0)
				})
			}
			liveIDs = append(liveIDs, id)
			liveRefs = append(liveRefs, ref.schedule(d))
		case op < 7: // cancel a random outstanding event
			if len(liveIDs) == 0 {
				continue
			}
			k := rng.Intn(len(liveIDs))
			gc := e.Cancel(liveIDs[k])
			rc := ref.cancel(liveRefs[k])
			if gc != rc {
				t.Fatalf("op %d: Cancel disagreement: slab=%v ref=%v", i, gc, rc)
			}
		default: // fire one event on both engines
			at, seq, ok := ref.step()
			if ok {
				want = append(want, firing{at, seq})
			}
			if e.Step() != ok {
				t.Fatalf("op %d: Step disagreement (ref fired=%v)", i, ok)
			}
		}
	}
	// Drain both.
	for {
		at, seq, ok := ref.step()
		if !ok {
			break
		}
		want = append(want, firing{at, seq})
	}
	for e.Step() {
	}

	if len(got) != len(want) {
		t.Fatalf("fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i].at != want[i].at {
			t.Fatalf("firing %d: at %v, reference %v", i, got[i].at, want[i].at)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("slab engine still has %d pending after drain", e.Pending())
	}
}

// firingRecorder adapts a func to EventSink for the reference test.
type firingRecorder struct {
	record func(at Time, seq uint64)
}

func (r firingRecorder) HandleEvent(_ *Engine, now Time, _ uint64) { r.record(now, 0) }

// TestSlabReuseBoundsGrowth: a workload that schedules and drains in
// waves must not grow the slab beyond its high-water mark.
func TestSlabReuseBoundsGrowth(t *testing.T) {
	e := NewEngine()
	nop := func(*Engine, Time) {}
	for wave := 0; wave < 50; wave++ {
		for i := 0; i < 100; i++ {
			e.Schedule(Duration(i)*Nanosecond, nop)
		}
		e.Run()
	}
	if len(e.slab) > 100 {
		t.Fatalf("slab grew to %d records for a 100-event working set", len(e.slab))
	}
	if len(e.free) != len(e.slab) {
		t.Fatalf("free list (%d) does not cover the drained slab (%d)", len(e.free), len(e.slab))
	}
}
