package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// maxTime is the frontier value of a domain with nothing pending: it
// constrains no neighbour.
const maxTime = Time(1<<63 - 1)

// ShardedEngine splits one simulation across event domains, each owning
// a private Engine clock, synchronized by conservative lookahead: every
// directed edge between domains declares the minimum latency any message
// sent over it carries, and a domain may fire events strictly earlier
// than min over its in-edges of (sender frontier + edge lookahead).
// Messages cross domains through bounded SPSC rings carrying
// (timestamp, payload) stamps and are re-scheduled into the destination
// domain's slab engine by Deliver.
//
// The coordinator has two execution modes, chosen at Seal time:
//
//   - Lockstep, when any edge declares a zero lookahead (an instantaneous
//     coupling, e.g. a driver unmap invalidating both device and chipset
//     state in the same instant). All engines share one global sequence
//     counter and the zero domain tag, and Run is a single-threaded merge
//     that always fires the globally earliest (at, dom, seq) event. Every
//     event carries exactly the stamp a serial engine would have assigned,
//     so a lockstep run is byte-identical to serial by construction.
//
//   - Parallel, when every edge has positive lookahead. Each domain runs
//     on its own goroutine, stamps events with its own domain ID and
//     sequence counter, and advances while it holds the lookahead bound.
//     Each engine still fires its events in the global (at, dom, seq)
//     order restricted to that engine (messages always arrive before the
//     receiver passes their timestamp), so per-domain state trajectories
//     are deterministic and identical to a single-threaded Step merge.
//
// Step provides that single-threaded merge in both modes — the reference
// execution tests and allocation-sensitive callers use.
type ShardedEngine struct {
	domains []*Domain
	edges   []*edge
	sealed  bool
	par     bool

	// forceThreads makes Run use the goroutine-per-domain execution even
	// when GOMAXPROCS gives it nothing to run on (see Run).
	forceThreads bool

	sharedSeq uint64 // lockstep: the one global schedule order

	mu   sync.Mutex
	cond *sync.Cond
	done bool
}

// Domain is one shard: an engine plus its cross-domain edges.
type Domain struct {
	se  *ShardedEngine
	id  uint8
	eng *Engine
	in  []*edge
	out []*edge

	// frontier is a lower bound (maintained under se.mu) on the timestamp
	// of every event in the domain's local queue — the engine head, or
	// the batch's first event while the domain fires unlocked (sends made
	// mid-batch are invisible to neighbours until the flush, so the
	// frontier must keep covering them). ef closes frontiers transitively
	// over in-edges plus the in-flight ring/out-buffer messages — a lower
	// bound on every event the domain will EVER fire, including reactions
	// to messages it has not received yet — and is what neighbours
	// advance against.
	frontier Time
	ef       Time
	firing   bool
}

// edge is one directed cross-domain link: the declared lookahead plus
// the bounded SPSC ring parallel mode hands messages through.
type edge struct {
	from, to *Domain
	look     Duration

	// Ring state (guarded by se.mu; pushed by from, drained by to).
	buf   []Msg
	head  int
	count int
	minAt Time // min At over buffered messages; maxTime when empty

	// outbuf collects messages sent while from fires unlocked; flushed
	// into the ring under se.mu at batch end. outMin (guarded by se.mu)
	// is the min At over outbuf messages the flush has made visible but
	// not yet pushed — while the sender blocks on a full ring, these
	// still lower-bound the destination's future fires and must stay in
	// the effective-frontier closure. maxTime otherwise.
	outbuf []Msg
	outMin Time
}

// NewSharded returns an empty coordinator. Add domains, connect them,
// then Seal before scheduling any events.
func NewSharded() *ShardedEngine {
	se := &ShardedEngine{}
	se.cond = sync.NewCond(&se.mu)
	return se
}

// AddDomain creates a new domain with a fresh engine. Domain IDs are
// assigned in creation order, which is also the tie-break order for
// simultaneous events in parallel mode.
func (se *ShardedEngine) AddDomain() *Domain {
	if se.sealed {
		panic("sim: AddDomain after Seal")
	}
	if len(se.domains) == 255 {
		panic("sim: too many domains")
	}
	d := &Domain{se: se, id: uint8(len(se.domains)), eng: NewEngine(), frontier: maxTime}
	se.domains = append(se.domains, d)
	return d
}

// Engine returns the domain's private engine. Model components of this
// domain schedule their intra-domain events against it directly.
func (d *Domain) Engine() *Engine { return d.eng }

// ID returns the domain's tie-break ID.
func (d *Domain) ID() uint8 { return d.id }

// Connect declares a directed edge: messages from one domain to another,
// carrying at least lookahead of latency each, through a ring of at most
// cap buffered messages. A zero (or negative) lookahead is legal and
// forces the whole topology into lockstep mode at Seal. cap <= 0 gets a
// default ring.
func (se *ShardedEngine) Connect(from, to *Domain, lookahead Duration, cap int) *Port {
	if se.sealed {
		panic("sim: Connect after Seal")
	}
	if from == to {
		panic("sim: self-edge")
	}
	if cap <= 0 {
		cap = 256
	}
	e := &edge{from: from, to: to, look: lookahead, buf: make([]Msg, cap), minAt: maxTime, outMin: maxTime}
	se.edges = append(se.edges, e)
	from.out = append(from.out, e)
	to.in = append(to.in, e)
	return &Port{e: e}
}

// Parallel reports whether Seal chose the parallel mode (every edge has
// positive lookahead) over lockstep.
func (se *ShardedEngine) Parallel() bool { return se.par }

// Seal fixes the topology and chooses the execution mode. In lockstep
// every engine draws from one shared sequence counter with the zero
// domain tag (stamps identical to a serial engine's); in parallel every
// engine stamps its own domain ID and counts sequence numbers privately.
// Must run before any event is scheduled.
func (se *ShardedEngine) Seal() {
	if se.sealed {
		panic("sim: Seal called twice")
	}
	se.sealed = true
	se.par = true
	for _, e := range se.edges {
		if e.look <= 0 {
			se.par = false
			break
		}
	}
	for _, d := range se.domains {
		if se.par {
			d.eng.SetDomain(d.id)
		} else {
			d.eng.SetSharedSeq(&se.sharedSeq)
		}
	}
}

// Fired sums the events executed across all domains.
func (se *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, d := range se.domains {
		n += d.eng.Fired()
	}
	return n
}

// Port is the sending end of an edge, used by model components to hand
// an event to the neighbouring domain.
type Port struct {
	e *edge
}

// Send queues a cross-domain message: sink.HandleEvent fires in the
// destination domain after delay, carrying kind and the payload words
// (reclaim with Engine.ClaimMsg). A delay below the edge's declared
// lookahead panics — it would break the conservative synchronization
// contract neighbours advance under.
//
// The message is stamped at send time: in lockstep it consumes the
// shared sequence counter exactly where a serial engine's ScheduleEvent
// would have, and is delivered synchronously; in parallel it carries the
// sender's (domain, sequence) stamp and is buffered until the sender's
// current batch flushes.
func (p *Port) Send(sink EventSink, delay Duration, kind uint8, p0, p1, p2, p3 uint64) {
	e := p.e
	if delay < e.look {
		panic(fmt.Sprintf("sim: cross-domain send delay %v below edge lookahead %v", delay, e.look))
	}
	src := e.from.eng
	m := Msg{
		Stamp: Stamp{At: src.Now().Add(delay), Dom: src.dom, Seq: src.takeSeq()},
		Sink:  sink, Kind: kind, P0: p0, P1: p1, P2: p2, P3: p3,
	}
	if !e.from.se.par {
		// Lockstep runs single-threaded: deliver synchronously so the
		// merged heads always see every pending event.
		e.to.eng.Deliver(m)
		return
	}
	e.outbuf = append(e.outbuf, m)
}

// Step fires the single globally-earliest pending event — the
// single-threaded reference execution, valid in both modes. It returns
// false when every domain has drained. Cross-domain sends made by the
// fired event are delivered before Step returns, so repeated Step calls
// observe a totally ordered (at, dom, seq) execution.
func (se *ShardedEngine) Step() bool {
	if !se.sealed {
		panic("sim: Step before Seal")
	}
	var best *Domain
	var bs Stamp
	for _, d := range se.domains {
		if st, ok := d.eng.PeekStamp(); ok && (best == nil || st.Less(bs)) {
			best, bs = d, st
		}
	}
	if best == nil {
		return false
	}
	best.eng.Step()
	if se.par {
		// Parallel stamping buffers sends; flush them inline so the
		// single-threaded execution stays self-contained.
		best.flushInline()
	}
	return true
}

// flushInline delivers buffered sends synchronously — the single-threaded
// executions (Step, RunUntil) use it in place of the ring handoff.
func (d *Domain) flushInline() {
	for _, e := range d.out {
		for i := range e.outbuf {
			e.to.eng.Deliver(e.outbuf[i])
		}
		e.outbuf = e.outbuf[:0]
	}
}

// RunUntil fires every event with a timestamp at or before deadline, in
// the merged (at, dom, seq) order, then advances every domain clock
// exactly to the deadline — the sharded counterpart of Engine.RunUntil's
// window-tiling contract, so white-box tests can step a sharded run to a
// precise boundary instant in either mode. Single-threaded; returns the
// number of events fired.
func (se *ShardedEngine) RunUntil(deadline Time) uint64 {
	if !se.sealed {
		panic("sim: RunUntil before Seal")
	}
	start := se.Fired()
	for {
		var best *Domain
		var bs Stamp
		for _, d := range se.domains {
			if st, ok := d.eng.PeekStamp(); ok && st.At <= deadline && (best == nil || st.Less(bs)) {
				best, bs = d, st
			}
		}
		if best == nil {
			break
		}
		best.eng.Step()
		if se.par {
			best.flushInline()
		}
	}
	for _, d := range se.domains {
		// Nothing at or before the deadline remains anywhere, so this
		// only lands each clock on the window edge.
		d.eng.RunUntil(deadline)
	}
	return se.Fired() - start
}

// ForceThreads makes Run always use the goroutine-per-domain execution
// in parallel mode, bypassing the single-P merged fallback. Tests that
// must exercise the concurrent coordinator (determinism under -race,
// backpressure interleavings) call it; production callers never need to.
func (se *ShardedEngine) ForceThreads() { se.forceThreads = true }

// Run executes the sharded simulation until every domain drains: a
// single-threaded merge in lockstep mode, one goroutine per domain under
// conservative lookahead in parallel mode.
//
// With a single P (GOMAXPROCS=1) the goroutines could only time-slice
// over one core, paying two futex handoffs per lookahead window for no
// overlap — so Run falls back to the merged single-threaded execution,
// which fires the identical (at, dom, seq) order with zero coordination
// cost. The mode (Parallel()) is a property of the topology, not of the
// processor count; only the execution strategy changes.
func (se *ShardedEngine) Run() {
	if !se.sealed {
		panic("sim: Run before Seal")
	}
	if !se.par {
		se.runMerged()
		return
	}
	if !se.forceThreads && runtime.GOMAXPROCS(0) < 2 {
		se.runMerged()
		return
	}
	se.done = false
	// Publish every domain's initial frontier before any goroutine can
	// compute a bound: the AddDomain default (maxTime) would let an early
	// starter treat still-unstarted neighbours as unconstraining and run
	// arbitrarily far ahead of their first events.
	se.mu.Lock()
	for _, d := range se.domains {
		d.updateFrontier()
	}
	se.mu.Unlock()
	var wg sync.WaitGroup
	for _, d := range se.domains {
		wg.Add(1)
		go func(d *Domain) {
			defer wg.Done()
			d.loop()
		}(d)
	}
	wg.Wait()
}

// runMerged is the merged serial execution: always fire the globally
// earliest (at, dom, seq) event. In lockstep the shared sequence counter
// makes this replay exactly the event order of an unsharded engine; in
// parallel mode it is the reference order the threaded execution must
// (and does) reproduce. The two-domain loop re-peeks a head only when it
// can have changed (its own engine stepped, or a delivery landed),
// keeping the per-event overhead to one peek and one compare.
func (se *ShardedEngine) runMerged() {
	if len(se.domains) != 2 {
		for se.Step() {
		}
		return
	}
	da, db := se.domains[0], se.domains[1]
	a, b := da.eng, db.eng
	sa, oka := a.PeekStamp()
	sb, okb := b.PeekStamp()
	for oka || okb {
		if oka && (!okb || sa.Less(sb)) {
			bd := b.deliveries
			a.Step()
			if se.par {
				da.flushInline()
			}
			sa, oka = a.PeekStamp()
			if b.deliveries != bd {
				sb, okb = b.PeekStamp()
			}
		} else {
			ad := a.deliveries
			b.Step()
			if se.par {
				db.flushInline()
			}
			sb, okb = b.PeekStamp()
			if a.deliveries != ad {
				sa, oka = a.PeekStamp()
			}
		}
	}
}

// --- parallel mode -----------------------------------------------------

// recomputeEF closes the frontiers transitively: a domain's effective
// frontier is the earliest event it could ever fire — locally pending,
// sitting in an inbound ring or a blocked flush's out-buffer, or caused
// by a chain of future messages: ef(d) = min(frontier(d), in-flight
// messages addressed to d, min over in-edges (ef(from) + lookahead)).
// Every cycle has positive total lookahead (parallel mode requires it),
// so the relaxation reaches its fixpoint in at most |domains| passes.
// Without this closure an idle domain would report an infinite frontier,
// its neighbour would run arbitrarily far ahead, and a reply to the
// neighbour's own messages would land in its past. Called with se.mu
// held.
func (se *ShardedEngine) recomputeEF() {
	for _, d := range se.domains {
		d.ef = d.frontier
	}
	for _, e := range se.edges {
		if e.minAt < e.to.ef {
			e.to.ef = e.minAt
		}
		if e.outMin < e.to.ef {
			e.to.ef = e.outMin
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range se.edges {
			if e.from.ef == maxTime {
				continue
			}
			if t := e.from.ef.Add(e.look); t < e.to.ef {
				e.to.ef = t
				changed = true
			}
		}
	}
}

// bound computes how far the domain may advance: events strictly earlier
// than min over in-edges of (sender effective frontier + lookahead) can
// no longer be affected by any future message. Called with se.mu held.
func (d *Domain) bound() Time {
	d.se.recomputeEF()
	b := maxTime
	for _, e := range d.in {
		if e.from.ef == maxTime {
			continue
		}
		if t := e.from.ef.Add(e.look); t < b {
			b = t
		}
	}
	return b
}

// drain moves every ring message into the local engine, reporting
// whether anything moved (freed ring space is state neighbours may be
// blocked on). Called with se.mu held, only by the owning domain's
// goroutine.
func (d *Domain) drain() bool {
	moved := false
	for _, e := range d.in {
		for e.count > 0 {
			m := e.buf[e.head]
			e.buf[e.head] = Msg{}
			e.head = (e.head + 1) % len(e.buf)
			e.count--
			d.eng.Deliver(m)
			moved = true
		}
		e.minAt = maxTime
	}
	return moved
}

// updateFrontier recomputes the domain's frontier from its engine head.
// Incoming messages still sitting in rings or blocked out-buffers are
// accounted separately (edge minAt/outMin, folded in by recomputeEF), so
// no domain ever writes another domain's frontier. Must not run while
// the domain fires a batch — the frontier stays frozen at the batch's
// first event until the flush completes, because mid-batch sends are
// invisible to neighbours until then. Called with se.mu held.
func (d *Domain) updateFrontier() {
	if st, ok := d.eng.PeekStamp(); ok {
		d.frontier = st.At
	} else {
		d.frontier = maxTime
	}
}

// flushOut pushes the batch's buffered sends into their rings,
// backpressuring (and draining its own inboxes, to stay deadlock-free
// under mutual pressure) when a ring is full. The domain's frontier
// stays frozen throughout: unpushed messages are published via each
// edge's outMin first, so even while this goroutine blocks mid-flush
// the closure still sees every message the batch produced. Called with
// se.mu held.
func (d *Domain) flushOut() {
	for _, e := range d.out {
		for i := range e.outbuf {
			if e.outbuf[i].At < e.outMin {
				e.outMin = e.outbuf[i].At
			}
		}
	}
	for _, e := range d.out {
		for i := range e.outbuf {
			for e.count == len(e.buf) {
				// Destination ring full: free our own senders while we
				// wait, then let the consumer drain. Draining is safe —
				// anything arriving now is stamped at or after our batch
				// bound, above the frozen frontier.
				d.drain()
				d.se.cond.Broadcast()
				d.se.cond.Wait()
			}
			m := e.outbuf[i]
			e.outbuf[i] = Msg{}
			e.buf[(e.head+e.count)%len(e.buf)] = m
			e.count++
			if m.At < e.minAt {
				e.minAt = m.At
			}
		}
		e.outbuf = e.outbuf[:0]
		e.outMin = maxTime
	}
}

// drained reports whether the whole topology is out of work. Called with
// se.mu held.
func (se *ShardedEngine) drained() bool {
	for _, d := range se.domains {
		if d.firing || d.eng.Pending() > 0 {
			return false
		}
	}
	for _, e := range se.edges {
		if e.count > 0 || len(e.outbuf) > 0 {
			return false
		}
	}
	return true
}

// fireBatch fires local events strictly below bound, unlocked. Sends go
// to the out-buffers; nothing else crosses the domain boundary.
func (d *Domain) fireBatch(bound Time) {
	for {
		st, ok := d.eng.PeekStamp()
		if !ok || st.At >= bound {
			return
		}
		d.eng.Step()
	}
}

// loop is one domain's goroutine: drain inboxes, advance to the
// conservative bound, flush, repeat; block when the bound pins us,
// finish when the whole topology drains.
func (d *Domain) loop() {
	se := d.se
	se.mu.Lock()
	defer se.mu.Unlock()
	for {
		moved := d.drain()
		oldF := d.frontier
		d.updateFrontier()
		bound := d.bound()
		if st, ok := d.eng.PeekStamp(); ok && st.At < bound {
			// The frontier freezes at the batch's first event: every send
			// this batch makes carries at least that timestamp plus the
			// edge lookahead, so neighbours may keep advancing against it.
			d.firing = true
			d.frontier = st.At
			se.mu.Unlock()
			d.fireBatch(bound)
			se.mu.Lock()
			d.flushOut()
			d.firing = false
			d.updateFrontier()
			se.cond.Broadcast()
			continue
		}
		if se.drained() {
			se.done = true
			se.cond.Broadcast()
			return
		}
		if se.done {
			return
		}
		if moved || d.frontier != oldF {
			// This pass freed ring space or published a new frontier —
			// state a blocked neighbour may be waiting on.
			se.cond.Broadcast()
		}
		se.cond.Wait()
		if se.done {
			return
		}
	}
}
