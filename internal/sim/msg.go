package sim

import "fmt"

// Msg is one cross-domain message of a sharded simulation: a typed event
// delivered into another domain's engine with an explicit, sender-assigned
// ordering stamp. The payload is four plain words — no pointers beyond
// the destination sink — so a message can cross a domain boundary by
// value, without sharing mutable state between domains.
//
// The receiving sink's HandleEvent gets the index of the parked message
// as its payload word and reclaims it with Engine.ClaimMsg.
type Msg struct {
	Stamp
	Sink           EventSink
	Kind           uint8
	P0, P1, P2, P3 uint64
}

// Deliver inserts a cross-domain message into the engine's queue,
// preserving the stamp the sender assigned: the event fires at m.At and
// ties at equal timestamps break by (Dom, Seq), so the firing order is
// independent of when the message was physically handed over. Delivering
// into the engine's past panics — it means the sender violated its
// edge's lookahead contract.
//
// The wide message is parked in a pooled slab; the scheduled event
// carries the slab index as its payload, and the sink must reclaim it
// with ClaimMsg. Steady-state delivery allocates nothing.
func (e *Engine) Deliver(m Msg) {
	if m.At < e.now {
		panic(fmt.Sprintf("sim: message delivered into the past: at=%v now=%v (lookahead violated)", m.At, e.now))
	}
	var midx uint32
	if n := len(e.msgFree); n > 0 {
		midx = e.msgFree[n-1]
		e.msgFree = e.msgFree[:n-1]
	} else {
		e.msgs = append(e.msgs, Msg{})
		midx = uint32(len(e.msgs) - 1)
	}
	e.msgs[midx] = m

	idx := e.allocRec()
	rec := &e.slab[idx]
	rec.at = m.At
	rec.seq = m.Seq
	rec.dom = m.Dom
	rec.fn = nil
	rec.sink = m.Sink
	rec.payload = uint64(midx)
	rec.label = ""
	rec.state = recQueued
	e.live++
	e.deliveries++
	e.enqueue(idx)
	if e.probe != nil {
		e.probe.OnSchedule(m.At, m.Seq, "")
	}
}

// ClaimMsg reclaims a parked cross-domain message by the payload word a
// delivered event carried, returning it by value and recycling the slot.
func (e *Engine) ClaimMsg(payload uint64) Msg {
	idx := uint32(payload)
	m := e.msgs[idx]
	e.msgs[idx] = Msg{} // drop the sink reference
	e.msgFree = append(e.msgFree, idx)
	return m
}
