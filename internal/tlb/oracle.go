package tlb

import "math"

// InfiniteReuse is the next-use distance reported for keys that are never
// accessed again; any finite distance compares smaller.
const InfiniteReuse = math.MaxUint64

// Future supplies Belady's-MIN replacement with knowledge of the upcoming
// access stream. It is built from the ideal key sequence a cache will
// observe; each Lookup pops the key's next scheduled position, so Next
// always answers "when is this key used again, from now on?".
//
// If the simulated stream diverges from the ideal one (dropped packets
// are retried and re-looked-up), the oracle degrades gracefully: an extra
// observation consumes one future position, slightly under-estimating the
// key's reuse distance.
type Future struct {
	pos  map[Key][]uint64
	head map[Key]int
}

// NewFuture indexes the ideal access sequence.
func NewFuture(seq []Key) *Future {
	f := &Future{pos: make(map[Key][]uint64), head: make(map[Key]int)}
	for i, k := range seq {
		f.pos[k] = append(f.pos[k], uint64(i))
	}
	return f
}

// Observe consumes the current access to key, advancing its cursor.
func (f *Future) Observe(key Key) {
	if f.head[key] < len(f.pos[key]) {
		f.head[key]++
	}
}

// Next returns the stream position of the key's next access, or
// InfiniteReuse if it is never accessed again.
func (f *Future) Next(key Key) uint64 {
	h := f.head[key]
	p := f.pos[key]
	if h >= len(p) {
		return InfiniteReuse
	}
	return p[h]
}

// Remaining reports how many future accesses of key are still scheduled;
// for tests.
func (f *Future) Remaining(key Key) int {
	return len(f.pos[key]) - f.head[key]
}
