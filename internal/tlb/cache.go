// Package tlb implements the translation caching structures of the
// HyperTRIO design space: set-associative and fully-associative caches
// with LRU, LFU, FIFO, random and Belady-oracle replacement, optional
// SID-based partitioning (the paper's PTag-per-row scheme), and
// per-structure statistics.
//
// The same Cache type backs every caching structure in the model — the
// on-device DevTLB and Prefetch Buffer, and the chipset's IOTLB and
// L2/L3 page-walk caches — they differ only in configuration and in what
// their values mean.
package tlb

import (
	"fmt"

	"hypertrio/internal/obs"
)

// Key identifies a cached translation: the requesting tenant's Source ID
// and a tag (typically a virtual page number at the structure's granule).
type Key struct {
	SID uint32
	Tag uint64
}

// Entry is a cached translation as stored and returned by the cache.
type Entry struct {
	Key       Key
	Value     uint64 // meaning depends on the structure (hPA base, table hPA, ...)
	PageShift uint8  // page-size class of the mapping, informational
}

// IndexMode selects how a key chooses its set.
type IndexMode uint8

const (
	// ByAddress indexes with the low bits of the tag — the conventional
	// design, where independent tenants using identical gIOVAs collide.
	ByAddress IndexMode = iota
	// BySID indexes with the low bits of the Source ID — the paper's
	// partitioned design (PTag per row): each row belongs to one tenant
	// or to the group of tenants sharing the SID's low bits.
	BySID
	// Hashed mixes the Source ID into the set index, spreading identical
	// gIOVAs from different tenants across sets. Used to model TLBs that
	// hash the domain identifier (e.g. the AMD IOMMU TLB in the paper's
	// Fig. 4 case study) rather than partitioning or plain indexing.
	Hashed
)

func (m IndexMode) String() string {
	switch m {
	case ByAddress:
		return "by-address"
	case BySID:
		return "by-sid"
	case Hashed:
		return "hashed"
	}
	return fmt.Sprintf("IndexMode(%d)", uint8(m))
}

// Config describes one caching structure.
type Config struct {
	Name   string
	Sets   int // power of two; 1 = fully associative
	Ways   int
	Policy PolicyKind
	Index  IndexMode
	Seed   int64 // used by the Random policy only
}

// Entries returns the total capacity.
func (c Config) Entries() int { return c.Sets * c.Ways }

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("tlb: %s: sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("tlb: %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.Policy < LRU || c.Policy > PLRU {
		return fmt.Errorf("tlb: %s: unknown policy %d", c.Name, c.Policy)
	}
	if c.Policy == PLRU && (c.Ways&(c.Ways-1) != 0 || c.Ways > 64) {
		return fmt.Errorf("tlb: %s: PLRU needs a power-of-two way count <= 64, got %d", c.Name, c.Ways)
	}
	return nil
}

// Stats counts cache traffic. It is a snapshot view assembled from the
// cache's obs.Counter cells — the metrics registry is the single source
// of truth; Stats exists for the established reporting API.
type Stats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Insertions  uint64
	Evictions   uint64
	Invalidates uint64
}

// HitRate returns Hits/Lookups, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// MissRate returns Misses/Lookups, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// slot is one way of one set.
type slot struct {
	valid    bool
	entry    Entry
	lastUse  uint64 // tick of last hit or insertion
	inserted uint64 // tick of insertion
	freq     uint8  // LFU 4-bit access counter
}

// lfuMax is the saturation value of the 4-bit LFU counter; when any
// counter in a row reaches it, all counters in the row are halved
// (the aging scheme the paper adopts from RRIP-style designs).
const lfuMax = 15

// Cache is a single-level translation cache. It is not safe for
// concurrent use; the simulation is single-threaded.
type Cache struct {
	cfg    Config
	sets   [][]slot
	tick   uint64
	future *Future

	// Policy values resolved from the configuration: how a key picks its
	// set (partitioning) and how a full set picks its victim
	// (replacement). See policy.go for the implementations.
	index indexFunc
	repl  replacer

	// Traffic counters as observability cells (see Stats / Register).
	lookups     obs.Counter
	hits        obs.Counter
	misses      obs.Counter
	insertions  obs.Counter
	evictions   obs.Counter
	invalidates obs.Counter
}

// New builds a cache from cfg. It panics on invalid configuration, which
// is always a programming error in this codebase (configurations are
// constructed from validated public API types).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, sets: make([][]slot, cfg.Sets)}
	for i := range c.sets {
		c.sets[i] = make([]slot, cfg.Ways)
	}
	c.index = newIndexFunc(cfg.Index)
	c.repl = newReplacer(cfg, c)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:     c.lookups.Value(),
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		Insertions:  c.insertions.Value(),
		Evictions:   c.evictions.Value(),
		Invalidates: c.invalidates.Value(),
	}
}

// ResetStats zeroes the traffic counters (used between warmup and
// measurement phases).
func (c *Cache) ResetStats() {
	c.lookups.Reset()
	c.hits.Reset()
	c.misses.Reset()
	c.insertions.Reset()
	c.evictions.Reset()
	c.invalidates.Reset()
}

// Register publishes the cache's counters and occupancy into a metrics
// registry under prefix (e.g. "devtlb.hits"). Nil-safe on r.
func (c *Cache) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".lookups", &c.lookups)
	r.Counter(prefix+".hits", &c.hits)
	r.Counter(prefix+".misses", &c.misses)
	r.Counter(prefix+".insertions", &c.insertions)
	r.Counter(prefix+".evictions", &c.evictions)
	r.Counter(prefix+".invalidates", &c.invalidates)
	r.Gauge(prefix+".entries", func() float64 { return float64(c.Len()) })
}

// SetFuture attaches the oracle's future knowledge; required before any
// access when Policy == Oracle.
func (c *Cache) SetFuture(f *Future) { c.future = f }

func (c *Cache) setIndex(k Key) int { return c.index(k, c.cfg.Sets) }

// Lookup searches for key. On a hit it updates replacement metadata and
// returns the entry. Every access that the oracle should know about must
// go through Lookup.
func (c *Cache) Lookup(key Key) (Entry, bool) {
	c.tick++
	c.lookups.Inc()
	c.repl.onLookup(key)
	si := c.setIndex(key)
	set := c.sets[si]
	for i := range set {
		s := &set[i]
		if s.valid && s.entry.Key == key {
			c.hits.Inc()
			s.lastUse = c.tick
			if s.freq < lfuMax {
				s.freq++
			}
			c.repl.onHit(si, set, i)
			return s.entry, true
		}
	}
	c.misses.Inc()
	return Entry{}, false
}

// Peek searches without touching statistics or replacement state.
func (c *Cache) Peek(key Key) (Entry, bool) {
	set := c.sets[c.setIndex(key)]
	for i := range set {
		if set[i].valid && set[i].entry.Key == key {
			return set[i].entry, true
		}
	}
	return Entry{}, false
}

// Insert places an entry, evicting per policy if the set is full.
// Inserting an already-present key refreshes its value in place.
func (c *Cache) Insert(e Entry) {
	c.tick++
	c.insertions.Inc()
	si := c.setIndex(e.Key)
	set := c.sets[si]
	// Refresh in place if present.
	for i := range set {
		if set[i].valid && set[i].entry.Key == e.Key {
			set[i].entry = e
			set[i].lastUse = c.tick
			c.repl.onInsert(si, set, i)
			return
		}
	}
	// Free slot?
	for i := range set {
		if !set[i].valid {
			set[i] = slot{valid: true, entry: e, lastUse: c.tick, inserted: c.tick, freq: 1}
			c.repl.onInsert(si, set, i)
			return
		}
	}
	victim := c.repl.victim(si, set)
	c.evictions.Inc()
	set[victim] = slot{valid: true, entry: e, lastUse: c.tick, inserted: c.tick, freq: 1}
	c.repl.onInsert(si, set, victim)
}

// Invalidate removes the entry for key if present, returning whether it was.
func (c *Cache) Invalidate(key Key) bool {
	set := c.sets[c.setIndex(key)]
	for i := range set {
		if set[i].valid && set[i].entry.Key == key {
			set[i] = slot{}
			c.invalidates.Inc()
			return true
		}
	}
	return false
}

// InvalidateSID removes every entry belonging to sid (device detach /
// domain flush) and returns how many were dropped.
func (c *Cache) InvalidateSID(sid uint32) int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			s := &c.sets[si][wi]
			if s.valid && s.entry.Key.SID == sid {
				*s = slot{}
				n++
			}
		}
	}
	c.invalidates.Add(uint64(n))
	return n
}

// Flush empties the cache (a broadcast invalidation), counting the
// dropped entries as invalidates and returning how many there were.
func (c *Cache) Flush() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				n++
			}
			c.sets[si][wi] = slot{}
		}
	}
	c.invalidates.Add(uint64(n))
	return n
}

// Len reports the number of valid entries.
func (c *Cache) Len() int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				n++
			}
		}
	}
	return n
}

// Entries returns all valid entries (unspecified order); for tests.
func (c *Cache) Entries() []Entry {
	out := make([]Entry, 0, c.Len())
	for si := range c.sets {
		for wi := range c.sets[si] {
			if c.sets[si][wi].valid {
				out = append(out, c.sets[si][wi].entry)
			}
		}
	}
	return out
}
