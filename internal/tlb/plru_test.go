package tlb

import (
	"strings"
	"testing"
)

func plruCache(sets, ways int) *Cache {
	return New(Config{Name: "t", Sets: sets, Ways: ways, Policy: PLRU, Index: ByAddress})
}

// TestPLRUVictimFollowsTree pins the tree pseudo-LRU decision on a 4-way
// set: after touching A and B most recently, the victim must come from
// the {C, D} half, and within it the less recently touched slot.
func TestPLRUVictimFollowsTree(t *testing.T) {
	c := plruCache(1, 4)
	keys := []Key{{Tag: 10}, {Tag: 11}, {Tag: 12}, {Tag: 13}}
	for i, k := range keys {
		c.Insert(Entry{Key: k, Value: uint64(i)})
	}
	// Touch A then B: the tree now points away from both.
	c.Lookup(keys[0])
	c.Lookup(keys[1])
	c.Insert(Entry{Key: Key{Tag: 14}, Value: 99})

	if _, ok := c.Lookup(keys[2]); ok {
		t.Fatal("expected C (slot 2) to be the PLRU victim, but it survived")
	}
	for _, k := range []Key{keys[0], keys[1], keys[3], {Tag: 14}} {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("entry %v evicted, want only C gone", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestPLRUApproximatesLRUOnScan checks the coarse behaviour: under a
// repeating scan one slot wider than the set, PLRU (like LRU) keeps
// missing, never degenerating into keeping a fixed resident set.
func TestPLRUApproximatesLRUOnScan(t *testing.T) {
	c := plruCache(1, 4)
	for round := 0; round < 3; round++ {
		for tag := uint64(0); tag < 5; tag++ {
			k := Key{Tag: tag}
			if _, ok := c.Lookup(k); !ok {
				c.Insert(Entry{Key: k, Value: tag})
			}
		}
	}
	st := c.Stats()
	if st.Hits > st.Lookups/2 {
		t.Fatalf("scan of 5 over 4 ways hit %d of %d — PLRU retained a fixed set", st.Hits, st.Lookups)
	}
}

// expectPanic runs fn and reports whether it panicked with a message
// containing want.
func expectPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one mentioning %q", want)
		}
		var msg string
		switch v := r.(type) {
		case error:
			msg = v.Error()
		case string:
			msg = v
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	fn()
}

// TestPLRUValidation pins the geometry constraint: the bit tree needs a
// power-of-two way count of at most 64.
func TestPLRUValidation(t *testing.T) {
	expectPanic(t, "PLRU", func() { plruCache(1, 3) })
	expectPanic(t, "PLRU", func() { plruCache(1, 128) })
	if c := plruCache(2, 64); c == nil {
		t.Fatal("64-way PLRU rejected")
	}
}

// TestParsePLRU covers the new policy's string round trip.
func TestParsePLRU(t *testing.T) {
	for _, s := range []string{"plru", "pseudo-lru", "PLRU"} {
		p, err := ParsePolicy(s)
		if err != nil || p != PLRU {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if PLRU.String() != "PLRU" {
		t.Fatalf("PLRU.String() = %q", PLRU.String())
	}
}
