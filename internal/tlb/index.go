package tlb

// indexFunc maps a key to a set index — the cache's partitioning policy
// as a value. sets is always a power of two.
type indexFunc func(k Key, sets int) int

// newIndexFunc builds the set-selection function for an index mode.
func newIndexFunc(mode IndexMode) indexFunc {
	switch mode {
	case BySID:
		return func(k Key, sets int) int { return int(k.SID) & (sets - 1) }
	case Hashed:
		return func(k Key, sets int) int {
			// Fibonacci-style mix of tag and SID.
			h := (k.Tag ^ uint64(k.SID)*0x9E3779B1) * 0x9E3779B97F4A7C15 >> 33
			return int(h & uint64(sets-1))
		}
	default:
		return func(k Key, sets int) int { return int(k.Tag & uint64(sets-1)) }
	}
}
