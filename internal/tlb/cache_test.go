package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func k(sid uint32, tag uint64) Key { return Key{SID: sid, Tag: tag} }

func e(sid uint32, tag, val uint64) Entry {
	return Entry{Key: k(sid, tag), Value: val, PageShift: 12}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Name: "z", Sets: 0, Ways: 1, Policy: LRU},
		{Name: "np2", Sets: 3, Ways: 1, Policy: LRU},
		{Name: "w", Sets: 4, Ways: 0, Policy: LRU},
		{Name: "p", Sets: 4, Ways: 1, Policy: PolicyKind(99)},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	if New(Config{Name: "ok", Sets: 1, Ways: 8, Policy: LFU}).Config().Entries() != 8 {
		t.Fatal("Entries() wrong")
	}
}

func TestLookupInsertHit(t *testing.T) {
	c := New(Config{Name: "t", Sets: 8, Ways: 2, Policy: LRU})
	if _, ok := c.Lookup(k(1, 100)); ok {
		t.Fatal("empty cache hit")
	}
	c.Insert(e(1, 100, 0xabc))
	got, ok := c.Lookup(k(1, 100))
	if !ok || got.Value != 0xabc {
		t.Fatalf("lookup after insert: ok=%v v=%#x", ok, got.Value)
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Insertions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSIDDistinguishesTenants(t *testing.T) {
	// Two tenants using the same gIOVA page (the paper's multi-tenant
	// observation) must not alias to the same entry.
	c := New(Config{Name: "t", Sets: 8, Ways: 4, Policy: LRU})
	c.Insert(e(1, 0xbbe00, 0x111))
	c.Insert(e(2, 0xbbe00, 0x222))
	a, ok1 := c.Lookup(k(1, 0xbbe00))
	b, ok2 := c.Lookup(k(2, 0xbbe00))
	if !ok1 || !ok2 || a.Value != 0x111 || b.Value != 0x222 {
		t.Fatalf("tenant aliasing: %v %v %#x %#x", ok1, ok2, a.Value, b.Value)
	}
}

func TestInsertRefreshesInPlace(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2, Policy: LRU})
	c.Insert(e(1, 10, 1))
	c.Insert(e(1, 10, 2))
	if c.Len() != 1 {
		t.Fatalf("duplicate insert grew cache: len=%d", c.Len())
	}
	got, _ := c.Lookup(k(1, 10))
	if got.Value != 2 {
		t.Fatalf("refresh did not update value: %#x", got.Value)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2, Policy: LRU})
	c.Insert(e(1, 1, 0))
	c.Insert(e(1, 2, 0))
	c.Lookup(k(1, 1)) // 1 is now MRU
	c.Insert(e(1, 3, 0))
	if _, ok := c.Peek(k(1, 2)); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	if _, ok := c.Peek(k(1, 1)); !ok {
		t.Fatal("LRU evicted the most recently used entry")
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2, Policy: FIFO})
	c.Insert(e(1, 1, 0))
	c.Insert(e(1, 2, 0))
	c.Lookup(k(1, 1)) // does not matter for FIFO
	c.Insert(e(1, 3, 0))
	if _, ok := c.Peek(k(1, 1)); ok {
		t.Fatal("FIFO kept the oldest insertion")
	}
}

func TestLFUKeepsHotEntry(t *testing.T) {
	// The ring-buffer page is accessed ~30x more often than data pages
	// (§IV-D); LFU must keep it while LRU may not.
	c := New(Config{Name: "t", Sets: 1, Ways: 2, Policy: LFU})
	c.Insert(e(1, 0x34800, 0)) // hot page
	for i := 0; i < 10; i++ {
		c.Lookup(k(1, 0x34800))
	}
	c.Insert(e(1, 0xbbe00, 0)) // cold data page
	c.Insert(e(1, 0xbfe00, 0)) // evicts: must pick the cold one
	if _, ok := c.Peek(k(1, 0x34800)); !ok {
		t.Fatal("LFU evicted the hot entry")
	}
	if _, ok := c.Peek(k(1, 0xbbe00)); ok {
		t.Fatal("LFU kept the cold entry over the hot one")
	}
}

func TestLFUSaturationHalvesRow(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2, Policy: LFU})
	c.Insert(e(1, 1, 0)) // freq 1
	c.Insert(e(1, 2, 0)) // freq 1
	// Exactly saturate entry 1's counter: 14 hits take it 1 -> 15,
	// triggering the row halving in the same access.
	for i := 0; i < 14; i++ {
		c.Lookup(k(1, 1))
	}
	set := c.sets[0]
	if set[0].freq != lfuMax/2 {
		t.Fatalf("saturated way freq=%d, want %d", set[0].freq, lfuMax/2)
	}
	if set[1].freq != 0 {
		t.Fatalf("cold way freq=%d, want 0 (halved from 1)", set[1].freq)
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []Entry {
		c := New(Config{Name: "t", Sets: 1, Ways: 4, Policy: Random, Seed: seed})
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			tag := uint64(rng.Intn(16))
			if _, ok := c.Lookup(k(1, tag)); !ok {
				c.Insert(e(1, tag, tag))
			}
		}
		return c.Entries()
	}
	a, b := run(5), run(5)
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d entries", len(a), len(b))
	}
	am := map[Key]bool{}
	for _, x := range a {
		am[x.Key] = true
	}
	for _, x := range b {
		if !am[x.Key] {
			t.Fatalf("same seed diverged on %v", x.Key)
		}
	}
}

func TestOracleBeatsLRUOnScan(t *testing.T) {
	// Cyclic scan over ways+1 keys: LRU gets zero hits, oracle hits.
	const ways, keys, rounds = 4, 5, 40
	var seq []Key
	for r := 0; r < rounds; r++ {
		for i := 0; i < keys; i++ {
			seq = append(seq, k(1, uint64(i)))
		}
	}
	run := func(p PolicyKind) Stats {
		c := New(Config{Name: "t", Sets: 1, Ways: ways, Policy: p})
		if p == Oracle {
			c.SetFuture(NewFuture(seq))
		}
		for _, key := range seq {
			if _, ok := c.Lookup(key); !ok {
				c.Insert(Entry{Key: key})
			}
		}
		return c.Stats()
	}
	lru := run(LRU)
	oracle := run(Oracle)
	if lru.Hits != 0 {
		t.Fatalf("LRU on cyclic scan got %d hits, want 0", lru.Hits)
	}
	if oracle.Hits == 0 {
		t.Fatal("oracle got no hits on cyclic scan")
	}
	if oracle.Hits <= lru.Hits {
		t.Fatalf("oracle (%d hits) not better than LRU (%d)", oracle.Hits, lru.Hits)
	}
}

// Property: oracle never has more misses than LRU, FIFO, or LFU on any
// random stream (Belady optimality, per-set).
func TestPropertyOracleOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 500
		seq := make([]Key, n)
		for i := range seq {
			seq[i] = k(uint32(rng.Intn(3)), uint64(rng.Intn(20)))
		}
		run := func(p PolicyKind) uint64 {
			c := New(Config{Name: "t", Sets: 2, Ways: 3, Policy: p, Seed: 1})
			if p == Oracle {
				c.SetFuture(NewFuture(seq))
			}
			for _, key := range seq {
				if _, ok := c.Lookup(key); !ok {
					c.Insert(Entry{Key: key})
				}
			}
			return c.Stats().Misses
		}
		om := run(Oracle)
		for _, p := range []PolicyKind{LRU, LFU, FIFO, Random} {
			if m := run(p); om > m {
				t.Fatalf("trial %d: oracle misses %d > %s misses %d", trial, om, p, m)
			}
		}
	}
}

func TestBySIDIndexIsolation(t *testing.T) {
	// Partitioned cache: different SIDs land in different rows, so a
	// noisy tenant cannot evict another tenant's entries.
	c := New(Config{Name: "p", Sets: 8, Ways: 2, Policy: LRU, Index: BySID})
	c.Insert(e(1, 0xbbe00, 0x111))
	// SID 2 floods with many distinct tags.
	for i := 0; i < 100; i++ {
		c.Insert(e(2, uint64(i), 0))
	}
	if _, ok := c.Peek(k(1, 0xbbe00)); !ok {
		t.Fatal("partitioning failed: tenant 2 evicted tenant 1's entry")
	}
}

func TestBySIDGroupsShareRow(t *testing.T) {
	// SIDs congruent mod Sets share a partition (PTag matches low bits).
	c := New(Config{Name: "p", Sets: 8, Ways: 1, Policy: LRU, Index: BySID})
	c.Insert(e(1, 10, 0xa))
	c.Insert(e(9, 20, 0xb)) // 9 mod 8 == 1: same row, evicts
	if _, ok := c.Peek(k(1, 10)); ok {
		t.Fatal("SIDs 1 and 9 should share a row in an 8-set BySID cache")
	}
}

func TestByAddressConflict(t *testing.T) {
	// Conventional indexing: same tag, different tenants -> same set.
	c := New(Config{Name: "a", Sets: 8, Ways: 1, Policy: LRU, Index: ByAddress})
	c.Insert(e(1, 0xbbe00, 1))
	c.Insert(e(2, 0xbbe00, 2)) // same tag, same set, evicts tenant 1
	if _, ok := c.Peek(k(1, 0xbbe00)); ok {
		t.Fatal("expected conflict eviction with ByAddress indexing")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2, Policy: LRU})
	c.Insert(e(1, 5, 0))
	if !c.Invalidate(k(1, 5)) {
		t.Fatal("Invalidate missed a present key")
	}
	if c.Invalidate(k(1, 5)) {
		t.Fatal("Invalidate hit an absent key")
	}
	if _, ok := c.Peek(k(1, 5)); ok {
		t.Fatal("entry survived invalidation")
	}
}

func TestInvalidateSID(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 4, Policy: LRU})
	for i := 0; i < 8; i++ {
		c.Insert(e(1, uint64(i), 0))
		c.Insert(e(2, uint64(i), 0))
	}
	n := c.InvalidateSID(1)
	if n != 8 {
		t.Fatalf("InvalidateSID removed %d, want 8", n)
	}
	for _, en := range c.Entries() {
		if en.Key.SID == 1 {
			t.Fatal("SID 1 entry survived InvalidateSID")
		}
	}
}

func TestFlushAndLen(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 2, Policy: LRU})
	c.Insert(e(1, 0, 0))
	c.Insert(e(1, 1, 0))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if n := c.Flush(); n != 2 {
		t.Fatalf("Flush dropped %d entries, want 2", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after flush = %d", c.Len())
	}
	if got := c.Stats().Invalidates; got != 2 {
		t.Fatalf("invalidates stat = %d, want 2 (flush counts its drops)", got)
	}
	if n := c.Flush(); n != 0 {
		t.Fatalf("Flush of an empty cache dropped %d entries", n)
	}
}

// Property: the cache never exceeds capacity and a just-inserted key is
// always immediately findable.
func TestPropertyCapacityAndInclusion(t *testing.T) {
	f := func(ops []uint32, policyRaw uint8) bool {
		policy := PolicyKind(policyRaw % 4) // skip oracle (needs future)
		c := New(Config{Name: "q", Sets: 4, Ways: 2, Policy: policy, Seed: 9})
		for _, op := range ops {
			key := k(uint32(op%5), uint64(op>>3)%32)
			if _, ok := c.Lookup(key); !ok {
				c.Insert(Entry{Key: key, Value: uint64(op)})
				if _, ok := c.Peek(key); !ok {
					return false
				}
			}
			if c.Len() > c.Config().Entries() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats are consistent: lookups = hits + misses, and evictions
// never exceed insertions.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{Name: "q", Sets: 2, Ways: 2, Policy: LFU})
		for _, op := range ops {
			key := k(uint32(op%3), uint64(op%17))
			if _, ok := c.Lookup(key); !ok {
				c.Insert(Entry{Key: key})
			}
		}
		s := c.Stats()
		return s.Lookups == s.Hits+s.Misses && s.Evictions <= s.Insertions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFutureCursor(t *testing.T) {
	seq := []Key{k(1, 1), k(1, 2), k(1, 1), k(1, 3)}
	f := NewFuture(seq)
	if f.Next(k(1, 1)) != 0 {
		t.Fatalf("Next before observe = %d, want 0", f.Next(k(1, 1)))
	}
	f.Observe(k(1, 1))
	if f.Next(k(1, 1)) != 2 {
		t.Fatalf("Next after observe = %d, want 2", f.Next(k(1, 1)))
	}
	f.Observe(k(1, 1))
	if f.Next(k(1, 1)) != InfiniteReuse {
		t.Fatal("exhausted key should report InfiniteReuse")
	}
	if f.Next(k(9, 9)) != InfiniteReuse {
		t.Fatal("unknown key should report InfiniteReuse")
	}
	if f.Remaining(k(1, 3)) != 1 {
		t.Fatalf("Remaining = %d, want 1", f.Remaining(k(1, 3)))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want PolicyKind
	}{{"lru", LRU}, {"LFU", LFU}, {"fifo", FIFO}, {"random", Random}, {"oracle", Oracle}, {"belady", Oracle}} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) should error")
	}
}

func TestStatsRates(t *testing.T) {
	s := Stats{Lookups: 10, Hits: 7, Misses: 3}
	if s.HitRate() != 0.7 || s.MissRate() != 0.3 {
		t.Fatalf("rates: %v %v", s.HitRate(), s.MissRate())
	}
	var z Stats
	if z.HitRate() != 0 || z.MissRate() != 0 {
		t.Fatal("zero-lookup rates should be 0")
	}
}

func TestHashedIndexSpreadsTenants(t *testing.T) {
	// With hashed indexing, the same tag from many tenants spreads over
	// sets instead of piling into one row.
	c := New(Config{Name: "h", Sets: 16, Ways: 1, Policy: LRU, Index: Hashed})
	for sid := uint32(0); sid < 16; sid++ {
		c.Insert(Entry{Key: Key{SID: sid, Tag: 0x34800}})
	}
	// A by-address cache would hold exactly 1 of these (all in one set);
	// hashing must retain several.
	if c.Len() < 8 {
		t.Fatalf("hashed index kept only %d of 16 same-tag entries", c.Len())
	}
	byAddr := New(Config{Name: "a", Sets: 16, Ways: 1, Policy: LRU, Index: ByAddress})
	for sid := uint32(0); sid < 16; sid++ {
		byAddr.Insert(Entry{Key: Key{SID: sid, Tag: 0x34800}})
	}
	if byAddr.Len() != 1 {
		t.Fatalf("by-address kept %d same-tag entries, want 1", byAddr.Len())
	}
}

func TestIndexModeStrings(t *testing.T) {
	if ByAddress.String() != "by-address" || BySID.String() != "by-sid" || Hashed.String() != "hashed" {
		t.Fatal("index mode strings wrong")
	}
	if IndexMode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
	if LRU.String() != "LRU" || Oracle.String() != "oracle" || PolicyKind(42).String() == "" {
		t.Fatal("policy strings wrong")
	}
}

func TestResetStats(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 1, Policy: LRU})
	c.Insert(e(1, 1, 1))
	c.Lookup(k(1, 1))
	c.ResetStats()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
	// Contents survive a stats reset.
	if _, ok := c.Peek(k(1, 1)); !ok {
		t.Fatal("ResetStats dropped entries")
	}
}
