package tlb

import (
	"fmt"
	"math/rand"
)

// PolicyKind selects a replacement policy.
type PolicyKind uint8

const (
	// LRU evicts the least recently used way.
	LRU PolicyKind = iota
	// LFU evicts the least frequently used way, tracking accesses in a
	// 4-bit counter per way and halving the whole row when any counter
	// saturates — the scheme the paper motivates from the single-tenant
	// access-frequency analysis (§IV-D, §V-C).
	LFU
	// FIFO evicts the oldest insertion.
	FIFO
	// Random evicts a uniformly random way (deterministic per seed).
	Random
	// Oracle evicts the way whose next use lies furthest in the future
	// (Belady's MIN); it requires future knowledge via SetFuture.
	Oracle
	// PLRU is tree pseudo-LRU: one bit per internal node of a binary
	// tree over the ways, flipped away from each touched way — the
	// hardware-cheap LRU approximation most real TLBs implement.
	// Requires a power-of-two way count of at most 64.
	PLRU
)

// String returns the policy's conventional name.
func (p PolicyKind) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LFU:
		return "LFU"
	case FIFO:
		return "FIFO"
	case Random:
		return "RAND"
	case Oracle:
		return "oracle"
	case PLRU:
		return "PLRU"
	}
	return fmt.Sprintf("PolicyKind(%d)", uint8(p))
}

// ParsePolicy converts a name (as accepted by the CLIs) to a PolicyKind.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "lru", "LRU":
		return LRU, nil
	case "lfu", "LFU":
		return LFU, nil
	case "fifo", "FIFO":
		return FIFO, nil
	case "rand", "random", "RAND":
		return Random, nil
	case "oracle", "belady", "min":
		return Oracle, nil
	case "plru", "pseudo-lru", "PLRU":
		return PLRU, nil
	}
	return 0, fmt.Errorf("tlb: unknown policy %q", s)
}

// replacer is a replacement policy held by the cache as a value. The
// cache maintains the generic per-slot metadata (lastUse, inserted,
// freq) on every access; a replacer adds policy-specific bookkeeping via
// the hooks and picks eviction victims. Adding a policy means adding a
// PolicyKind constant and a case in newReplacer — the cache itself never
// switches on the policy again.
type replacer interface {
	// onLookup observes every demand access, before the set is scanned
	// (the Belady oracle consumes the access stream here).
	onLookup(key Key)
	// onHit runs after the cache refreshed the generic metadata of a
	// demand hit on way wi of set si.
	onHit(si int, set []slot, wi int)
	// onInsert runs after a fill landed in way wi of set si (a fresh
	// insertion, an eviction refill, or an in-place refresh).
	onInsert(si int, set []slot, wi int)
	// victim picks the way to evict; called only on full sets.
	victim(si int, set []slot) int
}

// newReplacer builds the policy value for a validated configuration.
// The cache pointer lets the oracle reach the future attached later via
// SetFuture.
func newReplacer(cfg Config, c *Cache) replacer {
	switch cfg.Policy {
	case LRU:
		return lruReplacer{}
	case LFU:
		return lfuReplacer{}
	case FIFO:
		return fifoReplacer{}
	case Random:
		return &randomReplacer{rng: rand.New(rand.NewSource(cfg.Seed))}
	case Oracle:
		return &oracleReplacer{c: c}
	case PLRU:
		return &plruReplacer{ways: cfg.Ways, bits: make([]uint64, cfg.Sets)}
	}
	panic(fmt.Sprintf("tlb: unreachable policy %d", cfg.Policy))
}

// noHooks provides the empty hook set; policies embed it and override
// what they need.
type noHooks struct{}

func (noHooks) onLookup(Key)              {}
func (noHooks) onHit(int, []slot, int)    {}
func (noHooks) onInsert(int, []slot, int) {}

type lruReplacer struct{ noHooks }

func (lruReplacer) victim(_ int, set []slot) int {
	best := 0
	for i := 1; i < len(set); i++ {
		if set[i].lastUse < set[best].lastUse {
			best = i
		}
	}
	return best
}

type lfuReplacer struct{ noHooks }

// onHit ages the row: when a 4-bit counter saturates, every counter in
// the row is halved (the RRIP-style scheme the paper adopts).
func (lfuReplacer) onHit(_ int, set []slot, wi int) {
	if set[wi].freq == lfuMax {
		for j := range set {
			set[j].freq /= 2
		}
	}
}

func (lfuReplacer) victim(_ int, set []slot) int {
	best := 0
	for i := 1; i < len(set); i++ {
		if set[i].freq < set[best].freq ||
			(set[i].freq == set[best].freq && set[i].lastUse < set[best].lastUse) {
			best = i
		}
	}
	return best
}

type fifoReplacer struct{ noHooks }

func (fifoReplacer) victim(_ int, set []slot) int {
	best := 0
	for i := 1; i < len(set); i++ {
		if set[i].inserted < set[best].inserted {
			best = i
		}
	}
	return best
}

type randomReplacer struct {
	noHooks
	rng *rand.Rand
}

func (r *randomReplacer) victim(_ int, set []slot) int { return r.rng.Intn(len(set)) }

type oracleReplacer struct {
	noHooks
	c *Cache
}

func (o *oracleReplacer) onLookup(key Key) {
	if o.c.future != nil {
		o.c.future.Observe(key)
	}
}

func (o *oracleReplacer) victim(_ int, set []slot) int {
	if o.c.future == nil {
		panic("tlb: oracle cache used without SetFuture")
	}
	best, bestNext := 0, o.c.future.Next(set[0].entry.Key)
	for i := 1; i < len(set); i++ {
		n := o.c.future.Next(set[i].entry.Key)
		if n > bestNext {
			best, bestNext = i, n
		}
	}
	return best
}

// plruReplacer is tree pseudo-LRU: per set, one bit per internal node of
// a binary tree over the ways. Touching a way flips the bits on its
// root-to-leaf path to point away from it; the victim walk follows the
// bits to the leaf they point at.
type plruReplacer struct {
	noHooks
	ways int
	bits []uint64 // one tree per set, heap-ordered, node n at bit n-1
}

func (p *plruReplacer) onHit(si int, _ []slot, wi int)    { p.touch(si, wi) }
func (p *plruReplacer) onInsert(si int, _ []slot, wi int) { p.touch(si, wi) }

func (p *plruReplacer) touch(si, wi int) {
	node := 1
	for span := p.ways; span > 1; span /= 2 {
		half := span / 2
		bit := uint64(1) << (node - 1)
		if wi < half {
			p.bits[si] |= bit // victim search goes right
			node = node * 2
		} else {
			p.bits[si] &^= bit // victim search goes left
			node = node*2 + 1
			wi -= half
		}
	}
}

func (p *plruReplacer) victim(si int, _ []slot) int {
	node, lo := 1, 0
	for span := p.ways; span > 1; span /= 2 {
		half := span / 2
		if p.bits[si]&(1<<(node-1)) != 0 {
			lo += half
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return lo
}
