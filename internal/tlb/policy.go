package tlb

import "fmt"

// PolicyKind selects a replacement policy.
type PolicyKind uint8

const (
	// LRU evicts the least recently used way.
	LRU PolicyKind = iota
	// LFU evicts the least frequently used way, tracking accesses in a
	// 4-bit counter per way and halving the whole row when any counter
	// saturates — the scheme the paper motivates from the single-tenant
	// access-frequency analysis (§IV-D, §V-C).
	LFU
	// FIFO evicts the oldest insertion.
	FIFO
	// Random evicts a uniformly random way (deterministic per seed).
	Random
	// Oracle evicts the way whose next use lies furthest in the future
	// (Belady's MIN); it requires future knowledge via SetFuture.
	Oracle
)

// String returns the policy's conventional name.
func (p PolicyKind) String() string {
	switch p {
	case LRU:
		return "LRU"
	case LFU:
		return "LFU"
	case FIFO:
		return "FIFO"
	case Random:
		return "RAND"
	case Oracle:
		return "oracle"
	}
	return fmt.Sprintf("PolicyKind(%d)", uint8(p))
}

// ParsePolicy converts a name (as accepted by the CLIs) to a PolicyKind.
func ParsePolicy(s string) (PolicyKind, error) {
	switch s {
	case "lru", "LRU":
		return LRU, nil
	case "lfu", "LFU":
		return LFU, nil
	case "fifo", "FIFO":
		return FIFO, nil
	case "rand", "random", "RAND":
		return Random, nil
	case "oracle", "belady", "min":
		return Oracle, nil
	}
	return 0, fmt.Errorf("tlb: unknown policy %q", s)
}
