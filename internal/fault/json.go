package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
)

// PlanSchema names the JSON plan format (cmd/hypersio -faults). Bump the
// suffix on any incompatible change; ReadPlan rejects other schemas.
const PlanSchema = "hypertrio-faultplan/1"

// planDoc is the on-disk shape: times in nanoseconds, addresses in hex,
// kinds by name — writable by hand, stable across internal refactors.
type planDoc struct {
	Schema string     `json:"schema"`
	Seed   int64      `json:"seed,omitempty"`
	Retry  *retryDoc  `json:"retry,omitempty"`
	Events []eventDoc `json:"events"`
}

type retryDoc struct {
	MaxRetries   int     `json:"max_retries,omitempty"`
	BackoffNs    float64 `json:"backoff_ns,omitempty"`
	BackoffMaxNs float64 `json:"backoff_max_ns,omitempty"`
}

type eventDoc struct {
	AtNs   float64 `json:"at_ns"`
	Kind   string  `json:"kind"`
	SID    uint32  `json:"sid,omitempty"`
	IOVA   string  `json:"iova,omitempty"`
	Shift  uint8   `json:"shift,omitempty"`
	N      int     `json:"n,omitempty"`
	DurNs  float64 `json:"dur_ns,omitempty"`
	Silent bool    `json:"silent,omitempty"`
}

func parseIOVA(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
}

// ReadPlan decodes and validates a JSON plan.
func ReadPlan(r io.Reader) (*Plan, error) {
	var doc planDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("fault: decoding plan: %w", err)
	}
	if doc.Schema != PlanSchema {
		return nil, fmt.Errorf("fault: plan schema %q, want %q", doc.Schema, PlanSchema)
	}
	p := &Plan{Seed: doc.Seed}
	if rd := doc.Retry; rd != nil {
		p.Retry = RetryPolicy{
			MaxRetries: rd.MaxRetries,
			Backoff:    sim.FromNanos(rd.BackoffNs),
			BackoffMax: sim.FromNanos(rd.BackoffMaxNs),
		}
	}
	for i, ed := range doc.Events {
		kind, err := KindFromString(ed.Kind)
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
		iova, err := parseIOVA(ed.IOVA)
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: bad iova %q: %w", i, ed.IOVA, err)
		}
		p.Events = append(p.Events, Event{
			At:     sim.Time(0).Add(sim.FromNanos(ed.AtNs)),
			Kind:   kind,
			SID:    mem.SID(ed.SID),
			IOVA:   iova,
			Shift:  ed.Shift,
			N:      ed.N,
			Dur:    sim.FromNanos(ed.DurNs),
			Silent: ed.Silent,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJSON encodes the plan in the on-disk format (indented, one schema
// header; round-trips through ReadPlan).
func (p *Plan) WriteJSON(w io.Writer) error {
	doc := planDoc{Schema: PlanSchema, Seed: p.Seed, Events: []eventDoc{}}
	if p.Retry != (RetryPolicy{}) {
		doc.Retry = &retryDoc{
			MaxRetries:   p.Retry.MaxRetries,
			BackoffNs:    p.Retry.Backoff.Nanoseconds(),
			BackoffMaxNs: p.Retry.BackoffMax.Nanoseconds(),
		}
	}
	for _, ev := range p.Events {
		ed := eventDoc{
			AtNs:   sim.Duration(ev.At).Nanoseconds(),
			Kind:   ev.Kind.String(),
			SID:    uint32(ev.SID),
			Shift:  ev.Shift,
			N:      ev.N,
			DurNs:  ev.Dur.Nanoseconds(),
			Silent: ev.Silent,
		}
		if ev.IOVA != 0 {
			ed.IOVA = "0x" + strconv.FormatUint(ev.IOVA, 16)
		}
		doc.Events = append(doc.Events, ed)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
