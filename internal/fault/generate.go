package fault

import (
	"math/rand"

	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
	"hypertrio/internal/workload"
)

// The generators below materialize the experiment suite's fault
// scripts. They are pure functions of their arguments — a seeded
// math/rand source makes every derived plan reproducible, and the
// resulting Plan is plain data, shareable read-only across concurrently
// running simulation cells.

// InvalidationPlan scripts periodic invalidations over [0, horizon): one
// event every period, cycling over the tenant population chosen by a
// seeded source. targeted invalidates the victim's always-hot ring page
// (the canonical gIOVA layout guarantees it exists); otherwise the whole
// tenant is invalidated (a domain-wide shootdown).
func InvalidationPlan(seed int64, tenants int, period, horizon sim.Duration, targeted bool) *Plan {
	p := &Plan{Seed: seed, Retry: DefaultRetryPolicy()}
	if period <= 0 || tenants <= 0 {
		return p
	}
	rng := rand.New(rand.NewSource(seed))
	for at := sim.Time(0).Add(period); at < sim.Time(horizon); at = at.Add(period) {
		sid := mem.SID(rng.Intn(tenants) + 1)
		if targeted {
			p.Events = append(p.Events, Event{
				At: at, Kind: InvalidatePage, SID: sid,
				IOVA: workload.RingPageFor(sid), Shift: uint8(mem.PageShift),
			})
		} else {
			p.Events = append(p.Events, Event{At: at, Kind: InvalidateTenant, SID: sid})
		}
	}
	return p
}

// ChurnPlan scripts tenant churn over [0, horizon): every period one
// tenant (chosen by a seeded source) detaches — flushing its per-PTag
// state across the datapath — and re-attaches downtime later. Page
// tables persist across the pair, so the tenant restarts cold but
// correct.
func ChurnPlan(seed int64, tenants int, period, downtime, horizon sim.Duration) *Plan {
	p := &Plan{Seed: seed, Retry: DefaultRetryPolicy()}
	if period <= 0 || tenants <= 0 {
		return p
	}
	if downtime <= 0 {
		downtime = period / 4
	}
	rng := rand.New(rand.NewSource(seed))
	for at := sim.Time(0).Add(period); at < sim.Time(horizon); at = at.Add(period) {
		sid := mem.SID(rng.Intn(tenants) + 1)
		p.Events = append(p.Events,
			Event{At: at, Kind: Detach, SID: sid},
			Event{At: at.Add(downtime), Kind: Attach, SID: sid},
		)
	}
	sortEvents(p.Events)
	return p
}

// WalkerFaultPlan scripts periodic walker-fault windows over
// [0, horizon): every period the walker faults for the next burst
// attempts, retrying under policy.
func WalkerFaultPlan(seed int64, period, horizon sim.Duration, burst int, policy RetryPolicy) *Plan {
	p := &Plan{Seed: seed, Retry: policy.withDefaults()}
	if period <= 0 {
		return p
	}
	if burst <= 0 {
		burst = 1
	}
	for at := sim.Time(0).Add(period); at < sim.Time(horizon); at = at.Add(period) {
		p.Events = append(p.Events, Event{At: at, Kind: WalkerFault, N: burst})
	}
	return p
}
