package fault

import (
	"fmt"

	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
)

// Target is the running system as the injector sees it: the invalidation
// datapath (core.System over pipeline.Chain's Invalidator role) plus the
// page tables a Remap rewrites. Every method applies at the instant the
// scripted event fires.
type Target interface {
	// InvalidatePage propagates one page's invalidation through every
	// stage (the driver-unmap path).
	InvalidatePage(sid mem.SID, iova uint64, shift uint8)
	// InvalidateTenant drops every stage's cached state for one SID,
	// returning how many cached objects were dropped.
	InvalidateTenant(sid mem.SID) int
	// FlushAll empties every translation cache, returning the drop count.
	FlushAll() int
	// Remap rewrites the page's guest mapping to a fresh physical frame.
	Remap(sid mem.SID, iova uint64, shift uint8) error
}

// pageKey identifies one page at its native granule for the injector's
// stale/re-walk tracking.
type pageKey struct {
	sid   mem.SID
	page  uint64
	shift uint8
}

func keyOf(sid mem.SID, iova uint64, shift uint8) pageKey {
	return pageKey{sid: sid, page: iova >> shift, shift: shift}
}

// Injector schedules a Plan's events into the sim.Engine (as typed
// events; the payload is the event's index) and applies them to the
// Target. It implements pipeline.FaultHook, so the chain consults it —
// nil-guarded — for walker faults, forced re-walks and stale hits.
//
// The injector exists only when a plan is loaded; a fault-free run never
// constructs one, keeping the hot path allocation- and branch-free.
type Injector struct {
	plan   *Plan
	target Target
	tracer *obs.Tracer
	retry  RetryPolicy

	// Walker-fault arming: attempts fault while either faultsLeft > 0
	// (count-armed, consumed per faulted attempt) or now < faultUntil
	// (window-armed).
	faultsLeft int
	faultUntil sim.Time

	// stale holds pages remapped silently — device-visible caches may
	// still serve the old frame until an invalidation closes the window.
	// rewalk holds pages whose next walk is a forced re-walk (remapped
	// or explicitly invalidated).
	stale  map[pageKey]struct{}
	rewalk map[pageKey]struct{}

	err error // first apply error (e.g. remapping an unmapped page), sticky

	// Counters (obs cells; Stats assembles the snapshot view).
	applied      obs.Counter // scripted events fired
	dropped      obs.Counter // cache entries dropped by invalidations
	pageInvs     obs.Counter // page-scoped invalidation commands
	tenantInvs   obs.Counter // tenant-scoped invalidation commands
	flushes      obs.Counter // broadcast flushes
	remaps       obs.Counter // mid-flight page-table updates applied
	walkerFaults obs.Counter // walker-fault arm events
	faultRetries obs.Counter // walk attempts that faulted and backed off
	rewalks      obs.Counter // forced re-walks observed
	staleHits    obs.Counter // probe hits inside a stale window
	detaches     obs.Counter
	attaches     obs.Counter
}

// NewInjector binds a validated plan to a target. The tracer may be nil.
func NewInjector(p *Plan, target Target, tracer *obs.Tracer) (*Injector, error) {
	if p == nil {
		return nil, fmt.Errorf("fault: nil plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("fault: nil target")
	}
	return &Injector{
		plan:   p,
		target: target,
		tracer: tracer,
		retry:  p.Retry.withDefaults(),
		stale:  make(map[pageKey]struct{}),
		rewalk: make(map[pageKey]struct{}),
	}, nil
}

// Start schedules every plan event into the engine. Call once, before
// the run begins (engine time zero).
func (in *Injector) Start(e *sim.Engine) {
	now := e.Now()
	for i := range in.plan.Events {
		delay := in.plan.Events[i].At.Sub(now)
		if delay < 0 {
			delay = 0
		}
		e.ScheduleEvent(delay, in, uint64(i))
	}
}

// HandleEvent fires one scripted event (sim.EventSink).
func (in *Injector) HandleEvent(e *sim.Engine, now sim.Time, payload uint64) {
	in.apply(now, in.plan.Events[uint32(payload)])
}

func (in *Injector) emit(now sim.Time, ev string, sid mem.SID, iova uint64, shift uint8, n int, d sim.Duration) {
	if in.tracer == nil {
		return
	}
	rec := obs.Event{T: int64(now), Ev: ev, SID: uint32(sid), Shift: shift, N: n, DurPs: int64(d)}
	if iova != 0 {
		rec.IOVA = obs.Hex(iova)
	}
	in.tracer.Emit(rec)
}

// apply executes one scripted event against the target at time now.
func (in *Injector) apply(now sim.Time, ev Event) {
	in.applied.Inc()
	switch ev.Kind {
	case InvalidatePage:
		in.invalidatePage(now, ev.SID, ev.IOVA, ev.Shift)
	case InvalidateTenant:
		n := in.target.InvalidateTenant(ev.SID)
		in.tenantInvs.Inc()
		in.dropped.Add(uint64(n))
		in.clearStaleSID(ev.SID)
		in.emit(now, "invalidate", ev.SID, 0, 0, n, 0)
	case FlushAll:
		n := in.target.FlushAll()
		in.flushes.Inc()
		in.dropped.Add(uint64(n))
		clear(in.stale)
		in.emit(now, "invalidate", 0, 0, 0, n, 0)
	case Remap:
		if err := in.target.Remap(ev.SID, ev.IOVA, ev.Shift); err != nil {
			if in.err == nil {
				in.err = fmt.Errorf("fault: remap SID %d iova %#x: %w", ev.SID, ev.IOVA, err)
			}
			return
		}
		in.remaps.Inc()
		in.emit(now, "remap", ev.SID, ev.IOVA, ev.Shift, 0, 0)
		if ev.Silent {
			// No invalidation: the device may keep serving the old frame
			// until a later InvalidatePage closes the window.
			in.stale[keyOf(ev.SID, ev.IOVA, ev.Shift)] = struct{}{}
		} else {
			in.invalidatePage(now, ev.SID, ev.IOVA, ev.Shift)
		}
	case WalkerFault:
		in.walkerFaults.Inc()
		if ev.Dur > 0 {
			if until := now.Add(ev.Dur); until > in.faultUntil {
				in.faultUntil = until
			}
		} else {
			n := ev.N
			if n <= 0 {
				n = 1
			}
			in.faultsLeft += n
		}
		in.emit(now, "walker_fault", ev.SID, 0, 0, ev.N, ev.Dur)
	case Detach:
		n := in.target.InvalidateTenant(ev.SID)
		in.detaches.Inc()
		in.dropped.Add(uint64(n))
		in.clearStaleSID(ev.SID)
		in.emit(now, "detach", ev.SID, 0, 0, n, 0)
	case Attach:
		in.attaches.Inc()
		in.emit(now, "attach", ev.SID, 0, 0, 0, 0)
	}
}

// invalidatePage issues one page's invalidation command: it closes any
// stale window for the page and marks its next walk a forced re-walk.
func (in *Injector) invalidatePage(now sim.Time, sid mem.SID, iova uint64, shift uint8) {
	in.target.InvalidatePage(sid, iova, shift)
	in.pageInvs.Inc()
	k := keyOf(sid, iova, shift)
	delete(in.stale, k)
	in.rewalk[k] = struct{}{}
	in.emit(now, "invalidate", sid, iova, shift, 0, 0)
}

func (in *Injector) clearStaleSID(sid mem.SID) {
	for k := range in.stale {
		if k.sid == sid {
			delete(in.stale, k)
		}
	}
}

// WalkAttempt implements pipeline.FaultHook: a walk attempt faults while
// the injector is armed and the host has not yet serviced the fault
// (attempt < MaxRetries); the backoff doubles per attempt up to the cap.
func (in *Injector) WalkAttempt(now sim.Time, sid mem.SID, attempt int) (sim.Duration, bool) {
	if attempt >= in.retry.MaxRetries {
		return 0, false // host serviced the fault; the walk proceeds
	}
	if in.faultsLeft > 0 {
		in.faultsLeft--
	} else if now >= in.faultUntil {
		return 0, false
	}
	in.faultRetries.Inc()
	d := in.retry.Backoff << uint(attempt)
	if d > in.retry.BackoffMax {
		d = in.retry.BackoffMax
	}
	return d, true
}

// OnWalk implements pipeline.FaultHook: the first walk of a page after
// its remap/invalidation is the forced re-walk the script provoked.
func (in *Injector) OnWalk(now sim.Time, sid mem.SID, iova uint64, shift uint8) {
	k := keyOf(sid, iova, shift)
	if _, ok := in.rewalk[k]; !ok {
		return
	}
	delete(in.rewalk, k)
	in.rewalks.Inc()
	in.emit(now, "rewalk", sid, iova, shift, 0, 0)
}

// OnProbeHit implements pipeline.FaultHook: a device-side hit on a
// silently remapped page is a stale-translation window exposure.
func (in *Injector) OnProbeHit(now sim.Time, sid mem.SID, iova uint64, shift uint8) {
	if len(in.stale) == 0 {
		return
	}
	if _, ok := in.stale[keyOf(sid, iova, shift)]; !ok {
		return
	}
	in.staleHits.Inc()
	in.emit(now, "stale_hit", sid, iova, shift, 0, 0)
}

// Err reports the first event-application failure (a plan remapping an
// unmappable page), checked by core.System after the run drains.
func (in *Injector) Err() error { return in.err }

// Stats is the injector's accounting snapshot.
type Stats struct {
	Applied       uint64 // scripted events fired
	Dropped       uint64 // cache entries dropped by invalidations
	PageInvs      uint64 // page-scoped invalidation commands
	TenantInvs    uint64 // tenant-scoped invalidation commands
	Flushes       uint64 // broadcast flushes
	Remaps        uint64 // mid-flight page-table updates
	WalkerFaults  uint64 // walker-fault arm events
	FaultRetries  uint64 // faulted walk attempts (each backed off once)
	Rewalks       uint64 // forced re-walks observed
	StaleHits     uint64 // probe hits inside a stale window
	Detaches      uint64
	Attaches      uint64
	StalePending  int // pages still inside an unclosed stale window
	RewalkPending int // invalidated/remapped pages not yet re-walked
}

// Stats returns a snapshot of the counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Applied:      in.applied.Value(),
		Dropped:      in.dropped.Value(),
		PageInvs:     in.pageInvs.Value(),
		TenantInvs:   in.tenantInvs.Value(),
		Flushes:      in.flushes.Value(),
		Remaps:       in.remaps.Value(),
		WalkerFaults: in.walkerFaults.Value(),
		FaultRetries: in.faultRetries.Value(),
		Rewalks:      in.rewalks.Value(),
		StaleHits:    in.staleHits.Value(),
		Detaches:     in.detaches.Value(),
		Attaches:     in.attaches.Value(),
		StalePending: len(in.stale), RewalkPending: len(in.rewalk),
	}
}

// Register publishes the injector's counters under prefix ("fault.*").
func (in *Injector) Register(r *obs.Registry, prefix string) {
	r.Counter(prefix+".applied", &in.applied)
	r.Counter(prefix+".dropped", &in.dropped)
	r.Counter(prefix+".page_invalidates", &in.pageInvs)
	r.Counter(prefix+".tenant_invalidates", &in.tenantInvs)
	r.Counter(prefix+".flushes", &in.flushes)
	r.Counter(prefix+".remaps", &in.remaps)
	r.Counter(prefix+".walker_faults", &in.walkerFaults)
	r.Counter(prefix+".fault_retries", &in.faultRetries)
	r.Counter(prefix+".rewalks", &in.rewalks)
	r.Counter(prefix+".stale_hits", &in.staleHits)
	r.Counter(prefix+".detaches", &in.detaches)
	r.Counter(prefix+".attaches", &in.attaches)
}
