// Package fault is the simulator's deterministic fault- and
// event-injection subsystem. A Plan is a seedable, reproducible script of
// timed events — targeted and broadcast TLB invalidations, mid-flight
// page-table remaps, walker faults with retry/backoff, and tenant churn
// (SID teardown / re-attach) — that an Injector schedules into the
// sim.Engine as typed events and applies to the running system through
// the Target interface (implemented by core.System over pipeline.Chain's
// Invalidator role).
//
// The subsystem is zero-cost-off: without a plan no Injector exists, no
// hook is installed, and the simulation is byte-identical to a build
// without this package (the quick-suite golden manifest pins this).
package fault

import (
	"fmt"
	"sort"

	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
)

// Kind classifies one scripted event.
type Kind uint8

const (
	// InvalidatePage drops one page's translation from every stage that
	// caches it (DevTLB, Prefetch Buffer, chipset IOTLB, walk caches,
	// IOVA history) — the ATS/IOTLB invalidation command a driver unmap
	// issues. The page's next walk is a forced re-walk.
	InvalidatePage Kind = iota
	// InvalidateTenant drops every cached object belonging to one SID
	// across the chain — a domain-wide invalidation.
	InvalidateTenant
	// FlushAll empties every translation cache in the datapath — a
	// broadcast (global) invalidation.
	FlushAll
	// Remap rewrites the page's guest mapping to a fresh physical frame
	// mid-flight (the guest recycling a buffer). A well-behaved remap is
	// followed by the matching invalidation immediately; a Silent remap
	// skips it, opening a stale-translation window that lasts until a
	// later InvalidatePage closes it.
	Remap
	// WalkerFault makes page-table walk attempts fault: the walker backs
	// off per the plan's RetryPolicy and re-attempts, succeeding once the
	// fault window has passed or the host has serviced the fault
	// (MaxRetries reached). N arms the next N attempts; Dur arms every
	// attempt inside [At, At+Dur).
	WalkerFault
	// Detach tears one tenant down (SID teardown): every per-PTag cached
	// state — DevTLB and walk-cache entries, prefetch buffer entries,
	// predictor knowledge, IOVA history — is flushed.
	Detach
	// Attach marks the tenant's re-attach after a Detach. Page tables
	// persist across the pair, so the re-attached tenant restarts cold
	// but correct.
	Attach

	kindCount // sentinel
)

var kindNames = [...]string{
	InvalidatePage:   "invalidate_page",
	InvalidateTenant: "invalidate_tenant",
	FlushAll:         "flush_all",
	Remap:            "remap",
	WalkerFault:      "walker_fault",
	Detach:           "detach",
	Attach:           "attach",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString parses the JSON name of a kind.
func KindFromString(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown event kind %q", s)
}

// Event is one scripted fault at one simulated instant.
type Event struct {
	At   sim.Time // when the event fires
	Kind Kind
	// SID targets per-tenant kinds (InvalidatePage, InvalidateTenant,
	// Remap, Detach, Attach).
	SID mem.SID
	// IOVA and Shift address page-scoped kinds (InvalidatePage, Remap)
	// at the mapping's native page-size class.
	IOVA  uint64
	Shift uint8
	// N arms WalkerFault for the next N walk attempts (default 1).
	N int
	// Dur arms WalkerFault for every attempt within [At, At+Dur).
	Dur sim.Duration
	// Silent suppresses the invalidation a Remap would otherwise issue,
	// opening a stale-translation window.
	Silent bool
}

// RetryPolicy governs how a faulted walk attempt retries: the walker
// backs off Backoff on the first retry, doubling each further retry up to
// BackoffMax; after MaxRetries faulted attempts the host has serviced the
// fault and the walk proceeds (a fault never loses a translation — the
// conservation invariants hold under every plan).
type RetryPolicy struct {
	MaxRetries int
	Backoff    sim.Duration
	BackoffMax sim.Duration
}

// DefaultRetryPolicy is used when a plan leaves the policy zero.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: 500 * sim.Nanosecond, BackoffMax: 10 * sim.Microsecond}
}

// withDefaults fills zero fields from the default policy.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.MaxRetries <= 0 {
		rp.MaxRetries = def.MaxRetries
	}
	if rp.Backoff <= 0 {
		rp.Backoff = def.Backoff
	}
	if rp.BackoffMax <= 0 {
		rp.BackoffMax = def.BackoffMax
	}
	return rp
}

// Plan is a reproducible fault script: events in firing order plus the
// walker retry policy. Same plan + same trace seed ⇒ byte-identical run.
type Plan struct {
	// Seed records the generator seed the plan was derived from
	// (informational; the events are already materialized).
	Seed int64
	// Retry is the walker-fault retry policy; zero fields default.
	Retry RetryPolicy
	// Events fire in order; same-instant events apply in slice order.
	Events []Event
}

// pageShiftValid reports whether s is a supported page-size class.
func pageShiftValid(s uint8) bool {
	return s == uint8(mem.PageShift) || s == uint8(mem.HugePageShift) || s == uint8(mem.GiantPageShift)
}

// Validate reports script errors: unknown kinds, negative or unsorted
// times, missing targets, bad page-size classes.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		if ev.Kind >= kindCount {
			return fmt.Errorf("fault: event %d: unknown kind %d", i, ev.Kind)
		}
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d (%s): negative time %d", i, ev.Kind, ev.At)
		}
		if i > 0 && ev.At < p.Events[i-1].At {
			return fmt.Errorf("fault: event %d (%s) at %v fires before event %d at %v",
				i, ev.Kind, ev.At, i-1, p.Events[i-1].At)
		}
		switch ev.Kind {
		case InvalidatePage, Remap:
			if ev.SID == 0 {
				return fmt.Errorf("fault: event %d (%s): SID required", i, ev.Kind)
			}
			if !pageShiftValid(ev.Shift) {
				return fmt.Errorf("fault: event %d (%s): bad page shift %d", i, ev.Kind, ev.Shift)
			}
		case InvalidateTenant, Detach, Attach:
			if ev.SID == 0 {
				return fmt.Errorf("fault: event %d (%s): SID required", i, ev.Kind)
			}
		case WalkerFault:
			if ev.N < 0 || ev.Dur < 0 {
				return fmt.Errorf("fault: event %d (walker_fault): negative N or Dur", i)
			}
		}
	}
	if rp := p.Retry; rp.MaxRetries < 0 || rp.Backoff < 0 || rp.BackoffMax < 0 {
		return fmt.Errorf("fault: retry policy fields must be non-negative: %+v", rp)
	}
	return nil
}

// sortEvents orders events by time, keeping the original order of
// same-instant events (generators interleave streams).
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}
