package fault

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/obs"
	"hypertrio/internal/sim"
)

// fakeTarget records the invalidation datapath calls in order.
type fakeTarget struct {
	log      []string
	remapErr error
}

func (f *fakeTarget) InvalidatePage(sid mem.SID, iova uint64, shift uint8) {
	f.log = append(f.log, fmt.Sprintf("page(%d,%#x,%d)", sid, iova, shift))
}
func (f *fakeTarget) InvalidateTenant(sid mem.SID) int {
	f.log = append(f.log, fmt.Sprintf("tenant(%d)", sid))
	return 4
}
func (f *fakeTarget) FlushAll() int {
	f.log = append(f.log, "flush")
	return 9
}
func (f *fakeTarget) Remap(sid mem.SID, iova uint64, shift uint8) error {
	f.log = append(f.log, fmt.Sprintf("remap(%d,%#x,%d)", sid, iova, shift))
	return f.remapErr
}

func newTestInjector(t *testing.T, p *Plan, tgt Target, tr *obs.Tracer) *Injector {
	t.Helper()
	in, err := NewInjector(p, tgt, tr)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInjectorAppliesPlanInOrder(t *testing.T) {
	p := fullPlan()
	tgt := &fakeTarget{}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	in := newTestInjector(t, p, tgt, tr)
	e := sim.NewEngine()
	in.Start(e)
	if e.Pending() != len(p.Events) {
		t.Fatalf("Start scheduled %d events, want %d", e.Pending(), len(p.Events))
	}
	e.Run()
	want := []string{
		"page(3,0x34806000,12)",  // InvalidatePage of SID 3's ring page
		"remap(3,0x34806000,12)", // silent remap: no invalidation follows
		"tenant(5)",
		"tenant(2)", // detach flushes the tenant
		"flush",
	}
	if got := strings.Join(tgt.log, " "); got != strings.Join(want, " ") {
		t.Errorf("target call order:\n got %s\nwant %s", got, strings.Join(want, " "))
	}
	st := in.Stats()
	if st.Applied != uint64(len(p.Events)) {
		t.Errorf("applied %d events, want %d", st.Applied, len(p.Events))
	}
	if st.PageInvs != 1 || st.TenantInvs != 1 || st.Flushes != 1 || st.Remaps != 1 ||
		st.Detaches != 1 || st.Attaches != 1 || st.WalkerFaults != 2 {
		t.Errorf("stats drifted: %+v", st)
	}
	// tenant(5): 4 dropped; detach: 4; flush: 9.
	if st.Dropped != 17 {
		t.Errorf("dropped = %d, want 17", st.Dropped)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range []string{`"ev":"invalidate"`, `"ev":"remap"`, `"ev":"walker_fault"`, `"ev":"detach"`, `"ev":"attach"`} {
		if !strings.Contains(buf.String(), ev) {
			t.Errorf("trace lacks %s", ev)
		}
	}
	if err := in.Err(); err != nil {
		t.Errorf("unexpected injector error: %v", err)
	}
}

func TestInjectorRemapErrorSticky(t *testing.T) {
	p := &Plan{Events: []Event{{At: 1, Kind: Remap, SID: 1, IOVA: 0x5000, Shift: 12}}}
	tgt := &fakeTarget{remapErr: fmt.Errorf("boom")}
	in := newTestInjector(t, p, tgt, nil)
	e := sim.NewEngine()
	in.Start(e)
	e.Run()
	if err := in.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Err() = %v, want the remap failure", err)
	}
}

func TestWalkerFaultCountArming(t *testing.T) {
	p := &Plan{
		Retry:  RetryPolicy{MaxRetries: 3, Backoff: sim.Microsecond, BackoffMax: 10 * sim.Microsecond},
		Events: []Event{{At: 0, Kind: WalkerFault, N: 2}},
	}
	in := newTestInjector(t, p, &fakeTarget{}, nil)
	in.apply(0, p.Events[0])

	// First armed attempt faults with the base backoff.
	d, faulted := in.WalkAttempt(0, 1, 0)
	if !faulted || d != sim.Microsecond {
		t.Fatalf("attempt 0: (%v, %v), want (1us, true)", d, faulted)
	}
	// Second armed attempt (attempt 1 of the same walk): backoff doubles.
	d, faulted = in.WalkAttempt(0, 1, 1)
	if !faulted || d != 2*sim.Microsecond {
		t.Fatalf("attempt 1: (%v, %v), want (2us, true)", d, faulted)
	}
	// Arming exhausted: the next attempt proceeds.
	if _, faulted = in.WalkAttempt(0, 1, 2); faulted {
		t.Fatal("attempt with no arming left still faulted")
	}
	if st := in.Stats(); st.FaultRetries != 2 {
		t.Errorf("fault retries = %d, want 2", st.FaultRetries)
	}
}

func TestWalkerFaultWindowAndTimeout(t *testing.T) {
	p := &Plan{
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: sim.Microsecond, BackoffMax: 1500 * sim.Nanosecond},
		Events: []Event{{At: 0, Kind: WalkerFault, Dur: 100 * sim.Microsecond}},
	}
	in := newTestInjector(t, p, &fakeTarget{}, nil)
	in.apply(0, p.Events[0])

	d, faulted := in.WalkAttempt(1, 1, 0)
	if !faulted || d != sim.Microsecond {
		t.Fatalf("attempt 0 in window: (%v, %v), want (1us, true)", d, faulted)
	}
	// Backoff doubles but is capped.
	d, faulted = in.WalkAttempt(2, 1, 1)
	if !faulted || d != 1500*sim.Nanosecond {
		t.Fatalf("attempt 1 in window: (%v, %v), want capped 1.5us", d, faulted)
	}
	// MaxRetries reached: the host serviced the fault, the walk proceeds
	// even inside the window.
	if _, faulted = in.WalkAttempt(3, 1, 2); faulted {
		t.Fatal("attempt past MaxRetries still faulted")
	}
	// Outside the window fresh walks proceed.
	if _, faulted = in.WalkAttempt(sim.Time(200*sim.Microsecond), 1, 0); faulted {
		t.Fatal("attempt outside the window faulted")
	}
}

func TestStaleWindowAndRewalkTracking(t *testing.T) {
	const (
		sid   = mem.SID(4)
		iova  = uint64(0x34806000)
		shift = uint8(12)
	)
	p := &Plan{Events: []Event{
		{At: 1, Kind: Remap, SID: sid, IOVA: iova, Shift: shift, Silent: true},
		{At: 2, Kind: InvalidatePage, SID: sid, IOVA: iova, Shift: shift},
	}}
	in := newTestInjector(t, p, &fakeTarget{}, nil)

	// Silent remap opens the stale window: device-side hits are stale.
	in.apply(1, p.Events[0])
	in.OnProbeHit(1, sid, iova, shift)
	in.OnProbeHit(1, sid, iova, shift)
	in.OnProbeHit(1, sid+1, iova, shift) // different tenant: not stale
	if st := in.Stats(); st.StaleHits != 2 || st.StalePending != 1 {
		t.Fatalf("stale accounting: %+v", st)
	}

	// The invalidation closes the window and forces a re-walk.
	in.apply(2, p.Events[1])
	in.OnProbeHit(2, sid, iova, shift)
	if st := in.Stats(); st.StaleHits != 2 || st.StalePending != 0 {
		t.Fatalf("stale window not closed: %+v", st)
	}
	in.OnWalk(3, sid, iova, shift)
	in.OnWalk(4, sid, iova, shift) // second walk of the page is ordinary
	if st := in.Stats(); st.Rewalks != 1 || st.RewalkPending != 0 {
		t.Fatalf("rewalk accounting: %+v", st)
	}
}

func TestInjectorRejectsBadInput(t *testing.T) {
	if _, err := NewInjector(nil, &fakeTarget{}, nil); err == nil {
		t.Error("NewInjector accepted a nil plan")
	}
	if _, err := NewInjector(&Plan{}, nil, nil); err == nil {
		t.Error("NewInjector accepted a nil target")
	}
	bad := &Plan{Events: []Event{{Kind: kindCount}}}
	if _, err := NewInjector(bad, &fakeTarget{}, nil); err == nil {
		t.Error("NewInjector accepted an invalid plan")
	}
}
