package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hypertrio/internal/mem"
	"hypertrio/internal/sim"
	"hypertrio/internal/workload"
)

func fullPlan() *Plan {
	return &Plan{
		Seed:  7,
		Retry: RetryPolicy{MaxRetries: 2, Backoff: 250 * sim.Nanosecond, BackoffMax: 4 * sim.Microsecond},
		Events: []Event{
			{At: sim.Time(1 * sim.Microsecond), Kind: InvalidatePage, SID: 3, IOVA: workload.RingPageFor(3), Shift: 12},
			{At: sim.Time(2 * sim.Microsecond), Kind: Remap, SID: 3, IOVA: workload.RingPageFor(3), Shift: 12, Silent: true},
			{At: sim.Time(3 * sim.Microsecond), Kind: WalkerFault, N: 2},
			{At: sim.Time(3 * sim.Microsecond), Kind: WalkerFault, Dur: 500 * sim.Nanosecond},
			{At: sim.Time(4 * sim.Microsecond), Kind: InvalidateTenant, SID: 5},
			{At: sim.Time(5 * sim.Microsecond), Kind: Detach, SID: 2},
			{At: sim.Time(6 * sim.Microsecond), Kind: Attach, SID: 2},
			{At: sim.Time(7 * sim.Microsecond), Kind: FlushAll},
		},
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := fullPlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), PlanSchema) {
		t.Fatalf("encoded plan lacks schema header:\n%s", buf.String())
	}
	got, err := ReadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", got, p)
	}
}

func TestReadPlanRejects(t *testing.T) {
	cases := map[string]string{
		"bad schema":    `{"schema":"nope/9","events":[]}`,
		"unknown kind":  `{"schema":"hypertrio-faultplan/1","events":[{"at_ns":1,"kind":"explode"}]}`,
		"unknown field": `{"schema":"hypertrio-faultplan/1","events":[],"frobnicate":1}`,
		"bad iova":      `{"schema":"hypertrio-faultplan/1","events":[{"at_ns":1,"kind":"invalidate_page","sid":1,"iova":"zz","shift":12}]}`,
		"not json":      `hello`,
	}
	for name, doc := range cases {
		if _, err := ReadPlan(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadPlan accepted %q", name, doc)
		}
	}
}

func TestPlanValidateErrors(t *testing.T) {
	cases := map[string]*Plan{
		"unknown kind": {Events: []Event{{Kind: kindCount}}},
		"negative at":  {Events: []Event{{At: -1, Kind: FlushAll}}},
		"unsorted": {Events: []Event{
			{At: 10, Kind: FlushAll}, {At: 5, Kind: FlushAll},
		}},
		"page without sid":   {Events: []Event{{Kind: InvalidatePage, IOVA: 0x1000, Shift: 12}}},
		"page with bad size": {Events: []Event{{Kind: InvalidatePage, SID: 1, IOVA: 0x1000, Shift: 13}}},
		"tenant without sid": {Events: []Event{{Kind: Detach}}},
		"negative burst":     {Events: []Event{{Kind: WalkerFault, N: -1}}},
		"negative retry":     {Retry: RetryPolicy{MaxRetries: -1}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan must validate (fault-free config): %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("kind %d: string %q parses to (%v, %v)", k, k.String(), got, err)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString accepted bogus")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	h := sim.Duration(200 * sim.Microsecond)
	a := InvalidationPlan(11, 64, 5*sim.Microsecond, h, true)
	b := InvalidationPlan(11, 64, 5*sim.Microsecond, h, true)
	if !reflect.DeepEqual(a, b) {
		t.Error("InvalidationPlan not deterministic for one seed")
	}
	c := InvalidationPlan(12, 64, 5*sim.Microsecond, h, true)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("InvalidationPlan ignores the seed")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
	if want := int(h/(5*sim.Microsecond)) - 1; len(a.Events) != want {
		t.Errorf("targeted plan has %d events, want %d", len(a.Events), want)
	}
	for _, ev := range a.Events {
		if ev.Kind != InvalidatePage || ev.SID < 1 || ev.SID > 64 || ev.IOVA != workload.RingPageFor(ev.SID) {
			t.Fatalf("targeted plan event malformed: %+v", ev)
		}
	}
	broad := InvalidationPlan(11, 64, 5*sim.Microsecond, h, false)
	for _, ev := range broad.Events {
		if ev.Kind != InvalidateTenant {
			t.Fatalf("broadcast plan event malformed: %+v", ev)
		}
	}
}

func TestChurnPlanPairsDetachAttach(t *testing.T) {
	h := sim.Duration(100 * sim.Microsecond)
	p := ChurnPlan(3, 16, 10*sim.Microsecond, 2*sim.Microsecond, h)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	down := map[mem.SID]int{}
	detaches, attaches := 0, 0
	for _, ev := range p.Events {
		switch ev.Kind {
		case Detach:
			detaches++
			down[ev.SID]++
		case Attach:
			attaches++
			if down[ev.SID] == 0 {
				t.Fatalf("attach of SID %d without a preceding detach", ev.SID)
			}
			down[ev.SID]--
		default:
			t.Fatalf("unexpected kind %v in churn plan", ev.Kind)
		}
	}
	if detaches == 0 || detaches != attaches {
		t.Errorf("churn plan detaches=%d attaches=%d, want equal and nonzero", detaches, attaches)
	}
	if !reflect.DeepEqual(p, ChurnPlan(3, 16, 10*sim.Microsecond, 2*sim.Microsecond, h)) {
		t.Error("ChurnPlan not deterministic for one seed")
	}
}

func TestWalkerFaultPlan(t *testing.T) {
	p := WalkerFaultPlan(1, 10*sim.Microsecond, 55*sim.Microsecond, 3, RetryPolicy{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 5 {
		t.Fatalf("got %d events, want 5", len(p.Events))
	}
	for _, ev := range p.Events {
		if ev.Kind != WalkerFault || ev.N != 3 {
			t.Fatalf("malformed walker-fault event: %+v", ev)
		}
	}
	if p.Retry != DefaultRetryPolicy() {
		t.Errorf("zero policy should default, got %+v", p.Retry)
	}
}
