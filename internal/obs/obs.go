// Package obs is the simulator's observability layer: a metrics
// registry of named counters/gauges/histograms that every model
// component publishes into, an NDJSON event tracer fed by model-level
// trace points and an optional probe on the event kernel, and a
// periodic time-series sampler that records bandwidth and structure
// occupancy over simulated time.
//
// Design rules:
//
//   - Zero cost when disabled. Components own their metric cells
//     (Counter, Histogram) as plain struct fields; incrementing one is
//     an ordinary integer add whether or not a Registry has named it.
//     Trace points are nil-guarded at every call site, and the sampler
//     schedules no events unless enabled.
//   - Determinism is preserved. Observability only reads model state;
//     simulation outcomes are byte-identical with it on or off
//     (internal/core pins this with a regression test).
//   - The registry is the single source of truth: the public
//     Result/Stats snapshot types are views assembled from these cells.
package obs

import "hypertrio/internal/sim"

// Options selects which observability features a simulation attaches.
// A nil *Options means everything is off.
type Options struct {
	// Tracer receives model-level trace events (arrival, drop, retry,
	// DevTLB hit/miss, walk start/end, prefetch issue/fill/hit) as
	// NDJSON. Nil disables tracing.
	//
	// A Tracer is not safe for concurrent use: attach one only to a
	// single simulation at a time (the worker pool in internal/runner
	// runs cells concurrently and therefore only uses sampling, which
	// keeps all state per-System).
	Tracer *Tracer
	// EngineEvents additionally probes the event kernel itself,
	// emitting sched/fire/cancel events for every engine event. Very
	// verbose; requires Tracer.
	EngineEvents bool
	// SampleEvery enables the periodic time-series sampler at this
	// interval in simulated time; 0 disables sampling. The resulting
	// Series rides on core.Result.
	SampleEvery sim.Duration
}
