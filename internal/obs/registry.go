package obs

import (
	"fmt"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing metric cell. Components embed
// Counter by value and bump it on their hot paths; a Registry merely
// names the cell for export, so the increment cost is identical whether
// or not observability is enabled. The zero value is ready to use.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Reset zeroes the counter (warmup/measurement phase splits).
func (c *Counter) Reset() { c.v = 0 }

// Histogram is a power-of-two-bucketed distribution: a value v lands in
// the bucket with inclusive upper bound 2^bits.Len64(v)-1. The zero
// value is ready to use; Observe is one shift-count plus two adds.
type Histogram struct {
	count   uint64
	sum     uint64
	buckets [65]uint64 // index = bits.Len64(v)
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// HistogramBucket is one non-empty bucket of a snapshot: N values were
// observed with value <= Le (and greater than the previous bucket's Le).
type HistogramBucket struct {
	Le uint64 `json:"le"`
	N  uint64 `json:"n"`
}

// HistogramSnapshot is an exportable view of a Histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns the non-empty buckets in ascending bound order.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		le := ^uint64(0) // i == 64: everything with the top bit set
		if i < 64 {
			le = uint64(1)<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, N: n})
	}
	return s
}

// Registry is a name directory over metric cells owned by the model's
// components. It does not store values itself — cells live in the
// structures that update them — which is what lets Result/Stats remain
// cheap views while the registry provides uniform export.
//
// All methods are nil-safe no-ops on a nil *Registry, so components can
// register unconditionally. A Registry is not safe for concurrent use;
// each simulation owns its own.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) checkNew(name string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
}

// Counter registers an existing counter cell under name. Registering a
// duplicate name panics: metric names are a fixed schema, so a clash is
// a programming error.
func (r *Registry) Counter(name string, c *Counter) {
	if r == nil {
		return
	}
	r.checkNew(name)
	r.counters[name] = c
}

// Gauge registers a derived instantaneous value under name (e.g. PTB
// occupancy); fn is called at snapshot/sample time.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.checkNew(name)
	r.gauges[name] = fn
}

// Histogram registers an existing histogram cell under name.
func (r *Registry) Histogram(name string, h *Histogram) {
	if r == nil {
		return
	}
	r.checkNew(name)
	r.hists[name] = h
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterValue returns the value of a registered counter by name.
func (r *Registry) CounterValue(name string) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	c, ok := r.counters[name]
	if !ok {
		return 0, false
	}
	return c.Value(), true
}

// Snapshot is a point-in-time export of every registered metric. Maps
// marshal with sorted keys, so the JSON form is deterministic.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every cell and derived gauge.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, fn := range r.gauges {
			s.Gauges[n] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}
