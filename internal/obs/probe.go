package obs

import "hypertrio/internal/sim"

// EngineProbe adapts a Tracer to the event kernel's sim.Probe hook,
// emitting one NDJSON line per engine event: sched when an event enters
// the queue, fire when it executes, cancel when it is removed. Seq is
// the kernel's deterministic tie-break sequence number, so a trace can
// reconstruct exact firing order.
type EngineProbe struct{ T *Tracer }

var _ sim.Probe = EngineProbe{}

// OnSchedule records an event entering the queue for time at.
func (p EngineProbe) OnSchedule(at sim.Time, seq uint64, label string) {
	p.T.Emit(Event{T: int64(at), Ev: "sched", Seq: seq, Label: label})
}

// OnFire records an event beginning execution.
func (p EngineProbe) OnFire(at sim.Time, seq uint64, label string) {
	p.T.Emit(Event{T: int64(at), Ev: "fire", Seq: seq, Label: label})
}

// OnCancel records a pending event being cancelled.
func (p EngineProbe) OnCancel(at sim.Time, seq uint64, label string) {
	p.T.Emit(Event{T: int64(at), Ev: "cancel", Seq: seq, Label: label})
}
