package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// TraceSchema names the NDJSON trace format; the first line of every
// trace file is a schema event carrying it, so consumers can detect
// format drift. Bump the suffix on any incompatible field change (the
// golden test in this package pins the current shape).
const TraceSchema = "hypertrio-trace/1"

// Event is one NDJSON trace record. T is simulated picoseconds. Ev is
// the event kind; the model emits
//
//	arrival, retry, drop, complete          — link slots and packets
//	devtlb_hit, devtlb_miss, prefetch_hit   — per translation request
//	walk_start, walk_end                    — chipset page-table walks
//	prefetch_issue, prefetch_fill, prefetch_abort
//
// a loaded fault plan (internal/fault) additionally emits
//
//	invalidate, remap, walker_fault         — scripted events firing
//	detach, attach                          — tenant churn
//	fault_retry                             — a faulted walk backing off
//	rewalk, stale_hit                       — re-walk / stale-window tracking
//
// and, with Options.EngineEvents, the kernel emits sched, fire, cancel.
// Optional fields are omitted when zero. IOVA is hex-encoded because
// guest addresses exceed JSON's exact-integer range.
type Event struct {
	T     int64  `json:"t"`
	Ev    string `json:"ev"`
	SID   uint32 `json:"sid,omitempty"`
	IOVA  string `json:"iova,omitempty"`
	Shift uint8  `json:"shift,omitempty"`
	DurPs int64  `json:"dur_ps,omitempty"`
	N     int    `json:"n,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
	Label string `json:"label,omitempty"`
}

// Hex renders an address for Event.IOVA.
func Hex(v uint64) string { return "0x" + strconv.FormatUint(v, 16) }

// Tracer serializes Events as NDJSON to a writer. Emit is safe on a nil
// *Tracer (a no-op), so holders can call it unconditionally; hot paths
// in the model still guard with a nil check to avoid building the Event
// at all. The first write error is sticky and reported by Flush.
type Tracer struct {
	bw     *bufio.Writer
	enc    *json.Encoder
	events uint64
	err    error
}

// NewTracer wraps w in a buffered NDJSON encoder and emits the schema
// header event. Call Flush before closing the underlying writer.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriterSize(w, 1<<16)
	t := &Tracer{bw: bw, enc: json.NewEncoder(bw)}
	t.Emit(Event{Ev: "schema", Label: TraceSchema})
	return t
}

// Emit writes one event line.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.err != nil {
		return
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events returns how many events have been emitted (schema line included).
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.events
}

// Flush drains the buffer and returns the first error seen, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}
