package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hypertrio/internal/sim"
)

// MetricsSchema names the -metrics export format (both the JSON
// document and the CSV column set). The golden test pins it.
const MetricsSchema = "hypertrio-metrics/1"

// Point is one time-series sample. Rates are computed over the window
// since the previous sample, so a series plots cleanly as a step chart;
// occupancy fields are instantaneous at T.
type Point struct {
	T             int64   `json:"t_ps"`            // sample time, simulated ps
	Gbps          float64 `json:"gbps"`            // bandwidth over the window
	PTBInUse      int     `json:"ptb_in_use"`      // occupied PTB slots at T
	PBHitRate     float64 `json:"pb_hit_rate"`     // Prefetch Buffer hit rate over the window
	DevTLBHitRate float64 `json:"devtlb_hit_rate"` // DevTLB hit rate over the window
	WalkersBusy   int     `json:"walkers_busy"`    // in-flight chipset walks at T
	WalkerUtil    float64 `json:"walker_util"`     // WalkersBusy / walker cap (0 when unlimited)
}

// seriesColumns is the CSV header; keep in sync with Point's JSON tags.
const seriesColumns = "t_ps,gbps,ptb_in_use,pb_hit_rate,devtlb_hit_rate,walkers_busy,walker_util"

// Series is a sampled run: points every Interval of simulated time
// (plus one final partial-window point at the end of the run).
type Series struct {
	Interval sim.Duration
	Points   []Point
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV renders the series with a fixed header row. The encoding is
// deterministic (shortest round-trip float formatting).
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, seriesColumns+"\n"); err != nil {
		return err
	}
	if s == nil {
		return nil
	}
	for _, p := range s.Points {
		_, err := fmt.Fprintf(w, "%d,%s,%d,%s,%s,%d,%s\n",
			p.T, ftoa(p.Gbps), p.PTBInUse, ftoa(p.PBHitRate),
			ftoa(p.DevTLBHitRate), p.WalkersBusy, ftoa(p.WalkerUtil))
		if err != nil {
			return err
		}
	}
	return nil
}

// MetricsExport is the JSON document written for -metrics FILE: the
// time series (when sampling was enabled) plus a final snapshot of
// every registered metric.
type MetricsExport struct {
	Schema     string                       `json:"schema"`
	IntervalPs int64                        `json:"interval_ps,omitempty"`
	Series     []Point                      `json:"series,omitempty"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// NewMetricsExport assembles the export document from a run's series
// and registry snapshot (either may be nil/empty).
func NewMetricsExport(series *Series, snap Snapshot) MetricsExport {
	e := MetricsExport{
		Schema:     MetricsSchema,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
	}
	if series != nil {
		e.IntervalPs = int64(series.Interval)
		e.Series = series.Points
	}
	return e
}

// WriteJSON marshals the export with indentation. Go marshals maps with
// sorted keys, so the output is deterministic.
func (e MetricsExport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
