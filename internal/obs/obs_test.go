package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hypertrio/internal/sim"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 0+1+1+7+8+1<<40 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// 0 -> bucket le 0 (n=1); 1,1 -> le 1 (n=2); 7 -> le 7 (n=1);
	// 8 -> le 15 (n=1); 1<<40 -> le 2^41-1 (n=1).
	want := []HistogramBucket{
		{Le: 0, N: 1}, {Le: 1, N: 2}, {Le: 7, N: 1}, {Le: 15, N: 1}, {Le: 1<<41 - 1, N: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	var c Counter
	r.Counter("a", &c) // must not panic
	r.Gauge("b", func() float64 { return 1 })
	r.Histogram("c", &Histogram{})
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry names = %v", names)
	}
	if _, ok := r.CounterValue("a"); ok {
		t.Fatal("nil registry resolved a counter")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.Counter("x", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r.Gauge("x", func() float64 { return 0 })
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	var h Histogram
	h.Observe(3)
	r.Counter("z.count", &c)
	r.Gauge("a.gauge", func() float64 { return 2.5 })
	r.Histogram("m.hist", &h)

	if got := r.Names(); strings.Join(got, ",") != "a.gauge,m.hist,z.count" {
		t.Fatalf("names = %v", got)
	}
	if v, ok := r.CounterValue("z.count"); !ok || v != 7 {
		t.Fatalf("CounterValue = %d,%v", v, ok)
	}
	c.Inc() // registry reads the live cell, not a copy
	snap := r.Snapshot()
	if snap.Counters["z.count"] != 8 {
		t.Fatalf("snapshot counter = %d, want 8", snap.Counters["z.count"])
	}
	if snap.Gauges["a.gauge"] != 2.5 {
		t.Fatalf("snapshot gauge = %v", snap.Gauges["a.gauge"])
	}
	if snap.Histograms["m.hist"].Count != 1 {
		t.Fatalf("snapshot hist = %+v", snap.Histograms["m.hist"])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Ev: "x"}) // must not panic
	if tr.Events() != 0 {
		t.Fatal("nil tracer counted events")
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("nil tracer flush: %v", err)
	}
}

// TestTracerGoldenNDJSON pins the hypertrio-trace/1 line format. If this
// test needs updating, bump TraceSchema.
func TestTracerGoldenNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{T: 1542, Ev: "arrival", SID: 3})
	tr.Emit(Event{T: 2000, Ev: "devtlb_miss", SID: 3, IOVA: Hex(0xfff0_0000_1000), Shift: 12})
	tr.Emit(Event{T: 2902, Ev: "walk_end", SID: 3, IOVA: Hex(0xfff0_0000_1000), DurPs: 902})
	tr.Emit(Event{T: 4, Ev: "fire", Seq: 9, Label: "sample"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":0,"ev":"schema","label":"hypertrio-trace/1"}
{"t":1542,"ev":"arrival","sid":3}
{"t":2000,"ev":"devtlb_miss","sid":3,"iova":"0xfff000001000","shift":12}
{"t":2902,"ev":"walk_end","sid":3,"iova":"0xfff000001000","dur_ps":902}
{"t":4,"ev":"fire","seq":9,"label":"sample"}
`
	if got := buf.String(); got != want {
		t.Fatalf("trace format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if tr.Events() != 5 {
		t.Fatalf("events = %d, want 5", tr.Events())
	}
}

// TestSeriesGoldenCSV pins the -metrics CSV column set.
func TestSeriesGoldenCSV(t *testing.T) {
	s := &Series{
		Interval: 10 * sim.Microsecond,
		Points: []Point{
			{T: 10000000, Gbps: 187.5, PTBInUse: 3, PBHitRate: 0.25, DevTLBHitRate: 0.5, WalkersBusy: 2, WalkerUtil: 0.5},
			{T: 20000000, Gbps: 200},
		},
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_ps,gbps,ptb_in_use,pb_hit_rate,devtlb_hit_rate,walkers_busy,walker_util\n" +
		"10000000,187.5,3,0.25,0.5,2,0.5\n" +
		"20000000,200,0,0,0,0,0\n"
	if got := buf.String(); got != want {
		t.Fatalf("csv format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSeriesNilCSVHeaderOnly(t *testing.T) {
	var s *Series
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != seriesColumns+"\n" {
		t.Fatalf("nil series csv = %q", got)
	}
}

// TestMetricsExportGoldenJSON pins the hypertrio-metrics/1 document
// shape. If this test needs updating, bump MetricsSchema.
func TestMetricsExportGoldenJSON(t *testing.T) {
	var c Counter
	c.Add(12)
	var h Histogram
	h.Observe(5)
	r := NewRegistry()
	r.Counter("ptb.allocs", &c)
	r.Gauge("ptb.in_use", func() float64 { return 4 })
	r.Histogram("core.miss_latency", &h)
	series := &Series{Interval: 10 * sim.Microsecond, Points: []Point{
		{T: 10000000, Gbps: 100, PTBInUse: 1},
	}}
	var buf bytes.Buffer
	if err := NewMetricsExport(series, r.Snapshot()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "schema": "hypertrio-metrics/1",
  "interval_ps": 10000000,
  "series": [
    {
      "t_ps": 10000000,
      "gbps": 100,
      "ptb_in_use": 1,
      "pb_hit_rate": 0,
      "devtlb_hit_rate": 0,
      "walkers_busy": 0,
      "walker_util": 0
    }
  ],
  "counters": {
    "ptb.allocs": 12
  },
  "gauges": {
    "ptb.in_use": 4
  },
  "histograms": {
    "core.miss_latency": {
      "count": 1,
      "sum": 5,
      "buckets": [
        {
          "le": 7,
          "n": 1
        }
      ]
    }
  }
}
`
	if got := buf.String(); got != want {
		t.Fatalf("metrics format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsExportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMetricsExport(nil, Snapshot{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != MetricsSchema {
		t.Fatalf("schema = %v", doc["schema"])
	}
	if len(doc) != 1 {
		t.Fatalf("empty export has extra fields: %v", doc)
	}
}

func TestEngineProbeEmits(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	e := sim.NewEngine()
	e.SetProbe(EngineProbe{T: tr})
	id := e.ScheduleLabeled(5, "a", func(*sim.Engine, sim.Time) {})
	e.ScheduleLabeled(7, "b", func(*sim.Engine, sim.Time) {})
	e.Cancel(id)
	e.Run()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		kinds = append(kinds, ev.Ev)
	}
	want := "schema,sched,sched,cancel,fire"
	if got := strings.Join(kinds, ","); got != want {
		t.Fatalf("probe event kinds = %s, want %s", got, want)
	}
}
