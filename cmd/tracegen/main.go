// Command tracegen drives the HyperSIO trace pipeline: it constructs
// hyper-tenant traces directly (Trace Constructor), or reproduces the
// paper's two-stage flow — emulated log-collection runs of at most 24
// tenants each, written as per-run HLOG files, merged afterwards into one
// HSIO trace. It also inspects existing trace files.
//
// Usage:
//
//	tracegen -benchmark websearch -tenants 1024 -interleave RR1 -scale 0.01 -o web1024.hsio
//	tracegen -collect logs/ -benchmark iperf3 -tenants 50 -scale 0.01
//	tracegen -merge logs/ -benchmark iperf3 -tenants 50 -interleave RR4 -scale 0.01 -o merged.hsio
//	tracegen -inspect web1024.hsio -dump 20
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hypertrio"
	"hypertrio/internal/collector"
	"hypertrio/internal/stats"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

func main() {
	var (
		benchmark  = flag.String("benchmark", "iperf3", "workload: iperf3, mediastream, websearch")
		tenants    = flag.Int("tenants", 64, "number of concurrent tenants")
		interleave = flag.String("interleave", "RR1", "inter-tenant interleaving")
		seed       = flag.Int64("seed", 42, "construction seed")
		scale      = flag.Float64("scale", 0.01, "trace scale in (0,1]")
		out        = flag.String("o", "", "output file for the binary trace (default: stdout summary only)")
		inspect    = flag.String("inspect", "", "read and summarize an existing trace file")
		dump       = flag.Int("dump", 0, "with -inspect: print the first N packets")
		collect    = flag.String("collect", "", "emulate log-collection runs and write per-run HLOG files into this directory")
		merge      = flag.String("merge", "", "merge per-run HLOG files from this directory into one trace")
	)
	flag.Parse()

	var err error
	switch {
	case *inspect != "":
		err = inspectTrace(*inspect, *dump)
	case *collect != "":
		err = collectLogs(*collect, *benchmark, *tenants, *seed, *scale)
	case *merge != "":
		err = mergeLogs(*merge, *benchmark, *interleave, *out, *seed, *scale)
	default:
		err = generate(*benchmark, *interleave, *out, *tenants, *seed, *scale)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// validateShape rejects bad generation inputs before any work happens,
// so the command exits cleanly (non-zero, one-line error) instead of
// silently producing an empty or partial artifact.
func validateShape(tenants int, scale float64) error {
	if tenants <= 0 {
		return fmt.Errorf("-tenants must be positive, got %d", tenants)
	}
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("-scale must be in (0,1], got %g", scale)
	}
	return nil
}

func generate(benchmark, interleave, out string, tenants int, seed int64, scale float64) error {
	if err := validateShape(tenants, scale); err != nil {
		return err
	}
	kind, err := hypertrio.ParseBenchmark(benchmark)
	if err != nil {
		return err
	}
	iv, err := hypertrio.ParseInterleave(interleave)
	if err != nil {
		return err
	}
	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark: kind, Tenants: tenants, Interleave: iv, Seed: seed, Scale: scale,
	})
	if err != nil {
		return err
	}
	summarize(tr)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return fmt.Errorf("writing %s: %w", out, err)
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%s bytes)\n", out, stats.Count(uint64(info.Size())))
	return f.Close()
}

func inspectTrace(path string, dump int) error {
	if dump < 0 {
		return fmt.Errorf("-dump must be >= 0, got %d", dump)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}
	summarize(tr)
	if dump > 0 {
		if dump > len(tr.Packets) {
			dump = len(tr.Packets)
		}
		fmt.Printf("\nfirst %d packets:\n", dump)
		for i, p := range tr.Packets[:dump] {
			unmap := ""
			if p.UnmapIOVA != 0 {
				unmap = fmt.Sprintf("  [unmap %#x/%d]", p.UnmapIOVA, p.UnmapShift)
			}
			fmt.Printf("  %4d  sid=%-4d ring=%#x data=%#x mbox=%#x%s\n",
				i, p.SID, p.Ring, p.Data, p.Mailbox, unmap)
		}
	}
	return nil
}

func collectLogs(dir, benchmark string, tenants int, seed int64, scale float64) error {
	if err := validateShape(tenants, scale); err != nil {
		return err
	}
	kind, err := hypertrio.ParseBenchmark(benchmark)
	if err != nil {
		return err
	}
	c, err := collector.New(workload.ProfileFor(kind), seed, scale)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	runs := collector.Runs(tenants)
	fmt.Printf("collecting %d tenants over %d emulated runs (%d slots/run)...\n",
		tenants, runs, collector.MaxSlotsPerRun)
	for run := 0; run < runs; run++ {
		slots := collector.MaxSlotsPerRun
		if remaining := tenants - run*collector.MaxSlotsPerRun; remaining < slots {
			slots = remaining
		}
		logs, err := c.CollectRun(run, slots)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("run%03d.hlog", run))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := collector.WriteLogs(f, run, logs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		pkts := 0
		for _, l := range logs {
			pkts += len(l.Packets)
		}
		fmt.Printf("  %s: %d tenants, %s packets\n", path, len(logs), stats.Count(uint64(pkts)))
	}
	return nil
}

func mergeLogs(dir, benchmark, interleave, out string, seed int64, scale float64) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("-scale must be in (0,1], got %g", scale)
	}
	kind, err := hypertrio.ParseBenchmark(benchmark)
	if err != nil {
		return err
	}
	iv, err := hypertrio.ParseInterleave(interleave)
	if err != nil {
		return err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.hlog"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .hlog files in %s", dir)
	}
	sort.Strings(paths)
	var logs []collector.TenantLog
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, runLogs, err := collector.ReadLogs(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", path, err)
		}
		logs = append(logs, runLogs...)
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i].SID < logs[j].SID })
	tr, err := collector.Merge(logs, kind, workload.ProfileFor(kind), iv, seed, scale)
	if err != nil {
		return err
	}
	summarize(tr)
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return f.Close()
}

func summarize(tr *trace.Trace) {
	fmt.Printf("trace: %s, %d tenants, %v interleave, seed %d, scale %g\n",
		tr.Benchmark, tr.Tenants, tr.Interleave, tr.Seed, tr.Scale)
	fmt.Printf("  packets:  %s (%s translation requests)\n",
		stats.Count(uint64(len(tr.Packets))), stats.Count(uint64(tr.Requests())))
	fmt.Printf("  budgets:  min %s, max %s requests/tenant\n",
		stats.Count(uint64(tr.MinTenantBudget())), stats.Count(uint64(tr.MaxTenantBudget())))
	unmaps := 0
	for _, p := range tr.Packets {
		if p.UnmapIOVA != 0 {
			unmaps++
		}
	}
	fmt.Printf("  unmaps:   %s driver page recycles\n", stats.Count(uint64(unmaps)))
	if n := len(tr.Packets); n > 0 {
		perPkt := float64(tr.Requests()) / float64(n)
		if perPkt != float64(workload.RequestsPerPacket) {
			fmt.Printf("  WARNING: %.2f requests/packet (expected %d)\n", perPkt, workload.RequestsPerPacket)
		}
	}
}
