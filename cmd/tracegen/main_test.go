package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.hsio")
	if err := generate("websearch", "RR4", out, 6, 7, 0.003); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	if err := inspectTrace(out, 5); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := generate("bogus", "RR1", "", 4, 1, 0.01); err == nil {
		t.Error("bad benchmark accepted")
	}
	if err := generate("iperf3", "ZZ", "", 4, 1, 0.01); err == nil {
		t.Error("bad interleave accepted")
	}
	if err := generate("iperf3", "RR1", "/no/such/dir/x.hsio", 4, 1, 0.01); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestInspectErrors(t *testing.T) {
	if err := inspectTrace("/nonexistent.hsio", 0); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.hsio")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inspectTrace(bad, 0); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic not detected: %v", err)
	}
}

func TestCollectAndMergePipeline(t *testing.T) {
	dir := t.TempDir()
	logs := filepath.Join(dir, "logs")
	if err := collectLogs(logs, "iperf3", 30, 42, 0.002); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(logs, "*.hlog"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 { // 30 tenants = 2 runs
		t.Fatalf("got %d log files, want 2", len(files))
	}
	out := filepath.Join(dir, "merged.hsio")
	if err := mergeLogs(logs, "iperf3", "RR1", out, 42, 0.002); err != nil {
		t.Fatal(err)
	}
	if err := inspectTrace(out, 0); err != nil {
		t.Fatal(err)
	}
}

func TestMergeErrors(t *testing.T) {
	if err := mergeLogs(t.TempDir(), "iperf3", "RR1", "", 1, 0.01); err == nil {
		t.Error("empty log dir accepted")
	}
	if err := mergeLogs(t.TempDir(), "bogus", "RR1", "", 1, 0.01); err == nil {
		t.Error("bad benchmark accepted")
	}
}

// TestShapeValidation pins the upfront input validation: degenerate
// tenant counts, scales and dump lengths must fail cleanly before any
// file is produced.
func TestShapeValidation(t *testing.T) {
	if err := generate("iperf3", "RR1", "", 0, 1, 0.01); err == nil {
		t.Error("zero tenants accepted")
	}
	if err := generate("iperf3", "RR1", "", -4, 1, 0.01); err == nil {
		t.Error("negative tenants accepted")
	}
	if err := generate("iperf3", "RR1", "", 4, 1, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if err := generate("iperf3", "RR1", "", 4, 1, 1.01); err == nil {
		t.Error("scale > 1 accepted")
	}
	dir := t.TempDir()
	if err := collectLogs(dir, "iperf3", 0, 1, 0.01); err == nil {
		t.Error("collect with zero tenants accepted")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Error("collect wrote files despite invalid inputs")
	}
	if err := mergeLogs(dir, "iperf3", "RR1", "", 1, -0.5); err == nil {
		t.Error("merge with negative scale accepted")
	}
	out := filepath.Join(t.TempDir(), "x.hsio")
	if err := generate("iperf3", "RR1", out, 0, 1, 0.01); err == nil {
		t.Error("zero tenants accepted with -o")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("output file created despite invalid inputs")
	}
}

func TestInspectNegativeDump(t *testing.T) {
	if err := inspectTrace("/nonexistent.hsio", -1); err == nil ||
		!strings.Contains(err.Error(), "-dump") {
		t.Fatalf("negative dump not rejected upfront: %v", err)
	}
}
