package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapshot marshals a snapshot to a temp file and returns the path.
func writeSnapshot(t *testing.T, name string, snap Snapshot) string {
	t.Helper()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func snapWith(benches ...Benchmark) Snapshot {
	return Snapshot{Schema: "hypertrio-bench/2", Benchmarks: benches}
}

func TestCompareSnapshotsVerdicts(t *testing.T) {
	old := snapWith(
		Benchmark{Name: "EndToEnd/base", NsPerOp: 1000, AllocsPerOp: 0},
		Benchmark{Name: "EndToEnd/hypertrio", NsPerOp: 2000, AllocsPerOp: 5},
		Benchmark{Name: "NestedWalk", NsPerOp: 100, AllocsPerOp: 0},
	)
	cases := []struct {
		name      string
		current   Snapshot
		threshold float64
		want      bool
		wantOut   []string
	}{
		{
			"unchanged is clean",
			snapWith(
				Benchmark{Name: "EndToEnd/base", NsPerOp: 1000},
				Benchmark{Name: "EndToEnd/hypertrio", NsPerOp: 2000, AllocsPerOp: 5},
				Benchmark{Name: "NestedWalk", NsPerOp: 100},
			),
			0.10, false,
			[]string{"no regressions across 3 benchmark(s)"},
		},
		{
			"slowdown beyond threshold regresses",
			snapWith(Benchmark{Name: "EndToEnd/base", NsPerOp: 1200}),
			0.10, true,
			[]string{"REGRESSED", "20.0% slower"},
		},
		{
			"slowdown within threshold tolerated",
			snapWith(Benchmark{Name: "EndToEnd/base", NsPerOp: 1050}),
			0.10, false,
			[]string{"no regressions"},
		},
		{
			"improvement is never a failure",
			snapWith(Benchmark{Name: "EndToEnd/base", NsPerOp: 500}),
			0.10, false,
			[]string{"improved"},
		},
		{
			"alloc growth on a zero-alloc path regresses",
			snapWith(Benchmark{Name: "NestedWalk", NsPerOp: 100, AllocsPerOp: 2}),
			0.10, true,
			[]string{"allocs/op grew 0.0 -> 2.0"},
		},
		{
			"sub-allocation float noise tolerated",
			snapWith(Benchmark{Name: "EndToEnd/hypertrio", NsPerOp: 2000, AllocsPerOp: 5.4}),
			0.10, false,
			[]string{"no regressions"},
		},
		{
			"baseline-only benchmarks listed as uncompared",
			snapWith(Benchmark{Name: "EndToEnd/base", NsPerOp: 1000}),
			0.10, false,
			[]string{"uncompared", "EndToEnd/hypertrio", "NestedWalk"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			oldPath := writeSnapshot(t, "old.json", old)
			newPath := writeSnapshot(t, "new.json", c.current)
			var out strings.Builder
			got, err := compareSnapshots(oldPath, newPath, c.threshold, &out)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("regressed = %v, want %v\n%s", got, c.want, out.String())
			}
			for _, want := range c.wantOut {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output lacks %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestCompareSnapshotsErrors(t *testing.T) {
	good := writeSnapshot(t, "good.json", snapWith(Benchmark{Name: "X", NsPerOp: 1}))
	var out strings.Builder

	if _, err := compareSnapshots(filepath.Join(t.TempDir(), "missing.json"), good, 0.1, &out); err == nil {
		t.Error("missing old snapshot accepted")
	}
	if _, err := compareSnapshots(good, filepath.Join(t.TempDir(), "missing.json"), 0.1, &out); err == nil {
		t.Error("missing new snapshot accepted")
	}

	badSchema := writeSnapshot(t, "bad.json", Snapshot{Schema: "hypertrio-bench/99"})
	if _, err := compareSnapshots(badSchema, good, 0.1, &out); err == nil || !strings.Contains(err.Error(), "unsupported snapshot schema") {
		t.Errorf("bad schema not rejected: %v", err)
	}

	disjoint := writeSnapshot(t, "disjoint.json", snapWith(Benchmark{Name: "Y", NsPerOp: 1}))
	if _, err := compareSnapshots(disjoint, good, 0.1, &out); err == nil || !strings.Contains(err.Error(), "no benchmark appears in both") {
		t.Errorf("disjoint snapshots not rejected: %v", err)
	}
}

// TestCompareAcceptsSchemaV1 pins backward compatibility: PR-era /1
// snapshots remain usable as the old side of a comparison.
func TestCompareAcceptsSchemaV1(t *testing.T) {
	old := writeSnapshot(t, "old.json", Snapshot{
		Schema:     "hypertrio-bench/1",
		Benchmarks: []Benchmark{{Name: "EndToEnd/base", NsPerOp: 1000}},
	})
	cur := writeSnapshot(t, "new.json", snapWith(Benchmark{Name: "EndToEnd/base", NsPerOp: 900}))
	var out strings.Builder
	regressed, err := compareSnapshots(old, cur, 0.1, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("faster run reported as regression:\n%s", out.String())
	}
}

// TestParseBenchOutputRoundTrip guards the parser the snapshot pipeline
// and the compare gate both depend on.
func TestParseBenchOutputRoundTrip(t *testing.T) {
	raw := "goos: linux\n" +
		"BenchmarkEndToEnd/base-8   \t      74\t  34874322 ns/op\t    106611 pkts/s\t 4520144 B/op\t   39013 allocs/op\n" +
		"BenchmarkNestedWalk   \t 1000000\t      1042 ns/op\t       0 B/op\t       0 allocs/op\n" +
		"PASS\n"
	benches, err := parseBenchOutput(bytes.NewBufferString(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	b := benches[0]
	if b.Name != "EndToEnd/base" || b.GOMAXPROCS != 8 || b.NsPerOp != 34874322 ||
		b.AllocsPerOp != 39013 || b.Metrics["pkts/s"] != 106611 {
		t.Errorf("first benchmark parsed wrong: %+v", b)
	}
	if benches[1].Name != "NestedWalk" || benches[1].GOMAXPROCS != 1 || benches[1].Metrics != nil {
		t.Errorf("second benchmark parsed wrong: %+v", benches[1])
	}
}

// TestCompareBaselineDeltas covers the snapshot-embedding comparison
// path (-baseline): speedups, alloc ratios including the zero-alloc
// floor, metric ratios, and the memory delta.
func TestCompareBaselineDeltas(t *testing.T) {
	base := writeSnapshot(t, "base.json", Snapshot{
		Schema: "hypertrio-bench/2",
		Benchmarks: []Benchmark{
			{Name: "EndToEnd/base", NsPerOp: 2000, AllocsPerOp: 10, Metrics: map[string]float64{"pkts/s": 100}},
			{Name: "NestedWalk", NsPerOp: 100, AllocsPerOp: 4},
			{Name: "OldOnly", NsPerOp: 50},
		},
		Memory: &MemoryStats{Tenants: 100, StreamingBytesPerTenant: 640, MaterializedBytesPerTenant: 2000},
	})
	current := []Benchmark{
		{Name: "EndToEnd/base", NsPerOp: 1000, AllocsPerOp: 5, Metrics: map[string]float64{"pkts/s": 200}},
		{Name: "NestedWalk", NsPerOp: 100}, // allocs dropped to zero
		{Name: "NewOnly", NsPerOp: 10},
	}
	mem := &MemoryStats{Tenants: 100, StreamingBytesPerTenant: 320, MaterializedBytesPerTenant: 2000}
	cmp, err := compare(base, current, mem)
	if err != nil {
		t.Fatal(err)
	}
	d := cmp.Deltas["EndToEnd/base"]
	if d.Speedup != 2 || d.AllocRatio != 2 || d.MetricRatios["pkts/s"] != 2 {
		t.Errorf("EndToEnd delta wrong: %+v", d)
	}
	if got := cmp.Deltas["NestedWalk"].AllocRatio; got != 4 {
		t.Errorf("zero-alloc floor ratio = %v, want the old count 4", got)
	}
	if _, ok := cmp.Deltas["OldOnly"]; ok {
		t.Error("baseline-only benchmark got a delta")
	}
	if _, ok := cmp.Deltas["NewOnly"]; ok {
		t.Error("current-only benchmark got a delta")
	}
	if cmp.Memory == nil || cmp.Memory.StreamingBytesPerTenantRatio != 2 {
		t.Errorf("memory delta wrong: %+v", cmp.Memory)
	}
}

// TestMemTraceConfig pins the -mem cell construction: the per-tenant
// packet budget floors at 3 and the scale never exceeds 1.
func TestMemTraceConfig(t *testing.T) {
	tc := memTraceConfig(1000, 3_000_000)
	if tc.Tenants != 1000 || tc.Scale > 1 || tc.Scale <= 0 {
		t.Errorf("config wrong: %+v", tc)
	}
	tiny := memTraceConfig(1000, 10) // 10/1000 < 3 → floor
	if tiny.Scale <= 0 || tiny.Scale > 1 {
		t.Errorf("floored config wrong: %+v", tiny)
	}
	if tiny.Scale >= tc.Scale {
		t.Errorf("floored budget should scale below the full budget: %v >= %v", tiny.Scale, tc.Scale)
	}
}

// TestMeasureMemorySmall drives the streaming-vs-materialized footprint
// measurement end to end at a tiny scale.
func TestMeasureMemorySmall(t *testing.T) {
	ms, err := measureMemory(64, 600)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Tenants != 64 || ms.PacketsPerRun == 0 {
		t.Errorf("stats wrong: %+v", ms)
	}
	if ms.PeakHeapSysBytes == 0 {
		t.Error("peak heap not recorded")
	}
}
