// Command benchjson captures the repository's performance trajectory as
// machine-readable JSON: it runs the hot-path micro- and end-to-end
// benchmarks through `go test -bench`, parses every reported metric
// (ns/op, B/op, allocs/op and custom units like pkts/s), times a full
// quick-scale experiment-suite regeneration in-process, measures the
// memory footprint of a large-tenant simulation in streaming vs
// materialized mode (-mem), and writes one self-describing snapshot
// (schema "hypertrio-bench/2"; snapshots from the /1 schema are still
// accepted as -baseline input).
//
// Comparing two snapshots is the intended workflow:
//
//	go run ./cmd/benchjson -o /tmp/before.json          # on the old tree
//	go run ./cmd/benchjson -o BENCH_PR9.json \
//	    -baseline /tmp/before.json                      # on the new tree
//
// With -baseline the snapshot embeds per-benchmark ratios (speedup and
// allocation reduction), so a committed BENCH_*.json documents not just
// the numbers but the delta the change bought.
//
// -compare turns the command into a noise-aware regression gate over two
// already-written snapshots:
//
//	benchjson -compare -threshold 0.15 BENCH_PR6.json new.json
//
// Every benchmark present in both files is reported with its ns/op
// delta; a benchmark whose time grew (or whose allocs/op rose) by more
// than -threshold counts as regressed and the exit status is nonzero,
// so CI can gate on it directly.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hypertrio/internal/core"
	"hypertrio/internal/experiments"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// defaultBench is the hot-path set the PR gates care about; -bench
// overrides it for broader sweeps.
const defaultBench = "BenchmarkEndToEnd|BenchmarkEngineScheduleFire|BenchmarkIOMMUTranslate|BenchmarkNestedWalk|BenchmarkDevTLB"

// Snapshot is the top-level JSON document.
type Snapshot struct {
	Schema     string       `json:"schema"`
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	BenchTime  string       `json:"benchtime"`
	Benchmarks []Benchmark  `json:"benchmarks,omitempty"`
	Suite      *SuiteTiming `json:"suite,omitempty"`
	Memory     *MemoryStats `json:"memory,omitempty"`
	Baseline   *Comparison  `json:"baseline,omitempty"`
}

// MemoryStats reports the heap footprint of one large-tenant HyperTRIO
// cell run both ways: materialized (the trace held as a packet slice)
// and streaming (the online generator-backed source). Live-heap figures
// are GC-settled deltas attributable to the run; bytes/tenant divides by
// the tenant count — the number that must stay O(1) for the streaming
// contract to hold. PeakHeapSysBytes is the process's high-water heap
// footprint from the OS's point of view after both runs.
type MemoryStats struct {
	Tenants                    int     `json:"tenants"`
	PacketsPerRun              uint64  `json:"packets_per_run"`
	StreamingLiveHeapBytes     uint64  `json:"streaming_live_heap_bytes"`
	StreamingBytesPerTenant    float64 `json:"streaming_bytes_per_tenant"`
	MaterializedLiveHeapBytes  uint64  `json:"materialized_live_heap_bytes"`
	MaterializedBytesPerTenant float64 `json:"materialized_bytes_per_tenant"`
	PeakHeapSysBytes           uint64  `json:"peak_heap_sys_bytes"`
}

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name string `json:"name"` // GOMAXPROCS suffix stripped
	// GOMAXPROCS is the per-benchmark processor count parsed from the
	// harness's -N name suffix (1 when the harness omits it). The
	// top-level snapshot field is the process-wide setting; recording it
	// per benchmark keeps lines self-describing when -cpu sweeps mix
	// counts in one run — a scaling number is meaningless without the
	// processor count it was measured at.
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom units (pkts/s, modelGb/s, ...)
}

// SuiteTiming is the wall-clock cost of regenerating every quick-scale
// experiment (the same suite the golden test pins byte-for-byte).
type SuiteTiming struct {
	WallSeconds float64 `json:"wall_seconds"`
	Workers     int     `json:"workers"`
	Experiments int     `json:"experiments"`
}

// Comparison embeds the baseline file and per-benchmark deltas.
type Comparison struct {
	File   string           `json:"file"`
	Deltas map[string]Delta `json:"deltas"`
	Memory *MemoryDelta     `json:"memory,omitempty"`
}

// MemoryDelta reports how the memory footprint moved against a baseline
// that also measured it (schema /2); ratios are baseline/current, so >1
// is an improvement.
type MemoryDelta struct {
	StreamingBytesPerTenantRatio    float64 `json:"streaming_bytes_per_tenant_ratio,omitempty"`
	MaterializedBytesPerTenantRatio float64 `json:"materialized_bytes_per_tenant_ratio,omitempty"`
}

// Delta reports how one benchmark moved against the baseline. Speedup
// and AllocRatio are baseline/current (>1 is an improvement); custom
// metric ratios are current/baseline (>1 is an improvement for
// throughput-style units).
type Delta struct {
	Speedup      float64            `json:"speedup"`
	AllocRatio   float64            `json:"alloc_ratio,omitempty"`
	MetricRatios map[string]float64 `json:"metric_ratios,omitempty"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_PR9.json", "output path for the JSON snapshot")
		benchRE   = flag.String("bench", defaultBench, "benchmark selection regexp passed to go test")
		benchTime = flag.String("benchtime", "2s", "per-benchmark time passed to go test")
		baseline  = flag.String("baseline", "", "previous snapshot to embed deltas against")
		skipSuite = flag.Bool("skip-suite", false, "skip timing the quick experiment suite")
		skipBench = flag.Bool("skip-bench", false, "skip the go test -bench run")
		mem       = flag.Bool("mem", false, "measure the streaming vs materialized memory footprint of a large-tenant cell")
		memTen    = flag.Int("mem-tenants", 100_000, "tenant count for the -mem measurement")
		memBudget = flag.Int("mem-budget", 3_000_000, "total packet budget for the -mem measurement")
		compareTo = flag.Bool("compare", false, "diff two existing snapshots (benchjson -compare old.json new.json) instead of measuring; exits 1 when a benchmark regresses beyond -threshold")
		threshold = flag.Float64("threshold", 0.10, "relative ns/op (or allocs/op) growth tolerated by -compare before a benchmark counts as regressed")
	)
	flag.Parse()

	if *compareTo {
		if flag.NArg() != 2 {
			fatalf("-compare takes exactly two snapshot paths (old.json new.json), got %d", flag.NArg())
		}
		regressed, err := compareSnapshots(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err != nil {
			fatalf("%v", err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		fatalf("unexpected arguments: %v", flag.Args())
	}

	snap := Snapshot{
		Schema:     "hypertrio-bench/2",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchTime:  *benchTime,
	}

	var benches []Benchmark
	if !*skipBench {
		var err error
		benches, err = runBenchmarks(*benchRE, *benchTime)
		if err != nil {
			fatalf("running benchmarks: %v", err)
		}
	}
	snap.Benchmarks = benches

	if !*skipSuite {
		st, err := timeQuickSuite()
		if err != nil {
			fatalf("timing quick suite: %v", err)
		}
		snap.Suite = st
	}

	if *mem {
		ms, err := measureMemory(*memTen, *memBudget)
		if err != nil {
			fatalf("measuring memory: %v", err)
		}
		snap.Memory = ms
	}

	if *baseline != "" {
		cmp, err := compare(*baseline, benches, snap.Memory)
		if err != nil {
			fatalf("comparing against %s: %v", *baseline, err)
		}
		snap.Baseline = cmp
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatalf("encoding: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d benchmarks", *out, len(snap.Benchmarks))
	if snap.Suite != nil {
		fmt.Printf(", quick suite %.1fs", snap.Suite.WallSeconds)
	}
	if m := snap.Memory; m != nil {
		fmt.Printf(", %d tenants: %.0f B/tenant streaming vs %.0f materialized",
			m.Tenants, m.StreamingBytesPerTenant, m.MaterializedBytesPerTenant)
	}
	fmt.Println(")")
}

// runBenchmarks shells out to `go test -bench` and parses its output;
// the subprocess keeps benchmark conditions identical to a developer's
// command line (same harness, same flags).
func runBenchmarks(pattern, benchTime string) ([]Benchmark, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchTime, ".")
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w\n%s", err, outBuf.String())
	}
	return parseBenchOutput(&outBuf)
}

// gomaxprocsSuffix strips the trailing -N the harness appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput reads standard `go test -bench` lines:
//
//	BenchmarkX/sub-8   74   34874322 ns/op   106611 pkts/s   39013 allocs/op
func parseBenchOutput(r *bytes.Buffer) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		procs := 1
		if m := gomaxprocsSuffix.FindString(name); m != "" {
			if n, err := strconv.Atoi(m[1:]); err == nil {
				procs = n
			}
			name = strings.TrimSuffix(name, m)
		}
		b := Benchmark{
			Name:       name,
			GOMAXPROCS: procs,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				b.Metrics[unit] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed")
	}
	return out, nil
}

// timeQuickSuite regenerates every registered experiment at quick scale
// in-process and reports the wall time — the number a developer feels
// when the golden test or CI runs.
func timeQuickSuite() (*SuiteTiming, error) {
	workers := runtime.NumCPU()
	opts := experiments.Options{Seed: 42, Quick: true, Workers: workers}
	start := time.Now()
	for _, e := range experiments.All {
		tbl, err := e.Run(opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		if len(tbl.Rows) == 0 {
			return nil, fmt.Errorf("%s: empty table", e.ID)
		}
	}
	return &SuiteTiming{
		WallSeconds: time.Since(start).Seconds(),
		Workers:     workers,
		Experiments: len(experiments.All),
	}, nil
}

// memTraceConfig mirrors the ext-megatenant experiment's cell: an
// iperf3 hyper-tenant stream with a bounded total packet budget spread
// across the tenants, drawn with the compact per-tenant RNG.
func memTraceConfig(tenants, budget int) trace.Config {
	ppt := budget / tenants
	if ppt < 3 {
		ppt = 3
	}
	p := workload.ProfileFor(workload.Iperf3)
	scale := float64(ppt*workload.RequestsPerPacket) / float64(p.MinRequests)
	if scale > 1 {
		scale = 1
	}
	return trace.Config{
		Benchmark: workload.Iperf3, Tenants: tenants, Interleave: trace.RR1,
		Seed: 42, Scale: scale, RNG: workload.CompactRNG,
	}
}

// liveHeap settles the collector and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureMemory runs the same large-tenant HyperTRIO cell twice — once
// over a materialized trace, once over the online stream — and reports
// the GC-settled live-heap delta each run holds. The materialized run
// goes first so its packet slice is collected before the streaming
// measurement starts from a clean floor. Materialized memory grows with
// the packet budget (the whole sequence is held as a slice) while
// streaming memory tracks only the tenant count, so the budget controls
// how starkly the O(packets) vs O(tenants) contrast shows.
func measureMemory(tenants, budget int) (*MemoryStats, error) {
	tc := memTraceConfig(tenants, budget)
	cfg := core.HyperTRIOConfig()

	// run builds the source, drives the cell, and returns the live-heap
	// delta the run held; the source and system are locals, so they are
	// collectible as soon as the closure returns.
	run := func(stream bool) (delta, pkts uint64, err error) {
		base := liveHeap()
		var src trace.Source
		if stream {
			src, err = trace.NewStream(tc)
		} else {
			var tr *trace.Trace
			if tr, err = trace.Construct(tc); err == nil {
				src = tr.Source()
			}
		}
		if err != nil {
			return 0, 0, err
		}
		sys, err := core.NewSystemSource(cfg, src)
		if err != nil {
			return 0, 0, err
		}
		res, err := sys.Run()
		if err != nil {
			return 0, 0, err
		}
		live := liveHeap()
		runtime.KeepAlive(sys)
		if live > base {
			delta = live - base
		}
		return delta, uint64(res.Packets), nil
	}

	stats := &MemoryStats{Tenants: tenants}
	mat, matPkts, err := run(false)
	if err != nil {
		return nil, err
	}
	str, strPkts, err := run(true)
	if err != nil {
		return nil, err
	}
	if strPkts != matPkts {
		return nil, fmt.Errorf("streaming run completed %d packets, materialized %d; modes diverged",
			strPkts, matPkts)
	}
	stats.PacketsPerRun = matPkts
	stats.MaterializedLiveHeapBytes = mat
	stats.MaterializedBytesPerTenant = float64(mat) / float64(tenants)
	stats.StreamingLiveHeapBytes = str
	stats.StreamingBytesPerTenant = float64(str) / float64(tenants)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	stats.PeakHeapSysBytes = ms.HeapSys
	return stats, nil
}

// loadSnapshot reads and schema-checks one snapshot file; both the /1
// and /2 schemas are accepted.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	switch snap.Schema {
	case "hypertrio-bench/1", "hypertrio-bench/2":
	default:
		return nil, fmt.Errorf("%s: unsupported snapshot schema %q", path, snap.Schema)
	}
	return &snap, nil
}

// compareSnapshots diffs two snapshot files benchmark by benchmark and
// writes a delta table to out. A benchmark regresses when its ns/op
// grew by more than threshold relative to old, or when its allocs/op
// rose both relatively beyond threshold and absolutely by at least one
// allocation (so a 0→1 alloc leak on a pinned-zero path is caught, but
// float noise around a large count is not). Benchmarks present in only
// one file are listed as uncompared, not failed — a renamed benchmark
// should not mask a real regression report behind a hard error.
func compareSnapshots(oldPath, newPath string, threshold float64, out io.Writer) (regressed bool, err error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return false, err
	}
	base := make(map[string]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		base[b.Name] = b
	}
	matched := map[string]bool{}
	var failures []string
	fmt.Fprintf(out, "comparing %s -> %s (threshold %.0f%%)\n", oldPath, newPath, threshold*100)
	fmt.Fprintf(out, "%-52s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, b := range newSnap.Benchmarks {
		old, ok := base[b.Name]
		if !ok || old.NsPerOp == 0 || b.NsPerOp == 0 {
			continue
		}
		matched[b.Name] = true
		rel := b.NsPerOp/old.NsPerOp - 1
		verdict := ""
		switch {
		case rel > threshold:
			verdict = "  REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.1f%% slower (%.0f -> %.0f ns/op)",
				b.Name, rel*100, old.NsPerOp, b.NsPerOp))
		case rel < -threshold:
			verdict = "  improved"
		}
		fmt.Fprintf(out, "%-52s %14.0f %14.0f %+7.1f%%%s\n", b.Name, old.NsPerOp, b.NsPerOp, rel*100, verdict)
		if grown := b.AllocsPerOp - old.AllocsPerOp; grown >= 1 && b.AllocsPerOp > old.AllocsPerOp*(1+threshold) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op grew %.1f -> %.1f",
				b.Name, old.AllocsPerOp, b.AllocsPerOp))
		}
	}
	var uncompared []string
	for _, b := range oldSnap.Benchmarks {
		if !matched[b.Name] {
			uncompared = append(uncompared, b.Name)
		}
	}
	if len(uncompared) > 0 {
		fmt.Fprintf(out, "uncompared (baseline-only or zero-time): %s\n", strings.Join(uncompared, ", "))
	}
	if len(matched) == 0 {
		return false, fmt.Errorf("no benchmark appears in both %s and %s", oldPath, newPath)
	}
	if len(failures) > 0 {
		fmt.Fprintf(out, "\n%d regression(s) beyond the %.0f%% threshold:\n", len(failures), threshold*100)
		for _, f := range failures {
			fmt.Fprintf(out, "  %s\n", f)
		}
		return true, nil
	}
	fmt.Fprintf(out, "no regressions across %d benchmark(s)\n", len(matched))
	return false, nil
}

// compare loads a previous snapshot and computes per-benchmark deltas
// for every benchmark present in both. Baselines written by either the
// /1 or the /2 schema are accepted; /1 files simply carry no memory
// section, so the memory delta is omitted.
func compare(path string, current []Benchmark, mem *MemoryStats) (*Comparison, error) {
	prev, err := loadSnapshot(path)
	if err != nil {
		return nil, err
	}
	base := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		base[b.Name] = b
	}
	cmp := &Comparison{File: path, Deltas: map[string]Delta{}}
	for _, b := range current {
		old, ok := base[b.Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		d := Delta{Speedup: old.NsPerOp / b.NsPerOp}
		if b.AllocsPerOp > 0 {
			d.AllocRatio = old.AllocsPerOp / b.AllocsPerOp
		} else if old.AllocsPerOp > 0 {
			// Current is allocation-free; report the old count as the
			// ratio floor rather than dividing by zero.
			d.AllocRatio = old.AllocsPerOp
		}
		for unit, v := range b.Metrics {
			if ov := old.Metrics[unit]; ov > 0 && v > 0 {
				if d.MetricRatios == nil {
					d.MetricRatios = map[string]float64{}
				}
				d.MetricRatios[unit] = v / ov
			}
		}
		cmp.Deltas[b.Name] = d
	}
	if mem != nil && prev.Memory != nil && prev.Memory.Tenants == mem.Tenants {
		md := &MemoryDelta{}
		if mem.StreamingBytesPerTenant > 0 {
			md.StreamingBytesPerTenantRatio = prev.Memory.StreamingBytesPerTenant / mem.StreamingBytesPerTenant
		}
		if mem.MaterializedBytesPerTenant > 0 {
			md.MaterializedBytesPerTenantRatio = prev.Memory.MaterializedBytesPerTenant / mem.MaterializedBytesPerTenant
		}
		cmp.Memory = md
	}
	return cmp, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
