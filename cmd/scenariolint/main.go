// Command scenariolint validates and canonicalizes production-traffic
// scenario documents (hypertrio-scenario/1). It is the gate behind the
// committed scenarios/ directory: every file must decode strictly,
// survive compilation, and be byte-identical to its canonical
// encoding, so reviews diff semantics instead of formatting.
//
// Usage:
//
//	scenariolint scenarios/*.json          validate and summarize
//	scenariolint -check scenarios/*.json   fail if any file is not canonical
//	scenariolint -w scenarios/*.json       rewrite files in canonical form
//	scenariolint -emit scenarios/          write the committed library
//
// Exit status: 0 on success, 1 if any file is invalid or (with -check)
// not canonically encoded, 2 on flag misuse.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"hypertrio/internal/scenario"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

func cliMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenariolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	write := fs.Bool("w", false, "rewrite each file in canonical encoding")
	check := fs.Bool("check", false, "fail (exit 1) if a file is not canonically encoded")
	emit := fs.String("emit", "", "write every committed library scenario into this directory and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: scenariolint [-w | -check] FILE...\n")
		fmt.Fprintf(stderr, "       scenariolint -emit DIR\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *write && *check {
		fmt.Fprintln(stderr, "scenariolint: -w and -check are mutually exclusive")
		return 2
	}
	if *emit != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "scenariolint: -emit takes no file arguments")
			return 2
		}
		if err := emitLibrary(*emit, stdout); err != nil {
			fmt.Fprintln(stderr, "scenariolint:", err)
			return 1
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	bad := 0
	for _, path := range fs.Args() {
		if err := lintFile(path, *write, *check, stdout); err != nil {
			fmt.Fprintf(stderr, "scenariolint: %s: %v\n", path, err)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "scenariolint: %d of %d files failed\n", bad, fs.NArg())
		return 1
	}
	return 0
}

// lintFile decodes one scenario strictly, compiles it, and reports its
// shape; with -w it rewrites the file canonically, with -check it
// errors when the on-disk bytes differ from the canonical encoding.
func lintFile(path string, write, check bool, out io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := scenario.ReadScenario(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	comp, err := s.Compile()
	if err != nil {
		return fmt.Errorf("compiling: %w", err)
	}
	var canon bytes.Buffer
	if err := s.WriteJSON(&canon); err != nil {
		return err
	}
	canonical := bytes.Equal(raw, canon.Bytes())
	switch {
	case check && !canonical:
		return fmt.Errorf("not canonically encoded (run scenariolint -w)")
	case write && !canonical:
		if err := os.WriteFile(path, canon.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: rewrote in canonical form\n", path)
	}
	report(out, path, s, comp)
	return nil
}

func report(out io.Writer, path string, s *scenario.Scenario, comp *scenario.Compiled) {
	fmt.Fprintf(out, "%s: %s ok\n", path, s.Name)
	fmt.Fprintf(out, "  classes:  %d (%d tenants", len(s.Classes), s.TotalTenants())
	adversaries := 0
	for _, cl := range s.Classes {
		if cl.Role != scenario.RoleNone {
			adversaries++
		}
	}
	if adversaries > 0 {
		fmt.Fprintf(out, ", %d adversarial classes", adversaries)
	}
	fmt.Fprintln(out, ")")
	fmt.Fprintf(out, "  phases:   %d, horizon %v\n", len(s.Phases), comp.Horizon)
	shaped := "full load throughout"
	if comp.Shaper != nil {
		shaped = "time-varying envelope"
	}
	fmt.Fprintf(out, "  load:     %s\n", shaped)
	if comp.Plan != nil {
		fmt.Fprintf(out, "  faults:   %d scripted events from %d overlays\n",
			len(comp.Plan.Events), len(s.Overlays))
	} else {
		fmt.Fprintf(out, "  faults:   none\n")
	}
}

// emitLibrary writes every committed library scenario into dir as
// <name>.json in canonical encoding — the generator for the repo's
// scenarios/ directory.
func emitLibrary(dir string, out io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range scenario.Library() {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			return err
		}
		path := filepath.Join(dir, s.Name+".json")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	return nil
}
