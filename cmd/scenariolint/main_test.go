package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypertrio/internal/scenario"
)

// writeScenario writes one scenario in canonical form and returns its
// path.
func writeScenario(t *testing.T, dir string, s *scenario.Scenario) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, s.Name+".json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintValidFiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for _, s := range scenario.Library() {
		paths = append(paths, writeScenario(t, dir, s))
	}
	var stdout, stderr strings.Builder
	if got := cliMain(paths, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"noisy-neighbor ok", "storm ok", "scripted events",
		"time-varying envelope", "full load throughout", "adversarial classes"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}
}

// -check accepts canonical files and rejects semantically identical but
// reformatted ones; -w repairs them back to canonical and a second
// -check passes.
func TestLintCheckAndWrite(t *testing.T) {
	dir := t.TempDir()
	path := writeScenario(t, dir, scenario.NoisyNeighbor())
	canon, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if got := cliMain([]string{"-check", path}, &stdout, &stderr); got != 0 {
		t.Fatalf("canonical file failed -check: %s", stderr.String())
	}

	// Reformat: strip the trailing newline — still valid JSON.
	if err := os.WriteFile(path, bytes.TrimRight(canon, "\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if got := cliMain([]string{"-check", path}, &stdout, &stderr); got != 1 {
		t.Fatalf("-check passed a non-canonical file (exit %d)", got)
	}
	if !strings.Contains(stderr.String(), "canonical") {
		t.Errorf("stderr does not explain the failure: %s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if got := cliMain([]string{"-w", path}, &stdout, &stderr); got != 0 {
		t.Fatalf("-w failed: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "rewrote") {
		t.Errorf("-w did not report the rewrite: %s", stdout.String())
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, canon) {
		t.Error("-w did not restore the canonical encoding")
	}
}

func TestLintErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"hypertrio-scenario/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	invalid := filepath.Join(dir, "invalid.json")
	doc := strings.Replace(func() string {
		var b bytes.Buffer
		if err := scenario.NoisyNeighbor().WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}(), `"tenants": 12`, `"tenants": 0`, 1)
	if err := os.WriteFile(invalid, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no files", nil, 2},
		{"both modes", []string{"-w", "-check", bad}, 2},
		{"emit with files", []string{"-emit", dir, bad}, 2},
		{"missing file", []string{filepath.Join(dir, "nope.json")}, 1},
		{"wrong schema", []string{bad}, 1},
		{"invalid scenario", []string{invalid}, 1},
		{"help", []string{"-h"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if got := cliMain(c.args, &stdout, &stderr); got != c.want {
				t.Fatalf("cliMain(%v) = %d, want %d (stderr: %s)", c.args, got, c.want, stderr.String())
			}
			if c.want != 0 && stderr.Len() == 0 {
				t.Error("failure produced nothing on stderr")
			}
		})
	}
}

// -emit writes the full committed library, and every emitted file then
// passes -check — the property the scenarios/ directory is pinned by.
func TestEmitLibrary(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr strings.Builder
	if got := cliMain([]string{"-emit", dir}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	var paths []string
	for _, s := range scenario.Library() {
		p := filepath.Join(dir, s.Name+".json")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("library scenario not emitted: %v", err)
		}
		paths = append(paths, p)
	}
	stdout.Reset()
	stderr.Reset()
	if got := cliMain(append([]string{"-check"}, paths...), &stdout, &stderr); got != 0 {
		t.Fatalf("emitted files failed -check: %s", stderr.String())
	}
}
