// Command hypersio runs one HyperSIO simulation: it constructs a
// hyper-tenant trace for a chosen benchmark, tenant count and
// interleaving, replays it against a Base, HyperTRIO or custom
// configuration, and prints the bandwidth report.
//
// Usage examples:
//
//	hypersio -benchmark websearch -tenants 1024 -interleave RR1 -design hypertrio
//	hypersio -benchmark iperf3 -tenants 64 -design base -devtlb-entries 1024
//	hypersio -benchmark mediastream -tenants 128 -design hypertrio -ptb 8 -no-prefetch
//	hypersio -benchmark iperf3 -tenants 64 -trace run.ndjson -metrics run.json
//	hypersio -benchmark iperf3 -tenants 32 -faults plan.json
//	hypersio -scenario scenarios/noisy-neighbor.json -design hypertrio
//	hypersio -scenario storm -stream
//	hypersio -design hypertrio -describe
//
// Fault injection: -faults FILE loads a JSON fault plan
// (hypertrio-faultplan/1; see EXPERIMENTS.md) scripting IOTLB
// invalidations, mid-flight remaps, walker faults and tenant churn
// against the run, and prints the injector's accounting afterwards.
//
// Scenarios: -scenario NAME|FILE runs a production-traffic scenario
// (hypertrio-scenario/1; see EXPERIMENTS.md) — a committed library
// scenario by name, or any JSON scenario file. The scenario owns the
// tenant population, the load envelope and the fault script, so
// -benchmark/-tenants/-interleave/-scale/-seed/-compact-rng are
// ignored and -replay/-faults are rejected; -stream and every design
// knob compose as usual. The report gains a per-class breakdown.
//
// Observability: -trace FILE streams model events (arrivals, drops,
// DevTLB hits/misses, page walks, prefetches) as NDJSON; -trace-engine
// additionally records every event-kernel schedule/fire/cancel;
// -metrics FILE writes the final metrics registry snapshot plus the
// time series sampled every -sample-us of simulated time (JSON, or CSV
// of the series alone when FILE ends in .csv). Neither changes
// simulation results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hypertrio"
	"hypertrio/internal/fault"
	"hypertrio/internal/obs"
	"hypertrio/internal/profiling"
	"hypertrio/internal/scenario"
	"hypertrio/internal/sim"
	"hypertrio/internal/stats"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
)

// options carries every flag; keeping them in one struct keeps run
// testable without a 14-parameter signature.
type options struct {
	benchmark    string
	interleave   string
	design       string
	policy       string
	replayFile   string
	tenants      int
	seed         int64
	scale        float64
	stream       bool
	compactRNG   bool
	linkGbps     float64
	ptb          int
	devtlbSize   int
	chipsetIOTLB int
	noPrefetch   bool
	serial       bool
	shards       int
	describe     bool
	verbose      bool

	traceFile    string // NDJSON event trace output
	engineEvents bool
	metricsFile  string // metrics snapshot + time series output
	sampleUs     int
	faultsFile   string // JSON fault plan input
	scenarioFile string // scenario name or JSON file input

	cpuProfile string // pprof CPU profile output
	memProfile string // pprof heap profile output
}

// parseFlags binds every flag to a fresh options value. Errors (and
// usage) go to stderr; a non-nil error means flag misuse, which exits
// with the conventional code 2 rather than a runtime failure's 1.
func parseFlags(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("hypersio", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.benchmark, "benchmark", "iperf3", "workload: iperf3, mediastream, websearch")
	fs.IntVar(&o.tenants, "tenants", 64, "number of concurrent tenants")
	fs.StringVar(&o.interleave, "interleave", "RR1", "inter-tenant interleaving: RR1, RR4, RAND1, RR<k>, RAND<k>")
	fs.StringVar(&o.design, "design", "hypertrio", "hardware design: base or hypertrio")
	fs.Int64Var(&o.seed, "seed", 42, "trace construction seed")
	fs.Float64Var(&o.scale, "scale", 0.01, "trace scale in (0,1]; 1.0 is paper scale (~70M requests at 1024 tenants)")
	fs.StringVar(&o.replayFile, "replay", "", "replay a saved .hsio trace instead of constructing one")
	fs.BoolVar(&o.stream, "stream", false, "replay an online generator-backed stream instead of materializing the trace (O(tenants) memory; identical results; supports -tenants up to 1000000)")
	fs.BoolVar(&o.compactRNG, "compact-rng", false, "use the compact splitmix64 tenant RNG (~60x less generator state; different deterministic sequences)")

	fs.Float64Var(&o.linkGbps, "link", 200, "I/O link bandwidth in Gb/s")
	fs.IntVar(&o.ptb, "ptb", 0, "override PTB entries (0 = design default)")
	fs.IntVar(&o.devtlbSize, "devtlb-entries", 0, "override DevTLB entries, 8-way (0 = design default)")
	fs.StringVar(&o.policy, "policy", "", "override DevTLB replacement policy: lru, lfu, fifo, rand, oracle, plru")
	fs.IntVar(&o.chipsetIOTLB, "chipset-iotlb", 0, "enable a shared (unpartitioned) chipset IOTLB with this many entries, 8-way LRU")
	fs.BoolVar(&o.noPrefetch, "no-prefetch", false, "disable the Prefetch Unit")
	fs.BoolVar(&o.serial, "serial", false, "serialize a packet's translations (legacy device)")
	fs.IntVar(&o.shards, "shards", 0, "event-domain shards: 0/1 single engine, >=2 device + IOMMU domains under the sharded coordinator (results identical)")
	fs.BoolVar(&o.describe, "describe", false, "print the resolved translation datapath and exit without simulating")
	fs.BoolVar(&o.verbose, "v", false, "print per-structure statistics")

	fs.StringVar(&o.traceFile, "trace", "", "write an NDJSON event trace of the run to FILE")
	fs.BoolVar(&o.engineEvents, "trace-engine", false, "with -trace: also record event-kernel sched/fire/cancel events")
	fs.StringVar(&o.metricsFile, "metrics", "", "write the metrics snapshot and time series to FILE (.json or .csv)")
	fs.IntVar(&o.sampleUs, "sample-us", 10, "time-series sample interval in simulated µs (0 disables the series)")
	fs.StringVar(&o.faultsFile, "faults", "", "load a JSON fault plan ("+fault.PlanSchema+") and apply it during the run")
	fs.StringVar(&o.scenarioFile, "scenario", "", "run a production-traffic scenario ("+scenario.Schema+"): a committed scenario name or a JSON file")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to FILE")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile (post-run, GC-settled) to FILE")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		err := fmt.Errorf("unexpected arguments: %v", fs.Args())
		fmt.Fprintln(stderr, "hypersio:", err)
		return o, err
	}
	return o, nil
}

// cliMain is main minus the process exit, so tests can drive the full
// argv-to-exit-code path: 0 success, 1 runtime failure, 2 flag misuse.
func cliMain(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err == flag.ErrHelp {
		return 0 // -h prints usage and is not an error (matches flag.ExitOnError)
	}
	if err != nil {
		return 2
	}
	// Profiling brackets the whole run (trace construction included);
	// output paths are validated here, before any simulation work.
	prof, err := profiling.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "hypersio:", err)
		return 1
	}
	defer prof.Finish() // backstop; Finish is idempotent
	code := 0
	if err := run(o, stdout); err != nil {
		fmt.Fprintln(stderr, "hypersio:", err)
		code = 1
	}
	if err := prof.Finish(); err != nil {
		fmt.Fprintln(stderr, "hypersio:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// validate rejects bad inputs before any page table is built or any
// simulation event fires, so errors are fast and the exit is clean.
func (o options) validate() error {
	if o.replayFile == "" {
		if _, err := hypertrio.ParseBenchmark(o.benchmark); err != nil {
			return err
		}
		if _, err := hypertrio.ParseInterleave(o.interleave); err != nil {
			return err
		}
		if o.tenants <= 0 {
			return fmt.Errorf("-tenants must be positive, got %d", o.tenants)
		}
		if o.tenants > 1_000_000 {
			return fmt.Errorf("-tenants must be at most 1000000, got %d", o.tenants)
		}
		if o.tenants > 100_000 && !o.stream {
			return fmt.Errorf("-tenants %d requires -stream (materializing a trace that long is O(requests) memory)", o.tenants)
		}
		if o.scale <= 0 || o.scale > 1 {
			return fmt.Errorf("-scale must be in (0,1], got %g", o.scale)
		}
	}
	if o.stream && o.replayFile != "" {
		return fmt.Errorf("-stream and -replay are mutually exclusive (a saved trace is already materialized)")
	}
	if o.design != "base" && o.design != "hypertrio" {
		return fmt.Errorf("unknown design %q (want base or hypertrio)", o.design)
	}
	if o.policy != "" {
		if _, err := tlb.ParsePolicy(o.policy); err != nil {
			return err
		}
	}
	if o.linkGbps <= 0 {
		return fmt.Errorf("-link must be positive, got %g", o.linkGbps)
	}
	if o.ptb < 0 {
		return fmt.Errorf("-ptb must be >= 0, got %d", o.ptb)
	}
	if o.devtlbSize < 0 {
		return fmt.Errorf("-devtlb-entries must be >= 0, got %d", o.devtlbSize)
	}
	if o.chipsetIOTLB < 0 || o.chipsetIOTLB%8 != 0 {
		return fmt.Errorf("-chipset-iotlb must be a non-negative multiple of 8, got %d", o.chipsetIOTLB)
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", o.shards)
	}
	if o.sampleUs < 0 {
		return fmt.Errorf("-sample-us must be >= 0, got %d", o.sampleUs)
	}
	if o.engineEvents && o.traceFile == "" {
		return fmt.Errorf("-trace-engine requires -trace FILE")
	}
	if o.faultsFile != "" && o.describe {
		return fmt.Errorf("-faults has no effect with -describe (nothing is simulated)")
	}
	if o.scenarioFile != "" {
		if o.replayFile != "" {
			return fmt.Errorf("-scenario and -replay are mutually exclusive (the scenario defines the traffic)")
		}
		if o.faultsFile != "" {
			return fmt.Errorf("-scenario and -faults are mutually exclusive (the scenario composes its own fault script)")
		}
		if o.describe {
			return fmt.Errorf("-scenario has no effect with -describe (nothing is simulated)")
		}
	}
	return nil
}

func run(o options, out io.Writer) error {
	if err := o.validate(); err != nil {
		return err
	}
	var cfg hypertrio.Config
	switch o.design {
	case "base":
		cfg = hypertrio.BaseConfig()
	case "hypertrio":
		cfg = hypertrio.HyperTRIOConfig()
	}
	cfg.Params.LinkGbps = o.linkGbps
	if o.ptb > 0 {
		cfg.PTBEntries = o.ptb
	}
	if o.devtlbSize > 0 {
		if o.devtlbSize%cfg.DevTLB.Ways != 0 {
			return fmt.Errorf("devtlb-entries %d not divisible by %d ways", o.devtlbSize, cfg.DevTLB.Ways)
		}
		cfg.DevTLB.Sets = o.devtlbSize / cfg.DevTLB.Ways
	}
	if o.policy != "" {
		p, err := tlb.ParsePolicy(o.policy)
		if err != nil {
			return err
		}
		cfg.DevTLB.Policy = p
	}
	if o.chipsetIOTLB > 0 {
		// Shared mode: one unpartitioned pool, hashed across tenants —
		// the pre-partitioning chipset design the paper argues against.
		cfg.IOMMU.IOTLB = tlb.Config{
			Name: "iotlb", Sets: o.chipsetIOTLB / 8, Ways: 8,
			Policy: tlb.LRU, Index: tlb.Hashed,
		}
	}
	if o.noPrefetch {
		cfg.Prefetch = nil
	}
	cfg.SerialRequests = o.serial
	cfg.Shards = o.shards

	if o.faultsFile != "" {
		f, err := os.Open(o.faultsFile)
		if err != nil {
			return err
		}
		plan, err := fault.ReadPlan(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", o.faultsFile, err)
		}
		cfg.Fault = plan
		fmt.Fprintf(out, "fault plan %s: %d scripted events\n", o.faultsFile, len(plan.Events))
	}

	var comp *scenario.Compiled
	if o.scenarioFile != "" {
		sc, err := loadScenario(o.scenarioFile)
		if err != nil {
			return err
		}
		comp, err = sc.Compile()
		if err != nil {
			return err
		}
		cfg = comp.Apply(cfg)
		fmt.Fprintf(out, "scenario %s: %d classes, %d tenants, %d phases, horizon %v",
			sc.Name, len(sc.Classes), sc.TotalTenants(), len(sc.Phases), comp.Horizon)
		if comp.Plan != nil {
			fmt.Fprintf(out, ", %d scripted fault events", len(comp.Plan.Events))
		}
		fmt.Fprintln(out)
	}

	if o.describe {
		desc, err := hypertrio.DescribePipeline(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, desc)
		return nil
	}

	// Observability wiring. The tracer flushes (and its file closes)
	// whether the run succeeds or fails.
	obsOpts := &obs.Options{EngineEvents: o.engineEvents}
	if o.metricsFile != "" && o.sampleUs > 0 {
		obsOpts.SampleEvery = sim.Duration(o.sampleUs) * sim.Microsecond
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		obsOpts.Tracer = obs.NewTracer(f)
		defer obsOpts.Tracer.Flush()
	}
	if o.traceFile != "" || obsOpts.SampleEvery > 0 {
		cfg.Obs = obsOpts
	}

	var src hypertrio.Source
	if comp != nil {
		if o.stream {
			fmt.Fprintf(out, "streaming scenario population (online, O(tenants) memory)...\n")
			s, err := comp.Stream()
			if err != nil {
				return err
			}
			src = s
		} else {
			fmt.Fprintf(out, "materializing scenario trace...\n")
			tr, err := comp.Materialize()
			if err != nil {
				return err
			}
			src = tr.Source()
		}
	} else if o.replayFile != "" {
		f, err := os.Open(o.replayFile)
		if err != nil {
			return err
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", o.replayFile, err)
		}
		fmt.Fprintf(out, "replaying %s: %s trace, %d tenants, %v interleave\n",
			o.replayFile, tr.Benchmark, tr.Tenants, tr.Interleave)
		src = tr.Source()
	} else {
		kind, _ := hypertrio.ParseBenchmark(o.benchmark)
		iv, _ := hypertrio.ParseInterleave(o.interleave)
		tc := hypertrio.TraceConfig{
			Benchmark: kind, Tenants: o.tenants, Interleave: iv, Seed: o.seed, Scale: o.scale,
		}
		if o.compactRNG {
			tc.RNG = hypertrio.CompactRNG
		}
		if o.stream {
			fmt.Fprintf(out, "streaming %s workload: %d tenants, %v interleave, scale %g (online, O(tenants) memory)...\n",
				kind, o.tenants, iv, o.scale)
			s, err := hypertrio.NewStream(tc)
			if err != nil {
				return err
			}
			src = s
		} else {
			fmt.Fprintf(out, "constructing %s trace: %d tenants, %v interleave, scale %g...\n",
				kind, o.tenants, iv, o.scale)
			tr, err := hypertrio.ConstructTrace(tc)
			if err != nil {
				return err
			}
			src = tr.Source()
		}
	}
	if tr := src.Materialized(); tr != nil {
		fmt.Fprintf(out, "trace: %d packets, %d translation requests (min/max per-tenant budget %s/%s)\n",
			len(tr.Packets), tr.Requests(),
			stats.Count(uint64(tr.MinTenantBudget())), stats.Count(uint64(tr.MaxTenantBudget())))
	}

	sys, err := hypertrio.NewSystemSource(cfg, src)
	if err != nil {
		return err
	}
	if sh := sys.Sharded(); sh != nil {
		mode := "lockstep"
		if sh.Parallel() {
			mode = "parallel"
		}
		fmt.Fprintf(out, "sharded execution: device + IOMMU event domains, %s mode\n", mode)
	}
	res, err := sys.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%s design: %s\n", o.design, res)
	fmt.Fprintf(out, "  elapsed (simulated): %v\n", res.Elapsed)
	fmt.Fprintf(out, "  drops: %d (%.2f%% of arrival slots)\n", res.Drops, res.DropRate()*100)
	for _, c := range res.Classes {
		fmt.Fprintf(out, "  class %-12s %4d tenants  %7.2f Gb/s  drops %8d  avg lat %-12v Jain %.3f\n",
			c.Name, c.Tenants, c.Gbps, c.Drops, c.AvgLatency, c.Fairness)
	}
	if !cfg.TranslationOff {
		fmt.Fprintf(out, "  avg chipset translation latency: %v\n", res.AvgMissLatency)
		fmt.Fprintf(out, "  requests: %s total, %.1f%% DevTLB, %.1f%% prefetch buffer\n",
			stats.Count(res.Requests),
			pct(res.DevTLBServed, res.Requests), pct(res.PrefetchServed, res.Requests))
	}
	if st, ok := sys.FaultStats(); ok {
		fmt.Fprintf(out, "  faults: %d scripted events applied (%d page / %d tenant invalidations, %d flushes, %d remaps, %d detaches, %d attaches)\n",
			st.Applied, st.PageInvs, st.TenantInvs, st.Flushes, st.Remaps, st.Detaches, st.Attaches)
		fmt.Fprintf(out, "          %d cache entries dropped, %d walk retries, %d forced re-walks, %d stale-window hits\n",
			st.Dropped, st.FaultRetries, st.Rewalks, st.StaleHits)
	}
	if o.verbose {
		fmt.Fprintf(out, "\nstructures:\n")
		fmt.Fprintf(out, "  DevTLB:        %+v\n", res.DevTLB)
		fmt.Fprintf(out, "  PTB:           %+v\n", res.PTB)
		fmt.Fprintf(out, "  PrefetchUnit:  %+v\n", res.Prefetch)
		fmt.Fprintf(out, "  IOMMU:         translations=%d walks=%d memAccesses=%d\n",
			res.IOMMU.Translations, res.IOMMU.Walks, res.IOMMU.MemAccesses)
		fmt.Fprintf(out, "  ContextCache:  %+v\n", res.IOMMU.ContextCache)
		fmt.Fprintf(out, "  L2 PWC:        %+v\n", res.IOMMU.L2PWC)
		fmt.Fprintf(out, "  L3 PWC:        %+v\n", res.IOMMU.L3PWC)
	}

	if o.traceFile != "" {
		if err := obsOpts.Tracer.Flush(); err != nil {
			return fmt.Errorf("writing %s: %w", o.traceFile, err)
		}
		fmt.Fprintf(out, "\nwrote %s (%d events)\n", o.traceFile, obsOpts.Tracer.Events())
	}
	if o.metricsFile != "" {
		if err := writeMetrics(o.metricsFile, sys, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.metricsFile)
	}
	return nil
}

// loadScenario resolves -scenario: an existing file decodes as JSON;
// otherwise the name is looked up in the committed library.
func loadScenario(nameOrPath string) (*scenario.Scenario, error) {
	f, err := os.Open(nameOrPath)
	if err == nil {
		defer f.Close()
		sc, rerr := scenario.ReadScenario(f)
		if rerr != nil {
			return nil, fmt.Errorf("reading %s: %w", nameOrPath, rerr)
		}
		return sc, nil
	}
	if sc, lerr := scenario.ByName(nameOrPath); lerr == nil {
		return sc, nil
	}
	return nil, fmt.Errorf("-scenario %q: not a readable file (%v) and not a committed scenario name", nameOrPath, err)
}

// writeMetrics exports the run's registry snapshot and time series:
// the full hypertrio-metrics/1 JSON document, or just the series as CSV
// when the filename asks for it.
func writeMetrics(path string, sys *hypertrio.System, res hypertrio.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		if err := res.Series.WriteCSV(f); err != nil {
			return err
		}
	} else {
		doc := obs.NewMetricsExport(res.Series, sys.Registry().Snapshot())
		if err := doc.WriteJSON(f); err != nil {
			return err
		}
	}
	return f.Close()
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den) * 100
}
