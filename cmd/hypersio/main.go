// Command hypersio runs one HyperSIO simulation: it constructs a
// hyper-tenant trace for a chosen benchmark, tenant count and
// interleaving, replays it against a Base, HyperTRIO or custom
// configuration, and prints the bandwidth report.
//
// Usage examples:
//
//	hypersio -benchmark websearch -tenants 1024 -interleave RR1 -design hypertrio
//	hypersio -benchmark iperf3 -tenants 64 -design base -devtlb-entries 1024
//	hypersio -benchmark mediastream -tenants 128 -design hypertrio -ptb 8 -no-prefetch
package main

import (
	"flag"
	"fmt"
	"os"

	"hypertrio"
	"hypertrio/internal/stats"
	"hypertrio/internal/tlb"
	"hypertrio/internal/trace"
)

func main() {
	var (
		benchmark  = flag.String("benchmark", "iperf3", "workload: iperf3, mediastream, websearch")
		tenants    = flag.Int("tenants", 64, "number of concurrent tenants")
		interleave = flag.String("interleave", "RR1", "inter-tenant interleaving: RR1, RR4, RAND1, RR<k>, RAND<k>")
		design     = flag.String("design", "hypertrio", "hardware design: base or hypertrio")
		seed       = flag.Int64("seed", 42, "trace construction seed")
		scale      = flag.Float64("scale", 0.01, "trace scale in (0,1]; 1.0 is paper scale (~70M requests at 1024 tenants)")
		traceFile  = flag.String("trace", "", "replay a saved .hsio trace instead of constructing one")

		linkGbps   = flag.Float64("link", 200, "I/O link bandwidth in Gb/s")
		ptb        = flag.Int("ptb", 0, "override PTB entries (0 = design default)")
		devtlbSize = flag.Int("devtlb-entries", 0, "override DevTLB entries, 8-way (0 = design default)")
		policy     = flag.String("policy", "", "override DevTLB replacement policy: lru, lfu, fifo, rand, oracle")
		noPrefetch = flag.Bool("no-prefetch", false, "disable the Prefetch Unit")
		serial     = flag.Bool("serial", false, "serialize a packet's translations (legacy device)")
		verbose    = flag.Bool("v", false, "print per-structure statistics")
	)
	flag.Parse()

	if err := run(*benchmark, *interleave, *design, *policy, *traceFile, *tenants, *seed, *scale,
		*linkGbps, *ptb, *devtlbSize, *noPrefetch, *serial, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "hypersio:", err)
		os.Exit(1)
	}
}

func run(benchmark, interleave, design, policy, traceFile string, tenants int, seed int64,
	scale, linkGbps float64, ptb, devtlbSize int, noPrefetch, serial, verbose bool) error {
	kind, err := hypertrio.ParseBenchmark(benchmark)
	if err != nil {
		return err
	}
	iv, err := hypertrio.ParseInterleave(interleave)
	if err != nil {
		return err
	}
	var cfg hypertrio.Config
	switch design {
	case "base":
		cfg = hypertrio.BaseConfig()
	case "hypertrio":
		cfg = hypertrio.HyperTRIOConfig()
	default:
		return fmt.Errorf("unknown design %q (want base or hypertrio)", design)
	}
	cfg.Params.LinkGbps = linkGbps
	if ptb > 0 {
		cfg.PTBEntries = ptb
	}
	if devtlbSize > 0 {
		if devtlbSize%cfg.DevTLB.Ways != 0 {
			return fmt.Errorf("devtlb-entries %d not divisible by %d ways", devtlbSize, cfg.DevTLB.Ways)
		}
		cfg.DevTLB.Sets = devtlbSize / cfg.DevTLB.Ways
	}
	if policy != "" {
		p, err := tlb.ParsePolicy(policy)
		if err != nil {
			return err
		}
		cfg.DevTLB.Policy = p
	}
	if noPrefetch {
		cfg.Prefetch = nil
	}
	cfg.SerialRequests = serial

	var tr *hypertrio.Trace
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("reading %s: %w", traceFile, err)
		}
		fmt.Printf("replaying %s: %s trace, %d tenants, %v interleave\n",
			traceFile, tr.Benchmark, tr.Tenants, tr.Interleave)
	} else {
		fmt.Printf("constructing %s trace: %d tenants, %v interleave, scale %g...\n",
			kind, tenants, iv, scale)
		tr, err = hypertrio.ConstructTrace(hypertrio.TraceConfig{
			Benchmark: kind, Tenants: tenants, Interleave: iv, Seed: seed, Scale: scale,
		})
		if err != nil {
			return err
		}
	}
	fmt.Printf("trace: %d packets, %d translation requests (min/max per-tenant budget %s/%s)\n",
		len(tr.Packets), tr.Requests(),
		stats.Count(uint64(tr.MinTenantBudget())), stats.Count(uint64(tr.MaxTenantBudget())))

	res, err := hypertrio.Run(cfg, tr)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s design: %s\n", design, res)
	fmt.Printf("  elapsed (simulated): %v\n", res.Elapsed)
	fmt.Printf("  drops: %d (%.2f%% of arrival slots)\n", res.Drops, res.DropRate()*100)
	if !cfg.TranslationOff {
		fmt.Printf("  avg chipset translation latency: %v\n", res.AvgMissLatency)
		fmt.Printf("  requests: %s total, %.1f%% DevTLB, %.1f%% prefetch buffer\n",
			stats.Count(res.Requests),
			pct(res.DevTLBServed, res.Requests), pct(res.PrefetchServed, res.Requests))
	}
	if verbose {
		fmt.Printf("\nstructures:\n")
		fmt.Printf("  DevTLB:        %+v\n", res.DevTLB)
		fmt.Printf("  PTB:           %+v\n", res.PTB)
		fmt.Printf("  PrefetchUnit:  %+v\n", res.Prefetch)
		fmt.Printf("  IOMMU:         translations=%d walks=%d memAccesses=%d\n",
			res.IOMMU.Translations, res.IOMMU.Walks, res.IOMMU.MemAccesses)
		fmt.Printf("  ContextCache:  %+v\n", res.IOMMU.ContextCache)
		fmt.Printf("  L2 PWC:        %+v\n", res.IOMMU.L2PWC)
		fmt.Printf("  L3 PWC:        %+v\n", res.IOMMU.L3PWC)
	}
	return nil
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den) * 100
}
