package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"hypertrio"
	"hypertrio/internal/trace"
)

func buildTrace() (*hypertrio.Trace, error) {
	return hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Iperf3,
		Tenants:    4,
		Interleave: hypertrio.RR1,
		Seed:       1,
		Scale:      0.002,
	})
}

func writeTrace(w io.Writer, tr *hypertrio.Trace) error { return trace.Write(w, tr) }

func TestRunBasic(t *testing.T) {
	if err := run("iperf3", "RR1", "hypertrio", "", "", 8, 1, 0.002, 200, 0, 0, false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverrides(t *testing.T) {
	// Custom PTB, DevTLB size, policy, no prefetch, serial.
	if err := run("websearch", "RR4", "base", "lru", "", 4, 1, 0.002, 100, 8, 1024, true, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad benchmark", func() error {
			return run("nope", "RR1", "base", "", "", 4, 1, 0.002, 200, 0, 0, false, false, false)
		}},
		{"bad interleave", func() error {
			return run("iperf3", "XX", "base", "", "", 4, 1, 0.002, 200, 0, 0, false, false, false)
		}},
		{"bad design", func() error {
			return run("iperf3", "RR1", "fancy", "", "", 4, 1, 0.002, 200, 0, 0, false, false, false)
		}},
		{"bad policy", func() error {
			return run("iperf3", "RR1", "base", "bogus", "", 4, 1, 0.002, 200, 0, 0, false, false, false)
		}},
		{"indivisible devtlb", func() error {
			return run("iperf3", "RR1", "base", "", "", 4, 1, 0.002, 200, 0, 100, false, false, false)
		}},
		{"missing trace file", func() error {
			return run("iperf3", "RR1", "base", "", "/nonexistent.hsio", 4, 1, 0.002, 200, 0, 0, false, false, false)
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.hsio")
	// Reuse tracegen's writer via the trace package indirectly: simplest
	// is to construct and serialize here.
	if err := writeTestTrace(path); err != nil {
		t.Fatal(err)
	}
	if err := run("iperf3", "RR1", "hypertrio", "", path, 0, 0, 0.5, 200, 0, 0, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func writeTestTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := buildTrace()
	if err != nil {
		return err
	}
	return writeTrace(f, tr)
}
