package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypertrio"
	"hypertrio/internal/fault"
	"hypertrio/internal/obs"
	"hypertrio/internal/scenario"
	"hypertrio/internal/sim"
	"hypertrio/internal/trace"
)

// base returns a small, valid option set tests then perturb.
func base() options {
	return options{
		benchmark:  "iperf3",
		interleave: "RR1",
		design:     "hypertrio",
		tenants:    8,
		seed:       1,
		scale:      0.002,
		linkGbps:   200,
		sampleUs:   10,
	}
}

func buildTrace() (*hypertrio.Trace, error) {
	return hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Iperf3,
		Tenants:    4,
		Interleave: hypertrio.RR1,
		Seed:       1,
		Scale:      0.002,
	})
}

func writeTrace(w io.Writer, tr *hypertrio.Trace) error { return trace.Write(w, tr) }

func TestRunBasic(t *testing.T) {
	o := base()
	o.verbose = true
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverrides(t *testing.T) {
	// Custom PTB, DevTLB size, policy, no prefetch, serial.
	o := base()
	o.benchmark, o.interleave, o.design = "websearch", "RR4", "base"
	o.policy = "lru"
	o.tenants = 4
	o.linkGbps = 100
	o.ptb, o.devtlbSize = 8, 1024
	o.noPrefetch, o.serial = true, true
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"bad benchmark", func(o *options) { o.benchmark = "nope" }},
		{"bad interleave", func(o *options) { o.interleave = "XX" }},
		{"bad design", func(o *options) { o.design = "fancy" }},
		{"bad policy", func(o *options) { o.policy = "bogus" }},
		{"zero tenants", func(o *options) { o.tenants = 0 }},
		{"negative tenants", func(o *options) { o.tenants = -3 }},
		{"zero scale", func(o *options) { o.scale = 0 }},
		{"scale above one", func(o *options) { o.scale = 1.5 }},
		{"negative link", func(o *options) { o.linkGbps = -1 }},
		{"negative ptb", func(o *options) { o.ptb = -1 }},
		{"negative devtlb", func(o *options) { o.devtlbSize = -8 }},
		{"indivisible devtlb", func(o *options) { o.devtlbSize = 100 }},
		{"negative sample interval", func(o *options) { o.sampleUs = -1 }},
		{"negative shards", func(o *options) { o.shards = -2 }},
		{"engine trace without trace file", func(o *options) { o.engineEvents = true }},
		{"missing replay file", func(o *options) { o.replayFile = "/nonexistent.hsio" }},
		{"tenants above cap", func(o *options) { o.tenants = 1_000_001; o.stream = true }},
		{"huge tenants without stream", func(o *options) { o.tenants = 200_000 }},
		{"stream with replay", func(o *options) { o.stream = true; o.replayFile = "x.hsio" }},
		{"stream with oracle policy", func(o *options) { o.stream = true; o.policy = "oracle" }},
	}
	for _, c := range cases {
		o := base()
		c.mut(&o)
		if err := run(o, io.Discard); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestRunStreamMatchesMaterialized pins the user-visible contract of
// -stream: apart from the construction banner and the absent trace-size
// line (a stream has no length up front), a streaming run's report is
// byte-identical to the materialized run's.
func TestRunStreamMatchesMaterialized(t *testing.T) {
	report := func(stream, compact bool) string {
		var b strings.Builder
		o := base()
		o.stream, o.compactRNG = stream, compact
		if err := run(o, &b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		// Drop everything before the blank line preceding the results.
		if i := strings.Index(out, "\n\n"); i >= 0 {
			out = out[i:]
		}
		return out
	}
	if got, want := report(true, false), report(false, false); got != want {
		t.Errorf("streaming report diverged from materialized:\n--- stream\n%s\n--- trace\n%s", got, want)
	}
	// The compact RNG draws different sequences but must still run clean
	// in both modes and agree between them.
	if got, want := report(true, true), report(false, true); got != want {
		t.Errorf("compact-RNG streaming report diverged from materialized:\n--- stream\n%s\n--- trace\n%s", got, want)
	}
}

// TestRunShardedMatchesSerial pins the user-visible contract of -shards:
// apart from the one extra line announcing the execution mode, a sharded
// run's report is byte-identical to the serial run's.
func TestRunShardedMatchesSerial(t *testing.T) {
	var serial strings.Builder
	if err := run(base(), &serial); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		o := base()
		o.shards = shards
		var sharded strings.Builder
		if err := run(o, &sharded); err != nil {
			t.Fatal(err)
		}
		got := sharded.String()
		i := strings.Index(got, "sharded execution:")
		if i < 0 {
			t.Fatalf("shards=%d: report does not announce the execution mode:\n%s", shards, got)
		}
		j := strings.IndexByte(got[i:], '\n')
		got = got[:i] + got[i+j+1:]
		if got != serial.String() {
			t.Errorf("shards=%d report diverged from serial:\n got %q\nwant %q", shards, got, serial.String())
		}
	}
}

// TestValidationBeforeSimulation checks that input validation fires
// before any output file is created: a bad tenant count must not leave
// an empty trace file behind.
func TestValidationBeforeSimulation(t *testing.T) {
	o := base()
	o.tenants = -1
	o.traceFile = filepath.Join(t.TempDir(), "out.ndjson")
	if err := run(o, io.Discard); err == nil {
		t.Fatal("expected error")
	}
	if _, err := os.Stat(o.traceFile); !os.IsNotExist(err) {
		t.Error("trace file created before validation failed")
	}
}

func TestRunFromReplayFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.hsio")
	if err := writeTestTrace(path); err != nil {
		t.Fatal(err)
	}
	o := base()
	// Construction inputs are ignored when replaying.
	o.benchmark, o.tenants, o.scale = "", 0, 0
	o.replayFile = path
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestTraceAndMetricsOutput runs with every observability flag on and
// validates both artifacts against their published schemas.
func TestTraceAndMetricsOutput(t *testing.T) {
	dir := t.TempDir()
	o := base()
	o.traceFile = filepath.Join(dir, "out.ndjson")
	o.engineEvents = true
	o.metricsFile = filepath.Join(dir, "out.json")
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}

	// NDJSON trace: schema header first, every line well-formed, model
	// and engine events present.
	f, err := os.Open(o.traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	kinds := map[string]int{}
	first := true
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if first {
			if ev.Ev != "schema" || ev.Label != obs.TraceSchema {
				t.Fatalf("first line is not the schema header: %+v", ev)
			}
			first = false
		}
		kinds[ev.Ev]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arrival", "complete", "walk_start", "walk_end", "sched", "fire"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}

	// Metrics JSON: schema tag, non-empty series and counters.
	b, err := os.ReadFile(o.metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.MetricsExport
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != obs.MetricsSchema {
		t.Fatalf("metrics schema = %q", doc.Schema)
	}
	if len(doc.Series) == 0 {
		t.Fatal("metrics export has no time series")
	}
	if doc.Counters["core.packets"] == 0 || doc.Counters["ptb.allocs"] == 0 {
		t.Fatalf("metrics export missing counters: %v", doc.Counters)
	}
}

// TestMetricsCSVOutput checks the .csv spelling of -metrics.
func TestMetricsCSVOutput(t *testing.T) {
	o := base()
	o.metricsFile = filepath.Join(t.TempDir(), "out.csv")
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(o.metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if lines[0] != "t_ps,gbps,ptb_in_use,pb_hit_rate,devtlb_hit_rate,walkers_busy,walker_util" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("csv has no data rows")
	}
}

func writeTestTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := buildTrace()
	if err != nil {
		return err
	}
	return writeTrace(f, tr)
}

// writePlan writes a small valid fault plan and returns its path.
func writePlan(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	plan := &fault.Plan{
		Seed:  1,
		Retry: fault.RetryPolicy{MaxRetries: 2, Backoff: 100 * sim.Nanosecond, BackoffMax: sim.Microsecond},
		Events: []fault.Event{
			{At: sim.Time(0).Add(10 * sim.Microsecond), Kind: fault.InvalidateTenant, SID: 1},
			{At: sim.Time(0).Add(20 * sim.Microsecond), Kind: fault.FlushAll},
		},
	}
	var buf strings.Builder
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeScenario commits a scaled-down library scenario to disk and
// returns its path.
func writeScenario(t *testing.T, name string, scale float64) string {
	t.Helper()
	sc, err := scenario.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sc = sc.WithScale(scale)
	path := filepath.Join(t.TempDir(), name+".json")
	var buf strings.Builder
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIScenarioRun drives -scenario end to end: the scenario banner,
// the per-class breakdown, and — for the storm — the injector report.
// A file path and a committed library name both resolve, and the
// streaming run of the same scenario reports identical results.
func TestCLIScenarioRun(t *testing.T) {
	path := writeScenario(t, "noisy-neighbor", 0.05)
	var stdout, stderr strings.Builder
	if got := cliMain([]string{"-scenario", path}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"scenario noisy-neighbor:", "2 classes, 16 tenants, 1 phases",
		"class victim", "class bully", "Jain"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}

	// Identical results via -stream, modulo the construction banner.
	var streamOut strings.Builder
	if got := cliMain([]string{"-scenario", path, "-stream"}, &streamOut, &stderr); got != 0 {
		t.Fatalf("stream exit %d, stderr: %s", got, stderr.String())
	}
	tail := func(s string) string {
		if i := strings.Index(s, "\n\n"); i >= 0 {
			return s[i:]
		}
		return s
	}
	if tail(streamOut.String()) != tail(out) {
		t.Errorf("streaming scenario report diverged:\n--- stream\n%s\n--- trace\n%s",
			tail(streamOut.String()), tail(out))
	}

	// Committed names resolve without a file, and the storm prints its
	// composed fault script's accounting.
	stormPath := writeScenario(t, "storm", 0.05)
	var stormOut strings.Builder
	if got := cliMain([]string{"-scenario", stormPath}, &stormOut, &stderr); got != 0 {
		t.Fatalf("storm exit %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"scripted fault events", "faults:"} {
		if !strings.Contains(stormOut.String(), want) {
			t.Errorf("storm stdout lacks %q:\n%s", want, stormOut.String())
		}
	}
}

// TestCLIScenarioErrors covers -scenario misuse: conflicting flags,
// unresolvable names, and invalid documents all fail cleanly.
func TestCLIScenarioErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"hypertrio-scenario/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	plan := writePlan(t)
	cases := []struct {
		name string
		args []string
	}{
		{"with replay", []string{"-scenario", "storm", "-replay", "x.hsio"}},
		{"with faults", []string{"-scenario", "storm", "-faults", plan}},
		{"with describe", []string{"-scenario", "storm", "-describe"}},
		{"unknown name", []string{"-scenario", "hurricane"}},
		{"bad document", []string{"-scenario", bad}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if got := cliMain(c.args, &stdout, &stderr); got != 1 {
				t.Fatalf("cliMain(%v) = %d, want 1 (stderr: %s)", c.args, got, stderr.String())
			}
			if stderr.Len() == 0 {
				t.Error("failure produced nothing on stderr")
			}
		})
	}
}

// TestCLIExitCodes drives the full argv-to-exit-code path: flag misuse
// exits 2, runtime failures exit 1, success exits 0 — with errors on
// stderr and the report on stdout.
func TestCLIExitCodes(t *testing.T) {
	plan := writePlan(t)
	badPlan := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPlan, []byte(`{"schema":"nope/9","events":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	small := []string{"-tenants", "4", "-scale", "0.002"}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"malformed value", []string{"-tenants", "many"}, 2},
		{"stray positional argument", []string{"extra"}, 2},
		{"help", []string{"-h"}, 0},
		{"unknown design", []string{"-design", "fancy"}, 1},
		{"conflicting trace-engine", []string{"-trace-engine"}, 1},
		{"conflicting describe+faults", []string{"-describe", "-faults", plan}, 1},
		{"missing faults file", append(small, "-faults", "/nonexistent/plan.json"), 1},
		{"bad faults schema", append(small, "-faults", badPlan), 1},
		{"describe", []string{"-describe"}, 0},
		{"faulted run", append(small, "-faults", plan), 0},
		{"bad cpuprofile path", append(small, "-cpuprofile", "/nonexistent/dir/cpu.pprof"), 1},
		{"bad memprofile path", append(small, "-memprofile", "/nonexistent/dir/mem.pprof"), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			if got := cliMain(c.args, &stdout, &stderr); got != c.want {
				t.Fatalf("cliMain(%v) = %d, want %d (stderr: %s)", c.args, got, c.want, stderr.String())
			}
			if c.want != 0 && stderr.Len() == 0 {
				t.Error("failure produced nothing on stderr")
			}
		})
	}
}

// TestCLIProfilesWritten runs a tiny simulation under both profile flags
// and checks the pprof outputs exist and are non-empty. Bad paths are
// covered by TestCLIExitCodes: they fail before any simulation work.
func TestCLIProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr strings.Builder
	args := []string{"-tenants", "4", "-scale", "0.002", "-cpuprofile", cpu, "-memprofile", mem}
	if got := cliMain(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestCLIFaultedRunReportsInjector checks -faults end to end: the plan
// is loaded, applied during the run, and its accounting printed.
func TestCLIFaultedRunReportsInjector(t *testing.T) {
	var stdout, stderr strings.Builder
	args := []string{"-tenants", "4", "-scale", "0.002", "-faults", writePlan(t)}
	if got := cliMain(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fault plan", "2 scripted events", "faults: 2 scripted events applied", "1 flushes"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q:\n%s", want, out)
		}
	}
}
