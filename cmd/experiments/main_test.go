package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "table2,fig8a", true, 42, 1, 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2.txt", "table2.csv", "fig8a.txt", "fig8a.csv", "INDEX.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	idx, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "table2") || !strings.Contains(string(idx), "fig8a") {
		t.Fatalf("index incomplete:\n%s", idx)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := run(dir, "fig99", true, 1, 1, 0)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), `"fig99"`) {
		t.Errorf("error does not name the unknown ID: %v", err)
	}
	if !strings.Contains(err.Error(), "fig10") || !strings.Contains(err.Error(), "ext-isolation") {
		t.Errorf("error does not list the valid IDs: %v", err)
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		t.Errorf("output directory was created before validation failed")
	}
}

func TestRunUnknownExperimentsAllReported(t *testing.T) {
	err := run(t.TempDir(), "fig99, nope ,table2", true, 1, 1, 0)
	if err == nil {
		t.Fatal("unknown experiments accepted")
	}
	for _, want := range []string{`"fig99"`, `"nope"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %v does not report %s", err, want)
		}
	}
}

func TestRunUnwritableDir(t *testing.T) {
	if err := run("/proc/definitely/not/writable", "table2", true, 1, 1, 0); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestRunWithSampling(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "fig12b", true, 42, 1, 10); err != nil {
		t.Fatal(err)
	}
	series, err := filepath.Glob(filepath.Join(dir, "series", "fig12b", "cell-*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("sampling enabled but no per-cell series written")
	}
	b, err := os.ReadFile(series[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "t_ps,gbps,ptb_in_use,") {
		t.Fatalf("series CSV missing header: %q", string(b[:60]))
	}
}

func TestRunNegativeSampleRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	if err := run(dir, "table2", true, 1, 1, -5); err == nil {
		t.Fatal("negative sample interval accepted")
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		t.Error("output directory was created before validation failed")
	}
}
