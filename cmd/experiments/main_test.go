package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	if err := testRun(dir, "table2,fig8a", true, 42, 1, 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2.txt", "table2.csv", "fig8a.txt", "fig8a.csv", "INDEX.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	idx, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "table2") || !strings.Contains(string(idx), "fig8a") {
		t.Fatalf("index incomplete:\n%s", idx)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	err := testRun(dir, "fig99", true, 1, 1, 0)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), `"fig99"`) {
		t.Errorf("error does not name the unknown ID: %v", err)
	}
	if !strings.Contains(err.Error(), "fig10") || !strings.Contains(err.Error(), "ext-isolation") {
		t.Errorf("error does not list the valid IDs: %v", err)
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		t.Errorf("output directory was created before validation failed")
	}
}

func TestRunUnknownExperimentsAllReported(t *testing.T) {
	err := testRun(t.TempDir(), "fig99, nope ,table2", true, 1, 1, 0)
	if err == nil {
		t.Fatal("unknown experiments accepted")
	}
	for _, want := range []string{`"fig99"`, `"nope"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %v does not report %s", err, want)
		}
	}
}

func TestRunUnwritableDir(t *testing.T) {
	if err := testRun("/proc/definitely/not/writable", "table2", true, 1, 1, 0); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestRunWithSampling(t *testing.T) {
	dir := t.TempDir()
	if err := testRun(dir, "fig12b", true, 42, 1, 10); err != nil {
		t.Fatal(err)
	}
	series, err := filepath.Glob(filepath.Join(dir, "series", "fig12b", "cell-*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("sampling enabled but no per-cell series written")
	}
	b, err := os.ReadFile(series[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "t_ps,gbps,ptb_in_use,") {
		t.Fatalf("series CSV missing header: %q", string(b[:60]))
	}
}

func TestRunNegativeSampleRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	if err := testRun(dir, "table2", true, 1, 1, -5); err == nil {
		t.Fatal("negative sample interval accepted")
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		t.Error("output directory was created before validation failed")
	}
}

// testRun adapts the historical positional signature the tests were
// written against to the cliOptions struct.
func testRun(dir, only string, quick bool, seed int64, parallel, sampleUs int) error {
	return run(cliOptions{
		outDir: dir, only: only, quick: quick,
		seed: seed, parallel: parallel, sampleUs: sampleUs,
	}, io.Discard)
}

// TestRunWithInvariants regenerates a subset with the conservation
// checker composed into every cell; any violation fails the run.
func TestRunWithInvariants(t *testing.T) {
	o := cliOptions{
		outDir: t.TempDir(), only: "fig12b", quick: true,
		seed: 42, parallel: 1, invariants: true,
	}
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestResolveConcurrency pins how the two concurrency axes compose:
// -shards shrinks the worker default, never an explicit worker count,
// and an explicitly oversubscribing combination is rejected up front.
func TestResolveConcurrency(t *testing.T) {
	cases := []struct {
		name         string
		o            cliOptions
		ncpu         int
		wantParallel int
		wantErr      bool
	}{
		{"no shards untouched", cliOptions{parallel: 8}, 8, 8, false},
		{"shards=1 untouched", cliOptions{parallel: 8, shards: 1}, 8, 8, false},
		{"negative shards rejected", cliOptions{parallel: 1, shards: -1}, 8, 1, true},
		{"default workers shrink", cliOptions{parallel: 8, shards: 2}, 8, 4, false},
		{"default workers floor at one", cliOptions{parallel: 1, shards: 8}, 1, 1, false},
		{"explicit exact fit", cliOptions{parallel: 4, shards: 2, parallelSet: true}, 8, 4, false},
		{"explicit serial workers kept", cliOptions{parallel: 1, shards: 8, parallelSet: true}, 1, 1, false},
		{"explicit oversubscription", cliOptions{parallel: 8, shards: 2, parallelSet: true}, 8, 8, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.resolveConcurrency(c.ncpu)
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, c.wantErr)
			}
			if err == nil && c.o.parallel != c.wantParallel {
				t.Errorf("parallel = %d, want %d", c.o.parallel, c.wantParallel)
			}
		})
	}
}

// TestRunShardedOutputsIdentical regenerates a subset serially and on
// the sharded coordinator; every output file must match byte for byte.
func TestRunShardedOutputsIdentical(t *testing.T) {
	serialDir, shardedDir := t.TempDir(), t.TempDir()
	if err := run(cliOptions{outDir: serialDir, only: "fig8a", quick: true, seed: 42, parallel: 1}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(cliOptions{outDir: shardedDir, only: "fig8a", quick: true, seed: 42, parallel: 1, shards: 2}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig8a.txt", "fig8a.csv", "INDEX.txt"} {
		a, err := os.ReadFile(filepath.Join(serialDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(shardedDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s diverged between serial and sharded runs", name)
		}
	}
}

// TestCLIExitCodes drives the full argv-to-exit-code path: flag misuse
// exits 2, runtime failures exit 1, success exits 0.
func TestCLIExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-bogus"}, 2},
		{"malformed value", []string{"-parallel", "lots"}, 2},
		{"stray positional argument", []string{"table2"}, 2},
		{"help", []string{"-h"}, 0},
		{"unknown experiment", []string{"-only", "fig99", "-quick"}, 1},
		{"negative sample interval", []string{"-only", "table2", "-sample-us", "-1"}, 1},
		{"negative shards", []string{"-only", "table2", "-shards", "-1"}, 1},
		{"bad cpuprofile path", []string{"-only", "table2", "-quick", "-cpuprofile", "/nonexistent/dir/cpu.pprof"}, 1},
		{"bad memprofile path", []string{"-only", "table2", "-quick", "-memprofile", "/nonexistent/dir/mem.pprof"}, 1},
		{"list", []string{"-list"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			args := c.args
			if c.want == 1 {
				// Failing runs still need a scratch output dir target.
				args = append([]string{"-out", filepath.Join(t.TempDir(), "out")}, args...)
			}
			if got := cliMain(args, &stdout, &stderr); got != c.want {
				t.Fatalf("cliMain(%v) = %d, want %d (stderr: %s)", args, got, c.want, stderr.String())
			}
			if c.want != 0 && stderr.Len() == 0 {
				t.Error("failure produced nothing on stderr")
			}
		})
	}
}

// TestCLIProfilesWritten regenerates one quick experiment under both
// profile flags and checks the pprof outputs exist and are non-empty.
func TestCLIProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr strings.Builder
	args := []string{"-out", filepath.Join(dir, "out"), "-only", "table2", "-quick",
		"-parallel", "1", "-cpuprofile", cpu, "-memprofile", mem}
	if got := cliMain(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestCLIListNamesEveryExperiment pins -list against the registry,
// including the fault-injection extensions.
func TestCLIListNamesEveryExperiment(t *testing.T) {
	var stdout, stderr strings.Builder
	if got := cliMain([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"table2", "fig10", "ext-faults", "ext-churn"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output lacks %q:\n%s", want, stdout.String())
		}
	}
}
