package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "table2,fig8a", true, 42); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2.txt", "table2.csv", "fig8a.txt", "fig8a.csv", "INDEX.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	idx, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "table2") || !strings.Contains(string(idx), "fig8a") {
		t.Fatalf("index incomplete:\n%s", idx)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(t.TempDir(), "fig99", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnwritableDir(t *testing.T) {
	if err := run("/proc/definitely/not/writable", "table2", true, 1); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
