// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes the results to a directory (text and CSV
// per experiment, plus an index).
//
// Usage:
//
//	experiments                     # run everything into ./results
//	experiments -only fig10,fig12c  # a subset
//	experiments -quick              # reduced scale (CI smoke run)
//	experiments -parallel 1         # serial sweep execution
//	experiments -list               # show the registry
//
// Simulation cells fan out across -parallel worker goroutines; results/
// output is byte-identical for any worker count (per-experiment timings
// go to stdout, not the index, so a results directory diffs clean across
// runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"hypertrio/internal/experiments"
	"hypertrio/internal/profiling"
	"hypertrio/internal/runner"
	"hypertrio/internal/sim"
)

// cliOptions carries every flag of the regeneration command.
type cliOptions struct {
	outDir     string
	only       string
	quick      bool
	seed       int64
	parallel   int
	shards     int
	sampleUs   int
	invariants bool
	list       bool
	cpuProfile string
	memProfile string

	// parallelSet records whether -parallel was given explicitly, so
	// -shards can shrink the worker default without silently overriding
	// (or silently obeying) a worker count the user asked for.
	parallelSet bool
}

// parseFlags binds the flags to a fresh option set; errors and usage go
// to stderr.
func parseFlags(args []string, stderr io.Writer) (cliOptions, error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o cliOptions
	fs.StringVar(&o.outDir, "out", "results", "output directory")
	fs.StringVar(&o.only, "only", "", "comma-separated experiment IDs (default: all)")
	fs.BoolVar(&o.quick, "quick", false, "reduced tenant counts and trace lengths")
	fs.Int64Var(&o.seed, "seed", 42, "trace construction seed")
	fs.IntVar(&o.parallel, "parallel", runtime.NumCPU(), "simulation worker goroutines (1 = serial)")
	fs.IntVar(&o.shards, "shards", 0, "event-domain shards per simulation cell: 0/1 single engine, >=2 sharded coordinator (tables identical)")
	fs.IntVar(&o.sampleUs, "sample-us", 0, "emit per-cell time series sampled every N simulated µs under <out>/series/<id>/ (0 = off)")
	fs.BoolVar(&o.invariants, "invariants", false, "compose the conservation-checking pipeline stage into every cell (transparent; violations fail the run)")
	fs.BoolVar(&o.list, "list", false, "list experiments and exit")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the sweep to FILE")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile (post-sweep, GC-settled) to FILE")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() > 0 {
		err := fmt.Errorf("unexpected arguments: %v", fs.Args())
		fmt.Fprintln(stderr, "experiments:", err)
		return o, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			o.parallelSet = true
		}
	})
	return o, nil
}

// resolveConcurrency composes the two concurrency axes — worker
// goroutines across cells (-parallel) and event domains within a cell
// (-shards) — so their product never oversubscribes the machine. When
// only -shards is given, the worker default shrinks to NumCPU/shards;
// an explicit worker count is never adjusted, but an explicit
// oversubscribing combination is rejected up front rather than thrashing
// for the whole sweep.
func (o *cliOptions) resolveConcurrency(ncpu int) error {
	if o.shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", o.shards)
	}
	if o.shards < 2 {
		return nil
	}
	if !o.parallelSet {
		o.parallel = ncpu / o.shards
		if o.parallel < 1 {
			o.parallel = 1
		}
		return nil
	}
	if o.parallel > 1 && o.parallel*o.shards > ncpu {
		return fmt.Errorf("-parallel %d x -shards %d = %d goroutines oversubscribes %d CPUs; lower one (or drop -parallel to let -shards pick the worker count)",
			o.parallel, o.shards, o.parallel*o.shards, ncpu)
	}
	return nil
}

// cliMain is main minus the process exit, so tests can drive the full
// argv-to-exit-code path: 0 success, 1 runtime failure, 2 flag misuse.
func cliMain(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err == flag.ErrHelp {
		return 0 // -h prints usage and is not an error (matches flag.ExitOnError)
	}
	if err != nil {
		return 2
	}
	if o.list {
		for _, e := range experiments.All {
			fmt.Fprintf(stdout, "  %-8s %s\n", e.ID, e.Title)
		}
		return 0
	}
	// Profiling brackets the whole sweep; output paths are validated here,
	// before any experiment runs.
	prof, err := profiling.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	defer prof.Finish() // backstop; Finish is idempotent
	code := 0
	if err := run(o, stdout); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		code = 1
	}
	if err := prof.Finish(); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// validIDs lists the registry's experiment IDs in order.
func validIDs() []string {
	ids := make([]string, len(experiments.All))
	for i, e := range experiments.All {
		ids[i] = e.ID
	}
	return ids
}

// selectExperiments resolves a -only list, reporting every unknown ID at
// once (before anything runs) along with the valid registry.
func selectExperiments(only string) ([]experiments.Experiment, error) {
	if only == "" {
		return experiments.All, nil
	}
	var selected []experiments.Experiment
	var unknown []string
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.Lookup(id)
		if !ok {
			unknown = append(unknown, fmt.Sprintf("%q", id))
			continue
		}
		selected = append(selected, e)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown experiment(s) %s; valid IDs: %s",
			strings.Join(unknown, ", "), strings.Join(validIDs(), ", "))
	}
	return selected, nil
}

func run(o cliOptions, out io.Writer) error {
	if o.sampleUs < 0 {
		return fmt.Errorf("-sample-us must be >= 0, got %d", o.sampleUs)
	}
	if err := o.resolveConcurrency(runtime.NumCPU()); err != nil {
		return err
	}
	opts := experiments.Options{
		Seed: o.seed, Quick: o.quick, Workers: o.parallel,
		SampleEvery: sim.Duration(o.sampleUs) * sim.Microsecond,
		Invariants:  o.invariants, Shards: o.shards,
	}
	selected, err := selectExperiments(o.only)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	var index strings.Builder
	fmt.Fprintf(&index, "HyperTRIO experiment regeneration (quick=%v, seed=%d)\n", o.quick, o.seed)
	fmt.Fprintf(&index, "generated by cmd/experiments\n\n")
	for _, e := range selected {
		expStart := time.Now()
		fmt.Fprintf(out, "== %s: %s\n", e.ID, e.Title)
		expOpts := opts
		if opts.SampleEvery > 0 {
			expOpts.SeriesDir = filepath.Join(o.outDir, "series", e.ID)
		}
		tbl, err := e.Run(expOpts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		text := tbl.String()
		fmt.Fprintln(out, text)
		fmt.Fprintf(out, "   (%s)\n", time.Since(expStart).Round(time.Millisecond))
		if err := os.WriteFile(filepath.Join(o.outDir, e.ID+".txt"), []byte(text), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(o.outDir, e.ID+".csv"), []byte(tbl.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&index, "%-8s %s\n", e.ID, e.Title)
	}
	cs := runner.Shared().Stats()
	fmt.Fprintf(out, "%d experiments in %s; workers=%d; trace cache: %d built, %d reused (%.1f%% hit rate)\n",
		len(selected), time.Since(start).Round(time.Millisecond), o.parallel,
		cs.Misses, cs.Hits, cs.HitRate()*100)
	return os.WriteFile(filepath.Join(o.outDir, "INDEX.txt"), []byte(index.String()), 0o644)
}
