# Development and CI entry points. `make ci` is the full gate:
# build + vet + tests + race detector + experiment smoke run.

GO ?= go

.PHONY: all build test race vet bench-quick smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target doubles as the shared-trace immutability proof:
# TestSharedTraceConcurrentRuns and the runner pool tests replay shared
# traces from many goroutines under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of the serial-vs-parallel suite comparison.
bench-quick:
	$(GO) test -bench 'BenchmarkSuiteQuick$$' -benchtime 1x -run '^$$' .

# CI smoke run: the reduced-scale experiment suite end to end.
smoke:
	$(GO) run ./cmd/experiments -quick -out results-smoke

ci: build vet test race smoke

clean:
	rm -rf results-smoke
