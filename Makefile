# Development and CI entry points. `make ci` is the full gate:
# build + lint + tests (including the quick-suite golden) + race
# detector + experiment smoke run.

GO ?= go

.PHONY: all build test golden race race-obs vet lint bench-quick bench-obs bench-smoke bench-json smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target doubles as the shared-trace immutability proof:
# TestSharedTraceConcurrentRuns and the runner pool tests replay shared
# traces from many goroutines under the race detector.
race:
	$(GO) test -race ./...

# Observability-focused race pass: the obs package and engine-probe
# tests (including the schema-stability goldens) plus the worker-pool
# concurrent-sampling test, which shares one *obs.Options across all
# pool goroutines.
race-obs:
	$(GO) test -race ./internal/obs ./internal/sim
	$(GO) test -race -run TestPoolConcurrentSampling ./internal/runner

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when the module proxy is
# reachable (it is go-run on demand, not vendored), otherwise skipped
# with a notice so offline runs still pass.
lint: vet
	@$(GO) run honnef.co/go/tools/cmd/staticcheck@2023.1.7 ./... \
		|| echo "lint: staticcheck unavailable (offline?); go vet passed, skipping"

# Byte-identity gate: the quick experiment suite must reproduce the
# committed sha256 manifest exactly (internal/experiments/testdata).
golden:
	$(GO) test -run TestQuickSuiteGolden -count=1 ./internal/experiments

# One iteration of the serial-vs-parallel suite comparison.
bench-quick:
	$(GO) test -bench 'BenchmarkSuiteQuick$$' -benchtime 1x -run '^$$' .

# One iteration of the observability-overhead comparison: the quick
# suite with the layer off versus with per-cell time-series sampling.
bench-obs:
	$(GO) test -bench 'BenchmarkSuiteQuickObs' -benchtime 1x -run '^$$' .

# One iteration of every benchmark: catches harness rot (a benchmark
# that panics or no longer compiles) without paying measurement time.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Machine-readable performance snapshot (ns/op, allocs/op, pkts/s and
# the quick-suite wall time) written to BENCH_PR4.json. Pass
# BENCH_BASELINE=<file> to embed deltas against a previous snapshot.
bench-json:
	$(GO) run ./cmd/benchjson $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

# CI smoke run: the reduced-scale experiment suite end to end.
smoke:
	$(GO) run ./cmd/experiments -quick -out results-smoke

ci: build lint test golden race race-obs bench-smoke smoke

clean:
	rm -rf results-smoke
