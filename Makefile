# Development and CI entry points. `make ci` is the full gate:
# build + lint + tests (including the quick-suite golden) + race
# detector + coverage floor + fuzz smoke + experiment smoke run.

GO ?= go

.PHONY: all build test golden mem-guard race race-obs race-fault race-shards race-scenario scenario-lint cover cover-check fuzz-smoke vet lint bench-quick bench-obs bench-smoke bench-shards bench-json bench-mem bench-compare smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race target doubles as the shared-trace immutability proof:
# TestSharedTraceConcurrentRuns and the runner pool tests replay shared
# traces from many goroutines under the race detector. The raised
# timeout covers internal/experiments, whose six quick-suite golden
# generations run ~3 min each under -race on a single-core container —
# past Go's default 10 m package budget without any test hanging.
race:
	$(GO) test -race -timeout 45m ./...

# Observability-focused race pass: the obs package and engine-probe
# tests (including the schema-stability goldens) plus the worker-pool
# concurrent-sampling test, which shares one *obs.Options across all
# pool goroutines.
race-obs:
	$(GO) test -race ./internal/obs ./internal/sim
	$(GO) test -race -run TestPoolConcurrentSampling ./internal/runner

# Fault-injection race pass: the injector package under -race, plus the
# pinned fault-enabled determinism and churn tests at core level (one
# shared read-only plan across systems is part of the contract).
race-fault:
	$(GO) test -race ./internal/fault
	$(GO) test -race -run 'TestFaultRunDeterministic|TestTenantChurnFlushesState' ./internal/core

# Per-package coverage run; prints the repo total and leaves cover.out
# for `go tool cover -html=cover.out`.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Coverage gate: the repo-wide statement coverage must not fall below
# the floor measured when the gate was added. Raise the floor as
# coverage grows; never lower it to make a change pass.
COVER_FLOOR ?= 83
cover-check:
	@$(GO) test -coverprofile=cover.out ./... > /dev/null
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$NF); print $$NF}'); \
	echo "coverage: $${total}% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' \
	  || { echo "coverage $${total}% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fuzz smoke: five seconds of coverage-guided fuzzing on each target
# (the hardened binary-trace decoder, the SID predictor, the
# timing-wheel-vs-reference-heap scheduler equivalence, and the
# scenario JSON codec round-trip). The committed
# seed corpora under testdata/fuzz/ also replay in every ordinary
# `go test` run.
fuzz-smoke:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzReadBinary -fuzztime 5s
	$(GO) test ./internal/device -run '^$$' -fuzz FuzzPredictor -fuzztime 5s
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzEngineMatchesHeapRef -fuzztime 5s
	$(GO) test ./internal/scenario -run '^$$' -fuzz FuzzScenarioCodec -fuzztime 5s

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when the module proxy is
# reachable (it is go-run on demand, not vendored), otherwise skipped
# with a notice so offline runs still pass.
lint: vet
	@$(GO) run honnef.co/go/tools/cmd/staticcheck@2023.1.7 ./... \
		|| echo "lint: staticcheck unavailable (offline?); go vet passed, skipping"

# Byte-identity gate: the quick experiment suite must reproduce the
# committed sha256 manifest exactly (internal/experiments/testdata).
# The pattern also matches TestQuickSuiteGoldenSharded, so one target
# pins the serial engine and the sharded coordinator (shards 2 and 8)
# to the same manifest.
golden:
	$(GO) test -run TestQuickSuiteGolden -count=1 ./internal/experiments

# Streaming-memory gate: the 10^5-tenant streaming HyperTRIO cell must
# finish within its committed live-heap budget — the pin that keeps
# streaming-run memory O(tenants) instead of O(packets).
mem-guard:
	$(GO) test -run TestMegaTenantHeapBudget -count=1 ./internal/experiments

# Sharded-execution race pass: the coordinator's domain goroutines,
# SPSC rings and lookahead bookkeeping under the race detector — the
# sim- and core-level determinism tests, then the full quick suite on
# the parallel coordinator (shards=8) held to the golden manifest.
race-shards:
	$(GO) test -race -run 'TestParallel|TestLockstep|TestLookahead|TestSPSC' ./internal/sim
	$(GO) test -race -run 'TestSharded' ./internal/core
	$(GO) test -race -run 'TestQuickSuiteGoldenSharded/shards=8' -count=1 ./internal/experiments

# Scenario race pass: the scenario DSL package under -race, plus the
# scenario signal/conservation tests and the five-mode differential
# determinism check (serial vs sharded vs streaming) at experiments
# level — the adversarial suite's full contract under the race
# detector.
race-scenario:
	$(GO) test -race ./internal/scenario
	$(GO) test -race -run 'Scenario|Signal' -count=1 ./internal/experiments

# Committed-scenario gate: every file under scenarios/ must decode
# strictly, compile, and be byte-identical to its canonical encoding.
scenario-lint:
	$(GO) run ./cmd/scenariolint -check scenarios/*.json

# One iteration of the serial-vs-parallel suite comparison.
bench-quick:
	$(GO) test -bench 'BenchmarkSuiteQuick$$' -benchtime 1x -run '^$$' .

# One iteration of the observability-overhead comparison: the quick
# suite with the layer off versus with per-cell time-series sampling.
bench-obs:
	$(GO) test -bench 'BenchmarkSuiteQuickObs' -benchtime 1x -run '^$$' .

# One iteration of every benchmark: catches harness rot (a benchmark
# that panics or no longer compiles) without paying measurement time.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# One iteration of the sharded end-to-end variants: serial baseline
# against the two-domain run at every shard count.
bench-shards:
	$(GO) test -bench 'BenchmarkEndToEnd/shards' -benchtime 1x -run '^$$' .

# Machine-readable performance snapshot (ns/op, allocs/op, pkts/s and
# the quick-suite wall time) written to BENCH_PR9.json. Pass
# BENCH_BASELINE=<file> to embed deltas against a previous snapshot.
bench-json:
	$(GO) run ./cmd/benchjson $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

# Regression gate: re-measure the hot-path benchmarks at a short
# benchtime and diff them against the committed snapshot. The threshold
# is deliberately generous — a 100ms benchtime trades precision for
# speed, so this gate catches structural rot (an optimization wired out,
# an alloc-free path regressing to allocation), not single-digit drift.
BENCH_SNAPSHOT ?= BENCH_PR9.json
BENCH_THRESHOLD ?= 0.5
bench-compare:
	$(GO) run ./cmd/benchjson -skip-suite -benchtime 100ms -o bench-compare.json
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) $(BENCH_SNAPSHOT) bench-compare.json

# Memory-footprint snapshot (schema hypertrio-bench/2): streaming vs
# materialized bytes/tenant and peak heap for the 10^5-tenant cell,
# written to BENCH_MEM.json. Pass BENCH_BASELINE=<file> to embed ratios
# against a previous snapshot (v1 baselines load; their memory delta is
# simply omitted).
bench-mem:
	$(GO) run ./cmd/benchjson -skip-bench -skip-suite -mem -o BENCH_MEM.json $(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE))

# CI smoke run: the reduced-scale experiment suite end to end.
smoke:
	$(GO) run ./cmd/experiments -quick -out results-smoke

ci: build lint test golden mem-guard race race-obs race-fault race-shards race-scenario scenario-lint cover-check fuzz-smoke bench-smoke bench-shards bench-compare smoke

clean:
	rm -rf results-smoke cover.out bench-compare.json
