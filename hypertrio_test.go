package hypertrio_test

import (
	"testing"

	"hypertrio"
)

func TestPublicAPIQuickstart(t *testing.T) {
	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Websearch,
		Tenants:    32,
		Interleave: hypertrio.RR1,
		Seed:       42,
		Scale:      0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := hypertrio.Run(hypertrio.BaseConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := hypertrio.Run(hypertrio.HyperTRIOConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if hyper.AchievedGbps <= base.AchievedGbps {
		t.Fatalf("HyperTRIO (%.1f) should beat Base (%.1f) at 32 tenants",
			hyper.AchievedGbps, base.AchievedGbps)
	}
	if base.String() == "" || hyper.String() == "" {
		t.Fatal("Result.String empty")
	}
}

func TestPublicParsers(t *testing.T) {
	if b, err := hypertrio.ParseBenchmark("mediastream"); err != nil || b != hypertrio.Mediastream {
		t.Fatalf("ParseBenchmark: %v %v", b, err)
	}
	if iv, err := hypertrio.ParseInterleave("RR4"); err != nil || iv != hypertrio.RR4 {
		t.Fatalf("ParseInterleave: %v %v", iv, err)
	}
	if len(hypertrio.Benchmarks) != 3 {
		t.Fatalf("Benchmarks has %d entries", len(hypertrio.Benchmarks))
	}
}

func TestDefaultParamsExposed(t *testing.T) {
	p := hypertrio.DefaultParams()
	if p.LinkGbps != 200 || p.PacketBytes != 1542 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}
