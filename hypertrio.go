// Package hypertrio is a Go reproduction of "HyperTRIO: Hyper-Tenant
// Translation of I/O Addresses" (Lavrov & Wentzlaff, ISCA 2020) together
// with HyperSIO, the hyper-tenant I/O simulator the paper built to
// evaluate it.
//
// The package exposes the full experiment pipeline:
//
//  1. Pick a workload (Iperf3, Mediastream, Websearch — calibrated to the
//     paper's §IV-D characterization) and construct a hyper-tenant trace
//     with ConstructTrace, choosing tenant count and inter-tenant
//     interleaving (RR1, RR4, RAND1).
//  2. Pick a hardware configuration: BaseConfig (conventional design) or
//     HyperTRIOConfig (partitioned DevTLB, 32-entry Pending Translation
//     Buffer, translation prefetching — Table IV), or build a custom one.
//  3. Run the trace-driven performance model with Run and inspect the
//     achieved bandwidth, drop rates and per-structure statistics in the
//     Result.
//
// Minimal example:
//
//	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
//		Benchmark:  hypertrio.Websearch,
//		Tenants:    1024,
//		Interleave: hypertrio.RR1,
//		Seed:       42,
//		Scale:      0.01,
//	})
//	if err != nil { ... }
//	res, err := hypertrio.Run(hypertrio.HyperTRIOConfig(), tr)
//	fmt.Println(res) // e.g. "198.40 Gb/s (99.2% of link), ..."
package hypertrio

import (
	"hypertrio/internal/core"
	"hypertrio/internal/trace"
	"hypertrio/internal/workload"
)

// Benchmark identifies one of the paper's evaluated workloads.
type Benchmark = workload.Kind

// The three I/O-intensive benchmarks of §V-A.
const (
	Iperf3      = workload.Iperf3
	Mediastream = workload.Mediastream
	Websearch   = workload.Websearch
)

// Benchmarks lists all workloads in presentation order.
var Benchmarks = workload.Kinds

// ParseBenchmark converts a name ("iperf3", "mediastream", "websearch").
func ParseBenchmark(s string) (Benchmark, error) { return workload.ParseKind(s) }

// Profile is a per-tenant workload calibration. The built-in benchmarks
// ship calibrated profiles (ProfileFor); pass a custom Profile through
// TraceConfig.Profile to model other workloads (e.g. a key-value store
// with small values — the paper's introductory motivation).
type Profile = workload.Profile

// ProfileFor returns the calibrated profile for a built-in benchmark.
func ProfileFor(b Benchmark) Profile { return workload.ProfileFor(b) }

// Interleave is an inter-tenant arbitration scheme with burst length.
type Interleave = trace.Interleave

// The paper's three interleavings (§IV-B).
var (
	RR1   = trace.RR1
	RR4   = trace.RR4
	RAND1 = trace.RAND1
)

// ParseInterleave converts "RR1", "RR4", "RAND1", ...
func ParseInterleave(s string) (Interleave, error) { return trace.ParseInterleave(s) }

// TraceConfig drives hyper-tenant trace construction (HyperSIO's Trace
// Constructor, §IV-B).
type TraceConfig = trace.Config

// Trace is a constructed hyper-tenant translation trace.
type Trace = trace.Trace

// ConstructTrace builds a hyper-tenant trace: per-tenant synthetic
// workload streams (calibrated to Table III request budgets at
// Scale == 1.0) interleaved by the chosen scheme, truncated when the
// first tenant's log is exhausted.
func ConstructTrace(cfg TraceConfig) (*Trace, error) { return trace.Construct(cfg) }

// Source is a pull-based packet stream: either a materialized Trace
// adapter (Trace.Source) or an online generator-backed stream
// (NewStream). The simulation consumes packets one at a time through it.
type Source = trace.Source

// Stream is the online hyper-tenant source: the same packet sequence
// ConstructTrace would materialize, synthesized on the fly in O(tenants)
// memory — the scale-out path to millions of tenants.
type Stream = trace.Stream

// NewStream builds the online source for cfg.
func NewStream(cfg TraceConfig) (*Stream, error) { return trace.NewStream(cfg) }

// RNG selects the per-tenant random-source implementation
// (TraceConfig.RNG): StdRNG reproduces every golden sequence, CompactRNG
// shrinks per-generator state ~60x for million-tenant streaming.
type RNG = workload.RNG

// The available random-source implementations.
const (
	StdRNG     = workload.StdRNG
	CompactRNG = workload.CompactRNG
)

// Params are the performance-model latencies and link parameters
// (Table II).
type Params = core.Params

// DefaultParams returns Table II verbatim: 450 ns one-way PCIe, 50 ns
// DRAM, 2 ns TLB hit, 1542 B packets, 200 Gb/s link.
func DefaultParams() Params { return core.DefaultParams() }

// Config is a full system configuration under test.
type Config = core.Config

// BaseConfig returns the paper's Base design (Table IV).
func BaseConfig() Config { return core.BaseConfig() }

// HyperTRIOConfig returns the paper's full HyperTRIO design (Table IV).
func HyperTRIOConfig() Config { return core.HyperTRIOConfig() }

// DescribePipeline renders the translation datapath a configuration
// resolves to — one line per composed stage — without building page
// tables or running anything (`hypersio -describe`).
func DescribePipeline(cfg Config) (string, error) { return core.DescribePipeline(cfg) }

// Result reports a simulation run's bandwidth and per-structure
// statistics.
type Result = core.Result

// System is one instantiated simulation. Most callers only need Run;
// NewSystem exposes the System for observability users that want the
// metrics registry alongside the Result.
type System = core.System

// NewSystem builds a simulation of cfg over tr without running it.
func NewSystem(cfg Config, tr *Trace) (*System, error) { return core.NewSystem(cfg, tr) }

// NewSystemSource builds a simulation over any packet Source. Online
// sources keep the run's memory O(tenants); configurations that need the
// whole sequence ahead of time (the Oracle replacement policy) are
// rejected with a clear error unless the source is materialized.
func NewSystemSource(cfg Config, src Source) (*System, error) {
	return core.NewSystemSource(cfg, src)
}

// Run replays the trace against the configuration and returns the
// metrics. Each call builds fresh per-tenant page tables, so runs are
// independent and deterministic.
func Run(cfg Config, tr *Trace) (Result, error) {
	sys, err := core.NewSystem(cfg, tr)
	if err != nil {
		return Result{}, err
	}
	return sys.Run()
}

// RunSource replays any packet source — streaming sources never
// materialize the sequence, so trace-length memory drops out of the run
// entirely. The result is byte-identical to Run over the constructed
// trace of the same TraceConfig.
func RunSource(cfg Config, src Source) (Result, error) {
	sys, err := core.NewSystemSource(cfg, src)
	if err != nil {
		return Result{}, err
	}
	return sys.Run()
}
