module hypertrio

go 1.22
