// Scaling: reproduce the shape of the paper's headline result (Fig. 10)
// on a laptop budget — I/O bandwidth versus tenant count for the Base
// and HyperTRIO designs across all three workloads.
package main

import (
	"flag"
	"fmt"
	"log"

	"hypertrio"
	"hypertrio/internal/stats"
)

func main() {
	interleave := flag.String("interleave", "RR1", "inter-tenant interleaving (RR1, RR4, RAND1)")
	scale := flag.Float64("scale", 0.004, "trace scale")
	flag.Parse()

	iv, err := hypertrio.ParseInterleave(*interleave)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %8s %12s %14s %9s\n", "benchmark", "tenants", "Base Gb/s", "HyperTRIO Gb/s", "speedup")
	charts := make(map[hypertrio.Benchmark]*stats.Chart)
	for _, kind := range hypertrio.Benchmarks {
		charts[kind] = stats.NewChart(fmt.Sprintf("\n%s (%s interleave)", kind, iv), " Gb/s", "Base     ", "HyperTRIO")
		for _, tenants := range []int{4, 16, 64, 256} {
			tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
				Benchmark:  kind,
				Tenants:    tenants,
				Interleave: iv,
				Seed:       42,
				Scale:      *scale,
			})
			if err != nil {
				log.Fatal(err)
			}
			base, err := hypertrio.Run(hypertrio.BaseConfig(), tr)
			if err != nil {
				log.Fatal(err)
			}
			hyper, err := hypertrio.Run(hypertrio.HyperTRIOConfig(), tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %8d %12.1f %14.1f %8.1fx\n",
				kind, tenants, base.AchievedGbps, hyper.AchievedGbps,
				hyper.AchievedGbps/base.AchievedGbps)
			charts[kind].AddPoint(fmt.Sprintf("%d", tenants), base.AchievedGbps, hyper.AchievedGbps)
		}
	}
	for _, kind := range hypertrio.Benchmarks {
		fmt.Print(charts[kind])
	}
}
