// Prefetch tuning: explore the Prefetch Unit's parameter space the way
// §V-D does — Prefetch Buffer size, history length (the look-ahead
// register) and prefetch degree — and report link utilization plus the
// share of requests served straight from the Prefetch Buffer.
package main

import (
	"flag"
	"fmt"
	"log"

	"hypertrio"
	"hypertrio/internal/device"
)

func main() {
	tenants := flag.Int("tenants", 256, "tenant count")
	scale := flag.Float64("scale", 0.004, "trace scale")
	flag.Parse()

	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Websearch,
		Tenants:    *tenants,
		Interleave: hypertrio.RR1,
		Seed:       42,
		Scale:      *scale,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(pf *device.PrefetchConfig) hypertrio.Result {
		cfg := hypertrio.HyperTRIOConfig()
		cfg.Prefetch = pf
		res, err := hypertrio.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("websearch, %d tenants, RR1\n\n", *tenants)
	no := run(nil)
	fmt.Printf("%-34s %10s %10s\n", "prefetch configuration", "Gb/s", "PB served")
	fmt.Printf("%-34s %10.1f %10s\n", "disabled", no.AchievedGbps, "-")

	// Buffer-size sweep (paper: 8 entries is the sweet spot).
	for _, entries := range []int{2, 4, 8, 16, 32} {
		pf := device.DefaultPrefetchConfig()
		pf.BufferEntries = entries
		r := run(&pf)
		fmt.Printf("%-34s %10.1f %9.1f%%\n",
			fmt.Sprintf("buffer=%d", entries), r.AchievedGbps, r.PrefetchServedShare()*100)
	}
	// History-length sweep with the adaptive register disabled (paper:
	// a fixed depth of 48 requests was optimal on the authors' model;
	// ours wants slightly more, which the adaptive register finds).
	for _, hl := range []int{12, 24, 48, 64, 96, 144} {
		pf := device.DefaultPrefetchConfig()
		pf.HistoryLen = hl
		pf.AdaptiveHistory = false
		r := run(&pf)
		fmt.Printf("%-34s %10.1f %9.1f%%\n",
			fmt.Sprintf("history=%d (fixed)", hl), r.AchievedGbps, r.PrefetchServedShare()*100)
	}
	// Degree sweep (paper: 2 most recent pages per tenant).
	for _, deg := range []int{1, 2, 3, 4} {
		pf := device.DefaultPrefetchConfig()
		pf.Degree = deg
		r := run(&pf)
		fmt.Printf("%-34s %10.1f %9.1f%%\n",
			fmt.Sprintf("degree=%d", deg), r.AchievedGbps, r.PrefetchServedShare()*100)
	}
	// The adaptive register, for comparison.
	ad := device.DefaultPrefetchConfig()
	r := run(&ad)
	fmt.Printf("%-34s %10.1f %9.1f%%\n", "default (adaptive history)", r.AchievedGbps, r.PrefetchServedShare()*100)
}
