// Key-value store: the paper's introduction motivates hyper-tenant I/O
// with memcached-style traffic — most keys under 60 B, values under
// 1000 B — which leaves a 200 Gb/s device far less time per packet than
// full-size Ethernet frames. This example defines a custom workload
// profile for such a store (small packets, a compact but irregular
// buffer set) and checks whether Base and HyperTRIO can keep up.
package main

import (
	"fmt"
	"log"

	"hypertrio"
)

func main() {
	// A key-value responder: values fit in a few hundred bytes, buffers
	// cycle quickly, access is request-driven rather than streaming.
	kv := hypertrio.Profile{
		Kind:             hypertrio.Websearch, // closest base kind, for labeling
		DataPages:        24,
		Streams:          20,
		BackgroundChance: 96, // request-driven: frequent buffer switches
		RunLength:        200,
		InitPages:        32,
		InitTouches:      3,
		JumpChance:       64,
		MinRequests:      40000,
		MaxRequests:      90000,
	}

	for _, tenants := range []int{16, 128, 512} {
		tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
			Benchmark:  kv.Kind,
			Tenants:    tenants,
			Interleave: hypertrio.RAND1, // independent request arrivals
			Seed:       7,
			Scale:      0.01,
			Profile:    &kv,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, design := range []struct {
			name string
			cfg  hypertrio.Config
		}{
			{"Base     ", hypertrio.BaseConfig()},
			{"HyperTRIO", hypertrio.HyperTRIOConfig()},
		} {
			cfg := design.cfg
			// ~520 B on the wire: 60 B key + ~430 B value + headers.
			cfg.Params.PacketBytes = 520
			res, err := hypertrio.Run(cfg, tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d tenants  %s  %7.1f Gb/s (%5.1f%%)  drops %6.2f%%\n",
				tenants, design.name, res.AchievedGbps, res.Utilization*100, res.DropRate()*100)
		}
	}
	fmt.Println("\nSmall packets shrink the translation budget per packet (~20ns at 200Gb/s),")
	fmt.Println("so the translation subsystem collapses even earlier than with 1542B frames.")
}
