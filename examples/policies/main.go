// Policies: a DevTLB replacement-policy shootout in the spirit of
// Fig. 11b — LRU, LFU, FIFO, random and the Belady oracle on the Base
// design, at a tenant count where replacement still matters.
package main

import (
	"flag"
	"fmt"
	"log"

	"hypertrio"
	"hypertrio/internal/tlb"
)

func main() {
	tenants := flag.Int("tenants", 16, "tenant count (replacement matters most in the mid-range)")
	scale := flag.Float64("scale", 0.02, "trace scale")
	flag.Parse()

	policies := []tlb.PolicyKind{tlb.LRU, tlb.LFU, tlb.FIFO, tlb.Random, tlb.Oracle}

	fmt.Printf("%-12s", "benchmark")
	for _, p := range policies {
		fmt.Printf(" %9s", p)
	}
	fmt.Println(" (Gb/s, Base design, 64-entry DevTLB)")

	for _, kind := range hypertrio.Benchmarks {
		tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
			Benchmark:  kind,
			Tenants:    *tenants,
			Interleave: hypertrio.RR1,
			Seed:       42,
			Scale:      *scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", kind)
		for _, p := range policies {
			cfg := hypertrio.BaseConfig()
			cfg.DevTLB.Policy = p
			res, err := hypertrio.Run(cfg, tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.1f", res.AchievedGbps)
		}
		fmt.Println()
	}
}
