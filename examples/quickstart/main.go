// Quickstart: share one 200 Gb/s device between 64 tenants running the
// websearch workload and compare the conventional (Base) translation
// design against HyperTRIO.
package main

import (
	"fmt"
	"log"

	"hypertrio"
)

func main() {
	// 1. Construct a hyper-tenant trace: 64 websearch tenants,
	//    round-robin interleaving, at 1% of the paper's trace length.
	tr, err := hypertrio.ConstructTrace(hypertrio.TraceConfig{
		Benchmark:  hypertrio.Websearch,
		Tenants:    64,
		Interleave: hypertrio.RR1,
		Seed:       42,
		Scale:      0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d packets from %d tenants\n\n", len(tr.Packets), tr.Tenants)

	// 2. Replay it against both designs.
	for _, design := range []struct {
		name string
		cfg  hypertrio.Config
	}{
		{"Base     ", hypertrio.BaseConfig()},
		{"HyperTRIO", hypertrio.HyperTRIOConfig()},
	} {
		res, err := hypertrio.Run(design.cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  %s\n", design.name, res)
	}
}
